// E25 — real-memory module arenas (DESIGN.md §17): genuine bytes moved
// per placement mapping, the cost of observing them, and the adaptive
// selector converging to the better mapping on workloads where COLOR and
// LABEL-TREE rank differently (the paper's R10 trade-off re-measured on
// real memory instead of simulated conflict counters).
//
// Three placements of the same tree — COLOR, LABEL-TREE, and the modulo
// strawman — each get their own MemoryBackend (one 64-byte-aligned slab
// per module, module-major BFS placement, 64-byte node payloads). The
// serve loop runs the same request stream against each and the backend
// loads every lane of every cut batch's payloads, so "bytes touched" is
// a measured quantity with a checksum the arenas must reproduce, not an
// accounting estimate.
//
// Measured questions:
//   * per mapping: wall time with the backend off vs on (warmed
//     median-of-N), nodes/bytes actually touched, and the raw touch
//     bandwidth of replaying the run's batch sets against the arenas.
//   * adaptive selection: on a stream hot under LABEL-TREE the selector
//     must settle on COLOR, and vice versa — two workloads, opposite
//     winners, decided from measured per-epoch conflict profiles.
//
// The exit-code gate covers ONLY deterministic invariants: responses
// bit-identical with the backend on or off at 1/2/8 workers and under
// the staged pipeline (touches are observation, never feedback); the
// oracle's control-plane TouchStats equal to the pipeline's worker-side
// totals and to a recount over the report's own batches; the checksum
// equal to the analytic fill expectation; and the selector's convergence
// to each workload's winner. Wall clocks and bandwidth are printed and
// recorded in BENCH_E25_realmem.json but never gate the exit code, so
// the perf-smoke ctest entry cannot flake under scheduler noise.
// PMTREE_E25_SMOKE=1 shrinks every dimension.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/mem/arena.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E25_SMOKE"); }

std::uint32_t tree_levels() {
  return bench::serve_bench_dims(smoke_mode()).tree_levels;
}
std::uint32_t module_count() {
  // 15 / 31 are exact 2^m - 1 instantiations, so COLOR, LABEL-TREE and
  // the modulo strawman all use the same module count (the adaptive
  // candidate contract) with no §5 rounding.
  return bench::serve_bench_dims(smoke_mode()).modules;
}
std::size_t request_count() {
  return bench::serve_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::serve_bench_dims(smoke_mode()).reps; }

/// E19's mixed stream: 80% three-node scans inside one leaf span, 20%
/// scattered two-node probes — enough module pressure to keep every
/// placement busy without saturating any.
std::vector<Request> request_stream(std::uint32_t levels, std::size_t count,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t bottom = levels - 1;
  std::vector<Request> requests;
  requests.reserve(count);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(16, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(3);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(16));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    if (rng.below(10) < 8) {
      const std::uint64_t span = pow2(bottom) / 8;
      const std::uint64_t start = rng.below(span);
      for (std::uint64_t k = 0; k < 3; ++k) {
        r.nodes.push_back(v((start + k) % span, bottom));
      }
    } else {
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t level =
            static_cast<std::uint32_t>(rng.below(levels));
        r.nodes.push_back(v(rng.below(pow2(level)), level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

/// Bottom-level nodes that all share one color under `by` — monochrome
/// for `by`, typically well spread under any mapping that disagrees with
/// it. The adversarial hot set behind both adaptive workloads.
std::vector<Node> monochrome_under(const TreeMapping& by) {
  const std::uint32_t bottom = by.tree().levels() - 1;
  const Color target = by.color_of(v(0, bottom));
  std::vector<Node> out;
  for (std::uint64_t i = 0; i < pow2(bottom); ++i) {
    if (by.color_of(v(i, bottom)) == target) out.push_back(v(i, bottom));
  }
  return out;
}

/// 80% of requests read 3 nodes of the monochrome-under-`hot_by` set, the
/// rest scatter — the server whose mapping equals `hot_by` is the loser.
std::vector<Request> adaptive_requests(const TreeMapping& hot_by,
                                       std::size_t count,
                                       std::uint64_t seed) {
  const std::vector<Node> hot = monochrome_under(hot_by);
  const std::uint32_t levels = hot_by.tree().levels();
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(16, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(3);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(16));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    if (rng.below(10) < 8) {
      const std::size_t start = rng.below(hot.size());
      for (std::size_t k = 0; k < 3; ++k) {
        r.nodes.push_back(hot[(start + k * 7) % hot.size()]);
      }
    } else {
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t level =
            static_cast<std::uint32_t>(rng.below(levels));
        r.nodes.push_back(v(rng.below(pow2(level)), level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

ServerOptions serve_options(const mem::MemoryBackend* memory,
                            unsigned workers = 1,
                            unsigned pipeline_workers = 0) {
  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.replicas = 2;
  opts.workers = workers;
  opts.admission.queue_bound = 128;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  opts.pipeline.workers = pipeline_workers;
  opts.memory = memory;
  return opts;
}

struct RunOutcome {
  ServeReport report;
  double wall_seconds = 0;
};

/// Warmed median-of-N wall time of run() only; the server is constructed
/// once and reused like a long-lived process (E19/E23 convention).
RunOutcome run_server(const TreeMapping& mapping, const ServerOptions& opts,
                      const std::vector<Request>& requests, int repeat) {
  RunOutcome outcome;
  Server server(mapping, opts);
  outcome.wall_seconds = bench::median_wall_seconds(
      /*warmup=*/1, repeat,
      [&] {
        for (const Request& r : requests) server.submit(r);
        outcome.report = ServeReport{};
      },
      [&] { outcome.report = server.run(); });
  return outcome;
}

/// Response/batch/metric bit-identity. The "pipeline" metric section is
/// wall-time stage attribution; "memory" is skipped only when comparing a
/// backend-on run against a backend-off oracle (the touch section is the
/// one intended difference).
bool same_responses(const ServeReport& got, const ServeReport& oracle,
                    bool skip_memory) {
  if (got.responses.size() != oracle.responses.size()) return false;
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& x = got.responses[i];
    const Response& y = oracle.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch ||
        x.dispatch_cycle != y.dispatch_cycle || x.retries != y.retries) {
      return false;
    }
  }
  if (got.batches.size() != oracle.batches.size()) return false;
  if (got.final_cycle != oracle.final_cycle) return false;
  for (const auto& [key, value] : oracle.metrics.members()) {
    if (key == "pipeline") continue;  // wall-time stage attribution
    if (skip_memory && key == "memory") continue;
    const Json* other = got.metrics.find(key);
    if (other == nullptr || other->dump() != value.dump()) return false;
  }
  return true;
}

bool warn_unless(bool ok, const char* what) {
  if (!ok) std::cout << "MISMATCH: " << what << "\n";
  return ok;
}

mem::TouchStats recount(const mem::MemoryBackend& memory,
                        const std::vector<FormedBatch>& batches) {
  mem::TouchStats total;
  for (const FormedBatch& b : batches) total += memory.touch(b.nodes);
  return total;
}

/// The checksum the arenas MUST reproduce, computed from the fill
/// generator alone — never by reading the slabs.
std::uint64_t analytic_checksum(const mem::MemoryBackend& memory,
                                const std::vector<FormedBatch>& batches) {
  std::uint64_t sum = 0;
  for (const FormedBatch& b : batches) {
    for (const Node n : b.nodes) sum += memory.expected_node_checksum(n);
  }
  return sum;
}

/// Raw arena bandwidth: replay the run's cut batch sets straight against
/// touch(), no serve loop in the way.
double touch_gib_per_sec(const mem::MemoryBackend& memory,
                         const std::vector<FormedBatch>& batches,
                         int repeat) {
  std::uint64_t bytes = 0;
  for (const FormedBatch& b : batches) {
    bytes += b.nodes.size() * memory.stride_bytes();
  }
  std::uint64_t sink = 0;
  const double wall = bench::median_wall_seconds(
      /*warmup=*/1, repeat, [&] { sink = 0; },
      [&] {
        for (const FormedBatch& b : batches) {
          sink += memory.touch(b.nodes).checksum;
        }
        benchmark::DoNotOptimize(sink);
      });
  return wall > 0 ? static_cast<double>(bytes) / wall / (1u << 30) : 0;
}

struct AdaptiveCase {
  const char* workload;           ///< what the hot set is monochrome under
  const TreeMapping* base;        ///< serves until the first decision
  const TreeMapping* winner;      ///< must be the selector's final pick
  std::uint64_t seed;
};

void run_experiment() {
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping color = make_optimal_color_mapping(tree, module_count());
  const LabelTreeMapping label(tree, color.num_modules());
  const ModuloMapping modulo(tree, color.num_modules());
  const std::vector<Request> requests =
      request_stream(tree.levels(), request_count(), 0xE25);

  // ---- Headline: bytes moved and the cost of moving them, per mapping.
  struct MappingRow {
    const TreeMapping* mapping;
    RunOutcome off, on;
    mem::TouchStats touched;
    double gibps = 0;
  };
  std::vector<MappingRow> rows;
  std::deque<mem::MemoryBackend> backends;
  for (const TreeMapping* m : {static_cast<const TreeMapping*>(&color),
                               static_cast<const TreeMapping*>(&label),
                               static_cast<const TreeMapping*>(&modulo)}) {
    const mem::MemoryBackend& backend = backends.emplace_back(*m);
    MappingRow row;
    row.mapping = m;
    row.off = run_server(*m, serve_options(nullptr), requests, reps());
    row.on = run_server(*m, serve_options(&backend), requests, reps());
    row.touched = row.on.report.memory;
    row.gibps = touch_gib_per_sec(backend, row.on.report.batches, reps());
    rows.push_back(std::move(row));
  }

  TableWriter table({"mapping", "wall off s", "wall on s", "overhead %",
                     "nodes touched", "MiB touched", "touch GiB/s"});
  for (const MappingRow& row : rows) {
    const double overhead =
        row.off.wall_seconds > 0
            ? (row.on.wall_seconds / row.off.wall_seconds - 1.0) * 100.0
            : 0;
    table.row(row.mapping->name(), row.off.wall_seconds, row.on.wall_seconds,
              overhead, row.touched.nodes,
              static_cast<double>(row.touched.bytes) / (1u << 20),
              row.gibps);
  }
  bench::print_experiment(
      "E25 (real-memory arenas: measured traffic per placement)",
      std::to_string(request_count()) + " requests, height-" +
          std::to_string(tree.levels() - 1) + " tree, M=" +
          std::to_string(color.num_modules()) + ", 64 B payloads (" +
          std::to_string(backends.front().resident_bytes() >> 20) +
          " MiB resident per backend)",
      table);

  // ---- Differential gate on the COLOR run. ---------------------------
  const mem::MemoryBackend& cbackend = backends.front();
  const RunOutcome& con = rows.front().on;
  const RunOutcome& coff = rows.front().off;
  const RunOutcome w2 =
      run_server(color, serve_options(&cbackend, 2), requests, reps());
  const RunOutcome w8 =
      run_server(color, serve_options(&cbackend, 8), requests, reps());
  const RunOutcome p1 =
      run_server(color, serve_options(&cbackend, 1, 1), requests, reps());
  const RunOutcome p2 =
      run_server(color, serve_options(&cbackend, 1, 2), requests, reps());

  const bool id_onoff = warn_unless(
      same_responses(con.report, coff.report, /*skip_memory=*/true),
      "backend on == off (1 worker)");
  const bool id_w2 = warn_unless(
      same_responses(w2.report, con.report, false), "2 workers");
  const bool id_w8 = warn_unless(
      same_responses(w8.report, con.report, false), "8 workers");
  const bool id_p1 = warn_unless(
      same_responses(p1.report, con.report, false), "pipeline 1w");
  const bool id_p2 = warn_unless(
      same_responses(p2.report, con.report, false), "pipeline 2w");
  const bool touch_pipeline = warn_unless(
      p1.report.memory == con.report.memory &&
          p2.report.memory == con.report.memory &&
          w8.report.memory == con.report.memory,
      "pipeline/worker TouchStats == oracle TouchStats");
  const bool touch_recount = warn_unless(
      con.report.memory == recount(cbackend, con.report.batches),
      "TouchStats == recount over the report's batches");
  const bool touch_checksum = warn_unless(
      con.report.memory.checksum ==
          analytic_checksum(cbackend, con.report.batches),
      "checksum == analytic fill expectation");

  // ---- Adaptive selection: opposite winners on two workloads. --------
  const AdaptiveCase cases[] = {
      {"hot under LABEL-TREE", &label, &color, 0xA1E25},
      {"hot under COLOR", &color, &label, 0xA2E25},
  };
  TableWriter atable({"workload", "base", "winner", "active after run",
                      "epochs", "switches", "backend on == off"});
  bool adaptive_converged = true;
  bool adaptive_unperturbed = true;
  Json ajson = Json::array();
  for (const AdaptiveCase& c : cases) {
    const std::vector<Request> stream =
        adaptive_requests(*c.base, request_count() / 2, c.seed);
    ServerOptions opts = serve_options(nullptr);
    opts.adaptive.epoch_batches = 8;
    opts.adaptive.candidates = {&color, &label};
    const RunOutcome off = run_server(*c.base, opts, stream, reps());
    // The backend's placement stays the BASE mapping: the adaptive layer
    // re-routes conflicts without the data moving (arena.hpp), so the
    // same backend serves every epoch.
    const mem::MemoryBackend placement(*c.base);
    opts.memory = &placement;
    const RunOutcome on = run_server(*c.base, opts, stream, reps());

    const Json* astats = on.report.metrics.find("adaptive");
    const std::string active =
        astats == nullptr ? "" : astats->find("active")->as_string();
    const std::uint64_t epochs =
        astats == nullptr ? 0 : astats->find("epochs_planned")->as_uint();
    const std::uint64_t switches =
        astats == nullptr ? 0 : astats->find("switches")->as_uint();
    const bool converged = active == c.winner->name();
    const bool unperturbed =
        same_responses(on.report, off.report, /*skip_memory=*/true);
    adaptive_converged = adaptive_converged &&
        warn_unless(converged, "adaptive converges to the winner");
    adaptive_unperturbed = adaptive_unperturbed &&
        warn_unless(unperturbed, "adaptive run: backend on == off");
    atable.row(c.workload, c.base->name(), c.winner->name(), active, epochs,
               switches, bench::pass_cell(unperturbed));

    Json jc = Json::object();
    jc.set("workload", Json(c.workload));
    jc.set("base", Json(c.base->name()));
    jc.set("winner", Json(c.winner->name()));
    jc.set("active", Json(active));
    jc.set("epochs_planned", Json(epochs));
    jc.set("switches", Json(switches));
    jc.set("converged", Json(converged));
    jc.set("unperturbed", Json(unperturbed));
    ajson.push_back(std::move(jc));
  }
  bench::print_experiment(
      "E25 (adaptive selection: measured conflicts pick the mapping)",
      "80% hot-set traffic monochrome under the base; the selector must "
      "abandon the base for the other candidate",
      atable);

  TableWriter gate({"invariant", "verdict"});
  gate.row("backend on == off (1 worker)", bench::pass_cell(id_onoff));
  gate.row("backend on: 2 workers == 1 worker", bench::pass_cell(id_w2));
  gate.row("backend on: 8 workers == 1 worker", bench::pass_cell(id_w8));
  gate.row("backend on: pipeline 1w == oracle", bench::pass_cell(id_p1));
  gate.row("backend on: pipeline 2w == oracle", bench::pass_cell(id_p2));
  gate.row("worker/pipeline touches == oracle touches",
           bench::pass_cell(touch_pipeline));
  gate.row("touches == recount over batches", bench::pass_cell(touch_recount));
  gate.row("checksum == analytic expectation",
           bench::pass_cell(touch_checksum));
  gate.row("adaptive converges to each workload's winner",
           bench::pass_cell(adaptive_converged));
  gate.row("adaptive responses unperturbed by the backend",
           bench::pass_cell(adaptive_unperturbed));
  bench::print_experiment(
      "E25 (acceptance)",
      "exit code gates the deterministic rows; wall clocks and bandwidth "
      "are recorded for EXPERIMENTS.md",
      gate);

  Json report = Json::object();
  report.set("experiment", Json("E25"));
  report.set("smoke", Json(smoke_mode()));
  report.set("tree_levels", Json(std::uint64_t{tree_levels()}));
  report.set("modules", Json(std::uint64_t{color.num_modules()}));
  report.set("requests", Json(request_count()));
  report.set("payload_bytes", Json(std::uint64_t{64}));
  report.set("resident_bytes_per_backend",
             Json(backends.front().resident_bytes()));
  Json jrows = Json::object();
  for (const MappingRow& row : rows) {
    Json jr = Json::object();
    jr.set("wall_seconds_off", Json(row.off.wall_seconds));
    jr.set("wall_seconds_on", Json(row.on.wall_seconds));
    jr.set("nodes_touched", Json(row.touched.nodes));
    jr.set("bytes_touched", Json(row.touched.bytes));
    jr.set("checksum", Json(mem::detail::hex64(row.touched.checksum)));
    jr.set("touch_gib_per_sec", Json(row.gibps));
    jrows.set(row.mapping->name(), std::move(jr));
  }
  report.set("rows", std::move(jrows));
  report.set("adaptive", std::move(ajson));
  report.set("identical_on_off", Json(id_onoff));
  report.set("identical_workers", Json(id_w2 && id_w8));
  report.set("identical_pipeline", Json(id_p1 && id_p2));
  report.set("touchstats_pipeline_equal", Json(touch_pipeline));
  report.set("touchstats_recount_equal", Json(touch_recount));
  report.set("checksum_analytic_equal", Json(touch_checksum));
  report.set("adaptive_converged", Json(adaptive_converged));
  report.set("adaptive_unperturbed", Json(adaptive_unperturbed));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E25_realmem.json";
  std::ofstream file(path);
  if (file) {
    file << report.dump(2) << '\n';
    std::cout << "JSON real-memory report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }

  if (!(id_onoff && id_w2 && id_w8 && id_p1 && id_p2 && touch_pipeline &&
        touch_recount && touch_checksum && adaptive_converged &&
        adaptive_unperturbed)) {
    std::cout << "ERROR: real-memory determinism/adaptive invariants "
                 "failed\n";
    std::exit(1);
  }
}

// google-benchmark timings: end-to-end serve with the backend off/on.

struct BenchSetup {
  CompleteBinaryTree tree;
  ColorMapping mapping;
  mem::MemoryBackend memory;
  std::vector<Request> requests;
  BenchSetup()
      : tree(smoke_mode() ? 10 : 13),
        mapping(make_optimal_color_mapping(tree, 15)),
        memory(mapping),
        requests(request_stream(tree.levels(), smoke_mode() ? 300 : 2000,
                                7)) {}
};

void BM_RealMemServe(benchmark::State& state) {
  const BenchSetup s;
  Server server(s.mapping,
                serve_options(state.range(0) != 0 ? &s.memory : nullptr));
  for (auto _ : state) {
    for (const Request& r : s.requests) server.submit(r);
    const ServeReport report = server.run();
    benchmark::DoNotOptimize(report.memory.checksum);
  }
}
BENCHMARK(BM_RealMemServe)->Arg(0)->Arg(1);

void BM_TouchBatch(benchmark::State& state) {
  const BenchSetup s;
  Rng rng(11);
  std::vector<Node> nodes;
  const std::uint32_t bottom = s.tree.levels() - 1;
  for (int k = 0; k < 96; ++k) {
    nodes.push_back(v(rng.below(pow2(bottom)), bottom));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.memory.touch(nodes).checksum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes.size()) *
                          s.memory.stride_bytes());
}
BENCHMARK(BM_TouchBatch);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
