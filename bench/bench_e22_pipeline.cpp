// E22 — staged serve pipeline: wall-clock throughput of the PALM-style
// StagedRunner (DESIGN.md §14) against the frozen single-threaded tick
// loop, plus the SIMD batch kernels it rides on.
//
// E19 measured the classic serve loop; its recorded full-size run is this
// experiment's baseline. Three questions are measured:
//
//   * Pipeline vs oracle: the E19 SLO-vs-load stream (COLOR mapping,
//     gap 0/2/8) served by the oracle (pipeline.workers == 0) and by the
//     staged pipeline at 1/2/8 workers. Responses are self-checked
//     bit-identical to the oracle on every row — the speedup must come
//     from doing less work per batch (packed coalesce sort, session
//     replay instead of per-round workload rebuilds, SIMD color gather +
//     conflict histogram), never from changing results.
//   * The acceptance gate: on the serving-dominated gap-2 row, the
//     8-worker pipeline must clear 3x the RECORDED E19 single-threaded
//     wall req/s (672,406 req/s, BENCH_E19_serving.json) in full
//     dimensions. The smoke slice checks bit-identity and prints
//     speedups vs the locally measured oracle instead (its dimensions
//     don't match the recorded baseline's).
//   * Kernel microbenches: the AVX2 gather and conflict-histogram kernels
//     against their scalar twins on serving-shaped batch sizes.
//
// Stage attribution (control/resolve/execute/drain/barrier nanoseconds,
// batches in flight) is read back from the report's "pipeline" metrics
// section — the same counters ServeMetrics exports.
//
// A BENCH_E22_pipeline.json report goes to $PMTREE_BENCH_JSON (or the
// working directory). PMTREE_E22_SMOKE=1 shrinks every dimension so the
// ctest perf-smoke label finishes in seconds.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/simd.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

/// The recorded full-size E19 gap-2 COLOR row (BENCH_E19_serving.json):
/// the single-threaded control-plane wall req/s this pipeline must beat
/// 3x at 8 workers. The gap-0 row is shed-dominated and the worker-
/// scale-out row measures replica execution, so gap 2 — 100% served,
/// batching and engine both hot — is the honest serving baseline.
constexpr double kRecordedE19Gap2Rps = 672406.0;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E22_SMOKE"); }

std::uint32_t tree_levels() {
  return bench::serve_bench_dims(smoke_mode()).tree_levels;
}
std::uint32_t module_count() {
  return bench::serve_bench_dims(smoke_mode()).modules;
}
std::size_t request_count() {
  return bench::serve_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::serve_bench_dims(smoke_mode()).reps; }

/// The E19 request mix, reproduced exactly (same generator, same seeds):
/// mostly root-to-leaf path lookups, some sibling pairs, a few short
/// level runs.
std::vector<Request> request_stream(const CompleteBinaryTree& tree,
                                    std::size_t count, std::uint32_t clients,
                                    std::uint64_t gap, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  std::vector<std::uint64_t> next_seq(clients, 0);
  std::uint64_t clock = 0;
  const std::uint32_t bottom = tree.levels() - 1;
  for (std::size_t i = 0; i < count; ++i) {
    clock += gap == 0 ? 0 : rng.below(2 * gap + 1);  // mean ~= gap
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(clients));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    const std::uint64_t kind = rng.below(10);
    if (kind < 7) {
      Node n = v(rng.below(pow2(bottom)), bottom);
      r.nodes.push_back(n);
      while (n.level > 0) {
        n = parent(n);
        r.nodes.push_back(n);
      }
    } else if (kind < 9) {
      const Node n = v(rng.below(pow2(bottom)) & ~std::uint64_t{1}, bottom);
      r.nodes.push_back(n);
      r.nodes.push_back(sibling(n));
    } else {
      const std::uint32_t level = bottom - 1;
      const std::uint64_t width = rng.between(4, 8);
      const std::uint64_t first = rng.below(pow2(level) - width);
      for (std::uint64_t k = 0; k < width; ++k) {
        r.nodes.push_back(v(first + k, level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

/// E19's serving configuration with the pipeline dialed in on top.
ServerOptions serve_options(unsigned pipeline_workers) {
  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.replicas = 1;
  opts.workers = 1;
  opts.admission.queue_bound = 128;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  opts.engine.sampling = engine::EngineOptions::DepthSampling::kOff;
  opts.pipeline.workers = pipeline_workers;
  return opts;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunOutcome {
  ServeReport report;
  double wall_seconds = 0;
};

/// Warmed median-of-N wall time of run() only; the server (and its warm
/// runner, when pipelined) is constructed once and reused, mirroring a
/// long-lived serving process. The untimed setup phase submits the
/// requests and tears the previous rep's report down — move-assigning
/// into it inside the window would bill run() for freeing thousands of
/// last-rep batch/response buffers.
RunOutcome run_server(const TreeMapping& mapping, const ServerOptions& opts,
                      const std::vector<Request>& requests, int repeat) {
  RunOutcome outcome;
  Server server(mapping, opts);
  outcome.wall_seconds = bench::median_wall_seconds(
      /*warmup=*/1, repeat,
      [&] {
        for (const Request& r : requests) server.submit(r);
        outcome.report = ServeReport{};
      },
      [&] { outcome.report = server.run(); });
  return outcome;
}

/// Bit-identity of everything deterministic: responses row-for-row, then
/// the whole report minus the pipelined run's wall-time stage section.
bool same_responses(const ServeReport& got, const ServeReport& oracle) {
  if (got.responses.size() != oracle.responses.size()) return false;
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& x = got.responses[i];
    const Response& y = oracle.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch ||
        x.dispatch_cycle != y.dispatch_cycle || x.retries != y.retries) {
      return false;
    }
  }
  if (got.batches.size() != oracle.batches.size()) return false;
  if (got.final_cycle != oracle.final_cycle) return false;
  for (const auto& [key, value] : oracle.metrics.members()) {
    const Json* other = got.metrics.find(key);
    if (other == nullptr || other->dump() != value.dump()) return false;
  }
  return true;
}

Json stage_json(const ServeReport& report) {
  const Json* p = report.metrics.find("pipeline");
  return p == nullptr ? Json() : *p;
}

void run_experiment() {
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping color = make_optimal_color_mapping(tree, module_count());

  Json jgaps = Json::array();
  bool all_identical = true;
  bool gate_pass = true;
  double gap2_rps_8w = 0;

  // Gap 2 runs first, and within a gap the deepest pipeline runs before
  // the oracle: the acceptance gate reads the gap-2 8-worker wall time,
  // and on a single-core box even a warmed median-of-N is only honest
  // while the process hasn't yet heated the machine with the other
  // configurations.
  for (const std::uint64_t gap : {std::uint64_t{2}, std::uint64_t{0},
                                  std::uint64_t{8}}) {
    const std::vector<Request> requests =
        request_stream(tree, request_count(), 16, gap, 0xE19 + gap);
    TableWriter table({"pipeline", "wall s", "wall Mreq/s", "speedup",
                       "vs E19 rec", "bit-identical"});
    const std::array<unsigned, 3> worker_cfgs{1u, 2u, 8u};
    std::array<RunOutcome, 3> outs;
    for (int i = 2; i >= 0; --i) {
      outs[static_cast<std::size_t>(i)] = run_server(
          color, serve_options(worker_cfgs[static_cast<std::size_t>(i)]),
          requests, reps());
    }
    const RunOutcome oracle =
        run_server(color, serve_options(0), requests, reps());
    const double oracle_rps =
        static_cast<double>(requests.size()) / oracle.wall_seconds;
    table.row("oracle", oracle.wall_seconds, oracle_rps / 1e6, 1.0,
              smoke_mode() ? 0.0 : oracle_rps / kRecordedE19Gap2Rps,
              bench::pass_cell(true));

    Json jrows = Json::array();
    Json jstages = Json::object();
    for (std::size_t i = 0; i < worker_cfgs.size(); ++i) {
      const unsigned workers = worker_cfgs[i];
      const RunOutcome& out = outs[i];
      const bool identical = same_responses(out.report, oracle.report);
      all_identical = all_identical && identical;
      const double rps =
          static_cast<double>(requests.size()) / out.wall_seconds;
      table.row(std::to_string(workers) + "w", out.wall_seconds, rps / 1e6,
                oracle.wall_seconds / out.wall_seconds,
                smoke_mode() ? 0.0 : rps / kRecordedE19Gap2Rps,
                bench::pass_cell(identical));
      if (gap == 2 && workers == 8) gap2_rps_8w = rps;

      Json row = Json::object();
      row.set("pipeline_workers", Json(static_cast<std::uint64_t>(workers)));
      row.set("wall_seconds", Json(out.wall_seconds));
      row.set("wall_requests_per_sec", Json(rps));
      row.set("speedup_vs_oracle", Json(oracle.wall_seconds /
                                        out.wall_seconds));
      row.set("identical", Json(identical));
      jrows.push_back(std::move(row));
      jstages.set(std::to_string(workers) + "w", stage_json(out.report));
    }
    bench::print_experiment(
        "E22 (staged pipeline vs oracle: gap " + std::to_string(gap) + ")",
        std::to_string(request_count()) + " requests, 16 clients, COLOR M=" +
            std::to_string(module_count()) + ", height-" +
            std::to_string(tree.levels() - 1) +
            " tree; oracle = single-threaded tick loop",
        table);

    Json jgap = Json::object();
    jgap.set("gap", Json(gap));
    jgap.set("oracle_wall_seconds", Json(oracle.wall_seconds));
    jgap.set("oracle_requests_per_sec", Json(oracle_rps));
    jgap.set("pipeline", std::move(jrows));
    jgap.set("stage_attribution", std::move(jstages));
    jgaps.push_back(std::move(jgap));
  }

  // The acceptance gate (full dimensions only — smoke dimensions don't
  // match the recorded baseline's).
  TableWriter gate({"metric", "value", "target", "verdict"});
  if (!smoke_mode()) {
    const double ratio = gap2_rps_8w / kRecordedE19Gap2Rps;
    gate_pass = ratio >= 3.0;
    gate.row("gap-2 8w req/s vs recorded E19", ratio, ">= 3.0",
             bench::pass_cell(gate_pass));
  } else {
    gate.row("gap-2 8w req/s vs recorded E19", "n/a (smoke dims)", ">= 3.0",
             "SKIP");
  }
  gate.row("all rows bit-identical to oracle", all_identical ? 1 : 0, "1",
           bench::pass_cell(all_identical));
  bench::print_experiment(
      "E22 (acceptance)",
      "recorded E19 gap-2 baseline = " +
          std::to_string(static_cast<std::uint64_t>(kRecordedE19Gap2Rps)) +
          " req/s (BENCH_E19_serving.json); simd kernel = " +
          simd::active_kernel(),
      gate);

  // Kernel microbenches: serving-shaped sizes (a big batch's node count).
  const std::size_t kN = 4096;
  Rng rng(0xE22);
  std::vector<std::uint32_t> table_(pow2(12));
  for (std::uint32_t& t : table_) t = static_cast<std::uint32_t>(rng());
  std::vector<std::uint32_t> idx(kN), out(kN), colors(kN),
      counts(module_count());
  for (std::size_t i = 0; i < kN; ++i) {
    idx[i] = static_cast<std::uint32_t>(rng.below(table_.size()));
    colors[i] = static_cast<std::uint32_t>(rng.below(module_count()));
  }
  const auto time_loop = [&](auto&& fn) {
    const int iters = smoke_mode() ? 200 : 2000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    return seconds_since(t0) / iters;
  };
  const double gather_simd = time_loop(
      [&] { simd::gather_u32(table_.data(), idx.data(), kN, out.data()); });
  const double hist_simd = time_loop([&] {
    simd::conflict_histogram(colors.data(), kN, counts.data(),
                             module_count());
  });
  simd::force_scalar_for_testing(true);
  const double gather_scalar = time_loop(
      [&] { simd::gather_u32(table_.data(), idx.data(), kN, out.data()); });
  const double hist_scalar = time_loop([&] {
    simd::conflict_histogram(colors.data(), kN, counts.data(),
                             module_count());
  });
  simd::force_scalar_for_testing(false);
  TableWriter ktable({"kernel", "dispatched ns/elem", "scalar ns/elem",
                      "speedup"});
  ktable.row("gather_u32", gather_simd / kN * 1e9, gather_scalar / kN * 1e9,
             gather_scalar / gather_simd);
  ktable.row("conflict_histogram", hist_simd / kN * 1e9,
             hist_scalar / kN * 1e9, hist_scalar / hist_simd);
  bench::print_experiment(
      "E22 (SIMD kernels)",
      "n = " + std::to_string(kN) + ", M = " +
          std::to_string(module_count()) + ", kernel = " +
          simd::active_kernel(),
      ktable);

  Json report = Json::object();
  report.set("experiment", Json("E22"));
  report.set("smoke", Json(smoke_mode()));
  report.set("simd_kernel", Json(std::string(simd::active_kernel())));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(tree_levels())));
  report.set("modules", Json(static_cast<std::uint64_t>(module_count())));
  report.set("requests", Json(request_count()));
  report.set("recorded_e19_gap2_rps", Json(kRecordedE19Gap2Rps));
  report.set("gaps", std::move(jgaps));
  report.set("all_identical", Json(all_identical));
  report.set("gate_pass", Json(gate_pass));
  Json kernels = Json::object();
  kernels.set("gather_ns_per_elem", Json(gather_simd / kN * 1e9));
  kernels.set("gather_scalar_ns_per_elem", Json(gather_scalar / kN * 1e9));
  kernels.set("histogram_ns_per_elem", Json(hist_simd / kN * 1e9));
  kernels.set("histogram_scalar_ns_per_elem",
              Json(hist_scalar / kN * 1e9));
  report.set("kernels", std::move(kernels));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E22_pipeline.json";
  std::ofstream file(path);
  if (file) {
    file << report.dump(2) << '\n';
    std::cout << "JSON pipeline report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }

  if (!all_identical) {
    std::cout << "ERROR: pipelined responses diverged from the oracle\n";
    std::exit(1);
  }
}

// google-benchmark timings: end-to-end serve at each pipeline setting.

struct BenchSetup {
  CompleteBinaryTree tree;
  ColorMapping mapping;
  std::vector<Request> requests;
  BenchSetup()
      : tree(smoke_mode() ? 10 : 13),
        mapping(make_optimal_color_mapping(tree, 15)),
        requests(request_stream(tree, smoke_mode() ? 300 : 2000, 8, 2, 7)) {}
};

void BM_PipelineEndToEnd(benchmark::State& state) {
  const BenchSetup s;
  Server server(s.mapping,
                serve_options(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    for (const Request& r : s.requests) server.submit(r);
    const ServeReport report = server.run();
    benchmark::DoNotOptimize(report.final_cycle);
  }
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(0)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
