// E2 — Theorem 2: N + K - k memory modules are *necessary* for
// conflict-free access to S(K) and P(N); hence BASIC-COLOR/COLOR are
// CF-optimal and CF access to S(M), P(M) needs 2M - ceil(log M) modules
// (the open question of [2] the paper settles).
//
// Regenerated as three tables:
//   (a) the lower-bound witness: every TP(K, N-k) instance has exactly
//       N + K - k nodes and COLOR colors it rainbow — so no mapping that
//       is CF on S(K) and P(N) (and therefore rainbow on TP, by the
//       Theorem 2 argument) can use fewer colors;
//   (b) brute-force confirmation on tiny trees: exhaustive search over ALL
//       colorings with one color fewer finds no CF mapping;
//   (c) the 2M - log M corollary table.
//
// The google-benchmark timing measures the witness verification.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/verify.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/util/bits.hpp"

namespace {

using namespace pmtree;

void print_witness_table() {
  TableWriter table({"N", "k", "K", "N+K-k", "TP(K,N-k) size", "rainbow",
                     "verdict"});
  const struct {
    std::uint32_t N, k;
  } configs[] = {{3, 1}, {4, 2}, {5, 2}, {5, 3}, {6, 3}, {8, 3}, {9, 4}};
  for (const auto& cfg : configs) {
    const CompleteBinaryTree tree(cfg.N + 2);
    const ColorMapping map(tree, cfg.N, cfg.k);
    const auto verdict = verify_optimality_witness(map, cfg.N, cfg.k);
    table.row(cfg.N, cfg.k, tree_size(cfg.k), bounds::cf_modules(cfg.N, cfg.k),
              verdict.bound, verdict.ok, bench::pass_cell(verdict.ok));
  }
  bench::print_experiment(
      "E2a (Theorem 2, witness)",
      "every TP(K, N-k) instance has N + K - k nodes and is rainbow under "
      "COLOR",
      table);
}

/// Exhaustively searches all M'-colorings of a tiny tree for one that is
/// CF on S(K) and P(N). Returns true if one exists. Exponential: only for
/// trees of <= ~12 nodes.
bool cf_coloring_exists(const CompleteBinaryTree& tree, std::uint64_t K,
                        std::uint32_t N, std::uint32_t colors) {
  const std::uint64_t n = tree.size();
  std::vector<std::uint32_t> assignment(n, 0);

  // Collect all template instances as BFS-id lists once.
  std::vector<std::vector<std::uint64_t>> constraints;
  for_each_subtree(tree, K, [&](const SubtreeInstance& s) {
    std::vector<std::uint64_t> ids;
    for (const Node& nd : s.nodes()) ids.push_back(bfs_id(nd));
    constraints.push_back(std::move(ids));
    return true;
  });
  for_each_path(tree, N, [&](const PathInstance& p) {
    std::vector<std::uint64_t> ids;
    for (const Node& nd : p.nodes()) ids.push_back(bfs_id(nd));
    constraints.push_back(std::move(ids));
    return true;
  });

  // Backtracking: nodes in BFS order; prune on any violated constraint
  // among already-assigned nodes.
  std::function<bool(std::uint64_t)> place = [&](std::uint64_t node) -> bool {
    if (node == n) return true;
    for (std::uint32_t c = 0; c < colors; ++c) {
      assignment[node] = c;
      bool ok = true;
      for (const auto& constraint : constraints) {
        // Check whether `node` conflicts with an earlier node of the
        // constraint containing it.
        bool contains = false;
        for (const std::uint64_t id : constraint) {
          if (id == node) contains = true;
        }
        if (!contains) continue;
        for (const std::uint64_t id : constraint) {
          if (id < node && assignment[id] == c) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok && place(node + 1)) return true;
    }
    return false;
  };
  return place(0);
}

void print_bruteforce_table() {
  TableWriter table({"tree levels", "N", "K", "colors", "CF exists",
                     "expected", "verdict"});
  const struct {
    std::uint32_t levels, N, k;
  } configs[] = {{3, 3, 1}, {3, 2, 2}, {3, 3, 2}, {4, 3, 2}};
  for (const auto& cfg : configs) {
    const CompleteBinaryTree tree(cfg.levels);
    const std::uint64_t K = tree_size(cfg.k);
    const std::uint32_t optimal = bounds::cf_modules(cfg.N, cfg.k);
    const bool at = cf_coloring_exists(tree, K, cfg.N, optimal);
    const bool below = cf_coloring_exists(tree, K, cfg.N, optimal - 1);
    table.row(cfg.levels, cfg.N, K, optimal, at, "yes",
              bench::pass_cell(at));
    table.row(cfg.levels, cfg.N, K, optimal - 1, below, "no",
              bench::pass_cell(!below));
  }
  bench::print_experiment(
      "E2b (Theorem 2, brute force)",
      "exhaustive search: a CF coloring exists with N + K - k colors and "
      "with not one fewer",
      table);
}

void print_corollary_table() {
  // CF access to S(M) and P(M) is the N = M, K = M instantiation of
  // Theorem 3: cf_modules(M, m) = M + M - m = 2M - ceil(log M).
  TableWriter table({"M", "2M - ceil(log M)", "cf_modules(M, m)", "match"});
  for (std::uint32_t m = 2; m <= 8; ++m) {
    const auto M = static_cast<std::uint32_t>(tree_size(m));
    table.row(M, bounds::cf_modules_full(M),
              bounds::cf_modules(static_cast<std::uint32_t>(M), m),
              bench::pass_cell(bounds::cf_modules_full(M) ==
                               bounds::cf_modules(static_cast<std::uint32_t>(M), m)));
  }
  bench::print_experiment(
      "E2c (Section 4 corollary)",
      "CF access to S(M) and P(M) takes exactly 2M - ceil(log M) modules",
      table);
}

void BM_WitnessVerification(benchmark::State& state) {
  const auto N = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = 3;
  const CompleteBinaryTree tree(N + 2);
  const ColorMapping map(tree, N, k);
  for (auto _ : state) {
    auto verdict = verify_optimality_witness(map, N, k);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_WitnessVerification)->Arg(6)->Arg(8)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  print_witness_table();
  print_bruteforce_table();
  print_corollary_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
