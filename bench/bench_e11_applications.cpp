// E11 — the Section 1.1 applications, end to end:
//
//   (a) binary min-heap: insert / decrease-key / extract-min all access
//       leaf-to-root paths (P-template). Under COLOR sized for the heap's
//       height every operation is a single memory round.
//   (b) B-tree-style range queries: composite template accesses; COLOR
//       keeps rounds near the ceil(D/M) ideal.
//
// The tables replay identical operation streams through the memory-system
// simulator for each mapping; the timing section measures end-to-end
// throughput including address computation.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/apps/parallel_heap.hpp"
#include "pmtree/apps/range_index.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/pms/memory_system.hpp"
#include "pmtree/pms/simulator.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

std::vector<std::vector<Node>> heap_trace(std::uint32_t levels,
                                          std::size_t operations) {
  ParallelHeap heap(levels);
  Rng rng(111);
  std::vector<std::vector<Node>> accesses;
  accesses.reserve(operations);
  for (std::size_t op = 0; op < operations; ++op) {
    const bool do_insert =
        heap.size() == 0 || (heap.size() < heap.capacity() && rng.chance(3, 5));
    if (do_insert) {
      accesses.push_back(
          heap.insert(static_cast<ParallelHeap::Key>(rng.below(1u << 30))));
    } else if (rng.chance(1, 4) && heap.size() > 0) {
      const std::uint64_t pos = rng.below(heap.size());
      accesses.push_back(heap.decrease_key(pos, heap.key_at(pos) - 1));
    } else {
      ParallelHeap::Key out;
      accesses.push_back(heap.extract_min(&out));
    }
  }
  return accesses;
}

void print_heap_table() {
  const std::uint32_t levels = 14;
  const auto trace = heap_trace(levels, 30000);
  const CompleteBinaryTree tree(levels);

  const ColorMapping color(tree, levels, 3);  // CF on P(levels)
  const LabelTreeMapping label(tree, color.num_modules());
  const ModuloMapping naive(tree, color.num_modules());

  TableWriter table({"mapping", "modules", "rounds/op", "worst op",
                     "total rounds", "vs ideal"});
  for (const TreeMapping* map :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&naive)}) {
    MemorySystem pms(*map);
    for (const auto& access : trace) pms.access(access);
    table.row(map->name(), map->num_modules(), pms.round_stats().mean(),
              pms.round_stats().max(), pms.total_rounds(),
              static_cast<double>(pms.total_rounds()) /
                  static_cast<double>(pms.ideal_rounds()));
  }
  bench::print_experiment(
      "E11a (Section 1.1, heap)",
      "heap operations are leaf-to-root path accesses; COLOR serves each "
      "in one round",
      table);
}

void print_range_table() {
  Rng keygen(17);
  std::vector<RangeIndex::Key> keys;
  RangeIndex::Key next = 0;
  for (int i = 0; i < 16384; ++i) {
    next += static_cast<RangeIndex::Key>(1 + keygen.below(7));
    keys.push_back(next);
  }
  const RangeIndex index(keys);
  const std::uint32_t M = 15;
  const EagerColorMapping color(make_optimal_color_mapping(index.tree(), M));
  const LabelTreeMapping label(index.tree(), M);
  const ModuloMapping naive(index.tree(), M);

  TableWriter table({"mapping", "queries", "rounds/query", "worst",
                     "vs ideal"});
  for (const TreeMapping* map :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&naive)}) {
    MemorySystem pms(*map);
    Rng rng(23);
    for (int q = 0; q < 2000; ++q) {
      const auto lo = static_cast<RangeIndex::Key>(rng.below(static_cast<std::uint64_t>(next)));
      const auto hi = lo + static_cast<RangeIndex::Key>(rng.below(static_cast<std::uint64_t>(next) / 16));
      const auto result = index.query(lo, hi);
      if (!result.accessed.empty()) pms.access(result.accessed);
    }
    table.row(map->name(), pms.round_stats().count(), pms.round_stats().mean(),
              pms.round_stats().max(),
              static_cast<double>(pms.total_rounds()) /
                  static_cast<double>(pms.ideal_rounds()));
  }
  bench::print_experiment(
      "E11b (Section 1.1, range queries)",
      "range queries as composite templates through the memory system",
      table);
}

void BM_HeapThroughput(benchmark::State& state) {
  const std::uint32_t levels = 14;
  const CompleteBinaryTree tree(levels);
  const ColorMapping color(tree, levels, 3);
  const auto trace = heap_trace(levels, 2000);
  const Workload workload{std::vector<std::vector<Node>>(trace)};
  const ParallelAccessSimulator sim(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(color, workload).total_rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_HeapThroughput);

void BM_RangeQueryThroughput(benchmark::State& state) {
  Rng keygen(17);
  std::vector<RangeIndex::Key> keys;
  RangeIndex::Key next = 0;
  for (int i = 0; i < 4096; ++i) {
    next += static_cast<RangeIndex::Key>(1 + keygen.below(7));
    keys.push_back(next);
  }
  const RangeIndex index(keys);
  const EagerColorMapping color(make_optimal_color_mapping(index.tree(), 15));
  MemorySystem pms(color);
  Rng rng(29);
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const auto lo = static_cast<RangeIndex::Key>(rng.below(static_cast<std::uint64_t>(next)));
    const auto hi = lo + static_cast<RangeIndex::Key>(rng.below(static_cast<std::uint64_t>(next) / 16));
    const auto result = index.query(lo, hi);
    if (!result.accessed.empty()) {
      benchmark::DoNotOptimize(pms.access(result.accessed).rounds);
    }
    ++queries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_RangeQueryThroughput);

}  // namespace

int main(int argc, char** argv) {
  print_heap_table();
  print_range_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
