// E19 — serving: throughput and tail latency of the pmtree::serve
// front-end under offered load, COLOR vs baseline mappings, and worker
// scale-out.
//
// The serve layer turns the library into a request/response system:
// concurrent clients submit node-set lookups, admission control bounds
// the queue, the dynamic batcher coalesces co-pending requests into
// composite template instances, and every batch is one parallel memory
// access through the cycle engine. Two questions are measured:
//
//   * SLO vs load: sweep the offered load (mean inter-arrival gap) and
//     report p50/p99/p999 end-to-end latency, shed/expired counts and
//     simulated throughput — for the paper's COLOR mapping vs the modulo
//     baseline on the same stream. The mapping's conflict behaviour on
//     the coalesced composites lands directly in the latency columns.
//   * Worker scale-out: the same configuration at 1/2/8 worker threads
//     over 8 replicas. Responses must be bit-identical to the 1-worker
//     oracle (checked row by row); wall-clock throughput is the payoff.
//
// A BENCH_E19_serving.json report goes to $PMTREE_BENCH_JSON (or the
// working directory). PMTREE_E19_SMOKE=1 shrinks every dimension so the
// ctest perf-smoke label finishes in seconds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E19_SMOKE"); }

// Dimensions shared with E20/E22 (bench_common.hpp) so the serving gates
// stay comparable.
std::uint32_t tree_levels() {
  return bench::serve_bench_dims(smoke_mode()).tree_levels;
}
std::uint32_t module_count() {
  return bench::serve_bench_dims(smoke_mode()).modules;
}
std::size_t request_count() {
  return bench::serve_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::serve_bench_dims(smoke_mode()).reps; }

/// The request mix of a tree index front-end: mostly speculative
/// root-to-leaf path lookups (dictionary searches), some sibling-pair
/// reads, a sprinkle of short level scans — all as serve Requests from
/// `clients` client streams at a mean inter-arrival gap of `gap` cycles.
std::vector<Request> request_stream(const CompleteBinaryTree& tree,
                                    std::size_t count, std::uint32_t clients,
                                    std::uint64_t gap, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  std::vector<std::uint64_t> next_seq(clients, 0);
  std::uint64_t clock = 0;
  const std::uint32_t bottom = tree.levels() - 1;
  for (std::size_t i = 0; i < count; ++i) {
    clock += gap == 0 ? 0 : rng.below(2 * gap + 1);  // mean ~= gap
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(clients));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    const std::uint64_t kind = rng.below(10);
    if (kind < 7) {
      // Root-to-leaf path of a random leaf (a P-template lookup).
      Node n = v(rng.below(pow2(bottom)), bottom);
      r.nodes.push_back(n);
      while (n.level > 0) {
        n = parent(n);
        r.nodes.push_back(n);
      }
    } else if (kind < 9) {
      // A sibling pair near the bottom (heap child comparison).
      const Node n = v(rng.below(pow2(bottom)) & ~std::uint64_t{1}, bottom);
      r.nodes.push_back(n);
      r.nodes.push_back(sibling(n));
    } else {
      // A short level run (range scan fragment).
      const std::uint32_t level = bottom - 1;
      const std::uint64_t width = rng.between(4, 8);
      const std::uint64_t first = rng.below(pow2(level) - width);
      for (std::uint64_t k = 0; k < width; ++k) {
        r.nodes.push_back(v(first + k, level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

ServerOptions serve_options(unsigned workers, std::uint32_t replicas) {
  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.replicas = replicas;
  opts.workers = workers;
  opts.admission.queue_bound = 128;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  opts.engine.sampling = engine::EngineOptions::DepthSampling::kOff;
  return opts;
}

struct RunOutcome {
  ServeReport report;
  double wall_seconds = 0;
};

/// Warmed median-of-N wall time of run() only (bench_common.hpp); the
/// untimed setup phase constructs/submits so the timed window bills the
/// serve loop alone.
RunOutcome run_server(const TreeMapping& mapping, const ServerOptions& opts,
                      const std::vector<Request>& requests, int repeat) {
  RunOutcome outcome;
  std::unique_ptr<Server> server;
  outcome.wall_seconds = bench::median_wall_seconds(
      /*warmup=*/1, repeat,
      [&] {
        server = std::make_unique<Server>(mapping, opts);
        for (const Request& r : requests) server->submit(r);
        outcome.report = ServeReport{};
      },
      [&] { outcome.report = server->run(); });
  return outcome;
}

std::uint64_t metric_uint(const Json& metrics, const std::string& group,
                          const std::string& field) {
  return metrics.find(group)->find(field)->as_uint();
}

/// SLO-vs-load sweep for one mapping; returns the JSON rows and prints
/// the table section.
Json sweep_load(const TreeMapping& mapping, const std::string& label,
                const CompleteBinaryTree& tree) {
  TableWriter table({"gap cyc", "ok", "shed", "p50", "p99", "p999",
                     "sim req/cyc", "wall Mreq/s"});
  Json rows = Json::array();
  for (const std::uint64_t gap : {std::uint64_t{0}, std::uint64_t{2},
                                  std::uint64_t{8}}) {
    const std::vector<Request> requests =
        request_stream(tree, request_count(), 16, gap, 0xE19 + gap);
    const RunOutcome out =
        run_server(mapping, serve_options(1, 1), requests, reps());
    const Json& m = out.report.metrics;
    const std::uint64_t ok = out.report.count(RequestStatus::kOk);
    const double sim_tput =
        out.report.final_cycle == 0
            ? 0.0
            : static_cast<double>(ok) /
                  static_cast<double>(out.report.final_cycle);
    const double wall_rps =
        static_cast<double>(requests.size()) / out.wall_seconds;
    table.row(gap, ok, metric_uint(m, "counters", "shed"),
              metric_uint(m, "latency", "p50"),
              metric_uint(m, "latency", "p99"),
              metric_uint(m, "latency", "p999"), sim_tput, wall_rps / 1e6);

    Json row = Json::object();
    row.set("gap", Json(gap));
    row.set("requests", Json(requests.size()));
    row.set("ok", Json(ok));
    row.set("shed", Json(out.report.count(RequestStatus::kShed)));
    row.set("expired", Json(out.report.count(RequestStatus::kExpired)));
    row.set("latency_p50", Json(metric_uint(m, "latency", "p50")));
    row.set("latency_p99", Json(metric_uint(m, "latency", "p99")));
    row.set("latency_p999", Json(metric_uint(m, "latency", "p999")));
    row.set("mean_batch_nodes",
            Json(m.find("batches")->find("mean_nodes")->as_number()));
    row.set("coalesced_nodes",
            Json(metric_uint(m, "batches", "coalesced_nodes")));
    row.set("sim_requests_per_cycle", Json(sim_tput));
    row.set("wall_requests_per_sec", Json(wall_rps));
    rows.push_back(std::move(row));
  }
  bench::print_experiment(
      "E19 (serving SLO vs load: " + label + ")",
      std::to_string(request_count()) + " requests, 16 clients, M = " +
          std::to_string(mapping.num_modules()) + ", height-" +
          std::to_string(tree.levels() - 1) + " tree",
      table);
  return rows;
}

bool same_responses(const ServeReport& a, const ServeReport& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const Response& x = a.responses[i];
    const Response& y = b.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch) {
      return false;
    }
  }
  return a.to_json().dump() == b.to_json().dump();
}

void run_experiment() {
  const unsigned hw = std::thread::hardware_concurrency();
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping color = make_optimal_color_mapping(tree, module_count());
  const ModuloMapping modulo(tree, module_count());

  Json jcolor = sweep_load(color, "COLOR", tree);
  Json jmodulo = sweep_load(modulo, "modulo baseline", tree);

  // Worker scale-out at the heaviest load, 8 replicas: wall-clock is the
  // only thing allowed to move; every row is checked bit-identical to the
  // 1-worker oracle.
  const std::vector<Request> heavy =
      request_stream(tree, request_count(), 16, 0, 0xE19);
  TableWriter wtable({"workers", "wall s", "wall Mreq/s", "speedup vs 1w",
                      "bit-identical"});
  Json jworkers = Json::array();
  RunOutcome oracle;
  for (const unsigned workers : {1u, 2u, 8u}) {
    const RunOutcome out =
        run_server(color, serve_options(workers, 8), heavy, reps());
    if (workers == 1) oracle = out;
    const bool identical = same_responses(out.report, oracle.report);
    const double rps = static_cast<double>(heavy.size()) / out.wall_seconds;
    wtable.row(workers, out.wall_seconds, rps / 1e6,
               oracle.wall_seconds / out.wall_seconds,
               bench::pass_cell(identical));
    Json row = Json::object();
    row.set("workers", Json(static_cast<std::uint64_t>(workers)));
    row.set("wall_seconds", Json(out.wall_seconds));
    row.set("wall_requests_per_sec", Json(rps));
    row.set("speedup_vs_1w", Json(oracle.wall_seconds / out.wall_seconds));
    row.set("identical", Json(identical));
    jworkers.push_back(std::move(row));
  }
  bench::print_experiment(
      "E19 (worker scale-out)",
      "COLOR mapping, 8 replicas, gap 0 stream (hardware_concurrency = " +
          std::to_string(hw) + ")",
      wtable);

  Json report = Json::object();
  report.set("experiment", Json("E19"));
  report.set("smoke", Json(smoke_mode()));
  report.set("hardware_concurrency", Json(static_cast<std::uint64_t>(hw)));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(tree_levels())));
  report.set("modules", Json(static_cast<std::uint64_t>(module_count())));
  report.set("requests", Json(request_count()));
  Json sweeps = Json::object();
  sweeps.set("color", std::move(jcolor));
  sweeps.set("modulo", std::move(jmodulo));
  report.set("slo_vs_load", std::move(sweeps));
  report.set("worker_scaleout", std::move(jworkers));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E19_serving.json";
  std::ofstream out(path);
  if (out) {
    out << report.dump(2) << '\n';
    std::cout << "JSON serving report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }
}

// google-benchmark timings on a fixed mid-size configuration.

struct BenchSetup {
  CompleteBinaryTree tree;
  ColorMapping mapping;
  std::vector<Request> requests;
  BenchSetup()
      : tree(smoke_mode() ? 10 : 13),
        mapping(make_optimal_color_mapping(tree, 15)),
        requests(request_stream(tree, smoke_mode() ? 300 : 2000, 8, 2, 7)) {}
};

void BM_ServeEndToEnd(benchmark::State& state) {
  const BenchSetup s;
  ServerOptions opts = serve_options(static_cast<unsigned>(state.range(0)),
                                     static_cast<std::uint32_t>(
                                         state.range(0) == 1 ? 1 : 8));
  for (auto _ : state) {
    Server server(s.mapping, opts);
    for (const Request& r : s.requests) server.submit(r);
    const ServeReport report = server.run();
    benchmark::DoNotOptimize(report.final_cycle);
  }
}
BENCHMARK(BM_ServeEndToEnd)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
