// E9 — the paper's headline trade-off table (Sections 4-6, Conclusions):
//
//   COLOR:      minimal conflicts (CF below full parallelism, 1 at it,
//               O(D/M + c) beyond), but O(H) addressing and skewed load;
//   LABEL-TREE: more conflicts (O(sqrt(M/log M)) at size M), but O(1)
//               addressing after O(M) preprocessing and 1 + o(1) load;
//   baselines:  O(1) addressing, no conflict guarantees at all.
//
// One row per mapping: measured conflicts on each template family at
// size M, addressing nanoseconds per node, load-balance ratio — the
// qualitative table the paper's conclusion describes.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

constexpr std::uint32_t kM = 15;
constexpr std::uint32_t kLevels = 16;

/// Mean nanoseconds per color_of over a fixed random probe set.
double addressing_ns(const TreeMapping& map) {
  Rng rng(42);
  std::vector<Node> probes;
  for (int i = 0; i < 200000; ++i) {
    probes.push_back(node_at(rng.below(map.tree().size())));
  }
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Node& n : probes) sink += map.color_of(n);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(probes.size());
}

void print_table() {
  const CompleteBinaryTree tree(kLevels);

  const ColorMapping color_lazy = make_optimal_color_mapping(tree, kM);
  const ColorMapping color_block(tree, color_lazy.N(), color_lazy.k(),
                                 internal::GammaVariant::kCorrect,
                                 ColorMapping::Retrieval::kBlockTable);
  const EagerColorMapping color_table(color_lazy);
  const LabelTreeMapping label(tree, kM);
  const LabelTreeMapping label_rec(tree, kM,
                                   LabelTreeMapping::Retrieval::kRecursive);
  const ModuloMapping naive(tree, kM);
  const LevelModMapping level_mod(tree, kM);
  const RandomMapping random(tree, kM, 77);

  TableWriter table({"mapping", "S(M)", "P(M)", "L(M)", "C(4M,4)",
                     "addressing ns", "load ratio", "table bytes"});
  struct Row {
    const TreeMapping* map;
    std::uint64_t table_bytes;
  };
  const Row rows[] = {
      {&color_lazy, 0},
      {&color_block, (pow2(color_lazy.N()) - 1) * 8},
      {&color_table, tree.size() * sizeof(Color)},
      {&label, (pow2(ceil_log2(kM)) - 1) * sizeof(std::uint32_t)},
      {&label_rec, 0},
      {&naive, 0},
      {&level_mod, 0},
      {&random, 0},
  };
  for (const Row& row : rows) {
    const TreeMapping& map = *row.map;
    Rng rng(9001);
    const auto s = evaluate_subtrees(map, kM).max_conflicts;
    const auto p = evaluate_paths(map, kM).max_conflicts;
    const auto l = evaluate_level_runs(map, kM).max_conflicts;
    const auto c = sample_composites(map, 4 * kM, 4, 300, rng).max_conflicts;
    table.row(map.name(), s, p, l, c, addressing_ns(map),
              load_balance(map).ratio(), row.table_bytes);
  }
  bench::print_experiment(
      "E9 (Sections 4-6: the trade-off)",
      "conflicts vs addressing cost vs load balance, template size M = " +
          std::to_string(kM),
      table);
}

void BM_AddressingColorLazy(benchmark::State& state) {
  const CompleteBinaryTree tree(kLevels);
  const ColorMapping map = make_optimal_color_mapping(tree, kM);
  Rng rng(5);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += map.color_of(node_at(rng.below(tree.size())));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AddressingColorLazy);

void BM_AddressingLabelTree(benchmark::State& state) {
  const CompleteBinaryTree tree(kLevels);
  const LabelTreeMapping map(tree, kM);
  Rng rng(5);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += map.color_of(node_at(rng.below(tree.size())));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AddressingLabelTree);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
