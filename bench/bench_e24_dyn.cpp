// E24 — dynamic trees: mixed read/write serve throughput over pmtree::dyn
// (DESIGN.md §16) against two bookends sharing the same machinery:
//
//   read-only   — the same request stream with every write demoted to a
//                 read: what the static serving stack (E19) charges for
//                 this traffic, i.e. the ceiling mutation support must
//                 approach.
//   incremental — the real mixed stream; writes apply at the PALM batch
//                 barrier and the IncrementalColorer lazily extends the
//                 COLOR assignment to whatever the barrier touched.
//   strawman    — same mixed stream, but every writing batch invalidates
//                 the whole coloring (recolor_from_scratch): the full
//                 rebuild-per-epoch baseline the incremental scheme
//                 replaces. Colors are coordinate-pure, so the strawman is
//                 bit-identical in every observable — only the work
//                 differs, which is exactly what the wall clock measures
//                 (the colorer's own counters are zeroed by each reset, so
//                 wall time is the honest cross-mode comparison).
//
// The exit-code gate covers ONLY deterministic invariants so the
// perf-smoke ctest entry cannot flake under scheduler noise:
//   * mixed responses + mutation log bit-identical at 1/2/8 workers
//     (full metrics included) and under the staged pipeline at 1/2
//     workers (responses + mutations + final tree state; pipeline metric
//     sections carry wall-clock stage attribution),
//   * the strawman bit-identical to the incremental run,
//   * final live-set colors bit-identical to a from-scratch ColorMapping
//     over the same envelope (the differential oracle at bench scale),
//   * the stream actually wrote (applied mutations > 0).
// The wall-clock ratios are printed, recorded in BENCH_E24_dyn.json, and
// judged in EXPERIMENTS.md from a quiet-box full run. PMTREE_E24_SMOKE=1
// shrinks every dimension.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E24_SMOKE"); }

std::uint32_t tree_levels() {
  return bench::serve_bench_dims(smoke_mode()).tree_levels;
}
/// COLOR(N, k=2) has N + 1 modules; match the serving dims' module count.
std::uint32_t color_n() {
  return bench::serve_bench_dims(smoke_mode()).modules - 1;
}
constexpr std::uint32_t kColorK = 2;
std::size_t request_count() {
  return bench::serve_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::serve_bench_dims(smoke_mode()).reps; }

/// Writes live in the shallow band of the envelope (the region a growing
/// tree actually occupies); reads are full root-to-leaf envelope paths.
constexpr std::uint32_t kWriteLevels = 6;

/// Mixed stream: 60% path reads, 25% inserts, 15% erases. Writers carry
/// their root path as the read set (the planner's walk) plus the target.
/// Validity is stateful — an insert needs a live parent, an erase a live
/// childless non-root — so early writes mostly reject and the tree grows
/// shallow-first; the barrier's verdict stream is part of the measured
/// work and of the determinism gate.
std::vector<Request> request_stream(std::size_t count, std::uint32_t clients,
                                    std::uint64_t gap, std::uint64_t seed,
                                    bool demote_writes_to_reads) {
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  std::vector<std::uint64_t> next_seq(clients, 0);
  std::uint64_t clock = 0;
  const std::uint32_t bottom = tree_levels() - 1;
  for (std::size_t i = 0; i < count; ++i) {
    clock += gap == 0 ? 0 : rng.below(2 * gap + 1);  // mean ~= gap
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(clients));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    const std::uint64_t draw = rng.below(100);
    if (draw < 60) {  // read: a full root-to-leaf envelope path
      Node n = v(rng.below(pow2(bottom)), bottom);
      r.nodes.push_back(n);
      while (n.level > 0) {
        n = parent(n);
        r.nodes.push_back(n);
      }
    } else {  // write: root path + target in the shallow band
      const auto level =
          static_cast<std::uint32_t>(rng.between(1, kWriteLevels));
      Node n = v(rng.below(pow2(level)), level);
      r.kind = demote_writes_to_reads
                   ? RequestKind::kRead
                   : (draw < 85 ? RequestKind::kInsert : RequestKind::kErase);
      r.target = n;
      r.payload = static_cast<std::int64_t>(i);
      r.nodes.push_back(n);
      while (n.level > 0) {
        n = parent(n);
        r.nodes.push_back(n);
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

ServerOptions serve_options(dyn::DynamicTree& tree,
                            dyn::IncrementalColorer& colorer,
                            bool recolor_from_scratch, unsigned workers,
                            unsigned pipeline_workers) {
  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.replicas = 1;
  opts.workers = workers;
  opts.admission.queue_bound = 128;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  opts.pipeline.workers = pipeline_workers;
  opts.dyn.tree = &tree;
  opts.dyn.colorer = &colorer;
  opts.dyn.recolor_from_scratch = recolor_from_scratch;
  return opts;
}

struct RunOutcome {
  ServeReport report;
  double wall_seconds = 0;
  std::vector<Node> live;          ///< final live set, BFS order
  std::vector<Color> live_colors;  ///< their colors under the run's colorer
  std::uint64_t tree_version = 0;
  std::uint64_t nodes_colored = 0;
  std::uint64_t touches = 0;
};

/// Warmed median-of-N wall time of run() alone. Mutations make run()
/// stateful, so — unlike the static benches — every trial rebuilds the
/// tree + colorer + server in the UNTIMED setup phase and the timed body
/// serves one full stream against fresh state.
RunOutcome run_server(const std::vector<Request>& requests,
                      bool recolor_from_scratch, unsigned workers,
                      unsigned pipeline_workers, int repeat) {
  const CompleteBinaryTree envelope(tree_levels());
  RunOutcome outcome;
  std::optional<dyn::DynamicTree> tree;
  std::optional<dyn::IncrementalColorer> colorer;
  std::unique_ptr<Server> server;
  outcome.wall_seconds = bench::median_wall_seconds(
      /*warmup=*/1, repeat,
      [&] {
        tree.emplace(tree_levels());
        colorer.emplace(
            dyn::IncrementalColorer::color(envelope, color_n(), kColorK));
        server = std::make_unique<Server>(
            *colorer, serve_options(*tree, *colorer, recolor_from_scratch,
                                    workers, pipeline_workers));
        for (const Request& r : requests) server->submit(r);
      },
      [&] { outcome.report = server->run(); });
  outcome.live = tree->live_nodes();
  outcome.live_colors.resize(outcome.live.size());
  colorer->color_of_batch(
      std::span<const Node>(outcome.live.data(), outcome.live.size()),
      std::span<Color>(outcome.live_colors.data(),
                       outcome.live_colors.size()));
  outcome.tree_version = tree->version();
  outcome.nodes_colored = colorer->nodes_colored();
  outcome.touches = colorer->touches();
  return outcome;
}

bool same_responses(const ServeReport& got, const ServeReport& oracle,
                    bool compare_metrics) {
  if (got.responses.size() != oracle.responses.size()) return false;
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& x = got.responses[i];
    const Response& y = oracle.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch ||
        x.dispatch_cycle != y.dispatch_cycle || x.retries != y.retries) {
      return false;
    }
  }
  if (got.batches.size() != oracle.batches.size()) return false;
  if (got.final_cycle != oracle.final_cycle) return false;
  if (!compare_metrics) return true;
  for (const auto& [key, value] : oracle.metrics.members()) {
    if (key == "pipeline") continue;  // wall-time stage attribution
    const Json* other = got.metrics.find(key);
    if (other == nullptr || other->dump() != value.dump()) return false;
  }
  return true;
}

bool same_mutations(const ServeReport& got, const ServeReport& oracle) {
  if (got.mutations.size() != oracle.mutations.size()) return false;
  for (std::size_t i = 0; i < got.mutations.size(); ++i) {
    const MutationRecord& x = got.mutations[i];
    const MutationRecord& y = oracle.mutations[i];
    if (x.batch != y.batch || x.client != y.client || x.seq != y.seq ||
        x.kind != y.kind || x.target != y.target || x.payload != y.payload ||
        x.status != y.status || x.applied_cycle != y.applied_cycle) {
      return false;
    }
  }
  return true;
}

bool same_final_state(const RunOutcome& got, const RunOutcome& oracle) {
  return got.tree_version == oracle.tree_version && got.live == oracle.live &&
         got.live_colors == oracle.live_colors;
}

bool warn_unless(bool ok, const char* what) {
  if (!ok) std::cout << "MISMATCH: " << what << "\n";
  return ok;
}

std::uint64_t applied_mutations(const ServeReport& report) {
  std::uint64_t applied = 0;
  for (const MutationRecord& rec : report.mutations) {
    if (rec.status == dyn::DynStatus::kOk) ++applied;
  }
  return applied;
}

void run_experiment() {
  const std::vector<Request> mixed =
      request_stream(request_count(), 16, 2, 0xE24, false);
  const std::vector<Request> read_only =
      request_stream(request_count(), 16, 2, 0xE24, true);

  // ---- Headline: read-only ceiling vs incremental vs strawman. --------
  const RunOutcome reads = run_server(read_only, false, 1, 0, reps());
  const RunOutcome incremental = run_server(mixed, false, 1, 0, reps());
  const RunOutcome strawman = run_server(mixed, true, 1, 0, reps());

  const auto rps = [](const RunOutcome& r) {
    return static_cast<double>(request_count()) / r.wall_seconds;
  };
  const double vs_reads = rps(incremental) / rps(reads);
  const double vs_strawman = rps(incremental) / rps(strawman);

  TableWriter table({"mode", "wall s", "wall Mreq/s", "applied", "live",
                     "colored", "touches"});
  table.row("read-only ceiling", reads.wall_seconds, rps(reads) / 1e6,
            applied_mutations(reads.report), reads.live.size(),
            reads.nodes_colored, reads.touches);
  table.row("incremental", incremental.wall_seconds, rps(incremental) / 1e6,
            applied_mutations(incremental.report), incremental.live.size(),
            incremental.nodes_colored, incremental.touches);
  table.row("full-recolor strawman", strawman.wall_seconds,
            rps(strawman) / 1e6, applied_mutations(strawman.report),
            strawman.live.size(), strawman.nodes_colored, strawman.touches);
  bench::print_experiment(
      "E24 (dynamic trees: mixed read/write serving)",
      std::to_string(request_count()) + " requests (60% path reads, 25% "
          "inserts, 15% erases), INCR-COLOR(N=" + std::to_string(color_n()) +
          ", k=" + std::to_string(kColorK) + "), height-" +
          std::to_string(tree_levels() - 1) + " envelope; strawman counters "
          "reflect only the final epoch (reset() zeroes them)",
      table);

  // ---- Determinism: the exit-code gate. -------------------------------
  const RunOutcome w2 = run_server(mixed, false, 2, 0, reps());
  const RunOutcome w8 = run_server(mixed, false, 8, 0, reps());
  const RunOutcome p1 = run_server(mixed, false, 1, 1, reps());
  const RunOutcome p2 = run_server(mixed, false, 1, 2, reps());

  const bool id_w2 = warn_unless(
      same_responses(w2.report, incremental.report, true) &&
          same_mutations(w2.report, incremental.report) &&
          same_final_state(w2, incremental),
      "2 workers");
  const bool id_w8 = warn_unless(
      same_responses(w8.report, incremental.report, true) &&
          same_mutations(w8.report, incremental.report) &&
          same_final_state(w8, incremental),
      "8 workers");
  const bool id_p1 = warn_unless(
      same_responses(p1.report, incremental.report, false) &&
          same_mutations(p1.report, incremental.report) &&
          same_final_state(p1, incremental),
      "pipeline 1w");
  const bool id_p2 = warn_unless(
      same_responses(p2.report, incremental.report, false) &&
          same_mutations(p2.report, incremental.report) &&
          same_final_state(p2, incremental),
      "pipeline 2w");
  const bool id_strawman = warn_unless(
      same_responses(strawman.report, incremental.report, false) &&
          same_mutations(strawman.report, incremental.report) &&
          same_final_state(strawman, incremental),
      "full-recolor strawman");

  // The differential oracle at bench scale: the final live set's colors
  // against a from-scratch ColorMapping over the same envelope.
  const CompleteBinaryTree envelope(tree_levels());
  const ColorMapping reference(envelope, color_n(), kColorK);
  bool colors_exact = true;
  for (std::size_t i = 0; i < incremental.live.size(); ++i) {
    colors_exact = colors_exact && incremental.live_colors[i] ==
                                       reference.color_of(incremental.live[i]);
  }
  warn_unless(colors_exact, "from-scratch color differential");
  const bool wrote = applied_mutations(incremental.report) > 0;
  warn_unless(wrote, "stream applied no mutations");

  TableWriter gate({"invariant", "verdict"});
  gate.row("mixed 2 workers == 1 worker", bench::pass_cell(id_w2));
  gate.row("mixed 8 workers == 1 worker", bench::pass_cell(id_w8));
  gate.row("pipeline 1w == oracle", bench::pass_cell(id_p1));
  gate.row("pipeline 2w == oracle", bench::pass_cell(id_p2));
  gate.row("strawman bit-identical", bench::pass_cell(id_strawman));
  gate.row("final colors == from-scratch rebuild",
           bench::pass_cell(colors_exact));
  gate.row("applied mutations > 0", bench::pass_cell(wrote));
  gate.row("incremental >= strawman throughput (informational)",
           smoke_mode() ? "SKIP (smoke dims)"
                        : bench::pass_cell(vs_strawman >= 1.0));
  bench::print_experiment(
      "E24 (acceptance)",
      "exit code gates the deterministic rows only; the wall ratios are "
      "recorded for EXPERIMENTS.md",
      gate);

  Json report = Json::object();
  report.set("experiment", Json("E24"));
  report.set("smoke", Json(smoke_mode()));
  report.set("tree_levels", Json(std::uint64_t{tree_levels()}));
  report.set("color_n", Json(std::uint64_t{color_n()}));
  report.set("requests", Json(request_count()));
  Json rows = Json::object();
  const auto mode_row = [&](const RunOutcome& r) {
    Json row = Json::object();
    row.set("wall_seconds", Json(r.wall_seconds));
    row.set("wall_requests_per_sec", Json(rps(r)));
    row.set("applied", Json(applied_mutations(r.report)));
    row.set("live_nodes", Json(std::uint64_t{r.live.size()}));
    row.set("nodes_colored", Json(r.nodes_colored));
    row.set("touches", Json(r.touches));
    return row;
  };
  rows.set("read_only", mode_row(reads));
  rows.set("incremental", mode_row(incremental));
  rows.set("strawman", mode_row(strawman));
  report.set("rows", std::move(rows));
  report.set("throughput_vs_read_only", Json(vs_reads));
  report.set("throughput_vs_strawman", Json(vs_strawman));
  report.set("identical_workers", Json(id_w2 && id_w8));
  report.set("identical_pipeline", Json(id_p1 && id_p2));
  report.set("strawman_identical", Json(id_strawman));
  report.set("colors_exact", Json(colors_exact));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E24_dyn.json";
  std::ofstream file(path);
  if (file) {
    file << report.dump(2) << '\n';
    std::cout << "JSON dyn report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }

  if (!(id_w2 && id_w8 && id_p1 && id_p2 && id_strawman && colors_exact &&
        wrote)) {
    std::cout << "ERROR: dyn determinism invariants failed\n";
    std::exit(1);
  }
}

// google-benchmark timings: end-to-end mixed serve per mode. Each
// iteration rebuilds tree + colorer + server untimed (run() is stateful).

void BM_DynMixedServe(benchmark::State& state) {
  const bool demote = state.range(0) == 0;
  const bool from_scratch = state.range(0) == 2;
  const CompleteBinaryTree envelope(tree_levels());
  const std::vector<Request> requests =
      request_stream(smoke_mode() ? 300 : 2000, 8, 2, 7, demote);
  for (auto _ : state) {
    state.PauseTiming();
    dyn::DynamicTree tree(envelope.levels());
    dyn::IncrementalColorer colorer =
        dyn::IncrementalColorer::color(envelope, color_n(), kColorK);
    Server server(colorer,
                  serve_options(tree, colorer, from_scratch, 1, 0));
    for (const Request& r : requests) server.submit(r);
    state.ResumeTiming();
    const ServeReport report = server.run();
    benchmark::DoNotOptimize(report.final_cycle);
  }
}
BENCHMARK(BM_DynMixedServe)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
