// E6 — Theorem 6: composite templates under COLOR:
//
//     Cost(COLOR, C(D, c), M) <= 4*D/M + c,
//
// which is M-optimal within a constant factor whenever c = O(D/M).
//
// The table sweeps D and c, sampling random C(D, c) instances (mixes of
// disjoint subtrees, level runs and paths) and reports the sampled maximum
// against the bound, plus the range-query workload of Section 1.1 as a
// structured composite source.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/templates/range_cover.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

constexpr std::uint32_t kM = 15;  // m = 4: N = 11, K = 7

void print_random_table() {
  const CompleteBinaryTree tree(20);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  TableWriter table({"D", "c", "samples", "measured max", "measured mean",
                     "Thm 6 bound", "lower bound", "verdict"});
  Rng rng(607);
  for (const std::uint64_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (const std::uint64_t D : {64u, 256u, 1024u, 4096u}) {
      if (D < c * 2) continue;
      const auto cost = sample_composites(color, D, c, 200, rng);
      if (cost.instances == 0) continue;
      const auto bound = bounds::color_composite_bound(D, kM, c);
      table.row(D, c, cost.instances, cost.max_conflicts, cost.mean_conflicts,
                bound, bounds::trivial_lower(D, kM),
                bench::pass_cell(cost.max_conflicts <= bound));
    }
  }
  bench::print_experiment(
      "E6a (Theorem 6)",
      "Cost(COLOR, C(D, c), M) <= 4*D/M + c on random composites", table);
}

void print_range_query_table() {
  const CompleteBinaryTree tree(18);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  TableWriter table({"range width", "D (nodes)", "c", "measured", "Thm 6 bound",
                     "verdict"});
  Rng rng(608);
  for (const std::uint64_t width : {16u, 128u, 1024u, 8192u}) {
    std::uint64_t worst = 0, worst_D = 0, worst_c = 0, worst_bound = 0;
    bool ok = true;
    for (int q = 0; q < 100; ++q) {
      const std::uint64_t lo = rng.below(tree.num_leaves() - width + 1);
      const auto composite = range_query_template(tree, lo, lo + width - 1);
      const auto nodes = composite.nodes();
      const std::uint64_t measured = conflicts(color, nodes);
      const std::uint64_t bound = bounds::color_composite_bound(
          nodes.size(), kM, composite.component_count());
      ok = ok && measured <= bound;
      if (measured >= worst) {
        worst = measured;
        worst_D = nodes.size();
        worst_c = composite.component_count();
        worst_bound = bound;
      }
    }
    table.row(width, worst_D, worst_c, worst, worst_bound, bench::pass_cell(ok));
  }
  bench::print_experiment(
      "E6b (Theorem 6 on Section 1.1 range queries)",
      "B-tree range queries decompose into C(D, c) and respect the bound",
      table);
}

void BM_CompositeSampling(benchmark::State& state) {
  const auto D = static_cast<std::uint64_t>(state.range(0));
  const CompleteBinaryTree tree(20);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_composites(color, D, 8, 10, rng).max_conflicts);
  }
}
BENCHMARK(BM_CompositeSampling)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  print_random_table();
  print_range_query_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
