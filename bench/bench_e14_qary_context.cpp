// E14 — the generalized q-ary model (Section 1.2 context: Das-Pinotti map
// "t-ary subtrees of a complete k-ary tree" conflict-free; refs [6], [7],
// [9]).
//
// pmtree's generic q-ary mappings bracket the specialized constructions:
// QARY-LEVEL-MOD is CF on paths with the minimal M modules for any arity;
// QARY-BRICK is CF on aligned t-level subtrees with the minimal
// (q^t - 1)/(q - 1) modules; the baselines show what unstructured layouts
// cost. The table quantifies the versatility gap the specialized schemes
// of the references close (and which, for q = 2, COLOR closes optimally).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/qary/qary_mapping.hpp"

namespace {

using namespace pmtree;

void print_table() {
  TableWriter table({"q", "levels", "mapping", "modules", "P(M) cf",
                     "aligned S(t) cf", "any S(t)", "L(M)"});
  const struct {
    std::uint32_t q, levels;
  } shapes[] = {{2, 8}, {3, 6}, {4, 5}, {5, 4}};
  for (const auto& shape : shapes) {
    const QaryTree tree(shape.q, shape.levels);
    const std::uint32_t t = 2;
    const std::uint32_t M_path = shape.levels;

    const QaryLevelModMapping level_mod(tree, M_path);
    const QarySubtreeMapping brick(tree, t);
    const QaryModuloMapping modulo(tree, M_path);
    const QaryRandomMapping random(tree, M_path, 11);

    for (const QaryMapping* map :
         {static_cast<const QaryMapping*>(&level_mod),
          static_cast<const QaryMapping*>(&brick),
          static_cast<const QaryMapping*>(&modulo),
          static_cast<const QaryMapping*>(&random)}) {
      const std::uint64_t p = evaluate_qary_paths(*map, M_path);
      const std::uint64_t sa = evaluate_qary_aligned_subtrees(*map, t, t);
      const std::uint64_t s = evaluate_qary_subtrees(*map, t);
      const std::uint64_t l = evaluate_qary_level_runs(*map, M_path);
      // "yes"/"no" rather than PASS/FAIL: a specialist failing the other
      // families is the expected story, not a regression.
      table.row(shape.q, shape.levels, map->name(), map->num_modules(),
                p == 0, sa == 0, s, l);
    }
  }
  bench::print_experiment(
      "E14 (Section 1.2 context: q-ary trees)",
      "generic q-ary mappings: each specialist is CF on its own family "
      "and pays on the others — the versatility gap refs [6,7,9] close",
      table);
}

void BM_QaryEvaluation(benchmark::State& state) {
  const QaryTree tree(static_cast<std::uint32_t>(state.range(0)), 6);
  const QarySubtreeMapping map(tree, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_qary_subtrees(map, 2));
  }
}
BENCHMARK(BM_QaryEvaluation)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
