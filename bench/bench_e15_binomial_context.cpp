// E15 — the Section 1.2 binomial-tree context (refs [7], [9]: "subtrees
// of a binomial tree").
//
// The classic binomial-heap labeling makes both specialists exact:
// label-mod-2^k is conflict-free on every subtree of order <= k with the
// minimal 2^k modules; popcount-mod-M is conflict-free on root-path
// segments of <= M nodes. The table shows each specialist's exhaustive
// worst case on both families — the same versatility trade-off the paper
// resolves for complete binary trees.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/binomial/binomial_tree.hpp"

namespace {

using namespace pmtree;

void print_table() {
  const BinomialTree tree(10);  // 1024 nodes
  TableWriter table({"mapping", "modules", "S(B_4)", "S(B_5)", "paths of 8",
                     "paths of 11"});
  const BinomialSubtreeMapping sub(tree, 4);
  const BinomialSubtreeMapping sub5(tree, 5);
  const BinomialPathMapping path(tree, 8);
  const BinomialPathMapping path16(tree, 16);
  for (const BinomialMapping* map :
       {static_cast<const BinomialMapping*>(&sub),
        static_cast<const BinomialMapping*>(&sub5),
        static_cast<const BinomialMapping*>(&path),
        static_cast<const BinomialMapping*>(&path16)}) {
    table.row(map->name(), map->num_modules(),
              evaluate_binomial_subtrees(*map, 4),
              evaluate_binomial_subtrees(*map, 5),
              evaluate_binomial_paths(*map, 8),
              evaluate_binomial_paths(*map, 11));
  }
  bench::print_experiment(
      "E15 (Section 1.2 context: binomial trees)",
      "label-mod-2^k: CF subtrees up to order k; popcount-mod-M: CF paths "
      "up to M — each specialist pays on the other family",
      table);
}

void BM_BinomialEvaluation(benchmark::State& state) {
  const BinomialTree tree(static_cast<std::uint32_t>(state.range(0)));
  const BinomialSubtreeMapping map(tree, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_binomial_subtrees(map, 4));
  }
}
BENCHMARK(BM_BinomialEvaluation)->Arg(10)->Arg(14)->Arg(18);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
