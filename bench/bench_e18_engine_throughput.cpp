// E18 — engine throughput: the event-driven core vs the seed loop, and
// shard scale-out.
//
// The seed engine (ReferenceEngine, the frozen PR-1 loop) pays O(modules)
// per cycle in deque scans and histogram sampling; the event-driven core
// (DESIGN.md §8) pays O(backlogged modules) per stepped cycle and retires
// whole busy spans in bulk when sampling permits. Two bursty scenarios on
// a height-20 tree bracket the design space:
//
//   * "uniform": mixed template families at roughly balanced module load.
//     Most modules are backlogged during a burst, so O(backlogged) is
//     close to O(modules) and the win is the constant factor of the flat
//     ring queues over deques.
//   * "hot-spot": Zipf-skewed point lookups with a parent-pointer chase —
//     the traffic a real tree index sees (popular keys dominate, every
//     chase ends in the root region). One module's queue runs a hundred
//     deep while the other ~510 sit idle, and the seed loop still scans
//     all of them every cycle of that drain. This is the regime the
//     active worklist and the cycle skip target, and the scenario the
//     >= 5x single-thread acceptance bar is measured on.
//
// Every configuration's trajectory is checked identical to the seed's
// before its row is printed, and the sharded runner rows additionally
// check bit-identity across 1/2/8 worker threads (wall-clock speedup is
// bounded by hardware_concurrency, which the JSON records for 1-core CI
// readers).
//
// A BENCH_E18_engine_throughput.json report goes to $PMTREE_BENCH_JSON
// (or the working directory). PMTREE_E18_SMOKE=1 shrinks every dimension
// so the ctest perf-smoke label finishes in seconds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/json.hpp"
#include "pmtree/engine/reference.hpp"
#include "pmtree/engine/sharded.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineOptions;
using engine::EngineResult;
using engine::Json;
using engine::ReferenceEngine;
using engine::ShardedEngineRunner;
using engine::ShardedOptions;

bool smoke_mode() {
  const char* env = std::getenv("PMTREE_E18_SMOKE");
  return env != nullptr && std::string(env) != "0";
}

// Height-20 tree (21 levels) per the acceptance criteria; smoke shrinks it.
// The module array is production-sized (hundreds of modules): accesses of
// a few dozen nodes back up only a sliver of it, which is exactly the
// asymmetry — O(backlogged) vs O(modules) — the event core exploits.
std::uint32_t tree_levels() { return smoke_mode() ? 15 : 21; }
std::uint32_t module_count() { return smoke_mode() ? 127 : 511; }
std::size_t uniform_access_count() { return smoke_mode() ? 3000 : 30000; }
std::size_t hotspot_access_count() { return smoke_mode() ? 6000 : 60000; }
std::uint64_t access_size() { return smoke_mode() ? 15 : 31; }
int reps() { return smoke_mode() ? 2 : 3; }

/// Zipf-skewed point lookups with a short parent-pointer chase. Each
/// access reads a popular node plus (up to) two ancestors — the classic
/// hot-spot pattern of tree indexes, where a handful of keys absorb most
/// of the traffic and every chase climbs toward the root. Popularity is
/// Zipf(s = 1.25) over the top 2^16 BFS ids (the cached "hot set"); the
/// resulting module load is so skewed that one queue drains for ~a
/// hundred cycles while almost every other module idles.
Workload hotspot_workload(const CompleteBinaryTree& tree, std::size_t count,
                          std::uint64_t seed) {
  const std::uint64_t hot =
      std::min<std::uint64_t>(tree.size(), std::uint64_t{1} << 16);
  std::vector<double> cum(hot);
  double total = 0;
  for (std::uint64_t r = 0; r < hot; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), 1.25);
    cum[r] = total;
  }
  Rng rng(seed);
  std::vector<Workload::Access> accesses;
  accesses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u =
        static_cast<double>(rng.below(std::uint64_t{1} << 53)) /
        static_cast<double>(std::uint64_t{1} << 53) * total;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
    Node n = node_at(std::min(rank, hot - 1));
    Workload::Access access{n};
    for (int hop = 0; hop < 2 && n.level > 0; ++hop) {
      n = parent(n);
      access.push_back(n);
    }
    accesses.push_back(std::move(access));
  }
  return Workload(std::move(accesses));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Trajectory equality (everything EngineOptions promises to preserve).
bool same_trajectory(const EngineResult& a, const EngineResult& b) {
  if (a.accesses != b.accesses || a.requests != b.requests ||
      a.completion_cycle != b.completion_cycle ||
      a.busy_cycles != b.busy_cycles || a.served != b.served ||
      a.queue_high_water != b.queue_high_water ||
      a.records.size() != b.records.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].arrival != b.records[i].arrival ||
        a.records[i].completion != b.records[i].completion) {
      return false;
    }
  }
  return true;
}

struct Row {
  std::string config;
  double wall_seconds = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t requests = 0;
  bool identical = false;

  [[nodiscard]] double cycles_per_sec() const {
    return static_cast<double>(sim_cycles) / wall_seconds;
  }
  [[nodiscard]] double requests_per_sec() const {
    return static_cast<double>(requests) / wall_seconds;
  }
};

template <typename Run>
Row measure(const std::string& config, const EngineResult* oracle, int repeat,
            Run&& run) {
  Row row;
  row.config = config;
  row.wall_seconds = 1e9;  // best-of-N: shared CI boxes are noisy
  EngineResult last;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    last = run();
    row.wall_seconds = std::min(row.wall_seconds, seconds_since(t0));
  }
  row.sim_cycles = last.completion_cycle;
  row.requests = last.requests;
  row.identical = oracle == nullptr || same_trajectory(last, *oracle);
  return row;
}

/// One scenario: seed vs the event core's three sampling modes, each
/// trajectory-checked against the seed run. Returns the JSON block.
Json run_scenario(const std::string& name, const ColorMapping& mapping,
                  const Workload& workload, const ArrivalSchedule& schedule,
                  std::uint64_t burst, std::uint64_t gap) {
  const ReferenceEngine seed(mapping);
  const CycleEngine eng(mapping);
  const EngineResult oracle = seed.run(workload, schedule);

  EngineOptions full;  // kEveryBusyCycle
  EngineOptions strided;
  strided.sampling = EngineOptions::DepthSampling::kStrided;
  strided.sample_stride = 64;
  EngineOptions off;
  off.sampling = EngineOptions::DepthSampling::kOff;

  std::vector<Row> rows;
  rows.push_back(measure("seed (ReferenceEngine)", nullptr, reps(),
                         [&] { return seed.run(workload, schedule); }));
  rows[0].identical = true;  // the oracle is its own baseline
  rows.push_back(measure("event core, sample every cycle", &oracle, reps(),
                         [&] { return eng.run(workload, schedule, full); }));
  rows.push_back(measure("event core, strided sampling /64", &oracle, reps(),
                         [&] { return eng.run(workload, schedule, strided); }));
  rows.push_back(measure("event core, sampling off", &oracle, reps(),
                         [&] { return eng.run(workload, schedule, off); }));

  const double seed_cps = rows[0].cycles_per_sec();
  TableWriter table({"engine", "wall s", "sim Mcycles/s", "Mreq/s",
                     "speedup vs seed", "trajectory"});
  Json jrows = Json::array();
  for (const Row& r : rows) {
    table.row(r.config, r.wall_seconds, r.cycles_per_sec() / 1e6,
              r.requests_per_sec() / 1e6, r.cycles_per_sec() / seed_cps,
              bench::pass_cell(r.identical));
    Json e = Json::object();
    e.set("config", Json(r.config));
    e.set("wall_seconds", Json(r.wall_seconds));
    e.set("sim_cycles", Json(r.sim_cycles));
    e.set("requests", Json(r.requests));
    e.set("cycles_per_sec", Json(r.cycles_per_sec()));
    e.set("requests_per_sec", Json(r.requests_per_sec()));
    e.set("speedup_vs_seed", Json(r.cycles_per_sec() / seed_cps));
    e.set("trajectory_identical", Json(r.identical));
    jrows.push_back(std::move(e));
  }
  bench::print_experiment(
      "E18 (engine throughput: " + name + ")",
      "bursty(" + std::to_string(burst) + "," + std::to_string(gap) + ") x " +
          std::to_string(workload.size()) + " accesses, height-" +
          std::to_string(tree_levels() - 1) + " tree, M = " +
          std::to_string(mapping.num_modules()),
      table);

  Json scenario = Json::object();
  scenario.set("scenario", Json(name));
  scenario.set("accesses", Json(static_cast<std::uint64_t>(workload.size())));
  scenario.set("schedule", Json(schedule.name()));
  scenario.set("engines", std::move(jrows));
  return scenario;
}

void run_experiment() {
  const unsigned hw = std::thread::hardware_concurrency();
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping mapping = make_optimal_color_mapping(tree, module_count());
  const std::uint64_t burst = 96;
  const std::uint64_t gap = 128;
  const ArrivalSchedule schedule = ArrivalSchedule::bursty(burst, gap);

  // Scenario 1 — uniform: mixed template families, load spread across the
  // module array. Bounds the constant-factor win when nearly everything
  // is backlogged.
  const Workload uniform =
      Workload::mixed(tree, access_size(), uniform_access_count(), 0xE18);
  Json juniform =
      run_scenario("uniform mixed templates", mapping, uniform, schedule,
                   burst, gap);

  // Scenario 2 — hot-spot: Zipf point lookups + parent chase. Each burst
  // buries a handful of root-region modules and the window drains through
  // a long one-module-active tail, which the seed walks at O(modules) per
  // cycle. The >= 5x acceptance bar applies to "sampling off" here.
  const Workload hotspot =
      hotspot_workload(tree, hotspot_access_count(), 0xE18);
  Json jhotspot = run_scenario("hot-spot Zipf lookups", mapping, hotspot,
                               schedule, burst, gap);

  // Shard scale-out: S independent replicas, the stream round-robined
  // across them, at 1/2/8 worker threads. Requests/sec is the fleet
  // figure of merit; results must be bit-identical at every thread count.
  const std::size_t shards = 8;
  const ShardedEngineRunner runner(mapping);
  ShardedOptions sharded_base;
  sharded_base.shards = shards;
  sharded_base.engine.sampling = EngineOptions::DepthSampling::kOff;

  TableWriter stable({"threads", "wall s", "Mreq/s", "speedup vs 1t",
                      "bit-identical"});
  Json jshard = Json::array();
  double shard_1t = 0;
  EngineResult merged_1t;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ShardedOptions opts = sharded_base;
    opts.threads = threads;
    double wall = 1e9;
    EngineResult merged;
    for (int rep = 0; rep < reps(); ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      merged = runner.run(hotspot, schedule, opts).merged;
      wall = std::min(wall, seconds_since(t0));
    }
    if (threads == 1) {
      shard_1t = wall;
      merged_1t = merged;
    }
    const bool identical = same_trajectory(merged, merged_1t);
    const double rps = static_cast<double>(merged.requests) / wall;
    stable.row(threads, wall, rps / 1e6, shard_1t / wall,
               bench::pass_cell(identical));
    Json e = Json::object();
    e.set("threads", Json(static_cast<std::uint64_t>(threads)));
    e.set("wall_seconds", Json(wall));
    e.set("requests_per_sec", Json(rps));
    e.set("speedup_vs_1t", Json(shard_1t / wall));
    e.set("identical", Json(identical));
    jshard.push_back(std::move(e));
  }
  bench::print_experiment(
      "E18 (sharded runner)",
      std::to_string(shards) + " shards, sampling off, hot-spot workload "
      "(hardware_concurrency = " + std::to_string(hw) + ")",
      stable);

  Json report = Json::object();
  report.set("experiment", Json("E18"));
  report.set("smoke", Json(smoke_mode()));
  report.set("hardware_concurrency", Json(static_cast<std::uint64_t>(hw)));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(tree_levels())));
  report.set("modules",
             Json(static_cast<std::uint64_t>(mapping.num_modules())));
  report.set("target_speedup", Json(5.0));
  Json scenarios = Json::array();
  scenarios.push_back(std::move(juniform));
  scenarios.push_back(std::move(jhotspot));
  report.set("scenarios", std::move(scenarios));
  Json sh = Json::object();
  sh.set("shards", Json(static_cast<std::uint64_t>(shards)));
  sh.set("runs", std::move(jshard));
  sh.set("note",
         Json(std::string("wall-clock speedup is bounded by "
                          "hardware_concurrency; merged results are "
                          "bit-identical at every thread count")));
  report.set("sharded", std::move(sh));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E18_engine_throughput.json";
  std::ofstream out(path);
  if (out) {
    out << report.dump(2) << '\n';
    std::cout << "JSON throughput report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }
}

// google-benchmark timings on a fixed mid-size configuration.

struct BenchSetup {
  CompleteBinaryTree tree;
  ColorMapping mapping;
  Workload workload;
  ArrivalSchedule schedule;
  BenchSetup()
      : tree(smoke_mode() ? 12 : 16),
        mapping(make_optimal_color_mapping(tree, 31)),
        workload(Workload::mixed(tree, 15, smoke_mode() ? 500 : 4000, 7)),
        schedule(ArrivalSchedule::bursty(64, 16)) {}
};

void BM_SeedEngine(benchmark::State& state) {
  const BenchSetup s;
  const ReferenceEngine eng(s.mapping);
  for (auto _ : state) {
    const EngineResult r = eng.run(s.workload, s.schedule);
    benchmark::DoNotOptimize(r.completion_cycle);
  }
}
BENCHMARK(BM_SeedEngine);

void BM_EventEngine(benchmark::State& state) {
  const BenchSetup s;
  const CycleEngine eng(s.mapping);
  EngineOptions opts;
  opts.sampling = state.range(0) == 0 ? EngineOptions::DepthSampling::kOff
                                      : EngineOptions::DepthSampling::kStrided;
  for (auto _ : state) {
    const EngineResult r = eng.run(s.workload, s.schedule, opts);
    benchmark::DoNotOptimize(r.completion_cycle);
  }
}
BENCHMARK(BM_EventEngine)->Arg(0)->Arg(1);

void BM_ShardedEngine(benchmark::State& state) {
  const BenchSetup s;
  const ShardedEngineRunner runner(s.mapping);
  ShardedOptions opts;
  opts.shards = 8;
  opts.threads = static_cast<unsigned>(state.range(0));
  opts.engine.sampling = EngineOptions::DepthSampling::kOff;
  for (auto _ : state) {
    const auto r = runner.run(s.workload, s.schedule, opts);
    benchmark::DoNotOptimize(r.merged.completion_cycle);
  }
}
BENCHMARK(BM_ShardedEngine)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
