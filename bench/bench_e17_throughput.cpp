// E17 — retrieval and evaluation throughput: the batch kernels vs the
// scalar paths.
//
// Section 3.2 of the paper prices retrieval per node: O(H) with no
// preprocessing, O(H/(N-k)) with the block table, O(1) with the full
// table. The batch kernel (color_of_batch) changes the accounting: the
// top-of-tree colors and the per-block Gamma resolutions are paid once per
// batch instead of once per node, so even the no-preprocessing
// configuration retrieves at near-gather speed. This bench measures
// colors/second, scalar vs batch, for COLOR under kLazy and kBlockTable
// and for the eager full-table mapping, on a height-24 tree (25 levels —
// too tall for a full table, so the amortization is doing real work), and
// then times the parallel family evaluators at 1/2/8 threads, checking
// the results stay bit-identical while they scale.
//
// Wall-clock threading speedups are physically bounded by the host's
// cores; the JSON report records hardware_concurrency so a 1-core CI
// reading ~1.0x is interpretable. A BENCH_E17_throughput.json report goes
// to $PMTREE_BENCH_JSON (or the working directory). PMTREE_E17_SMOKE=1
// shrinks every dimension so the ctest perf-smoke label finishes in
// seconds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/engine/json.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using engine::Json;

bool smoke_mode() {
  const char* env = std::getenv("PMTREE_E17_SMOKE");
  return env != nullptr && std::string(env) != "0";
}

std::uint32_t deep_levels() { return smoke_mode() ? 18 : 25; }
std::uint32_t eval_levels() { return smoke_mode() ? 14 : 20; }
std::size_t probe_nodes() { return smoke_mode() ? (1u << 16) : (1u << 20); }

std::vector<Node> random_nodes(const CompleteBinaryTree& tree,
                               std::size_t count) {
  Rng rng(20250805);
  std::vector<Node> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Uniform over bfs ids: roughly half the probes land on the deepest
    // level, like a leaf-heavy workload would.
    out.push_back(node_at(rng.below(tree.size())));
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RetrievalRow {
  std::string config;
  double scalar_cps = 0;  // colors per second, one color_of per node
  double batch_cps = 0;   // colors per second, one color_of_batch call
  bool identical = false;
};

RetrievalRow measure_retrieval(const TreeMapping& mapping,
                               const std::string& config,
                               const std::vector<Node>& nodes) {
  RetrievalRow row;
  row.config = config;

  std::vector<Color> scalar(nodes.size());
  std::vector<Color> batch(nodes.size());

  // Warm both paths (builds ColorMapping's lazy accelerator outside the
  // timed region — one-off cost, amortized over the mapping's lifetime).
  mapping.color_of_batch(nodes, batch);

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    scalar[i] = mapping.color_of(nodes[i]);
  }
  const double scalar_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  mapping.color_of_batch(nodes, batch);
  const double batch_s = seconds_since(t0);

  row.scalar_cps = static_cast<double>(nodes.size()) / scalar_s;
  row.batch_cps = static_cast<double>(nodes.size()) / batch_s;
  row.identical = scalar == batch;
  return row;
}

struct EvalRow {
  unsigned threads = 1;
  double wall_seconds = 0;
  bool identical = true;
};

void run_experiment() {
  const unsigned hw = std::thread::hardware_concurrency();
  const CompleteBinaryTree deep(deep_levels());
  const std::vector<Node> nodes = random_nodes(deep, probe_nodes());

  // N = 6, k = 3: stride 3, so a bottom-of-tree chase crosses ~8 block
  // generations — the deep-chase regime the batch kernel targets.
  const ColorMapping lazy(deep, 6, 3, internal::GammaVariant::kCorrect,
                          ColorMapping::Retrieval::kLazy);
  const ColorMapping table(deep, 6, 3, internal::GammaVariant::kCorrect,
                           ColorMapping::Retrieval::kBlockTable);
  // The eager full table needs O(2^H) space, so it gets a shallower tree
  // (the paper's trade-off, not a bench artifact).
  const std::uint32_t eager_levels = smoke_mode() ? 16 : 21;
  const CompleteBinaryTree eager_tree(eager_levels);
  const ColorMapping eager_base(eager_tree, 6, 3);
  const EagerColorMapping eager(eager_base);
  const std::vector<Node> eager_nodes =
      random_nodes(eager_tree, probe_nodes());

  std::vector<RetrievalRow> rows;
  rows.push_back(measure_retrieval(lazy, "COLOR kLazy", nodes));
  rows.push_back(measure_retrieval(table, "COLOR kBlockTable", nodes));
  rows.push_back(measure_retrieval(eager, "Eager full table", eager_nodes));

  const double scalar_lazy_cps = rows[0].scalar_cps;
  TableWriter rtable({"config", "tree levels", "scalar col/s", "batch col/s",
                      "batch vs scalar", "batch vs scalar-kLazy", "agree"});
  Json jrows = Json::array();
  for (const RetrievalRow& r : rows) {
    const std::uint32_t lv =
        r.config.rfind("Eager", 0) == 0 ? eager_levels : deep_levels();
    rtable.row(r.config, lv, static_cast<std::uint64_t>(r.scalar_cps),
               static_cast<std::uint64_t>(r.batch_cps),
               r.batch_cps / r.scalar_cps, r.batch_cps / scalar_lazy_cps,
               bench::pass_cell(r.identical));
    Json e = Json::object();
    e.set("config", Json(r.config));
    e.set("tree_levels", Json(static_cast<std::uint64_t>(lv)));
    e.set("scalar_colors_per_sec", Json(r.scalar_cps));
    e.set("batch_colors_per_sec", Json(r.batch_cps));
    e.set("batch_vs_scalar", Json(r.batch_cps / r.scalar_cps));
    e.set("batch_vs_scalar_klazy", Json(r.batch_cps / scalar_lazy_cps));
    e.set("identical", Json(r.identical));
    jrows.push_back(std::move(e));
  }
  bench::print_experiment(
      "E17 (throughput: batch kernels)",
      "colors/sec scalar vs batch, height-" +
          std::to_string(deep_levels() - 1) + " tree, " +
          std::to_string(nodes.size()) + " probes",
      rtable);

  // Parallel evaluator scaling: same family, 1/2/8 threads, identical
  // results required.
  const CompleteBinaryTree etree(eval_levels());
  const ColorMapping emap(etree, 6, 3);
  const std::uint64_t K = 7;
  const FamilyCost base = evaluate_subtrees(emap, K, EvalOptions{1, 0});

  TableWriter etable(
      {"threads", "wall s", "speedup vs 1t", "bit-identical"});
  Json jevals = Json::array();
  double base_s = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    EvalRow row;
    row.threads = threads;
    // Best of 3: evaluator wall times on shared CI boxes are noisy.
    row.wall_seconds = 1e9;
    FamilyCost got;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      got = evaluate_subtrees(emap, K, EvalOptions{threads, 0});
      row.wall_seconds = std::min(row.wall_seconds, seconds_since(t0));
    }
    row.identical = got.max_conflicts == base.max_conflicts &&
                    got.mean_conflicts == base.mean_conflicts &&
                    got.instances == base.instances &&
                    got.witness == base.witness;
    if (threads == 1) base_s = row.wall_seconds;
    etable.row(row.threads, row.wall_seconds, base_s / row.wall_seconds,
               bench::pass_cell(row.identical));
    Json e = Json::object();
    e.set("threads", Json(static_cast<std::uint64_t>(row.threads)));
    e.set("wall_seconds", Json(row.wall_seconds));
    e.set("speedup_vs_1t", Json(base_s / row.wall_seconds));
    e.set("identical", Json(row.identical));
    jevals.push_back(std::move(e));
  }
  bench::print_experiment(
      "E17 (parallel evaluators)",
      "evaluate_subtrees on " + std::to_string(eval_levels()) +
          "-level tree, K = " + std::to_string(K) +
          " (hardware_concurrency = " + std::to_string(hw) + ")",
      etable);

  Json report = Json::object();
  report.set("experiment", Json("E17"));
  report.set("smoke", Json(smoke_mode()));
  report.set("hardware_concurrency", Json(static_cast<std::uint64_t>(hw)));
  report.set("deep_tree_levels",
             Json(static_cast<std::uint64_t>(deep_levels())));
  report.set("probe_nodes", Json(static_cast<std::uint64_t>(nodes.size())));
  report.set("retrieval", std::move(jrows));
  Json ev = Json::object();
  ev.set("tree_levels", Json(static_cast<std::uint64_t>(eval_levels())));
  ev.set("family", Json(std::string("subtrees")));
  ev.set("K", Json(K));
  ev.set("runs", std::move(jevals));
  ev.set("note",
         Json(std::string("wall-clock speedup is bounded by "
                          "hardware_concurrency; results are bit-identical "
                          "at every thread count by construction")));
  report.set("evaluator", std::move(ev));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E17_throughput.json";
  std::ofstream out(path);
  if (out) {
    out << report.dump(2) << '\n';
    std::cout << "JSON throughput report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }
}

void BM_BatchColorLazy(benchmark::State& state) {
  const CompleteBinaryTree tree(deep_levels());
  const ColorMapping mapping(tree, 6, 3);
  const std::vector<Node> nodes = random_nodes(tree, 1u << 14);
  std::vector<Color> out(nodes.size());
  mapping.color_of_batch(nodes, out);  // warm the accelerator
  for (auto _ : state) {
    mapping.color_of_batch(nodes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes.size()));
}
BENCHMARK(BM_BatchColorLazy);

void BM_ScalarColorLazy(benchmark::State& state) {
  const CompleteBinaryTree tree(deep_levels());
  const ColorMapping mapping(tree, 6, 3);
  const std::vector<Node> nodes = random_nodes(tree, 1u << 14);
  for (auto _ : state) {
    Color sink = 0;
    for (const Node& n : nodes) sink ^= mapping.color_of(n);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes.size()));
}
BENCHMARK(BM_ScalarColorLazy);

void BM_EvaluateSubtreesParallel(benchmark::State& state) {
  const CompleteBinaryTree tree(smoke_mode() ? 12 : 16);
  const ColorMapping mapping(tree, 6, 3);
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const FamilyCost fc =
        evaluate_subtrees(mapping, 7, EvalOptions{threads, 0});
    benchmark::DoNotOptimize(fc.max_conflicts);
  }
}
BENCHMARK(BM_EvaluateSubtreesParallel)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
