// E7 — Theorem 7 (LABEL-TREE at template size M):
//
//   * O(sqrt(M / log M)) conflicts on all size-M elementary templates;
//   * memory load ratio 1 + o(1);
//   * O(1) addressing after O(M) preprocessing, O(log M) without.
//
// Table (a) sweeps M and reports the measured worst case for S(M), P(M),
// L(M) against the sqrt(M/log M) scale (the theorem's envelope) and
// against COLOR's cost-1 result — quantifying what LABEL-TREE gives up in
// conflicts. Table (b) regenerates the load-balance claim: the max/min
// module load ratio as the tree grows (should approach 1), with COLOR's
// skew alongside. The timing section measures the two retrieval modes.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

void print_conflict_table() {
  TableWriter table({"M", "sqrt(M/logM)", "LT S(M)", "LT P(M)", "LT L(M)",
                     "COLOR worst", "verdict (<=4x scale + 2)"});
  for (std::uint32_t m = 3; m <= 6; ++m) {
    const auto M = static_cast<std::uint32_t>(tree_size(m));
    const std::uint32_t levels = std::min<std::uint32_t>(std::max(M, 14u), 18);
    if (levels < m) continue;
    const CompleteBinaryTree tree(levels);
    const LabelTreeMapping label(tree, M);

    const auto s = evaluate_subtrees(label, M).max_conflicts;
    const auto p = levels >= M ? evaluate_paths(label, M).max_conflicts : 0;
    const auto l = evaluate_level_runs(label, M).max_conflicts;

    const EagerColorMapping color(make_optimal_color_mapping(tree, M));
    const auto cs = evaluate_subtrees(color, M).max_conflicts;
    const auto cp = levels >= M ? evaluate_paths(color, M).max_conflicts : 0;

    const double scale = bounds::label_tree_m_scale(M);
    const double envelope = 4.0 * scale + 2.0;
    const bool ok = static_cast<double>(std::max({s, p, l})) <= envelope;
    table.row(M, scale, s, p, l, std::max(cs, cp), bench::pass_cell(ok));
  }
  bench::print_experiment(
      "E7a (Theorem 7, conflicts)",
      "LABEL-TREE: O(sqrt(M/log M)) conflicts on size-M elementary "
      "templates (COLOR: 1, with the costlier addressing)",
      table);
}

void print_load_table() {
  TableWriter table({"M", "tree levels", "LT max/min", "LT ratio",
                     "COLOR ratio", "verdict (LT -> 1)"});
  for (const std::uint32_t M : {15u, 31u, 63u}) {
    for (const std::uint32_t levels : {14u, 18u, 22u}) {
      const CompleteBinaryTree tree(levels);
      const LabelTreeMapping label(tree, M);
      const auto lt = load_balance(label);
      const ColorMapping color = make_optimal_color_mapping(tree, M);
      const auto co = load_balance(EagerColorMapping(color));
      table.row(M, levels,
                std::to_string(lt.max_load) + "/" + std::to_string(lt.min_load),
                lt.ratio(), co.ratio(), bench::pass_cell(lt.ratio() <= 1.25));
    }
  }
  bench::print_experiment(
      "E7b (Theorem 7, load balance)",
      "LABEL-TREE's module load ratio is 1 + o(1); COLOR overloads modules",
      table);
}

void BM_LabelTreeRetrievalTable(benchmark::State& state) {
  const CompleteBinaryTree tree(24);
  const LabelTreeMapping map(tree, static_cast<std::uint32_t>(state.range(0)),
                             LabelTreeMapping::Retrieval::kTable);
  Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += map.color_of(node_at(rng.below(tree.size())));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LabelTreeRetrievalTable)->Arg(15)->Arg(255)->Arg(1023);

void BM_LabelTreeRetrievalRecursive(benchmark::State& state) {
  const CompleteBinaryTree tree(24);
  const LabelTreeMapping map(tree, static_cast<std::uint32_t>(state.range(0)),
                             LabelTreeMapping::Retrieval::kRecursive);
  Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += map.color_of(node_at(rng.below(tree.size())));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LabelTreeRetrievalRecursive)->Arg(15)->Arg(255)->Arg(1023);

}  // namespace

int main(int argc, char** argv) {
  print_conflict_table();
  print_load_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
