// E20 — fault injection and degraded-mode serving: what happens to the
// paper's guarantees when the parallel memory system loses modules.
//
// The fault layer (pmtree/fault, DESIGN.md §12) makes degradation a
// deterministic, measurable input: seeded FaultPlans fail-stop a fraction
// of the modules and throttle others transiently, the engines reroute and
// stall accordingly, and the serve front-end retries timed-out attempts
// with capped exponential backoff. Three questions are measured:
//
//   * SLO under module loss: the E19-style request stream against the
//     same COLOR mapping while 0% / 10% / 25% of the modules fail-stop
//     mid-run (plus two transient slowdowns). Reported: p50/p99/p999
//     end-to-end latency, retries, reroutes, stalled module-cycles and
//     simulated throughput. The headline claim — p99 stays *bounded*
//     (degraded, not dead) with 10% of modules failed — is a checked
//     cell, not prose: every request must reach a terminal status and the
//     p99 inflation factor over healthy is printed.
//   * Engine-level cost of degradation: completion-cycle inflation of the
//     cycle engine under the same plans, healthy vs faulted wall-clock,
//     and the DegradedMapping cross-check (a steady-state post-failure
//     run must land every access exactly where the degraded mapping says).
//   * Determinism under faults: the full faulted + retrying pipeline at
//     1/2/8 workers, checked bit-identical row by row against the
//     1-worker oracle.
//
// A BENCH_E20_faults.json report goes to $PMTREE_BENCH_JSON (or the
// working directory). PMTREE_E20_SMOKE=1 shrinks every dimension so the
// ctest perf-smoke label finishes in seconds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/engine/engine.hpp"
#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/combinators.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E20_SMOKE"); }

// Dimensions shared with E19/E22 (bench_common.hpp) so the serving gates
// stay comparable.
std::uint32_t tree_levels() {
  return bench::serve_bench_dims(smoke_mode()).tree_levels;
}
std::uint32_t module_count() {
  return bench::serve_bench_dims(smoke_mode()).modules;
}
std::size_t request_count() {
  return bench::serve_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::serve_bench_dims(smoke_mode()).reps; }

/// The E19 request mix: mostly root-to-leaf path lookups, some sibling
/// pairs, a few short level runs, from `clients` client streams.
std::vector<Request> request_stream(const CompleteBinaryTree& tree,
                                    std::size_t count, std::uint32_t clients,
                                    std::uint64_t gap, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  std::vector<std::uint64_t> next_seq(clients, 0);
  std::uint64_t clock = 0;
  const std::uint32_t bottom = tree.levels() - 1;
  for (std::size_t i = 0; i < count; ++i) {
    clock += gap == 0 ? 0 : rng.below(2 * gap + 1);  // mean ~= gap
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(clients));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    const std::uint64_t kind = rng.below(10);
    if (kind < 7) {
      Node n = v(rng.below(pow2(bottom)), bottom);
      r.nodes.push_back(n);
      while (n.level > 0) {
        n = parent(n);
        r.nodes.push_back(n);
      }
    } else if (kind < 9) {
      const Node n = v(rng.below(pow2(bottom)) & ~std::uint64_t{1}, bottom);
      r.nodes.push_back(n);
      r.nodes.push_back(sibling(n));
    } else {
      const std::uint32_t level = bottom - 1;
      const std::uint64_t width = rng.between(4, 8);
      const std::uint64_t first = rng.below(pow2(level) - width);
      for (std::uint64_t k = 0; k < width; ++k) {
        r.nodes.push_back(v(first + k, level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

/// A fail-`fraction` plan over the bench's module count: failures land in
/// the first quarter of the expected run so most of the stream is served
/// degraded, plus two transient slowdowns.
fault::FaultPlan make_plan(double fraction, std::uint64_t seed) {
  fault::FaultPlan::RandomOptions opts;
  opts.seed = seed;
  opts.modules = module_count();
  opts.fail_fraction = fraction;
  opts.fail_window = 2048;
  opts.slowdown_count = fraction == 0.0 ? 0 : 2;
  opts.slowdown_window = 4096;
  opts.slowdown_max_length = 512;
  opts.slowdown_max_period = 3;
  return fault::FaultPlan::random(opts);
}

ServerOptions serve_options(unsigned workers, std::uint32_t replicas,
                            const fault::FaultPlan* plan) {
  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.replicas = replicas;
  opts.workers = workers;
  opts.admission.queue_bound = 128;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  opts.engine.sampling = engine::EngineOptions::DepthSampling::kOff;
  opts.engine.faults = plan;
  // Tight enough that fault-inflated residencies actually retry (healthy
  // residencies sit well under it), loose enough not to thrash.
  opts.retry.max_retries = 2;
  opts.retry.attempt_timeout_cycles = 16;
  opts.retry.backoff_base_cycles = 8;
  opts.retry.backoff_cap_cycles = 128;
  return opts;
}

struct RunOutcome {
  ServeReport report;
  double wall_seconds = 0;
};

/// Warmed median-of-N wall time of run() only (bench_common.hpp); the
/// untimed setup phase constructs/submits so the timed window bills the
/// serve loop alone.
RunOutcome run_server(const TreeMapping& mapping, const ServerOptions& opts,
                      const std::vector<Request>& requests, int repeat) {
  RunOutcome outcome;
  std::unique_ptr<Server> server;
  outcome.wall_seconds = bench::median_wall_seconds(
      /*warmup=*/1, repeat,
      [&] {
        server = std::make_unique<Server>(mapping, opts);
        for (const Request& r : requests) server->submit(r);
        outcome.report = ServeReport{};
      },
      [&] { outcome.report = server->run(); });
  return outcome;
}

std::uint64_t metric_uint(const Json& metrics, const std::string& group,
                          const std::string& field) {
  return metrics.find(group)->find(field)->as_uint();
}

bool same_responses(const ServeReport& a, const ServeReport& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const Response& x = a.responses[i];
    const Response& y = b.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch ||
        x.retries != y.retries) {
      return false;
    }
  }
  return a.to_json().dump() == b.to_json().dump();
}

/// Degraded SLO sweep: one row per failed-module fraction.
Json sweep_fail_fraction(const ColorMapping& mapping,
                         const CompleteBinaryTree& tree, bool& all_terminal,
                         std::uint64_t& p99_healthy,
                         std::uint64_t& p99_ten_percent) {
  TableWriter table({"failed", "ok", "expired", "retries", "rerouted",
                     "stalled", "p50", "p99", "p999", "terminal"});
  Json rows = Json::array();
  const std::vector<Request> requests =
      request_stream(tree, request_count(), 16, 2, 0xE20);
  for (const double fraction : {0.0, 0.10, 0.25}) {
    const fault::FaultPlan plan = make_plan(fraction, 0xFA);
    const RunOutcome out = run_server(
        mapping, serve_options(1, 1, plan.empty() ? nullptr : &plan),
        requests, reps());
    const Json& m = out.report.metrics;
    const std::uint64_t ok = out.report.count(RequestStatus::kOk);
    const std::uint64_t expired = out.report.count(RequestStatus::kExpired);
    const std::uint64_t shed = out.report.count(RequestStatus::kShed);
    const bool terminal = ok + expired + shed == requests.size();
    all_terminal = all_terminal && terminal;
    const std::uint64_t p99 = metric_uint(m, "latency", "p99");
    if (fraction == 0.0) p99_healthy = p99;
    if (fraction == 0.10) p99_ten_percent = p99;
    const std::uint64_t failed_modules =
        static_cast<std::uint64_t>(fraction * module_count());
    table.row(failed_modules, ok, expired,
              metric_uint(m, "faults", "retries"),
              metric_uint(m, "faults", "rerouted_requests"),
              metric_uint(m, "faults", "stalled_cycles"),
              metric_uint(m, "latency", "p50"), p99,
              metric_uint(m, "latency", "p999"),
              pmtree::bench::pass_cell(terminal));

    Json row = Json::object();
    row.set("fail_fraction", Json(fraction));
    row.set("failed_modules", Json(failed_modules));
    row.set("fault_plan", plan.to_json());
    row.set("requests", Json(requests.size()));
    row.set("ok", Json(ok));
    row.set("expired", Json(expired));
    row.set("shed", Json(shed));
    row.set("all_terminal", Json(terminal));
    row.set("retries", Json(metric_uint(m, "faults", "retries")));
    row.set("rerouted_requests",
            Json(metric_uint(m, "faults", "rerouted_requests")));
    row.set("stalled_cycles", Json(metric_uint(m, "faults", "stalled_cycles")));
    row.set("latency_p50", Json(metric_uint(m, "latency", "p50")));
    row.set("latency_p99", Json(p99));
    row.set("latency_p999", Json(metric_uint(m, "latency", "p999")));
    row.set("rounds", Json(out.report.rounds));
    row.set("final_cycle", Json(out.report.final_cycle));
    rows.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E20 (degraded serving SLO vs failed modules)",
      "COLOR mapping, M = " + std::to_string(mapping.num_modules()) +
          ", retry budget 2x16cyc, " + std::to_string(request_count()) +
          " requests",
      table);
  return rows;
}

/// Engine-level degradation: completion inflation and the DegradedMapping
/// routing cross-check.
Json engine_degradation(const ColorMapping& mapping,
                        const CompleteBinaryTree& tree, bool& routing_ok) {
  TableWriter table({"failed", "completion cyc", "inflation", "rerouted",
                     "stalled", "wall ms", "routing"});
  Json rows = Json::array();
  const Workload workload =
      Workload::mixed(tree, tree.levels(), smoke_mode() ? 400 : 4000, 0xE20);
  const engine::CycleEngine eng(mapping);
  std::uint64_t healthy_completion = 0;
  for (const double fraction : {0.0, 0.10, 0.25}) {
    // Failures from cycle 0: the whole run is steady-state degraded, so
    // the engine's routing must agree with DegradedMapping exactly.
    fault::FaultPlan plan;
    const fault::FaultTimeline probe(make_plan(fraction, 0xFA),
                                     mapping.num_modules());
    for (const std::uint32_t m : probe.dead_modules()) plan.fail_stop(m, 0);

    engine::EngineOptions opts;
    opts.sampling = engine::EngineOptions::DepthSampling::kOff;
    opts.faults = plan.empty() ? nullptr : &plan;

    engine::EngineResult res;
    const double wall = bench::median_wall_seconds(
        /*warmup=*/1, reps(), [&] {
          res = eng.run(workload, engine::ArrivalSchedule::all_at_once(),
                        opts);
        });
    if (fraction == 0.0) healthy_completion = res.completion_cycle;

    bool routing = true;
    if (!plan.empty()) {
      std::vector<Color> dead(probe.dead_modules().begin(),
                              probe.dead_modules().end());
      const DegradedMapping degraded(mapping, std::move(dead));
      const engine::CycleEngine deng(degraded);
      engine::EngineOptions healthy_opts;
      healthy_opts.sampling = engine::EngineOptions::DepthSampling::kOff;
      const engine::EngineResult want = deng.run(
          workload, engine::ArrivalSchedule::all_at_once(), healthy_opts);
      routing = res.served == want.served &&
                res.completion_cycle == want.completion_cycle;
    }
    routing_ok = routing_ok && routing;

    const double inflation =
        healthy_completion == 0
            ? 0.0
            : static_cast<double>(res.completion_cycle) /
                  static_cast<double>(healthy_completion);
    table.row(probe.dead_modules().size(), res.completion_cycle, inflation,
              res.rerouted_requests, res.stalled_cycles, wall * 1e3,
              pmtree::bench::pass_cell(routing));

    Json row = Json::object();
    row.set("fail_fraction", Json(fraction));
    row.set("failed_modules", Json(probe.dead_modules().size()));
    row.set("completion_cycle", Json(res.completion_cycle));
    row.set("inflation_vs_healthy", Json(inflation));
    row.set("rerouted_requests", Json(res.rerouted_requests));
    row.set("stalled_cycles", Json(res.stalled_cycles));
    row.set("wall_seconds", Json(wall));
    row.set("matches_degraded_mapping", Json(routing));
    rows.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E20 (engine completion inflation under module loss)",
      "steady-state fail-stop from cycle 0; routing checked against "
      "DegradedMapping",
      table);
  return rows;
}

void run_experiment() {
  const unsigned hw = std::thread::hardware_concurrency();
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping color = make_optimal_color_mapping(tree, module_count());

  bool all_terminal = true;
  std::uint64_t p99_healthy = 0;
  std::uint64_t p99_ten = 0;
  Json jsweep =
      sweep_fail_fraction(color, tree, all_terminal, p99_healthy, p99_ten);

  bool routing_ok = true;
  Json jengine = engine_degradation(color, tree, routing_ok);

  // Worker scale-out of the full degraded pipeline: faults + retries at
  // 1/2/8 workers, bit-identical to the 1-worker oracle.
  const fault::FaultPlan plan = make_plan(0.10, 0xFA);
  const std::vector<Request> heavy =
      request_stream(tree, request_count(), 16, 0, 0xE20);
  TableWriter wtable({"workers", "wall s", "speedup vs 1w", "bit-identical"});
  Json jworkers = Json::array();
  RunOutcome oracle;
  bool workers_identical = true;
  for (const unsigned workers : {1u, 2u, 8u}) {
    const RunOutcome out =
        run_server(color, serve_options(workers, 8, &plan), heavy, reps());
    if (workers == 1) oracle = out;
    const bool identical = same_responses(out.report, oracle.report);
    workers_identical = workers_identical && identical;
    wtable.row(workers, out.wall_seconds,
               oracle.wall_seconds / out.wall_seconds,
               pmtree::bench::pass_cell(identical));
    Json row = Json::object();
    row.set("workers", Json(static_cast<std::uint64_t>(workers)));
    row.set("wall_seconds", Json(out.wall_seconds));
    row.set("speedup_vs_1w", Json(oracle.wall_seconds / out.wall_seconds));
    row.set("identical", Json(identical));
    jworkers.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E20 (worker scale-out under faults)",
      "10% modules failed, retries on, 8 replicas (hardware_concurrency = " +
          std::to_string(hw) + ")",
      wtable);

  // The headline claim, as data: p99 with 10% of modules failed is a
  // finite multiple of healthy p99, and nothing was lost.
  const double p99_inflation =
      p99_healthy == 0 ? 0.0
                       : static_cast<double>(p99_ten) /
                             static_cast<double>(p99_healthy);
  std::cout << "E20 headline: p99(10% failed) = " << p99_ten << " cyc, "
            << p99_inflation << "x healthy; all requests terminal: "
            << (all_terminal ? "yes" : "NO") << "\n";

  Json report = Json::object();
  report.set("experiment", Json("E20"));
  report.set("smoke", Json(smoke_mode()));
  report.set("hardware_concurrency", Json(static_cast<std::uint64_t>(hw)));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(tree_levels())));
  report.set("modules", Json(static_cast<std::uint64_t>(module_count())));
  report.set("requests", Json(request_count()));
  report.set("slo_vs_failed_modules", std::move(jsweep));
  report.set("engine_degradation", std::move(jengine));
  report.set("worker_scaleout", std::move(jworkers));
  Json headline = Json::object();
  headline.set("p99_healthy", Json(p99_healthy));
  headline.set("p99_ten_percent_failed", Json(p99_ten));
  headline.set("p99_inflation", Json(p99_inflation));
  headline.set("all_requests_terminal", Json(all_terminal));
  headline.set("routing_matches_degraded_mapping", Json(routing_ok));
  headline.set("workers_bit_identical", Json(workers_identical));
  report.set("headline", std::move(headline));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E20_faults.json";
  std::ofstream out(path);
  if (out) {
    out << report.dump(2) << '\n';
    std::cout << "JSON fault report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }
}

// google-benchmark timings: the cycle engine healthy vs faulted on the
// same workload (the fault path forgoes bulk cycle skipping, so this is
// the price of per-cycle fault evaluation), and the degraded serve
// pipeline end to end.

struct BenchSetup {
  CompleteBinaryTree tree;
  ColorMapping mapping;
  Workload workload;
  fault::FaultPlan plan;
  BenchSetup()
      : tree(smoke_mode() ? 10 : 13),
        mapping(make_optimal_color_mapping(tree, 15)),
        workload(Workload::mixed(tree, tree.levels(), smoke_mode() ? 200 : 1000,
                                 7)),
        plan(make_plan(0.10, 0xFA)) {}
};

void BM_EngineHealthy(benchmark::State& state) {
  const BenchSetup s;
  const engine::CycleEngine eng(s.mapping);
  engine::EngineOptions opts;
  opts.sampling = engine::EngineOptions::DepthSampling::kOff;
  for (auto _ : state) {
    const auto res =
        eng.run(s.workload, engine::ArrivalSchedule::all_at_once(), opts);
    benchmark::DoNotOptimize(res.completion_cycle);
  }
}
BENCHMARK(BM_EngineHealthy);

void BM_EngineFaulted(benchmark::State& state) {
  const BenchSetup s;
  const engine::CycleEngine eng(s.mapping);
  engine::EngineOptions opts;
  opts.sampling = engine::EngineOptions::DepthSampling::kOff;
  opts.faults = &s.plan;
  for (auto _ : state) {
    const auto res =
        eng.run(s.workload, engine::ArrivalSchedule::all_at_once(), opts);
    benchmark::DoNotOptimize(res.completion_cycle);
  }
}
BENCHMARK(BM_EngineFaulted);

void BM_ServeDegraded(benchmark::State& state) {
  const BenchSetup s;
  const std::vector<Request> requests =
      request_stream(s.tree, smoke_mode() ? 300 : 2000, 8, 2, 7);
  const ServerOptions opts = serve_options(
      static_cast<unsigned>(state.range(0)), 8, &s.plan);
  for (auto _ : state) {
    Server server(s.mapping, opts);
    for (const Request& r : requests) server.submit(r);
    const ServeReport report = server.run();
    benchmark::DoNotOptimize(report.final_cycle);
  }
}
BENCHMARK(BM_ServeDegraded)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
