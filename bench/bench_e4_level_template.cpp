// E4 — Lemma 2: BASIC-COLOR has cost at most 1 on L(K) (runs of K
// consecutive nodes of one level) within a height-N block; the full COLOR
// on taller trees pays at most one extra conflict where a run straddles a
// block-generation boundary (measured fact recorded in EXPERIMENTS.md).
//
// Two tables: (a) single-block trees, bound 1; (b) multi-block trees,
// bound 2 — each swept over (N, k) with the measured exhaustive maximum
// and the baselines' numbers alongside.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace {

using namespace pmtree;

void print_tables() {
  {
    TableWriter table({"N", "K", "modules", "COLOR L(K)", "bound",
                       "MODULO L(K)", "RANDOM L(K)", "verdict"});
    const struct {
      std::uint32_t N, k;
    } configs[] = {{4, 2}, {5, 2}, {6, 3}, {8, 3}, {9, 4}, {12, 4}};
    for (const auto& cfg : configs) {
      const CompleteBinaryTree tree(cfg.N);  // single block
      const BasicColorMapping color(tree, cfg.N, cfg.k);
      const ModuloMapping naive(tree, color.num_modules());
      const RandomMapping random(tree, color.num_modules(), 3);
      const std::uint64_t K = tree_size(cfg.k);
      const auto measured = evaluate_level_runs(color, K).max_conflicts;
      table.row(cfg.N, K, color.num_modules(), measured, 1,
                evaluate_level_runs(naive, K).max_conflicts,
                evaluate_level_runs(random, K).max_conflicts,
                bench::pass_cell(measured <= 1));
    }
    bench::print_experiment("E4a (Lemma 2, single block)",
                            "BASIC-COLOR costs at most 1 conflict on L(K)",
                            table);
  }
  {
    TableWriter table({"H", "N", "K", "COLOR L(K)", "bound", "verdict"});
    const struct {
      std::uint32_t H, N, k;
    } configs[] = {{10, 4, 2}, {12, 5, 2}, {14, 6, 3}, {16, 6, 3},
                   {15, 8, 4}, {18, 6, 3}};
    for (const auto& cfg : configs) {
      const ColorMapping color(CompleteBinaryTree(cfg.H), cfg.N, cfg.k);
      const std::uint64_t K = tree_size(cfg.k);
      const auto measured = evaluate_level_runs(color, K).max_conflicts;
      table.row(cfg.H, cfg.N, K, measured, 2, bench::pass_cell(measured <= 2));
    }
    bench::print_experiment(
        "E4b (Lemma 2, multi-block)",
        "COLOR on taller trees: at most one extra L(K) conflict at "
        "block-generation boundaries",
        table);
  }
}

void BM_LevelRunEvaluation(benchmark::State& state) {
  const auto H = static_cast<std::uint32_t>(state.range(0));
  const ColorMapping color(CompleteBinaryTree(H), 6, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_level_runs(color, 7).max_conflicts);
  }
}
BENCHMARK(BM_LevelRunEvaluation)->Arg(12)->Arg(14)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
