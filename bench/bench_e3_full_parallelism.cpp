// E3 — Theorems 4 & 5: at full parallelism (templates of size M = number
// of modules), COLOR(T, 2^{m-1}+m-1, 2^{m-1}-1) costs at most 1 conflict
// on S(M) and P(M) — and exactly 1, since no mapping is M-CF on both
// (Theorem 5: COLOR is M-optimal).
//
// The table sweeps M = 2^m - 1 and reports the exhaustively measured worst
// case next to LABEL-TREE (Theorem 7's O(sqrt(M/log M)) conflicts) and the
// naive baselines with the same module budget.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

/// Worst conflicts over S(M) and P(M); exhaustive when the tree is small,
/// sampled otherwise.
std::uint64_t worst_elementary(const TreeMapping& map, std::uint64_t M,
                               bool exhaustive) {
  if (exhaustive) {
    return std::max(evaluate_subtrees(map, M).max_conflicts,
                    evaluate_paths(map, M).max_conflicts);
  }
  Rng rng(404);
  return std::max(sample_subtrees(map, M, 20000, rng).max_conflicts,
                  sample_paths(map, M, 20000, rng).max_conflicts);
}

void print_table() {
  TableWriter table({"M", "tree levels", "mode", "COLOR", "bound",
                     "LABEL-TREE", "MODULO", "RANDOM", "verdict"});
  for (std::uint32_t m = 2; m <= 5; ++m) {
    const auto M = static_cast<std::uint32_t>(tree_size(m));
    // P(M) needs >= M levels; keep trees exhaustive up to ~2^20 nodes.
    const std::uint32_t levels = std::min<std::uint32_t>(M + 3, 20);
    if (levels < M) continue;  // cannot host P(M)
    const bool exhaustive = levels <= 18;
    const CompleteBinaryTree tree(levels);

    const ColorMapping color = make_optimal_color_mapping(tree, M);
    const LabelTreeMapping label(tree, M);
    const ModuloMapping naive(tree, M);
    const RandomMapping random(tree, M, 7);

    const std::uint64_t c = worst_elementary(color, M, exhaustive);
    table.row(M, levels, exhaustive ? "exhaustive" : "sampled", c,
              bounds::kOptimalFullParallelismCost,
              worst_elementary(label, M, exhaustive),
              worst_elementary(naive, M, exhaustive),
              worst_elementary(random, M, exhaustive),
              bench::pass_cell(c <= bounds::kOptimalFullParallelismCost));
  }
  bench::print_experiment(
      "E3 (Theorems 4 & 5)",
      "with M = 2^m - 1 modules COLOR costs exactly 1 conflict on S(M) and "
      "P(M); no mapping does better",
      table);
}

void BM_FullParallelismSweep(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  const auto M = static_cast<std::uint32_t>(tree_size(m));
  const CompleteBinaryTree tree(std::min<std::uint32_t>(M + 3, 18));
  const ColorMapping color = make_optimal_color_mapping(tree, M);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_subtrees(color, M).max_conflicts);
  }
}
BENCHMARK(BM_FullParallelismSweep)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
