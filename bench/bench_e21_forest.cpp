// E21 — multi-tenant forest serving: per-tenant SLO isolation over one
// shared replica pool (pmtree/serve/forest, DESIGN.md §13).
//
// The forest gives every tenant its own tree, mapping, admission quota
// and retry policy, then multiplexes them onto a shared pool of engine
// replicas through deficit-round-robin batch formation. Four claims are
// measured, each as a checked cell rather than prose:
//
//   * Weighted fairness: four tenants with DRR weights 1/2/4/8 saturate
//     the forest with identical streams; over the joint-backlog prefix
//     each tenant's service share tracks its weight share.
//   * Noisy-neighbor isolation: a bursty tenant overrunning its own
//     admission quota sheds, while steady tenants sharing the pool shed
//     nothing and keep their p99 — shed is attributable to the tenant
//     that caused it, never exported to a neighbor.
//   * Fault isolation: a fault plan injected into one tenant's lanes
//     leaves every other tenant's response table bit-identical to the
//     all-healthy forest.
//   * Determinism: the whole forest — quotas, DRR, retries, sharded
//     lanes — is bit-identical at 1/2/8 workers.
//
// A BENCH_E21_forest.json report goes to $PMTREE_BENCH_JSON (or the
// working directory). PMTREE_E21_SMOKE=1 shrinks every dimension so the
// ctest perf-smoke label finishes in seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E21_SMOKE"); }

// Multi-tenant dimensions from bench_common.hpp (the forest variant of
// the shared serving dims).
std::uint32_t tree_levels() {
  return bench::forest_bench_dims(smoke_mode()).tree_levels;
}
std::uint32_t module_count() {
  return bench::forest_bench_dims(smoke_mode()).modules;
}
std::size_t per_tenant_requests() {
  return bench::forest_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::forest_bench_dims(smoke_mode()).reps; }

/// Equal-size requests (one full root-to-leaf path each) so request
/// counts and node credits coincide — fairness shares read off directly.
std::vector<Request> path_stream(const CompleteBinaryTree& tree,
                                 std::size_t count, std::uint64_t gap,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  const std::uint32_t bottom = tree.levels() - 1;
  std::uint64_t clock = 0;
  for (std::size_t i = 0; i < count; ++i) {
    clock += gap == 0 ? 0 : rng.below(2 * gap + 1);
    Request r;
    r.client = 0;
    r.seq = i;
    r.submit_cycle = clock;
    Node n = v(rng.below(pow2(bottom)), bottom);
    r.nodes.push_back(n);
    while (n.level > 0) {
      n = parent(n);
      r.nodes.push_back(n);
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

TenantOptions tenant_options(std::uint64_t weight, std::size_t queue_bound,
                             OverflowPolicy overflow) {
  TenantOptions opts;
  opts.weight = weight;
  opts.rate = static_cast<double>(weight);
  opts.admission.queue_bound = queue_bound;
  opts.admission.overflow = overflow;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  opts.engine.sampling = engine::EngineOptions::DepthSampling::kOff;
  return opts;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_tenant(const TenantReport& a, const TenantReport& b) {
  if (a.responses.size() != b.responses.size()) return false;
  if (a.batches.size() != b.batches.size()) return false;
  if (a.served_nodes != b.served_nodes) return false;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const Response& x = a.responses[i];
    const Response& y = b.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.admitted_cycle != y.admitted_cycle ||
        x.dispatch_cycle != y.dispatch_cycle ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch ||
        x.retries != y.retries) {
      return false;
    }
  }
  return true;
}

bool same_forest(const ForestReport& a, const ForestReport& b) {
  if (a.tenants.size() != b.tenants.size()) return false;
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    if (!same_tenant(a.tenants[i], b.tenants[i])) return false;
  }
  return a.ticks == b.ticks && a.rounds == b.rounds &&
         a.final_cycle == b.final_cycle &&
         a.to_json().dump() == b.to_json().dump();
}

std::uint64_t tenant_p99(const TenantReport& t) {
  const Json* latency = t.metrics.find("latency");
  return latency == nullptr ? 0 : latency->find("p99")->as_uint();
}

/// Weighted fairness: four saturating tenants, weights 1/2/4/8. Service
/// is compared over the joint-backlog prefix (up to the earliest tenant's
/// last dispatch) where DRR's weight proportionality is the contract.
Json fairness_sweep(const ColorMapping& mapping,
                    const CompleteBinaryTree& tree, bool& fairness_ok) {
  const std::vector<std::uint64_t> weights{1, 2, 4, 8};
  ForestOptions fopts;
  fopts.tick_cycles = 2;
  fopts.replicas = 1;  // one shared lane: contention is the point
  fopts.drr_quantum_nodes = 2 * tree.levels();
  Forest forest(fopts);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    forest.add_tenant(mapping, tenant_options(weights[i],
                                              per_tenant_requests(),
                                              OverflowPolicy::kBlock));
  }
  for (std::uint32_t i = 0; i < weights.size(); ++i) {
    forest.submit(i, path_stream(tree, per_tenant_requests(), 0, 0xE21 + i));
  }
  const ForestReport report = forest.run();

  // Joint-backlog cutoff: the earliest final dispatch across tenants.
  std::uint64_t cutoff = ~std::uint64_t{0};
  for (const TenantReport& t : report.tenants) {
    std::uint64_t last = 0;
    for (const Response& r : t.responses) {
      if (r.status == RequestStatus::kOk && r.dispatch_cycle > last) {
        last = r.dispatch_cycle;
      }
    }
    cutoff = std::min(cutoff, last);
  }

  std::uint64_t weight_sum = 0;
  for (const std::uint64_t w : weights) weight_sum += w;
  std::vector<std::uint64_t> served(weights.size(), 0);
  std::uint64_t served_sum = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (const Response& r : report.tenants[i].responses) {
      if (r.status == RequestStatus::kOk && r.dispatch_cycle < cutoff) {
        served[i] += 1;
      }
    }
    served_sum += served[i];
  }

  TableWriter table({"tenant", "weight", "want share", "got share",
                     "rel err", "verdict"});
  Json rows = Json::array();
  double max_rel_err = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double want =
        static_cast<double>(weights[i]) / static_cast<double>(weight_sum);
    const double got = served_sum == 0
                           ? 0.0
                           : static_cast<double>(served[i]) /
                                 static_cast<double>(served_sum);
    const double rel_err = want == 0.0 ? 0.0 : std::abs(got - want) / want;
    max_rel_err = std::max(max_rel_err, rel_err);
    const bool ok = rel_err < 0.40;
    fairness_ok = fairness_ok && ok;
    table.row("t" + std::to_string(i), weights[i], want, got, rel_err,
              pmtree::bench::pass_cell(ok));
    Json row = Json::object();
    row.set("tenant", Json(static_cast<std::uint64_t>(i)));
    row.set("weight", Json(weights[i]));
    row.set("want_share", Json(want));
    row.set("got_share", Json(got));
    row.set("rel_err", Json(rel_err));
    rows.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E21 (DRR weighted fairness under saturation)",
      "4 tenants, weights 1/2/4/8, one shared lane; shares over the "
      "joint-backlog prefix (max rel err " + std::to_string(max_rel_err) +
          ")",
      table);
  Json section = Json::object();
  section.set("cutoff_cycle", Json(cutoff));
  section.set("max_rel_err", Json(max_rel_err));
  section.set("tenants", std::move(rows));
  return section;
}

/// Noisy-neighbor isolation: a bursting tenant sheds against its own
/// quota; steady tenants sharing the pool shed nothing.
Json noisy_neighbor(const ColorMapping& mapping,
                    const CompleteBinaryTree& tree, bool& isolation_ok) {
  ForestOptions fopts;
  fopts.tick_cycles = 4;
  fopts.replicas = 4;
  fopts.global_queue_bound = 64;
  Forest forest(fopts);
  const std::uint32_t kSteady = 3;
  for (std::uint32_t i = 0; i < kSteady; ++i) {
    forest.add_tenant(
        mapping, tenant_options(1, 64, OverflowPolicy::kShed));
  }
  const std::uint32_t noisy = forest.add_tenant(
      mapping, tenant_options(1, 8, OverflowPolicy::kShed));

  for (std::uint32_t i = 0; i < kSteady; ++i) {
    forest.submit(i, path_stream(tree, per_tenant_requests() / 4,
                                 /*gap=*/2 * tree.levels(), 0x51EAD + i));
  }
  // The burst: everything at cycle 0 into a queue of 8.
  forest.submit(noisy, path_stream(tree, per_tenant_requests(), 0, 0xB1257));
  const ForestReport report = forest.run();

  TableWriter table({"tenant", "role", "ok", "shed", "p99", "verdict"});
  Json rows = Json::array();
  std::uint64_t steady_shed = 0;
  for (std::uint32_t i = 0; i <= kSteady; ++i) {
    const TenantReport& t = report.tenants[i];
    const std::uint64_t shed = t.count(RequestStatus::kShed);
    const bool is_noisy = i == noisy;
    if (!is_noisy) steady_shed += shed;
    const bool ok = is_noisy ? shed > 0 : shed == 0;
    isolation_ok = isolation_ok && ok;
    table.row(t.name, is_noisy ? "noisy" : "steady",
              t.count(RequestStatus::kOk), shed, tenant_p99(t),
              pmtree::bench::pass_cell(ok));
    Json row = Json::object();
    row.set("tenant", Json(static_cast<std::uint64_t>(i)));
    row.set("role", Json(is_noisy ? std::string("noisy")
                                  : std::string("steady")));
    row.set("ok", Json(t.count(RequestStatus::kOk)));
    row.set("shed", Json(shed));
    row.set("p99", Json(tenant_p99(t)));
    rows.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E21 (noisy-neighbor shed attribution)",
      "burst into a quota of 8 sheds at the noisy tenant only; steady "
      "tenants shed 0 (global bound 64, shared pool of 4 lanes)",
      table);
  Json section = Json::object();
  section.set("steady_shed_total", Json(steady_shed));
  section.set("tenants", std::move(rows));
  return section;
}

/// Fault isolation: tenant 0's fault plan must not perturb a single bit
/// of any other tenant's responses.
Json fault_isolation(const ColorMapping& mapping,
                     const CompleteBinaryTree& tree, bool& faults_isolated) {
  fault::FaultPlan::RandomOptions popts;
  popts.seed = 0xFA27;
  popts.modules = module_count();
  popts.fail_fraction = 0.25;
  popts.fail_window = 512;
  popts.slowdown_count = 2;
  popts.slowdown_window = 2048;
  popts.slowdown_max_length = 256;
  popts.slowdown_max_period = 3;
  const fault::FaultPlan plan = fault::FaultPlan::random(popts);

  const std::uint32_t kTenants = 4;
  ForestReport healthy;
  ForestReport faulted;
  for (const bool inject : {false, true}) {
    ForestOptions fopts;
    fopts.tick_cycles = 4;
    fopts.replicas = 4;
    Forest forest(fopts);
    for (std::uint32_t i = 0; i < kTenants; ++i) {
      TenantOptions topts =
          tenant_options(1, per_tenant_requests(), OverflowPolicy::kBlock);
      if (inject && i == 0) {
        topts.engine.faults = &plan;
        topts.retry.max_retries = 2;
        topts.retry.attempt_timeout_cycles = 16;
      }
      forest.add_tenant(mapping, topts);
    }
    for (std::uint32_t i = 0; i < kTenants; ++i) {
      forest.submit(i, path_stream(tree, per_tenant_requests() / 2,
                                   /*gap=*/2, 0xFA0 + i));
    }
    (inject ? faulted : healthy) = forest.run();
  }

  TableWriter table({"tenant", "faulted", "ok", "retries", "bit-identical",
                     "verdict"});
  Json rows = Json::array();
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    std::uint64_t retries = 0;
    for (const Response& r : faulted.tenants[i].responses) {
      retries += r.retries;
    }
    const bool identical = same_tenant(healthy.tenants[i], faulted.tenants[i]);
    const bool ok = i == 0 || identical;
    faults_isolated = faults_isolated && ok;
    table.row("t" + std::to_string(i), i == 0 ? "yes" : "no",
              faulted.tenants[i].count(RequestStatus::kOk), retries,
              identical ? "yes" : "no", pmtree::bench::pass_cell(ok));
    Json row = Json::object();
    row.set("tenant", Json(static_cast<std::uint64_t>(i)));
    row.set("faulted", Json(i == 0));
    row.set("ok", Json(faulted.tenants[i].count(RequestStatus::kOk)));
    row.set("retries", Json(retries));
    row.set("identical_to_healthy", Json(identical));
    rows.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E21 (per-tenant fault isolation)",
      "25% of tenant 0's modules fail + 2 slowdowns; tenants 1..3 must be "
      "bit-identical to the all-healthy forest",
      table);
  Json section = Json::object();
  section.set("fault_plan", plan.to_json());
  section.set("tenants", std::move(rows));
  return section;
}

/// Worker scale-out: the full forest, bit-identical at 1/2/8 workers.
Json worker_scaleout(const ColorMapping& mapping,
                     const CompleteBinaryTree& tree, bool& identical_ok,
                     double& oracle_wall) {
  const std::uint32_t kTenants = 6;
  std::vector<std::vector<Request>> streams;
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    streams.push_back(
        path_stream(tree, per_tenant_requests() / 2, /*gap=*/1, 0x5CA1E + i));
  }
  const auto run_forest = [&](unsigned workers) {
    ForestOptions fopts;
    fopts.tick_cycles = 4;
    fopts.replicas = 8;
    fopts.workers = workers;
    fopts.global_queue_bound = 96;
    ForestReport report;
    double wall = 1e9;  // best-of-N: shared CI boxes are noisy
    for (int rep = 0; rep < reps(); ++rep) {
      Forest forest(fopts);
      for (std::uint32_t i = 0; i < kTenants; ++i) {
        forest.add_tenant(mapping, tenant_options(1 + i % 3, 64,
                                                  OverflowPolicy::kBlock));
      }
      for (std::uint32_t i = 0; i < kTenants; ++i) {
        forest.submit(i, streams[i]);
      }
      const auto t0 = std::chrono::steady_clock::now();
      report = forest.run();
      wall = std::min(wall, seconds_since(t0));
    }
    return std::pair<ForestReport, double>(std::move(report), wall);
  };

  TableWriter table({"workers", "wall s", "speedup vs 1w", "bit-identical"});
  Json rows = Json::array();
  ForestReport oracle;
  for (const unsigned workers : {1u, 2u, 8u}) {
    auto [report, wall] = run_forest(workers);
    if (workers == 1) {
      oracle = std::move(report);
      oracle_wall = wall;
    }
    const bool identical =
        workers == 1 || same_forest(oracle, report);
    identical_ok = identical_ok && identical;
    table.row(workers, wall, oracle_wall / wall,
              pmtree::bench::pass_cell(identical));
    Json row = Json::object();
    row.set("workers", Json(static_cast<std::uint64_t>(workers)));
    row.set("wall_seconds", Json(wall));
    row.set("speedup_vs_1w", Json(oracle_wall / wall));
    row.set("identical", Json(identical));
    rows.push_back(std::move(row));
  }
  pmtree::bench::print_experiment(
      "E21 (worker scale-out of the forest)",
      "6 tenants, 8 shared lanes, global bound 96 (hardware_concurrency = " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      table);
  Json section = Json::object();
  section.set("rows", std::move(rows));
  return section;
}

void run_experiment() {
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping color = make_optimal_color_mapping(tree, module_count());

  bool fairness_ok = true;
  Json jfair = fairness_sweep(color, tree, fairness_ok);
  bool isolation_ok = true;
  Json jnoisy = noisy_neighbor(color, tree, isolation_ok);
  bool faults_isolated = true;
  Json jfault = fault_isolation(color, tree, faults_isolated);
  bool identical_ok = true;
  double oracle_wall = 0;
  Json jworkers = worker_scaleout(color, tree, identical_ok, oracle_wall);

  std::cout << "E21 headline: weighted fairness "
            << (fairness_ok ? "holds" : "FAILS") << ", shed attribution "
            << (isolation_ok ? "isolated" : "LEAKS") << ", faults "
            << (faults_isolated ? "contained" : "LEAK") << ", workers "
            << (identical_ok ? "bit-identical" : "DIVERGE") << "\n";

  Json report = Json::object();
  report.set("experiment", Json("E21"));
  report.set("smoke", Json(smoke_mode()));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(tree_levels())));
  report.set("modules", Json(static_cast<std::uint64_t>(module_count())));
  report.set("per_tenant_requests", Json(per_tenant_requests()));
  report.set("fairness", std::move(jfair));
  report.set("noisy_neighbor", std::move(jnoisy));
  report.set("fault_isolation", std::move(jfault));
  report.set("worker_scaleout", std::move(jworkers));
  Json headline = Json::object();
  headline.set("weighted_fairness", Json(fairness_ok));
  headline.set("shed_attribution_isolated", Json(isolation_ok));
  headline.set("faults_contained", Json(faults_isolated));
  headline.set("workers_bit_identical", Json(identical_ok));
  report.set("headline", std::move(headline));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E21_forest.json";
  std::ofstream out(path);
  if (out) {
    out << report.dump(2) << '\n';
    std::cout << "JSON forest report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }
}

// google-benchmark timings: the full forest control plane + lane
// execution end to end, 1 worker vs 8 (lane execution is the only
// parallel phase, so the gap prices the control plane).

void BM_ForestServe(benchmark::State& state) {
  const CompleteBinaryTree tree(smoke_mode() ? 9 : 12);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 15));
  std::vector<std::vector<Request>> streams;
  for (std::uint32_t i = 0; i < 4; ++i) {
    streams.push_back(
        path_stream(tree, smoke_mode() ? 200 : 1500, /*gap=*/1, 0xB3 + i));
  }
  ForestOptions fopts;
  fopts.tick_cycles = 4;
  fopts.replicas = 8;
  fopts.workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    Forest forest(fopts);
    for (std::uint32_t i = 0; i < 4; ++i) {
      forest.add_tenant(mapping, tenant_options(1 + i, 64,
                                                OverflowPolicy::kBlock));
    }
    for (std::uint32_t i = 0; i < 4; ++i) forest.submit(i, streams[i]);
    const ForestReport report = forest.run();
    benchmark::DoNotOptimize(report.final_cycle);
  }
}
BENCHMARK(BM_ForestServe)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
