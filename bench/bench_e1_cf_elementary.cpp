// E1 — Theorems 1 & 3: COLOR(T, N, K) is conflict-free on S(K) and P(N)
// using N + K - k memory modules.
//
// Regenerates the theorem as a table: for a sweep of (H, N, k) the
// exhaustively measured maximum number of conflicts on both families
// (expected: 0), next to the number of modules used and the baselines'
// conflicts with the same module budget.
//
// The google-benchmark timings measure the cost of the exhaustive family
// evaluation itself (the verification workload).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/util/bits.hpp"

namespace {

using namespace pmtree;

void print_table() {
  TableWriter table({"H", "N", "K", "modules", "COLOR S(K)", "COLOR P(N)",
                     "MODULO S(K)", "MODULO P(N)", "RANDOM S(K)",
                     "RANDOM P(N)", "CF verdict"});
  const struct {
    std::uint32_t H, N, k;
  } configs[] = {
      {8, 4, 1},  {10, 4, 2}, {12, 5, 2}, {12, 5, 3},
      {14, 6, 3}, {14, 7, 3}, {15, 8, 4}, {16, 9, 4},
  };
  for (const auto& cfg : configs) {
    const CompleteBinaryTree tree(cfg.H);
    const std::uint64_t K = tree_size(cfg.k);
    const ColorMapping color(tree, cfg.N, cfg.k);
    const ModuloMapping naive(tree, color.num_modules());
    const RandomMapping random(tree, color.num_modules(), 11);

    const auto cs = evaluate_subtrees(color, K).max_conflicts;
    const auto cp = evaluate_paths(color, cfg.N).max_conflicts;
    const auto ms = evaluate_subtrees(naive, K).max_conflicts;
    const auto mp = evaluate_paths(naive, cfg.N).max_conflicts;
    const auto rs = evaluate_subtrees(random, K).max_conflicts;
    const auto rp = evaluate_paths(random, cfg.N).max_conflicts;

    table.row(cfg.H, cfg.N, K, color.num_modules(), cs, cp, ms, mp, rs, rp,
              bench::pass_cell(cs == 0 && cp == 0));
  }
  bench::print_experiment(
      "E1 (Theorems 1 & 3)",
      "COLOR is conflict-free on S(K) and P(N) with N + K - k modules",
      table);
}

void BM_ExhaustiveVerification(benchmark::State& state) {
  const auto H = static_cast<std::uint32_t>(state.range(0));
  const CompleteBinaryTree tree(H);
  const ColorMapping color(tree, 6, 3);
  for (auto _ : state) {
    auto s = evaluate_subtrees(color, 7);
    auto p = evaluate_paths(color, 6);
    benchmark::DoNotOptimize(s.max_conflicts + p.max_conflicts);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(count_subtrees(tree, 7) + count_paths(tree, 6)));
}
BENCHMARK(BM_ExhaustiveVerification)->Arg(10)->Arg(12)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
