// E10 — addressing complexity (Sections 3.2 and 6):
//
//   COLOR:      O(H) per node lazily; O(1) with the full O(2^H) table
//               (the paper's PRE-BASIC-COLOR / PRE-COLOR route);
//   LABEL-TREE: O(log M) recursively; O(1) with the O(M) micro table.
//
// google-benchmark section: ns/lookup as H grows (COLOR's lazy retrieval
// must scale linearly with H; every other mode must stay flat) and as M
// grows for LABEL-TREE. A summary table prints the measured scaling so
// the shape is visible without parsing benchmark output.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

double mean_ns(const TreeMapping& map, std::size_t probes_count = 100000) {
  Rng rng(7);
  std::vector<Node> probes;
  probes.reserve(probes_count);
  for (std::size_t i = 0; i < probes_count; ++i) {
    probes.push_back(node_at(rng.below(map.tree().size())));
  }
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Node& n : probes) sink += map.color_of(n);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(probes.size());
}

std::string ns_cell(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ns);
  return buf;
}

void print_height_table() {
  TableWriter table({"H", "COLOR lazy ns", "COLOR blocktable ns",
                     "COLOR full-table ns", "LABEL-TREE ns",
                     "LT recursive ns"});
  for (const std::uint32_t H : {12u, 16u, 20u, 24u}) {
    const CompleteBinaryTree tree(H);
    const ColorMapping lazy(tree, 6, 3);
    const ColorMapping block(tree, 6, 3, internal::GammaVariant::kCorrect,
                             ColorMapping::Retrieval::kBlockTable);
    const LabelTreeMapping lt(tree, 15);
    const LabelTreeMapping ltr(tree, 15, LabelTreeMapping::Retrieval::kRecursive);
    // The full table is only materializable for moderate H.
    double table_ns = -1.0;
    if (H <= 22) {
      const EagerColorMapping eager(lazy);
      table_ns = mean_ns(eager);
    }
    table.row(H, ns_cell(mean_ns(lazy)), ns_cell(mean_ns(block)),
              table_ns < 0 ? std::string("(table too large)") : ns_cell(table_ns),
              ns_cell(mean_ns(lt)), ns_cell(mean_ns(ltr)));
  }
  bench::print_experiment(
      "E10a (addressing vs tree height)",
      "COLOR's retrieval: O(H) lazy, O(H/(N-k)) with the PRE-BASIC-COLOR "
      "block table, O(1) with the full table; LABEL-TREE stays flat",
      table);
}

void print_modules_table() {
  TableWriter table({"M", "LABEL-TREE table ns", "LT recursive ns",
                     "micro-table entries"});
  const CompleteBinaryTree tree(22);
  for (const std::uint32_t M : {15u, 63u, 255u, 1023u}) {
    const LabelTreeMapping lt(tree, M);
    const LabelTreeMapping ltr(tree, M, LabelTreeMapping::Retrieval::kRecursive);
    table.row(M, mean_ns(lt), mean_ns(ltr), tree_size(ceil_log2(M)));
  }
  bench::print_experiment(
      "E10b (addressing vs module count)",
      "LABEL-TREE: O(1) with the O(M) table, O(log M) without", table);
}

void BM_ColorLazyByHeight(benchmark::State& state) {
  const auto H = static_cast<std::uint32_t>(state.range(0));
  const CompleteBinaryTree tree(H);
  const ColorMapping map(tree, 6, 3);
  Rng rng(3);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += map.color_of(node_at(rng.below(tree.size())));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ColorLazyByHeight)->Arg(12)->Arg(18)->Arg(24)->Arg(30);

void BM_ColorTableByHeight(benchmark::State& state) {
  const auto H = static_cast<std::uint32_t>(state.range(0));
  const CompleteBinaryTree tree(H);
  const EagerColorMapping map{ColorMapping(tree, 6, 3)};
  Rng rng(3);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += map.color_of(node_at(rng.below(tree.size())));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ColorTableByHeight)->Arg(12)->Arg(18)->Arg(22);

void BM_LabelTreeByModules(benchmark::State& state) {
  const CompleteBinaryTree tree(24);
  const LabelTreeMapping map(tree, static_cast<std::uint32_t>(state.range(0)),
                             LabelTreeMapping::Retrieval::kRecursive);
  Rng rng(3);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += map.color_of(node_at(rng.below(tree.size())));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LabelTreeByModules)->Arg(15)->Arg(255)->Arg(4095);

}  // namespace

int main(int argc, char** argv) {
  print_height_table();
  print_modules_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
