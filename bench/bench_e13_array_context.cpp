// E13 — the Section 1.2 context: conflict-free access to two-dimensional
// arrays (rows / columns / diagonals / subarrays; refs [4], [17]).
//
// The paper positions its tree results against the classical array
// results. This bench regenerates the array side: the Latin-square
// skewing scheme color(r, c) = (a*r + c) mod M serves all four run
// directions conflict-free when M is prime and a, a-1, a+1 are nonzero
// mod M, and any p x q subarray with p*q <= M when a = q — against the
// naive row-major layout that collapses columns whenever gcd(cols, M)>1.
//
// The closed-form bound M / gcd(step, M) is printed next to the measured
// longest conflict-free run so the arithmetic is visible.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/array/array_mapping.hpp"

namespace {

using namespace pmtree;

/// Longest K with zero measured conflicts along a direction (<= cap).
std::uint64_t longest_cf_run(const ArrayMapping& map, RunDirection d,
                             std::uint64_t cap) {
  std::uint64_t best = 0;
  for (std::uint64_t K = 1; K <= cap; ++K) {
    if (evaluate_runs(map, d, K) != 0) break;
    best = K;
  }
  return best;
}

void print_run_table() {
  const Array2D array(32, 32);
  TableWriter table({"mapping", "direction", "predicted CF bound",
                     "measured longest CF run", "match"});
  const SkewedArrayMapping skew7(array, 7, 3);
  const SkewedArrayMapping skew8(array, 8, 2);   // even M: diagonals suffer
  const RowMajorArrayMapping naive(array, 8);    // gcd(cols=32, 8) = 8

  for (const auto d :
       {RunDirection::kRow, RunDirection::kColumn, RunDirection::kDiagonal,
        RunDirection::kAntiDiagonal}) {
    for (const SkewedArrayMapping* map : {&skew7, &skew8}) {
      const std::uint64_t predicted = map->conflict_free_run_bound(d);
      const std::uint64_t measured = longest_cf_run(*map, d, 16);
      table.row(map->name(), to_string(d), predicted, measured,
                bench::pass_cell(measured == std::min<std::uint64_t>(predicted, 16)));
    }
    const std::uint64_t measured = longest_cf_run(naive, d, 16);
    table.row(naive.name(), to_string(d), "-", measured, "");
  }
  bench::print_experiment(
      "E13a (Section 1.2 context: array runs)",
      "Latin-square skewing serves rows/columns/diagonals conflict-free up "
      "to the gcd bound; row-major collapses columns",
      table);
}

void print_subarray_table() {
  const Array2D array(32, 32);
  TableWriter table({"mapping", "p x q", "p*q", "M", "conflicts", "CF"});
  for (const std::uint32_t q : {2u, 4u}) {
    const std::uint32_t M = 12;
    const SkewedArrayMapping skew(array, M, q);
    const RowMajorArrayMapping naive(array, M);
    for (const std::uint64_t p : {2u, 3u, 4u, 6u}) {
      const auto sc = evaluate_subarrays(skew, p, q);
      table.row(skew.name(), std::to_string(p) + "x" + std::to_string(q),
                p * q, M, sc, p * q <= M ? bench::pass_cell(sc == 0) : "n/a");
      const auto nc = evaluate_subarrays(naive, p, q);
      table.row(naive.name(), std::to_string(p) + "x" + std::to_string(q),
                p * q, M, nc, "");
    }
  }
  bench::print_experiment(
      "E13b (Section 1.2 context: subarrays)",
      "skew a = q is conflict-free on p x q subarrays while p*q <= M",
      table);
}

void BM_ArrayRunEvaluation(benchmark::State& state) {
  const Array2D array(static_cast<std::uint64_t>(state.range(0)),
                      static_cast<std::uint64_t>(state.range(0)));
  const SkewedArrayMapping map(array, 7, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_runs(map, RunDirection::kDiagonal, 7));
  }
}
BENCHMARK(BM_ArrayRunEvaluation)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_run_table();
  print_subarray_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
