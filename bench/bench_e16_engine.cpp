// E16 — the cycle-accurate engine: from closed-form makespans to observed
// queueing trajectories.
//
// For COLOR vs. the baselines, a mixed template workload is driven through
// CycleEngine under batch, fixed-rate and bursty arrivals. The table shows
// what the aggregate models hide: two mappings with similar total rounds
// can differ sharply in queue-depth high-water marks and tail (p95/p99)
// access latency once accesses overlap. The full trajectory snapshot —
// per-module queue high-water marks, latency percentiles, metrics registry
// — is also written as a BENCH_E16_engine.json report (to $PMTREE_BENCH_JSON
// if set, else the working directory), the machine-readable companion of
// this table.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/engine/engine.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/scheduler.hpp"

namespace {

using namespace pmtree;
using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineResult;
using engine::Json;
using engine::MetricsRegistry;

constexpr std::uint32_t kM = 15;
constexpr std::uint32_t kLevels = 14;
constexpr std::size_t kAccesses = 2000;

Workload make_workload(const CompleteBinaryTree& tree) {
  return Workload::mixed(tree, kM, kAccesses, 4242);
}

std::vector<ArrivalSchedule> schedules() {
  return {ArrivalSchedule::all_at_once(), ArrivalSchedule::fixed_rate(1),
          ArrivalSchedule::fixed_rate(4), ArrivalSchedule::bursty(64, 128)};
}

void run_experiment() {
  const CompleteBinaryTree tree(kLevels);
  const ColorMapping color = make_optimal_color_mapping(tree, kM);
  const ModuloMapping naive(tree, kM);
  const RandomMapping random(tree, kM, 7);
  const std::vector<const TreeMapping*> mappings = {&color, &naive, &random};
  const Workload workload = make_workload(tree);

  TableWriter table({"mapping", "arrivals", "cycles", "ideal", "throughput",
                     "q depth max", "lat p50", "lat p95", "lat p99",
                     "lat max"});
  MetricsRegistry registry;
  Json report = Json::object();
  report.set("experiment", Json("E16"));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(kLevels)));
  report.set("modules", Json(static_cast<std::uint64_t>(kM)));
  report.set("accesses", Json(static_cast<std::uint64_t>(workload.size())));
  Json runs = Json::array();

  for (const TreeMapping* mapping : mappings) {
    const std::uint64_t ideal =
        BatchScheduler(*mapping).schedule(workload).ideal;
    for (const ArrivalSchedule& schedule : schedules()) {
      const std::string prefix = mapping->name() + "/" + schedule.name();
      const CycleEngine eng(*mapping, &registry, prefix);
      const EngineResult r = eng.run(workload, schedule);
      table.row(mapping->name(), schedule.name(), r.completion_cycle, ideal,
                r.throughput(), r.max_queue_depth(), r.latency.p50(),
                r.latency.p95(), r.latency.p99(), r.latency.max());

      Json entry = Json::object();
      entry.set("mapping", Json(mapping->name()));
      entry.set("arrivals", Json(schedule.name()));
      entry.set("ideal_makespan", Json(ideal));
      entry.set("trajectory", r.to_json());
      runs.push_back(std::move(entry));
    }
  }
  report.set("runs", std::move(runs));
  report.set("metrics", registry.to_json());

  bench::print_experiment(
      "E16 (engine: queueing trajectories)",
      "cycle-accurate drain of " + std::to_string(workload.size()) +
          " mixed accesses, COLOR vs baselines, M = " + std::to_string(kM),
      table);

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E16_engine.json";
  std::ofstream out(path);
  if (out) {
    out << report.dump(2) << '\n';
    std::cout << "JSON trajectory report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }
}

void BM_EngineBatchDrain(benchmark::State& state) {
  const CompleteBinaryTree tree(kLevels);
  const ColorMapping map = make_optimal_color_mapping(tree, kM);
  const Workload workload = make_workload(tree);
  const CycleEngine eng(map);
  for (auto _ : state) {
    const EngineResult r = eng.run(workload, ArrivalSchedule::all_at_once());
    benchmark::DoNotOptimize(r.completion_cycle);
  }
}
BENCHMARK(BM_EngineBatchDrain);

void BM_EngineBurstyDrain(benchmark::State& state) {
  const CompleteBinaryTree tree(kLevels);
  const ModuloMapping map(tree, kM);
  const Workload workload = make_workload(tree);
  const CycleEngine eng(map);
  for (auto _ : state) {
    const EngineResult r = eng.run(workload, ArrivalSchedule::bursty(64, 128));
    benchmark::DoNotOptimize(r.completion_cycle);
  }
}
BENCHMARK(BM_EngineBurstyDrain);

void BM_HistogramRecord(benchmark::State& state) {
  engine::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 40;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
