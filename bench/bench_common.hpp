// Shared helpers for the pmtree benchmark harness.
//
// Each bench binary regenerates one experiment of EXPERIMENTS.md: it
// prints the experiment's result table(s) once at startup (so plain
// `./bench_*` output contains the paper-shaped tables) and registers
// google-benchmark timings where runtime is the measured quantity.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "pmtree/util/table.hpp"

namespace pmtree::bench {

/// Prints a banner + table to stdout, once, before google-benchmark runs.
/// If the environment variable PMTREE_BENCH_CSV names a directory, the
/// table is additionally written there as <experiment-id>.csv so plots
/// can be regenerated without parsing the text tables.
inline void print_experiment(const std::string& id, const std::string& claim,
                             const TableWriter& table) {
  std::cout << "\n=== " << id << " — " << claim << " ===\n";
  table.print(std::cout);
  std::cout << std::endl;

  if (const char* dir = std::getenv("PMTREE_BENCH_CSV"); dir != nullptr) {
    std::string file;
    for (const char c : id) {
      file += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    std::string path(dir);
    if (!path.empty() && path.back() != '/') path += '/';
    path += file + ".csv";
    std::ofstream out(path);
    if (out) {
      table.print_csv(out);
    } else {
      std::cerr << "pmtree-bench: cannot write " << path
                << " (PMTREE_BENCH_CSV=" << dir
                << " — does the directory exist?)\n";
    }
  }
}

/// "0" / "<=1" style verdict cell.
inline std::string pass_cell(bool ok) { return ok ? "PASS" : "FAIL"; }

/// True when the experiment's smoke toggle (e.g. "PMTREE_E19_SMOKE") is
/// set to anything but "0" — the perf-smoke ctest entries run each bench
/// in reduced dimensions through this one switch.
inline bool smoke_mode(const char* env_var) {
  const char* env = std::getenv(env_var);
  return env != nullptr && std::string(env) != "0";
}

/// True median of a non-empty sample: odd N takes the middle element of
/// the sorted sample; even N averages the two middles. `sorted[n / 2]`
/// alone is the UPPER middle for even N — a systematic high bias that
/// skews A/B ratios whenever the two sides' jitter tails differ.
inline double median_of(std::vector<double> sample) {
  std::sort(sample.begin(), sample.end());
  const std::size_t n = sample.size();
  if (n % 2 == 1) return sample[n / 2];
  return (sample[n / 2 - 1] + sample[n / 2]) / 2.0;
}

/// Warmed, median-of-N wall-clock measurement for the comparison tables
/// (E19/E22/E23 ratios on a noisy shared 1-CPU host). `warmup` untimed
/// runs of `body` populate caches/allocators/thread pools, then `trials`
/// timed runs are taken and the MEDIAN wall-seconds returned — the
/// best-of-N idiom the serving benches used before is biased low under
/// scheduler jitter, which inflates A/B ratios when A and B are hit
/// unevenly; the median is the standard robust estimator here. `trials`
/// of 0 behaves as 1.
/// The `setup` callback runs UNTIMED before every body invocation
/// (warmup included) — the place for request submission and for tearing
/// down the previous trial's buffers, so the timed window bills the
/// measured call alone.
template <typename Setup, typename Fn>
inline double median_wall_seconds(int warmup, int trials, Setup&& setup,
                                  Fn&& body) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) {
    setup();
    body();
  }
  std::vector<double> wall;
  wall.reserve(static_cast<std::size_t>(std::max(trials, 1)));
  for (int i = 0; i < std::max(trials, 1); ++i) {
    setup();
    const Clock::time_point start = Clock::now();
    body();
    wall.push_back(std::chrono::duration<double>(Clock::now() - start)
                       .count());
  }
  return median_of(std::move(wall));
}

template <typename Fn>
inline double median_wall_seconds(int warmup, int trials, Fn&& body) {
  return median_wall_seconds(warmup, trials, [] {}, std::forward<Fn>(body));
}

/// The smoke-vs-full dimensions shared by the single-tree serving benches
/// (E19 faults-free, E20 faulted, E22 pipeline): one place to retune the
/// perf-smoke footprint for all of them, so the gates stay comparable.
struct ServeBenchDims {
  std::uint32_t tree_levels;
  std::uint32_t modules;
  std::size_t requests;
  int reps;  ///< timed trials per warmed median-of-N measurement
             ///< (median_wall_seconds; CI boxes are noisy)
};

inline ServeBenchDims serve_bench_dims(bool smoke) {
  return smoke ? ServeBenchDims{12, 15, 2000, 2}
               : ServeBenchDims{16, 31, 20000, 7};
}

/// E21's multi-tenant variant: shallower trees, per-tenant request
/// counts.
inline ServeBenchDims forest_bench_dims(bool smoke) {
  return smoke ? ServeBenchDims{10, 15, 600, 2}
               : ServeBenchDims{13, 31, 6000, 3};
}

}  // namespace pmtree::bench
