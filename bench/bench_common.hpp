// Shared helpers for the pmtree benchmark harness.
//
// Each bench binary regenerates one experiment of EXPERIMENTS.md: it
// prints the experiment's result table(s) once at startup (so plain
// `./bench_*` output contains the paper-shaped tables) and registers
// google-benchmark timings where runtime is the measured quantity.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "pmtree/util/table.hpp"

namespace pmtree::bench {

/// Prints a banner + table to stdout, once, before google-benchmark runs.
/// If the environment variable PMTREE_BENCH_CSV names a directory, the
/// table is additionally written there as <experiment-id>.csv so plots
/// can be regenerated without parsing the text tables.
inline void print_experiment(const std::string& id, const std::string& claim,
                             const TableWriter& table) {
  std::cout << "\n=== " << id << " — " << claim << " ===\n";
  table.print(std::cout);
  std::cout << std::endl;

  if (const char* dir = std::getenv("PMTREE_BENCH_CSV"); dir != nullptr) {
    std::string file;
    for (const char c : id) {
      file += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    std::ofstream out(std::string(dir) + "/" + file + ".csv");
    if (out) table.print_csv(out);
  }
}

/// "0" / "<=1" style verdict cell.
inline std::string pass_cell(bool ok) { return ok ? "PASS" : "FAIL"; }

}  // namespace pmtree::bench
