// E23 — skew-adaptive migration: wall-clock throughput of the epoch-based
// remapping serve loop (DESIGN.md §15) against the frozen static-COLOR
// baseline on a hot-spot Zipf workload.
//
// The workload concentrates requests on a handful of "hot" leaves that all
// share base color 0 — the E18-style adversarial skew for a static
// mapping: every hot node serializes on one module, the module backlog
// inflates memory-system residency past the retry timeout, and the retry
// waves multiply serving rounds (each round re-executes the cumulative
// batch history). With migration enabled the planner's heat ledger spots
// the hot subtrees within one epoch and rotates them onto distinct
// modules, so residencies stay under the timeout and the run converges in
// the minimal number of rounds. The wall-clock win is therefore a
// *behavioral* one — fewer retry rounds, less cumulative re-execution,
// fewer control ticks — not a microkernel difference, which is what makes
// it robust to measure.
//
// Measured questions:
//   * static vs migrated wall req/s (warmed median-of-N; target >= 1.5x),
//     plus the deterministic skew facts behind it: serving rounds, total
//     retries, final cycle, predicted peak module heat before/after.
//   * determinism: migrated responses bit-identical at 1/2/8 workers and
//     under the staged pipeline (1/2 workers); a disabled MigrationPolicy
//     reproduces the static baseline bit-for-bit.
//
// The exit-code gate covers ONLY the deterministic invariants (identity,
// rounds, retries, final cycle) so the perf-smoke ctest entry cannot
// flake under scheduler noise; the wall-clock ratio is printed, recorded
// in BENCH_E23_migration.json, and judged in EXPERIMENTS.md from a
// quiet-box full run. PMTREE_E23_SMOKE=1 shrinks every dimension.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;
using namespace pmtree::serve;

bool smoke_mode() { return bench::smoke_mode("PMTREE_E23_SMOKE"); }

std::uint32_t tree_levels() {
  return bench::serve_bench_dims(smoke_mode()).tree_levels;
}
std::uint32_t module_count() {
  return bench::serve_bench_dims(smoke_mode()).modules;
}
std::size_t request_count() {
  return bench::serve_bench_dims(smoke_mode()).requests;
}
int reps() { return bench::serve_bench_dims(smoke_mode()).reps; }

/// Subtree granularity for both the workload and the MigrationPolicy.
constexpr std::uint32_t kSubtreeLevel = 4;
/// Hot subtrees (out of 2^kSubtreeLevel = 16), evenly spaced.
constexpr std::uint32_t kHotSubtrees = 8;
/// Color-0 leaves collected per hot subtree.
constexpr std::size_t kLeavesPerSubtree = 6;

/// The adversarial node sets: bottom-level leaves from kHotSubtrees
/// DISTINCT subtrees that all share one BASE color — under the static
/// mapping every such leaf serializes on the same module, while the
/// migration planner can rotate each subtree independently. The target
/// color is whatever the first leaf wears (a COLOR mapping does not
/// guarantee any particular color appears in a given subtree's leaf
/// range, so the scan walks subtrees until enough of them yield
/// kLeavesPerSubtree same-colored leaves).
std::vector<std::vector<Node>> hot_leaves(const CompleteBinaryTree& tree,
                                          const TreeMapping& mapping) {
  const std::uint32_t bottom = tree.levels() - 1;
  const std::uint32_t subtrees =
      static_cast<std::uint32_t>(pow2(kSubtreeLevel));
  const Color target = mapping.color_of(v(0, bottom));
  std::vector<std::vector<Node>> hot;
  for (std::uint32_t sid = 0;
       sid < subtrees && hot.size() < kHotSubtrees; ++sid) {
    const std::uint64_t first = std::uint64_t{sid} << (bottom - kSubtreeLevel);
    const std::uint64_t count = pow2(bottom - kSubtreeLevel);
    std::vector<Node> leaves;
    for (std::uint64_t k = 0; k < count && leaves.size() < kLeavesPerSubtree;
         ++k) {
      const Node n = v(first + k, bottom);
      if (mapping.color_of(n) == target) leaves.push_back(n);
    }
    if (leaves.size() == kLeavesPerSubtree) hot.push_back(std::move(leaves));
  }
  return hot;
}

/// Hot-spot Zipf stream: 80% of requests read 3 color-0 leaves from one
/// hot subtree (subtree s drawn with probability proportional to
/// 1/(s+1)); 20% are ordinary root-to-leaf paths from uniform leaves. The
/// hot mass alone oversubscribes module 0 (~1.2 color-0 nodes per cycle
/// at gap 2 against a 1 node/cycle module), so the static backlog grows
/// without bound while the migrated spread stays under capacity.
std::vector<Request> request_stream(
    const CompleteBinaryTree& tree,
    const std::vector<std::vector<Node>>& hot, std::size_t count,
    std::uint32_t clients, std::uint64_t gap, std::uint64_t seed) {
  Rng rng(seed);
  // Integer Zipf CDF over the hot subtrees: weight 840 / (s + 1).
  std::vector<std::uint64_t> cdf;
  std::uint64_t acc = 0;
  for (std::uint32_t s = 0; s < kHotSubtrees; ++s) {
    acc += 840 / (s + 1);
    cdf.push_back(acc);
  }
  std::vector<Request> requests;
  requests.reserve(count);
  std::vector<std::uint64_t> next_seq(clients, 0);
  std::uint64_t clock = 0;
  const std::uint32_t bottom = tree.levels() - 1;
  for (std::size_t i = 0; i < count; ++i) {
    clock += gap == 0 ? 0 : rng.below(2 * gap + 1);  // mean ~= gap
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(clients));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    if (rng.below(10) < 8) {
      const std::uint64_t draw = rng.below(acc);
      std::uint32_t s = 0;
      while (cdf[s] <= draw) ++s;
      const std::vector<Node>& leaves = hot[s];
      const std::size_t start = rng.below(leaves.size());
      for (std::size_t k = 0; k < 3; ++k) {
        r.nodes.push_back(leaves[(start + k) % leaves.size()]);
      }
    } else {
      Node n = v(rng.below(pow2(bottom)), bottom);
      r.nodes.push_back(n);
      while (n.level > 0) {
        n = parent(n);
        r.nodes.push_back(n);
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

/// E19's serving configuration plus the retry policy that converts module
/// backlog into extra serving rounds. attempt_timeout sits well above the
/// residency a balanced spread produces (tens of cycles) and far below
/// what a saturated module accumulates (thousands).
ServerOptions serve_options(bool migrated, unsigned workers = 1,
                            unsigned pipeline_workers = 0) {
  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.replicas = 1;
  opts.workers = workers;
  opts.admission.queue_bound = 128;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 96;
  opts.batch.max_wait_cycles = 8;
  // Unlike E19/E22 (which switch DepthSampling off to isolate control-
  // plane costs), E23 keeps the engine's default per-busy-cycle sampling:
  // replica re-execution is cycle-driven work proportional to the module
  // backlog, which is EXACTLY what migration removes — turning it off
  // would hide most of the effect being measured.
  opts.retry.max_retries = 4;
  opts.retry.attempt_timeout_cycles = 64;
  opts.retry.backoff_base_cycles = 16;
  opts.retry.backoff_cap_cycles = 128;
  opts.pipeline.workers = pipeline_workers;
  if (migrated) {
    opts.migration.epoch_batches = 8;
    opts.migration.top_k = kHotSubtrees;
    opts.migration.subtree_level = kSubtreeLevel;
    opts.migration.decay_shift = 1;
    opts.migration.min_heat = 1;
  }
  return opts;
}

struct RunOutcome {
  ServeReport report;
  double wall_seconds = 0;
};

/// Warmed median-of-N wall time of run() only (bench_common.hpp); the
/// server is constructed once and reused like a long-lived process.
RunOutcome run_server(const TreeMapping& mapping, const ServerOptions& opts,
                      const std::vector<Request>& requests, int repeat) {
  RunOutcome outcome;
  Server server(mapping, opts);
  outcome.wall_seconds = bench::median_wall_seconds(
      /*warmup=*/1, repeat,
      [&] {
        for (const Request& r : requests) server.submit(r);
        outcome.report = ServeReport{};
      },
      [&] { outcome.report = server.run(); });
  return outcome;
}

/// Bit-identity of everything deterministic: responses row-for-row, then
/// batch count / final cycle, then the metric sections minus the
/// wall-time pipeline attribution.
bool same_responses(const ServeReport& got, const ServeReport& oracle) {
  if (got.responses.size() != oracle.responses.size()) return false;
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& x = got.responses[i];
    const Response& y = oracle.responses[i];
    if (x.client != y.client || x.seq != y.seq || x.status != y.status ||
        x.completion_cycle != y.completion_cycle || x.batch != y.batch ||
        x.dispatch_cycle != y.dispatch_cycle || x.retries != y.retries) {
      return false;
    }
  }
  if (got.batches.size() != oracle.batches.size()) return false;
  if (got.final_cycle != oracle.final_cycle) return false;
  for (const auto& [key, value] : oracle.metrics.members()) {
    if (key == "pipeline") continue;  // wall-time stage attribution
    const Json* other = got.metrics.find(key);
    if (other == nullptr || other->dump() != value.dump()) return false;
  }
  return true;
}

bool warn_unless(bool ok, const char* what) {
  if (!ok) std::cout << "MISMATCH: " << what << "\n";
  return ok;
}

std::uint64_t total_retries(const ServeReport& report) {
  std::uint64_t total = 0;
  for (const Response& r : report.responses) total += r.retries;
  return total;
}

std::uint64_t migration_stat(const ServeReport& report, const char* field) {
  const Json* m = report.metrics.find("migration");
  if (m == nullptr) return 0;
  const Json* f = m->find(field);
  return f == nullptr ? 0 : f->as_uint();
}

void run_experiment() {
  const CompleteBinaryTree tree(tree_levels());
  const ColorMapping color = make_optimal_color_mapping(tree, module_count());
  const std::vector<std::vector<Node>> hot = hot_leaves(tree, color);
  const std::vector<Request> requests =
      request_stream(tree, hot, request_count(), 16, 2, 0xE23);

  // ---- Headline: static vs migrated, single-threaded oracle. ----------
  const RunOutcome migrated =
      run_server(color, serve_options(true), requests, reps());
  const RunOutcome baseline =
      run_server(color, serve_options(false), requests, reps());
  const double base_rps =
      static_cast<double>(requests.size()) / baseline.wall_seconds;
  const double migr_rps =
      static_cast<double>(requests.size()) / migrated.wall_seconds;
  const double speedup = base_rps > 0 ? migr_rps / base_rps : 0;

  TableWriter table({"mapping", "wall s", "wall Mreq/s", "rounds", "retries",
                     "final cycle", "speedup"});
  table.row("static COLOR", baseline.wall_seconds, base_rps / 1e6,
            baseline.report.rounds, total_retries(baseline.report),
            baseline.report.final_cycle, 1.0);
  table.row("migrated", migrated.wall_seconds, migr_rps / 1e6,
            migrated.report.rounds, total_retries(migrated.report),
            migrated.report.final_cycle, speedup);
  bench::print_experiment(
      "E23 (skew-adaptive migration vs static mapping)",
      std::to_string(request_count()) + " requests, 80% hot-spot Zipf on " +
          std::to_string(kHotSubtrees) + " color-0 subtrees, COLOR M=" +
          std::to_string(module_count()) + ", height-" +
          std::to_string(tree.levels() - 1) + " tree, retry timeout 64",
      table);

  TableWriter planner({"stat", "value"});
  planner.row("epochs planned", migration_stat(migrated.report,
                                               "epochs_planned"));
  planner.row("mappings minted", migration_stat(migrated.report,
                                                "mappings_minted"));
  planner.row("subtrees moved", migration_stat(migrated.report,
                                               "subtrees_moved"));
  planner.row("predicted peak before", migration_stat(migrated.report,
                                                      "last_peak_before"));
  planner.row("predicted peak after", migration_stat(migrated.report,
                                                     "last_peak_after"));
  bench::print_experiment("E23 (planner)",
                          "MigrationPlanner stats of the migrated run",
                          planner);

  // ---- Determinism: the exit-code gate. -------------------------------
  // Every run below must be bit-identical to the migrated oracle (or, for
  // the disabled policy, to the static baseline). Same repeat count as
  // the headline runs: the registry-backed metric sections accumulate
  // across run() calls, so bit-identity of the summaries requires the
  // same run count per server.
  const RunOutcome w2 =
      run_server(color, serve_options(true, 2), requests, reps());
  const RunOutcome w8 =
      run_server(color, serve_options(true, 8), requests, reps());
  const RunOutcome p1 =
      run_server(color, serve_options(true, 1, 1), requests, reps());
  const RunOutcome p2 =
      run_server(color, serve_options(true, 1, 2), requests, reps());
  ServerOptions disabled = serve_options(true);
  disabled.migration = MigrationPolicy{};
  const RunOutcome off = run_server(color, disabled, requests, reps());

  const bool id_w2 =
      warn_unless(same_responses(w2.report, migrated.report), "2 workers");
  const bool id_w8 =
      warn_unless(same_responses(w8.report, migrated.report), "8 workers");
  const bool id_p1 =
      warn_unless(same_responses(p1.report, migrated.report), "pipeline 1w");
  const bool id_p2 =
      warn_unless(same_responses(p2.report, migrated.report), "pipeline 2w");
  const bool id_off = warn_unless(same_responses(off.report, baseline.report),
                                  "disabled policy");
  const bool skew_tamed =
      migrated.report.rounds <= baseline.report.rounds &&
      total_retries(migrated.report) < total_retries(baseline.report) &&
      migrated.report.final_cycle < baseline.report.final_cycle;

  TableWriter gate({"invariant", "verdict"});
  gate.row("migrated 2 workers == 1 worker", bench::pass_cell(id_w2));
  gate.row("migrated 8 workers == 1 worker", bench::pass_cell(id_w8));
  gate.row("pipeline 1w == oracle", bench::pass_cell(id_p1));
  gate.row("pipeline 2w == oracle", bench::pass_cell(id_p2));
  gate.row("disabled policy == static baseline", bench::pass_cell(id_off));
  gate.row("fewer retries/rounds, earlier final cycle",
           bench::pass_cell(skew_tamed));
  gate.row("wall speedup >= 1.5x (informational)",
           smoke_mode() ? "SKIP (smoke dims)"
                        : bench::pass_cell(speedup >= 1.5));
  bench::print_experiment(
      "E23 (acceptance)",
      "exit code gates the deterministic rows only; the wall ratio is "
      "recorded for EXPERIMENTS.md",
      gate);

  Json report = Json::object();
  report.set("experiment", Json("E23"));
  report.set("smoke", Json(smoke_mode()));
  report.set("tree_levels", Json(static_cast<std::uint64_t>(tree_levels())));
  report.set("modules", Json(static_cast<std::uint64_t>(module_count())));
  report.set("requests", Json(request_count()));
  report.set("hot_subtrees", Json(std::uint64_t{kHotSubtrees}));
  Json rows = Json::object();
  Json stat = Json::object();
  stat.set("wall_seconds", Json(baseline.wall_seconds));
  stat.set("wall_requests_per_sec", Json(base_rps));
  stat.set("rounds", Json(baseline.report.rounds));
  stat.set("retries", Json(total_retries(baseline.report)));
  stat.set("final_cycle", Json(baseline.report.final_cycle));
  rows.set("static", std::move(stat));
  Json migr = Json::object();
  migr.set("wall_seconds", Json(migrated.wall_seconds));
  migr.set("wall_requests_per_sec", Json(migr_rps));
  migr.set("rounds", Json(migrated.report.rounds));
  migr.set("retries", Json(total_retries(migrated.report)));
  migr.set("final_cycle", Json(migrated.report.final_cycle));
  const Json* mstats = migrated.report.metrics.find("migration");
  if (mstats != nullptr) migr.set("migration", *mstats);
  rows.set("migrated", std::move(migr));
  report.set("rows", std::move(rows));
  report.set("speedup", Json(speedup));
  report.set("identical_workers", Json(id_w2 && id_w8));
  report.set("identical_pipeline", Json(id_p1 && id_p2));
  report.set("disabled_equals_static", Json(id_off));
  report.set("skew_tamed", Json(skew_tamed));

  std::string dir = ".";
  if (const char* env = std::getenv("PMTREE_BENCH_JSON"); env != nullptr) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_E23_migration.json";
  std::ofstream file(path);
  if (file) {
    file << report.dump(2) << '\n';
    std::cout << "JSON migration report written to " << path << "\n";
  } else {
    std::cout << "warning: could not write " << path << "\n";
  }

  if (!(id_w2 && id_w8 && id_p1 && id_p2 && id_off && skew_tamed)) {
    std::cout << "ERROR: migration determinism/skew invariants failed\n";
    std::exit(1);
  }
}

// google-benchmark timings: end-to-end hot-spot serve, static vs migrated.

struct BenchSetup {
  CompleteBinaryTree tree;
  ColorMapping mapping;
  std::vector<Request> requests;
  BenchSetup()
      : tree(smoke_mode() ? 10 : 13),
        mapping(make_optimal_color_mapping(tree, 15)),
        requests(request_stream(tree, hot_leaves(tree, mapping),
                                smoke_mode() ? 300 : 2000, 8, 2, 7)) {}
};

void BM_MigrationEndToEnd(benchmark::State& state) {
  const BenchSetup s;
  Server server(s.mapping, serve_options(state.range(0) != 0));
  for (auto _ : state) {
    for (const Request& r : s.requests) server.submit(r);
    const ServeReport report = server.run();
    benchmark::DoNotOptimize(report.final_cycle);
  }
}
BENCHMARK(BM_MigrationEndToEnd)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
