// E5 — Lemmas 3, 4, 5: oversized elementary templates (size D >= M) under
// COLOR(T, 2^{m-1}-1, 2^{m-1}+m-1):
//
//     Cost(P(D)) <= 2*ceil(D/M) - 1        (Lemma 3)
//     Cost(L(D)) <= 4*ceil(D/M)            (Lemma 4)
//     Cost(S(D)) <= 4*ceil(D/M) - 1        (Lemma 5, D = 2^d - 1)
//
// One table per lemma: measured exhaustive maximum vs. the bound and the
// trivial lower bound ceil(D/M) - 1, swept over D/M. The curves regenerate
// the linear-in-D/M shape the lemmas predict.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace {

using namespace pmtree;

constexpr std::uint32_t kM = 7;  // m = 3: N = 6, K = 3

void print_path_table() {
  const CompleteBinaryTree tree(20);
  // Eager table: exhaustive evaluation over ~2^20 paths would otherwise
  // pay COLOR's O(H) addressing on every node.
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  TableWriter table({"D", "D/M", "measured", "Lemma 3 bound", "lower bound",
                     "verdict"});
  for (std::uint64_t D = kM; D <= 20; D += 2) {
    const auto measured = evaluate_paths(color, D).max_conflicts;
    const auto bound = bounds::color_path_bound(D, kM);
    table.row(D, static_cast<double>(D) / kM, measured, bound,
              bounds::trivial_lower(D, kM),
              bench::pass_cell(measured <= bound));
  }
  bench::print_experiment("E5a (Lemma 3)",
                          "Cost(COLOR, P(D), M) <= 2*ceil(D/M) - 1", table);
}

void print_level_table() {
  const CompleteBinaryTree tree(15);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  TableWriter table({"D", "D/M", "measured", "Lemma 4 bound", "lower bound",
                     "verdict"});
  for (std::uint64_t D = kM; D <= 16 * kM; D *= 2) {
    const auto measured = evaluate_level_runs(color, D).max_conflicts;
    const auto bound = bounds::color_level_bound(D, kM);
    table.row(D, static_cast<double>(D) / kM, measured, bound,
              bounds::trivial_lower(D, kM),
              bench::pass_cell(measured <= bound));
  }
  bench::print_experiment("E5b (Lemma 4)",
                          "Cost(COLOR, L(D), M) <= 4*ceil(D/M)", table);
}

void print_subtree_table() {
  const CompleteBinaryTree tree(15);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  TableWriter table({"D", "D/M", "measured", "Lemma 5 bound", "lower bound",
                     "verdict"});
  for (std::uint32_t d = 3; d <= 10; ++d) {
    const std::uint64_t D = tree_size(d);
    const auto measured = evaluate_subtrees(color, D).max_conflicts;
    const auto bound = bounds::color_subtree_bound(D, kM);
    table.row(D, static_cast<double>(D) / kM, measured, bound,
              bounds::trivial_lower(D, kM),
              bench::pass_cell(measured <= bound));
  }
  bench::print_experiment("E5c (Lemma 5)",
                          "Cost(COLOR, S(D), M) <= 4*ceil(D/M) - 1 for "
                          "D = 2^d - 1",
                          table);
}

void BM_OversizedSubtrees(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  const CompleteBinaryTree tree(15);
  const ColorMapping color = make_optimal_color_mapping(tree, kM);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_subtrees(color, tree_size(d)).max_conflicts);
  }
}
BENCHMARK(BM_OversizedSubtrees)->Arg(5)->Arg(7)->Arg(9);

}  // namespace

int main(int argc, char** argv) {
  print_path_table();
  print_level_table();
  print_subtree_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
