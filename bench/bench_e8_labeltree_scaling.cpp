// E8 — Lemma 7 & Theorem 8: LABEL-TREE scaling with template size D:
//
//     Cost(L(D)) = O(D / sqrt(M log M))          (Lemma 7.1, proved)
//     Cost(P(D)) <= ceil(D / sqrt(M log M)) + 1  (Lemma 7.2)
//     Cost(S(D)) = O(D / sqrt(M log M))          (Lemma 7.3)
//     Cost(C(D, c)) = O(D / sqrt(M log M) + c)   (Theorem 8)
//
// versus COLOR's O(D/M + c) (Theorem 6) — the paper's point is that
// LABEL-TREE trades a sqrt(log M / M) * M = sqrt(M log M)-ish factor more
// conflicts for O(1) addressing and balanced load.
//
// The tables sweep D at fixed M and report measured max conflicts next to
// the D/sqrt(M log M) scale and COLOR's numbers.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace {

using namespace pmtree;

constexpr std::uint32_t kM = 63;
constexpr std::uint32_t kLevels = 18;

void print_elementary_table() {
  const CompleteBinaryTree tree(kLevels);
  const LabelTreeMapping label(tree, kM);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  const double scale = bounds::label_tree_d_scale(1, kM);  // per-node slope

  TableWriter table({"family", "D", "D/sqrt(MlogM)", "LABEL-TREE", "COLOR",
                     "verdict (<=6x + 4)"});
  for (const std::uint64_t D : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const auto lt = evaluate_level_runs(label, D).max_conflicts;
    const auto co = evaluate_level_runs(color, D).max_conflicts;
    const double s = scale * static_cast<double>(D);
    table.row("L", D, s, lt, co,
              bench::pass_cell(static_cast<double>(lt) <= 6.0 * s + 4.0));
  }
  for (std::uint32_t d = 6; d <= 11; ++d) {
    const std::uint64_t D = tree_size(d);
    const auto lt = evaluate_subtrees(label, D).max_conflicts;
    const auto co = evaluate_subtrees(color, D).max_conflicts;
    const double s = scale * static_cast<double>(D);
    table.row("S", D, s, lt, co,
              bench::pass_cell(static_cast<double>(lt) <= 6.0 * s + 4.0));
  }
  for (const std::uint64_t D : {6u, 10u, 14u, 18u}) {
    const auto lt = evaluate_paths(label, D).max_conflicts;
    const auto co = evaluate_paths(color, D).max_conflicts;
    const double bound = bounds::label_tree_d_scale(D, kM) + 1.0;
    table.row("P", D, bounds::label_tree_d_scale(D, kM), lt, co,
              bench::pass_cell(static_cast<double>(lt) <= 6.0 * bound + 4.0));
  }
  bench::print_experiment(
      "E8a (Lemma 7)",
      "LABEL-TREE elementary-template conflicts scale as D/sqrt(M log M); "
      "COLOR's scale is the steeper-at-small-D but flatter-per-module D/M",
      table);
}

void print_composite_table() {
  const CompleteBinaryTree tree(kLevels);
  const LabelTreeMapping label(tree, kM);
  const EagerColorMapping color(make_optimal_color_mapping(tree, kM));
  TableWriter table({"D", "c", "LABEL-TREE max", "scale + c", "COLOR max",
                     "Thm 6 bound", "verdict"});
  Rng rng(808);
  for (const std::uint64_t c : {1u, 4u, 16u}) {
    for (const std::uint64_t D : {256u, 1024u, 4096u}) {
      Rng rng_label = rng;  // identical instances for both mappings
      const auto lt = sample_composites(label, D, c, 150, rng_label);
      Rng rng_color = rng;
      const auto co = sample_composites(color, D, c, 150, rng_color);
      rng = rng_label;
      const double scale =
          bounds::label_tree_d_scale(D, kM) + static_cast<double>(c);
      const bool ok =
          static_cast<double>(lt.max_conflicts) <= 6.0 * scale + 4.0;
      table.row(D, c, lt.max_conflicts, scale, co.max_conflicts,
                bounds::color_composite_bound(D, kM, c), bench::pass_cell(ok));
    }
  }
  bench::print_experiment(
      "E8b (Theorem 8)",
      "LABEL-TREE composite-template conflicts are O(D/sqrt(M log M) + c)",
      table);
}

void BM_LabelTreeScalingSweep(benchmark::State& state) {
  const auto D = static_cast<std::uint64_t>(state.range(0));
  const CompleteBinaryTree tree(kLevels);
  const LabelTreeMapping label(tree, kM);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_level_runs(label, D).max_conflicts);
  }
}
BENCHMARK(BM_LabelTreeScalingSweep)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

int main(int argc, char** argv) {
  print_elementary_table();
  print_composite_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
