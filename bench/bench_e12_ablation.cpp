// E12 — ablations of the two design choices DESIGN.md §3 calls out.
//
// (a) COLOR's Gamma list (the paper's ambiguous "path from the root of
//     B(i', j-1) to the root of B(i, j)"): the kCorrect reading
//     (parent root .. parent of the block root) against the two plausible
//     misreadings. Only kCorrect is conflict-free — this is the measured
//     justification for DESIGN.md's resolution, and shows the exhaustive
//     suite has the power to catch the mutants.
//
// (b) LABEL-TREE's sub-block parameter l: the paper picks
//     l = floor(log2(ceil(sqrt(M log M)))), which balances the window
//     length ell = 2^l + 2^{m-l} - 1. Sweeping l shows the conflict curve
//     is minimized near the paper's choice (the window length is the
//     budget of distinct colors a block can use; both extremes waste it).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"

namespace {

using namespace pmtree;

void print_gamma_ablation() {
  TableWriter table({"gamma reading", "H", "N", "K", "S(K) conflicts",
                     "P(N) conflicts", "conflict-free"});
  const struct {
    internal::GammaVariant variant;
    const char* label;
  } variants[] = {
      {internal::GammaVariant::kCorrect, "parent root .. block-root parent"},
      {internal::GammaVariant::kIncludeChildRoot, "parent's child .. block root"},
      {internal::GammaVariant::kReversed, "same nodes, bottom-up"},
  };
  const struct {
    std::uint32_t H, N, k;
  } configs[] = {{10, 4, 2}, {12, 6, 3}};
  for (const auto& var : variants) {
    for (const auto& cfg : configs) {
      const ColorMapping map(CompleteBinaryTree(cfg.H), cfg.N, cfg.k,
                             var.variant);
      const auto s = evaluate_subtrees(map, tree_size(cfg.k)).max_conflicts;
      const auto p = evaluate_paths(map, cfg.N).max_conflicts;
      table.row(var.label, cfg.H, cfg.N, tree_size(cfg.k), s, p,
                s == 0 && p == 0);
    }
  }
  bench::print_experiment(
      "E12a (Gamma-list ablation)",
      "only the parent-root..block-root-parent reading of Gamma is "
      "conflict-free (DESIGN.md §3 item 4)",
      table);
}

void print_l_ablation() {
  const std::uint32_t M = 63;  // m = 6, paper's l = 4
  const CompleteBinaryTree tree(15);
  TableWriter table({"l", "ell", "S(M)", "P(M sized 15)", "L(M)",
                     "load ratio", "paper's choice"});
  const LabelTreeMapping reference(tree, M);
  for (std::uint32_t l = 1; l <= reference.m() - 1; ++l) {
    const LabelTreeMapping map(tree, M, LabelTreeMapping::Retrieval::kTable, l);
    const auto s = evaluate_subtrees(map, M).max_conflicts;
    const auto p = evaluate_paths(map, 15).max_conflicts;
    const auto lr = evaluate_level_runs(map, M).max_conflicts;
    table.row(l, map.ell(), s, p, lr, load_balance(map).ratio(),
              l == reference.l() ? "<== paper" : "");
  }
  bench::print_experiment(
      "E12b (LABEL-TREE l ablation)",
      "the paper's l = floor(log2(ceil(sqrt(M log M)))) sits at/near the "
      "conflict minimum; extremes degrade",
      table);
}

void BM_GammaVariantColoring(benchmark::State& state) {
  const auto variant =
      static_cast<internal::GammaVariant>(state.range(0));
  const CompleteBinaryTree tree(16);
  const ColorMapping map(tree, 6, 3, variant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.materialize().size());
  }
}
BENCHMARK(BM_GammaVariantColoring)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_gamma_ablation();
  print_l_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
