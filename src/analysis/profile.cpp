#include "pmtree/analysis/profile.hpp"

#include <algorithm>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

std::vector<std::uint64_t> level_color_histogram(const TreeMapping& mapping,
                                                 std::uint32_t j) {
  std::vector<std::uint64_t> histogram(mapping.num_modules(), 0);
  for (std::uint64_t i = 0; i < mapping.tree().level_width(j); ++i) {
    histogram[mapping.color_of(v(i, j))] += 1;
  }
  return histogram;
}

namespace {

LevelProfile make_profile(const TreeMapping& mapping) {
  LevelProfile profile;
  profile.worst_by_level.assign(mapping.tree().levels(), 0);
  return profile;
}

void bump(LevelProfile& profile, std::uint32_t level, std::uint64_t cost) {
  profile.worst_by_level[level] = std::max(profile.worst_by_level[level], cost);
  profile.overall = std::max(profile.overall, cost);
}

}  // namespace

LevelProfile subtree_profile(const TreeMapping& mapping, std::uint64_t K) {
  LevelProfile profile = make_profile(mapping);
  for_each_subtree(mapping.tree(), K, [&](const SubtreeInstance& s) {
    bump(profile, s.root.level, conflicts(mapping, s.nodes()));
    return true;
  });
  return profile;
}

LevelProfile level_run_profile(const TreeMapping& mapping, std::uint64_t K) {
  LevelProfile profile = make_profile(mapping);
  for_each_level_run(mapping.tree(), K, [&](const LevelRunInstance& l) {
    bump(profile, l.first.level, conflicts(mapping, l.nodes()));
    return true;
  });
  return profile;
}

LevelProfile path_profile(const TreeMapping& mapping, std::uint64_t K) {
  LevelProfile profile = make_profile(mapping);
  for_each_path(mapping.tree(), K, [&](const PathInstance& p) {
    bump(profile, p.start.level, conflicts(mapping, p.nodes()));
    return true;
  });
  return profile;
}

std::vector<ColorUsage> color_report(const TreeMapping& mapping) {
  std::vector<ColorUsage> report(mapping.num_modules());
  const auto& tree = mapping.tree();
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      ColorUsage& usage = report[mapping.color_of(v(i, j))];
      if (!usage.used) {
        usage.first_level = j;
        usage.used = true;
      }
      usage.last_level = j;
      usage.nodes += 1;
    }
  }
  return report;
}

}  // namespace pmtree
