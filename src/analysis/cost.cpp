#include "pmtree/analysis/cost.hpp"

#include <algorithm>
#include <cassert>

#include "pmtree/templates/enumerate.hpp"
#include "pmtree/templates/sampler.hpp"
#include "pmtree/util/parallel.hpp"

namespace pmtree {

namespace {

/// Instances per chunk of the parallel scan. Only a throughput knob: chunk
/// boundaries never influence results (see util/parallel.hpp).
constexpr std::uint64_t kEvalGrain = 1024;

/// Shared accumulation loop for the evaluate_/sample_ functions.
///
/// The sequential scan keeps the witness of the *first* instance attaining
/// the final maximum. To reproduce that bit-for-bit under the chunked
/// parallel scan, observe() takes the instance's global index: each thread
/// sees its indices in ascending order (parallel_chunks guarantees it), so
/// per-thread state is "max, sum, count, and the lowest index attaining
/// max"; merging two states by (max descending, index ascending) is
/// order-independent and lands on exactly the sequential answer. Sums are
/// integers, so the mean is exact too.
class CostAccumulator {
 public:
  explicit CostAccumulator(const TreeMapping& mapping) : mapping_(mapping) {}

  void observe(std::uint64_t index, std::span<const Node> nodes) {
    colors_.resize(nodes.size());
    mapping_.color_of_batch(nodes, colors_);
    if (histogram_.size() < mapping_.num_modules()) {
      histogram_.assign(mapping_.num_modules(), 0);
    }
    std::uint32_t worst = 0;
    for (const Color c : colors_) worst = std::max(worst, ++histogram_[c]);
    for (const Color c : colors_) histogram_[c] = 0;  // O(|nodes|) reset
    const std::uint64_t cost = worst == 0 ? 0 : worst - 1;

    count_ += 1;
    sum_ += cost;
    // Copy the nodes only when this instance becomes the witness; indices
    // ascend within a thread, so no index tie-check is needed here.
    if (!has_witness_ || cost > max_) {
      max_ = std::max(max_, cost);
      witness_.assign(nodes.begin(), nodes.end());
      witness_index_ = index;
      has_witness_ = true;
    }
  }

  /// Folds `other` in. Commutative and associative, so any merge order
  /// (and any thread count) yields the same state.
  void merge(CostAccumulator&& other) {
    sum_ += other.sum_;
    count_ += other.count_;
    if (!other.has_witness_) return;
    if (!has_witness_ || other.max_ > max_ ||
        (other.max_ == max_ && other.witness_index_ < witness_index_)) {
      max_ = std::max(max_, other.max_);
      witness_ = std::move(other.witness_);
      witness_index_ = other.witness_index_;
      has_witness_ = true;
    }
  }

  [[nodiscard]] FamilyCost take() {
    FamilyCost result;
    result.max_conflicts = max_;
    result.instances = count_;
    result.mean_conflicts =
        count_ == 0 ? 0.0
                    : static_cast<double>(sum_) / static_cast<double>(count_);
    result.witness = std::move(witness_);
    return result;
  }

 private:
  const TreeMapping& mapping_;
  std::vector<Color> colors_;            // scratch, reused across observes
  std::vector<std::uint32_t> histogram_;  // scratch, kept zeroed
  std::vector<Node> witness_;
  std::uint64_t witness_index_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
  bool has_witness_ = false;
};

/// Evaluates instances [0, total) of an indexed family. `append(idx, buf)`
/// appends instance idx's nodes to buf (cleared by the driver).
template <typename AppendNodes>
FamilyCost evaluate_indexed(const TreeMapping& mapping, std::uint64_t total,
                            const EvalOptions& opts,
                            const AppendNodes& append) {
  unsigned threads = resolve_threads(opts.threads);
  if (total < opts.sequential_cutoff) threads = 1;

  if (threads == 1) {
    CostAccumulator acc(mapping);
    std::vector<Node> buf;
    for (std::uint64_t i = 0; i < total; ++i) {
      buf.clear();
      append(i, buf);
      acc.observe(i, buf);
    }
    return acc.take();
  }

  std::vector<CostAccumulator> accs(threads, CostAccumulator(mapping));
  std::vector<std::vector<Node>> bufs(threads);
  parallel_chunks(total, threads, kEvalGrain,
                  [&](unsigned tid, std::uint64_t begin, std::uint64_t end) {
                    auto& acc = accs[tid];
                    auto& buf = bufs[tid];
                    for (std::uint64_t i = begin; i < end; ++i) {
                      buf.clear();
                      append(i, buf);
                      acc.observe(i, buf);
                    }
                  });
  for (unsigned t = 1; t < threads; ++t) accs[0].merge(std::move(accs[t]));
  return accs[0].take();
}

/// Sampled families: instances are drawn sequentially (identical Rng
/// stream at every thread count), then evaluated as an indexed family.
template <typename Instance>
FamilyCost evaluate_presampled(const TreeMapping& mapping,
                               const std::vector<Instance>& instances,
                               const EvalOptions& opts) {
  return evaluate_indexed(mapping, instances.size(), opts,
                          [&](std::uint64_t i, std::vector<Node>& buf) {
                            instances[i].append_nodes(buf);
                          });
}

}  // namespace

std::uint64_t conflicts(const TreeMapping& mapping, std::span<const Node> nodes) {
  const std::uint64_t mult = rounds(mapping, nodes);
  return mult == 0 ? 0 : mult - 1;
}

std::uint64_t rounds(const TreeMapping& mapping, std::span<const Node> nodes) {
  thread_local std::vector<Color> colors;
  thread_local std::vector<std::uint32_t> histogram;
  colors.resize(nodes.size());
  mapping.color_of_batch(nodes, colors);
  if (histogram.size() < mapping.num_modules()) {
    histogram.assign(mapping.num_modules(), 0);
  }
  std::uint32_t worst = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    worst = std::max(worst, ++histogram[colors[i]]);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) histogram[colors[i]] = 0;
  return worst;
}

void conflicts_batch(const TreeMapping& mapping, std::span<const Node> nodes,
                     std::span<const std::uint64_t> offsets,
                     std::span<std::uint64_t> out) {
  assert(!offsets.empty());
  assert(offsets.front() == 0 && offsets.back() <= nodes.size());
  const std::size_t accesses = offsets.size() - 1;
  assert(out.size() >= accesses);

  thread_local std::vector<Color> colors;
  thread_local std::vector<std::uint32_t> histogram;
  colors.resize(nodes.size());
  mapping.color_of_batch(nodes, colors);
  if (histogram.size() < mapping.num_modules()) {
    histogram.assign(mapping.num_modules(), 0);
  }
  for (std::size_t a = 0; a < accesses; ++a) {
    assert(offsets[a] <= offsets[a + 1]);
    std::uint32_t worst = 0;
    for (std::uint64_t j = offsets[a]; j < offsets[a + 1]; ++j) {
      worst = std::max(worst, ++histogram[colors[j]]);
    }
    for (std::uint64_t j = offsets[a]; j < offsets[a + 1]; ++j) {
      histogram[colors[j]] = 0;
    }
    out[a] = worst == 0 ? 0 : worst - 1;
  }
}

FamilyCost evaluate_subtrees(const TreeMapping& mapping, std::uint64_t K,
                             const EvalOptions& opts) {
  const auto& tree = mapping.tree();
  return evaluate_indexed(mapping, count_subtrees(tree, K), opts,
                          [&](std::uint64_t i, std::vector<Node>& buf) {
                            subtree_at(tree, K, i).append_nodes(buf);
                          });
}

FamilyCost evaluate_level_runs(const TreeMapping& mapping, std::uint64_t K,
                               const EvalOptions& opts) {
  const auto& tree = mapping.tree();
  return evaluate_indexed(mapping, count_level_runs(tree, K), opts,
                          [&](std::uint64_t i, std::vector<Node>& buf) {
                            level_run_at(tree, K, i).append_nodes(buf);
                          });
}

FamilyCost evaluate_paths(const TreeMapping& mapping, std::uint64_t K,
                          const EvalOptions& opts) {
  const auto& tree = mapping.tree();
  return evaluate_indexed(mapping, count_paths(tree, K), opts,
                          [&](std::uint64_t i, std::vector<Node>& buf) {
                            path_at(tree, K, i).append_nodes(buf);
                          });
}

FamilyCost evaluate_tp(const TreeMapping& mapping, std::uint64_t K,
                       const EvalOptions& opts) {
  const auto& tree = mapping.tree();
  const std::uint32_t k = tree_levels(K);
  // Anchors in BFS order == (j ascending, i ascending) — the same instance
  // per index as tp_at, built without the CompositeInstance allocations.
  return evaluate_indexed(
      mapping, count_tp(tree), opts,
      [&](std::uint64_t i, std::vector<Node>& buf) {
        const Node anchor = node_at(i);
        const std::uint32_t sub_levels =
            std::min(k, tree.levels() - anchor.level);
        SubtreeInstance{anchor, tree_size(sub_levels)}.append_nodes(buf);
        if (anchor.level >= 1) {
          PathInstance{parent(anchor), anchor.level}.append_nodes(buf);
        }
      });
}

FamilyCost sample_subtrees(const TreeMapping& mapping, std::uint64_t K,
                           std::uint64_t samples, Rng& rng,
                           const EvalOptions& opts) {
  std::vector<SubtreeInstance> drawn;
  drawn.reserve(samples);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_subtree(mapping.tree(), K, rng)) {
      drawn.push_back(*inst);
    }
  }
  return evaluate_presampled(mapping, drawn, opts);
}

FamilyCost sample_level_runs(const TreeMapping& mapping, std::uint64_t K,
                             std::uint64_t samples, Rng& rng,
                             const EvalOptions& opts) {
  std::vector<LevelRunInstance> drawn;
  drawn.reserve(samples);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_level_run(mapping.tree(), K, rng)) {
      drawn.push_back(*inst);
    }
  }
  return evaluate_presampled(mapping, drawn, opts);
}

FamilyCost sample_paths(const TreeMapping& mapping, std::uint64_t K,
                        std::uint64_t samples, Rng& rng,
                        const EvalOptions& opts) {
  std::vector<PathInstance> drawn;
  drawn.reserve(samples);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_path(mapping.tree(), K, rng)) {
      drawn.push_back(*inst);
    }
  }
  return evaluate_presampled(mapping, drawn, opts);
}

FamilyCost sample_composites(const TreeMapping& mapping, std::uint64_t D,
                             std::uint64_t c, std::uint64_t samples, Rng& rng,
                             const EvalOptions& opts) {
  CompositeSpec spec;
  spec.total_size = D;
  spec.components = c;
  std::vector<CompositeInstance> drawn;
  drawn.reserve(samples);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_composite(mapping.tree(), spec, rng)) {
      drawn.push_back(std::move(*inst));
    }
  }
  return evaluate_presampled(mapping, drawn, opts);
}

}  // namespace pmtree
