#include "pmtree/analysis/cost.hpp"

#include <algorithm>

#include "pmtree/templates/enumerate.hpp"
#include "pmtree/templates/sampler.hpp"

namespace pmtree {

namespace {

/// Max color multiplicity of the node set, via a small scratch histogram.
std::uint64_t max_multiplicity(const TreeMapping& mapping,
                               std::span<const Node> nodes,
                               std::vector<std::uint32_t>& histogram) {
  histogram.assign(mapping.num_modules(), 0);
  std::uint32_t worst = 0;
  for (const Node& n : nodes) {
    const Color c = mapping.color_of(n);
    worst = std::max(worst, ++histogram[c]);
  }
  return worst;
}

/// Shared accumulation loop for the evaluate_/sample_ functions.
class CostAccumulator {
 public:
  explicit CostAccumulator(const TreeMapping& mapping) : mapping_(mapping) {}

  void observe(std::vector<Node> nodes) {
    const std::uint64_t mult = max_multiplicity(mapping_, nodes, scratch_);
    const std::uint64_t cost = mult == 0 ? 0 : mult - 1;
    result_.instances += 1;
    sum_ += cost;
    if (result_.witness.empty() || cost > result_.max_conflicts) {
      result_.witness = std::move(nodes);
    }
    result_.max_conflicts = std::max(result_.max_conflicts, cost);
  }

  [[nodiscard]] FamilyCost take() {
    result_.mean_conflicts =
        result_.instances == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(result_.instances);
    return std::move(result_);
  }

 private:
  const TreeMapping& mapping_;
  std::vector<std::uint32_t> scratch_;
  FamilyCost result_;
  std::uint64_t sum_ = 0;
};

}  // namespace

std::uint64_t conflicts(const TreeMapping& mapping, std::span<const Node> nodes) {
  std::vector<std::uint32_t> histogram;
  const std::uint64_t mult = max_multiplicity(mapping, nodes, histogram);
  return mult == 0 ? 0 : mult - 1;
}

std::uint64_t rounds(const TreeMapping& mapping, std::span<const Node> nodes) {
  std::vector<std::uint32_t> histogram;
  return max_multiplicity(mapping, nodes, histogram);
}

FamilyCost evaluate_subtrees(const TreeMapping& mapping, std::uint64_t K) {
  CostAccumulator acc(mapping);
  for_each_subtree(mapping.tree(), K, [&](const SubtreeInstance& s) {
    acc.observe(s.nodes());
    return true;
  });
  return acc.take();
}

FamilyCost evaluate_level_runs(const TreeMapping& mapping, std::uint64_t K) {
  CostAccumulator acc(mapping);
  for_each_level_run(mapping.tree(), K, [&](const LevelRunInstance& l) {
    acc.observe(l.nodes());
    return true;
  });
  return acc.take();
}

FamilyCost evaluate_paths(const TreeMapping& mapping, std::uint64_t K) {
  CostAccumulator acc(mapping);
  for_each_path(mapping.tree(), K, [&](const PathInstance& p) {
    acc.observe(p.nodes());
    return true;
  });
  return acc.take();
}

FamilyCost evaluate_tp(const TreeMapping& mapping, std::uint64_t K) {
  CostAccumulator acc(mapping);
  for (std::uint32_t j = 1; j <= mapping.tree().levels(); ++j) {
    for_each_tp(mapping.tree(), K, j, [&](const CompositeInstance& tp) {
      acc.observe(tp.nodes());
      return true;
    });
  }
  return acc.take();
}

FamilyCost sample_subtrees(const TreeMapping& mapping, std::uint64_t K,
                           std::uint64_t samples, Rng& rng) {
  CostAccumulator acc(mapping);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_subtree(mapping.tree(), K, rng)) {
      acc.observe(inst->nodes());
    }
  }
  return acc.take();
}

FamilyCost sample_level_runs(const TreeMapping& mapping, std::uint64_t K,
                             std::uint64_t samples, Rng& rng) {
  CostAccumulator acc(mapping);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_level_run(mapping.tree(), K, rng)) {
      acc.observe(inst->nodes());
    }
  }
  return acc.take();
}

FamilyCost sample_paths(const TreeMapping& mapping, std::uint64_t K,
                        std::uint64_t samples, Rng& rng) {
  CostAccumulator acc(mapping);
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_path(mapping.tree(), K, rng)) {
      acc.observe(inst->nodes());
    }
  }
  return acc.take();
}

FamilyCost sample_composites(const TreeMapping& mapping, std::uint64_t D,
                             std::uint64_t c, std::uint64_t samples, Rng& rng) {
  CostAccumulator acc(mapping);
  CompositeSpec spec;
  spec.total_size = D;
  spec.components = c;
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (auto inst = sample_composite(mapping.tree(), spec, rng)) {
      acc.observe(inst->nodes());
    }
  }
  return acc.take();
}

}  // namespace pmtree
