#include "pmtree/analysis/load_balance.hpp"

#include <algorithm>
#include <limits>

namespace pmtree {

LoadBalanceReport load_balance(const TreeMapping& mapping) {
  LoadBalanceReport report;
  report.per_module.assign(mapping.num_modules(), 0);
  const auto& tree = mapping.tree();
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      report.per_module[mapping.color_of(v(i, j))] += 1;
    }
  }
  report.max_load = *std::max_element(report.per_module.begin(),
                                      report.per_module.end());
  std::uint64_t min_nonzero = std::numeric_limits<std::uint64_t>::max();
  for (const auto load : report.per_module) {
    if (load > 0) {
      min_nonzero = std::min(min_nonzero, load);
      report.used_modules += 1;
    }
  }
  report.min_load = report.used_modules == 0 ? 0 : min_nonzero;
  return report;
}

}  // namespace pmtree
