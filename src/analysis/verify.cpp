#include "pmtree/analysis/verify.hpp"

#include <algorithm>

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

namespace {

std::string describe_witness(const std::vector<Node>& nodes,
                             const TreeMapping& mapping) {
  std::string out = "witness:";
  for (const Node& n : nodes) {
    out += ' ' + to_string(n) + "->" + std::to_string(mapping.color_of(n));
  }
  return out;
}

}  // namespace

Verdict verify_cf_elementary(const TreeMapping& mapping, std::uint64_t K,
                             std::uint32_t N) {
  Verdict verdict;
  verdict.bound = 0;
  const FamilyCost s = evaluate_subtrees(mapping, K);
  const FamilyCost p = evaluate_paths(mapping, N);
  verdict.measured = std::max(s.max_conflicts, p.max_conflicts);
  verdict.ok = verdict.measured == 0;
  if (!verdict.ok) {
    const FamilyCost& bad = s.max_conflicts > 0 ? s : p;
    verdict.detail = describe_witness(bad.witness, mapping);
  }
  return verdict;
}

Verdict verify_tp_rainbow(const TreeMapping& mapping, std::uint64_t K,
                          std::uint32_t N) {
  Verdict verdict;
  verdict.bound = 0;
  // Within a single block (tree no taller than N) Lemma 1 covers every
  // j <= N, the deepest anchors with truncated subtrees. In a multi-block
  // tree the root-path TP invariant only holds while the anchor's subtree
  // stays inside the root block: anchor level <= N - k (deeper subtrees
  // reach into child blocks, whose Gamma lists deliberately reuse
  // root-path colors below the paths' CF horizon).
  const std::uint32_t k = tree_levels(K);
  const std::uint32_t levels = mapping.tree().levels();
  const std::uint32_t j_max =
      levels <= N ? std::min(levels, N) : std::min(levels, N - k + 1);
  for (std::uint32_t j = 1; j <= j_max; ++j) {
    for_each_tp(mapping.tree(), K, j, [&](const CompositeInstance& tp) {
      const auto nodes = tp.nodes();
      const std::uint64_t cost = conflicts(mapping, nodes);
      if (cost > verdict.measured) {
        verdict.measured = cost;
        verdict.detail = describe_witness(nodes, mapping);
      }
      return true;
    });
  }
  verdict.ok = verdict.measured == 0;
  if (verdict.ok) verdict.detail.clear();
  return verdict;
}

Verdict verify_optimality_witness(const TreeMapping& mapping, std::uint32_t N,
                                  std::uint32_t k) {
  Verdict verdict;
  verdict.bound = bounds::cf_modules(N, k);
  const std::uint64_t K = tree_size(k);
  const auto& tree = mapping.tree();
  // The witness family anchors at level N - k: the root path there has
  // N - k nodes above the anchor and the size-K subtree below it reaches
  // level N - 1, so |TP| = (N - k) + K = N + K - k exactly (Theorem 2).
  const std::uint32_t anchor_level = N - k;
  if (anchor_level < 1 || anchor_level + k > tree.levels()) {
    verdict.detail = "tree too small to host TP(K, N-k)";
    return verdict;
  }
  const std::uint32_t j = anchor_level + 1;  // for_each_tp anchors at j - 1
  bool sizes_ok = true;
  bool rainbow = true;
  std::string detail;
  for_each_tp(tree, K, j, [&](const CompositeInstance& tp) {
    const auto nodes = tp.nodes();
    if (nodes.size() != verdict.bound) {
      sizes_ok = false;
      detail = "TP instance has " + std::to_string(nodes.size()) +
               " nodes, expected " + std::to_string(verdict.bound);
      return false;
    }
    if (conflicts(mapping, nodes) != 0) {
      rainbow = false;
      detail = describe_witness(nodes, mapping);
      return false;
    }
    return true;
  });
  verdict.ok = sizes_ok && rainbow;
  verdict.measured = verdict.ok ? verdict.bound : 0;
  verdict.detail = std::move(detail);
  return verdict;
}

Verdict verify_full_parallelism(const TreeMapping& mapping) {
  Verdict verdict;
  verdict.bound = bounds::kOptimalFullParallelismCost;
  const std::uint64_t M = mapping.num_modules();
  const FamilyCost s = evaluate_subtrees(mapping, M);
  const FamilyCost p = evaluate_paths(mapping, M);
  verdict.measured = std::max(s.max_conflicts, p.max_conflicts);
  verdict.ok = verdict.measured <= verdict.bound;
  if (!verdict.ok) {
    const FamilyCost& bad =
        s.max_conflicts >= p.max_conflicts ? s : p;
    verdict.detail = describe_witness(bad.witness, mapping);
  }
  return verdict;
}

Verdict verify_level_cost(const TreeMapping& mapping, std::uint64_t K,
                          std::uint64_t bound) {
  Verdict verdict;
  verdict.bound = bound;
  const FamilyCost l = evaluate_level_runs(mapping, K);
  verdict.measured = l.max_conflicts;
  verdict.ok = verdict.measured <= bound;
  if (!verdict.ok) verdict.detail = describe_witness(l.witness, mapping);
  return verdict;
}

}  // namespace pmtree
