#include "pmtree/analysis/bounds.hpp"

#include <cmath>

namespace pmtree::bounds {

double label_tree_m_scale(std::uint64_t M) {
  const double logm = static_cast<double>(ceil_log2(M));
  return std::sqrt(static_cast<double>(M) / logm);
}

double label_tree_d_scale(std::uint64_t D, std::uint64_t M) {
  const double logm = static_cast<double>(ceil_log2(M));
  return static_cast<double>(D) / std::sqrt(static_cast<double>(M) * logm);
}

}  // namespace pmtree::bounds
