#include "pmtree/templates/sampler.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "pmtree/templates/enumerate.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

std::optional<SubtreeInstance> sample_subtree(const CompleteBinaryTree& tree,
                                              std::uint64_t K, Rng& rng) {
  assert(is_tree_size(K));
  const std::uint32_t k = tree_levels(K);
  if (k > tree.levels()) return std::nullopt;
  // Roots live in levels 0 .. levels-k, i.e. BFS ids 0 .. 2^{levels-k+1}-2,
  // and every id in that range is a valid root: sample the id directly.
  const std::uint64_t count = pow2(tree.levels() - k + 1) - 1;
  return SubtreeInstance{node_at(rng.below(count)), K};
}

std::optional<LevelRunInstance> sample_level_run(const CompleteBinaryTree& tree,
                                                 std::uint64_t K, Rng& rng) {
  if (K == 0 || K > tree.num_leaves()) return std::nullopt;
  const std::uint64_t total = count_level_runs(tree, K);
  if (total == 0) return std::nullopt;
  std::uint64_t pick = rng.below(total);
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    if (pow2(j) < K) continue;
    const std::uint64_t here = pow2(j) - K + 1;
    if (pick < here) return LevelRunInstance{v(pick, j), K};
    pick -= here;
  }
  return std::nullopt;  // unreachable
}

std::optional<PathInstance> sample_path(const CompleteBinaryTree& tree,
                                        std::uint64_t K, Rng& rng) {
  if (K == 0 || K > tree.levels()) return std::nullopt;
  // Deepest nodes are all nodes at level >= K-1: BFS ids 2^{K-1}-1 .. size-1.
  const std::uint64_t first_id = pow2(static_cast<std::uint32_t>(K) - 1) - 1;
  const std::uint64_t id = rng.between(first_id, tree.size() - 1);
  return PathInstance{node_at(id), K};
}

namespace {

/// Largest valid subtree size (2^t - 1) that is <= cap, or 0 if cap == 0.
std::uint64_t largest_tree_size_below(std::uint64_t cap) {
  if (cap == 0) return 0;
  return pow2(floor_log2(cap + 1)) - 1;
}

}  // namespace

std::optional<CompositeInstance> sample_composite(const CompleteBinaryTree& tree,
                                                  const CompositeSpec& spec,
                                                  Rng& rng) {
  const std::uint64_t D = spec.total_size;
  const std::uint64_t c = spec.components;
  if (c == 0 || D < c) return std::nullopt;
  if (!spec.allow_subtrees && !spec.allow_level_runs && !spec.allow_paths) {
    return std::nullopt;
  }
  if (D > tree.size() / 2) return std::nullopt;  // keep rejection viable

  for (int attempt = 0; attempt < 64; ++attempt) {
    // Random composition of D into c parts, each >= 1.
    std::vector<std::uint64_t> sizes(c, 1);
    for (std::uint64_t unit = 0; unit < D - c; ++unit) {
      sizes[rng.below(c)] += 1;
    }

    // Components are sampled one at a time with per-component rejection
    // against the nodes already claimed — long paths, in particular, tend
    // to collide near the root, and resampling only the offender converges
    // where whole-instance rejection starves.
    std::set<std::uint64_t> used;
    CompositeInstance composite;
    std::uint64_t carry = 0;  // size shaved off subtree/path components
    bool ok = true;

    auto try_add = [&](const ElementaryInstance& inst) {
      const auto nodes = inst.nodes();
      for (const Node& n : nodes) {
        if (used.count(bfs_id(n)) != 0) return false;
      }
      for (const Node& n : nodes) used.insert(bfs_id(n));
      composite.add(inst);
      return true;
    };

    for (std::uint64_t part = 0; part < c && ok; ++part) {
      std::uint64_t want = sizes[part] + carry;
      carry = 0;
      // The final component absorbs any carry exactly, so prefer an
      // arbitrary-size kind (level run, then path) for it.
      std::vector<TemplateKind> kinds;
      if (spec.allow_subtrees) kinds.push_back(TemplateKind::kSubtree);
      if (spec.allow_level_runs) kinds.push_back(TemplateKind::kLevelRun);
      if (spec.allow_paths) kinds.push_back(TemplateKind::kPath);
      TemplateKind kind = kinds[rng.below(kinds.size())];
      if (part + 1 == c && spec.allow_level_runs) kind = TemplateKind::kLevelRun;

      bool placed = false;
      for (int retry = 0; retry < 64 && !placed; ++retry) {
        switch (kind) {
          case TemplateKind::kSubtree: {
            std::uint64_t s = largest_tree_size_below(want);
            s = std::min<std::uint64_t>(s, tree.size());
            if (s == 0) break;
            if (auto inst = sample_subtree(tree, s, rng);
                inst && try_add(*inst)) {
              carry = want - s;
              placed = true;
            }
            break;
          }
          case TemplateKind::kPath: {
            const std::uint64_t s = std::min<std::uint64_t>(want, tree.levels());
            if (auto inst = sample_path(tree, s, rng); inst && try_add(*inst)) {
              carry = want - s;
              placed = true;
            }
            break;
          }
          case TemplateKind::kLevelRun: {
            const std::uint64_t s = std::min(want, tree.num_leaves());
            if (auto inst = sample_level_run(tree, s, rng);
                inst && try_add(*inst)) {
              carry = want - s;
              placed = true;
            }
            break;
          }
        }
      }
      ok = placed;
    }
    if (!ok || carry != 0) continue;
    if (composite.size() != D || composite.component_count() != c) continue;
    return composite;
  }
  return std::nullopt;
}

}  // namespace pmtree
