#include "pmtree/templates/range_cover.hpp"

#include <algorithm>
#include <cassert>

#include "pmtree/util/bits.hpp"

namespace pmtree {

std::vector<SubtreeInstance> subtree_cover(const CompleteBinaryTree& tree,
                                           std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi && hi < tree.num_leaves());
  std::vector<SubtreeInstance> cover;
  const std::uint32_t leaf_level = tree.levels() - 1;

  auto emit = [&](std::uint64_t index, std::uint32_t level) {
    const std::uint32_t down = tree.levels() - level;
    cover.push_back(SubtreeInstance{v(index, level), tree_size(down)});
  };

  std::uint64_t a = lo;
  std::uint64_t b = hi;
  std::uint32_t level = leaf_level;
  while (true) {
    if (a == b) {
      emit(a, level);
      break;
    }
    if ((a & 1) != 0) {  // right child: its parent spans leaves below lo
      emit(a, level);
      ++a;
    }
    if ((b & 1) == 0) {  // left child: its parent spans leaves above hi
      emit(b, level);
      --b;
    }
    if (a > b) break;
    a >>= 1;
    b >>= 1;
    --level;
  }

  // Canonical order: left-to-right by covered leaf interval.
  std::sort(cover.begin(), cover.end(), [&](const SubtreeInstance& x,
                                            const SubtreeInstance& y) {
    const std::uint64_t xl = x.root.index << (leaf_level - x.root.level);
    const std::uint64_t yl = y.root.index << (leaf_level - y.root.level);
    return xl < yl;
  });
  return cover;
}

CompositeInstance range_query_template(const CompleteBinaryTree& tree,
                                       std::uint64_t lo, std::uint64_t hi) {
  const auto cover = subtree_cover(tree, lo, hi);
  CompositeInstance out;
  for (const auto& s : cover) out.add(s);

  const std::uint32_t leaf_level = tree.levels() - 1;
  const Node leaf_lo = v(lo, leaf_level);
  const Node leaf_hi = v(hi, leaf_level);

  auto covering_root = [&](Node leaf) {
    for (const auto& s : cover) {
      if (in_subtree(leaf, s.root, tree_levels(s.size))) return s.root;
    }
    assert(false && "cover must contain every leaf of the range");
    return tree.root();
  };

  const Node r_lo = covering_root(leaf_lo);
  // Path 1: all strict ancestors of the subtree containing the left
  // boundary — the left search path, ending at the root.
  if (r_lo.level >= 1) {
    out.add(PathInstance{parent(r_lo), r_lo.level});
  }

  const Node r_hi = covering_root(leaf_hi);
  if (r_hi != r_lo && r_hi.level >= 1) {
    // Path 2: strict ancestors of the right-boundary subtree, stopping
    // below the lowest common ancestor of the two boundary leaves (the
    // segment above the LCA already belongs to path 1).
    std::uint32_t lca_level = leaf_level;
    while ((lo >> (leaf_level - lca_level)) != (hi >> (leaf_level - lca_level))) {
      --lca_level;
    }
    if (r_hi.level > lca_level + 1) {
      out.add(PathInstance{parent(r_hi), r_hi.level - lca_level - 1});
    }
  }
  return out;
}

}  // namespace pmtree
