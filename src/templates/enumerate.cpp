#include "pmtree/templates/enumerate.hpp"

#include <cassert>

#include "pmtree/util/bits.hpp"

namespace pmtree {

void for_each_subtree(const CompleteBinaryTree& tree, std::uint64_t K,
                      const std::function<bool(const SubtreeInstance&)>& visit) {
  assert(is_tree_size(K));
  const std::uint32_t k = tree_levels(K);
  if (k > tree.levels()) return;
  for (std::uint32_t j = 0; j + k <= tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      if (!visit(SubtreeInstance{v(i, j), K})) return;
    }
  }
}

void for_each_level_run(const CompleteBinaryTree& tree, std::uint64_t K,
                        const std::function<bool(const LevelRunInstance&)>& visit) {
  assert(K >= 1);
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    if (pow2(j) < K) continue;
    for (std::uint64_t i = 0; i + K <= pow2(j); ++i) {
      if (!visit(LevelRunInstance{v(i, j), K})) return;
    }
  }
}

void for_each_path(const CompleteBinaryTree& tree, std::uint64_t K,
                   const std::function<bool(const PathInstance&)>& visit) {
  assert(K >= 1);
  if (K > tree.levels()) return;  // no ascending path has that many nodes
  for (std::uint32_t j = static_cast<std::uint32_t>(K) - 1; j < tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      if (!visit(PathInstance{v(i, j), K})) return;
    }
  }
}

void for_each_tp(const CompleteBinaryTree& tree, std::uint64_t K, std::uint32_t j,
                 const std::function<bool(const CompositeInstance&)>& visit) {
  assert(is_tree_size(K));
  assert(j >= 1 && j <= tree.levels());
  const std::uint32_t k = tree_levels(K);
  for (std::uint64_t i = 0; i < pow2(j - 1); ++i) {
    const Node anchor = v(i, j - 1);
    // Subtree part, truncated at the tree boundary (the paper: "if
    // j > N - k, the subtree rooted at v(i, j) has size smaller than K").
    const std::uint32_t sub_levels =
        std::min(k, tree.levels() - anchor.level);
    CompositeInstance tp;
    tp.add(SubtreeInstance{anchor, tree_size(sub_levels)});
    // Path part: from the anchor's parent up to the root (j-1 nodes),
    // disjoint from the subtree part.
    if (anchor.level >= 1) {
      tp.add(PathInstance{parent(anchor), anchor.level});
    }
    if (!visit(tp)) return;
  }
}

// The unchecked accessors delegate to the validated forms so both share
// one derivation; the asserts preserve the historical debug-build
// contract, and the validated forms make the failure observable under
// NDEBUG too.

std::optional<SubtreeInstance> try_subtree_at(const CompleteBinaryTree& tree,
                                              std::uint64_t K,
                                              std::uint64_t idx) {
  if (!is_tree_size(K) || idx >= count_subtrees(tree, K)) return std::nullopt;
  // for_each_subtree scans roots level by level, left to right = BFS order.
  return SubtreeInstance{node_at(idx), K};
}

SubtreeInstance subtree_at(const CompleteBinaryTree& tree, std::uint64_t K,
                           std::uint64_t idx) {
  const std::optional<SubtreeInstance> inst = try_subtree_at(tree, K, idx);
  assert(inst && "subtree_at: malformed K or idx out of range");
  return inst ? *inst : SubtreeInstance{};
}

std::optional<LevelRunInstance> try_level_run_at(const CompleteBinaryTree& tree,
                                                 std::uint64_t K,
                                                 std::uint64_t idx) {
  if (K < 1) return std::nullopt;
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    if (pow2(j) < K) continue;
    const std::uint64_t runs = pow2(j) - K + 1;
    if (idx < runs) return LevelRunInstance{v(idx, j), K};
    idx -= runs;
  }
  return std::nullopt;
}

LevelRunInstance level_run_at(const CompleteBinaryTree& tree, std::uint64_t K,
                              std::uint64_t idx) {
  const std::optional<LevelRunInstance> inst = try_level_run_at(tree, K, idx);
  assert(inst && "level_run_at: malformed K or idx out of range");
  return inst ? *inst : LevelRunInstance{};
}

std::optional<PathInstance> try_path_at(const CompleteBinaryTree& tree,
                                        std::uint64_t K, std::uint64_t idx) {
  if (K < 1 || K > tree.levels() || idx >= count_paths(tree, K)) {
    return std::nullopt;
  }
  // for_each_path scans deepest nodes in BFS order starting at level K-1,
  // whose first BFS id is 2^{K-1} - 1.
  return PathInstance{
      node_at(idx + pow2(static_cast<std::uint32_t>(K) - 1) - 1), K};
}

PathInstance path_at(const CompleteBinaryTree& tree, std::uint64_t K,
                     std::uint64_t idx) {
  const std::optional<PathInstance> inst = try_path_at(tree, K, idx);
  assert(inst && "path_at: malformed K or idx out of range");
  return inst ? *inst : PathInstance{};
}

std::optional<CompositeInstance> try_tp_at(const CompleteBinaryTree& tree,
                                           std::uint64_t K,
                                           std::uint64_t idx) {
  if (!is_tree_size(K) || idx >= count_tp(tree)) return std::nullopt;
  // Scanning j = 1..levels with anchors v(i, j-1), i ascending, visits the
  // anchors in BFS order.
  const Node anchor = node_at(idx);
  const std::uint32_t k = tree_levels(K);
  const std::uint32_t sub_levels = std::min(k, tree.levels() - anchor.level);
  CompositeInstance tp;
  tp.add(SubtreeInstance{anchor, tree_size(sub_levels)});
  if (anchor.level >= 1) {
    tp.add(PathInstance{parent(anchor), anchor.level});
  }
  return tp;
}

CompositeInstance tp_at(const CompleteBinaryTree& tree, std::uint64_t K,
                        std::uint64_t idx) {
  std::optional<CompositeInstance> inst = try_tp_at(tree, K, idx);
  assert(inst && "tp_at: malformed K or idx out of range");
  return inst ? *std::move(inst) : CompositeInstance{};
}

std::uint64_t count_tp(const CompleteBinaryTree& tree) {
  // One instance per anchor v(i, j-1), j = 1..levels.
  return tree.size();
}

std::uint64_t count_subtrees(const CompleteBinaryTree& tree, std::uint64_t K) {
  const std::uint32_t k = tree_levels(K);
  if (k > tree.levels()) return 0;
  // sum_{j=0}^{levels-k} 2^j = 2^{levels-k+1} - 1
  return pow2(tree.levels() - k + 1) - 1;
}

std::uint64_t count_level_runs(const CompleteBinaryTree& tree, std::uint64_t K) {
  std::uint64_t total = 0;
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    if (pow2(j) >= K) total += pow2(j) - K + 1;
  }
  return total;
}

std::uint64_t count_paths(const CompleteBinaryTree& tree, std::uint64_t K) {
  // One instance per deepest node at level >= K-1:
  // sum_{j=K-1}^{levels-1} 2^j = 2^levels - 2^{K-1}
  if (K > tree.levels()) return 0;
  return pow2(tree.levels()) - pow2(static_cast<std::uint32_t>(K) - 1);
}

}  // namespace pmtree
