#include "pmtree/templates/instance.hpp"

#include <algorithm>

namespace pmtree {

void SubtreeInstance::append_nodes(std::vector<Node>& out) const {
  out.reserve(out.size() + size);
  const std::uint32_t depth = levels();
  for (std::uint32_t d = 0; d < depth; ++d) {
    const std::uint64_t first = root.index << d;
    for (std::uint64_t off = 0; off < pow2(d); ++off) {
      out.push_back(Node{root.level + d, first + off});
    }
  }
}

std::vector<Node> SubtreeInstance::nodes() const {
  std::vector<Node> out;
  append_nodes(out);
  return out;
}

bool SubtreeInstance::try_append_nodes(const CompleteBinaryTree& tree,
                                       std::vector<Node>& out) const {
  if (!is_tree_size(size) || !fits(tree)) return false;
  append_nodes(out);
  return true;
}

void LevelRunInstance::append_nodes(std::vector<Node>& out) const {
  out.reserve(out.size() + size);
  for (std::uint64_t t = 0; t < size; ++t) {
    out.push_back(Node{first.level, first.index + t});
  }
}

std::vector<Node> LevelRunInstance::nodes() const {
  std::vector<Node> out;
  append_nodes(out);
  return out;
}

bool LevelRunInstance::try_append_nodes(const CompleteBinaryTree& tree,
                                        std::vector<Node>& out) const {
  if (size < 1 || !fits(tree)) return false;
  append_nodes(out);
  return true;
}

void PathInstance::append_nodes(std::vector<Node>& out) const {
  out.reserve(out.size() + size);
  Node cur = start;
  for (std::uint64_t t = 0; t < size; ++t) {
    out.push_back(cur);
    if (t + 1 < size) cur = parent(cur);
  }
}

std::vector<Node> PathInstance::nodes() const {
  std::vector<Node> out;
  append_nodes(out);
  return out;
}

bool PathInstance::try_append_nodes(const CompleteBinaryTree& tree,
                                    std::vector<Node>& out) const {
  if (size < 1 || !fits(tree)) return false;
  append_nodes(out);
  return true;
}

std::uint64_t CompositeInstance::size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p.size();
  return total;
}

bool CompositeInstance::fits(const CompleteBinaryTree& tree) const noexcept {
  return std::all_of(parts_.begin(), parts_.end(),
                     [&](const auto& p) { return p.fits(tree); });
}

void CompositeInstance::append_nodes(std::vector<Node>& out) const {
  out.reserve(out.size() + size());
  for (const auto& p : parts_) p.append_nodes(out);
}

std::vector<Node> CompositeInstance::nodes() const {
  std::vector<Node> out;
  append_nodes(out);
  return out;
}

bool CompositeInstance::try_append_nodes(const CompleteBinaryTree& tree,
                                         std::vector<Node>& out) const {
  const std::size_t mark = out.size();
  for (const auto& p : parts_) {
    if (!p.try_append_nodes(tree, out)) {
      out.resize(mark);
      return false;
    }
  }
  return true;
}

bool CompositeInstance::is_disjoint() const {
  auto all = nodes();
  std::sort(all.begin(), all.end());
  return std::adjacent_find(all.begin(), all.end()) == all.end();
}

}  // namespace pmtree
