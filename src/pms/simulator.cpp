#include "pmtree/pms/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "pmtree/util/bits.hpp"

namespace pmtree {

namespace {

struct WorkerState {
  std::uint64_t accesses = 0;
  std::uint64_t requests = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t ideal_rounds = 0;
  std::uint64_t max_rounds = 0;
  std::vector<std::uint64_t> traffic;
};

}  // namespace

SimulationReport ParallelAccessSimulator::run(const TreeMapping& mapping,
                                              const Workload& workload) const {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned nthreads =
      std::max(1u, std::min<unsigned>(threads_ == 0 ? hw : threads_,
                                      static_cast<unsigned>(
                                          std::max<std::size_t>(workload.size(), 1))));
  const std::uint32_t modules = mapping.num_modules();

  std::vector<WorkerState> states(nthreads);
  std::atomic<std::size_t> cursor{0};

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
      pool.emplace_back([&, t] {
        WorkerState& st = states[t];
        st.traffic.assign(modules, 0);
        std::vector<std::uint32_t> occupancy(modules, 0);
        std::vector<Color> colors;  // per-worker batch buffer
        while (true) {
          const std::size_t idx = cursor.fetch_add(1, std::memory_order_relaxed);
          if (idx >= workload.size()) break;
          const auto& access = workload[idx];
          colors.resize(access.size());
          mapping.color_of_batch(access, colors);
          std::uint32_t busiest = 0;
          for (const Color c : colors) {
            st.traffic[c] += 1;
            busiest = std::max(busiest, ++occupancy[c]);
          }
          // Touched-entry reset (the cost.cpp scratch-kernel trick): a
          // small access on a large module count must not pay O(modules)
          // to clear the occupancy array.
          for (const Color c : colors) occupancy[c] = 0;
          st.accesses += 1;
          st.requests += access.size();
          st.total_rounds += busiest;
          st.max_rounds = std::max<std::uint64_t>(st.max_rounds, busiest);
          if (!access.empty()) st.ideal_rounds += ceil_div(access.size(), modules);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  SimulationReport report;
  report.traffic.assign(modules, 0);
  for (const WorkerState& st : states) {
    report.accesses += st.accesses;
    report.requests += st.requests;
    report.total_rounds += st.total_rounds;
    report.ideal_rounds += st.ideal_rounds;
    report.max_rounds = std::max(report.max_rounds, st.max_rounds);
    for (std::uint32_t c = 0; c < modules; ++c) {
      report.traffic[c] += st.traffic[c];
    }
  }
  report.mean_rounds = report.accesses == 0
                           ? 0.0
                           : static_cast<double>(report.total_rounds) /
                                 static_cast<double>(report.accesses);
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return report;
}

}  // namespace pmtree
