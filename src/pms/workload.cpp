#include "pmtree/pms/workload.hpp"

#include <algorithm>

#include "pmtree/templates/range_cover.hpp"
#include "pmtree/templates/sampler.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

Workload Workload::subtrees(const CompleteBinaryTree& tree, std::uint64_t K,
                            std::size_t count, std::uint64_t seed) {
  // No size-K subtree exists unless K = 2^t - 1; sample_subtree asserts
  // that precondition, so reject invalid sizes here instead of passing
  // them through (oversized-but-valid K is handled by the sampler).
  if (!is_tree_size(K)) return Workload{};
  Rng rng(seed);
  std::vector<Access> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (auto inst = sample_subtree(tree, K, rng)) out.push_back(inst->nodes());
  }
  return Workload(std::move(out));
}

Workload Workload::paths(const CompleteBinaryTree& tree, std::uint64_t K,
                         std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Access> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (auto inst = sample_path(tree, K, rng)) out.push_back(inst->nodes());
  }
  return Workload(std::move(out));
}

Workload Workload::level_runs(const CompleteBinaryTree& tree, std::uint64_t K,
                              std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Access> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (auto inst = sample_level_run(tree, K, rng)) out.push_back(inst->nodes());
  }
  return Workload(std::move(out));
}

Workload Workload::mixed(const CompleteBinaryTree& tree, std::uint64_t K,
                         std::size_t count, std::uint64_t seed) {
  if (K == 0) return Workload{};  // every component kind would be empty
  Rng rng(seed);
  std::vector<Access> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.below(3)) {
      case 0: {
        // Round the subtree size down to a valid 2^t - 1.
        const std::uint64_t s = pow2(floor_log2(K + 1)) - 1;
        if (auto inst = sample_subtree(tree, s, rng)) out.push_back(inst->nodes());
        break;
      }
      case 1: {
        const std::uint64_t s = std::min<std::uint64_t>(K, tree.levels());
        if (auto inst = sample_path(tree, s, rng)) out.push_back(inst->nodes());
        break;
      }
      default: {
        if (auto inst = sample_level_run(tree, K, rng)) out.push_back(inst->nodes());
        break;
      }
    }
  }
  return Workload(std::move(out));
}

Workload Workload::composites(const CompleteBinaryTree& tree, std::uint64_t D,
                              std::uint64_t c, std::size_t count,
                              std::uint64_t seed) {
  Rng rng(seed);
  CompositeSpec spec;
  spec.total_size = D;
  spec.components = c;
  std::vector<Access> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (auto inst = sample_composite(tree, spec, rng)) {
      out.push_back(inst->nodes());
    }
  }
  return Workload(std::move(out));
}

Workload Workload::range_queries(const CompleteBinaryTree& tree,
                                 std::uint64_t max_width, std::size_t count,
                                 std::uint64_t seed) {
  if (max_width == 0) return Workload{};  // no leaf interval to cover
  Rng rng(seed);
  const std::uint64_t leaves = tree.num_leaves();
  std::vector<Access> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t width = rng.between(1, std::min(max_width, leaves));
    const std::uint64_t lo = rng.below(leaves - width + 1);
    out.push_back(range_query_template(tree, lo, lo + width - 1).nodes());
  }
  return Workload(std::move(out));
}

}  // namespace pmtree
