#include "pmtree/pms/memory_system.hpp"

#include <algorithm>

#include "pmtree/util/bits.hpp"

namespace pmtree {

MemorySystem::MemorySystem(const TreeMapping& mapping)
    : mapping_(mapping),
      traffic_(mapping.num_modules(), 0),
      scratch_(mapping.num_modules(), 0) {}

AccessResult MemorySystem::access(std::span<const Node> nodes) {
  std::fill(scratch_.begin(), scratch_.end(), 0u);
  colors_.resize(nodes.size());
  mapping_.color_of_batch(nodes, colors_);
  std::uint32_t busiest = 0;
  for (const Color c : colors_) {
    traffic_[c] += 1;
    busiest = std::max(busiest, ++scratch_[c]);
  }
  AccessResult result;
  result.requests = nodes.size();
  result.rounds = busiest;
  result.conflicts = busiest == 0 ? 0 : busiest - 1;
  round_stats_.add(result.rounds);
  if (!nodes.empty()) {
    ideal_rounds_ += ceil_div(nodes.size(), modules());
  }
  return result;
}

void MemorySystem::reset() {
  std::fill(traffic_.begin(), traffic_.end(), 0u);
  round_stats_ = Accumulator{};
  ideal_rounds_ = 0;
}

}  // namespace pmtree
