#include "pmtree/pms/scheduler.hpp"

#include <algorithm>

#include "pmtree/util/bits.hpp"

namespace pmtree {

BatchResult BatchScheduler::schedule(
    std::span<const Workload::Access> batch) const {
  BatchResult result;
  result.queue.assign(mapping_.num_modules(), 0);
  std::vector<Color> colors;  // reused batch buffer
  for (const auto& access : batch) {
    result.accesses += 1;
    result.requests += access.size();
    colors.resize(access.size());
    mapping_.color_of_batch(access, colors);
    for (const Color c : colors) {
      result.queue[c] += 1;
    }
  }
  result.makespan = result.queue.empty()
                        ? 0
                        : *std::max_element(result.queue.begin(),
                                            result.queue.end());
  result.ideal =
      result.requests == 0 ? 0 : ceil_div(result.requests, mapping_.num_modules());
  return result;
}

std::uint64_t BatchScheduler::total_makespan(const Workload& workload,
                                             std::size_t batch_size) const {
  if (batch_size == 0) batch_size = 1;
  std::uint64_t total = 0;
  const auto& accesses = workload.accesses();
  for (std::size_t start = 0; start < accesses.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, accesses.size() - start);
    total += schedule(std::span<const Workload::Access>(
                          accesses.data() + start, count))
                 .makespan;
  }
  return total;
}

}  // namespace pmtree
