#include "pmtree/pms/trace.hpp"

#include <algorithm>
#include <ostream>

#include "pmtree/pms/memory_system.hpp"

namespace pmtree {

std::vector<TraceEntry> Trace::slower_than(std::uint64_t threshold) const {
  std::vector<TraceEntry> out;
  std::copy_if(entries_.begin(), entries_.end(), std::back_inserter(out),
               [&](const TraceEntry& e) { return e.rounds > threshold; });
  return out;
}

void Trace::print_csv(std::ostream& os) const {
  os << "access_id,requests,rounds,conflicts\n";
  for (const TraceEntry& e : entries_) {
    os << e.access_id << ',' << e.requests << ',' << e.rounds << ','
       << e.conflicts << '\n';
  }
}

Trace run_traced(const TreeMapping& mapping, const Workload& workload) {
  MemorySystem pms(mapping);
  std::vector<TraceEntry> entries;
  entries.reserve(workload.size());
  for (std::size_t id = 0; id < workload.size(); ++id) {
    const AccessResult result = pms.access(workload[id]);
    entries.push_back(TraceEntry{id, result.requests, result.rounds,
                                 result.conflicts});
  }
  return Trace(std::move(entries), pms.traffic());
}

LatencyModel::Estimate LatencyModel::estimate(const Trace& trace) const {
  Estimate est;
  for (const TraceEntry& e : trace.entries()) {
    est.total_ns += access_ns(e.rounds);
    est.conflict_free_ns += access_ns(e.requests == 0 ? 0 : 1);
  }
  return est;
}

}  // namespace pmtree
