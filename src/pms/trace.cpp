#include "pmtree/pms/trace.hpp"

#include <algorithm>
#include <ostream>

#include "pmtree/pms/memory_system.hpp"

namespace pmtree {

std::vector<TraceEntry> Trace::slower_than(std::uint64_t threshold) const {
  std::vector<TraceEntry> out;
  std::copy_if(entries_.begin(), entries_.end(), std::back_inserter(out),
               [&](const TraceEntry& e) { return e.rounds > threshold; });
  return out;
}

void Trace::print_csv(std::ostream& os) const {
  os << "access_id,requests,rounds,conflicts\n";
  for (const TraceEntry& e : entries_) {
    os << e.access_id << ',' << e.requests << ',' << e.rounds << ','
       << e.conflicts << '\n';
  }
}

Json Trace::to_json() const {
  Json root = Json::object();
  root.set("accesses", Json(static_cast<std::uint64_t>(entries_.size())));

  Json rounds = Json::object();
  rounds.set("total", Json(rounds_.sum()));
  rounds.set("mean", Json(rounds_.mean()));
  rounds.set("max", Json(rounds_.max()));
  root.set("rounds", std::move(rounds));

  Json entries = Json::array();
  for (const TraceEntry& e : entries_) {
    Json entry = Json::object();
    entry.set("access_id", Json(e.access_id));
    entry.set("requests", Json(e.requests));
    entry.set("rounds", Json(e.rounds));
    entry.set("conflicts", Json(e.conflicts));
    entries.push_back(std::move(entry));
  }
  root.set("entries", std::move(entries));

  Json traffic = Json::array();
  for (const std::uint64_t m : traffic_) traffic.push_back(Json(m));
  root.set("traffic", std::move(traffic));
  return root;
}

Trace run_traced(const TreeMapping& mapping, const Workload& workload) {
  MemorySystem pms(mapping);
  std::vector<TraceEntry> entries;
  entries.reserve(workload.size());
  for (std::size_t id = 0; id < workload.size(); ++id) {
    const AccessResult result = pms.access(workload[id]);
    entries.push_back(TraceEntry{id, result.requests, result.rounds,
                                 result.conflicts});
  }
  return Trace(std::move(entries), pms.traffic());
}

LatencyModel::Estimate LatencyModel::estimate(const Trace& trace) const {
  Estimate est;
  for (const TraceEntry& e : trace.entries()) {
    est.total_ns += access_ns(e.rounds);
    est.conflict_free_ns += access_ns(e.requests == 0 ? 0 : 1);
  }
  return est;
}

}  // namespace pmtree
