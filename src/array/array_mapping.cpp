#include "pmtree/array/array_mapping.hpp"

#include <algorithm>
#include <vector>

namespace pmtree {

std::uint64_t array_conflicts(const ArrayMapping& mapping,
                              std::span<const Cell> cells) {
  std::vector<std::uint32_t> histogram(mapping.num_modules(), 0);
  std::uint32_t worst = 0;
  for (const Cell& c : cells) {
    worst = std::max(worst, ++histogram[mapping.color_of(c)]);
  }
  return worst == 0 ? 0 : worst - 1;
}

std::uint64_t evaluate_runs(const ArrayMapping& mapping, RunDirection direction,
                            std::uint64_t K) {
  const Array2D& array = mapping.array();
  std::uint64_t worst = 0;
  for (std::uint64_t r = 0; r < array.rows(); ++r) {
    for (std::uint64_t c = 0; c < array.cols(); ++c) {
      const RunInstance run{Cell{r, c}, direction, K};
      if (!run.fits(array)) continue;
      worst = std::max(worst, array_conflicts(mapping, run.cells()));
    }
  }
  return worst;
}

std::uint64_t evaluate_subarrays(const ArrayMapping& mapping, std::uint64_t p,
                                 std::uint64_t q) {
  const Array2D& array = mapping.array();
  std::uint64_t worst = 0;
  for (std::uint64_t r = 0; r + p <= array.rows(); ++r) {
    for (std::uint64_t c = 0; c + q <= array.cols(); ++c) {
      const SubarrayInstance block{Cell{r, c}, p, q};
      worst = std::max(worst, array_conflicts(mapping, block.cells()));
    }
  }
  return worst;
}

}  // namespace pmtree
