#include "pmtree/array/array2d.hpp"

namespace pmtree {

bool RunInstance::fits(const Array2D& array) const noexcept {
  if (!array.contains(start) || size == 0) return false;
  const std::uint64_t last = size - 1;
  switch (direction) {
    case RunDirection::kRow:
      return start.col + last < array.cols();
    case RunDirection::kColumn:
      return start.row + last < array.rows();
    case RunDirection::kDiagonal:
      return start.row + last < array.rows() && start.col + last < array.cols();
    case RunDirection::kAntiDiagonal:
      return start.row + last < array.rows() && start.col >= last;
  }
  return false;
}

std::vector<Cell> RunInstance::cells() const {
  std::vector<Cell> out;
  out.reserve(size);
  Cell cur = start;
  for (std::uint64_t t = 0; t < size; ++t) {
    out.push_back(cur);
    switch (direction) {
      case RunDirection::kRow: cur.col += 1; break;
      case RunDirection::kColumn: cur.row += 1; break;
      case RunDirection::kDiagonal: cur.row += 1; cur.col += 1; break;
      case RunDirection::kAntiDiagonal: cur.row += 1; cur.col -= 1; break;
    }
  }
  return out;
}

std::vector<Cell> SubarrayInstance::cells() const {
  std::vector<Cell> out;
  out.reserve(size());
  for (std::uint64_t dr = 0; dr < height; ++dr) {
    for (std::uint64_t dc = 0; dc < width; ++dc) {
      out.push_back(Cell{top_left.row + dr, top_left.col + dc});
    }
  }
  return out;
}

}  // namespace pmtree
