#include "pmtree/apps/dictionary.hpp"

#include <algorithm>
#include <cassert>

#include "pmtree/util/bits.hpp"

namespace pmtree {

std::uint64_t Dictionary::inorder_rank(Node n, std::uint32_t levels) noexcept {
  assert(n.level < levels);
  // In the in-order traversal of a complete tree, node (i, j) sits exactly
  // in the middle of its subtree's key interval: rank = (2i+1)*2^{L-1-j}-1.
  return (2 * n.index + 1) * pow2(levels - 1 - n.level) - 1;
}

Dictionary::Dictionary(const std::vector<Key>& sorted_keys)
    : tree_(tree_levels(sorted_keys.size())), keys_(sorted_keys.size()) {
  assert(is_tree_size(sorted_keys.size()));
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  for (std::uint32_t j = 0; j < tree_.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree_.level_width(j); ++i) {
      const Node n = v(i, j);
      keys_[bfs_id(n)] = sorted_keys[inorder_rank(n, tree_.levels())];
    }
  }
}

Dictionary::SearchResult Dictionary::search(Key key) const {
  SearchResult result;
  result.accessed.reserve(tree_.levels());
  Node cur = tree_.root();
  while (true) {
    result.accessed.push_back(cur);
    const Key here = key_at(cur);
    if (here == key && !result.found) {
      result.found = true;
      result.node = cur;
    }
    if (tree_.is_leaf(cur)) break;
    // The speculative parallel search fetches the whole path; descend by
    // comparison (ties go left so the walk is deterministic).
    cur = key < here ? left_child(cur) : right_child(cur);
  }
  return result;
}

std::optional<Dictionary::Key> Dictionary::successor(Key key) const {
  std::optional<Key> best;
  Node cur = tree_.root();
  while (true) {
    const Key here = key_at(cur);
    if (here >= key && (!best || here < *best)) best = here;
    if (tree_.is_leaf(cur)) break;
    cur = key <= here ? left_child(cur) : right_child(cur);
  }
  return best;
}

}  // namespace pmtree
