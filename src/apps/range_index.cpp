#include "pmtree/apps/range_index.hpp"

#include <algorithm>
#include <cassert>

#include "pmtree/templates/range_cover.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

namespace {

std::uint32_t levels_for(std::uint64_t keys) {
  // Leaves must number a power of two >= keys; one key still needs a
  // 1-level tree.
  const std::uint32_t leaf_bits = keys <= 1 ? 0 : ceil_log2(keys);
  return leaf_bits + 1;
}

}  // namespace

RangeIndex::RangeIndex(std::vector<Key> sorted_keys)
    : tree_(levels_for(sorted_keys.size())),
      values_(tree_.size(), kSentinel),
      key_count_(sorted_keys.size()) {
  assert(!sorted_keys.empty());
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));

  const std::uint64_t leaf_first = pow2(tree_.levels() - 1) - 1;
  for (std::uint64_t i = 0; i < sorted_keys.size(); ++i) {
    values_[leaf_first + i] = sorted_keys[i];
  }
  // Internal nodes bottom-up: max key of the left subtree. With sentinel
  // padding this is simply the maximum value in the left child's subtree,
  // capped at the largest real key (sentinels only appear to the right of
  // all real keys, so max-of-left is correct for routing).
  for (std::uint64_t id = leaf_first; id-- > 0;) {
    // Max of left subtree = value of the rightmost leaf of the left child.
    Node cur = left_child(node_at(id));
    while (!tree_.is_leaf(cur)) cur = right_child(cur);
    values_[id] = values_[bfs_id(cur)];
  }
}

RangeIndex::Key RangeIndex::value_at(Node n) const noexcept {
  return values_[bfs_id(n)];
}

RangeIndex::QueryResult RangeIndex::query(Key lo, Key hi) const {
  QueryResult result;
  if (lo > hi || key_count_ == 0) return result;

  const std::uint64_t leaf_first = pow2(tree_.levels() - 1) - 1;
  const auto begin = values_.begin() + static_cast<std::ptrdiff_t>(leaf_first);
  const auto end = begin + static_cast<std::ptrdiff_t>(key_count_);
  const auto lo_it = std::lower_bound(begin, end, lo);
  const auto hi_it = std::upper_bound(begin, end, hi);
  if (lo_it == hi_it) return result;  // empty range

  const auto lo_idx = static_cast<std::uint64_t>(lo_it - begin);
  const auto hi_idx = static_cast<std::uint64_t>(hi_it - begin) - 1;

  result.keys.assign(lo_it, hi_it);
  result.decomposition = range_query_template(tree_, lo_idx, hi_idx);
  result.accessed = result.decomposition.nodes();
  return result;
}

}  // namespace pmtree
