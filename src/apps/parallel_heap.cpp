#include "pmtree/apps/parallel_heap.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pmtree {

ParallelHeap::ParallelHeap(std::uint32_t levels)
    : tree_(levels), keys_(tree_.size()) {}

ParallelHeap ParallelHeap::from_keys(std::uint32_t levels,
                                     const std::vector<Key>& keys) {
  ParallelHeap heap(levels);
  assert(keys.size() <= heap.capacity());
  std::copy(keys.begin(), keys.end(), heap.keys_.begin());
  heap.size_ = keys.size();
  if (heap.size_ > 1) {
    for (std::uint64_t pos = heap.size_ / 2; pos-- > 0;) {
      heap.sift_down(pos);
    }
  }
  return heap;
}

std::optional<ParallelHeap::Key> ParallelHeap::min() const noexcept {
  if (size_ == 0) return std::nullopt;
  return keys_[0];
}

std::vector<Node> ParallelHeap::root_path(std::uint64_t pos) const {
  const Node start = node_at(pos);
  std::vector<Node> path;
  path.reserve(start.level + 1);
  Node cur = start;
  while (true) {
    path.push_back(cur);
    if (cur.level == 0) break;
    cur = parent(cur);
  }
  return path;
}

void ParallelHeap::sift_up(std::uint64_t pos) {
  while (pos > 0) {
    const std::uint64_t up = (pos - 1) / 2;
    if (keys_[up] <= keys_[pos]) break;
    std::swap(keys_[up], keys_[pos]);
    pos = up;
  }
}

void ParallelHeap::sift_down(std::uint64_t pos) {
  while (true) {
    const std::uint64_t left = 2 * pos + 1;
    const std::uint64_t right = left + 1;
    std::uint64_t smallest = pos;
    if (left < size_ && keys_[left] < keys_[smallest]) smallest = left;
    if (right < size_ && keys_[right] < keys_[smallest]) smallest = right;
    if (smallest == pos) break;
    std::swap(keys_[pos], keys_[smallest]);
    pos = smallest;
  }
}

std::vector<Node> ParallelHeap::insert(Key key) {
  assert(size_ < capacity());
  const std::uint64_t pos = size_;
  keys_[pos] = key;
  size_ += 1;
  sift_up(pos);
  return root_path(pos);
}

std::vector<Node> ParallelHeap::decrease_key(std::uint64_t pos, Key new_key) {
  assert(pos < size_);
  assert(new_key <= keys_[pos]);
  keys_[pos] = new_key;
  sift_up(pos);
  return root_path(pos);
}

std::vector<Node> ParallelHeap::extract_min(Key* out) {
  assert(size_ > 0 && out != nullptr);
  *out = keys_[0];
  const std::uint64_t last = size_ - 1;
  keys_[0] = keys_[last];
  size_ -= 1;
  if (size_ > 0) sift_down(0);
  // The parallel algorithm reads the whole leaf-to-root path of the slot
  // vacated by the replacement key (paper refs [9], [14]).
  return root_path(last);
}

bool ParallelHeap::is_valid_heap() const noexcept {
  for (std::uint64_t pos = 1; pos < size_; ++pos) {
    if (keys_[(pos - 1) / 2] > keys_[pos]) return false;
  }
  return true;
}

}  // namespace pmtree
