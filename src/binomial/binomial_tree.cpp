#include "pmtree/binomial/binomial_tree.hpp"

#include <algorithm>

namespace pmtree {

std::vector<std::uint64_t> BinomialTree::subtree_nodes(std::uint64_t v,
                                                       std::uint32_t k) const {
  assert(contains(v) && k <= rank(v));
  std::vector<std::uint64_t> out;
  const std::uint64_t count = std::uint64_t{1} << k;
  out.reserve(count);
  for (std::uint64_t off = 0; off < count; ++off) {
    out.push_back(v + off);
  }
  return out;
}

std::vector<std::uint64_t> BinomialTree::root_path(std::uint64_t v) {
  std::vector<std::uint64_t> out;
  out.reserve(depth(v) + 1);
  while (true) {
    out.push_back(v);
    if (v == 0) break;
    v = parent(v);
  }
  return out;
}

void for_each_binomial_subtree(
    const BinomialTree& tree, std::uint32_t k,
    const std::function<bool(std::uint64_t)>& visit) {
  if (k > tree.order()) return;
  // Maximal B_k instances are rooted exactly at the rank-k nodes (the
  // root's rank is the tree order, so it is included iff k == order).
  for (std::uint64_t v = 0; v < tree.size(); ++v) {
    if (tree.rank(v) == k && !visit(v)) return;
  }
}

std::uint64_t binomial_conflicts(const BinomialMapping& mapping,
                                 std::span<const std::uint64_t> nodes) {
  std::vector<std::uint32_t> histogram(mapping.num_modules(), 0);
  std::uint32_t worst = 0;
  for (const std::uint64_t v : nodes) {
    worst = std::max(worst, ++histogram[mapping.color_of(v)]);
  }
  return worst == 0 ? 0 : worst - 1;
}

std::uint64_t evaluate_binomial_subtrees(const BinomialMapping& mapping,
                                         std::uint32_t k) {
  std::uint64_t worst = 0;
  for_each_binomial_subtree(mapping.tree(), k, [&](std::uint64_t root) {
    worst = std::max(worst, binomial_conflicts(
                                mapping, mapping.tree().subtree_nodes(root, k)));
    return true;
  });
  return worst;
}

std::uint64_t evaluate_binomial_paths(const BinomialMapping& mapping,
                                      std::uint64_t size) {
  std::uint64_t worst = 0;
  for (std::uint64_t v = 0; v < mapping.tree().size(); ++v) {
    const auto path = BinomialTree::root_path(v);
    for (std::size_t start = 0; start + size <= path.size(); ++start) {
      worst = std::max(
          worst, binomial_conflicts(
                     mapping, std::span<const std::uint64_t>(
                                  path.data() + start, size)));
    }
  }
  return worst;
}

}  // namespace pmtree
