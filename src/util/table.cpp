#include "pmtree/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace pmtree {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

std::string TableWriter::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

namespace {

void emit_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void emit_csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c > 0) os << ',';
    emit_csv_cell(os, row[c]);
  }
  os << '\n';
}

}  // namespace

void TableWriter::print_csv(std::ostream& os) const {
  emit_csv_row(os, headers_);
  for (const auto& row : rows_) emit_csv_row(os, row);
}

std::string TableWriter::csv() const {
  std::ostringstream oss;
  print_csv(oss);
  return oss.str();
}

}  // namespace pmtree
