#include "pmtree/util/simd.hpp"

#include <atomic>

// All SIMD gating lives in this translation unit. The release build carries
// no -march flags, so the AVX2 bodies are compiled with per-function target
// attributes (available on GCC/Clang for x86) and picked at runtime with
// __builtin_cpu_supports. -DPMTREE_DISABLE_SIMD (or a non-x86 target, or a
// non-GNU compiler) drops the AVX2 bodies entirely and available() pins to
// false, which is exactly the configuration the `nosimd` CMake preset
// exercises in CI.
#if !defined(PMTREE_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PMTREE_HAS_AVX2 1
#include <immintrin.h>
#else
#define PMTREE_HAS_AVX2 0
#endif

namespace pmtree::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

#if PMTREE_HAS_AVX2
bool cpu_has_avx2() noexcept {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif

bool use_avx2() noexcept {
#if PMTREE_HAS_AVX2
  return cpu_has_avx2() && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void gather_u32_scalar(const std::uint32_t* table, const std::uint32_t* idx,
                       std::size_t n, std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = table[idx[i]];
}

void conflict_histogram_scalar(const std::uint32_t* colors, std::size_t n,
                               std::uint32_t* counts, std::uint32_t modules) {
  for (std::uint32_t m = 0; m < modules; ++m) counts[m] = 0;
  for (std::size_t i = 0; i < n; ++i) ++counts[colors[i]];
}

#if PMTREE_HAS_AVX2

__attribute__((target("avx2"))) void gather_u32_avx2(
    const std::uint32_t* table, const std::uint32_t* idx, std::size_t n,
    std::uint32_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i g = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), v, sizeof(std::uint32_t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), g);
  }
  for (; i < n; ++i) out[i] = table[idx[i]];
}

// One-hot rows for the histogram kernel: row c is 64 u16 lanes with a 1 at
// lane c. Row stride is 128 bytes, so with the table 32-byte aligned every
// 16-lane bank within a row is an aligned vector load.
struct OneHotTable {
  alignas(32) std::uint16_t row[64][64];
};

constexpr OneHotTable kOneHot = [] {
  OneHotTable t{};
  for (int c = 0; c < 64; ++c) t.row[c][c] = 1;
  return t;
}();

// Accumulates one-hot u16 rows into BANKS register accumulators (16 lanes
// per bank, so BANKS=1/2/4 covers modules <= 16/32/64). Input is chunked so
// no u16 lane can exceed 65535 adds before it is folded into the u32 counts.
template <std::size_t BANKS>
__attribute__((target("avx2"))) void conflict_histogram_avx2(
    const std::uint32_t* colors, std::size_t n, std::uint32_t* counts,
    std::uint32_t modules) {
  for (std::uint32_t m = 0; m < modules; ++m) counts[m] = 0;
  constexpr std::size_t kChunk = 60000;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t stop = done + (n - done < kChunk ? n - done : kChunk);
    __m256i acc[BANKS];
    for (std::size_t b = 0; b < BANKS; ++b) acc[b] = _mm256_setzero_si256();
    for (std::size_t i = done; i < stop; ++i) {
      const std::uint16_t* row = kOneHot.row[colors[i]];
      for (std::size_t b = 0; b < BANKS; ++b) {
        acc[b] = _mm256_add_epi16(
            acc[b],
            _mm256_load_si256(reinterpret_cast<const __m256i*>(row + 16 * b)));
      }
    }
    alignas(32) std::uint16_t lanes[16 * BANKS];
    for (std::size_t b = 0; b < BANKS; ++b) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 16 * b), acc[b]);
    }
    for (std::uint32_t m = 0; m < modules; ++m) counts[m] += lanes[m];
    done = stop;
  }
}

#endif  // PMTREE_HAS_AVX2

}  // namespace

bool available() noexcept { return use_avx2(); }

const char* active_kernel() noexcept { return use_avx2() ? "avx2" : "scalar"; }

void force_scalar_for_testing(bool force) noexcept {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

void gather_u32(const std::uint32_t* table, const std::uint32_t* idx,
                std::size_t n, std::uint32_t* out) {
#if PMTREE_HAS_AVX2
  if (use_avx2()) {
    gather_u32_avx2(table, idx, n, out);
    return;
  }
#endif
  gather_u32_scalar(table, idx, n, out);
}

void conflict_histogram(const std::uint32_t* colors, std::size_t n,
                        std::uint32_t* counts, std::uint32_t modules) {
#if PMTREE_HAS_AVX2
  if (modules <= 64 && use_avx2()) {
    if (modules <= 16) {
      conflict_histogram_avx2<1>(colors, n, counts, modules);
    } else if (modules <= 32) {
      conflict_histogram_avx2<2>(colors, n, counts, modules);
    } else {
      conflict_histogram_avx2<4>(colors, n, counts, modules);
    }
    return;
  }
#endif
  conflict_histogram_scalar(colors, n, counts, modules);
}

}  // namespace pmtree::simd
