#include "pmtree/util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pmtree {

void Json::set(const std::string& key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.items_ == b.items_;
    case Json::Type::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Integral doubles (the common case: counters, cycle counts) print
  // without a decimal point so exports look like the integers they are.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

void append_newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        append_newline(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) append_newline(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        append_newline(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) append_newline(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a bounds-checked cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> run() {
    auto v = value();
    skip_ws();
    if (!v || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string::traits_type::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  std::optional<std::string> string_body() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // The registry only emits \u for C0 controls; decode BMP code
          // points as UTF-8 and reject surrogates (never produced here).
          if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == 'n') return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
    if (c == '"') {
      auto s = string_body();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        auto item = value();
        if (!item) return std::nullopt;
        arr.push_back(std::move(*item));
        skip_ws();
        if (consume(']')) return arr;
        if (!consume(',')) return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        skip_ws();
        auto key = string_body();
        if (!key) return std::nullopt;
        skip_ws();
        if (!consume(':')) return std::nullopt;
        auto item = value();
        if (!item) return std::nullopt;
        obj.set(*key, std::move(*item));
        skip_ws();
        if (consume('}')) return obj;
        if (!consume(',')) return std::nullopt;
      }
    }
    return number();
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace pmtree
