#include "pmtree/fault/plan.hpp"

#include <algorithm>

#include "pmtree/util/rng.hpp"

namespace pmtree::fault {

FaultPlan FaultPlan::random(const RandomOptions& options) {
  FaultPlan plan;
  if (options.modules == 0) return plan;
  Rng rng(options.seed);

  // Fail-stop draw: a Fisher-Yates prefix picks `fail_count` distinct
  // modules; capping at modules - 1 keeps at least one survivor so the
  // timeline never has to spare anyone.
  const auto want = static_cast<std::uint64_t>(
      options.fail_fraction * static_cast<double>(options.modules));
  const std::uint64_t fail_count =
      std::min<std::uint64_t>(want, options.modules - 1);
  std::vector<std::uint32_t> ids(options.modules);
  for (std::uint32_t m = 0; m < options.modules; ++m) ids[m] = m;
  for (std::uint64_t j = 0; j < fail_count; ++j) {
    const std::uint64_t pick = j + rng.below(options.modules - j);
    std::swap(ids[j], ids[pick]);
    const std::uint64_t cycle =
        options.fail_window == 0 ? 0 : rng.below(options.fail_window);
    plan.fail_stop(ids[j], cycle);
  }

  for (std::uint32_t s = 0; s < options.slowdown_count; ++s) {
    const auto module = static_cast<std::uint32_t>(rng.below(options.modules));
    const std::uint64_t begin =
        options.slowdown_window == 0 ? 0 : rng.below(options.slowdown_window);
    const std::uint64_t length =
        rng.between(1, std::max<std::uint64_t>(options.slowdown_max_length, 1));
    const std::uint64_t period =
        rng.between(2, std::max<std::uint64_t>(options.slowdown_max_period, 2));
    plan.slow_down(module, begin, begin + length, period);
  }
  return plan;
}

Json FaultPlan::to_json() const {
  Json j = Json::object();
  Json fails = Json::array();
  for (const FailStop& f : fail_stops_) {
    Json e = Json::object();
    e.set("module", Json(std::uint64_t{f.module}));
    e.set("cycle", Json(f.cycle));
    fails.push_back(std::move(e));
  }
  j.set("fail_stops", std::move(fails));
  Json slows = Json::array();
  for (const Slowdown& s : slowdowns_) {
    Json e = Json::object();
    e.set("module", Json(std::uint64_t{s.module}));
    e.set("begin", Json(s.begin));
    e.set("end", Json(s.end));
    e.set("period", Json(s.period));
    slows.push_back(std::move(e));
  }
  j.set("slowdowns", std::move(slows));
  return j;
}

FaultTimeline::FaultTimeline(const FaultPlan& plan, std::uint32_t modules) {
  fail_cycle_.assign(modules, kNever);
  redirect_.resize(modules);
  slow_by_module_.resize(modules);

  for (const FailStop& f : plan.fail_stops()) {
    if (f.module >= modules) continue;
    fail_cycle_[f.module] = std::min(fail_cycle_[f.module], f.cycle);
  }
  for (const Slowdown& s : plan.slowdowns()) {
    if (s.module >= modules || s.period <= 1 || s.end <= s.begin) continue;
    slow_by_module_[s.module].push_back(s);
    has_slowdowns_ = true;
  }

  // Spare one module if the plan killed them all: the latest failure
  // (ties: highest id) is the natural survivor, and a deterministic one.
  bool any_live = false;
  for (std::uint32_t m = 0; m < modules; ++m) {
    any_live = any_live || fail_cycle_[m] == kNever;
  }
  if (!any_live && modules > 0) {
    std::uint32_t spare = 0;
    for (std::uint32_t m = 1; m < modules; ++m) {
      if (fail_cycle_[m] >= fail_cycle_[spare]) spare = m;
    }
    fail_cycle_[spare] = kNever;
  }

  for (std::uint32_t m = 0; m < modules; ++m) {
    redirect_[m] = m;
    if (fail_cycle_[m] == kNever) {
      live_.push_back(m);
    } else {
      dead_.push_back(m);
      fail_events_.push_back(FailEvent{fail_cycle_[m], m});
    }
  }
  for (std::size_t j = 0; j < dead_.size(); ++j) {
    redirect_[dead_[j]] = live_[j % live_.size()];
  }
  std::sort(fail_events_.begin(), fail_events_.end(),
            [](const FailEvent& a, const FailEvent& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              return a.module < b.module;
            });
}

}  // namespace pmtree::fault
