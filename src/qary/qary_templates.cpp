#include "pmtree/qary/qary_templates.hpp"

#include <cassert>

namespace pmtree {

std::vector<QaryNode> QarySubtreeInstance::nodes(const QaryTree& tree) const {
  std::vector<QaryNode> out;
  out.reserve(size(tree));
  std::uint64_t width = 1;
  std::uint64_t first = root.index;
  for (std::uint32_t d = 0; d < levels; ++d) {
    for (std::uint64_t off = 0; off < width; ++off) {
      out.push_back(QaryNode{root.level + d, first + off});
    }
    width *= tree.arity();
    first *= tree.arity();
  }
  return out;
}

std::vector<QaryNode> QaryPathInstance::nodes(const QaryTree& tree) const {
  std::vector<QaryNode> out;
  out.reserve(size);
  QaryNode cur = start;
  for (std::uint64_t t = 0; t < size; ++t) {
    out.push_back(cur);
    if (t + 1 < size) cur = tree.parent(cur);
  }
  return out;
}

std::vector<QaryNode> QaryLevelRunInstance::nodes(const QaryTree&) const {
  std::vector<QaryNode> out;
  out.reserve(size);
  for (std::uint64_t t = 0; t < size; ++t) {
    out.push_back(QaryNode{first.level, first.index + t});
  }
  return out;
}

void for_each_qary_subtree(
    const QaryTree& tree, std::uint32_t levels,
    const std::function<bool(const QarySubtreeInstance&)>& visit) {
  assert(levels >= 1);
  if (levels > tree.levels()) return;
  for (std::uint32_t j = 0; j + levels <= tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      if (!visit(QarySubtreeInstance{QaryNode{j, i}, levels})) return;
    }
  }
}

void for_each_qary_path(
    const QaryTree& tree, std::uint64_t size,
    const std::function<bool(const QaryPathInstance&)>& visit) {
  assert(size >= 1);
  if (size > tree.levels()) return;
  for (std::uint32_t j = static_cast<std::uint32_t>(size) - 1; j < tree.levels();
       ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      if (!visit(QaryPathInstance{QaryNode{j, i}, size})) return;
    }
  }
}

void for_each_qary_level_run(
    const QaryTree& tree, std::uint64_t size,
    const std::function<bool(const QaryLevelRunInstance&)>& visit) {
  assert(size >= 1);
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    if (tree.level_width(j) < size) continue;
    for (std::uint64_t i = 0; i + size <= tree.level_width(j); ++i) {
      if (!visit(QaryLevelRunInstance{QaryNode{j, i}, size})) return;
    }
  }
}

}  // namespace pmtree
