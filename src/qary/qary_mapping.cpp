#include "pmtree/qary/qary_mapping.hpp"

#include <algorithm>
#include <vector>

namespace pmtree {

std::uint64_t qary_conflicts(const QaryMapping& mapping,
                             std::span<const QaryNode> nodes) {
  std::vector<std::uint32_t> histogram(mapping.num_modules(), 0);
  std::uint32_t worst = 0;
  for (const QaryNode& n : nodes) {
    worst = std::max(worst, ++histogram[mapping.color_of(n)]);
  }
  return worst == 0 ? 0 : worst - 1;
}

std::uint64_t evaluate_qary_subtrees(const QaryMapping& mapping,
                                     std::uint32_t levels) {
  std::uint64_t worst = 0;
  for_each_qary_subtree(mapping.tree(), levels,
                        [&](const QarySubtreeInstance& s) {
                          worst = std::max(
                              worst, qary_conflicts(mapping,
                                                    s.nodes(mapping.tree())));
                          return true;
                        });
  return worst;
}

std::uint64_t evaluate_qary_paths(const QaryMapping& mapping,
                                  std::uint64_t size) {
  std::uint64_t worst = 0;
  for_each_qary_path(mapping.tree(), size, [&](const QaryPathInstance& p) {
    worst = std::max(worst, qary_conflicts(mapping, p.nodes(mapping.tree())));
    return true;
  });
  return worst;
}

std::uint64_t evaluate_qary_level_runs(const QaryMapping& mapping,
                                       std::uint64_t size) {
  std::uint64_t worst = 0;
  for_each_qary_level_run(mapping.tree(), size,
                          [&](const QaryLevelRunInstance& l) {
                            worst = std::max(
                                worst,
                                qary_conflicts(mapping,
                                               l.nodes(mapping.tree())));
                            return true;
                          });
  return worst;
}

std::uint64_t evaluate_qary_aligned_subtrees(const QaryMapping& mapping,
                                             std::uint32_t levels,
                                             std::uint32_t align) {
  std::uint64_t worst = 0;
  for_each_qary_subtree(mapping.tree(), levels,
                        [&](const QarySubtreeInstance& s) {
                          if (s.root.level % align != 0) return true;
                          worst = std::max(
                              worst, qary_conflicts(mapping,
                                                    s.nodes(mapping.tree())));
                          return true;
                        });
  return worst;
}

}  // namespace pmtree
