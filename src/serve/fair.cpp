#include "pmtree/serve/fair.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pmtree::serve {

std::vector<std::uint32_t> apportion(std::uint32_t total,
                                     const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  std::vector<std::uint32_t> shares(n, 0);
  if (n == 0 || total == 0) return shares;

  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::isfinite(weights[i]) && weights[i] > 0.0 ? weights[i] : 0.0;
    sum += w[i];
  }
  if (sum <= 0.0) {
    std::fill(w.begin(), w.end(), 1.0);
    sum = static_cast<double>(n);
  }

  std::vector<double> remainder(n);
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double quota = static_cast<double>(total) * w[i] / sum;
    shares[i] = static_cast<std::uint32_t>(quota);  // floor: quota >= 0
    remainder[i] = quota - static_cast<double>(shares[i]);
    assigned += shares[i];
  }

  // Leftover units go to the largest fractional remainders; ties break
  // toward the lower index so the split is a pure function of the input.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t k = 0; assigned < total; ++k) {
    shares[order[k % n]] += 1;
    assigned += 1;
  }
  return shares;
}

Json CapacityPlan::to_json() const {
  Json j = Json::object();
  j.set("requested_replicas", Json(std::uint64_t{requested_replicas}));
  j.set("total_lanes", Json(std::uint64_t{total_lanes}));
  Json tenants = Json::array();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    Json t = Json::object();
    t.set("lanes", Json(std::uint64_t{lanes[i]}));
    t.set("first_lane", Json(std::uint64_t{first_lane[i]}));
    tenants.push_back(std::move(t));
  }
  j.set("tenants", std::move(tenants));
  return j;
}

CapacityPlan plan_capacity(const std::vector<double>& rates,
                           std::uint32_t replicas) {
  CapacityPlan plan;
  plan.requested_replicas = replicas;
  const std::size_t n = rates.size();
  if (n == 0) return plan;

  // Guarantee every tenant a lane, then split the surplus by rate. A pool
  // smaller than the tenant count grows to one lane each (recorded via
  // requested_replicas) rather than starving someone of memory capacity.
  const std::uint32_t pool =
      std::max(replicas, static_cast<std::uint32_t>(n));
  plan.lanes = apportion(pool - static_cast<std::uint32_t>(n), rates);
  plan.first_lane.resize(n);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    plan.lanes[i] += 1;
    plan.first_lane[i] = next;
    next += plan.lanes[i];
  }
  plan.total_lanes = next;
  return plan;
}

DeficitRoundRobin::DeficitRoundRobin(std::vector<std::uint64_t> weights,
                                     std::uint64_t quantum_nodes)
    : quanta_(std::move(weights)), deficit_(quanta_.size(), 0) {
  if (quantum_nodes == 0) quantum_nodes = 1;
  for (std::uint64_t& q : quanta_) {
    q = (q == 0 ? 1 : q) * quantum_nodes;
  }
}

}  // namespace pmtree::serve
