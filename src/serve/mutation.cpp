#include "pmtree/serve/mutation.hpp"

#include <algorithm>
#include <cassert>

namespace pmtree::serve {

void apply_batch_mutations(const FormedBatch& batch,
                           std::span<const Request> requests,
                           const DynBinding& binding, std::uint64_t cycle,
                           std::vector<char>& applied,
                           std::vector<MutationRecord>& log) {
  if (!binding.enabled()) return;
  assert(binding.colorer != nullptr &&
         "a dyn binding needs its incremental colorer");

  // The batch's node set must be colored before any worker resolves it —
  // for the staged pipeline this happens-before edge is the token cut;
  // for the oracle it is the replica thread fork. Raw (uncoalesced)
  // batches repeat nodes; touch() memoizes, so repeats are O(1).
  binding.colorer->touch(std::span<const Node>(batch.nodes.data(),
                                               batch.nodes.size()));

  // Writers of this batch, in canonical member order (members are pushed
  // in admission order, which is canonical). Canonical order is the
  // barrier's tie-break: it matches the order a single client planned its
  // speculative mutations in, so per-client sequences apply exactly as
  // planned, and cross-client conflicts resolve to the canonically-first
  // writer deterministically.
  bool wrote = false;
  for (const std::size_t index : batch.members) {
    const Request& req = requests[index];
    if (req.kind == RequestKind::kRead || applied[index] != 0) continue;
    applied[index] = 1;

    MutationRecord rec;
    rec.batch = batch.id;
    rec.client = req.client;
    rec.seq = req.seq;
    rec.kind = req.kind;
    rec.target = req.target;
    rec.payload = req.payload;
    rec.applied_cycle = cycle;

    // Dedup: the most recent non-duplicate writer on this coordinate in
    // this batch decides. Same kind — an identical op already got its
    // verdict, later copies are marked instead of re-applied. Different
    // kind — the coordinate's state changed in between (insert-erase-
    // insert oscillation, e.g. a heap shrinking and regrowing past the
    // same BFS slot), so the repeat is a fresh application, not a copy.
    bool duplicate = false;
    for (auto it = log.rbegin(); it != log.rend() && it->batch == batch.id;
         ++it) {
      if (it->target != rec.target ||
          it->status == dyn::DynStatus::kDuplicate) {
        continue;
      }
      duplicate = it->kind == rec.kind;
      break;
    }
    if (duplicate) {
      rec.status = dyn::DynStatus::kDuplicate;
      log.push_back(rec);
      continue;
    }

    if (req.kind == RequestKind::kInsert) {
      rec.status = binding.tree->insert_node(req.target);
      if (rec.status == dyn::DynStatus::kOk) {
        binding.colorer->touch(req.target);
      }
    } else {
      rec.status = binding.tree->remove_leaf(req.target);
    }
    wrote = wrote || rec.status == dyn::DynStatus::kOk;
    log.push_back(rec);
  }

  // The strawman epoch model: any batch that wrote invalidates the whole
  // coloring and pays a full re-touch of the live set.
  if (wrote && binding.recolor_from_scratch) {
    binding.colorer->reset();
    const std::vector<Node> live = binding.tree->live_nodes();
    binding.colorer->touch(std::span<const Node>(live.data(), live.size()));
    // The batch in flight still needs its (possibly just-erased) read
    // coordinates colored for the workers.
    binding.colorer->touch(std::span<const Node>(batch.nodes.data(),
                                                 batch.nodes.size()));
  }
}

Json dyn_stats(const DynBinding& binding,
               const std::vector<MutationRecord>& log) {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t applied = 0;
  std::uint64_t duplicates = 0;
  for (const MutationRecord& rec : log) {
    if (rec.kind == RequestKind::kInsert) ++inserts;
    if (rec.kind == RequestKind::kErase) ++erases;
    if (rec.status == dyn::DynStatus::kOk) ++applied;
    if (rec.status == dyn::DynStatus::kDuplicate) ++duplicates;
  }
  Json j = Json::object();
  j.set("live_nodes", Json(binding.tree->size()));
  j.set("levels", Json(std::uint64_t{binding.tree->levels()}));
  j.set("tree_version", Json(binding.tree->version()));
  Json muts = Json::object();
  muts.set("inserts", Json(inserts));
  muts.set("erases", Json(erases));
  muts.set("applied", Json(applied));
  muts.set("rejected", Json(log.size() - applied - duplicates));
  muts.set("deduped", Json(duplicates));
  j.set("mutations", std::move(muts));
  Json colorer = Json::object();
  colorer.set("scheme", Json(std::string(binding.colorer->name())));
  colorer.set("nodes_colored", Json(binding.colorer->nodes_colored()));
  colorer.set("touches", Json(binding.colorer->touches()));
  colorer.set("from_scratch", Json(binding.recolor_from_scratch));
  j.set("colorer", std::move(colorer));
  return j;
}

}  // namespace pmtree::serve
