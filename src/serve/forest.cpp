#include "pmtree/serve/forest.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>
#include <utility>

#include "pmtree/engine/arrival.hpp"
#include "pmtree/engine/session.hpp"
#include "pmtree/util/parallel.hpp"

namespace pmtree::serve {
namespace {

std::uint64_t count_status(const std::vector<Response>& responses,
                           RequestStatus status) noexcept {
  std::uint64_t n = 0;
  for (const Response& r : responses) n += r.status == status ? 1 : 0;
  return n;
}

Json response_rows(const std::vector<Response>& responses) {
  Json rows = Json::array();
  for (const Response& r : responses) {
    Json row = Json::object();
    row.set("client", Json(std::uint64_t{r.client}));
    row.set("seq", Json(r.seq));
    row.set("status", Json(to_string(r.status)));
    row.set("submit", Json(r.submit_cycle));
    row.set("completion", Json(r.completion_cycle));
    row.set("latency", Json(r.latency()));
    row.set("retries", Json(std::uint64_t{r.retries}));
    if (r.status == RequestStatus::kOk) row.set("batch", Json(r.batch));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::uint64_t TenantReport::count(RequestStatus status) const noexcept {
  return count_status(responses, status);
}

std::uint64_t ForestReport::count(RequestStatus status) const noexcept {
  std::uint64_t n = 0;
  for (const TenantReport& t : tenants) n += t.count(status);
  return n;
}

std::uint64_t ForestReport::total_requests() const noexcept {
  std::uint64_t n = 0;
  for (const TenantReport& t : tenants) n += t.responses.size();
  return n;
}

Json ForestReport::to_json() const {
  Json j = Json::object();
  j.set("tenant_count", Json(tenants.size()));
  j.set("requests", Json(total_requests()));
  j.set("ok", Json(count(RequestStatus::kOk)));
  j.set("shed", Json(count(RequestStatus::kShed)));
  j.set("expired", Json(count(RequestStatus::kExpired)));
  j.set("ticks", Json(ticks));
  j.set("rounds", Json(rounds));
  j.set("final_cycle", Json(final_cycle));
  j.set("metrics", metrics);

  Json jtenants = Json::array();
  for (const TenantReport& t : tenants) {
    Json row = Json::object();
    row.set("name", Json(t.name));
    row.set("requests", Json(t.responses.size()));
    row.set("ok", Json(t.count(RequestStatus::kOk)));
    row.set("shed", Json(t.count(RequestStatus::kShed)));
    row.set("expired", Json(t.count(RequestStatus::kExpired)));
    row.set("batches", Json(t.batches.size()));
    row.set("served_nodes", Json(t.served_nodes));
    if (t.memory.nodes != 0) row.set("memory", t.memory.to_json());
    row.set("responses", response_rows(t.responses));
    jtenants.push_back(std::move(row));
  }
  j.set("tenants", std::move(jtenants));
  return j;
}

Forest::Forest(ForestOptions options) : options_(options) {
  if (options_.tick_cycles == 0) options_.tick_cycles = 1;
  if (options_.replicas == 0) options_.replicas = 1;
  if (options_.drr_quantum_nodes == 0) options_.drr_quantum_nodes = 1;
}

std::uint32_t Forest::add_tenant(const TreeMapping& mapping,
                                 TenantOptions options) {
  assert(!planned_ && "register every tenant before the first run()");
  const std::uint32_t id = static_cast<std::uint32_t>(tenants_.size());
  if (options.name.empty()) options.name = "t" + std::to_string(id);
  if (options.weight == 0) options.weight = 1;
  tenants_.push_back(Tenant{&mapping, std::move(options)});
  return id;
}

void Forest::submit(std::uint32_t tenant, Request request) {
  assert(tenant < tenants_.size());
  Inbox& inbox =
      inboxes_[(std::size_t{tenant} * 31 + request.client) % kStripes];
  const std::lock_guard<std::mutex> lock(inbox.mutex);
  inbox.requests.push_back(Submitted{tenant, std::move(request)});
}

void Forest::submit(std::uint32_t tenant, std::vector<Request> requests) {
  for (Request& r : requests) submit(tenant, std::move(r));
}

std::vector<Forest::Submitted> Forest::drain_inboxes() {
  std::vector<Submitted> all;
  for (Inbox& inbox : inboxes_) {
    const std::lock_guard<std::mutex> lock(inbox.mutex);
    all.insert(all.end(), std::make_move_iterator(inbox.requests.begin()),
               std::make_move_iterator(inbox.requests.end()));
    inbox.requests.clear();
  }
  return all;
}

void Forest::ensure_plan() {
  if (planned_) return;
  std::vector<double> rates;
  rates.reserve(tenants_.size());
  for (const Tenant& t : tenants_) rates.push_back(t.options.rate);
  plan_ = plan_capacity(rates, options_.replicas);
  planned_ = true;
}

const CapacityPlan& Forest::plan() {
  ensure_plan();
  return plan_;
}

ForestReport Forest::run() {
  // Staged-pipeline dispatch (pipeline.cpp). The body below is the
  // frozen single-threaded oracle; any tenant with a fault plan keeps
  // the whole forest here (EngineSession is healthy-path only).
  if (options_.pipeline.enabled()) {
    bool healthy = true;
    for (const Tenant& tenant : tenants_) {
      healthy = healthy && (tenant.options.engine.faults == nullptr ||
                            tenant.options.engine.faults->empty());
    }
    if (healthy) return run_pipeline();
  }

  ensure_plan();
  const std::size_t N = tenants_.size();
  const std::uint64_t T = options_.tick_cycles;

  // ---- Canonical order: a pure function of the submitted set, with the
  // tenant id as the tie-break between clients of different tenants. ----
  std::vector<Submitted> all = drain_inboxes();
  std::stable_sort(all.begin(), all.end(),
                   [](const Submitted& a, const Submitted& b) {
                     if (a.request.submit_cycle != b.request.submit_cycle)
                       return a.request.submit_cycle < b.request.submit_cycle;
                     if (a.tenant != b.tenant) return a.tenant < b.tenant;
                     if (a.request.client != b.request.client)
                       return a.request.client < b.request.client;
                     return a.request.seq < b.request.seq;
                   });

  ForestReport report;
  report.plan = plan_;
  report.tenants.resize(N);

  // Split per tenant, preserving canonical order; the tenant-local index
  // is the identity every later phase uses.
  std::vector<std::vector<Request>> requests(N);
  struct IntakeEntry {
    std::uint64_t arrival = 0;
    std::uint32_t tenant = 0;
    std::uint32_t local = 0;
  };
  std::vector<IntakeEntry> intake;
  intake.reserve(all.size());
  for (Submitted& s : all) {
    const std::uint32_t local =
        static_cast<std::uint32_t>(requests[s.tenant].size());
    intake.push_back(
        IntakeEntry{s.request.submit_cycle, s.tenant, local});
    requests[s.tenant].push_back(std::move(s.request));
  }
  // Re-establish (arrival, tenant, local) order: the canonical sort leads
  // with submit_cycle, but interleaves tenants within a cycle — which is
  // already (tenant, local) order because local indices are minted in
  // canonical order. So `intake` is sorted as-is; rounds > 1 re-sort.
  for (std::size_t i = 0; i < N; ++i) {
    TenantReport& t = report.tenants[i];
    t.name = tenants_[i].options.name;
    t.responses.resize(requests[i].size());
    t.lanes.resize(plan_.lanes.empty() ? 0 : plan_.lanes[i]);
    for (std::size_t k = 0; k < requests[i].size(); ++k) {
      Response& r = t.responses[k];
      r.client = requests[i][k].client;
      r.seq = requests[i][k].seq;
      r.submit_cycle = requests[i][k].submit_cycle;
    }
  }

  // ---- Per-tenant machinery + the shared fairness layer. --------------
  engine::MetricsRegistry& reg = registry_;
  ServeMetrics forest_metrics(reg, "forest");
  std::vector<ServeMetrics> tenant_metrics;
  tenant_metrics.reserve(N);
  std::vector<AdmissionController> admission;
  admission.reserve(N);
  std::vector<BatchFormer> former;
  former.reserve(N);
  std::vector<std::uint64_t> weights(N, 1);
  for (std::size_t i = 0; i < N; ++i) {
    tenant_metrics.emplace_back(reg, "forest.t" + std::to_string(i));
    admission.emplace_back(tenants_[i].options.admission);
    former.emplace_back(tenants_[i].options.batch);
    weights[i] = tenants_[i].options.weight;
    tenant_metrics[i].on_submitted(requests[i].size());
  }
  forest_metrics.on_submitted(all.size());
  DeficitRoundRobin drr(weights, options_.drr_quantum_nodes);

  // Shared global pool: each tenant reserves a weighted share of the
  // bound; borrowing beyond the reserve needs total occupancy < bound.
  const bool pooled = options_.global_queue_bound != 0 && N > 0;
  const std::size_t G =
      pooled ? std::max(options_.global_queue_bound, N) : 0;
  std::vector<std::uint32_t> reserved(N, 0);
  if (pooled) {
    std::vector<double> w(N);
    for (std::size_t i = 0; i < N; ++i) {
      w[i] = static_cast<double>(weights[i] == 0 ? 1 : weights[i]);
    }
    reserved = apportion(static_cast<std::uint32_t>(G), w);
    for (std::uint32_t& r : reserved) r = std::max(r, 1u);
  }
  std::size_t total_pending = 0;
  const auto recount_pending = [&]() {
    total_pending = 0;
    for (const AdmissionController& a : admission) {
      total_pending += a.pending_count();
    }
  };

  // ---- Tick loop: single-threaded control plane, in serving rounds. ---
  // Identical phase order to Server::run (expire → promote → intake →
  // batch → observe), each phase visiting tenants in ascending id — the
  // canonical tenant ordering that makes the run a pure function of the
  // submitted set.
  std::uint64_t ticks = 0;
  std::uint64_t rounds = 0;
  std::uint64_t t = 0;
  std::vector<std::size_t> scratch;
  std::vector<std::vector<std::uint32_t>> attempts(N);
  std::vector<std::size_t> round_first_batch(N, 0);
  for (std::size_t i = 0; i < N; ++i) {
    attempts[i].assign(requests[i].size(), 0);
  }

  std::size_t unresolved = 0;
  const auto resolve = [&](std::uint32_t tenant, std::uint32_t local,
                           RequestStatus status, std::uint64_t cycle) {
    Response& r = report.tenants[tenant].responses[local];
    assert(r.status == RequestStatus::kPending);
    r.status = status;
    r.completion_cycle = cycle;
    unresolved -= 1;
  };

  // All lanes across all tenants, flattened for the parallel phase.
  struct LaneTask {
    std::uint32_t tenant = 0;
    std::uint32_t lane = 0;
  };
  std::vector<LaneTask> lane_tasks;
  for (std::size_t i = 0; i < N; ++i) {
    for (std::uint32_t l = 0; l < plan_.lanes[i]; ++l) {
      lane_tasks.push_back(
          LaneTask{static_cast<std::uint32_t>(i), l});
    }
  }

  // ---- Per-tenant skew-adaptive migration (DESIGN.md §15) and adaptive
  // mapping selection (DESIGN.md §17). Same protocol as the Server
  // oracle, scoped per tenant: each opted-in healthy tenant gets a
  // planner OR selector fed at cut time (canonical order) plus one
  // EngineSession per assigned lane, keyed by global lane id; the
  // parallel phase then only drains those lanes. A tenant carrying a
  // fault plan keeps the static CycleEngine path — fault reroute tables
  // own its color space, and EngineSession is healthy-path only.
  std::vector<std::unique_ptr<MigrationPlanner>> planners(N);
  std::vector<std::unique_ptr<AdaptiveSelector>> selectors(N);
  std::vector<std::unique_ptr<engine::EngineSession>> lane_sessions(
      plan_.total_lanes);
  std::vector<Color> epoch_colors;
  for (std::size_t i = 0; i < N; ++i) {
    const TenantOptions& topt = tenants_[i].options;
    assert(!(topt.migration.enabled() && topt.adaptive.enabled()) &&
           "per-tenant migration and adaptive selection are mutually "
           "exclusive");
    const bool healthy =
        topt.engine.faults == nullptr || topt.engine.faults->empty();
    if (!healthy) continue;
    if (topt.migration.enabled()) {
      planners[i] = std::make_unique<MigrationPlanner>(*tenants_[i].mapping,
                                                       topt.migration);
    } else if (topt.adaptive.enabled()) {
      selectors[i] = std::make_unique<AdaptiveSelector>(*tenants_[i].mapping,
                                                        topt.adaptive);
    } else {
      continue;
    }
    for (std::uint32_t l = 0; l < plan_.lanes[i]; ++l) {
      lane_sessions[plan_.first_lane[i] + l] =
          std::make_unique<engine::EngineSession>(*tenants_[i].mapping,
                                                  topt.engine);
    }
  }

  while (true) {
    rounds += 1;
    std::size_t next_intake = 0;
    unresolved = intake.size();
    for (std::size_t i = 0; i < N; ++i) {
      round_first_batch[i] = report.tenants[i].batches.size();
    }

    while (unresolved > 0) {
      ticks += 1;
      // Phase 1: expire, per tenant in id order.
      for (std::size_t i = 0; i < N; ++i) {
        scratch.clear();
        admission[i].expire(t, scratch);
        for (const std::size_t local : scratch) {
          resolve(static_cast<std::uint32_t>(i),
                  static_cast<std::uint32_t>(local), RequestStatus::kExpired,
                  t);
        }
        tenant_metrics[i].on_expired(scratch.size());
        forest_metrics.on_expired(scratch.size());
      }
      recount_pending();

      // Phase 2: promote blocked callers, bounded by the tenant's pool
      // headroom: its unfilled reserve plus whatever of the shared bound
      // is unused. Earlier tenants consume shared headroom first — part
      // of the canonical ordering contract.
      for (std::size_t i = 0; i < N; ++i) {
        std::size_t limit = ~std::size_t{0};
        if (pooled) {
          const std::size_t mine = admission[i].pending_count();
          const std::size_t reserve_room =
              reserved[i] > mine ? reserved[i] - mine : 0;
          const std::size_t shared_room =
              total_pending < G ? G - total_pending : 0;
          limit = reserve_room + shared_room;
        }
        scratch.clear();
        admission[i].promote(t, scratch, limit);
        for (const std::size_t local : scratch) {
          report.tenants[i].responses[local].admitted_cycle = t;
        }
        tenant_metrics[i].on_promoted(scratch.size());
        forest_metrics.on_promoted(scratch.size());
        total_pending += scratch.size();
      }

      // Phase 3: intake of everything arrived by now, in canonical
      // (arrival, tenant, local) order across all tenants.
      while (next_intake < intake.size() &&
             intake[next_intake].arrival <= t) {
        const IntakeEntry e = intake[next_intake++];
        const std::size_t i = e.tenant;
        const bool pool_ok =
            !pooled || admission[i].pending_count() < reserved[i] ||
            total_pending < G;
        switch (admission[i].offer(e.local, requests[i][e.local], t,
                                   pool_ok)) {
          case AdmissionController::Decision::kAdmitted:
            report.tenants[i].responses[e.local].admitted_cycle = t;
            tenant_metrics[i].on_admitted();
            forest_metrics.on_admitted();
            total_pending += 1;
            break;
          case AdmissionController::Decision::kBlocked:
            tenant_metrics[i].on_blocked();
            forest_metrics.on_blocked();
            break;
          case AdmissionController::Decision::kShedNow:
            resolve(e.tenant, e.local, RequestStatus::kShed, t);
            tenant_metrics[i].on_shed();
            forest_metrics.on_shed();
            break;
          case AdmissionController::Decision::kDeadOnArrival:
            resolve(e.tenant, e.local, RequestStatus::kExpired, t);
            tenant_metrics[i].on_expired(1);
            forest_metrics.on_expired(1);
            break;
        }
      }

      // Phase 4: deficit-round-robin batch formation. Each backlogged
      // tenant accrues its quantum, then cuts due batches while it can
      // afford their pre-dedup node cost; credit is forfeited the moment
      // its queue empties (no banking service for a later burst).
      for (std::size_t i = 0; i < N; ++i) {
        if (admission[i].pending_count() == 0) {
          drr.reset(i);
          continue;
        }
        drr.begin_turn(i);
        while (former[i].due(t, admission[i])) {
          const std::uint64_t cost = former[i].next_batch_cost(admission[i]);
          if (!drr.affords(i, cost)) break;
          drr.spend(i, cost);
          FormedBatch batch = former[i].form_one(t, admission[i]);
          for (const std::size_t local : batch.members) {
            Response& r = report.tenants[i].responses[local];
            r.dispatch_cycle = t;
            r.batch = batch.id;
          }
          unresolved -= batch.members.size();
          report.tenants[i].served_nodes += batch.requested_nodes;
          if (planners[i] || selectors[i]) {
            const TreeMapping* epoch = nullptr;
            if (planners[i]) {
              planners[i]->observe(batch.nodes, t);
              epoch = &planners[i]->current();
            } else {
              selectors[i]->observe(batch.nodes, t);
              epoch = &selectors[i]->current();
            }
            epoch_colors.resize(batch.nodes.size());
            epoch->color_of_batch(
                batch.nodes,
                std::span<Color>(epoch_colors.data(), epoch_colors.size()));
            lane_sessions[plan_.first_lane[i] +
                          static_cast<std::uint32_t>(batch.id %
                                                     plan_.lanes[i])]
                ->feed_resolved(epoch_colors, t);
          }
          if (tenants_[i].options.memory != nullptr) {
            // form_one already coalesced batch.nodes, so this counts the
            // exact per-batch node set the lanes execute.
            report.tenants[i].memory +=
                tenants_[i].options.memory->touch(batch.nodes);
          }
          tenant_metrics[i].on_batch(batch);
          forest_metrics.on_batch(batch);
          report.tenants[i].batches.push_back(std::move(batch));
        }
        if (admission[i].pending_count() == 0) drr.reset(i);
      }
      recount_pending();

      // Phase 5: observe queue depths, per tenant and forest-wide.
      std::size_t total_blocked = 0;
      for (std::size_t i = 0; i < N; ++i) {
        tenant_metrics[i].on_tick(admission[i].pending_count(),
                                  admission[i].blocked_count());
        total_blocked += admission[i].blocked_count();
      }
      forest_metrics.on_tick(total_pending, total_blocked);

      // Advance; jump over idle gaps straight to the next arrival's tick.
      bool idle = true;
      for (const AdmissionController& a : admission) {
        idle = idle && a.idle();
      }
      if (idle && next_intake < intake.size()) {
        const std::uint64_t arrival = intake[next_intake].arrival;
        const std::uint64_t next_tick = (arrival + T - 1) / T * T;
        t = next_tick > t ? next_tick : t + T;
      } else {
        t += T;
      }
    }

    // ---- Lane execution: the only parallel phase. Tenant i's batch k
    // runs on its lane k mod lanes[i]; each lane replays its cumulative
    // batch list through a CycleEngine under the tenant's own mapping and
    // fault plan. Re-running with later batches appended cannot change
    // earlier completions (later arrivals queue strictly behind), so each
    // round extends, never rewrites, the previous round's results. ------
    const unsigned workers = std::min<unsigned>(
        resolve_threads(options_.workers),
        static_cast<unsigned>(std::max<std::size_t>(lane_tasks.size(), 1)));
    parallel_chunks(
        lane_tasks.size(), workers, /*grain=*/1,
        [&](unsigned, std::uint64_t begin, std::uint64_t end) {
          for (std::uint64_t k = begin; k < end; ++k) {
            const LaneTask task = lane_tasks[k];
            const std::uint32_t global =
                plan_.first_lane[task.tenant] + task.lane;
            if (lane_sessions[global]) {
              // Fed at cut time with epoch-resolved colors; drain replays
              // the cumulative feed (extend-never-rewrite, as below).
              report.tenants[task.tenant].lanes[task.lane] =
                  lane_sessions[global]->drain();
              continue;
            }
            const std::uint32_t lanes = plan_.lanes[task.tenant];
            const TenantReport& tr = report.tenants[task.tenant];
            std::vector<Workload::Access> accesses;
            std::vector<std::uint64_t> arrivals;
            for (std::size_t b = task.lane; b < tr.batches.size();
                 b += lanes) {
              accesses.push_back(tr.batches[b].nodes);
              arrivals.push_back(tr.batches[b].formed_cycle);
            }
            const engine::CycleEngine eng(*tenants_[task.tenant].mapping);
            report.tenants[task.tenant].lanes[task.lane] =
                eng.run(Workload(std::move(accesses)),
                        engine::ArrivalSchedule::explicit_cycles(
                            std::move(arrivals)),
                        tenants_[task.tenant].options.engine);
          }
        });

    // ---- Round assembly: this round's batches resolve their members. --
    for (std::size_t i = 0; i < N; ++i) {
      TenantReport& tr = report.tenants[i];
      const std::uint32_t lanes = plan_.lanes[i];
      for (std::size_t b = round_first_batch[i]; b < tr.batches.size();
           ++b) {
        const engine::EngineResult& res = tr.lanes[b % lanes];
        const std::uint64_t completion =
            res.records[b / lanes].completion;
        for (const std::size_t local : tr.batches[b].members) {
          Response& r = tr.responses[local];
          assert(r.status == RequestStatus::kPending);
          r.status = RequestStatus::kOk;
          r.completion_cycle = completion;
        }
      }
    }

    // ---- Retry scan, per tenant: discard timed-out completions into the
    // next round's intake at the cycle the caller would resend. ---------
    std::vector<IntakeEntry> retries;
    for (std::size_t i = 0; i < N; ++i) {
      const RetryPolicy& policy = tenants_[i].options.retry;
      if (!policy.enabled()) continue;
      TenantReport& tr = report.tenants[i];
      std::uint64_t tenant_retries = 0;
      for (std::size_t b = round_first_batch[i]; b < tr.batches.size();
           ++b) {
        for (const std::size_t local : tr.batches[b].members) {
          Response& r = tr.responses[local];
          const std::uint64_t residency =
              r.completion_cycle - r.dispatch_cycle;
          if (residency <= policy.attempt_timeout_cycles ||
              attempts[i][local] >= policy.max_retries) {
            continue;
          }
          attempts[i][local] += 1;
          r.retries = attempts[i][local];
          r.status = RequestStatus::kPending;
          retries.push_back(IntakeEntry{
              r.dispatch_cycle + policy.attempt_timeout_cycles +
                  policy.backoff(attempts[i][local]),
              static_cast<std::uint32_t>(i),
              static_cast<std::uint32_t>(local)});
          tenant_retries += 1;
        }
      }
      tenant_metrics[i].on_retried(tenant_retries);
      forest_metrics.on_retried(tenant_retries);
    }
    if (retries.empty()) break;
    std::sort(retries.begin(), retries.end(),
              [](const IntakeEntry& a, const IntakeEntry& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.tenant != b.tenant) return a.tenant < b.tenant;
                return a.local < b.local;
              });
    intake = std::move(retries);
  }
  report.ticks = ticks;
  report.rounds = rounds;

  // ---- Final accounting + metrics, deterministic order. ---------------
  std::uint64_t last = 0;
  std::uint64_t total_served_nodes = 0;
  for (std::size_t i = 0; i < N; ++i) {
    for (const Response& r : report.tenants[i].responses) {
      last = std::max(last, r.completion_cycle);
      if (r.status == RequestStatus::kOk) {
        tenant_metrics[i].on_completed(r);
        forest_metrics.on_completed(r);
      }
    }
    total_served_nodes += report.tenants[i].served_nodes;
  }
  report.final_cycle = last;

  // Fold the lane trajectories into the registry under stable names (lane
  // engines run without a registry so the parallel phase never shares
  // one), attributing fault counters to their tenant alone.
  for (std::size_t i = 0; i < N; ++i) {
    const std::string tprefix = "forest.t" + std::to_string(i);
    for (std::size_t l = 0; l < report.tenants[i].lanes.size(); ++l) {
      const engine::EngineResult& res = report.tenants[i].lanes[l];
      const std::string prefix = tprefix + ".lane" + std::to_string(l);
      reg.counter(prefix + ".accesses").add(res.accesses);
      reg.counter(prefix + ".requests").add(res.requests);
      reg.counter(prefix + ".busy_cycles").add(res.busy_cycles);
      tenant_metrics[i].on_replica_faults(res.rerouted_requests,
                                          res.stalled_cycles);
      forest_metrics.on_replica_faults(res.rerouted_requests,
                                       res.stalled_cycles);
    }
    if (planners[i]) tenant_metrics[i].set_migration(planners[i]->stats());
    if (selectors[i]) tenant_metrics[i].set_adaptive(selectors[i]->stats());
    if (tenants_[i].options.memory != nullptr) {
      tenant_metrics[i].set_memory(
          tenants_[i].options.memory->stats(report.tenants[i].memory));
    }
    report.tenants[i].metrics = tenant_metrics[i].summary();
  }

  // ---- Rollup: forest aggregate + per-tenant fairness rows. ----------
  Json roll = Json::object();
  roll.set("forest", forest_metrics.summary());
  Json jtenants = Json::array();
  for (std::size_t i = 0; i < N; ++i) {
    Json row = Json::object();
    row.set("id", Json(i));
    row.set("name", Json(report.tenants[i].name));
    row.set("weight", Json(weights[i]));
    row.set("rate", Json(tenants_[i].options.rate));
    row.set("lanes", Json(std::uint64_t{plan_.lanes[i]}));
    row.set("first_lane", Json(std::uint64_t{plan_.first_lane[i]}));
    if (pooled) row.set("reserved", Json(std::uint64_t{reserved[i]}));
    row.set("requests", Json(report.tenants[i].responses.size()));
    row.set("served_nodes", Json(report.tenants[i].served_nodes));
    row.set("batch_share",
            Json(total_served_nodes == 0
                     ? 0.0
                     : static_cast<double>(report.tenants[i].served_nodes) /
                           static_cast<double>(total_served_nodes)));
    row.set("metrics", report.tenants[i].metrics);
    jtenants.push_back(std::move(row));
  }
  roll.set("tenants", std::move(jtenants));
  roll.set("plan", plan_.to_json());
  if (pooled) roll.set("global_queue_bound", Json(G));
  report.metrics = std::move(roll);
  return report;
}

}  // namespace pmtree::serve
