// StagedRunner + the pipelined twins of Server::run / Forest::run.
//
// The control-plane halves of run_pipeline() are deliberate line-for-line
// copies of the frozen oracles in server.cpp / forest.cpp — the whole
// determinism argument is that the pipeline changes WHERE batch work
// executes (resolve/execute stages on the worker pool) and never WHAT the
// control plane decides. Keep any change here in lockstep with the oracle
// or the 1/2/8-worker differential suite (test_serve_pipeline) will say
// so.

#include "pmtree/serve/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <memory>
#include <utility>

#include "pmtree/serve/forest.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/simd.hpp"

namespace pmtree::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

std::size_t ceil_pow2(std::size_t n) {
  std::size_t c = 2;
  while (c < n) c *= 2;
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// TokenRing

TokenRing::TokenRing(std::size_t capacity)
    : slots_(ceil_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

bool TokenRing::push(BatchToken* token) noexcept {
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
    return false;
  }
  slots_[tail & mask_] = token;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

BatchToken* TokenRing::front() const noexcept {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  if (tail_.load(std::memory_order_acquire) == head) return nullptr;
  return slots_[head & mask_];
}

void TokenRing::pop() noexcept {
  head_.store(head_.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

// ---------------------------------------------------------------------------
// StagedRunner

StagedRunner::StagedRunner(std::vector<LaneSpec> lanes,
                           const PipelineOptions& options)
    : lanes_(std::move(lanes)) {
  const unsigned P = std::max(1u, options.workers);
  sessions_.reserve(lanes_.size());
  for (const LaneSpec& lane : lanes_) {
    assert(lane.mapping != nullptr);
    sessions_.emplace_back(*lane.mapping, lane.options);
  }
  results_.resize(lanes_.size());
  resolve_rings_.reserve(P);
  for (unsigned w = 0; w < P; ++w) resolve_rings_.emplace_back(options.queue_depth);
  lane_rings_.reserve(lanes_.size());
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    lane_rings_.emplace_back(options.queue_depth);
  }
  resolve_overflow_.resize(P);
  lane_overflow_.resize(lanes_.size());
  // With one hardware thread, a mid-round wake cannot add parallelism —
  // it only slices the same total work across more context switches — so
  // all waking is deferred to the round barrier there.
  eager_wake_ = std::thread::hardware_concurrency() > 1;
  workers_.reserve(P);
  for (unsigned w = 0; w < P; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

StagedRunner::~StagedRunner() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++signal_;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void StagedRunner::bump() noexcept {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++signal_;
  }
  cv_.notify_all();
}

void StagedRunner::begin_run() {
  // Workers are quiescent here: the previous run's final close_round
  // barrier (or construction) parked them, and the mutex handshake that
  // reported done_workers_ ordered their session/result writes before
  // these control-plane accesses.
  for (engine::EngineSession& session : sessions_) session.clear();
  for (engine::EngineResult& result : results_) result = {};
  token_count_ = 0;  // token storage is pooled across runs
  executed_round_.store(0, std::memory_order_relaxed);
  cut_round_.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  done_workers_ = 0;
}

bool StagedRunner::pump() {
  if (overflowed_ == 0) return false;
  bool moved = false;
  const auto top_up = [&](TokenRing& ring, std::deque<BatchToken*>& spill) {
    while (!spill.empty() && ring.push(spill.front())) {
      spill.pop_front();
      overflowed_ -= 1;
      moved = true;
    }
  };
  for (std::size_t l = 0; l < lane_rings_.size(); ++l) {
    top_up(lane_rings_[l], lane_overflow_[l]);
  }
  for (std::size_t w = 0; w < resolve_rings_.size(); ++w) {
    top_up(resolve_rings_[w], resolve_overflow_[w]);
  }
  return moved;
}

void StagedRunner::cut(FormedBatch batch, std::uint32_t lane,
                       std::uint32_t tenant, const TreeMapping* mapping) {
  assert(lane < lanes_.size());
  assert(mapping == nullptr ||
         mapping->num_modules() == lanes_[lane].mapping->num_modules());
  // Pooled token storage (deque: element addresses are stable). A reused
  // token keeps its colors capacity from earlier rounds; its ready flag
  // is lowered again before any ring publishes the pointer.
  if (token_count_ == tokens_.size()) tokens_.emplace_back();
  BatchToken& token = tokens_[token_count_];
  token_count_ += 1;
  token.batch = std::move(batch);
  token.lane = lane;
  token.tenant = tenant;
  token.mapping = mapping;
  token.max_conflicts = 0;
  token.mem = mem::TouchStats{};
  token.ready.store(false, std::memory_order_relaxed);

  batches_total_ += 1;
  const std::uint64_t in_flight =
      token_count_ - executed_round_.load(std::memory_order_relaxed);
  max_in_flight_ = std::max(max_in_flight_, in_flight);

  // FIFO through the overflow queue: once any token of a ring has
  // spilled, later tokens spill behind it even if the ring has room.
  const auto push_or_spill = [&](TokenRing& ring,
                                 std::deque<BatchToken*>& spill) {
    if (!spill.empty() || !ring.push(&token)) {
      spill.push_back(&token);
      overflowed_ += 1;
    }
  };
  const unsigned resolver =
      static_cast<unsigned>(cut_seq_++ % resolve_rings_.size());
  // Lane ring first: the lane owner's consumption is ready-gated, so the
  // token parks there inert until the resolver flips it. Pushing the
  // resolve ring last means a token is never resolvable before its lane
  // position exists.
  push_or_spill(lane_rings_[lane], lane_overflow_[lane]);
  push_or_spill(resolve_rings_[resolver], resolve_overflow_[resolver]);
  cut_round_.fetch_add(1, std::memory_order_release);

  // Wake batching: consumers that are awake poll their rings themselves;
  // parked ones are woken at most once per kWakeBatch cuts (and not at
  // all mid-round on single-CPU hosts — the barrier wakes everyone).
  cuts_since_wake_ += 1;
  if (eager_wake_) {
    pump();
    constexpr std::uint64_t kWakeBatch = 16;
    if (cuts_since_wake_ >= kWakeBatch &&
        idle_workers_.load(std::memory_order_relaxed) > 0) {
      cuts_since_wake_ = 0;
      bump();
    }
  }
}

void StagedRunner::close_round() {
  const auto start = Clock::now();
  round_ += 1;
  rounds_total_ += 1;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Release-ordered via the mutex AND the atomic store: a worker that
    // observes the new closed_round_ also observes every ring push above
    // (and the final cut_round_ count).
    closed_round_.store(round_, std::memory_order_release);
    ++signal_;
  }
  cv_.notify_all();
  cuts_since_wake_ = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (done_workers_ != workers_.size()) {
    lock.unlock();
    const bool moved = pump();  // rings are SPSC; producer side needs no lock
    lock.lock();
    if (moved) {
      ++signal_;
      cv_.notify_all();
    }
    if (done_workers_ == workers_.size()) break;
    const std::uint64_t seen = signal_;
    cv_.wait(lock, [&] {
      return done_workers_ == workers_.size() || signal_ != seen;
    });
  }
  assert(overflowed_ == 0);
  barrier_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
}

void StagedRunner::next_round() {
  // Safe without worker synchronization: close_round's barrier guarantees
  // every ring is empty and every worker is parked with no token pointer
  // in hand.
  token_count_ = 0;  // keep pooled token storage
  executed_round_.store(0, std::memory_order_relaxed);
  cut_round_.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  done_workers_ = 0;
}

void StagedRunner::resolve(BatchToken& token) {
  // The three per-batch kernels the pipeline lifts off the control plane:
  // coalesce (sort/dedup/run-decompose), SIMD color gather, SIMD conflict
  // histogram. All pure functions of the batch, so resolution order
  // across workers is irrelevant.
  token.batch.decomposition = BatchFormer::coalesce(token.batch.nodes);
  const std::vector<Node>& nodes = token.batch.nodes;
  token.colors.resize(nodes.size());
  const LaneSpec& lane = lanes_[token.lane];
  // Real-memory backend: load the batch's payloads from the arenas right
  // after the coalesce — genuine parallel memory traffic on the worker.
  // Pure observation into this token; assembly folds the order-invariant
  // totals, so the aggregate matches the oracle's control-plane touches.
  if (lane.memory != nullptr) token.mem = lane.memory->touch(nodes);
  // Epoch-mapping override (migration): still one devirtualized batch
  // call — MigratedMapping delegates to the base kernel plus one rotation
  // pass, so the SIMD gather path stays hot.
  const TreeMapping& mapping =
      token.mapping != nullptr ? *token.mapping : *lane.mapping;
  mapping.color_of_batch(
      nodes, std::span<Color>(token.colors.data(), token.colors.size()));

  if (!nodes.empty()) {
    const std::uint32_t modules = lane.mapping->num_modules();
    thread_local std::vector<std::uint32_t> counts;
    counts.resize(modules);
    simd::conflict_histogram(token.colors.data(), token.colors.size(),
                             counts.data(), modules);
    std::uint32_t max = 0;
    for (std::uint32_t m = 0; m < modules; ++m) max = std::max(max, counts[m]);
    token.max_conflicts = max;
    std::uint32_t seen = max_conflicts_.load(std::memory_order_relaxed);
    while (max > seen && !max_conflicts_.compare_exchange_weak(
                             seen, max, std::memory_order_relaxed)) {
    }
  }
}

bool StagedRunner::work_once(unsigned me, std::uint64_t& drained_upto) {
  bool progress = false;
  const unsigned P = static_cast<unsigned>(resolve_rings_.size());

  // Resolve stage: drain this worker's share of freshly cut tokens.
  // Timing wraps the whole drain (one clock pair per burst, not per
  // token); lane owners waiting on ready flags are woken by the single
  // bump after the stage loops.
  if (resolve_rings_[me].front() != nullptr) {
    const auto start = Clock::now();
    while (BatchToken* token = resolve_rings_[me].front()) {
      resolve_rings_[me].pop();
      // Touch the NEXT batch's node array while this one resolves: the
      // batches were formed a whole round ago, so every resolve begins
      // with a DRAM-cold read that prefetching hides almost entirely.
      if (const BatchToken* next = resolve_rings_[me].front()) {
        const char* p =
            reinterpret_cast<const char*>(next->batch.nodes.data());
        const char* const end = p + next->batch.nodes.size() * sizeof(Node);
        for (; p < end; p += 64) __builtin_prefetch(p, 0, 1);
      }
      resolve(*token);
      token->ready.store(true, std::memory_order_release);
      progress = true;
    }
    resolve_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }

  // Execute stage: feed owned lanes front-first; a lane ring's head is
  // consumed only once resolved, which pins the feed order to cut order.
  std::uint64_t executed = 0;
  for (std::size_t l = me; l < lane_rings_.size(); l += P) {
    if (lane_rings_[l].front() == nullptr) continue;
    const auto start = Clock::now();
    while (BatchToken* token = lane_rings_[l].front()) {
      if (!token->ready.load(std::memory_order_acquire)) break;
      sessions_[l].feed_resolved(token->colors, token->batch.formed_cycle);
      lane_rings_[l].pop();
      executed += 1;
      progress = true;
    }
    execute_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  if (executed != 0) {
    executed_round_.fetch_add(executed, std::memory_order_release);
  }
  if (progress) bump();  // lane owners / the pumping control may be parked

  // Drain at the round barrier: once the round is closed and every cut
  // token of the round has been executed (which implies this worker's
  // rings are empty AND the control plane's overflow queues are fully
  // delivered), simulate the owned lanes' cumulative feeds.
  const std::uint64_t closed = closed_round_.load(std::memory_order_acquire);
  if (closed > drained_upto &&
      executed_round_.load(std::memory_order_acquire) ==
          cut_round_.load(std::memory_order_acquire)) {
    const auto start = Clock::now();
    for (std::size_t l = me; l < lane_rings_.size(); l += P) {
      assert(lane_rings_[l].front() == nullptr);
      results_[l] = sessions_[l].drain();
    }
    drain_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
    drained_upto = closed;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_workers_ += 1;
      ++signal_;
    }
    cv_.notify_all();
    progress = true;
  }
  return progress;
}

void StagedRunner::worker_loop(unsigned me) {
  std::uint64_t drained_upto = 0;
  for (;;) {
    if (work_once(me, drained_upto)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) return;
    const std::uint64_t seen = signal_;
    lock.unlock();
    // Re-check after snapshotting the signal: any state change since the
    // snapshot bumps signal_, so the wait below cannot miss it.
    if (work_once(me, drained_upto)) continue;
    lock.lock();
    idle_workers_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lock, [&] { return shutdown_ || signal_ != seen; });
    idle_workers_.fetch_sub(1, std::memory_order_relaxed);
    if (shutdown_) return;
  }
}

Json StagedRunner::stats() const {
  Json stage = Json::object();
  stage.set("control", Json(control_ns_.load(std::memory_order_relaxed)));
  stage.set("resolve", Json(resolve_ns_.load(std::memory_order_relaxed)));
  stage.set("execute", Json(execute_ns_.load(std::memory_order_relaxed)));
  stage.set("drain", Json(drain_ns_.load(std::memory_order_relaxed)));
  stage.set("barrier", Json(barrier_ns_.load(std::memory_order_relaxed)));

  Json j = Json::object();
  j.set("workers", Json(std::uint64_t{workers_.size()}));
  j.set("lanes", Json(std::uint64_t{lanes_.size()}));
  j.set("rounds", Json(rounds_total_));
  j.set("batches", Json(batches_total_));
  j.set("max_in_flight", Json(max_in_flight_));
  j.set("stage_ns", stage);
  j.set("max_batch_conflicts",
        Json(std::uint64_t{max_conflicts_.load(std::memory_order_relaxed)}));
  j.set("simd_kernel", Json(simd::active_kernel()));
  return j;
}

// ---------------------------------------------------------------------------
// Server::run_pipeline — the staged twin of Server::run (server.cpp).

ServeReport Server::run_pipeline() {
  const std::uint64_t T = options_.tick_cycles;
  const std::uint32_t R = options_.replicas;
  if (!runner_) {
    std::vector<LaneSpec> lanes(
        R, LaneSpec{&mapping_, options_.engine, options_.memory});
    runner_ = std::make_unique<StagedRunner>(std::move(lanes),
                                             options_.pipeline);
  }
  StagedRunner& runner = *runner_;
  runner.begin_run();

  // ---- Canonical order: identical to the oracle. ----------------------
  // The oracle concatenates the inboxes and stable_sorts. Inboxes are
  // striped by client, so two requests with equal canonical keys (same
  // submit cycle and client) always share a stripe, and whenever every
  // stripe is already in canonical order — true for any client that
  // submits in nondecreasing submit-cycle order, the common case — a
  // k-way merge of the stripes IS the stable sort's output: one move per
  // request instead of log(n) merge passes over Request objects. An
  // out-of-order stripe (concurrent submitters racing a shared stripe)
  // falls back to the oracle's exact sort.
  const auto canonical_less = [](const Request& a, const Request& b) {
    if (a.submit_cycle != b.submit_cycle)
      return a.submit_cycle < b.submit_cycle;
    if (a.client != b.client) return a.client < b.client;
    return a.seq < b.seq;
  };
  std::array<std::vector<Request>, kStripes> stripes;
  for (std::size_t s = 0; s < kStripes; ++s) {
    const std::lock_guard<std::mutex> lock(inboxes_[s].mutex);
    stripes[s] = std::move(inboxes_[s].requests);
    inboxes_[s].requests.clear();
  }
  // Fused intake scan: sortedness, whether stripe s holds exactly client
  // s (true whenever client ids stay below kStripes — submit routes
  // client c to stripe c % kStripes), and the submit-cycle range. The
  // last two decide whether the counting merge below applies.
  std::size_t total = 0;
  bool stripes_sorted = true;
  bool identity_stripes = true;
  std::uint64_t max_submit = 0;
  for (std::size_t s = 0; s < kStripes; ++s) {
    const std::vector<Request>& stripe = stripes[s];
    total += stripe.size();
    for (std::size_t i = 0; i < stripe.size(); ++i) {
      const Request& r = stripe[i];
      identity_stripes = identity_stripes && r.client == s;
      if (r.submit_cycle > max_submit) max_submit = r.submit_cycle;
      if (i + 1 < stripe.size()) {
        stripes_sorted =
            stripes_sorted && !canonical_less(stripe[i + 1], r);
      }
    }
  }

  ServeMetrics metrics(registry_);
  ServeReport report;
  report.responses.resize(total);
  struct IntakeEntry {
    std::uint64_t arrival = 0;
    std::size_t index = 0;
  };
  std::vector<IntakeEntry> intake(total);
  // Response identity fields and the intake schedule are filled as each
  // request lands at its canonical rank — one pass over the per-request
  // data instead of merge + two separate initialization sweeps.
  const auto place = [&](std::size_t i, const Request& src) {
    Response& resp = report.responses[i];
    resp.client = src.client;
    resp.seq = src.seq;
    resp.submit_cycle = src.submit_cycle;
    intake[i] = IntakeEntry{src.submit_cycle, i};
  };

  std::vector<Request> requests;
  requests.reserve(total);
  if (stripes_sorted && identity_stripes &&
      max_submit < 4 * static_cast<std::uint64_t>(total) + 4096) {
    // Stable counting merge by submit cycle, for the common dense case.
    // With stripe s holding exactly client s, visiting stripes in id
    // order emits canonical (submit, client, seq) order directly: the
    // sort is stable, so equal submit cycles land client-ordered across
    // stripes and seq-ordered within one. One random-access move per
    // request — no per-request heap sifting at all.
    std::vector<std::uint32_t> starts(max_submit + 2, 0);
    for (const std::vector<Request>& stripe : stripes) {
      for (const Request& r : stripe) starts[r.submit_cycle + 1] += 1;
    }
    for (std::size_t c = 1; c < starts.size(); ++c) starts[c] += starts[c - 1];
    requests.resize(total);
    for (std::vector<Request>& stripe : stripes) {
      for (Request& src : stripe) {
        const std::size_t dst = starts[src.submit_cycle];
        starts[src.submit_cycle] += 1;
        place(dst, src);
        requests[dst] = std::move(src);
      }
    }
  } else if (stripes_sorted) {
    // Min-heap over the stripe heads with the canonical key CACHED in the
    // heap node: the comparator touches only the 32-byte Head array, not
    // two Request objects in different stripes — the request itself is
    // read once, when it is moved out. Heads never compare equal: equal
    // canonical keys imply the same client, hence the same stripe.
    struct Head {
      std::uint64_t submit = 0;
      std::uint64_t seq = 0;
      std::uint32_t client = 0;
      std::uint32_t stripe = 0;
      std::size_t pos = 0;
    };
    const auto heap_after = [](const Head& x, const Head& y) {
      if (x.submit != y.submit) return y.submit < x.submit;
      if (x.client != y.client) return y.client < x.client;
      return y.seq < x.seq;
    };
    std::vector<Head> heads;
    for (std::size_t s = 0; s < kStripes; ++s) {
      if (!stripes[s].empty()) {
        const Request& r = stripes[s].front();
        heads.push_back(Head{r.submit_cycle, r.seq, r.client,
                             static_cast<std::uint32_t>(s), 0});
      }
    }
    std::make_heap(heads.begin(), heads.end(), heap_after);
    while (!heads.empty()) {
      std::pop_heap(heads.begin(), heads.end(), heap_after);
      Head& h = heads.back();
      Request& src = stripes[h.stripe][h.pos];
      place(requests.size(), src);
      requests.push_back(std::move(src));
      h.pos += 1;
      if (h.pos < stripes[h.stripe].size()) {
        const Request& next = stripes[h.stripe][h.pos];
        h.submit = next.submit_cycle;
        h.seq = next.seq;
        h.client = next.client;
        std::push_heap(heads.begin(), heads.end(), heap_after);
      } else {
        heads.pop_back();
      }
    }
  } else {
    for (std::vector<Request>& stripe : stripes) {
      requests.insert(requests.end(),
                      std::make_move_iterator(stripe.begin()),
                      std::make_move_iterator(stripe.end()));
    }
    std::stable_sort(requests.begin(), requests.end(), canonical_less);
    for (std::size_t i = 0; i < requests.size(); ++i) place(i, requests[i]);
  }

  metrics.on_submitted(requests.size());

  // ---- Skew-adaptive migration: identical control-plane calls, in
  // identical (cut) order, to the oracle in server.cpp — the planner is a
  // pure function of the cut sequence, so both paths mint the same epoch
  // mappings. Batches carry their epoch's mapping into the resolve stage
  // via the token override. Faulted configs never reach here (run()
  // dispatch), so no fault guard is repeated. ---------------------------
  const bool migrate = options_.migration.enabled();
  std::unique_ptr<MigrationPlanner> planner;
  if (migrate) {
    planner = std::make_unique<MigrationPlanner>(mapping_, options_.migration);
  }

  // ---- Adaptive mapping selection: same epoch protocol as migration —
  // identical control-plane observe() calls in identical cut order to the
  // oracle, epoch mapping carried into the resolve stage via the token
  // override. -----------------------------------------------------------
  const bool adapt = !migrate && options_.adaptive.enabled();
  std::unique_ptr<AdaptiveSelector> selector;
  if (adapt) {
    selector = std::make_unique<AdaptiveSelector>(mapping_, options_.adaptive);
  }

  // ---- Read-write mode: the mutation barrier runs at the cut, on the
  // control plane, before the batch enters the staged pipeline — the
  // TokenRing's release-push publishes the colors to the resolve workers.
  // Identical cut sequence to the oracle ⇒ identical mutation log. ------
  const bool dynamic = options_.dyn.enabled();
  assert(!(dynamic && migrate) &&
         "dyn serving and skew migration are mutually exclusive");
  assert(!(dynamic && adapt) &&
         "dyn serving and adaptive selection are mutually exclusive");
  assert(!(options_.migration.enabled() && options_.adaptive.enabled()) &&
         "migration and adaptive selection both own the epoch mapping");
  assert(!(dynamic && options_.memory != nullptr) &&
         "the real-memory arenas are sized for a frozen tree");
  std::vector<char> mutation_applied(requests.size(), 0);

  const RetryPolicy& retry_policy = options_.retry;
  AdmissionController admission(options_.admission);
  BatchFormer former(options_.batch);
  std::uint64_t ticks = 0;
  std::uint64_t rounds = 0;
  std::vector<std::size_t> scratch;
  std::vector<std::uint32_t> attempts(requests.size(), 0);

  std::size_t unresolved = 0;
  const auto resolve = [&](std::size_t index, RequestStatus status,
                           std::uint64_t cycle) {
    Response& r = report.responses[index];
    assert(r.status == RequestStatus::kPending);
    r.status = status;
    r.completion_cycle = cycle;
    unresolved -= 1;
  };

  report.replicas.resize(R);
  std::uint64_t t = 0;

  while (true) {
    rounds += 1;
    const std::size_t round_first_batch = report.batches.size();
    std::size_t next_intake = 0;
    unresolved = intake.size();
    const auto control_start = Clock::now();

    while (unresolved > 0) {
      ticks += 1;
      // Phase 1: expire.
      scratch.clear();
      admission.expire(t, scratch);
      for (const std::size_t index : scratch) {
        resolve(index, RequestStatus::kExpired, t);
      }
      metrics.on_expired(scratch.size());

      // Phase 2: promote.
      scratch.clear();
      admission.promote(t, scratch);
      metrics.on_promoted(scratch.size());
      for (const std::size_t index : scratch) {
        report.responses[index].admitted_cycle = t;
      }

      // Phase 3: intake.
      while (next_intake < intake.size() &&
             intake[next_intake].arrival <= t) {
        const std::size_t index = intake[next_intake++].index;
        switch (admission.offer(index, requests[index], t)) {
          case AdmissionController::Decision::kAdmitted:
            report.responses[index].admitted_cycle = t;
            metrics.on_admitted();
            break;
          case AdmissionController::Decision::kBlocked:
            metrics.on_blocked();
            break;
          case AdmissionController::Decision::kShedNow:
            resolve(index, RequestStatus::kShed, t);
            metrics.on_shed();
            break;
          case AdmissionController::Decision::kDeadOnArrival:
            resolve(index, RequestStatus::kExpired, t);
            metrics.on_expired(1);
            break;
        }
      }

      // Phase 4: cut batches — raw (no coalesce; that is the resolve
      // stage's job) and straight into the pipeline. metrics.on_batch is
      // deferred to assembly, where the coalesced node set exists; its
      // instruments are order-insensitive counters/histograms, so the
      // deferred values match the oracle's exactly. With migration or
      // adaptive selection on, form_one (coalesced) replaces form_one_raw
      // so the planner/selector sees the same node multiset per batch as
      // the oracle; resolve()'s coalesce is idempotent on an already
      // sorted-deduped batch.
      while (former.due(t, admission)) {
        FormedBatch batch = (migrate || adapt)
                                ? former.form_one(t, admission)
                                : former.form_one_raw(t, admission);
        for (const std::size_t index : batch.members) {
          Response& r = report.responses[index];
          r.dispatch_cycle = t;
          r.batch = batch.id;
        }
        unresolved -= batch.members.size();
        if (dynamic) {
          apply_batch_mutations(batch, requests, options_.dyn, t,
                                mutation_applied, report.mutations);
        }
        const std::uint32_t lane = static_cast<std::uint32_t>(batch.id % R);
        const TreeMapping* epoch = nullptr;
        if (migrate) {
          planner->observe(batch.nodes, t);
          epoch = &planner->current();
        } else if (adapt) {
          selector->observe(batch.nodes, t);
          epoch = &selector->current();
        }
        runner.cut(std::move(batch), lane, 0, epoch);
      }

      // Phase 5: observe.
      metrics.on_tick(admission.pending_count(), admission.blocked_count());

      if (admission.idle() && next_intake < intake.size()) {
        const std::uint64_t arrival = intake[next_intake].arrival;
        const std::uint64_t next_tick = (arrival + T - 1) / T * T;
        t = next_tick > t ? next_tick : t + T;
      } else {
        t += T;
      }
    }

    runner.add_control_ns(ns_since(control_start));

    // ---- Round barrier: resolve/execute/drain complete for the round. --
    runner.close_round();

    // ---- Assembly: batches land in the report in cut (= id) order. -----
    report.batches.reserve(report.batches.size() + runner.token_count());
    for (std::size_t tk = 0; tk < runner.token_count(); ++tk) {
      BatchToken& token = runner.token(tk);
      metrics.on_batch(token.batch);
      report.memory += token.mem;
      report.batches.push_back(std::move(token.batch));
    }
    for (std::size_t b = round_first_batch; b < report.batches.size(); ++b) {
      const engine::EngineResult& res = runner.result(
          static_cast<std::uint32_t>(b % R));
      const std::uint64_t completion = res.records[b / R].completion;
      for (const std::size_t index : report.batches[b].members) {
        Response& r = report.responses[index];
        assert(r.status == RequestStatus::kPending);
        r.status = RequestStatus::kOk;
        r.completion_cycle = completion;
      }
    }

    // ---- Retry scan: identical to the oracle. --------------------------
    std::vector<IntakeEntry> retries;
    if (retry_policy.enabled()) {
      for (std::size_t b = round_first_batch; b < report.batches.size();
           ++b) {
        for (const std::size_t index : report.batches[b].members) {
          Response& r = report.responses[index];
          const std::uint64_t residency =
              r.completion_cycle - r.dispatch_cycle;
          if (residency <= retry_policy.attempt_timeout_cycles ||
              attempts[index] >= retry_policy.max_retries) {
            continue;
          }
          attempts[index] += 1;
          r.retries = attempts[index];
          r.status = RequestStatus::kPending;
          retries.push_back(IntakeEntry{
              r.dispatch_cycle + retry_policy.attempt_timeout_cycles +
                  retry_policy.backoff(attempts[index]),
              index});
        }
      }
    }
    if (retries.empty()) break;
    std::sort(retries.begin(), retries.end(),
              [](const IntakeEntry& a, const IntakeEntry& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                return a.index < b.index;
              });
    metrics.on_retried(retries.size());
    intake = std::move(retries);
    runner.next_round();
  }
  report.ticks = ticks;
  report.rounds = rounds;

  for (std::uint32_t r = 0; r < R; ++r) {
    report.replicas[r] = runner.result(r);
  }

  // ---- Final accounting + metrics: identical to the oracle, plus the
  // pipeline stage-attribution section. ---------------------------------
  std::uint64_t last = 0;
  for (const Response& r : report.responses) {
    last = std::max(last, r.completion_cycle);
    if (r.status == RequestStatus::kOk) metrics.on_completed(r);
  }
  report.final_cycle = last;

  for (std::uint32_t r = 0; r < R; ++r) {
    const std::string prefix = "serve.replica" + std::to_string(r);
    const engine::EngineResult& res = report.replicas[r];
    registry_.counter(prefix + ".accesses").add(res.accesses);
    registry_.counter(prefix + ".requests").add(res.requests);
    registry_.counter(prefix + ".busy_cycles").add(res.busy_cycles);
    metrics.on_replica_faults(res.rerouted_requests, res.stalled_cycles);
  }

  metrics.set_pipeline(runner.stats());
  if (migrate) metrics.set_migration(planner->stats());
  if (adapt) metrics.set_adaptive(selector->stats());
  if (options_.memory != nullptr) {
    metrics.set_memory(options_.memory->stats(report.memory));
  }
  if (dynamic) metrics.set_dyn(dyn_stats(options_.dyn, report.mutations));
  report.metrics = metrics.summary();
  return report;
}

// ---------------------------------------------------------------------------
// Forest::run_pipeline — the staged twin of Forest::run (forest.cpp).

ForestReport Forest::run_pipeline() {
  ensure_plan();
  const std::size_t N = tenants_.size();
  const std::uint64_t T = options_.tick_cycles;
  if (!runner_) {
    std::vector<LaneSpec> lanes(plan_.total_lanes);
    for (std::size_t i = 0; i < N; ++i) {
      for (std::uint32_t l = 0; l < plan_.lanes[i]; ++l) {
        lanes[plan_.first_lane[i] + l] =
            LaneSpec{tenants_[i].mapping, tenants_[i].options.engine,
                     tenants_[i].options.memory};
      }
    }
    runner_ = std::make_unique<StagedRunner>(std::move(lanes),
                                             options_.pipeline);
  }
  StagedRunner& runner = *runner_;
  runner.begin_run();

  // ---- Canonical order + per-tenant split: identical to the oracle. ---
  std::vector<Submitted> all = drain_inboxes();
  std::stable_sort(all.begin(), all.end(),
                   [](const Submitted& a, const Submitted& b) {
                     if (a.request.submit_cycle != b.request.submit_cycle)
                       return a.request.submit_cycle < b.request.submit_cycle;
                     if (a.tenant != b.tenant) return a.tenant < b.tenant;
                     if (a.request.client != b.request.client)
                       return a.request.client < b.request.client;
                     return a.request.seq < b.request.seq;
                   });

  ForestReport report;
  report.plan = plan_;
  report.tenants.resize(N);

  std::vector<std::vector<Request>> requests(N);
  struct IntakeEntry {
    std::uint64_t arrival = 0;
    std::uint32_t tenant = 0;
    std::uint32_t local = 0;
  };
  std::vector<IntakeEntry> intake;
  intake.reserve(all.size());
  for (Submitted& s : all) {
    const std::uint32_t local =
        static_cast<std::uint32_t>(requests[s.tenant].size());
    intake.push_back(IntakeEntry{s.request.submit_cycle, s.tenant, local});
    requests[s.tenant].push_back(std::move(s.request));
  }
  for (std::size_t i = 0; i < N; ++i) {
    TenantReport& t = report.tenants[i];
    t.name = tenants_[i].options.name;
    t.responses.resize(requests[i].size());
    t.lanes.resize(plan_.lanes.empty() ? 0 : plan_.lanes[i]);
    for (std::size_t k = 0; k < requests[i].size(); ++k) {
      Response& r = t.responses[k];
      r.client = requests[i][k].client;
      r.seq = requests[i][k].seq;
      r.submit_cycle = requests[i][k].submit_cycle;
    }
  }

  engine::MetricsRegistry& reg = registry_;
  ServeMetrics forest_metrics(reg, "forest");
  std::vector<ServeMetrics> tenant_metrics;
  tenant_metrics.reserve(N);
  std::vector<AdmissionController> admission;
  admission.reserve(N);
  std::vector<BatchFormer> former;
  former.reserve(N);
  std::vector<std::uint64_t> weights(N, 1);
  for (std::size_t i = 0; i < N; ++i) {
    tenant_metrics.emplace_back(reg, "forest.t" + std::to_string(i));
    admission.emplace_back(tenants_[i].options.admission);
    former.emplace_back(tenants_[i].options.batch);
    weights[i] = tenants_[i].options.weight;
    tenant_metrics[i].on_submitted(requests[i].size());
  }
  forest_metrics.on_submitted(all.size());
  DeficitRoundRobin drr(weights, options_.drr_quantum_nodes);

  // ---- Per-tenant skew-adaptive migration and adaptive selection: same
  // planner/selector protocol as the Server twin, one per opted-in tenant
  // (pipeline dispatch already requires every tenant healthy, so no fault
  // guard is repeated). ---------------------------------------------------
  std::vector<std::unique_ptr<MigrationPlanner>> planners(N);
  std::vector<std::unique_ptr<AdaptiveSelector>> selectors(N);
  for (std::size_t i = 0; i < N; ++i) {
    assert(!(tenants_[i].options.migration.enabled() &&
             tenants_[i].options.adaptive.enabled()) &&
           "per-tenant migration and adaptive selection are mutually "
           "exclusive");
    if (tenants_[i].options.migration.enabled()) {
      planners[i] = std::make_unique<MigrationPlanner>(
          *tenants_[i].mapping, tenants_[i].options.migration);
    } else if (tenants_[i].options.adaptive.enabled()) {
      selectors[i] = std::make_unique<AdaptiveSelector>(
          *tenants_[i].mapping, tenants_[i].options.adaptive);
    }
  }

  const bool pooled = options_.global_queue_bound != 0 && N > 0;
  const std::size_t G =
      pooled ? std::max(options_.global_queue_bound, N) : 0;
  std::vector<std::uint32_t> reserved(N, 0);
  if (pooled) {
    std::vector<double> w(N);
    for (std::size_t i = 0; i < N; ++i) {
      w[i] = static_cast<double>(weights[i] == 0 ? 1 : weights[i]);
    }
    reserved = apportion(static_cast<std::uint32_t>(G), w);
    for (std::uint32_t& r : reserved) r = std::max(r, 1u);
  }
  std::size_t total_pending = 0;
  const auto recount_pending = [&]() {
    total_pending = 0;
    for (const AdmissionController& a : admission) {
      total_pending += a.pending_count();
    }
  };

  std::uint64_t ticks = 0;
  std::uint64_t rounds = 0;
  std::uint64_t t = 0;
  std::vector<std::size_t> scratch;
  std::vector<std::vector<std::uint32_t>> attempts(N);
  std::vector<std::size_t> round_first_batch(N, 0);
  for (std::size_t i = 0; i < N; ++i) {
    attempts[i].assign(requests[i].size(), 0);
  }

  std::size_t unresolved = 0;
  const auto resolve = [&](std::uint32_t tenant, std::uint32_t local,
                           RequestStatus status, std::uint64_t cycle) {
    Response& r = report.tenants[tenant].responses[local];
    assert(r.status == RequestStatus::kPending);
    r.status = status;
    r.completion_cycle = cycle;
    unresolved -= 1;
  };

  while (true) {
    rounds += 1;
    std::size_t next_intake = 0;
    unresolved = intake.size();
    for (std::size_t i = 0; i < N; ++i) {
      round_first_batch[i] = report.tenants[i].batches.size();
    }
    const auto control_start = Clock::now();

    while (unresolved > 0) {
      ticks += 1;
      // Phase 1: expire, per tenant in id order.
      for (std::size_t i = 0; i < N; ++i) {
        scratch.clear();
        admission[i].expire(t, scratch);
        for (const std::size_t local : scratch) {
          resolve(static_cast<std::uint32_t>(i),
                  static_cast<std::uint32_t>(local), RequestStatus::kExpired,
                  t);
        }
        tenant_metrics[i].on_expired(scratch.size());
        forest_metrics.on_expired(scratch.size());
      }
      recount_pending();

      // Phase 2: promote, bounded by pool headroom.
      for (std::size_t i = 0; i < N; ++i) {
        std::size_t limit = ~std::size_t{0};
        if (pooled) {
          const std::size_t mine = admission[i].pending_count();
          const std::size_t reserve_room =
              reserved[i] > mine ? reserved[i] - mine : 0;
          const std::size_t shared_room =
              total_pending < G ? G - total_pending : 0;
          limit = reserve_room + shared_room;
        }
        scratch.clear();
        admission[i].promote(t, scratch, limit);
        for (const std::size_t local : scratch) {
          report.tenants[i].responses[local].admitted_cycle = t;
        }
        tenant_metrics[i].on_promoted(scratch.size());
        forest_metrics.on_promoted(scratch.size());
        total_pending += scratch.size();
      }

      // Phase 3: intake, canonical (arrival, tenant, local) order.
      while (next_intake < intake.size() &&
             intake[next_intake].arrival <= t) {
        const IntakeEntry e = intake[next_intake++];
        const std::size_t i = e.tenant;
        const bool pool_ok =
            !pooled || admission[i].pending_count() < reserved[i] ||
            total_pending < G;
        switch (admission[i].offer(e.local, requests[i][e.local], t,
                                   pool_ok)) {
          case AdmissionController::Decision::kAdmitted:
            report.tenants[i].responses[e.local].admitted_cycle = t;
            tenant_metrics[i].on_admitted();
            forest_metrics.on_admitted();
            total_pending += 1;
            break;
          case AdmissionController::Decision::kBlocked:
            tenant_metrics[i].on_blocked();
            forest_metrics.on_blocked();
            break;
          case AdmissionController::Decision::kShedNow:
            resolve(e.tenant, e.local, RequestStatus::kShed, t);
            tenant_metrics[i].on_shed();
            forest_metrics.on_shed();
            break;
          case AdmissionController::Decision::kDeadOnArrival:
            resolve(e.tenant, e.local, RequestStatus::kExpired, t);
            tenant_metrics[i].on_expired(1);
            forest_metrics.on_expired(1);
            break;
        }
      }

      // Phase 4: DRR batch formation — raw cuts into the pipeline;
      // on_batch deferred to assembly (same argument as the Server twin).
      for (std::size_t i = 0; i < N; ++i) {
        if (admission[i].pending_count() == 0) {
          drr.reset(i);
          continue;
        }
        drr.begin_turn(i);
        while (former[i].due(t, admission[i])) {
          const std::uint64_t cost = former[i].next_batch_cost(admission[i]);
          if (!drr.affords(i, cost)) break;
          drr.spend(i, cost);
          // Migrating/adapting tenants cut coalesced (form_one) so the
          // planner/selector sees the oracle's exact node multiset per
          // batch.
          FormedBatch batch = (planners[i] || selectors[i])
                                  ? former[i].form_one(t, admission[i])
                                  : former[i].form_one_raw(t, admission[i]);
          for (const std::size_t local : batch.members) {
            Response& r = report.tenants[i].responses[local];
            r.dispatch_cycle = t;
            r.batch = batch.id;
          }
          unresolved -= batch.members.size();
          report.tenants[i].served_nodes += batch.requested_nodes;
          const std::uint32_t lane =
              plan_.first_lane[i] +
              static_cast<std::uint32_t>(batch.id % plan_.lanes[i]);
          const TreeMapping* epoch = nullptr;
          if (planners[i]) {
            planners[i]->observe(batch.nodes, t);
            epoch = &planners[i]->current();
          } else if (selectors[i]) {
            selectors[i]->observe(batch.nodes, t);
            epoch = &selectors[i]->current();
          }
          runner.cut(std::move(batch), lane, static_cast<std::uint32_t>(i),
                     epoch);
        }
        if (admission[i].pending_count() == 0) drr.reset(i);
      }
      recount_pending();

      // Phase 5: observe.
      std::size_t total_blocked = 0;
      for (std::size_t i = 0; i < N; ++i) {
        tenant_metrics[i].on_tick(admission[i].pending_count(),
                                  admission[i].blocked_count());
        total_blocked += admission[i].blocked_count();
      }
      forest_metrics.on_tick(total_pending, total_blocked);

      bool idle = true;
      for (const AdmissionController& a : admission) {
        idle = idle && a.idle();
      }
      if (idle && next_intake < intake.size()) {
        const std::uint64_t arrival = intake[next_intake].arrival;
        const std::uint64_t next_tick = (arrival + T - 1) / T * T;
        t = next_tick > t ? next_tick : t + T;
      } else {
        t += T;
      }
    }

    runner.add_control_ns(ns_since(control_start));
    runner.close_round();

    // ---- Assembly: tokens in cut order; per-tenant id order follows. ---
    for (std::size_t tk = 0; tk < runner.token_count(); ++tk) {
      BatchToken& token = runner.token(tk);
      tenant_metrics[token.tenant].on_batch(token.batch);
      forest_metrics.on_batch(token.batch);
      report.tenants[token.tenant].memory += token.mem;
      report.tenants[token.tenant].batches.push_back(std::move(token.batch));
    }
    for (std::size_t i = 0; i < N; ++i) {
      TenantReport& tr = report.tenants[i];
      const std::uint32_t lanes = plan_.lanes[i];
      for (std::size_t b = round_first_batch[i]; b < tr.batches.size();
           ++b) {
        const engine::EngineResult& res = runner.result(
            plan_.first_lane[i] + static_cast<std::uint32_t>(b % lanes));
        const std::uint64_t completion = res.records[b / lanes].completion;
        for (const std::size_t local : tr.batches[b].members) {
          Response& r = tr.responses[local];
          assert(r.status == RequestStatus::kPending);
          r.status = RequestStatus::kOk;
          r.completion_cycle = completion;
        }
      }
    }

    // ---- Retry scan: identical to the oracle. --------------------------
    std::vector<IntakeEntry> retries;
    for (std::size_t i = 0; i < N; ++i) {
      const RetryPolicy& policy = tenants_[i].options.retry;
      if (!policy.enabled()) continue;
      TenantReport& tr = report.tenants[i];
      std::uint64_t tenant_retries = 0;
      for (std::size_t b = round_first_batch[i]; b < tr.batches.size();
           ++b) {
        for (const std::size_t local : tr.batches[b].members) {
          Response& r = tr.responses[local];
          const std::uint64_t residency =
              r.completion_cycle - r.dispatch_cycle;
          if (residency <= policy.attempt_timeout_cycles ||
              attempts[i][local] >= policy.max_retries) {
            continue;
          }
          attempts[i][local] += 1;
          r.retries = attempts[i][local];
          r.status = RequestStatus::kPending;
          retries.push_back(IntakeEntry{
              r.dispatch_cycle + policy.attempt_timeout_cycles +
                  policy.backoff(attempts[i][local]),
              static_cast<std::uint32_t>(i),
              static_cast<std::uint32_t>(local)});
          tenant_retries += 1;
        }
      }
      tenant_metrics[i].on_retried(tenant_retries);
      forest_metrics.on_retried(tenant_retries);
    }
    if (retries.empty()) break;
    std::sort(retries.begin(), retries.end(),
              [](const IntakeEntry& a, const IntakeEntry& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.tenant != b.tenant) return a.tenant < b.tenant;
                return a.local < b.local;
              });
    intake = std::move(retries);
    runner.next_round();
  }
  report.ticks = ticks;
  report.rounds = rounds;

  for (std::size_t i = 0; i < N; ++i) {
    for (std::uint32_t l = 0; l < plan_.lanes[i]; ++l) {
      report.tenants[i].lanes[l] = runner.result(plan_.first_lane[i] + l);
    }
  }

  // ---- Final accounting + rollup: identical to the oracle, plus the
  // pipeline section on the forest aggregate. ---------------------------
  std::uint64_t last = 0;
  std::uint64_t total_served_nodes = 0;
  for (std::size_t i = 0; i < N; ++i) {
    for (const Response& r : report.tenants[i].responses) {
      last = std::max(last, r.completion_cycle);
      if (r.status == RequestStatus::kOk) {
        tenant_metrics[i].on_completed(r);
        forest_metrics.on_completed(r);
      }
    }
    total_served_nodes += report.tenants[i].served_nodes;
  }
  report.final_cycle = last;

  for (std::size_t i = 0; i < N; ++i) {
    const std::string tprefix = "forest.t" + std::to_string(i);
    for (std::size_t l = 0; l < report.tenants[i].lanes.size(); ++l) {
      const engine::EngineResult& res = report.tenants[i].lanes[l];
      const std::string prefix = tprefix + ".lane" + std::to_string(l);
      reg.counter(prefix + ".accesses").add(res.accesses);
      reg.counter(prefix + ".requests").add(res.requests);
      reg.counter(prefix + ".busy_cycles").add(res.busy_cycles);
      tenant_metrics[i].on_replica_faults(res.rerouted_requests,
                                          res.stalled_cycles);
      forest_metrics.on_replica_faults(res.rerouted_requests,
                                       res.stalled_cycles);
    }
    if (planners[i]) tenant_metrics[i].set_migration(planners[i]->stats());
    if (selectors[i]) tenant_metrics[i].set_adaptive(selectors[i]->stats());
    if (tenants_[i].options.memory != nullptr) {
      tenant_metrics[i].set_memory(
          tenants_[i].options.memory->stats(report.tenants[i].memory));
    }
    report.tenants[i].metrics = tenant_metrics[i].summary();
  }

  forest_metrics.set_pipeline(runner.stats());
  Json roll = Json::object();
  roll.set("forest", forest_metrics.summary());
  Json jtenants = Json::array();
  for (std::size_t i = 0; i < N; ++i) {
    Json row = Json::object();
    row.set("id", Json(i));
    row.set("name", Json(report.tenants[i].name));
    row.set("weight", Json(weights[i]));
    row.set("rate", Json(tenants_[i].options.rate));
    row.set("lanes", Json(std::uint64_t{plan_.lanes[i]}));
    row.set("first_lane", Json(std::uint64_t{plan_.first_lane[i]}));
    if (pooled) row.set("reserved", Json(std::uint64_t{reserved[i]}));
    row.set("requests", Json(report.tenants[i].responses.size()));
    row.set("served_nodes", Json(report.tenants[i].served_nodes));
    row.set("batch_share",
            Json(total_served_nodes == 0
                     ? 0.0
                     : static_cast<double>(report.tenants[i].served_nodes) /
                           static_cast<double>(total_served_nodes)));
    row.set("metrics", report.tenants[i].metrics);
    jtenants.push_back(std::move(row));
  }
  roll.set("tenants", std::move(jtenants));
  roll.set("plan", plan_.to_json());
  if (pooled) roll.set("global_queue_bound", Json(G));
  report.metrics = std::move(roll);
  return report;
}

}  // namespace pmtree::serve
