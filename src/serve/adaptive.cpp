#include "pmtree/serve/adaptive.hpp"

#include <algorithm>
#include <cassert>

namespace pmtree::serve {

Json AdaptiveEvent::to_json() const {
  Json j = Json::object();
  j.set("epoch", Json(epoch));
  j.set("cycle", Json(cycle));
  j.set("batches", Json(batches));
  Json jscores = Json::array();
  for (const std::uint64_t s : scores) jscores.push_back(Json(s));
  j.set("scores", std::move(jscores));
  j.set("chosen", Json(static_cast<std::uint64_t>(chosen)));
  j.set("switched", Json(switched));
  return j;
}

AdaptiveSelector::AdaptiveSelector(const TreeMapping& base,
                                   const AdaptivePolicy& policy)
    : base_(base), policy_(policy), active_(&base) {
  assert(policy_.enabled());
  scores_.assign(policy_.candidates.size(), 0);
  load_scratch_.assign(base_.num_modules(), 0);
#ifndef NDEBUG
  for (const TreeMapping* c : policy_.candidates) {
    assert(c != nullptr);
    assert(c->tree() == base_.tree() &&
           "adaptive candidates must color the server's tree");
    assert(c->num_modules() == base_.num_modules() &&
           "adaptive candidates must use the server's module count");
  }
#endif
}

void AdaptiveSelector::observe(std::span<const Node> nodes,
                               std::uint64_t cycle) {
  color_scratch_.resize(nodes.size());
  const std::span<Color> colors(color_scratch_.data(), color_scratch_.size());
  // Score every candidate on the same batch: the batch's peak per-module
  // request count is its makespan under the paper's service model (one
  // request per module per cycle), so the sum over batches estimates how
  // long this candidate would have taken to serve the observed stream.
  for (std::size_t j = 0; j < policy_.candidates.size(); ++j) {
    policy_.candidates[j]->color_of_batch(nodes, colors);
    std::fill(load_scratch_.begin(), load_scratch_.end(), 0u);
    std::uint32_t peak = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::uint32_t l = ++load_scratch_[colors[i]];
      peak = std::max(peak, l);
    }
    scores_[j] += peak;
  }
  batches_total_ += 1;
  batches_since_decide_ += 1;
  if (batches_since_decide_ >= policy_.epoch_batches) {
    batches_since_decide_ = 0;
    decide(cycle);
  }
}

void AdaptiveSelector::decide(std::uint64_t cycle) {
  epochs_planned_ += 1;

  // Argmin over the accumulated scores, ties to the lowest index — a
  // total order, so the decision is a pure function of the cut sequence.
  std::size_t best = 0;
  for (std::size_t j = 1; j < scores_.size(); ++j) {
    if (scores_[j] < scores_[best]) best = j;
  }

  // Hysteresis: an incumbent candidate is only unseated by a *strictly*
  // better score (the base has no score, so the first decision always
  // installs a candidate). This keeps a workload sitting exactly on a
  // tie from oscillating between mappings every epoch.
  bool switched = false;
  std::size_t incumbent = scores_.size();
  for (std::size_t j = 0; j < policy_.candidates.size(); ++j) {
    if (policy_.candidates[j] == active_) incumbent = j;
  }
  const std::size_t chosen =
      (incumbent < scores_.size() && scores_[best] >= scores_[incumbent])
          ? incumbent
          : best;
  if (policy_.candidates[chosen] != active_) {
    epochs_.emplace_back(policy_.candidates, chosen);
    active_ = policy_.candidates[chosen];
    switches_ += 1;
    switched = true;
  }

  AdaptiveEvent event;
  event.epoch = epochs_planned_;
  event.cycle = cycle;
  event.batches = batches_total_;
  event.scores = scores_;
  event.chosen = chosen;
  event.switched = switched;
  events_.push_back(std::move(event));

  // Age the scores after the decision: next epoch's comparison weighs
  // this epoch's traffic at (1 - 2^-decay_shift), older traffic
  // geometrically less — same integer forgetting as HeatTracker::decay.
  if (policy_.decay_shift < 64) {
    for (std::uint64_t& s : scores_) {
      s -= policy_.decay_shift == 0 ? s : s >> policy_.decay_shift;
    }
  }
}

Json AdaptiveSelector::stats() const {
  Json policy = Json::object();
  policy.set("epoch_batches", Json(std::uint64_t{policy_.epoch_batches}));
  policy.set("decay_shift", Json(std::uint64_t{policy_.decay_shift}));
  Json jcands = Json::array();
  for (const TreeMapping* c : policy_.candidates) {
    jcands.push_back(Json(c->name()));
  }
  policy.set("candidates", std::move(jcands));

  Json j = Json::object();
  j.set("policy", std::move(policy));
  j.set("batches_observed", Json(batches_total_));
  j.set("epochs_planned", Json(epochs_planned_));
  j.set("mappings_minted", Json(std::uint64_t{epochs_.size()}));
  j.set("switches", Json(switches_));
  j.set("active", Json(active_ == nullptr ? "" : active_->name()));
  Json jscores = Json::array();
  for (const std::uint64_t s : scores_) jscores.push_back(Json(s));
  j.set("scores", std::move(jscores));
  // The tail of the event log (bounded payload; the full log is in
  // events() for tests and tools).
  Json jevents = Json::array();
  const std::size_t first = events_.size() > 8 ? events_.size() - 8 : 0;
  for (std::size_t e = first; e < events_.size(); ++e) {
    jevents.push_back(events_[e].to_json());
  }
  j.set("recent_events", std::move(jevents));
  return j;
}

}  // namespace pmtree::serve
