#include "pmtree/serve/metrics.hpp"

namespace pmtree::serve {
namespace {

using engine::Histogram;

Json histogram_summary(const Histogram& h) {
  Json j = Json::object();
  j.set("count", Json(h.count()));
  // Explicit zero-request guard: an empty histogram's min() sentinel is
  // UINT64_MAX and its quantiles lean on the PR 5 saturating-sum edge
  // cases. A run with no samples (all requests shed, or none submitted)
  // must still emit a well-formed summary, so pin every derived field to
  // an explicit zero instead of reading the empty instrument.
  if (h.count() == 0) {
    j.set("mean", Json(0.0));
    j.set("max", Json(std::uint64_t{0}));
    j.set("p50", Json(std::uint64_t{0}));
    j.set("p95", Json(std::uint64_t{0}));
    j.set("p99", Json(std::uint64_t{0}));
    j.set("p999", Json(std::uint64_t{0}));
    return j;
  }
  j.set("mean", Json(h.mean()));
  j.set("max", Json(h.max()));
  j.set("p50", Json(h.p50()));
  j.set("p95", Json(h.p95()));
  j.set("p99", Json(h.p99()));
  j.set("p999", Json(h.value_at_quantile(0.999)));
  return j;
}

}  // namespace

ServeMetrics::ServeMetrics(engine::MetricsRegistry& registry,
                           std::string prefix)
    : prefix_(std::move(prefix)),
      submitted_(&registry.counter(prefix_ + ".submitted")),
      admitted_(&registry.counter(prefix_ + ".admitted")),
      blocked_(&registry.counter(prefix_ + ".blocked")),
      promoted_(&registry.counter(prefix_ + ".promoted")),
      completed_(&registry.counter(prefix_ + ".completed")),
      shed_(&registry.counter(prefix_ + ".shed")),
      expired_(&registry.counter(prefix_ + ".expired")),
      batches_(&registry.counter(prefix_ + ".batches")),
      batched_requests_(&registry.counter(prefix_ + ".batched_requests")),
      requested_nodes_(&registry.counter(prefix_ + ".requested_nodes")),
      batched_nodes_(&registry.counter(prefix_ + ".batched_nodes")),
      coalesced_nodes_(&registry.counter(prefix_ + ".coalesced_nodes")),
      ticks_(&registry.counter(prefix_ + ".ticks")),
      retries_(&registry.counter(prefix_ + ".retries")),
      rerouted_requests_(&registry.counter(prefix_ + ".rerouted_requests")),
      stalled_cycles_(&registry.counter(prefix_ + ".stalled_cycles")),
      queue_depth_(&registry.gauge(prefix_ + ".queue_depth")),
      blocked_depth_(&registry.gauge(prefix_ + ".blocked_depth")),
      latency_(&registry.histogram(prefix_ + ".latency")),
      queue_wait_(&registry.histogram(prefix_ + ".queue_wait")),
      batch_nodes_(&registry.histogram(prefix_ + ".batch_nodes")),
      batch_requests_(&registry.histogram(prefix_ + ".batch_requests")),
      retried_latency_(&registry.histogram(prefix_ + ".retried_latency")) {}

void ServeMetrics::on_tick(std::size_t pending, std::size_t blocked_depth) {
  ticks_->add();
  queue_depth_->set(static_cast<std::int64_t>(pending));
  blocked_depth_->set(static_cast<std::int64_t>(blocked_depth));
}

void ServeMetrics::on_batch(const FormedBatch& batch) {
  batches_->add();
  batched_requests_->add(batch.members.size());
  requested_nodes_->add(batch.requested_nodes);
  batched_nodes_->add(batch.nodes.size());
  coalesced_nodes_->add(batch.coalesced_nodes());
  batch_nodes_->record(batch.nodes.size());
  batch_requests_->record(batch.members.size());
}

void ServeMetrics::on_completed(const Response& response) {
  completed_->add();
  latency_->record(response.latency());
  queue_wait_->record(response.queue_wait());
  if (response.retries > 0) retried_latency_->record(response.latency());
}

Json ServeMetrics::summary() const {
  Json counters = Json::object();
  counters.set("submitted", Json(submitted_->value()));
  counters.set("admitted", Json(admitted_->value()));
  counters.set("blocked", Json(blocked_->value()));
  counters.set("promoted", Json(promoted_->value()));
  counters.set("completed", Json(completed_->value()));
  counters.set("shed", Json(shed_->value()));
  counters.set("expired", Json(expired_->value()));
  counters.set("ticks", Json(ticks_->value()));

  Json batches = Json::object();
  const std::uint64_t n = batches_->value();
  batches.set("count", Json(n));
  batches.set("mean_requests",
              Json(n == 0 ? 0.0
                          : static_cast<double>(batched_requests_->value()) /
                                static_cast<double>(n)));
  batches.set("mean_nodes",
              Json(n == 0 ? 0.0
                          : static_cast<double>(batched_nodes_->value()) /
                                static_cast<double>(n)));
  batches.set("max_nodes", Json(batch_nodes_->max()));
  batches.set("requested_nodes", Json(requested_nodes_->value()));
  batches.set("batched_nodes", Json(batched_nodes_->value()));
  batches.set("coalesced_nodes", Json(coalesced_nodes_->value()));

  Json queues = Json::object();
  queues.set("pending_high_water",
             Json(static_cast<std::uint64_t>(queue_depth_->high_water())));
  queues.set("blocked_high_water",
             Json(static_cast<std::uint64_t>(blocked_depth_->high_water())));

  Json faults = Json::object();
  faults.set("retries", Json(retries_->value()));
  faults.set("rerouted_requests", Json(rerouted_requests_->value()));
  faults.set("stalled_cycles", Json(stalled_cycles_->value()));
  faults.set("retried_latency", histogram_summary(*retried_latency_));

  Json j = Json::object();
  j.set("latency", histogram_summary(*latency_));
  j.set("queue_wait", histogram_summary(*queue_wait_));
  j.set("batches", batches);
  j.set("counters", counters);
  j.set("queues", queues);
  j.set("faults", faults);
  if (!pipeline_.is_null()) j.set("pipeline", pipeline_);
  if (!migration_.is_null()) j.set("migration", migration_);
  if (!dyn_.is_null()) j.set("dyn", dyn_);
  if (!adaptive_.is_null()) j.set("adaptive", adaptive_);
  if (!memory_.is_null()) j.set("memory", memory_);
  return j;
}

}  // namespace pmtree::serve
