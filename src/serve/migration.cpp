#include "pmtree/serve/migration.hpp"

#include <algorithm>
#include <cassert>

namespace pmtree::serve {

Json MigrationEvent::to_json() const {
  Json j = Json::object();
  j.set("epoch", Json(epoch));
  j.set("cycle", Json(cycle));
  j.set("batches", Json(batches));
  j.set("peak_before", Json(peak_before));
  j.set("peak_after", Json(peak_after));
  Json jmoves = Json::array();
  for (const auto& [sid, rot] : moves) {
    Json m = Json::object();
    m.set("subtree", Json(std::uint64_t{sid}));
    m.set("rotation", Json(std::uint64_t{rot}));
    jmoves.push_back(std::move(m));
  }
  j.set("moves", std::move(jmoves));
  return j;
}

// ---------------------------------------------------------------------------
// HeatTracker

HeatTracker::HeatTracker(std::uint32_t subtree_level, std::uint32_t modules)
    : level_(subtree_level), modules_(modules) {
  assert(modules_ > 0);
  const std::size_t subtrees = std::size_t{1} << level_;
  matrix_.assign(subtrees * modules_, 0);
  subtree_total_.assign(subtrees, 0);
  fixed_.assign(modules_, 0);
}

void HeatTracker::observe(std::span<const Node> nodes,
                          std::span<const Color> base_colors) {
  assert(nodes.size() == base_colors.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node n = nodes[i];
    const Color c = base_colors[i];
    assert(c < modules_);
    if (n.level >= level_) {
      const std::uint64_t sid = n.index >> (n.level - level_);
      matrix_[sid * modules_ + c] += 1;
      subtree_total_[sid] += 1;
    } else {
      fixed_[c] += 1;
    }
    total_ += 1;
  }
}

void HeatTracker::decay(std::uint32_t shift) noexcept {
  // h -= h >> shift: geometric forgetting with integer arithmetic only.
  // shift >= 64 would be UB on the raw operator; treat it as "no decay".
  if (shift >= 64) return;
  const auto age = [shift](std::uint64_t& h, std::uint64_t& lost) {
    const std::uint64_t d = shift == 0 ? h : h >> shift;
    h -= d;
    lost += d;
  };
  std::uint64_t lost = 0;
  for (std::uint64_t& h : matrix_) age(h, lost);
  std::uint64_t fixed_lost = 0;
  for (std::uint64_t& h : fixed_) age(h, fixed_lost);
  // Row sums are recomputed exactly (per-cell floors do not commute with
  // the row-sum shift).
  const std::size_t subtrees = subtree_total_.size();
  for (std::size_t sid = 0; sid < subtrees; ++sid) {
    std::uint64_t sum = 0;
    for (std::uint32_t c = 0; c < modules_; ++c) {
      sum += matrix_[sid * modules_ + c];
    }
    subtree_total_[sid] = sum;
  }
  total_ -= lost + fixed_lost;
}

// ---------------------------------------------------------------------------
// MigrationPlanner

MigrationPlanner::MigrationPlanner(const TreeMapping& base,
                                   const MigrationPolicy& policy)
    : base_(base),
      policy_(policy),
      heat_(policy.subtree_level, base.num_modules()) {
  assert(policy_.enabled());
}

void MigrationPlanner::observe(std::span<const Node> nodes,
                               std::uint64_t cycle) {
  color_scratch_.resize(nodes.size());
  // Base colors, not the current epoch's: the ledger lives in base
  // coordinates so each epoch plans from scratch (rotations never stack).
  base_.color_of_batch(
      nodes, std::span<Color>(color_scratch_.data(), color_scratch_.size()));
  heat_.observe(nodes, color_scratch_);
  batches_total_ += 1;
  batches_since_plan_ += 1;
  if (batches_since_plan_ >= policy_.epoch_batches) {
    batches_since_plan_ = 0;
    plan(cycle);
  }
}

void MigrationPlanner::plan(std::uint64_t cycle) {
  // Age the ledger first: a batch observed k epochs ago weighs
  // (1 - 2^-decay_shift)^k in this plan — uniform scaling, so the decay
  // order (before selection) does not bias which subtrees look hot.
  heat_.decay(policy_.decay_shift);
  epochs_planned_ += 1;

  const std::uint32_t M = heat_.modules();
  const std::uint32_t S = heat_.subtree_count();

  // Selection: top-k subtrees by decayed heat, ties to the smaller id —
  // a total order, so the plan is a pure function of the ledger.
  std::vector<std::uint32_t> order(S);
  for (std::uint32_t sid = 0; sid < S; ++sid) order[sid] = sid;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::uint64_t ha = heat_.subtree_heat(a);
              const std::uint64_t hb = heat_.subtree_heat(b);
              if (ha != hb) return ha > hb;
              return a < b;
            });
  const std::uint64_t threshold = std::max<std::uint64_t>(policy_.min_heat, 1);
  std::vector<std::uint32_t> selected;
  for (std::uint32_t k = 0; k < policy_.top_k && k < S; ++k) {
    if (heat_.subtree_heat(order[k]) < threshold) break;
    selected.push_back(order[k]);
  }

  // Baseline load (everything on rotation 0): fixed heat plus every
  // subtree's row. peak_before is the static mapping's predicted peak.
  std::vector<std::uint64_t> load(M, 0);
  for (std::uint32_t m = 0; m < M; ++m) load[m] = heat_.fixed_heat(m);
  for (std::uint32_t sid = 0; sid < S; ++sid) {
    for (std::uint32_t c = 0; c < M; ++c) load[c] += heat_.cell(sid, c);
  }
  std::uint64_t peak_before = 0;
  for (std::uint32_t m = 0; m < M; ++m) {
    peak_before = std::max(peak_before, load[m]);
  }
  // Lift the selected rows back out; they are placed greedily below.
  for (const std::uint32_t sid : selected) {
    for (std::uint32_t c = 0; c < M; ++c) load[c] -= heat_.cell(sid, c);
  }

  // Greedy placement, hottest first: rotation r sends base color c to
  // module (c + r) mod M; pick the r minimizing the resulting peak, ties
  // to the smallest r (so a cold or already-balanced subtree stays put).
  MigrationEvent event;
  event.epoch = epochs_planned_;
  event.cycle = cycle;
  event.batches = batches_total_;
  event.peak_before = peak_before;
  for (const std::uint32_t sid : selected) {
    Color best_rot = 0;
    std::uint64_t best_peak = ~std::uint64_t{0};
    for (std::uint32_t r = 0; r < M; ++r) {
      std::uint64_t peak = 0;
      for (std::uint32_t m = 0; m < M; ++m) {
        const std::uint32_t c = m >= r ? m - r : m + M - r;  // (m - r) mod M
        peak = std::max(peak, load[m] + heat_.cell(sid, c));
      }
      if (peak < best_peak) {
        best_peak = peak;
        best_rot = r;
      }
    }
    for (std::uint32_t m = 0; m < M; ++m) {
      const std::uint32_t c = m >= best_rot ? m - best_rot : m + M - best_rot;
      load[m] += heat_.cell(sid, c);
    }
    event.moves.emplace_back(sid, best_rot);
    if (best_rot != 0) subtrees_moved_ += 1;
  }
  std::uint64_t peak_after = 0;
  for (std::uint32_t m = 0; m < M; ++m) {
    peak_after = std::max(peak_after, load[m]);
  }
  event.peak_after = peak_after;
  events_.push_back(std::move(event));

  std::vector<Color> rotation(S, 0);
  for (const auto& [sid, rot] : events_.back().moves) rotation[sid] = rot;
  // Mint a new epoch mapping only when the table actually changes; cold
  // epochs keep the previous mapping (or the base) alive and allocation
  // stays proportional to real migrations.
  const std::vector<Color>* live =
      epochs_.empty() ? nullptr : &epochs_.back().rotation_table();
  const bool unchanged =
      live ? *live == rotation
           : std::all_of(rotation.begin(), rotation.end(),
                         [](Color r) { return r == 0; });
  if (!unchanged) {
    epochs_.emplace_back(base_, policy_.subtree_level, std::move(rotation));
  }
}

Json MigrationPlanner::stats() const {
  Json policy = Json::object();
  policy.set("epoch_batches", Json(std::uint64_t{policy_.epoch_batches}));
  policy.set("top_k", Json(std::uint64_t{policy_.top_k}));
  policy.set("subtree_level", Json(std::uint64_t{policy_.subtree_level}));
  policy.set("decay_shift", Json(std::uint64_t{policy_.decay_shift}));
  policy.set("min_heat", Json(policy_.min_heat));

  Json j = Json::object();
  j.set("policy", std::move(policy));
  j.set("batches_observed", Json(batches_total_));
  j.set("epochs_planned", Json(epochs_planned_));
  j.set("mappings_minted", Json(std::uint64_t{epochs_.size()}));
  j.set("subtrees_moved", Json(subtrees_moved_));
  j.set("heat_total", Json(heat_.total()));
  if (!events_.empty()) {
    j.set("last_peak_before", Json(events_.back().peak_before));
    j.set("last_peak_after", Json(events_.back().peak_after));
  }
  // The tail of the event log (bounded payload; the full log is in
  // events() for tests and tools).
  Json jevents = Json::array();
  const std::size_t first = events_.size() > 8 ? events_.size() - 8 : 0;
  for (std::size_t e = first; e < events_.size(); ++e) {
    jevents.push_back(events_[e].to_json());
  }
  j.set("recent_events", std::move(jevents));
  return j;
}

}  // namespace pmtree::serve
