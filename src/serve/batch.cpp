#include "pmtree/serve/batch.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>

namespace pmtree::serve {

namespace {

// Depth cap for the bucketed coalesce path. Below it every index fits 32
// bits (level l indices are < 2^l), so segments sort half-width keys.
// Serving trees are complete binary trees a few dozen levels deep; deeper
// (synthetic) inputs fall back to the generic std::sort path below.
constexpr std::size_t kBucketLevels = 32;

// Insertion sort for one level's index segment. Segments are tiny (a
// batch holds ~4 requests whose nodes spread across the levels, so a
// segment is typically 2-8 indices) and nearly sorted (each request
// contributes at most a couple of indices per level, in order), which is
// insertion sort's best case. Larger segments — single-level run floods —
// hand off to std::sort.
void sort_segment(std::uint32_t* first, std::uint32_t* last) {
  const std::size_t len = static_cast<std::size_t>(last - first);
  if (len > 32) {
    std::sort(first, last);
    return;
  }
  for (std::uint32_t* p = first + 1; p < last; ++p) {
    const std::uint32_t v = *p;
    std::uint32_t* q = p;
    while (q > first && q[-1] > v) {
      *q = q[-1];
      --q;
    }
    *q = v;
  }
}

}  // namespace

CompositeInstance BatchFormer::coalesce(std::vector<Node>& nodes) {
  // Node's canonical order is (level, index) — the order in which
  // same-level consecutive runs are adjacent. A comparison sort of the
  // whole batch is overkill for that order: the level field takes only a
  // handful of values, so a counting pass buckets the nodes by level in
  // O(n) and only the per-level index segments — typically 2-8 entries
  // each — still need comparison sorting. That turns the serve path's
  // hottest kernel (every formed batch funnels through here) from
  // n log n key sorting + merging into two linear passes plus a few
  // insertion sorts of trivially small, nearly-sorted segments.
  std::uint32_t max_level = 0;
  for (const Node& n : nodes) max_level = std::max(max_level, n.level);
  CompositeInstance composite;
  if (max_level < kBucketLevels && !nodes.empty()) {
    // Shallow levels (< 2^6 possible indices) skip sorting entirely: a
    // 64-bit occupancy mask IS the sorted, deduplicated segment, and its
    // maximal stretches of set bits are the level runs — batches are
    // path-heavy, so the upper levels carry one duplicate-laden index per
    // request and collapse to a handful of bits. Deeper levels scatter
    // into per-level index segments (counting pass + prefix sums) and
    // sort each tiny segment in place.
    constexpr std::uint32_t kMaskLevels = 7;
    std::array<std::uint64_t, kMaskLevels> masks{};
    std::array<std::size_t, kBucketLevels> off{};
    std::array<std::size_t, kBucketLevels> pos{};
    for (const Node& n : nodes) {
      if (n.level < kMaskLevels) {
        masks[n.level] |= std::uint64_t{1} << n.index;
      } else {
        pos[n.level] += 1;
      }
    }
    std::size_t acc = 0;
    for (std::size_t lvl = kMaskLevels; lvl <= max_level; ++lvl) {
      off[lvl] = acc;
      acc += pos[lvl];
      pos[lvl] = off[lvl];
    }
    thread_local std::vector<std::uint32_t> idxs;
    idxs.resize(acc);
    for (const Node& n : nodes) {
      if (n.level >= kMaskLevels) {
        idxs[pos[n.level]++] = static_cast<std::uint32_t>(n.index);
      }
    }
    // After the scatter, pos[lvl] is lvl's segment END — sort each
    // occupied segment's indices in place.
    for (std::size_t lvl = kMaskLevels; lvl <= max_level; ++lvl) {
      sort_segment(idxs.data() + off[lvl], idxs.data() + pos[lvl]);
    }
    // Runs are emitted into a pooled scratch (capacity persists across
    // batches) and copied once into an exact-sized parts vector at the
    // end — one allocation per batch, no run-counting pre-pass, and no
    // geometric growth of repeated add() calls (which used to dominate
    // this function's profile).
    thread_local std::vector<ElementaryInstance> scratch_parts;
    scratch_parts.clear();
    // Emit in canonical (level, index) order, rewriting `nodes` in place
    // through a raw cursor: every input position has been consumed into a
    // mask or a segment by now, and dedup only shrinks, so the cursor
    // never overtakes unread data.
    Node* out = nodes.data();
    for (std::uint32_t lvl = 0; lvl <= max_level; ++lvl) {
      if (lvl < kMaskLevels) {
        std::uint64_t m = masks[lvl];
        while (m != 0) {
          const unsigned lo = static_cast<unsigned>(std::countr_zero(m));
          const unsigned len = static_cast<unsigned>(std::countr_one(m >> lo));
          for (unsigned k = 0; k < len; ++k) {
            *out++ = Node{lvl, std::uint64_t{lo} + k};
          }
          scratch_parts.push_back(LevelRunInstance{
              Node{lvl, std::uint64_t{lo}}, std::uint64_t{len}});
          // Clear the emitted run (lo + len <= 64; len == 64 only at
          // lo == 0, where the shift-based mask would be UB).
          m = len >= 64 ? 0
                        : m & ~(((std::uint64_t{1} << len) - 1) << lo);
        }
      } else {
        const std::uint32_t* seg = idxs.data() + off[lvl];
        const std::uint32_t* const seg_end = idxs.data() + pos[lvl];
        while (seg < seg_end) {
          std::uint32_t prev = *seg++;
          const std::uint64_t first = prev;
          std::uint64_t run = 1;
          *out++ = Node{lvl, prev};
          for (; seg < seg_end; ++seg) {
            if (*seg == prev) continue;  // duplicate lookup, collapsed
            if (*seg != prev + 1) break;
            prev = *seg;
            run += 1;
            *out++ = Node{lvl, prev};
          }
          scratch_parts.push_back(
              LevelRunInstance{Node{lvl, first}, run});
        }
      }
    }
    nodes.resize(static_cast<std::size_t>(out - nodes.data()));
    return CompositeInstance(std::vector<ElementaryInstance>(
        scratch_parts.begin(), scratch_parts.end()));
  }

  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i + 1;
    while (j < nodes.size() && nodes[j].level == nodes[i].level &&
           nodes[j].index == nodes[i].index + (j - i)) {
      ++j;
    }
    composite.add(LevelRunInstance{nodes[i], j - i});
    i = j;
  }
  return composite;
}

bool BatchFormer::due(std::uint64_t now,
                      const AdmissionController& controller) const {
  const std::deque<QueuedRequest>& pending = controller.pending();
  if (pending.empty()) return false;
  if (controller.pending_node_count() >= policy_.max_batch_nodes) return true;
  // Wait is measured from admission, not submission: a caller promoted
  // out of the blocked queue only became batchable at its promotion
  // tick, and submit-based waiting would let its blocked time consume
  // the whole window — every promotion would force an immediate,
  // usually undersized, cut.
  return now - pending.front().admitted_cycle >= policy_.max_wait_cycles;
}

std::uint64_t BatchFormer::next_batch_cost(
    const AdmissionController& controller) const {
  const std::deque<QueuedRequest>& pending = controller.pending();
  std::uint64_t taken = 0;
  std::size_t members = 0;
  for (const QueuedRequest& q : pending) {
    const std::uint64_t n = q.nodes->size();
    if (members != 0 && taken + n > policy_.max_batch_nodes) break;
    members += 1;
    taken += n;
    if (taken >= policy_.max_batch_nodes) break;
  }
  return taken;
}

FormedBatch BatchFormer::form_one_raw(std::uint64_t now,
                                      AdmissionController& controller) {
  std::deque<QueuedRequest>& pending = controller.pending();
  FormedBatch batch;
  batch.id = next_id_++;
  batch.formed_cycle = now;
  // One exact-capacity allocation instead of geometric growth across the
  // fill walk. The cap is the fill limit; the front request can exceed it
  // alone (oversized requests dispatch solo).
  if (!pending.empty()) {
    batch.nodes.reserve(std::max<std::uint64_t>(policy_.max_batch_nodes,
                                                pending.front().nodes->size()));
    batch.members.reserve(16);
  }
  std::uint64_t taken = 0;
  while (!pending.empty()) {
    const QueuedRequest& q = pending.front();
    const std::uint64_t n = q.nodes->size();
    // The first member always fits (oversized requests dispatch alone);
    // after that, stop before overflowing the cap. This is the same fill
    // walk next_batch_cost() simulates, so the peeked DRR cost is exact.
    if (!batch.members.empty() && taken + n > policy_.max_batch_nodes) break;
    batch.members.push_back(q.index);
    batch.nodes.insert(batch.nodes.end(), q.nodes->begin(), q.nodes->end());
    taken += n;
    controller.on_batched(n);
    pending.pop_front();
    if (taken >= policy_.max_batch_nodes) break;
  }
  batch.requested_nodes = taken;
  return batch;
}

FormedBatch BatchFormer::form_one(std::uint64_t now,
                                  AdmissionController& controller) {
  FormedBatch batch = form_one_raw(now, controller);
  batch.decomposition = coalesce(batch.nodes);
  return batch;
}

std::vector<FormedBatch> BatchFormer::form(std::uint64_t now,
                                           AdmissionController& controller) {
  std::vector<FormedBatch> batches;
  while (due(now, controller)) {
    batches.push_back(form_one(now, controller));
  }
  return batches;
}

}  // namespace pmtree::serve
