#include "pmtree/serve/batch.hpp"

#include <algorithm>
#include <cstddef>

namespace pmtree::serve {

CompositeInstance BatchFormer::coalesce(std::vector<Node>& nodes) {
  // Node's default ordering is (level, index) — exactly the order in which
  // same-level consecutive runs are adjacent.
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  CompositeInstance composite;
  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i + 1;
    while (j < nodes.size() && nodes[j].level == nodes[i].level &&
           nodes[j].index == nodes[i].index + (j - i)) {
      ++j;
    }
    composite.add(LevelRunInstance{nodes[i], j - i});
    i = j;
  }
  return composite;
}

bool BatchFormer::due(std::uint64_t now,
                      const AdmissionController& controller) const {
  const std::deque<QueuedRequest>& pending = controller.pending();
  if (pending.empty()) return false;
  if (controller.pending_node_count() >= policy_.max_batch_nodes) return true;
  // Wait is measured from admission, not submission: a caller promoted
  // out of the blocked queue only became batchable at its promotion
  // tick, and submit-based waiting would let its blocked time consume
  // the whole window — every promotion would force an immediate,
  // usually undersized, cut.
  return now - pending.front().admitted_cycle >= policy_.max_wait_cycles;
}

std::uint64_t BatchFormer::next_batch_cost(
    const AdmissionController& controller) const {
  const std::deque<QueuedRequest>& pending = controller.pending();
  std::uint64_t taken = 0;
  std::size_t members = 0;
  for (const QueuedRequest& q : pending) {
    const std::uint64_t n = q.nodes->size();
    if (members != 0 && taken + n > policy_.max_batch_nodes) break;
    members += 1;
    taken += n;
    if (taken >= policy_.max_batch_nodes) break;
  }
  return taken;
}

FormedBatch BatchFormer::form_one(std::uint64_t now,
                                  AdmissionController& controller) {
  std::deque<QueuedRequest>& pending = controller.pending();
  FormedBatch batch;
  batch.id = next_id_++;
  batch.formed_cycle = now;
  std::uint64_t taken = 0;
  while (!pending.empty()) {
    const QueuedRequest& q = pending.front();
    const std::uint64_t n = q.nodes->size();
    // The first member always fits (oversized requests dispatch alone);
    // after that, stop before overflowing the cap. This is the same fill
    // walk next_batch_cost() simulates, so the peeked DRR cost is exact.
    if (!batch.members.empty() && taken + n > policy_.max_batch_nodes) break;
    batch.members.push_back(q.index);
    batch.nodes.insert(batch.nodes.end(), q.nodes->begin(), q.nodes->end());
    taken += n;
    controller.on_batched(n);
    pending.pop_front();
    if (taken >= policy_.max_batch_nodes) break;
  }
  batch.requested_nodes = taken;
  batch.decomposition = coalesce(batch.nodes);
  return batch;
}

std::vector<FormedBatch> BatchFormer::form(std::uint64_t now,
                                           AdmissionController& controller) {
  std::vector<FormedBatch> batches;
  while (due(now, controller)) {
    batches.push_back(form_one(now, controller));
  }
  return batches;
}

}  // namespace pmtree::serve
