#include "pmtree/serve/clients.hpp"

namespace pmtree::serve {
namespace {

/// Responses for `client` in seq order. The report is already in canonical
/// (submit, client, seq) order; per-client seq order needs one stable pass.
std::vector<const Response*> responses_for(
    const std::vector<Response>& responses, std::uint32_t client,
    std::size_t expected) {
  std::vector<const Response*> mine(expected, nullptr);
  for (const Response& r : responses) {
    if (r.client == client && r.seq < expected) mine[r.seq] = &r;
  }
  return mine;
}

}  // namespace

std::uint64_t DictionaryClient::submit_search(Server& server,
                                              Dictionary::Key key,
                                              std::uint64_t submit_cycle,
                                              std::uint64_t deadline_cycles) {
  const std::uint64_t seq = keys_.size();
  keys_.push_back(key);
  Request request;
  request.client = client_;
  request.seq = seq;
  request.submit_cycle = submit_cycle;
  request.deadline_cycles = deadline_cycles;
  request.nodes = dictionary_->search(key).accessed;
  server.submit(std::move(request));
  return seq;
}

std::uint64_t DictionaryClient::submit_search(Forest& forest,
                                              std::uint32_t tenant,
                                              Dictionary::Key key,
                                              std::uint64_t submit_cycle,
                                              std::uint64_t deadline_cycles) {
  const std::uint64_t seq = keys_.size();
  keys_.push_back(key);
  Request request;
  request.client = client_;
  request.seq = seq;
  request.submit_cycle = submit_cycle;
  request.deadline_cycles = deadline_cycles;
  request.nodes = dictionary_->search(key).accessed;
  forest.submit(tenant, std::move(request));
  return seq;
}

std::vector<DictionaryClient::Outcome> DictionaryClient::join(
    const TenantReport& report) const {
  return join_responses(report.responses);
}

std::vector<DictionaryClient::Outcome> DictionaryClient::join(
    const ServeReport& report) const {
  return join_responses(report.responses);
}

std::vector<DictionaryClient::Outcome> DictionaryClient::join_responses(
    const std::vector<Response>& responses) const {
  std::vector<Outcome> outcomes;
  const auto mine = responses_for(responses, client_, keys_.size());
  outcomes.reserve(keys_.size());
  for (std::size_t seq = 0; seq < keys_.size(); ++seq) {
    if (mine[seq] == nullptr) continue;  // submitted after this run()
    Outcome out;
    out.seq = seq;
    out.key = keys_[seq];
    out.response = *mine[seq];
    if (out.response.status == RequestStatus::kOk) {
      out.result = dictionary_->search(keys_[seq]);
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

std::uint64_t RangeIndexClient::submit_query(Server& server,
                                             RangeIndex::Key lo,
                                             RangeIndex::Key hi,
                                             std::uint64_t submit_cycle,
                                             std::uint64_t deadline_cycles) {
  const std::uint64_t seq = ranges_.size();
  ranges_.emplace_back(lo, hi);
  Request request;
  request.client = client_;
  request.seq = seq;
  request.submit_cycle = submit_cycle;
  request.deadline_cycles = deadline_cycles;
  request.nodes = index_->query(lo, hi).accessed;
  server.submit(std::move(request));
  return seq;
}

std::uint64_t RangeIndexClient::submit_query(Forest& forest,
                                             std::uint32_t tenant,
                                             RangeIndex::Key lo,
                                             RangeIndex::Key hi,
                                             std::uint64_t submit_cycle,
                                             std::uint64_t deadline_cycles) {
  const std::uint64_t seq = ranges_.size();
  ranges_.emplace_back(lo, hi);
  Request request;
  request.client = client_;
  request.seq = seq;
  request.submit_cycle = submit_cycle;
  request.deadline_cycles = deadline_cycles;
  request.nodes = index_->query(lo, hi).accessed;
  forest.submit(tenant, std::move(request));
  return seq;
}

std::vector<RangeIndexClient::Outcome> RangeIndexClient::join(
    const TenantReport& report) const {
  return join_responses(report.responses);
}

std::vector<RangeIndexClient::Outcome> RangeIndexClient::join(
    const ServeReport& report) const {
  return join_responses(report.responses);
}

std::vector<RangeIndexClient::Outcome> RangeIndexClient::join_responses(
    const std::vector<Response>& responses) const {
  std::vector<Outcome> outcomes;
  const auto mine = responses_for(responses, client_, ranges_.size());
  outcomes.reserve(ranges_.size());
  for (std::size_t seq = 0; seq < ranges_.size(); ++seq) {
    if (mine[seq] == nullptr) continue;
    Outcome out;
    out.seq = seq;
    out.lo = ranges_[seq].first;
    out.hi = ranges_[seq].second;
    out.response = *mine[seq];
    if (out.response.status == RequestStatus::kOk) {
      out.result = index_->query(out.lo, out.hi);
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

}  // namespace pmtree::serve
