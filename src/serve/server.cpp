#include "pmtree/serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>
#include <utility>

#include "pmtree/engine/arrival.hpp"
#include "pmtree/engine/session.hpp"
#include "pmtree/util/parallel.hpp"

namespace pmtree::serve {

std::uint64_t ServeReport::count(RequestStatus status) const noexcept {
  std::uint64_t n = 0;
  for (const Response& r : responses) n += r.status == status ? 1 : 0;
  return n;
}

Json ServeReport::to_json() const {
  Json j = Json::object();
  j.set("requests", Json(responses.size()));
  j.set("ok", Json(count(RequestStatus::kOk)));
  j.set("shed", Json(count(RequestStatus::kShed)));
  j.set("expired", Json(count(RequestStatus::kExpired)));
  j.set("batches", Json(batches.size()));
  j.set("replicas", Json(replicas.size()));
  j.set("ticks", Json(ticks));
  j.set("rounds", Json(rounds));
  j.set("final_cycle", Json(final_cycle));
  // Read-only runs keep their exact JSON shape; read-write runs add the
  // barrier's aggregate verdicts.
  if (!mutations.empty()) {
    std::uint64_t applied = 0;
    for (const MutationRecord& m : mutations) {
      applied += m.status == dyn::DynStatus::kOk ? 1 : 0;
    }
    Json muts = Json::object();
    muts.set("count", Json(mutations.size()));
    muts.set("applied", Json(applied));
    muts.set("rejected", Json(mutations.size() - applied));
    j.set("mutations", std::move(muts));
  }
  // Accounting-only runs keep their exact JSON shape; real-memory runs
  // add the arena traffic totals.
  if (memory.nodes != 0) j.set("memory", memory.to_json());
  j.set("metrics", metrics);

  Json rows = Json::array();
  for (const Response& r : responses) {
    Json row = Json::object();
    row.set("client", Json(std::uint64_t{r.client}));
    row.set("seq", Json(r.seq));
    row.set("status", Json(to_string(r.status)));
    row.set("submit", Json(r.submit_cycle));
    row.set("completion", Json(r.completion_cycle));
    row.set("latency", Json(r.latency()));
    row.set("retries", Json(std::uint64_t{r.retries}));
    if (r.status == RequestStatus::kOk) row.set("batch", Json(r.batch));
    rows.push_back(std::move(row));
  }
  j.set("responses", std::move(rows));
  return j;
}

Server::Server(const TreeMapping& mapping, ServerOptions options)
    : mapping_(mapping), options_(options) {
  if (options_.tick_cycles == 0) options_.tick_cycles = 1;
  if (options_.replicas == 0) options_.replicas = 1;
}

void Server::submit(Request request) {
  Inbox& inbox = inboxes_[request.client % kStripes];
  const std::lock_guard<std::mutex> lock(inbox.mutex);
  inbox.requests.push_back(std::move(request));
}

void Server::submit(std::vector<Request> requests) {
  for (Request& r : requests) submit(std::move(r));
}

std::vector<Request> Server::drain_inboxes() {
  std::vector<Request> all;
  for (Inbox& inbox : inboxes_) {
    const std::lock_guard<std::mutex> lock(inbox.mutex);
    all.insert(all.end(), std::make_move_iterator(inbox.requests.begin()),
               std::make_move_iterator(inbox.requests.end()));
    inbox.requests.clear();
  }
  return all;
}

ServeReport Server::run() {
  // Staged-pipeline dispatch (pipeline.cpp). The body below is the
  // frozen single-threaded oracle the pipeline is differentially tested
  // against — faulted engine configurations always run here (the
  // degraded engine loop needs nodes for rerouting; EngineSession is
  // healthy-path only).
  if (options_.pipeline.enabled() &&
      (options_.engine.faults == nullptr || options_.engine.faults->empty())) {
    return run_pipeline();
  }

  // ---- Canonical order: a pure function of the submitted set. ---------
  std::vector<Request> requests = drain_inboxes();
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     if (a.submit_cycle != b.submit_cycle)
                       return a.submit_cycle < b.submit_cycle;
                     if (a.client != b.client) return a.client < b.client;
                     return a.seq < b.seq;
                   });

  ServeMetrics metrics(registry_);
  ServeReport report;
  report.responses.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Response& r = report.responses[i];
    r.client = requests[i].client;
    r.seq = requests[i].seq;
    r.submit_cycle = requests[i].submit_cycle;
  }
  metrics.on_submitted(requests.size());

  // ---- Tick loop: single-threaded control plane, in serving rounds. ---
  // A round is one pass of (tick loop -> replica execution -> assembly).
  // Without a RetryPolicy there is exactly one round and the pipeline is
  // the original single-pass server, stamp for stamp. With retries, each
  // round's timed-out completions are discarded and re-enter the next
  // round's intake at the cycle the caller would have resent; since
  // everything below runs on the single-threaded control plane except the
  // replica engines (which are deterministic), responses stay bit-identical
  // at any worker count.
  const std::uint64_t T = options_.tick_cycles;
  const std::uint32_t R = options_.replicas;
  const RetryPolicy& retry_policy = options_.retry;
  AdmissionController admission(options_.admission);
  BatchFormer former(options_.batch);
  std::uint64_t ticks = 0;
  std::uint64_t rounds = 0;
  std::vector<std::size_t> scratch;
  std::vector<std::uint32_t> attempts(requests.size(), 0);

  // Intake entries for the current round: (arrival cycle, canonical
  // index), sorted by (arrival, index). Round 1 is every submitted
  // request at its submit cycle — already in order, since the canonical
  // sort leads with submit_cycle and index order breaks ties.
  struct IntakeEntry {
    std::uint64_t arrival = 0;
    std::size_t index = 0;
  };
  std::vector<IntakeEntry> intake(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    intake[i] = IntakeEntry{requests[i].submit_cycle, i};
  }

  // ---- Skew-adaptive migration (DESIGN.md §15). -----------------------
  // When enabled, every cut batch is folded into the planner's heat
  // ledger at cut time (a control-plane event, in canonical batch order)
  // and resolved against the epoch's mapping into a per-replica
  // EngineSession; the parallel phase below then only drains. Faulted
  // configurations keep the static mapping: the fault timeline's reroute
  // table owns the color space, and EngineSession is healthy-path only.
  // ---- Read-write mode (DESIGN.md §16). -------------------------------
  // Mutations apply at the batch-cut barrier below; migration assumes a
  // frozen tree shape, so the two are mutually exclusive by contract.
  const bool dynamic = options_.dyn.enabled();
  assert(!(dynamic && options_.migration.enabled()) &&
         "dyn serving and skew migration are mutually exclusive");
  assert(!(dynamic && options_.adaptive.enabled()) &&
         "dyn serving and adaptive selection are mutually exclusive");
  assert(!(options_.migration.enabled() && options_.adaptive.enabled()) &&
         "migration and adaptive selection both own the epoch mapping");
  assert(!(dynamic && options_.memory != nullptr) &&
         "the real-memory arenas are sized for a frozen tree");
  std::vector<char> mutation_applied(requests.size(), 0);

  const bool healthy =
      options_.engine.faults == nullptr || options_.engine.faults->empty();
  const bool migrate = !dynamic && options_.migration.enabled() && healthy;
  // ---- Adaptive mapping selection (DESIGN.md §17). --------------------
  // Same epoch skeleton as migration: the selector observes every cut
  // batch on the control plane and the batch resolves against the epoch's
  // chosen mapping into its replica's session. Faulted configurations
  // keep the static mapping for the same reasons migration does.
  const bool adapt = !migrate && !dynamic && options_.adaptive.enabled() &&
                     healthy;
  std::unique_ptr<MigrationPlanner> planner;
  std::unique_ptr<AdaptiveSelector> selector;
  std::vector<engine::EngineSession> sessions;
  std::vector<Color> epoch_colors;
  if (migrate || adapt) {
    if (migrate) {
      planner =
          std::make_unique<MigrationPlanner>(mapping_, options_.migration);
    } else {
      selector =
          std::make_unique<AdaptiveSelector>(mapping_, options_.adaptive);
    }
    sessions.reserve(R);
    for (std::uint32_t r = 0; r < R; ++r) {
      sessions.emplace_back(mapping_, options_.engine);
    }
  }
  // ---- Real-memory backend (DESIGN.md §17). ---------------------------
  // Observation only: each cut batch's deduped node payloads are loaded
  // from the arenas right here on the control plane. Nothing downstream
  // reads the result, so responses are bit-identical with it on or off.
  const mem::MemoryBackend* memory = options_.memory;

  // Requests of the current round not yet shed, expired, or dispatched in
  // a batch. Dispatched requests leave the control plane — their
  // completion cycle is decided by the replica runs, not the tick loop.
  std::size_t unresolved = 0;
  const auto resolve = [&](std::size_t index, RequestStatus status,
                           std::uint64_t cycle) {
    Response& r = report.responses[index];
    assert(r.status == RequestStatus::kPending);
    r.status = status;
    r.completion_cycle = cycle;
    unresolved -= 1;
  };

  report.replicas.resize(R);
  std::vector<std::vector<std::size_t>> plan(R);  // replica -> batch indices
  std::uint64_t t = 0;

  while (true) {
    rounds += 1;
    const std::size_t round_first_batch = report.batches.size();
    std::size_t next_intake = 0;  // first not-yet-offered intake entry
    unresolved = intake.size();

    while (unresolved > 0) {
      ticks += 1;
      // Phase 1: expire queued requests whose deadline budget elapsed.
      scratch.clear();
      admission.expire(t, scratch);
      for (const std::size_t index : scratch) {
        resolve(index, RequestStatus::kExpired, t);
      }
      metrics.on_expired(scratch.size());

      // Phase 2: promote blocked callers into freed slots, FIFO — before
      // intake, so blocked callers outrank this tick's new arrivals.
      scratch.clear();
      admission.promote(t, scratch);
      metrics.on_promoted(scratch.size());
      for (const std::size_t index : scratch) {
        report.responses[index].admitted_cycle = t;
      }

      // Phase 3: intake of everything arrived by now, canonical order.
      // Retried requests keep their original Request — original submit
      // cycle and deadline — so the deadline sweep above and the
      // dead-on-arrival check below price the retry against the budget
      // that remains, not a fresh one.
      while (next_intake < intake.size() &&
             intake[next_intake].arrival <= t) {
        const std::size_t index = intake[next_intake++].index;
        switch (admission.offer(index, requests[index], t)) {
          case AdmissionController::Decision::kAdmitted:
            report.responses[index].admitted_cycle = t;
            metrics.on_admitted();
            break;
          case AdmissionController::Decision::kBlocked:
            metrics.on_blocked();
            break;
          case AdmissionController::Decision::kShedNow:
            resolve(index, RequestStatus::kShed, t);
            metrics.on_shed();
            break;
          case AdmissionController::Decision::kDeadOnArrival:
            resolve(index, RequestStatus::kExpired, t);
            metrics.on_expired(1);
            break;
        }
      }

      // Phase 4: cut batches. Members get their dispatch stamp here;
      // their completion waits for the replica runs below. With migration
      // the batch also feeds the heat ledger and its replica's session
      // now, under the epoch mapping in force after the observation.
      for (FormedBatch& batch : former.form(t, admission)) {
        for (const std::size_t index : batch.members) {
          Response& r = report.responses[index];
          r.dispatch_cycle = t;
          r.batch = batch.id;
        }
        unresolved -= batch.members.size();
        if (dynamic) {
          // The PALM barrier: writers apply now, in canonical member
          // order, and the colorer publishes every color the replica
          // phase will read — before any worker sees the batch.
          apply_batch_mutations(batch, requests, options_.dyn, t,
                                mutation_applied, report.mutations);
        }
        if (migrate || adapt) {
          const TreeMapping* epoch = nullptr;
          if (migrate) {
            planner->observe(batch.nodes, t);
            epoch = &planner->current();
          } else {
            selector->observe(batch.nodes, t);
            epoch = &selector->current();
          }
          epoch_colors.resize(batch.nodes.size());
          epoch->color_of_batch(
              batch.nodes,
              std::span<Color>(epoch_colors.data(), epoch_colors.size()));
          sessions[batch.id % R].feed_resolved(epoch_colors, t);
        }
        if (memory != nullptr) {
          report.memory += memory->touch(batch.nodes);
        }
        metrics.on_batch(batch);
        report.batches.push_back(std::move(batch));
      }

      // Phase 5: observe queue depths for this tick.
      metrics.on_tick(admission.pending_count(), admission.blocked_count());

      // Advance. When the queues are idle the next event is the next
      // arrival; jump straight to its tick (ceiling — intake needs
      // arrival <= t) instead of ticking through the idle gap.
      if (admission.idle() && next_intake < intake.size()) {
        const std::uint64_t arrival = intake[next_intake].arrival;
        const std::uint64_t next_tick = (arrival + T - 1) / T * T;
        t = next_tick > t ? next_tick : t + T;
      } else {
        t += T;
      }
    }

    // ---- Replica execution: the only parallel phase. ------------------
    // Batch b runs on replica b mod R; each replica feeds its cumulative
    // batch list through the cycle engine with the dispatch ticks as
    // explicit arrivals (nondecreasing by construction — batch ids are
    // minted in tick order and t only advances across rounds). Re-running
    // a replica with later batches appended cannot change the earlier
    // batches' completions — later arrivals queue strictly behind — so
    // each round's re-execution extends, never rewrites, the previous
    // round's results.
    const unsigned workers =
        std::min<unsigned>(resolve_threads(options_.workers), R);
    if (migrate || adapt) {
      // Sessions were fed at cut time (epoch-resolved colors, canonical
      // order); the parallel phase replays each cumulative prefix. Same
      // extend-never-rewrite argument as below — drain() re-runs the
      // whole feed, and later arrivals queue strictly behind.
      parallel_chunks(R, workers, /*grain=*/1,
                      [&](unsigned, std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t r = begin; r < end; ++r) {
                          report.replicas[r] = sessions[r].drain();
                        }
                      });
    } else {
      for (std::size_t b = round_first_batch; b < report.batches.size();
           ++b) {
        plan[b % R].push_back(b);
      }
      parallel_chunks(R, workers, /*grain=*/1,
                      [&](unsigned, std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t r = begin; r < end; ++r) {
                          std::vector<Workload::Access> accesses;
                          std::vector<std::uint64_t> arrivals;
                          accesses.reserve(plan[r].size());
                          arrivals.reserve(plan[r].size());
                          for (const std::size_t b : plan[r]) {
                            accesses.push_back(report.batches[b].nodes);
                            arrivals.push_back(
                                report.batches[b].formed_cycle);
                          }
                          const engine::CycleEngine eng(mapping_);
                          report.replicas[r] = eng.run(
                              Workload(std::move(accesses)),
                              engine::ArrivalSchedule::explicit_cycles(
                                  std::move(arrivals)),
                              options_.engine);
                        }
                      });
    }

    // ---- Round assembly: this round's batches resolve their members. --
    for (std::size_t b = round_first_batch; b < report.batches.size(); ++b) {
      const engine::EngineResult& res = report.replicas[b % R];
      const std::size_t slot = b / R;  // position within the replica's run
      const std::uint64_t completion = res.records[slot].completion;
      for (const std::size_t index : report.batches[b].members) {
        Response& r = report.responses[index];
        assert(r.status == RequestStatus::kPending);
        r.status = RequestStatus::kOk;
        r.completion_cycle = completion;
      }
    }

    // ---- Retry scan: discard timed-out completions into next round. ---
    std::vector<IntakeEntry> retries;
    if (retry_policy.enabled()) {
      for (std::size_t b = round_first_batch; b < report.batches.size();
           ++b) {
        for (const std::size_t index : report.batches[b].members) {
          Response& r = report.responses[index];
          const std::uint64_t residency =
              r.completion_cycle - r.dispatch_cycle;
          if (residency <= retry_policy.attempt_timeout_cycles ||
              attempts[index] >= retry_policy.max_retries) {
            continue;
          }
          attempts[index] += 1;
          r.retries = attempts[index];
          r.status = RequestStatus::kPending;
          // The caller resends once its attempt timer fires plus backoff;
          // the deadline countdown keeps running from the original submit.
          retries.push_back(IntakeEntry{
              r.dispatch_cycle + retry_policy.attempt_timeout_cycles +
                  retry_policy.backoff(attempts[index]),
              index});
        }
      }
    }
    if (retries.empty()) break;
    std::sort(retries.begin(), retries.end(),
              [](const IntakeEntry& a, const IntakeEntry& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                return a.index < b.index;
              });
    metrics.on_retried(retries.size());
    intake = std::move(retries);
  }
  report.ticks = ticks;
  report.rounds = rounds;

  // ---- Final accounting + metrics, deterministic order. ---------------
  std::uint64_t last = 0;
  for (const Response& r : report.responses) {
    last = std::max(last, r.completion_cycle);
    if (r.status == RequestStatus::kOk) metrics.on_completed(r);
  }
  report.final_cycle = last;

  // Fold the per-replica engine trajectories into the registry under
  // stable names (replica engines above run without a registry so the
  // parallel phase never shares one), plus the fault counters the runs
  // accumulated.
  for (std::uint32_t r = 0; r < R; ++r) {
    const std::string prefix = "serve.replica" + std::to_string(r);
    const engine::EngineResult& res = report.replicas[r];
    registry_.counter(prefix + ".accesses").add(res.accesses);
    registry_.counter(prefix + ".requests").add(res.requests);
    registry_.counter(prefix + ".busy_cycles").add(res.busy_cycles);
    metrics.on_replica_faults(res.rerouted_requests, res.stalled_cycles);
  }

  if (migrate) metrics.set_migration(planner->stats());
  if (adapt) metrics.set_adaptive(selector->stats());
  if (memory != nullptr) metrics.set_memory(memory->stats(report.memory));
  if (dynamic) metrics.set_dyn(dyn_stats(options_.dyn, report.mutations));
  report.metrics = metrics.summary();
  return report;
}

}  // namespace pmtree::serve
