#include "pmtree/serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "pmtree/engine/arrival.hpp"
#include "pmtree/util/parallel.hpp"

namespace pmtree::serve {

std::uint64_t ServeReport::count(RequestStatus status) const noexcept {
  std::uint64_t n = 0;
  for (const Response& r : responses) n += r.status == status ? 1 : 0;
  return n;
}

Json ServeReport::to_json() const {
  Json j = Json::object();
  j.set("requests", Json(responses.size()));
  j.set("ok", Json(count(RequestStatus::kOk)));
  j.set("shed", Json(count(RequestStatus::kShed)));
  j.set("expired", Json(count(RequestStatus::kExpired)));
  j.set("batches", Json(batches.size()));
  j.set("replicas", Json(replicas.size()));
  j.set("ticks", Json(ticks));
  j.set("final_cycle", Json(final_cycle));
  j.set("metrics", metrics);

  Json rows = Json::array();
  for (const Response& r : responses) {
    Json row = Json::object();
    row.set("client", Json(std::uint64_t{r.client}));
    row.set("seq", Json(r.seq));
    row.set("status", Json(to_string(r.status)));
    row.set("submit", Json(r.submit_cycle));
    row.set("completion", Json(r.completion_cycle));
    row.set("latency", Json(r.latency()));
    if (r.status == RequestStatus::kOk) row.set("batch", Json(r.batch));
    rows.push_back(std::move(row));
  }
  j.set("responses", std::move(rows));
  return j;
}

Server::Server(const TreeMapping& mapping, ServerOptions options)
    : mapping_(mapping), options_(options) {
  if (options_.tick_cycles == 0) options_.tick_cycles = 1;
  if (options_.replicas == 0) options_.replicas = 1;
}

void Server::submit(Request request) {
  Inbox& inbox = inboxes_[request.client % kStripes];
  const std::lock_guard<std::mutex> lock(inbox.mutex);
  inbox.requests.push_back(std::move(request));
}

void Server::submit(std::vector<Request> requests) {
  for (Request& r : requests) submit(std::move(r));
}

std::vector<Request> Server::drain_inboxes() {
  std::vector<Request> all;
  for (Inbox& inbox : inboxes_) {
    const std::lock_guard<std::mutex> lock(inbox.mutex);
    all.insert(all.end(), std::make_move_iterator(inbox.requests.begin()),
               std::make_move_iterator(inbox.requests.end()));
    inbox.requests.clear();
  }
  return all;
}

ServeReport Server::run() {
  // ---- Canonical order: a pure function of the submitted set. ---------
  std::vector<Request> requests = drain_inboxes();
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     if (a.submit_cycle != b.submit_cycle)
                       return a.submit_cycle < b.submit_cycle;
                     if (a.client != b.client) return a.client < b.client;
                     return a.seq < b.seq;
                   });

  ServeMetrics metrics(registry_);
  ServeReport report;
  report.responses.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Response& r = report.responses[i];
    r.client = requests[i].client;
    r.seq = requests[i].seq;
    r.submit_cycle = requests[i].submit_cycle;
  }
  metrics.on_submitted(requests.size());

  // ---- Tick loop: single-threaded control plane. ----------------------
  const std::uint64_t T = options_.tick_cycles;
  AdmissionController admission(options_.admission);
  BatchFormer former(options_.batch);
  std::size_t next_intake = 0;   // first not-yet-offered canonical index
  // Requests not yet shed, expired, or dispatched in a batch. Dispatched
  // requests leave the control plane — their completion cycle is decided
  // by the replica runs below, not the tick loop.
  std::size_t unresolved = requests.size();
  std::uint64_t ticks = 0;
  std::vector<std::size_t> scratch;

  const auto resolve = [&](std::size_t index, RequestStatus status,
                           std::uint64_t cycle) {
    Response& r = report.responses[index];
    assert(r.status == RequestStatus::kPending);
    r.status = status;
    r.completion_cycle = cycle;
    unresolved -= 1;
  };

  std::uint64_t t = 0;
  while (unresolved > 0) {
    ticks += 1;
    // Phase 1: expire queued requests whose deadline budget elapsed.
    scratch.clear();
    admission.expire(t, scratch);
    for (const std::size_t index : scratch) {
      resolve(index, RequestStatus::kExpired, t);
    }
    metrics.on_expired(scratch.size());

    // Phase 2: promote blocked callers into freed slots, FIFO — before
    // intake, so blocked callers outrank this tick's new arrivals.
    scratch.clear();
    admission.promote(t, scratch);
    metrics.on_promoted(scratch.size());
    for (const std::size_t index : scratch) {
      report.responses[index].admitted_cycle = t;
    }

    // Phase 3: intake of everything submitted by now, canonical order.
    while (next_intake < requests.size() &&
           requests[next_intake].submit_cycle <= t) {
      const std::size_t index = next_intake++;
      switch (admission.offer(index, requests[index], t)) {
        case AdmissionController::Decision::kAdmitted:
          report.responses[index].admitted_cycle = t;
          metrics.on_admitted();
          break;
        case AdmissionController::Decision::kBlocked:
          metrics.on_blocked();
          break;
        case AdmissionController::Decision::kShedNow:
          resolve(index, RequestStatus::kShed, t);
          metrics.on_shed();
          break;
        case AdmissionController::Decision::kDeadOnArrival:
          resolve(index, RequestStatus::kExpired, t);
          metrics.on_expired(1);
          break;
      }
    }

    // Phase 4: cut batches. Members get their dispatch stamp here; their
    // completion waits for the replica runs below.
    for (FormedBatch& batch : former.form(t, admission)) {
      for (const std::size_t index : batch.members) {
        Response& r = report.responses[index];
        r.dispatch_cycle = t;
        r.batch = batch.id;
      }
      unresolved -= batch.members.size();
      metrics.on_batch(batch);
      report.batches.push_back(std::move(batch));
    }

    // Phase 5: observe queue depths for this tick.
    metrics.on_tick(admission.pending_count(), admission.blocked_count());

    // Advance. When the queues are idle the next event is the next
    // submission; jump straight to its tick (ceiling — intake needs
    // submit_cycle <= t) instead of ticking through the idle gap.
    if (admission.idle() && next_intake < requests.size()) {
      const std::uint64_t submit = requests[next_intake].submit_cycle;
      const std::uint64_t next_tick = (submit + T - 1) / T * T;
      t = next_tick > t ? next_tick : t + T;
    } else {
      t += T;
    }
  }
  report.ticks = ticks;

  // ---- Replica execution: the only parallel phase. --------------------
  // Batch b runs on replica b mod R; each replica feeds its batch list
  // through the cycle engine with the dispatch ticks as explicit arrivals
  // (nondecreasing by construction — batch ids are minted in tick order).
  const std::uint32_t R = options_.replicas;
  report.replicas.resize(R);
  std::vector<std::vector<std::size_t>> plan(R);  // replica -> batch indices
  for (std::size_t b = 0; b < report.batches.size(); ++b) {
    plan[b % R].push_back(b);
  }
  const unsigned workers =
      std::min<unsigned>(resolve_threads(options_.workers), R);
  parallel_chunks(R, workers, /*grain=*/1,
                  [&](unsigned, std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t r = begin; r < end; ++r) {
                      std::vector<Workload::Access> accesses;
                      std::vector<std::uint64_t> arrivals;
                      accesses.reserve(plan[r].size());
                      arrivals.reserve(plan[r].size());
                      for (const std::size_t b : plan[r]) {
                        accesses.push_back(report.batches[b].nodes);
                        arrivals.push_back(report.batches[b].formed_cycle);
                      }
                      const engine::CycleEngine eng(mapping_);
                      report.replicas[r] = eng.run(
                          Workload(std::move(accesses)),
                          engine::ArrivalSchedule::explicit_cycles(
                              std::move(arrivals)),
                          options_.engine);
                    }
                  });

  // ---- Response assembly + metrics, deterministic order. --------------
  std::uint64_t last = 0;
  for (std::size_t b = 0; b < report.batches.size(); ++b) {
    const engine::EngineResult& res = report.replicas[b % R];
    const std::size_t slot = b / R;  // position within the replica's run
    const std::uint64_t completion = res.records[slot].completion;
    last = std::max(last, completion);
    for (const std::size_t index : report.batches[b].members) {
      Response& r = report.responses[index];
      assert(r.status == RequestStatus::kPending);
      r.status = RequestStatus::kOk;
      r.completion_cycle = completion;
    }
  }
  for (const Response& r : report.responses) {
    last = std::max(last, r.completion_cycle);
    if (r.status == RequestStatus::kOk) metrics.on_completed(r);
  }
  report.final_cycle = last;

  // Fold the per-replica engine trajectories into the registry under
  // stable names (replica engines above run without a registry so the
  // parallel phase never shares one).
  for (std::uint32_t r = 0; r < R; ++r) {
    const std::string prefix = "serve.replica" + std::to_string(r);
    const engine::EngineResult& res = report.replicas[r];
    registry_.counter(prefix + ".accesses").add(res.accesses);
    registry_.counter(prefix + ".requests").add(res.requests);
    registry_.counter(prefix + ".busy_cycles").add(res.busy_cycles);
  }

  report.metrics = metrics.summary();
  return report;
}

}  // namespace pmtree::serve
