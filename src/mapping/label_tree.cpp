#include "pmtree/mapping/label_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmtree {

LabelTreeMapping::LabelTreeMapping(CompleteBinaryTree tree, std::uint32_t M,
                                   Retrieval retrieval, std::uint32_t l_override)
    : TreeMapping(tree), M_(M), retrieval_(retrieval) {
  assert(M >= 3);
  m_ = ceil_log2(M);

  if (l_override != 0) {
    l_ = std::clamp(l_override, 1u, m_ - 1);
  } else {
    // l = floor(log2(ceil(sqrt(M * ceil(log2 M))))), clamped to [1, m-1]
    // so that sub-blocks are well defined for small M.
    const double root =
        std::sqrt(static_cast<double>(M) * static_cast<double>(m_));
    const auto root_up = static_cast<std::uint64_t>(std::ceil(root));
    l_ = std::clamp(floor_log2(std::max<std::uint64_t>(root_up, 2)), 1u, m_ - 1);
  }

  ell_ = static_cast<std::uint32_t>(pow2(l_) + pow2(m_ - l_) - 1);
  // With the paper's l the window always fits on the color ring; an
  // extreme l_override may make it wrap (colors stay legal mod M, the
  // conflict behaviour just degrades — which is what the ablation shows).
  assert(l_override != 0 || ell_ <= M_);
  p_ = std::max<std::uint32_t>(1, M_ / ell_);

  // MICRO-LABEL table: list index per block-relative BFS position. One
  // table serves every block because the index depends only on relative
  // position. Built exactly like the paper's Fig. 10, top-down.
  micro_.resize(tree_size(m_));
  for (std::uint32_t j = 0; j < l_; ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      micro_[pow2(j) - 1 + i] = static_cast<std::uint32_t>(pow2(j) - 1 + i);
    }
  }
  const std::uint64_t sub = pow2(l_ - 1);  // sub-block size
  for (std::uint32_t j = l_; j < m_; ++j) {
    for (std::uint64_t h = 0; h < pow2(j - l_ + 1); ++h) {
      for (std::uint64_t t = 0; t + 1 < sub; ++t) {
        // b_t inherits the list index of BFS position t of the sub-block
        // tree rooted at the sibling of this sub-block's (l-1)-st ancestor.
        const std::uint64_t hs = h ^ 1;
        const std::uint32_t rho = floor_log2(t + 1);
        const std::uint64_t s = t + 1 - pow2(rho);
        const std::uint32_t src_level = j - l_ + 1 + rho;
        const std::uint64_t src_index = (hs << rho) + s;
        micro_[pow2(j) - 1 + h * sub + t] = micro_[pow2(src_level) - 1 + src_index];
      }
      // Last node of the sub-block: fresh list index (Fig. 10, line 13).
      micro_[pow2(j) - 1 + h * sub + (sub - 1)] =
          static_cast<std::uint32_t>(pow2(l_) + pow2(j - l_) + h / 2 - 1);
    }
  }
  assert(*std::max_element(micro_.begin(), micro_.end()) < ell_);
}

std::uint32_t LabelTreeMapping::sigma_recursive(std::uint32_t r,
                                                std::uint64_t irel) const noexcept {
  const std::uint64_t sub = pow2(l_ - 1);
  while (r >= l_) {
    const std::uint64_t h = irel >> (l_ - 1);
    const std::uint64_t p = irel & (sub - 1);
    if (p == sub - 1) {
      return static_cast<std::uint32_t>(pow2(l_) + pow2(r - l_) + h / 2 - 1);
    }
    const std::uint64_t hs = h ^ 1;
    const std::uint32_t rho = floor_log2(p + 1);
    const std::uint64_t s = p + 1 - pow2(rho);
    r = r - l_ + 1 + rho;
    irel = (hs << rho) + s;
  }
  return static_cast<std::uint32_t>(pow2(r) - 1 + irel);
}

Color LabelTreeMapping::color_of(Node n) const {
  assert(tree().contains(n));
  const std::uint32_t jb = n.level / m_;       // block generation
  const std::uint32_t r = n.level % m_;        // level within the block
  const std::uint64_t ib = n.index >> r;       // block index within generation
  const std::uint64_t irel = n.index - (ib << r);

  const std::uint32_t sigma = retrieval_ == Retrieval::kTable
                                  ? sigma_table(pow2(r) - 1 + irel)
                                  : sigma_recursive(r, irel);

  // MACRO-LABEL + ROTATE: the block's window on the color ring starts at
  // jb*ell (one full window per generation — the "group") plus ib
  // (consecutive same-level blocks shift by one).
  const std::uint64_t base = std::uint64_t{jb} * ell_ + ib;
  return static_cast<Color>((base + sigma) % M_);
}

void LabelTreeMapping::color_of_batch(std::span<const Node> nodes,
                                      std::span<Color> out) const {
  assert(out.size() >= nodes.size());
  const bool table = retrieval_ == Retrieval::kTable;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node n = nodes[i];
    const std::uint32_t jb = n.level / m_;
    const std::uint32_t r = n.level % m_;
    const std::uint64_t ib = n.index >> r;
    const std::uint64_t irel = n.index - (ib << r);
    const std::uint32_t sigma = table ? sigma_table(pow2(r) - 1 + irel)
                                      : sigma_recursive(r, irel);
    out[i] = static_cast<Color>((std::uint64_t{jb} * ell_ + ib + sigma) % M_);
  }
}

std::string LabelTreeMapping::name() const {
  return "LABEL-TREE(M=" + std::to_string(M_) + ")" +
         (retrieval_ == Retrieval::kTable ? "" : "+recursive");
}

}  // namespace pmtree
