#include "pmtree/mapping/color.hpp"

#include <cassert>

#include "pmtree/util/simd.hpp"

namespace pmtree {

namespace {

/// The node whose color is entry t (0-based, top-down for kCorrect) of
/// Gamma(ib, jb): the list of N-k node colors along the path between the
/// roots of block (ib, jb) and its parent block. `stride` is N - k.
[[nodiscard]] Node gamma_node(std::uint64_t ib, std::uint32_t jb, std::uint32_t t,
                              std::uint32_t stride,
                              internal::GammaVariant variant) noexcept {
  assert(jb >= 1 && t < stride);
  const std::uint32_t parent_root_level = (jb - 1) * stride;
  switch (variant) {
    case internal::GammaVariant::kCorrect:
      // parent-block root .. parent of this block's root, top-down.
      return Node{parent_root_level + t, ib >> (stride - t)};
    case internal::GammaVariant::kIncludeChildRoot:
      // child of parent-block root .. this block's root, top-down.
      return Node{parent_root_level + 1 + t, ib >> (stride - 1 - t)};
    case internal::GammaVariant::kReversed:
      // kCorrect's node set, bottom-up.
      return Node{parent_root_level + (stride - 1 - t), ib >> (t + 1)};
  }
  return Node{};  // unreachable
}

}  // namespace

ColorMapping::ColorMapping(CompleteBinaryTree tree, std::uint32_t N,
                           std::uint32_t k, internal::GammaVariant variant,
                           Retrieval retrieval)
    : TreeMapping(tree), n_(N), k_(k), variant_(variant), retrieval_(retrieval) {
  assert(k >= 1 && k <= N);
  assert(N <= 60);
  // Trees taller than one block need the block family B(N), which requires
  // a positive root stride N - k.
  assert(tree.levels() <= N || N > k);

  if (retrieval_ == Retrieval::kBlockTable) {
    // PRE-BASIC-COLOR: resolve every block-relative position once. The
    // chase is position-only, so this one O(2^N) table serves all blocks.
    const std::uint32_t cap = std::min(n_, tree.levels());
    block_table_.resize(tree_size(cap));
    for (std::uint64_t pos = 0; pos < block_table_.size(); ++pos) {
      const std::uint32_t r = floor_log2(pos + 1);
      block_table_[pos] = resolve_in_block(r, pos + 1 - pow2(r));
    }
  }
}

std::uint32_t ColorMapping::num_modules() const noexcept {
  return n_ + static_cast<std::uint32_t>(K()) - k_;
}

std::string ColorMapping::name() const {
  return "COLOR(N=" + std::to_string(n_) + ",K=" + std::to_string(K()) + ")" +
         (retrieval_ == Retrieval::kBlockTable ? "+blocktable" : "");
}

ColorMapping::Resolution ColorMapping::resolve_in_block(
    std::uint32_t r, std::uint64_t irel) const noexcept {
  const std::uint64_t half_block = pow2(k_ - 1);
  while (r >= k_) {
    const std::uint64_t h = irel >> (k_ - 1);
    const std::uint64_t p = irel & (half_block - 1);
    if (p == half_block - 1) {
      // Last node of block(h, r): fresh color Gamma[r - k].
      return Resolution{true, r - k_};
    }
    // Inherit the color of the node at BFS position p of the size-K
    // subtree rooted at the sibling of this block's (k-1)-st ancestor.
    const std::uint64_t hs = h ^ 1;
    const std::uint32_t rho = floor_log2(p + 1);
    const std::uint64_t s = p + 1 - pow2(rho);
    r = r - k_ + 1 + rho;
    irel = (hs << rho) + s;
  }
  // Landed in the top k levels of the block: BFS position is the source.
  return Resolution{false, static_cast<std::uint32_t>(pow2(r) - 1 + irel)};
}

Color ColorMapping::color_of(Node nd) const {
  assert(tree().contains(nd));
  const std::uint64_t Kval = K();
  Node cur = nd;
  while (true) {
    if (cur.level < k_) {
      // Top k levels of the root block: v(i, j) gets color 2^j + i - 1,
      // i.e. its BFS id (the Sigma phase of BASIC-COLOR).
      return static_cast<Color>(bfs_id(cur));
    }
    const std::uint32_t stride = n_ - k_;
    const std::uint32_t jb = (cur.level - k_) / stride;
    const std::uint32_t r = cur.level - jb * stride;  // block-relative level
    const std::uint64_t ib = cur.index >> r;          // block root index
    const std::uint64_t irel = cur.index - (ib << r);

    const Resolution res = retrieval_ == Retrieval::kBlockTable
                               ? block_table_[pow2(r) - 1 + irel]
                               : resolve_in_block(r, irel);
    if (res.from_gamma) {
      if (jb == 0) return static_cast<Color>(Kval + res.value);
      cur = gamma_node(ib, jb, res.value, stride, variant_);
    } else {
      if (jb == 0) return static_cast<Color>(res.value);
      // The source lies in this block's top k levels, which it shares with
      // its parent block: continue on the corresponding real tree node.
      cur = subtree_node_at(Node{jb * stride, ib}, res.value);
    }
  }
}

const ColorMapping::BatchAccel& ColorMapping::accel() const {
  if (auto cur = std::atomic_load_explicit(&accel_, std::memory_order_acquire)) {
    return *cur;
  }
  // Space caps: the top-color horizon is at most 2^20 - 1 entries (4 MiB)
  // and the batch-path block table at most 2^20 - 1 Resolutions. Beyond
  // them the batch kernel degrades gracefully to the per-node chase.
  constexpr std::uint32_t kTopLevelCap = 20;
  constexpr std::uint64_t kBlockTableCap = std::uint64_t{1} << 20;

  auto built = std::make_shared<BatchAccel>();
  const std::uint32_t top = std::min(tree().levels(), kTopLevelCap);
  if (top > k_) {
    built->top_levels = top;
    built->top_colors = materialize_prefix(top);
  }
  // Under kLazy the within-block resolution has no table; build one for the
  // batch path unless the top table already covers the whole tree (then no
  // chase ever consults it) or a block is too large to tabulate.
  if (retrieval_ == Retrieval::kLazy && top < tree().levels()) {
    const std::uint32_t cap = std::min(n_, tree().levels());
    if (tree_size(cap) <= kBlockTableCap) {
      built->block_table.resize(tree_size(cap));
      for (std::uint64_t pos = 0; pos < built->block_table.size(); ++pos) {
        const std::uint32_t r = floor_log2(pos + 1);
        built->block_table[pos] = resolve_in_block(r, pos + 1 - pow2(r));
      }
    }
  }
  // Fast-chase tables: precompose every block-relative position's jump into
  // a branch-free Step, plus per-level (r, root level, position base)
  // lookups. Only meaningful when the top table covers a whole block, so
  // every chase ends in a top-table gather (see color_of_batch).
  const std::vector<Resolution>* btab =
      retrieval_ == Retrieval::kBlockTable
          ? &block_table_
          : (built->block_table.empty() ? nullptr : &built->block_table);
  if (btab != nullptr && built->top_levels >= n_ &&
      tree().levels() > built->top_levels) {
    const std::uint32_t stride = n_ - k_;
    const std::uint32_t levels = tree().levels();
    built->r_of.resize(levels);
    built->root_of.resize(levels);
    built->pos_base.resize(levels);
    for (std::uint32_t j = k_; j < levels; ++j) {
      const std::uint32_t jb = (j - k_) / stride;
      built->r_of[j] = static_cast<std::uint8_t>(j - jb * stride);
      built->root_of[j] = static_cast<std::uint8_t>(jb * stride);
      built->pos_base[j] =
          static_cast<std::uint32_t>(pow2(built->r_of[j]) - 1);
    }
    built->steps.resize(btab->size());
    for (std::uint64_t pos = 0; pos < btab->size(); ++pos) {
      const Resolution res = (*btab)[pos];
      Step& s = built->steps[pos];
      if (res.from_gamma) {
        // Closed forms of gamma_node with level relative to jb*stride.
        const std::int8_t t = static_cast<std::int8_t>(res.value);
        const std::int8_t w = static_cast<std::int8_t>(stride);
        switch (variant_) {
          case internal::GammaVariant::kCorrect:
            s.dlevel = static_cast<std::int8_t>(t - w);
            s.rshift = static_cast<std::uint8_t>(w - t);
            break;
          case internal::GammaVariant::kIncludeChildRoot:
            s.dlevel = static_cast<std::int8_t>(1 + t - w);
            s.rshift = static_cast<std::uint8_t>(w - 1 - t);
            break;
          case internal::GammaVariant::kReversed:
            s.dlevel = static_cast<std::int8_t>(-1 - t);
            s.rshift = static_cast<std::uint8_t>(t + 1);
            break;
        }
      } else {
        // Closed form of subtree_node_at(Node{jb*stride, ib}, res.value).
        const std::uint32_t lvl = floor_log2(res.value + 1);
        s.dlevel = static_cast<std::int8_t>(lvl);
        s.lshift = static_cast<std::uint8_t>(lvl);
        s.add = static_cast<std::uint32_t>(res.value + 1 - pow2(lvl));
      }
    }
  }

  // Publish; on a race every thread builds the same immutable tables, and
  // whichever lands first wins.
  std::shared_ptr<const BatchAccel> expected;
  std::shared_ptr<const BatchAccel> desired = std::move(built);
  if (std::atomic_compare_exchange_strong_explicit(
          &accel_, &expected, desired, std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    return *desired;
  }
  return *expected;
}

void ColorMapping::color_of_batch(std::span<const Node> nodes,
                                  std::span<Color> out) const {
  assert(out.size() >= nodes.size());
  if (nodes.empty()) return;
  const BatchAccel& acc = accel();

  // Whole tree above the horizon: pure table gather. BFS ids fit 32 bits
  // (top_levels is capped at 20), so the lookup vectorizes: materialize the
  // indices once, then one AVX2 gather sweep over the top table.
  if (acc.top_levels >= tree().levels()) {
    thread_local std::vector<std::uint32_t> ids;
    ids.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      assert(tree().contains(nodes[i]));
      ids[i] = static_cast<std::uint32_t>(bfs_id(nodes[i]));
    }
    simd::gather_u32(acc.top_colors.data(), ids.data(), nodes.size(),
                     out.data());
    return;
  }

  const std::uint64_t Kval = K();
  const std::uint32_t stride = n_ - k_;  // > 0: nodes below the horizon exist
  const Resolution* btable = nullptr;
  if (retrieval_ == Retrieval::kBlockTable) {
    btable = block_table_.data();
  } else if (!acc.block_table.empty()) {
    btable = acc.block_table.data();
  }

  // Fast path: the top table covers at least one full block (top >= N), so
  // every chase provably bottoms out in a top-table lookup — a from-Gamma
  // step lands in the parent generation and a top-k step lands in the
  // block's shared levels, both strictly higher, and the jb == 0 exits sit
  // below level N <= top. The kernel then runs two phases: a branch-free
  // arithmetic chase — each jump is one precomposed Step lookup, no
  // data-dependent branch to mispredict — emitting terminal BFS ids, then
  // one tight gather loop whose independent loads into the 4 MiB top table
  // the CPU overlaps (memory-level parallelism the fused per-node loop
  // cannot extract).
  if (!acc.steps.empty()) {
    const std::uint8_t* r_of = acc.r_of.data();
    const std::uint8_t* root_of = acc.root_of.data();
    const std::uint32_t* pos_base = acc.pos_base.data();
    const Step* steps = acc.steps.data();
    const std::uint32_t top = acc.top_levels;

    thread_local std::vector<std::uint32_t> term;
    term.resize(nodes.size());

    for (std::size_t i = 0; i < nodes.size(); ++i) {
      assert(tree().contains(nodes[i]));
      std::uint32_t lvl = nodes[i].level;
      std::uint64_t idx = nodes[i].index;
      while (lvl >= top) {
        const std::uint32_t r = r_of[lvl];
        const std::uint64_t ib = idx >> r;
        const std::uint64_t irel = idx - (ib << r);
        const Step s = steps[pos_base[lvl] + irel];
        lvl = static_cast<std::uint32_t>(root_of[lvl] + s.dlevel);
        idx = ((ib >> s.rshift) << s.lshift) + s.add;
      }
      // Terminal BFS id: lvl < top <= 20, so it fits 32 bits and the
      // gather phase can run the AVX2 kernel.
      term[i] = static_cast<std::uint32_t>(pow2(lvl) - 1 + idx);
    }

    simd::gather_u32(acc.top_colors.data(), term.data(), nodes.size(),
                     out.data());
    return;
  }

  // Per-block Gamma memo: once a chase resolves Gamma entry t of the block
  // (memo_jb, memo_ib), later nodes of the same block reuse the color.
  // t < stride <= 59, so one word tracks validity and the array lives on
  // the stack — the kernel allocates nothing.
  constexpr std::uint32_t kNoPending = UINT32_MAX;
  Color gamma_memo[64];
  std::uint64_t gamma_valid = 0;
  std::uint32_t memo_jb = UINT32_MAX;
  std::uint64_t memo_ib = 0;

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    assert(tree().contains(nodes[i]));
    Node cur = nodes[i];
    Color c = 0;
    std::uint32_t pending_t = kNoPending;  // Gamma entry to memoize, if any
    bool own_block = true;  // first chase step = the node's own block
    while (true) {
      if (cur.level < k_) {  // Sigma phase: color = BFS id
        c = static_cast<Color>(bfs_id(cur));
        break;
      }
      if (cur.level < acc.top_levels) {
        c = acc.top_colors[bfs_id(cur)];
        break;
      }
      const std::uint32_t jb = (cur.level - k_) / stride;
      const std::uint32_t r = cur.level - jb * stride;
      const std::uint64_t ib = cur.index >> r;
      const std::uint64_t irel = cur.index - (ib << r);
      const Resolution res = btable != nullptr
                                 ? btable[pow2(r) - 1 + irel]
                                 : resolve_in_block(r, irel);
      if (res.from_gamma) {
        if (jb == 0) {
          c = static_cast<Color>(Kval + res.value);
          break;
        }
        if (own_block) {
          if (jb == memo_jb && ib == memo_ib) {
            if ((gamma_valid >> res.value) & 1u) {
              c = gamma_memo[res.value];
              break;
            }
          } else {
            memo_jb = jb;
            memo_ib = ib;
            gamma_valid = 0;
          }
          pending_t = res.value;
        }
        cur = gamma_node(ib, jb, res.value, stride, variant_);
      } else {
        if (jb == 0) {
          c = static_cast<Color>(res.value);
          break;
        }
        cur = subtree_node_at(Node{jb * stride, ib}, res.value);
      }
      own_block = false;
    }
    if (pending_t != kNoPending) {
      gamma_memo[pending_t] = c;
      gamma_valid |= std::uint64_t{1} << pending_t;
    }
    out[i] = c;
  }
}

std::vector<Color> ColorMapping::materialize() const {
  return materialize_prefix(tree().levels());
}

std::vector<Color> ColorMapping::materialize_prefix(std::uint32_t L) const {
  assert(L <= tree().levels());
  const std::uint64_t Kval = K();
  const std::uint64_t half_block = pow2(k_ - 1);
  std::vector<Color> col(tree_size(L));

  // Sigma phase: top k levels of the root block.
  const std::uint64_t sigma_nodes = tree_size(std::min(k_, L));
  for (std::uint64_t id = 0; id < sigma_nodes; ++id) {
    col[id] = static_cast<Color>(id);
  }

  // BOTTOM phase, level by level; every level j >= k belongs to exactly
  // one block generation jb with relative level r in [k, N-1].
  for (std::uint32_t j = k_; j < L; ++j) {
    const std::uint32_t stride = n_ - k_;
    const std::uint32_t jb = (j - k_) / stride;
    const std::uint32_t r = j - jb * stride;
    const std::uint64_t level_first = pow2(j) - 1;  // BFS id of v(0, j)
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      const std::uint64_t ib = i >> r;
      const std::uint64_t irel = i - (ib << r);
      const std::uint64_t h = irel >> (k_ - 1);
      const std::uint64_t p = irel & (half_block - 1);
      Color c;
      if (p == half_block - 1) {
        if (jb == 0) {
          c = static_cast<Color>(Kval + (r - k_));
        } else {
          c = col[bfs_id(gamma_node(ib, jb, r - k_, stride, variant_))];
        }
      } else {
        const std::uint64_t hs = h ^ 1;
        const std::uint32_t rho = floor_log2(p + 1);
        const std::uint64_t s = p + 1 - pow2(rho);
        const std::uint32_t rel_level = r - k_ + 1 + rho;
        const Node src{jb * stride + rel_level, (ib << rel_level) + (hs << rho) + s};
        c = col[bfs_id(src)];
      }
      col[level_first + i] = c;
    }
  }
  return col;
}

BasicColorMapping::BasicColorMapping(CompleteBinaryTree tree, std::uint32_t N,
                                     std::uint32_t k)
    : ColorMapping(tree, N, k) {
  assert(tree.levels() <= N && "BASIC-COLOR colors a single block");
}

std::string BasicColorMapping::name() const {
  return "BASIC-COLOR(N=" + std::to_string(N()) + ",K=" + std::to_string(K()) + ")";
}

EagerColorMapping::EagerColorMapping(const ColorMapping& base)
    : TreeMapping(base.tree()),
      table_(base.materialize()),
      modules_(base.num_modules()),
      base_name_(base.name()) {}

void EagerColorMapping::color_of_batch(std::span<const Node> nodes,
                                       std::span<Color> out) const {
  assert(out.size() >= nodes.size());
  // The AVX2 gather consumes indices as signed 32-bit lane offsets, so it
  // only applies while every BFS id fits 31 bits (trees up to 31 levels);
  // taller trees keep the scalar sweep.
  if (table_.size() < (std::uint64_t{1} << 31)) {
    thread_local std::vector<std::uint32_t> ids;
    ids.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      ids[i] = static_cast<std::uint32_t>(bfs_id(nodes[i]));
    }
    simd::gather_u32(table_.data(), ids.data(), nodes.size(), out.data());
    return;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = table_[bfs_id(nodes[i])];
  }
}

std::string EagerColorMapping::name() const { return base_name_ + "+table"; }

ColorMapping make_optimal_color_mapping(CompleteBinaryTree tree, std::uint32_t M) {
  assert(M >= 3);
  const std::uint32_t m = floor_log2(std::uint64_t{M} + 1);  // largest 2^m-1 <= M
  const std::uint32_t k = m - 1;                             // K = 2^{m-1} - 1
  const std::uint32_t N = static_cast<std::uint32_t>(pow2(m - 1)) + m - 1;  // N = 2^{m-1} + m - 1
  return ColorMapping(tree, N, k);
}

ColorMapping make_cf_mapping_for_modules(CompleteBinaryTree tree,
                                         std::uint32_t M, std::uint32_t k) {
  assert(k >= 1);
  const auto K = static_cast<std::uint32_t>(tree_size(k));
  assert(M >= K + 1);  // room for N >= k + 1
  const std::uint32_t N = M - K + k;  // N + K - k == M exactly
  return ColorMapping(tree, N, k);
}

}  // namespace pmtree
