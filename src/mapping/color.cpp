#include "pmtree/mapping/color.hpp"

#include <cassert>

namespace pmtree {

namespace {

/// The node whose color is entry t (0-based, top-down for kCorrect) of
/// Gamma(ib, jb): the list of N-k node colors along the path between the
/// roots of block (ib, jb) and its parent block. `stride` is N - k.
[[nodiscard]] Node gamma_node(std::uint64_t ib, std::uint32_t jb, std::uint32_t t,
                              std::uint32_t stride,
                              internal::GammaVariant variant) noexcept {
  assert(jb >= 1 && t < stride);
  const std::uint32_t parent_root_level = (jb - 1) * stride;
  switch (variant) {
    case internal::GammaVariant::kCorrect:
      // parent-block root .. parent of this block's root, top-down.
      return Node{parent_root_level + t, ib >> (stride - t)};
    case internal::GammaVariant::kIncludeChildRoot:
      // child of parent-block root .. this block's root, top-down.
      return Node{parent_root_level + 1 + t, ib >> (stride - 1 - t)};
    case internal::GammaVariant::kReversed:
      // kCorrect's node set, bottom-up.
      return Node{parent_root_level + (stride - 1 - t), ib >> (t + 1)};
  }
  return Node{};  // unreachable
}

}  // namespace

ColorMapping::ColorMapping(CompleteBinaryTree tree, std::uint32_t N,
                           std::uint32_t k, internal::GammaVariant variant,
                           Retrieval retrieval)
    : TreeMapping(tree), n_(N), k_(k), variant_(variant), retrieval_(retrieval) {
  assert(k >= 1 && k <= N);
  assert(N <= 60);
  // Trees taller than one block need the block family B(N), which requires
  // a positive root stride N - k.
  assert(tree.levels() <= N || N > k);

  if (retrieval_ == Retrieval::kBlockTable) {
    // PRE-BASIC-COLOR: resolve every block-relative position once. The
    // chase is position-only, so this one O(2^N) table serves all blocks.
    const std::uint32_t cap = std::min(n_, tree.levels());
    block_table_.resize(tree_size(cap));
    for (std::uint64_t pos = 0; pos < block_table_.size(); ++pos) {
      const std::uint32_t r = floor_log2(pos + 1);
      block_table_[pos] = resolve_in_block(r, pos + 1 - pow2(r));
    }
  }
}

std::uint32_t ColorMapping::num_modules() const noexcept {
  return n_ + static_cast<std::uint32_t>(K()) - k_;
}

std::string ColorMapping::name() const {
  return "COLOR(N=" + std::to_string(n_) + ",K=" + std::to_string(K()) + ")" +
         (retrieval_ == Retrieval::kBlockTable ? "+blocktable" : "");
}

ColorMapping::Resolution ColorMapping::resolve_in_block(
    std::uint32_t r, std::uint64_t irel) const noexcept {
  const std::uint64_t half_block = pow2(k_ - 1);
  while (r >= k_) {
    const std::uint64_t h = irel >> (k_ - 1);
    const std::uint64_t p = irel & (half_block - 1);
    if (p == half_block - 1) {
      // Last node of block(h, r): fresh color Gamma[r - k].
      return Resolution{true, r - k_};
    }
    // Inherit the color of the node at BFS position p of the size-K
    // subtree rooted at the sibling of this block's (k-1)-st ancestor.
    const std::uint64_t hs = h ^ 1;
    const std::uint32_t rho = floor_log2(p + 1);
    const std::uint64_t s = p + 1 - pow2(rho);
    r = r - k_ + 1 + rho;
    irel = (hs << rho) + s;
  }
  // Landed in the top k levels of the block: BFS position is the source.
  return Resolution{false, static_cast<std::uint32_t>(pow2(r) - 1 + irel)};
}

Color ColorMapping::color_of(Node nd) const {
  assert(tree().contains(nd));
  const std::uint64_t Kval = K();
  Node cur = nd;
  while (true) {
    if (cur.level < k_) {
      // Top k levels of the root block: v(i, j) gets color 2^j + i - 1,
      // i.e. its BFS id (the Sigma phase of BASIC-COLOR).
      return static_cast<Color>(bfs_id(cur));
    }
    const std::uint32_t stride = n_ - k_;
    const std::uint32_t jb = (cur.level - k_) / stride;
    const std::uint32_t r = cur.level - jb * stride;  // block-relative level
    const std::uint64_t ib = cur.index >> r;          // block root index
    const std::uint64_t irel = cur.index - (ib << r);

    const Resolution res = retrieval_ == Retrieval::kBlockTable
                               ? block_table_[pow2(r) - 1 + irel]
                               : resolve_in_block(r, irel);
    if (res.from_gamma) {
      if (jb == 0) return static_cast<Color>(Kval + res.value);
      cur = gamma_node(ib, jb, res.value, stride, variant_);
    } else {
      if (jb == 0) return static_cast<Color>(res.value);
      // The source lies in this block's top k levels, which it shares with
      // its parent block: continue on the corresponding real tree node.
      cur = subtree_node_at(Node{jb * stride, ib}, res.value);
    }
  }
}

std::vector<Color> ColorMapping::materialize() const {
  const std::uint32_t L = tree().levels();
  const std::uint64_t Kval = K();
  const std::uint64_t half_block = pow2(k_ - 1);
  std::vector<Color> col(tree().size());

  // Sigma phase: top k levels of the root block.
  const std::uint64_t sigma_nodes = tree_size(std::min(k_, L));
  for (std::uint64_t id = 0; id < sigma_nodes; ++id) {
    col[id] = static_cast<Color>(id);
  }

  // BOTTOM phase, level by level; every level j >= k belongs to exactly
  // one block generation jb with relative level r in [k, N-1].
  for (std::uint32_t j = k_; j < L; ++j) {
    const std::uint32_t stride = n_ - k_;
    const std::uint32_t jb = (j - k_) / stride;
    const std::uint32_t r = j - jb * stride;
    const std::uint64_t level_first = pow2(j) - 1;  // BFS id of v(0, j)
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      const std::uint64_t ib = i >> r;
      const std::uint64_t irel = i - (ib << r);
      const std::uint64_t h = irel >> (k_ - 1);
      const std::uint64_t p = irel & (half_block - 1);
      Color c;
      if (p == half_block - 1) {
        if (jb == 0) {
          c = static_cast<Color>(Kval + (r - k_));
        } else {
          c = col[bfs_id(gamma_node(ib, jb, r - k_, stride, variant_))];
        }
      } else {
        const std::uint64_t hs = h ^ 1;
        const std::uint32_t rho = floor_log2(p + 1);
        const std::uint64_t s = p + 1 - pow2(rho);
        const std::uint32_t rel_level = r - k_ + 1 + rho;
        const Node src{jb * stride + rel_level, (ib << rel_level) + (hs << rho) + s};
        c = col[bfs_id(src)];
      }
      col[level_first + i] = c;
    }
  }
  return col;
}

BasicColorMapping::BasicColorMapping(CompleteBinaryTree tree, std::uint32_t N,
                                     std::uint32_t k)
    : ColorMapping(tree, N, k) {
  assert(tree.levels() <= N && "BASIC-COLOR colors a single block");
}

std::string BasicColorMapping::name() const {
  return "BASIC-COLOR(N=" + std::to_string(N()) + ",K=" + std::to_string(K()) + ")";
}

EagerColorMapping::EagerColorMapping(const ColorMapping& base)
    : TreeMapping(base.tree()),
      table_(base.materialize()),
      modules_(base.num_modules()),
      base_name_(base.name()) {}

std::string EagerColorMapping::name() const { return base_name_ + "+table"; }

ColorMapping make_optimal_color_mapping(CompleteBinaryTree tree, std::uint32_t M) {
  assert(M >= 3);
  const std::uint32_t m = floor_log2(std::uint64_t{M} + 1);  // largest 2^m-1 <= M
  const std::uint32_t k = m - 1;                             // K = 2^{m-1} - 1
  const std::uint32_t N = static_cast<std::uint32_t>(pow2(m - 1)) + m - 1;  // N = 2^{m-1} + m - 1
  return ColorMapping(tree, N, k);
}

ColorMapping make_cf_mapping_for_modules(CompleteBinaryTree tree,
                                         std::uint32_t M, std::uint32_t k) {
  assert(k >= 1);
  const auto K = static_cast<std::uint32_t>(tree_size(k));
  assert(M >= K + 1);  // room for N >= k + 1
  const std::uint32_t N = M - K + k;  // N + K - k == M exactly
  return ColorMapping(tree, N, k);
}

}  // namespace pmtree
