#include "pmtree/mapping/mapping.hpp"

#include <cassert>

namespace pmtree {

void TreeMapping::color_of_batch(std::span<const Node> nodes,
                                 std::span<Color> out) const {
  assert(out.size() >= nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = color_of(nodes[i]);
}

std::vector<Color> TreeMapping::colors_of(std::span<const Node> nodes) const {
  std::vector<Color> out(nodes.size());
  color_of_batch(nodes, out);
  return out;
}

}  // namespace pmtree
