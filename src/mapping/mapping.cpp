#include "pmtree/mapping/mapping.hpp"

namespace pmtree {

std::vector<Color> TreeMapping::colors_of(std::span<const Node> nodes) const {
  std::vector<Color> out;
  out.reserve(nodes.size());
  for (const Node& n : nodes) out.push_back(color_of(n));
  return out;
}

}  // namespace pmtree
