#include "pmtree/dyn/apps.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

namespace pmtree::dyn {

// ---------------------------------------------------------------------------
// DynamicDictionary
// ---------------------------------------------------------------------------

DynamicDictionary::DynamicDictionary(DynamicTree& tree, std::uint32_t client_id,
                                     Key root_key)
    : tree_(&tree), client_(client_id) {
  keys_.resize(tree.slot_watermark(), 0);
  has_key_.resize(tree.slot_watermark(), 0);
  const std::uint64_t slot = tree.slot_of(tree.envelope().root());
  keys_[slot] = root_key;
  has_key_[slot] = 1;
}

DynamicDictionary::Key DynamicDictionary::key_at(Node n,
                                                 bool* in_overlay) const {
  for (const auto& [node, key] : overlay_) {
    if (node == n) {
      if (in_overlay != nullptr) *in_overlay = true;
      return key;
    }
  }
  if (in_overlay != nullptr) *in_overlay = false;
  assert(tree_->is_live(n));
  const std::uint64_t slot = tree_->slot_of(n);
  // Every live node written by a dictionary client has its key harvested
  // from the mutation log at reconcile; a missing key means a foreign
  // writer shares the tree, which the dictionary does not support.
  assert(slot < has_key_.size() && has_key_[slot] != 0);
  return slot < keys_.size() ? keys_[slot] : 0;
}

DynamicDictionary::Walk DynamicDictionary::walk(Key key) const {
  Walk w;
  Node cur = tree_->envelope().root();
  while (true) {
    w.path.push_back(cur);
    const Key k = key_at(cur, nullptr);
    if (k == key) {
      w.found = true;
      return w;
    }
    const Node child = key < k ? left_child(cur) : right_child(cur);
    if (!tree_->envelope().contains(child)) return w;  // envelope exhausted
    bool in_overlay = false;
    if (tree_->is_live(child)) {
      cur = child;
      continue;
    }
    for (const auto& entry : overlay_) {
      if (entry.first == child) {
        in_overlay = true;
        break;
      }
    }
    if (in_overlay) {
      cur = child;
      continue;
    }
    w.attach = child;
    w.attachable = true;
    return w;
  }
}

std::uint64_t DynamicDictionary::submit_search(serve::Server& server, Key key,
                                               std::uint64_t submit_cycle,
                                               std::uint64_t deadline_cycles) {
  const Walk w = walk(key);
  const std::uint64_t seq = ops_.size();
  ops_.push_back(Op{key, false});
  serve::Request req;
  req.client = client_;
  req.seq = seq;
  req.submit_cycle = submit_cycle;
  req.deadline_cycles = deadline_cycles;
  req.nodes = w.path;
  server.submit(std::move(req));
  return seq;
}

std::uint64_t DynamicDictionary::submit_insert(serve::Server& server, Key key,
                                               std::uint64_t submit_cycle,
                                               std::uint64_t deadline_cycles) {
  const Walk w = walk(key);
  const std::uint64_t seq = ops_.size();
  ops_.push_back(Op{key, true});
  serve::Request req;
  req.client = client_;
  req.seq = seq;
  req.submit_cycle = submit_cycle;
  req.deadline_cycles = deadline_cycles;
  req.nodes = w.path;
  if (!w.found && w.attachable) {
    req.kind = serve::RequestKind::kInsert;
    req.target = w.attach;
    req.payload = key;
    req.nodes.push_back(w.attach);
    overlay_.emplace_back(w.attach, key);
  }
  // Duplicate key or exhausted envelope: the request stays a read of the
  // search path; reconcile reports applied = false.
  server.submit(std::move(req));
  return seq;
}

void DynamicDictionary::store_key(Node n, Key key) {
  const std::uint64_t slot = tree_->slot_of(n);
  if (slot >= keys_.size()) {
    keys_.resize(slot + 1, 0);
    has_key_.resize(slot + 1, 0);
  }
  if (has_key_[slot] == 0) {
    has_key_[slot] = 1;
    key_count_ += 1;
  }
  keys_[slot] = key;
}

std::vector<DynamicDictionary::Outcome> DynamicDictionary::reconcile(
    const serve::ServeReport& report) {
  // Harvest every applied insert — any client's — from the barrier log:
  // keys ride mutations as payloads, so the log is the authoritative
  // key-state delta and every dictionary client converges to the same
  // store. (Erases are not part of the dictionary protocol.)
  std::unordered_map<std::uint64_t, char> ours_applied;
  for (const serve::MutationRecord& rec : report.mutations) {
    if (rec.status != DynStatus::kOk) continue;
    if (rec.kind == serve::RequestKind::kInsert) {
      store_key(rec.target, rec.payload);
    }
    if (rec.client == client_) ours_applied[rec.seq] = 1;
  }
  overlay_.clear();

  std::vector<Outcome> outcomes;
  for (const serve::Response& resp : report.responses) {
    if (resp.client != client_) continue;
    assert(resp.seq < ops_.size());
    const Op& op = ops_[resp.seq];
    Outcome out;
    out.seq = resp.seq;
    out.key = op.key;
    out.is_insert = op.insert;
    out.response = resp;
    out.applied = ours_applied.count(resp.seq) != 0;
    out.found = contains(op.key);
    outcomes.push_back(out);
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) { return a.seq < b.seq; });
  reconciled_ = ops_.size();
  return outcomes;
}

bool DynamicDictionary::contains(Key key) const { return walk(key).found; }

// ---------------------------------------------------------------------------
// DynamicHeap
// ---------------------------------------------------------------------------

DynamicHeap::DynamicHeap(DynamicTree& tree, std::uint32_t client_id,
                         Key root_key)
    : tree_(&tree), client_(client_id) {
  heap_.push_back(root_key);
  shadow_ = heap_;
}

void DynamicHeap::sift_up(std::vector<Key>& heap, std::size_t i,
                          std::vector<Node>* touched) {
  if (touched != nullptr) touched->push_back(node_at(i));
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (heap[p] <= heap[i]) break;
    std::swap(heap[p], heap[i]);
    i = p;
    if (touched != nullptr) touched->push_back(node_at(i));
  }
}

void DynamicHeap::sift_down(std::vector<Key>& heap,
                            std::vector<Node>* touched) {
  std::size_t i = 0;
  if (touched != nullptr) touched->push_back(node_at(i));
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t best = i;
    if (l < heap.size() && heap[l] < heap[best]) best = l;
    if (r < heap.size() && heap[r] < heap[best]) best = r;
    if (best == i) return;
    std::swap(heap[i], heap[best]);
    i = best;
    if (touched != nullptr) touched->push_back(node_at(i));
  }
}

DynamicHeap::Key DynamicHeap::pop_heap(std::vector<Key>& heap,
                                       std::vector<Node>* touched) {
  assert(heap.size() > 1);
  const Key out = heap.front();
  heap.front() = heap.back();
  heap.pop_back();
  sift_down(heap, touched);
  return out;
}

std::uint64_t DynamicHeap::submit_push(serve::Server& server, Key key,
                                       std::uint64_t submit_cycle,
                                       std::uint64_t deadline_cycles) {
  const std::uint64_t seq = ops_.size();
  ops_.push_back(Op{key, true});
  const Node target = node_at(shadow_.size());
  serve::Request req;
  req.client = client_;
  req.seq = seq;
  req.submit_cycle = submit_cycle;
  req.deadline_cycles = deadline_cycles;
  req.kind = serve::RequestKind::kInsert;
  req.target = target;
  req.payload = key;
  // The sift-up path: target up to the root — every coordinate the push
  // may compare or write.
  Node cur = target;
  for (std::uint32_t d = 0; d <= target.level; ++d) {
    req.nodes.push_back(cur);
    if (cur.level > 0) cur = parent(cur);
  }
  shadow_.push_back(key);
  sift_up(shadow_, shadow_.size() - 1, nullptr);
  server.submit(std::move(req));
  return seq;
}

std::uint64_t DynamicHeap::submit_pop(serve::Server& server,
                                      std::uint64_t submit_cycle,
                                      std::uint64_t deadline_cycles) {
  const std::uint64_t seq = ops_.size();
  ops_.push_back(Op{0, false});
  serve::Request req;
  req.client = client_;
  req.seq = seq;
  req.submit_cycle = submit_cycle;
  req.deadline_cycles = deadline_cycles;
  req.kind = serve::RequestKind::kErase;
  if (shadow_.size() > 1) {
    req.target = node_at(shadow_.size() - 1);
    pop_heap(shadow_, &req.nodes);  // speculative sift-down chain
  } else {
    // Speculatively empty: the erase targets the root and the barrier
    // rejects it (kIsRoot) — the deterministic "pop of empty heap".
    req.target = node_at(0);
    req.nodes.push_back(node_at(0));
  }
  server.submit(std::move(req));
  return seq;
}

std::vector<DynamicHeap::Outcome> DynamicHeap::reconcile(
    const serve::ServeReport& report) {
  // Replay our applied mutations in log (barrier) order: the heap's
  // final state and every pop's extracted key are pure functions of the
  // deterministic log, matching a sequential reference replay.
  std::unordered_map<std::uint64_t, Key> popped;
  std::unordered_map<std::uint64_t, char> ours_applied;
  for (const serve::MutationRecord& rec : report.mutations) {
    if (rec.client != client_ || rec.status != DynStatus::kOk) continue;
    assert(rec.seq < ops_.size());
    const Op& op = ops_[rec.seq];
    if (op.push) {
      heap_.push_back(op.key);
      sift_up(heap_, heap_.size() - 1, nullptr);
    } else {
      popped[rec.seq] = pop_heap(heap_, nullptr);
    }
    ours_applied[rec.seq] = 1;
  }

  std::vector<Outcome> outcomes;
  for (const serve::Response& resp : report.responses) {
    if (resp.client != client_) continue;
    assert(resp.seq < ops_.size());
    const Op& op = ops_[resp.seq];
    Outcome out;
    out.seq = resp.seq;
    out.is_push = op.push;
    out.response = resp;
    out.applied = ours_applied.count(resp.seq) != 0;
    out.key = op.push ? op.key : (out.applied ? popped[resp.seq] : 0);
    outcomes.push_back(out);
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) { return a.seq < b.seq; });
  shadow_ = heap_;  // drop stale speculation (shed/expired/rejected ops)
  reconciled_ = ops_.size();
  return outcomes;
}

}  // namespace pmtree::dyn
