#include "pmtree/dyn/dynamic_tree.hpp"

#include <algorithm>

namespace pmtree::dyn {

DynamicTree::DynamicTree(std::uint32_t max_levels)
    : envelope_(max_levels),
      live_(max_levels),
      slot_(max_levels),
      level_count_(max_levels, 0) {
  assert(max_levels >= 1 && max_levels <= 26);
  ensure_level(0);
  set_live(envelope_.root());
}

void DynamicTree::ensure_level(std::uint32_t j) {
  assert(j < envelope_.levels());
  if (!live_[j].empty()) return;
  const std::uint64_t width = envelope_.level_width(j);
  live_[j].assign((width + 63) / 64, 0);
  slot_[j].assign(width, 0);
}

void DynamicTree::set_live(Node n) {
  ensure_level(n.level);
  live_[n.level][n.index >> 6] |= std::uint64_t{1} << (n.index & 63);
  // Slot allocation: recycle LIFO before growing the watermark — the
  // bp-forest free-list idiom, keeping payload arrays dense under churn.
  std::uint64_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = slot_watermark_++;
  }
  slot_[n.level][n.index] = s;
  level_count_[n.level] += 1;
  size_ += 1;
  if (n.level > deepest_) deepest_ = n.level;
  version_ += 1;
}

void DynamicTree::clear_live(Node n) {
  live_[n.level][n.index >> 6] &= ~(std::uint64_t{1} << (n.index & 63));
  free_slots_.push_back(slot_[n.level][n.index]);
  level_count_[n.level] -= 1;
  size_ -= 1;
  while (deepest_ > 0 && level_count_[deepest_] == 0) deepest_ -= 1;
  version_ += 1;
}

DynStatus DynamicTree::insert_node(Node target) {
  if (!envelope_.contains(target)) return DynStatus::kNotInEnvelope;
  if (is_live(target)) return DynStatus::kOccupied;
  // The root is live from construction, so any valid non-live target has
  // level >= 1 and needs a live parent.
  if (!is_live(parent(target))) return DynStatus::kParentMissing;
  set_live(target);
  return DynStatus::kOk;
}

DynamicTree::Alloc DynamicTree::append_leaf(Node parent_node) {
  if (!is_live(parent_node)) return Alloc{DynStatus::kParentMissing, Node{}};
  if (parent_node.level + 1 >= envelope_.levels()) {
    return Alloc{DynStatus::kHeightLimit, Node{}};
  }
  const Node left = left_child(parent_node);
  if (!is_live(left)) {
    set_live(left);
    return Alloc{DynStatus::kOk, left};
  }
  const Node right = right_child(parent_node);
  if (!is_live(right)) {
    set_live(right);
    return Alloc{DynStatus::kOk, right};
  }
  return Alloc{DynStatus::kOccupied, Node{}};
}

DynStatus DynamicTree::remove_leaf(Node leaf) {
  if (!is_live(leaf)) return DynStatus::kNotLive;
  if (leaf.level == 0) return DynStatus::kIsRoot;
  if (leaf.level + 1 < envelope_.levels() &&
      (is_live(left_child(leaf)) || is_live(right_child(leaf)))) {
    return DynStatus::kHasChildren;
  }
  clear_live(leaf);
  return DynStatus::kOk;
}

DynamicTree::SubtreeOp DynamicTree::grow_subtree(Node root,
                                                 std::uint32_t levels) {
  if (!is_live(root)) return SubtreeOp{DynStatus::kNotLive, 0};
  if (levels == 0) return SubtreeOp{DynStatus::kOk, 0};
  if (root.level + levels > envelope_.levels()) {
    return SubtreeOp{DynStatus::kHeightLimit, 0};
  }
  // Top-down, so every inserted node's parent is live by the time it is
  // reached (the subtree root is live, and level d fills before d+1).
  std::uint64_t inserted = 0;
  for (std::uint32_t d = 1; d < levels; ++d) {
    const std::uint32_t j = root.level + d;
    const std::uint64_t first = root.index << d;
    for (std::uint64_t off = 0; off < pow2(d); ++off) {
      const Node n{j, first + off};
      if (!is_live(n)) {
        set_live(n);
        inserted += 1;
      }
    }
  }
  return SubtreeOp{DynStatus::kOk, inserted};
}

DynamicTree::SubtreeOp DynamicTree::prune_subtree(Node root) {
  if (!is_live(root)) return SubtreeOp{DynStatus::kNotLive, 0};
  // Bottom-up, so every removal is a leaf removal by the time it happens.
  std::uint64_t removed = 0;
  for (std::uint32_t j = deepest_; j > root.level; --j) {
    const std::uint32_t d = j - root.level;
    if (live_[j].empty()) continue;
    const std::uint64_t first = root.index << d;
    const std::uint64_t last = ((root.index + 1) << d) - 1;
    // Word-granular sweep of the subtree's index range at this level.
    for (std::uint64_t w = first >> 6; w <= (last >> 6); ++w) {
      std::uint64_t bits = live_[j][w];
      while (bits != 0) {
        const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t i = (w << 6) + b;
        if (i < first || i > last) continue;
        clear_live(Node{j, i});
        removed += 1;
      }
    }
  }
  return SubtreeOp{DynStatus::kOk, removed};
}

std::vector<Node> DynamicTree::live_nodes() const {
  std::vector<Node> out;
  out.reserve(size_);
  for_each_live([&](Node n) { out.push_back(n); });
  return out;
}

bool DynamicTree::validate() const {
  if (!is_live(envelope_.root())) return false;
  std::uint64_t total = 0;
  std::uint32_t max_live_level = 0;
  std::vector<std::uint64_t> slots;
  bool parents_ok = true;
  for_each_live([&](Node n) {
    total += 1;
    max_live_level = std::max(max_live_level, n.level);
    slots.push_back(slot_[n.level][n.index]);
    if (n.level > 0 && !is_live(parent(n))) parents_ok = false;
  });
  if (!parents_ok || total != size_ || max_live_level != deepest_) {
    return false;
  }
  for (std::uint32_t j = 0; j < envelope_.levels(); ++j) {
    std::uint64_t c = 0;
    for (const std::uint64_t w : live_[j]) {
      c += static_cast<std::uint64_t>(std::popcount(w));
    }
    if (c != level_count_[j]) return false;
  }
  std::sort(slots.begin(), slots.end());
  if (std::adjacent_find(slots.begin(), slots.end()) != slots.end()) {
    return false;
  }
  if (!slots.empty() && slots.back() >= slot_watermark_) return false;
  return true;
}

}  // namespace pmtree::dyn
