#include "pmtree/dyn/incremental.hpp"

#include <algorithm>
#include <cassert>

#include "pmtree/util/bits.hpp"

namespace pmtree::dyn {

namespace {

/// COLOR's single-source recurrence (the BOTTOM step of §3, identical to
/// ColorMapping::materialize_prefix's fill): where node n at level >= k
/// takes its color from. Exactly one of the three outcomes holds:
///   kFresh   — the block-last node of a root-generation block; the color
///              is the closed form K + (r - k);
///   kInherit — the color is the source node's color (strictly shallower).
/// Levels below k are the Sigma closed form (bfs_id) and never reach here.
struct ColorStep {
  bool fresh = false;
  Color fresh_color = 0;
  Node source;
};

[[nodiscard]] ColorStep color_step(Node n, std::uint32_t N,
                                   std::uint32_t k) noexcept {
  assert(n.level >= k);
  const std::uint32_t stride = N - k;
  const std::uint32_t jb = (n.level - k) / stride;
  const std::uint32_t r = n.level - jb * stride;
  const std::uint64_t ib = n.index >> r;
  const std::uint64_t irel = n.index - (ib << r);
  const std::uint64_t half = pow2(k - 1);
  const std::uint64_t h = irel >> (k - 1);
  const std::uint64_t p = irel & (half - 1);
  if (p == half - 1) {
    if (jb == 0) {
      return ColorStep{true, static_cast<Color>(tree_size(k) + (r - k)),
                       Node{}};
    }
    // Gamma(ib, jb) entry r - k: parent-block root path, top-down (the
    // kCorrect resolution proved right by the exhaustive suites).
    const std::uint32_t t = r - k;
    return ColorStep{false, 0,
                     Node{(jb - 1) * stride + t, ib >> (stride - t)}};
  }
  const std::uint64_t hs = h ^ 1;
  const std::uint32_t rho = floor_log2(p + 1);
  const std::uint64_t s = p + 1 - pow2(rho);
  const std::uint32_t rel_level = r - k + 1 + rho;
  return ColorStep{false, 0,
                   Node{jb * stride + rel_level,
                        (ib << rel_level) + (hs << rho) + s}};
}

}  // namespace

IncrementalColorer::IncrementalColorer(CompleteBinaryTree envelope,
                                       Scheme scheme, std::uint32_t N,
                                       std::uint32_t k, std::uint32_t M)
    : TreeMapping(CompleteBinaryTree(1)),
      envelope_(envelope),
      scheme_(scheme),
      state_(std::make_unique<State>()) {
  assert(envelope.levels() <= 26 &&
         "per-level color stores cap the envelope at 26 levels");
  if (scheme_ == Scheme::kColor) {
    assert(k >= 1 && k <= N);
    assert(envelope.levels() <= N || N > k);
    n_ = N;
    k_ = k;
    modules_ = N + static_cast<std::uint32_t>(tree_size(k)) - k;
  } else {
    assert(M >= 3);
    label_ = std::make_unique<LabelTreeMapping>(
        envelope, M, LabelTreeMapping::Retrieval::kRecursive);
    modules_ = M;
  }
  state_->owned.resize(envelope.levels());
  state_->published =
      std::vector<std::atomic<Color*>>(envelope.levels());
  state_->colored.resize(envelope.levels());
  touch(envelope.root());
}

IncrementalColorer IncrementalColorer::color(CompleteBinaryTree envelope,
                                             std::uint32_t N,
                                             std::uint32_t k) {
  return IncrementalColorer(envelope, Scheme::kColor, N, k, 0);
}

IncrementalColorer IncrementalColorer::label_tree(CompleteBinaryTree envelope,
                                                  std::uint32_t M) {
  return IncrementalColorer(envelope, Scheme::kLabelTree, 0, 0, M);
}

Color* IncrementalColorer::writable_level(std::uint32_t j) {
  assert(j < envelope_.levels());
  Color* ptr = state_->published[j].load(std::memory_order_relaxed);
  if (ptr != nullptr) return ptr;
  const std::uint64_t width = envelope_.level_width(j);
  auto fresh = std::make_unique<Color[]>(width);
  for (std::uint64_t i = 0; i < width; ++i) fresh[i] = kUncolored;
  state_->colored[j].assign((width + 63) / 64, 0);
  ptr = fresh.get();
  state_->owned[j] = std::move(fresh);
  // Release: a worker that acquires this pointer (after the batch-cut
  // barrier's own release edge) sees the sentinel fill and every entry
  // memoized before its batch was cut.
  state_->published[j].store(ptr, std::memory_order_release);
  return ptr;
}

Color IncrementalColorer::ensure(Node n) {
  assert(envelope_.contains(n));
  Color* level = writable_level(n.level);
  std::vector<std::uint64_t>& bits = state_->colored[n.level];
  if ((bits[n.index >> 6] >> (n.index & 63)) & 1) return level[n.index];

  Color c;
  if (scheme_ == Scheme::kLabelTree) {
    c = label_->color_of(n);
  } else if (n.level < k_) {
    c = static_cast<Color>(bfs_id(n));  // Sigma: the top k levels
  } else {
    const ColorStep step = color_step(n, n_, k_);
    // The source is strictly shallower, so the recursion depth is at
    // most n.level (<= 25) and every node on the chain is memoized once.
    c = step.fresh ? step.fresh_color : ensure(step.source);
  }
  level[n.index] = c;
  bits[n.index >> 6] |= std::uint64_t{1} << (n.index & 63);
  state_->nodes_colored += 1;
  return c;
}

void IncrementalColorer::touch(Node n) {
  ensure(n);
  state_->touches += 1;
  if (n.level + 1 > touched_levels_) {
    touched_levels_ = n.level + 1;
    resize_tree(CompleteBinaryTree(touched_levels_));
  }
}

void IncrementalColorer::touch(std::span<const Node> nodes) {
  for (const Node n : nodes) touch(n);
}

Color IncrementalColorer::compute_cold(Node n) const {
  assert(envelope_.contains(n));
  if (scheme_ == Scheme::kLabelTree) return label_->color_of(n);
  // COLOR's dependency chain is a single path of strictly decreasing
  // levels — follow it without memoizing (O(level) worst case).
  while (n.level >= k_) {
    const ColorStep step = color_step(n, n_, k_);
    if (step.fresh) return step.fresh_color;
    // A memoized prefix short-circuits the walk (loads are safe: the
    // entry was published before any worker could ask for a node
    // depending on it).
    const Color* level =
        state_->published[step.source.level].load(std::memory_order_acquire);
    if (level != nullptr) {
      const Color c = level[step.source.index];
      if (c != kUncolored) return c;
    }
    n = step.source;
  }
  return static_cast<Color>(bfs_id(n));
}

Color IncrementalColorer::color_of(Node n) const {
  assert(envelope_.contains(n));
  const Color* level =
      state_->published[n.level].load(std::memory_order_acquire);
  if (level != nullptr) {
    const Color c = level[n.index];
    if (c != kUncolored) return c;
  }
  return compute_cold(n);
}

void IncrementalColorer::color_of_batch(std::span<const Node> nodes,
                                        std::span<Color> out) const {
  assert(out.size() >= nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = color_of(nodes[i]);
  }
}

std::uint32_t IncrementalColorer::num_modules() const noexcept {
  return modules_;
}

std::string IncrementalColorer::name() const {
  if (scheme_ == Scheme::kColor) {
    return "INCR-COLOR(N=" + std::to_string(n_) +
           ",K=" + std::to_string(tree_size(k_)) + ")";
  }
  return "INCR-LABEL-TREE(M=" + std::to_string(modules_) + ")";
}

void IncrementalColorer::reset() {
  for (std::uint32_t j = 0; j < envelope_.levels(); ++j) {
    Color* level = state_->published[j].load(std::memory_order_relaxed);
    if (level == nullptr) continue;
    const std::uint64_t width = envelope_.level_width(j);
    for (std::uint64_t i = 0; i < width; ++i) level[i] = kUncolored;
    std::fill(state_->colored[j].begin(), state_->colored[j].end(), 0);
  }
  state_->nodes_colored = 0;
  state_->touches = 0;
  touched_levels_ = 1;
  resize_tree(CompleteBinaryTree(1));
  touch(envelope_.root());
}

std::uint64_t IncrementalColorer::nodes_colored() const noexcept {
  return state_->nodes_colored;
}

std::uint64_t IncrementalColorer::touches() const noexcept {
  return state_->touches;
}

}  // namespace pmtree::dyn
