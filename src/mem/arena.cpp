#include "pmtree/mem/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace pmtree::mem {

MemoryBackend::MemoryBackend(const TreeMapping& placement,
                             ArenaOptions options)
    : placement_(placement),
      tree_(placement.tree()),
      options_(options),
      modules_(placement.num_modules()),
      payload_bytes_(options.payload_bytes == 0 ? 8 : options.payload_bytes) {
  // Round the payload up to whole 8-byte lanes: the fill and the touch
  // fold both work in u64 lanes, and a partial trailing lane would make
  // the checksum depend on uninitialized bytes.
  stride_ = (static_cast<std::size_t>(payload_bytes_) + 7) / 8 * 8;
  lanes_ = stride_ / 8;

  const std::uint64_t nodes = tree_.size();
  assert(nodes > 0 && modules_ > 0);

  // Pass 1: color every node once through the placement's batch kernel
  // (chunked so huge trees don't need a second node-sized buffer).
  module_.resize(nodes);
  slab_nodes_.assign(modules_, 0);
  {
    constexpr std::uint64_t kChunk = 1 << 16;
    std::vector<Node> chunk;
    std::vector<Color> colors;
    for (std::uint64_t base = 0; base < nodes; base += kChunk) {
      const std::uint64_t count = std::min(kChunk, nodes - base);
      chunk.resize(count);
      colors.resize(count);
      for (std::uint64_t i = 0; i < count; ++i) chunk[i] = node_at(base + i);
      placement_.color_of_batch(chunk, colors);
      for (std::uint64_t i = 0; i < count; ++i) {
        const Color c = colors[i];
        assert(c < modules_);
        module_[base + i] = c;
        ++slab_nodes_[c];
      }
    }
  }

  // Pass 2: allocate one slab per module, over-allocated by 7 lanes so
  // the base can be aligned up to a 64-byte boundary portably.
  slabs_.resize(modules_);
  slab_base_.resize(modules_);
  for (Color m = 0; m < modules_; ++m) {
    slabs_[m].resize(slab_nodes_[m] * lanes_ + 7);
    auto raw = reinterpret_cast<std::uintptr_t>(slabs_[m].data());
    const std::uintptr_t aligned = (raw + 63) & ~std::uintptr_t{63};
    slab_base_[m] = slabs_[m].data() + (aligned - raw) / 8;
  }

  // Pass 3: module-major placement — walk nodes in BFS order, appending
  // each to its module's slab, so a module's nodes occupy consecutive
  // slots in BFS order. Fill each payload from the deterministic
  // generator (keyed by bfs_id, NOT by slot, so two backends over
  // different placements hold the same logical data in different
  // physical layouts — and produce identical touch checksums).
  addr_.resize(nodes);
  std::vector<std::uint64_t> next(modules_, 0);
  for (std::uint64_t id = 0; id < nodes; ++id) {
    const Color m = module_[id];
    std::uint64_t* p = slab_base_[m] + next[m] * lanes_;
    ++next[m];
    for (std::size_t j = 0; j < lanes_; ++j) {
      p[j] = detail::mix64(options_.fill_seed + id * lanes_ + j);
    }
    addr_[id] = p;
  }
}

Json MemoryBackend::stats(const TouchStats& touched) const {
  Json j = Json::object();
  j.set("placement", Json(placement_.name()));
  j.set("modules", Json(static_cast<std::uint64_t>(modules_)));
  j.set("payload_bytes", Json(static_cast<std::uint64_t>(payload_bytes_)));
  j.set("stride_bytes", Json(static_cast<std::uint64_t>(stride_bytes())));
  j.set("resident_bytes", Json(resident_bytes()));
  j.set("touched", touched.to_json());
  return j;
}

}  // namespace pmtree::mem
