#include "pmtree/engine/engine.hpp"

#include <algorithm>
#include <deque>

namespace pmtree::engine {

std::uint64_t EngineResult::max_queue_depth() const noexcept {
  std::uint64_t peak = 0;
  for (const std::uint64_t d : queue_high_water) peak = std::max(peak, d);
  return peak;
}

Json EngineResult::to_json() const {
  Json root = Json::object();
  root.set("accesses", Json(accesses));
  root.set("requests", Json(requests));
  root.set("completion_cycle", Json(completion_cycle));
  root.set("busy_cycles", Json(busy_cycles));
  root.set("throughput", Json(throughput()));
  root.set("max_queue_depth", Json(max_queue_depth()));

  Json lat = Json::object();
  lat.set("p50", Json(latency.p50()));
  lat.set("p95", Json(latency.p95()));
  lat.set("p99", Json(latency.p99()));
  lat.set("max", Json(latency.max()));
  lat.set("mean", Json(latency.mean()));
  root.set("latency", std::move(lat));

  Json high_water = Json::array();
  for (const std::uint64_t d : queue_high_water) high_water.push_back(Json(d));
  root.set("queue_high_water", std::move(high_water));

  Json per_module = Json::array();
  for (const std::uint64_t s : served) per_module.push_back(Json(s));
  root.set("served", std::move(per_module));
  return root;
}

EngineResult CycleEngine::run(const Workload& workload,
                              const ArrivalSchedule& schedule) const {
  const std::uint32_t modules = mapping_.num_modules();
  const std::size_t n = workload.size();

  EngineResult result;
  result.accesses = n;
  result.served.assign(modules, 0);
  result.queue_high_water.assign(modules, 0);
  result.records.resize(n);

  // FIFO of access ids per module; a request is either queued or already
  // served, so "all queues empty" means every admitted access completed.
  std::vector<std::deque<std::uint64_t>> queues(modules);
  std::vector<std::uint64_t> outstanding(n, 0);

  // Resolve every access's colors once up front through the batch kernel —
  // one virtual call for the whole workload, and ColorMapping amortizes
  // its inheritance chase across it (see mapping/color.hpp). `first[i]`
  // slices the flat color array per access.
  std::vector<Node> flat;
  std::vector<std::size_t> first(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Workload::Access& access = workload[i];
    flat.insert(flat.end(), access.begin(), access.end());
    first[i + 1] = flat.size();
  }
  std::vector<Color> colors(flat.size());
  mapping_.color_of_batch(flat, colors);

  std::uint64_t t = 0;         // current cycle
  std::size_t next = 0;        // next access to admit
  std::size_t done = 0;        // accesses completed
  std::size_t in_flight = 0;   // admitted but not completed

  const auto admit = [&](std::size_t i, std::uint64_t cycle) {
    const Workload::Access& access = workload[i];
    AccessRecord& rec = result.records[i];
    rec.id = i;
    rec.requests = access.size();
    rec.arrival = cycle;
    result.requests += access.size();
    outstanding[i] = access.size();
    if (access.empty()) {
      // Nothing to fetch: completes the cycle it arrives, latency 0.
      rec.completion = cycle;
      result.latency.record(0);
      done += 1;
      return;
    }
    in_flight += 1;
    for (std::size_t r = first[i]; r < first[i + 1]; ++r) {
      queues[colors[r]].push_back(i);
    }
  };

  while (done < n) {
    // Admission. Closed loop: one access in flight at a time; open loop:
    // everything whose scheduled arrival is due.
    if (schedule.closed_loop()) {
      while (next < n && done == next) {
        admit(next, t);
        next += 1;
      }
    } else {
      while (next < n && schedule.arrival_cycle(next) <= t) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        if (done == n) break;  // trailing empty accesses completed above
        // Idle gap before the next arrival: skip it instead of burning
        // cycles one at a time (bursty schedules with long gaps).
        t = std::max(t, schedule.arrival_cycle(next));
        continue;
      }
    }

    // Observe queue depths after admission, before service: the per-cycle
    // backlog each module sees this cycle.
    for (std::uint32_t m = 0; m < modules; ++m) {
      const std::uint64_t depth = queues[m].size();
      result.queue_high_water[m] = std::max(result.queue_high_water[m], depth);
      result.queue_depth.record(depth);
    }
    result.busy_cycles += 1;

    // Service: each module retires the request at its queue head.
    for (std::uint32_t m = 0; m < modules; ++m) {
      if (queues[m].empty()) continue;
      const std::uint64_t id = queues[m].front();
      queues[m].pop_front();
      result.served[m] += 1;
      if (--outstanding[id] == 0) {
        AccessRecord& rec = result.records[id];
        rec.completion = t + 1;
        result.latency.record(rec.latency());
        done += 1;
        in_flight -= 1;
      }
    }
    t += 1;
  }

  for (const AccessRecord& rec : result.records) {
    result.completion_cycle = std::max(result.completion_cycle, rec.completion);
  }

  if (metrics_ != nullptr) {
    metrics_->counter(prefix_ + ".accesses").add(result.accesses);
    metrics_->counter(prefix_ + ".requests").add(result.requests);
    metrics_->counter(prefix_ + ".cycles").add(result.completion_cycle);
    metrics_->counter(prefix_ + ".busy_cycles").add(result.busy_cycles);
    metrics_->gauge(prefix_ + ".queue_high_water")
        .set(static_cast<std::int64_t>(result.max_queue_depth()));
    metrics_->histogram(prefix_ + ".latency").merge(result.latency);
    metrics_->histogram(prefix_ + ".queue_depth").merge(result.queue_depth);
  }
  return result;
}

}  // namespace pmtree::engine
