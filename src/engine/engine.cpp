// Event-driven CycleEngine core (DESIGN.md §8).
//
// The frozen PR-1 loop (now ReferenceEngine) pays O(modules) every cycle:
// it scans one std::deque per module for service and records one depth
// sample per module into the histogram. This implementation keeps its
// semantics bit-identical — tests/test_engine_event_core.cpp holds it to
// the reference on randomized pairs — while restructuring the hot loop
// around three ideas:
//
//   * flat arena queues: per-module FIFOs are segments of one allocation,
//     sized from the admitted request count, with bump-pointer push/pop;
//   * an active-module worklist: service and depth observation visit only
//     backlogged modules (idle modules' zero-depth samples are counted
//     and recorded in one bulk histogram update at the end);
//   * cycle skipping: between arrivals the queues evolve deterministically
//     (one pop per module per cycle), so a whole span is retired in bulk
//     as long as no active module drains inside it. Full per-busy-cycle
//     depth sampling pins the engine to per-cycle stepping; strided/off
//     sampling (EngineOptions) unlocks the bulk path.
#include "pmtree/engine/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <span>

#include "pmtree/mem/arena.hpp"
#include "pmtree/util/simd.hpp"

namespace pmtree::engine {

std::uint64_t EngineResult::max_queue_depth() const noexcept {
  std::uint64_t peak = 0;
  for (const std::uint64_t d : queue_high_water) peak = std::max(peak, d);
  return peak;
}

std::uint64_t EngineResult::max_module_served() const noexcept {
  std::uint64_t peak = 0;
  for (const std::uint64_t s : served) peak = std::max(peak, s);
  return peak;
}

double EngineResult::load_imbalance() const noexcept {
  if (served.empty() || requests == 0) return 0.0;
  const double mean = static_cast<double>(requests) /
                      static_cast<double>(served.size());
  return static_cast<double>(max_module_served()) / mean;
}

Json EngineResult::to_json() const {
  Json root = Json::object();
  root.set("accesses", Json(accesses));
  root.set("requests", Json(requests));
  root.set("completion_cycle", Json(completion_cycle));
  root.set("busy_cycles", Json(busy_cycles));
  root.set("rerouted_requests", Json(rerouted_requests));
  root.set("stalled_cycles", Json(stalled_cycles));
  root.set("throughput", Json(throughput()));
  root.set("max_queue_depth", Json(max_queue_depth()));

  Json lat = Json::object();
  lat.set("p50", Json(latency.p50()));
  lat.set("p95", Json(latency.p95()));
  lat.set("p99", Json(latency.p99()));
  lat.set("max", Json(latency.max()));
  lat.set("mean", Json(latency.mean()));
  root.set("latency", std::move(lat));

  Json high_water = Json::array();
  for (const std::uint64_t d : queue_high_water) high_water.push_back(Json(d));
  root.set("queue_high_water", std::move(high_water));

  Json per_module = Json::array();
  for (const std::uint64_t s : served) per_module.push_back(Json(s));
  root.set("served", std::move(per_module));

  if (mem_nodes_touched != 0) {
    Json memory = Json::object();
    memory.set("nodes", Json(mem_nodes_touched));
    memory.set("bytes", Json(mem_bytes_touched));
    memory.set("checksum", Json(mem::detail::hex64(mem_checksum)));
    root.set("memory", std::move(memory));
  }
  return root;
}

namespace {

// Loads every access's payloads from the real-memory arenas and folds the
// traffic into the result. Observation only: it runs after the trajectory
// is fully decided, so results are bit-identical with the backend on/off.
void touch_workload(const mem::MemoryBackend& memory,
                    const Workload& workload, EngineResult& result) {
  mem::TouchStats stats;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    stats += memory.touch(workload[i]);
  }
  result.mem_nodes_touched = stats.nodes;
  result.mem_bytes_touched = stats.bytes;
  result.mem_checksum = stats.checksum;
}

void export_metrics(MetricsRegistry& metrics, const std::string& prefix,
                    const EngineResult& result) {
  metrics.counter(prefix + ".accesses").add(result.accesses);
  metrics.counter(prefix + ".requests").add(result.requests);
  metrics.counter(prefix + ".cycles").add(result.completion_cycle);
  metrics.counter(prefix + ".busy_cycles").add(result.busy_cycles);
  metrics.gauge(prefix + ".queue_high_water")
      .set(static_cast<std::int64_t>(result.max_queue_depth()));
  metrics.histogram(prefix + ".latency").merge(result.latency);
  metrics.histogram(prefix + ".queue_depth").merge(result.queue_depth);
}

// The degraded loop: per-cycle stepping (no bulk spans — failure and
// slowdown boundaries can land on any cycle) over the same flat arena,
// with three extra rules from fault/plan.hpp, applied in this per-cycle
// order so both engines agree bit for bit:
//
//   1. failure processing — every module whose fail cycle has arrived
//      drains its FIFO, in (cycle, module) order, onto its reroute target;
//   2. admission — requests colored to an already-dead module enqueue on
//      the target instead;
//   3. depth observation, then service — a module retires its head request
//      only when timeline.serves_at(m, t) says so; a backlogged module
//      skipped by a slowdown counts one stalled module-cycle.
//
// Reroute targets never fail (FaultTimeline draws them from the modules
// with no fail-stop), so a request moves at most once and the arena
// segment for module m is safely capped at its own routed load plus the
// full load of every module that reroutes onto it.
EngineResult run_faulted(const TreeMapping& mapping, const Workload& workload,
                         const ArrivalSchedule& schedule,
                         const EngineOptions& options) {
  const std::uint32_t modules = mapping.num_modules();
  const fault::FaultTimeline timeline(*options.faults, modules);
  const std::size_t n = workload.size();
  assert(n < std::numeric_limits<std::uint32_t>::max());

  EngineResult result;
  result.accesses = n;
  result.served.assign(modules, 0);
  result.queue_high_water.assign(modules, 0);
  result.records.resize(n);

  std::vector<Node> flat;
  std::vector<std::size_t> first(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Workload::Access& access = workload[i];
    flat.insert(flat.end(), access.begin(), access.end());
    first[i + 1] = flat.size();
  }
  std::vector<Color> colors(flat.size());
  mapping.color_of_batch(flat, colors);

  std::vector<std::size_t> cap(modules, 0);
  for (const Color c : colors) cap[c] += 1;
  // A target absorbs at most the full routed load of every module folding
  // onto it; a dead module keeps its own segment (requests sit there until
  // the drain) and, never being a target itself, its cap is still the pure
  // routed count when read here.
  for (const std::uint32_t d : timeline.dead_modules()) {
    cap[timeline.redirect(d)] += cap[d];
  }
  std::vector<std::size_t> qbase(modules + 1, 0);
  for (std::uint32_t m = 0; m < modules; ++m) qbase[m + 1] = qbase[m] + cap[m];
  std::vector<std::uint32_t> arena(qbase[modules]);
  std::vector<std::size_t> head(qbase.begin(), qbase.end() - 1);
  std::vector<std::size_t> tail = head;

  std::vector<std::uint32_t> active;
  active.reserve(modules);
  std::vector<std::uint32_t> outstanding(n, 0);

  const EngineOptions::DepthSampling sampling = options.sampling;
  const std::uint64_t stride =
      std::max<std::uint64_t>(options.sample_stride, 1);
  const bool per_cycle =
      sampling == EngineOptions::DepthSampling::kEveryBusyCycle;
  std::uint64_t zero_samples = 0;

  std::uint64_t t = 0;
  std::size_t next = 0;
  std::size_t done = 0;
  std::size_t in_flight = 0;

  const auto complete = [&](const AccessRecord& rec) {
    result.latency.record(rec.latency());
    result.completion_cycle = std::max(result.completion_cycle, rec.completion);
    done += 1;
  };

  const auto push = [&](std::uint32_t m, std::uint32_t id) {
    if (tail[m] == head[m]) active.push_back(m);
    arena[tail[m]] = id;
    tail[m] += 1;
    const std::uint64_t depth = tail[m] - head[m];
    result.queue_high_water[m] = std::max(result.queue_high_water[m], depth);
  };

  const auto admit = [&](std::size_t i, std::uint64_t cycle) {
    const Workload::Access& access = workload[i];
    AccessRecord& rec = result.records[i];
    rec.id = i;
    rec.requests = access.size();
    rec.arrival = cycle;
    result.requests += access.size();
    outstanding[i] = static_cast<std::uint32_t>(access.size());
    if (access.empty()) {
      rec.completion = cycle;
      complete(rec);
      return;
    }
    in_flight += 1;
    for (std::size_t r = first[i]; r < first[i + 1]; ++r) {
      Color m = colors[r];
      if (timeline.dead_at(m, cycle)) {
        m = timeline.redirect(m);
        result.rerouted_requests += 1;
      }
      push(m, static_cast<std::uint32_t>(i));
    }
  };

  const std::vector<fault::FaultTimeline::FailEvent>& events =
      timeline.fail_events();
  std::size_t next_fail = 0;

  while (done < n) {
    // 1. Failure processing: drain newly-dead modules onto their targets.
    while (next_fail < events.size() && events[next_fail].cycle <= t) {
      const std::uint32_t d = events[next_fail].module;
      next_fail += 1;
      if (tail[d] == head[d]) continue;
      const std::uint32_t r = timeline.redirect(d);
      for (std::size_t h = head[d]; h < tail[d]; ++h) {
        push(r, arena[h]);
        result.rerouted_requests += 1;
      }
      head[d] = tail[d];
      for (std::size_t a = 0; a < active.size(); ++a) {
        if (active[a] == d) {
          active[a] = active.back();
          active.pop_back();
          break;
        }
      }
    }

    // 2. Admission, exactly as the healthy loop (redirect inside admit).
    if (schedule.closed_loop()) {
      while (next < n && done == next) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        if (per_cycle ||
            (sampling == EngineOptions::DepthSampling::kStrided &&
             result.busy_cycles % stride == 0)) {
          zero_samples += modules;
        }
        result.busy_cycles += 1;
        break;
      }
    } else {
      while (next < n && schedule.arrival_cycle(next) <= t) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        if (done == n) break;
        t = std::max(t, schedule.arrival_cycle(next));
        continue;
      }
    }

    // 3a. Depth observation (per-cycle stepping: a strided sample is due
    // exactly when the current busy ordinal hits the stride).
    if (per_cycle || (sampling == EngineOptions::DepthSampling::kStrided &&
                      result.busy_cycles % stride == 0)) {
      for (const std::uint32_t m : active) {
        result.queue_depth.record(tail[m] - head[m]);
      }
      zero_samples += modules - active.size();
    }

    // 3b. Service, gated per module by the fault timeline.
    for (std::size_t a = 0; a < active.size();) {
      const std::uint32_t m = active[a];
      if (!timeline.serves_at(m, t)) {
        result.stalled_cycles += 1;
        a += 1;
        continue;
      }
      const std::uint32_t id = arena[head[m]];
      head[m] += 1;
      AccessRecord& rec = result.records[id];
      rec.completion = std::max(rec.completion, t + 1);
      if (--outstanding[id] == 0) {
        complete(rec);
        in_flight -= 1;
      }
      result.served[m] += 1;
      if (head[m] == tail[m]) {
        active[a] = active.back();
        active.pop_back();
      } else {
        a += 1;
      }
    }
    result.busy_cycles += 1;
    t += 1;
  }

  if (zero_samples != 0) result.queue_depth.record(0, zero_samples);
  return result;
}

}  // namespace

EngineResult CycleEngine::run(const Workload& workload,
                              const ArrivalSchedule& schedule,
                              const EngineOptions& options) const {
  if (options.faults != nullptr && !options.faults->empty()) {
    EngineResult result = run_faulted(mapping_, workload, schedule, options);
    if (options.memory != nullptr) {
      touch_workload(*options.memory, workload, result);
    }
    if (metrics_ != nullptr) {
      export_metrics(*metrics_, prefix_, result);
      metrics_->counter(prefix_ + ".rerouted_requests")
          .add(result.rerouted_requests);
      metrics_->counter(prefix_ + ".stalled_cycles").add(result.stalled_cycles);
    }
    return result;
  }
  // Resolve every access's colors once up front through the batch kernel —
  // one virtual call for the whole workload, and ColorMapping amortizes
  // its inheritance chase across it (see mapping/color.hpp). `first[i]`
  // slices the flat color array per access.
  const std::size_t n = workload.size();
  std::vector<Node> flat;
  std::vector<std::size_t> first(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Workload::Access& access = workload[i];
    flat.insert(flat.end(), access.begin(), access.end());
    first[i + 1] = flat.size();
  }
  std::vector<Color> colors(flat.size());
  mapping_.color_of_batch(flat, colors);

  EngineResult result = detail::run_resolved(mapping_.num_modules(), first,
                                             colors, schedule, options);
  if (options.memory != nullptr) {
    touch_workload(*options.memory, workload, result);
  }

  if (metrics_ != nullptr) export_metrics(*metrics_, prefix_, result);
  return result;
}

namespace detail {

EngineResult run_resolved(const std::uint32_t modules,
                          std::span<const std::size_t> first,
                          std::span<const Color> colors,
                          const ArrivalSchedule& schedule,
                          const EngineOptions& options) {
  assert(options.faults == nullptr || options.faults->empty());
  const std::size_t n = first.size() - 1;
  // Arena entries are 32-bit access ids; a workload that large could not
  // be materialized in memory anyway.
  assert(n < std::numeric_limits<std::uint32_t>::max());

  EngineResult result;
  result.accesses = n;
  result.served.assign(modules, 0);
  result.queue_high_water.assign(modules, 0);
  result.records.resize(n);

  // Open-loop, no depth sampling: the cycle loop collapses to a per-entry
  // recurrence. Each module is a unit-rate FIFO, so entry k of module m
  // (pushed at arrival a_k) is served at s_k = max(a_k, s_{k-1}) + 1 —
  // while m is backlogged its serve cycles are consecutive, and a fresh
  // push on an idle module starts at a_k + 1. Everything the general loop
  // produces is a closed form of those serve cycles:
  //   completion  = max over the access's entries' serve cycles;
  //   served[m]   = entries routed to m;
  //   high-water  = s_k - a_k (pending serve cycles at a push are exactly
  //                 a_k+1 .. s_k, so that difference IS the queue depth);
  //   busy_cycles = |union over accesses of [arrival+1, completion]| — a
  //                 cycle is busy iff some access is in flight, and the
  //                 intervals arrive in nondecreasing-start order, so the
  //                 union folds into one running interval.
  // The depth histogram stays empty (kOff records nothing), which is why
  // sampling modes keep the general loop below. O(total entries), no
  // arena, no per-cycle scans — this is the serve pipeline's drain path.
  if (!schedule.closed_loop() &&
      options.sampling == EngineOptions::DepthSampling::kOff) {
    std::vector<std::uint64_t> last_serve(modules, 0);
    std::uint64_t busy_lo = 0;
    std::uint64_t busy_hi = 0;
    bool busy_open = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t a = schedule.arrival_cycle(i);
      const std::size_t lo = first[i];
      const std::size_t hi = first[i + 1];
      AccessRecord& rec = result.records[i];
      rec.id = i;
      rec.requests = hi - lo;
      rec.arrival = a;
      result.requests += hi - lo;
      if (lo == hi) {
        rec.completion = a;
      } else {
        std::uint64_t comp = 0;
        for (std::size_t r = lo; r < hi; ++r) {
          const Color m = colors[r];
          const std::uint64_t s = std::max(a, last_serve[m]) + 1;
          last_serve[m] = s;
          result.served[m] += 1;
          result.queue_high_water[m] =
              std::max(result.queue_high_water[m], s - a);
          comp = std::max(comp, s);
        }
        rec.completion = comp;
        if (!busy_open) {
          busy_open = true;
          busy_lo = a + 1;
          busy_hi = comp;
        } else if (a + 1 > busy_hi) {
          result.busy_cycles += busy_hi - busy_lo + 1;
          busy_lo = a + 1;
          busy_hi = comp;
        } else {
          busy_hi = std::max(busy_hi, comp);
        }
      }
      result.latency.record(rec.latency());
      result.completion_cycle =
          std::max(result.completion_cycle, rec.completion);
    }
    if (busy_open) result.busy_cycles += busy_hi - busy_lo + 1;
    return result;
  }

  // Flat arena queues: module m's FIFO is arena[qbase[m], qbase[m+1]), a
  // segment sized to the exact number of requests the run routes to m —
  // the conflict histogram of the resolved colors (SIMD-accelerated; see
  // util/simd.hpp) — so push/pop are bump pointers that never wrap or
  // allocate: one allocation replaces per-module deques.
  std::vector<std::size_t> qbase(modules + 1, 0);
  if (colors.size() < std::numeric_limits<std::uint32_t>::max()) {
    std::vector<std::uint32_t> counts(modules);
    simd::conflict_histogram(colors.data(), colors.size(), counts.data(),
                             modules);
    for (std::uint32_t m = 0; m < modules; ++m) qbase[m + 1] = counts[m];
  } else {
    for (const Color c : colors) qbase[c + 1] += 1;
  }
  for (std::uint32_t m = 0; m < modules; ++m) qbase[m + 1] += qbase[m];
  std::vector<std::uint32_t> arena(colors.size());
  std::vector<std::size_t> head(qbase.begin(), qbase.end() - 1);
  std::vector<std::size_t> tail = head;

  // Worklist of modules with a non-empty queue. Every output is invariant
  // to the order modules are serviced in (see the bulk-service note
  // below), so drained modules are swap-removed in O(1).
  std::vector<std::uint32_t> active;
  active.reserve(modules);

  std::vector<std::uint32_t> outstanding(n, 0);

  const EngineOptions::DepthSampling sampling = options.sampling;
  const std::uint64_t stride =
      std::max<std::uint64_t>(options.sample_stride, 1);
  const bool per_cycle =
      sampling == EngineOptions::DepthSampling::kEveryBusyCycle;
  // Idle modules' zero-depth samples are tallied here and recorded in one
  // bulk Histogram::record at the end, so observation stays O(backlogged
  // modules) per cycle while the histogram matches the reference exactly.
  std::uint64_t zero_samples = 0;

  std::uint64_t t = 0;         // current cycle
  std::size_t next = 0;        // next access to admit
  std::size_t done = 0;        // accesses completed
  std::size_t in_flight = 0;   // admitted but not completed

  const auto complete = [&](const AccessRecord& rec) {
    result.latency.record(rec.latency());
    result.completion_cycle = std::max(result.completion_cycle, rec.completion);
    done += 1;
  };

  const auto admit = [&](std::size_t i, std::uint64_t cycle) {
    const std::size_t size = first[i + 1] - first[i];
    AccessRecord& rec = result.records[i];
    rec.id = i;
    rec.requests = size;
    rec.arrival = cycle;
    result.requests += size;
    outstanding[i] = static_cast<std::uint32_t>(size);
    if (size == 0) {
      // Nothing to fetch: completes the cycle it arrives, latency 0.
      rec.completion = cycle;
      complete(rec);
      return;
    }
    in_flight += 1;
    for (std::size_t r = first[i]; r < first[i + 1]; ++r) {
      const Color m = colors[r];
      if (tail[m] == head[m]) active.push_back(m);
      arena[tail[m]] = static_cast<std::uint32_t>(i);
      tail[m] += 1;
      // Depth only grows on admission and the reference observes it after
      // the cycle's last push, so the per-push running max reproduces its
      // high-water marks without a per-cycle module scan.
      const std::uint64_t depth = tail[m] - head[m];
      result.queue_high_water[m] = std::max(result.queue_high_water[m], depth);
    }
  };

  while (done < n) {
    // Admission, exactly as the reference. Closed loop: one access in
    // flight at a time; open loop: everything whose arrival is due.
    if (schedule.closed_loop()) {
      while (next < n && done == next) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        // Only reachable when the trailing accesses were all empty, so
        // done == n. The reference loop still observes one all-idle cycle
        // before exiting; reproduce its accounting bit for bit.
        if (per_cycle ||
            (sampling == EngineOptions::DepthSampling::kStrided &&
             result.busy_cycles % stride == 0)) {
          zero_samples += modules;
        }
        result.busy_cycles += 1;
        break;
      }
    } else {
      while (next < n && schedule.arrival_cycle(next) <= t) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        if (done == n) break;  // trailing empty accesses completed above
        // Idle gap before the next arrival: skip it instead of burning
        // cycles one at a time (bursty schedules with long gaps).
        t = std::max(t, schedule.arrival_cycle(next));
        continue;
      }
    }

    // Cycle-skip horizon: nothing external touches the queues before the
    // next arrival (closed-loop admission waits for a full drain), and
    // service is deterministic — one pop per active module per cycle —
    // so a span of `span` cycles can be retired in bulk as long as no
    // active module drains inside it (the min-depth bound). Full
    // per-busy-cycle sampling forces span == 1.
    std::uint64_t span = 1;
    if (!per_cycle) {
      std::uint64_t horizon = std::numeric_limits<std::uint64_t>::max();
      if (!schedule.closed_loop() && next < n) {
        // >= 1: every arrival due at t was admitted above.
        horizon = schedule.arrival_cycle(next) - t;
      }
      std::uint64_t min_depth = std::numeric_limits<std::uint64_t>::max();
      for (const std::uint32_t m : active) {
        min_depth = std::min(min_depth, tail[m] - head[m]);
      }
      span = std::min(horizon, min_depth);
    }

    // Depth observation for busy-cycle ordinals [b, b + span), after
    // admission and before service. No module drains inside the span, so
    // active depths fall by exactly 1 per cycle and every sampled multiset
    // is reconstructed exactly: the histogram is a function of (workload,
    // schedule, options), never of how the engine chose to step.
    if (per_cycle) {
      for (const std::uint32_t m : active) {
        result.queue_depth.record(tail[m] - head[m]);
      }
      zero_samples += modules - active.size();
    } else if (sampling == EngineOptions::DepthSampling::kStrided) {
      const std::uint64_t b = result.busy_cycles;
      for (std::uint64_t j = (b + stride - 1) / stride * stride; j < b + span;
           j += stride) {
        const std::uint64_t off = j - b;
        for (const std::uint32_t m : active) {
          result.queue_depth.record(tail[m] - head[m] - off);
        }
        zero_samples += modules - active.size();
      }
    }

    // Service: module m retires its first `span` queued requests at cycles
    // t+1 .. t+span. An access's completion is a running max over its
    // requests' serve cycles, so the order modules are processed in does
    // not matter — the last pop of an access always sees the full max.
    for (std::size_t a = 0; a < active.size();) {
      const std::uint32_t m = active[a];
      std::size_t h = head[m];
      for (std::uint64_t j = 1; j <= span; ++j, ++h) {
        const std::uint32_t id = arena[h];
        AccessRecord& rec = result.records[id];
        const std::uint64_t cycle = t + j;
        rec.completion = std::max(rec.completion, cycle);
        if (--outstanding[id] == 0) {
          complete(rec);
          in_flight -= 1;
        }
      }
      head[m] = h;
      result.served[m] += span;
      if (h == tail[m]) {
        active[a] = active.back();
        active.pop_back();
      } else {
        a += 1;
      }
    }
    result.busy_cycles += span;
    t += span;
  }

  if (zero_samples != 0) result.queue_depth.record(0, zero_samples);
  return result;
}

}  // namespace detail

}  // namespace pmtree::engine
