#include "pmtree/engine/reference.hpp"

#include <algorithm>
#include <deque>

namespace pmtree::engine {

EngineResult ReferenceEngine::run(const Workload& workload,
                                  const ArrivalSchedule& schedule) const {
  const std::uint32_t modules = mapping_.num_modules();
  const std::size_t n = workload.size();

  EngineResult result;
  result.accesses = n;
  result.served.assign(modules, 0);
  result.queue_high_water.assign(modules, 0);
  result.records.resize(n);

  // FIFO of access ids per module; a request is either queued or already
  // served, so "all queues empty" means every admitted access completed.
  std::vector<std::deque<std::uint64_t>> queues(modules);
  std::vector<std::uint64_t> outstanding(n, 0);

  std::vector<Node> flat;
  std::vector<std::size_t> first(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Workload::Access& access = workload[i];
    flat.insert(flat.end(), access.begin(), access.end());
    first[i + 1] = flat.size();
  }
  std::vector<Color> colors(flat.size());
  mapping_.color_of_batch(flat, colors);

  std::uint64_t t = 0;         // current cycle
  std::size_t next = 0;        // next access to admit
  std::size_t done = 0;        // accesses completed
  std::size_t in_flight = 0;   // admitted but not completed

  const auto admit = [&](std::size_t i, std::uint64_t cycle) {
    const Workload::Access& access = workload[i];
    AccessRecord& rec = result.records[i];
    rec.id = i;
    rec.requests = access.size();
    rec.arrival = cycle;
    result.requests += access.size();
    outstanding[i] = access.size();
    if (access.empty()) {
      // Nothing to fetch: completes the cycle it arrives, latency 0.
      rec.completion = cycle;
      result.latency.record(0);
      done += 1;
      return;
    }
    in_flight += 1;
    for (std::size_t r = first[i]; r < first[i + 1]; ++r) {
      queues[colors[r]].push_back(i);
    }
  };

  while (done < n) {
    // Admission. Closed loop: one access in flight at a time; open loop:
    // everything whose scheduled arrival is due.
    if (schedule.closed_loop()) {
      while (next < n && done == next) {
        admit(next, t);
        next += 1;
      }
    } else {
      while (next < n && schedule.arrival_cycle(next) <= t) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        if (done == n) break;  // trailing empty accesses completed above
        // Idle gap before the next arrival: skip it instead of burning
        // cycles one at a time (bursty schedules with long gaps).
        t = std::max(t, schedule.arrival_cycle(next));
        continue;
      }
    }

    // Observe queue depths after admission, before service: the per-cycle
    // backlog each module sees this cycle.
    for (std::uint32_t m = 0; m < modules; ++m) {
      const std::uint64_t depth = queues[m].size();
      result.queue_high_water[m] = std::max(result.queue_high_water[m], depth);
      result.queue_depth.record(depth);
    }
    result.busy_cycles += 1;

    // Service: each module retires the request at its queue head.
    for (std::uint32_t m = 0; m < modules; ++m) {
      if (queues[m].empty()) continue;
      const std::uint64_t id = queues[m].front();
      queues[m].pop_front();
      result.served[m] += 1;
      if (--outstanding[id] == 0) {
        AccessRecord& rec = result.records[id];
        rec.completion = t + 1;
        result.latency.record(rec.latency());
        done += 1;
        in_flight -= 1;
      }
    }
    t += 1;
  }

  for (const AccessRecord& rec : result.records) {
    result.completion_cycle = std::max(result.completion_cycle, rec.completion);
  }
  return result;
}

EngineResult ReferenceEngine::run(const Workload& workload,
                                  const ArrivalSchedule& schedule,
                                  const fault::FaultPlan& plan) const {
  const std::uint32_t modules = mapping_.num_modules();
  const fault::FaultTimeline timeline(plan, modules);
  const std::size_t n = workload.size();

  EngineResult result;
  result.accesses = n;
  result.served.assign(modules, 0);
  result.queue_high_water.assign(modules, 0);
  result.records.resize(n);

  std::vector<std::deque<std::uint64_t>> queues(modules);
  std::vector<std::uint64_t> outstanding(n, 0);

  std::vector<Node> flat;
  std::vector<std::size_t> first(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Workload::Access& access = workload[i];
    flat.insert(flat.end(), access.begin(), access.end());
    first[i + 1] = flat.size();
  }
  std::vector<Color> colors(flat.size());
  mapping_.color_of_batch(flat, colors);

  std::uint64_t t = 0;
  std::size_t next = 0;
  std::size_t done = 0;
  std::size_t in_flight = 0;

  const auto admit = [&](std::size_t i, std::uint64_t cycle) {
    const Workload::Access& access = workload[i];
    AccessRecord& rec = result.records[i];
    rec.id = i;
    rec.requests = access.size();
    rec.arrival = cycle;
    result.requests += access.size();
    outstanding[i] = access.size();
    if (access.empty()) {
      rec.completion = cycle;
      result.latency.record(0);
      done += 1;
      return;
    }
    in_flight += 1;
    for (std::size_t r = first[i]; r < first[i + 1]; ++r) {
      Color m = colors[r];
      if (timeline.dead_at(m, cycle)) {
        m = timeline.redirect(m);
        result.rerouted_requests += 1;
      }
      queues[m].push_back(i);
    }
  };

  const std::vector<fault::FaultTimeline::FailEvent>& events =
      timeline.fail_events();
  std::size_t next_fail = 0;

  while (done < n) {
    // Failure processing, before admission: every newly-dead module hands
    // its backlog, FIFO, to its reroute target (fault/plan.hpp).
    while (next_fail < events.size() && events[next_fail].cycle <= t) {
      const std::uint32_t d = events[next_fail].module;
      next_fail += 1;
      const std::uint32_t r = timeline.redirect(d);
      while (!queues[d].empty()) {
        queues[r].push_back(queues[d].front());
        queues[d].pop_front();
        result.rerouted_requests += 1;
      }
    }

    if (schedule.closed_loop()) {
      while (next < n && done == next) {
        admit(next, t);
        next += 1;
      }
    } else {
      while (next < n && schedule.arrival_cycle(next) <= t) {
        admit(next, t);
        next += 1;
      }
      if (in_flight == 0) {
        if (done == n) break;
        t = std::max(t, schedule.arrival_cycle(next));
        continue;
      }
    }

    for (std::uint32_t m = 0; m < modules; ++m) {
      const std::uint64_t depth = queues[m].size();
      result.queue_high_water[m] = std::max(result.queue_high_water[m], depth);
      result.queue_depth.record(depth);
    }
    result.busy_cycles += 1;

    // Service: one request per module per cycle, unless the timeline says
    // this module is skipping the cycle (dead queues were drained above).
    for (std::uint32_t m = 0; m < modules; ++m) {
      if (queues[m].empty()) continue;
      if (!timeline.serves_at(m, t)) {
        result.stalled_cycles += 1;
        continue;
      }
      const std::uint64_t id = queues[m].front();
      queues[m].pop_front();
      result.served[m] += 1;
      if (--outstanding[id] == 0) {
        AccessRecord& rec = result.records[id];
        rec.completion = t + 1;
        result.latency.record(rec.latency());
        done += 1;
        in_flight -= 1;
      }
    }
    t += 1;
  }

  for (const AccessRecord& rec : result.records) {
    result.completion_cycle = std::max(result.completion_cycle, rec.completion);
  }
  return result;
}

}  // namespace pmtree::engine
