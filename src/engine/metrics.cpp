#include "pmtree/engine/metrics.hpp"

#include <cassert>

namespace pmtree::engine {

Counter& MetricsRegistry::counter(const std::string& name) {
  assert(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  assert(counters_.count(name) == 0 && histograms_.count(name) == 0);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::uint32_t sub_bits) {
  assert(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(sub_bits)).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

Json MetricsRegistry::to_json() const {
  Json root = Json::object();

  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, Json(c.value()));
  root.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) {
    Json entry = Json::object();
    entry.set("value", Json(static_cast<double>(g.value())));
    entry.set("high_water", Json(static_cast<double>(g.high_water())));
    gauges.set(name, std::move(entry));
  }
  root.set("gauges", std::move(gauges));

  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry.set("count", Json(h.count()));
    entry.set("min", Json(h.empty() ? 0 : h.min()));
    entry.set("max", Json(h.max()));
    entry.set("sum", Json(h.sum()));
    entry.set("mean", Json(h.mean()));
    entry.set("p50", Json(h.p50()));
    entry.set("p95", Json(h.p95()));
    entry.set("p99", Json(h.p99()));
    entry.set("sub_bits", Json(static_cast<std::uint64_t>(h.sub_bits())));
    Json buckets = Json::array();
    for (const Histogram::Bucket& b : h.buckets()) {
      Json pair = Json::array();
      pair.push_back(Json(b.upper));
      pair.push_back(Json(b.count));
      buckets.push_back(std::move(pair));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::optional<MetricsRegistry> MetricsRegistry::from_json(const Json& snapshot) {
  if (snapshot.type() != Json::Type::kObject) return std::nullopt;
  const Json* counters = snapshot.find("counters");
  const Json* gauges = snapshot.find("gauges");
  const Json* histograms = snapshot.find("histograms");
  if (counters == nullptr || counters->type() != Json::Type::kObject ||
      gauges == nullptr || gauges->type() != Json::Type::kObject ||
      histograms == nullptr || histograms->type() != Json::Type::kObject) {
    return std::nullopt;
  }

  MetricsRegistry reg;
  for (const auto& [name, v] : counters->members()) {
    if (v.type() != Json::Type::kNumber) return std::nullopt;
    reg.counter(name).add(v.as_uint());
  }
  for (const auto& [name, v] : gauges->members()) {
    const Json* value = v.find("value");
    const Json* high = v.find("high_water");
    if (value == nullptr || high == nullptr) return std::nullopt;
    Gauge& g = reg.gauge(name);
    // Setting high-water first makes the mark stick even when the last
    // written value was lower.
    g.set(static_cast<std::int64_t>(high->as_number()));
    g.set(static_cast<std::int64_t>(value->as_number()));
  }
  for (const auto& [name, v] : histograms->members()) {
    const Json* sub_bits = v.find("sub_bits");
    const Json* min = v.find("min");
    const Json* max = v.find("max");
    const Json* sum = v.find("sum");
    const Json* buckets = v.find("buckets");
    if (sub_bits == nullptr || min == nullptr || max == nullptr ||
        sum == nullptr || buckets == nullptr ||
        buckets->type() != Json::Type::kArray) {
      return std::nullopt;
    }
    std::vector<Histogram::Bucket> parsed;
    for (const Json& pair : buckets->items()) {
      if (pair.type() != Json::Type::kArray || pair.items().size() != 2) {
        return std::nullopt;
      }
      parsed.push_back(Histogram::Bucket{pair.items()[0].as_uint(),
                                         pair.items()[1].as_uint()});
    }
    reg.histogram(name, static_cast<std::uint32_t>(sub_bits->as_uint())) =
        Histogram::restore(static_cast<std::uint32_t>(sub_bits->as_uint()),
                           parsed, min->as_uint(), max->as_uint(),
                           sum->as_uint());
  }
  return reg;
}

}  // namespace pmtree::engine
