#include "pmtree/engine/arrival.hpp"

namespace pmtree::engine {

std::string ArrivalSchedule::name() const {
  switch (kind_) {
    case Kind::kAllAtOnce:
      return "all-at-once";
    case Kind::kFixedRate:
      return "fixed-rate(period=" + std::to_string(period_) + ")";
    case Kind::kBursty:
      return "bursty(burst=" + std::to_string(burst_) +
             ",gap=" + std::to_string(period_) + ")";
    case Kind::kSerialized:
      return "serialized";
    case Kind::kExplicit:
      return "explicit(n=" + std::to_string(cycles_.size()) + ")";
  }
  return "unknown";
}

}  // namespace pmtree::engine
