#include "pmtree/engine/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "pmtree/util/bits.hpp"

namespace pmtree::engine {

namespace {

/// Index layout: values < 2^(sub_bits+1) use exact unit buckets
/// 0 .. 2^(sub_bits+1)-1. Each later octave o (values [2^o, 2^(o+1)))
/// contributes 2^sub_bits buckets of width 2^(o-sub_bits).
constexpr std::uint32_t kMaxOctave = 64;

}  // namespace

Histogram::Histogram(std::uint32_t sub_bits)
    : sub_bits_(sub_bits), min_(std::numeric_limits<std::uint64_t>::max()) {
  assert(sub_bits >= 1 && sub_bits <= 16);
  // Unit region + one sub-bucket group per octave above it. Octaves run
  // from sub_bits+1 to 63, so the table is small (e.g. 2^6 + 57*32 for
  // sub_bits = 5) and never reallocates on the hot path.
  const std::size_t unit = std::size_t{1} << (sub_bits_ + 1);
  const std::size_t octaves = kMaxOctave - (sub_bits_ + 1);
  counts_.assign(unit + octaves * (std::size_t{1} << sub_bits_), 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  const std::uint64_t unit = std::uint64_t{1} << (sub_bits_ + 1);
  if (value < unit) return static_cast<std::size_t>(value);
  const std::uint32_t octave = floor_log2(value);
  const std::uint64_t sub =
      (value >> (octave - sub_bits_)) - (std::uint64_t{1} << sub_bits_);
  return static_cast<std::size_t>(
      unit + (octave - (sub_bits_ + 1)) * (std::uint64_t{1} << sub_bits_) + sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t index) const noexcept {
  const std::uint64_t unit = std::uint64_t{1} << (sub_bits_ + 1);
  if (index < unit) return index;
  const std::uint64_t rel = index - unit;
  const std::uint32_t octave =
      static_cast<std::uint32_t>(rel >> sub_bits_) + sub_bits_ + 1;
  const std::uint64_t sub = rel & ((std::uint64_t{1} << sub_bits_) - 1);
  const std::uint64_t width = std::uint64_t{1} << (octave - sub_bits_);
  // Highest value mapping to this bucket.
  return (std::uint64_t{1} << octave) + (sub + 1) * width - 1;
}

namespace {

/// a + b, pinned to max-uint64 on overflow. The running sum only feeds
/// mean(); a saturated mean is merely pessimistic, whereas a wrapped one
/// (large values × bulk counts, e.g. the engine's zero-sample path
/// recording millions at once next to near-max latencies) is nonsense.
[[nodiscard]] std::uint64_t saturating_add(std::uint64_t a,
                                           std::uint64_t b) noexcept {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return out;
}

[[nodiscard]] std::uint64_t saturating_mul(std::uint64_t a,
                                           std::uint64_t b) noexcept {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return out;
}

}  // namespace

void Histogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  counts_[bucket_index(value)] += count;
  count_ += count;
  sum_ = saturating_add(sum_, saturating_mul(value, count));
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  assert(sub_bits_ == other.sub_bits_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ = saturating_add(sum_, other.sum_);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::min() const noexcept { return min_; }

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::value_at_quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly, so report them exactly: q = 0 is
  // the smallest sample and q = 1 the largest, not the (possibly wider)
  // upper edge of the bucket that happens to hold them.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return std::min(bucket_upper(i), max_);
  }
  return max_;  // unreachable
}

Histogram Histogram::restore(std::uint32_t sub_bits,
                             const std::vector<Bucket>& buckets,
                             std::uint64_t min, std::uint64_t max,
                             std::uint64_t sum) {
  Histogram h(sub_bits);
  for (const Bucket& b : buckets) {
    // A bucket's upper edge maps back into the same bucket, so the count
    // array is reproduced exactly.
    h.counts_[h.bucket_index(b.upper)] += b.count;
    h.count_ += b.count;
  }
  h.sum_ = sum;
  if (h.count_ != 0) {
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out.push_back(Bucket{bucket_upper(i), counts_[i]});
  }
  return out;
}

}  // namespace pmtree::engine
