#include "pmtree/engine/sharded.hpp"

#include <algorithm>

#include "pmtree/util/parallel.hpp"

namespace pmtree::engine {

std::vector<Workload> ShardedEngineRunner::partition(const Workload& workload,
                                                     std::size_t shards) {
  shards = std::max<std::size_t>(shards, 1);
  std::vector<std::vector<Workload::Access>> parts(shards);
  for (auto& part : parts) part.reserve(workload.size() / shards + 1);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    parts[i % shards].push_back(workload[i]);
  }
  std::vector<Workload> out;
  out.reserve(shards);
  for (auto& part : parts) out.emplace_back(std::move(part));
  return out;
}

ShardedResult ShardedEngineRunner::run(const Workload& workload,
                                       const ArrivalSchedule& schedule,
                                       const ShardedOptions& options) const {
  const std::size_t shards = std::max<std::size_t>(options.shards, 1);
  const std::vector<Workload> parts = partition(workload, shards);

  ShardedResult result;
  result.shards.resize(shards);

  // One scalar engine run per shard, claimed shard-at-a-time from the
  // deterministic chunk grid. Each slot is written by exactly one worker
  // and the value written does not depend on which worker it is, so the
  // whole ShardedResult is thread-count invariant. Shard engines write no
  // metrics; the merged trajectory is exported once below.
  const CycleEngine engine(mapping_);
  parallel_chunks(shards, resolve_threads(options.threads), 1,
                  [&](unsigned, std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t s = begin; s < end; ++s) {
                      result.shards[s] =
                          engine.run(parts[s], schedule, options.engine);
                    }
                  });

  // Deterministic fold in shard order (every reduction below is also
  // commutative, but a fixed order keeps the contract self-evident).
  const std::uint32_t modules = mapping_.num_modules();
  EngineResult& merged = result.merged;
  merged.served.assign(modules, 0);
  merged.queue_high_water.assign(modules, 0);
  merged.records.resize(workload.size());
  for (std::size_t s = 0; s < shards; ++s) {
    const EngineResult& shard = result.shards[s];
    merged.accesses += shard.accesses;
    merged.requests += shard.requests;
    merged.busy_cycles += shard.busy_cycles;
    merged.rerouted_requests += shard.rerouted_requests;
    merged.stalled_cycles += shard.stalled_cycles;
    merged.completion_cycle =
        std::max(merged.completion_cycle, shard.completion_cycle);
    for (std::uint32_t m = 0; m < modules; ++m) {
      merged.served[m] += shard.served[m];
      merged.queue_high_water[m] =
          std::max(merged.queue_high_water[m], shard.queue_high_water[m]);
    }
    merged.latency.merge(shard.latency);
    merged.queue_depth.merge(shard.queue_depth);
    for (std::size_t j = 0; j < shard.records.size(); ++j) {
      AccessRecord rec = shard.records[j];
      rec.id = j * shards + s;  // undo the round-robin assignment
      merged.records[rec.id] = rec;
    }
  }

  if (metrics_ != nullptr) {
    metrics_->counter(prefix_ + ".shards").add(shards);
    metrics_->counter(prefix_ + ".accesses").add(merged.accesses);
    metrics_->counter(prefix_ + ".requests").add(merged.requests);
    metrics_->counter(prefix_ + ".cycles").add(merged.completion_cycle);
    metrics_->counter(prefix_ + ".busy_cycles").add(merged.busy_cycles);
    if (options.engine.faults != nullptr && !options.engine.faults->empty()) {
      metrics_->counter(prefix_ + ".rerouted_requests")
          .add(merged.rerouted_requests);
      metrics_->counter(prefix_ + ".stalled_cycles")
          .add(merged.stalled_cycles);
    }
    metrics_->gauge(prefix_ + ".queue_high_water")
        .set(static_cast<std::int64_t>(merged.max_queue_depth()));
    metrics_->histogram(prefix_ + ".latency").merge(merged.latency);
    metrics_->histogram(prefix_ + ".queue_depth").merge(merged.queue_depth);
  }
  return result;
}

}  // namespace pmtree::engine
