#include "pmtree/qary/qary_tree.hpp"

#include <gtest/gtest.h>

#include "pmtree/qary/qary_templates.hpp"

namespace pmtree {
namespace {

TEST(QaryTree, ShapeQueriesTernary) {
  const QaryTree tree(3, 4);
  EXPECT_EQ(tree.arity(), 3u);
  EXPECT_EQ(tree.levels(), 4u);
  EXPECT_EQ(tree.level_width(0), 1u);
  EXPECT_EQ(tree.level_width(3), 27u);
  EXPECT_EQ(tree.size(), 40u);  // 1 + 3 + 9 + 27
  EXPECT_EQ(tree.subtree_size(2), 4u);
  EXPECT_EQ(tree.subtree_size(3), 13u);
}

TEST(QaryTree, BinaryCaseMatchesBinaryModule) {
  const QaryTree tree(2, 5);
  EXPECT_EQ(tree.size(), 31u);
  EXPECT_EQ(tree.bfs_id(QaryNode{3, 5}), 12u);  // 2^3 - 1 + 5
}

TEST(QaryTree, ParentChildRoundTrip) {
  const QaryTree tree(4, 4);
  const QaryNode n{2, 9};
  for (std::uint32_t c = 0; c < tree.arity(); ++c) {
    EXPECT_EQ(tree.parent(tree.child(n, c)), n);
  }
  EXPECT_EQ(tree.parent(n), (QaryNode{1, 2}));
}

TEST(QaryTree, BfsIdsAreDenseAndOrdered) {
  const QaryTree tree(3, 4);
  std::uint64_t expected = 0;
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      EXPECT_EQ(tree.bfs_id(QaryNode{j, i}), expected++);
    }
  }
  EXPECT_EQ(expected, tree.size());
}

TEST(QaryTemplates, SubtreeNodesBfsOrder) {
  const QaryTree tree(3, 4);
  const QarySubtreeInstance s{QaryNode{1, 2}, 2};
  const auto nodes = s.nodes(tree);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0], (QaryNode{1, 2}));
  EXPECT_EQ(nodes[1], (QaryNode{2, 6}));
  EXPECT_EQ(nodes[3], (QaryNode{2, 8}));
  EXPECT_TRUE(s.fits(tree));
  EXPECT_FALSE((QarySubtreeInstance{QaryNode{3, 0}, 2}.fits(tree)));
}

TEST(QaryTemplates, PathsAscend) {
  const QaryTree tree(3, 4);
  const QaryPathInstance p{QaryNode{3, 17}, 3};
  const auto nodes = p.nodes(tree);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], (QaryNode{3, 17}));
  EXPECT_EQ(nodes[1], (QaryNode{2, 5}));
  EXPECT_EQ(nodes[2], (QaryNode{1, 1}));
}

TEST(QaryTemplates, EnumeratorCounts) {
  const QaryTree tree(3, 4);
  std::uint64_t subtrees = 0, paths = 0, runs = 0;
  for_each_qary_subtree(tree, 2, [&](const auto&) { ++subtrees; return true; });
  for_each_qary_path(tree, 2, [&](const auto&) { ++paths; return true; });
  for_each_qary_level_run(tree, 3, [&](const auto&) { ++runs; return true; });
  EXPECT_EQ(subtrees, 13u);  // roots at levels 0..2: 1 + 3 + 9
  EXPECT_EQ(paths, 39u);     // deepest node anywhere below the root
  EXPECT_EQ(runs, 1u + 7u + 25u);  // per level: q^j - 3 + 1 where it fits
}

TEST(QaryTemplates, EnumeratorEarlyStop) {
  const QaryTree tree(3, 5);
  std::uint64_t seen = 0;
  for_each_qary_path(tree, 2, [&](const auto&) { return ++seen < 4; });
  EXPECT_EQ(seen, 4u);
}

}  // namespace
}  // namespace pmtree
