// EngineSession ≡ CycleEngine::run differential property tests.
//
// The staged serve pipeline (serve/pipeline.hpp) replaces the oracle's
// per-round monolithic replica re-runs with one EngineSession per lane
// that is fed batch-by-batch and drained at round barriers. That swap is
// sound only if a session fed incrementally is bit-identical to
// CycleEngine::run over the same accesses under
// ArrivalSchedule::explicit_cycles of the same arrivals — including
// mid-stream drains (retry rounds replay cumulatively) and the
// feed_resolved entry the pipeline's resolve stage uses. This suite holds
// that identity on randomized (mapping, workload, arrivals) triples
// across every template family and sampling mode, comparing whole
// EngineResult JSON snapshots.
#include "pmtree/engine/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineOptions;
using engine::EngineResult;
using engine::EngineSession;

using DepthSampling = EngineOptions::DepthSampling;

/// Same repertoire as test_engine_event_core: the mappings the serve
/// layer actually runs on.
std::unique_ptr<TreeMapping> random_mapping(const CompleteBinaryTree& tree,
                                            Rng& rng) {
  switch (rng.below(5)) {
    case 0: {
      const std::uint32_t M = 7 + static_cast<std::uint32_t>(rng.below(3)) * 8;
      return std::make_unique<ColorMapping>(
          make_optimal_color_mapping(tree, M));
    }
    case 1:
      return std::make_unique<ModuloMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    case 2:
      return std::make_unique<LevelShiftMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    case 3:
      return std::make_unique<RandomMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)), rng());
    default:
      return std::make_unique<LevelModMapping>(
          tree, 2 + static_cast<std::uint32_t>(rng.below(8)));
  }
}

/// A random workload of the requested template family.
Workload random_workload(const CompleteBinaryTree& tree, int family, Rng& rng) {
  const std::size_t count = 5 + rng.below(20);
  const std::uint64_t seed = rng();
  switch (family) {
    case 0: {
      const std::uint64_t K =
          pow2(1 + static_cast<std::uint32_t>(rng.below(4))) - 1;
      return Workload::subtrees(tree, K, count, seed);
    }
    case 1: {
      const std::uint64_t K = 1 + rng.below(tree.levels());
      return Workload::paths(tree, K, count, seed);
    }
    case 2: {
      const std::uint64_t K = 1 + rng.below(16);
      return Workload::level_runs(tree, K, count, seed);
    }
    default: {
      const std::uint64_t c = 2 + rng.below(3);
      const std::uint64_t D = c * (3 + rng.below(10));
      return Workload::composites(tree, D, c, count, seed);
    }
  }
}

/// Nondecreasing arrival cycles with bursty gaps (several accesses per
/// cycle, occasional long idle stretches).
std::vector<std::uint64_t> random_arrivals(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> cycles(n);
  std::uint64_t t = rng.below(4);
  for (std::size_t i = 0; i < n; ++i) {
    cycles[i] = t;
    if (rng.chance(1, 3)) t += rng.below(12);
  }
  return cycles;
}

/// Whole-trajectory bit identity: EngineResult::to_json covers scalars,
/// records, per-module arrays and both histograms.
void expect_same_result(const EngineResult& got, const EngineResult& want) {
  ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
}

EngineOptions random_options(Rng& rng) {
  EngineOptions options;
  switch (rng.below(3)) {
    case 0: options.sampling = DepthSampling::kEveryBusyCycle; break;
    case 1:
      options.sampling = DepthSampling::kStrided;
      options.sample_stride = 1 + rng.below(7);
      break;
    default: options.sampling = DepthSampling::kOff; break;
  }
  return options;
}

class SessionDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SessionDifferential, FeedDrainMatchesMonolithicRun) {
  const int family = GetParam();
  Rng rng(0x5E5510Du + static_cast<std::uint64_t>(family));
  for (int trial = 0; trial < 40; ++trial) {
    const CompleteBinaryTree tree(6 + static_cast<std::uint32_t>(rng.below(7)));
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, family, rng);
    const std::vector<std::uint64_t> arrivals =
        random_arrivals(workload.size(), rng);
    const EngineOptions options = random_options(rng);
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " mapping=" + mapping->name() +
                 " accesses=" + std::to_string(workload.size()));

    const CycleEngine eng(*mapping);
    const EngineResult want =
        eng.run(workload, ArrivalSchedule::explicit_cycles(arrivals), options);

    // feed(): the session resolves colors itself.
    EngineSession session(*mapping, options);
    for (std::size_t i = 0; i < workload.size(); ++i) {
      session.feed(workload[i], arrivals[i]);
    }
    ASSERT_EQ(session.accesses(), workload.size());
    expect_same_result(session.drain(), want);

    // feed_resolved(): colors resolved upstream, exactly the pipeline's
    // resolve-stage handoff.
    EngineSession resolved(*mapping, options);
    for (std::size_t i = 0; i < workload.size(); ++i) {
      std::vector<Color> colors(workload[i].size());
      mapping->color_of_batch(workload[i], colors);
      resolved.feed_resolved(colors, arrivals[i]);
    }
    expect_same_result(resolved.drain(), want);
  }
}

TEST_P(SessionDifferential, MidStreamDrainsMatchPrefixRuns) {
  const int family = GetParam();
  Rng rng(0xD4A1Eu + static_cast<std::uint64_t>(family));
  for (int trial = 0; trial < 10; ++trial) {
    const CompleteBinaryTree tree(6 + static_cast<std::uint32_t>(rng.below(5)));
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, family, rng);
    const std::vector<std::uint64_t> arrivals =
        random_arrivals(workload.size(), rng);
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " mapping=" + mapping->name());

    const CycleEngine eng(*mapping);
    EngineSession session(*mapping);
    for (std::size_t k = 0; k < workload.size(); ++k) {
      session.feed(workload[k], arrivals[k]);
      // Drain after every feed: each one must equal a monolithic run over
      // the prefix. This is the retry-round contract — draining again
      // after more feeds extends, never rewrites, earlier completions.
      std::vector<Workload::Access> prefix(
          workload.accesses().begin(),
          workload.accesses().begin() + static_cast<std::ptrdiff_t>(k + 1));
      std::vector<std::uint64_t> prefix_arrivals(
          arrivals.begin(), arrivals.begin() + static_cast<std::ptrdiff_t>(k + 1));
      const EngineResult want = eng.run(
          Workload(std::move(prefix)),
          ArrivalSchedule::explicit_cycles(std::move(prefix_arrivals)),
          EngineOptions{});
      expect_same_result(session.drain(), want);
    }
  }
}

std::string family_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"Subtrees", "Paths", "LevelRuns",
                                       "Composites"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SessionDifferential,
                         ::testing::Values(0, 1, 2, 3), family_name);

TEST(EngineSession, EmptySessionDrainsToEmptyResult) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping mapping(tree, 7);
  const EngineSession session(mapping);
  const EngineResult empty = session.drain();
  EXPECT_EQ(empty.accesses, 0u);
  EXPECT_EQ(empty.requests, 0u);
  EXPECT_EQ(empty.completion_cycle, 0u);
  EXPECT_TRUE(empty.records.empty());

  const CycleEngine eng(mapping);
  const EngineResult want =
      eng.run(Workload(), ArrivalSchedule::all_at_once());
  ASSERT_EQ(empty.to_json().dump(), want.to_json().dump());
}

TEST(EngineSession, EmptyAccessesRideAlong) {
  // Zero-node accesses (an admitted request whose node set coalesced to
  // nothing never happens in serving, but the engine defines them:
  // completion == arrival). Interleave them with real accesses.
  const CompleteBinaryTree tree(8);
  const ModuloMapping mapping(tree, 5);
  std::vector<Workload::Access> accesses;
  accesses.push_back({});
  accesses.push_back({Node{0, 0}, Node{1, 0}, Node{1, 1}});
  accesses.push_back({});
  const Workload workload{std::move(accesses)};
  const std::vector<std::uint64_t> arrivals{0, 2, 2};

  const CycleEngine eng(mapping);
  const EngineResult want =
      eng.run(workload, ArrivalSchedule::explicit_cycles(arrivals));

  EngineSession session(mapping);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    session.feed(workload[i], arrivals[i]);
  }
  ASSERT_EQ(session.drain().to_json().dump(), want.to_json().dump());
}

TEST(EngineSession, ClearResetsForReuse) {
  Rng rng(0xC1EA4);
  const CompleteBinaryTree tree(9);
  const auto mapping = random_mapping(tree, rng);
  const Workload first = random_workload(tree, 1, rng);
  const Workload second = random_workload(tree, 2, rng);
  const std::vector<std::uint64_t> first_arrivals =
      random_arrivals(first.size(), rng);
  const std::vector<std::uint64_t> second_arrivals =
      random_arrivals(second.size(), rng);

  EngineSession session(*mapping);
  for (std::size_t i = 0; i < first.size(); ++i) {
    session.feed(first[i], first_arrivals[i]);
  }
  (void)session.drain();
  session.clear();
  ASSERT_EQ(session.accesses(), 0u);
  for (std::size_t i = 0; i < second.size(); ++i) {
    session.feed(second[i], second_arrivals[i]);
  }

  EngineSession fresh(*mapping);
  for (std::size_t i = 0; i < second.size(); ++i) {
    fresh.feed(second[i], second_arrivals[i]);
  }
  ASSERT_EQ(session.drain().to_json().dump(), fresh.drain().to_json().dump());
}

}  // namespace
}  // namespace pmtree
