#include "pmtree/analysis/load_balance.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"

namespace pmtree {
namespace {

TEST(LoadBalance, CountsEveryNodeExactlyOnce) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  const auto report = load_balance(map);
  const std::uint64_t total = std::accumulate(report.per_module.begin(),
                                              report.per_module.end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, tree.size());
}

TEST(LoadBalance, ModuloIsPerfectlyBalanced) {
  const CompleteBinaryTree tree(10);  // 1023 nodes
  const ModuloMapping map(tree, 11);  // 1023 = 93 * 11
  const auto report = load_balance(map);
  EXPECT_EQ(report.min_load, report.max_load);
  EXPECT_DOUBLE_EQ(report.ratio(), 1.0);
  EXPECT_EQ(report.used_modules, 11u);
}

TEST(LoadBalance, LabelTreeNearlyBalanced) {
  const CompleteBinaryTree tree(14);
  const LabelTreeMapping map(tree, 31);
  const auto report = load_balance(map);
  EXPECT_LE(report.ratio(), 1.5);
}

TEST(LoadBalance, ColorOverloadsSomeModules) {
  // Section 5 names this drawback of COLOR: "it overloads some memory
  // modules". The skew must be visibly worse than LABEL-TREE's.
  const CompleteBinaryTree tree(14);
  const ColorMapping color(tree, 6, 3);
  const LabelTreeMapping label(tree, color.num_modules());
  const auto color_report = load_balance(color);
  const auto label_report = load_balance(label);
  EXPECT_GT(color_report.ratio(), label_report.ratio());
}

TEST(LoadBalance, DegenerateSingleModule) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 1);
  const auto report = load_balance(map);
  EXPECT_EQ(report.used_modules, 1u);
  EXPECT_EQ(report.max_load, tree.size());
  EXPECT_DOUBLE_EQ(report.ratio(), 1.0);
}

}  // namespace
}  // namespace pmtree
