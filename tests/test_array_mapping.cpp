#include "pmtree/array/array_mapping.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace pmtree {
namespace {

TEST(SkewedArray, StepArithmetic) {
  const SkewedArrayMapping map(Array2D(16, 16), 7, 3);
  EXPECT_EQ(map.step(RunDirection::kRow), 1u);
  EXPECT_EQ(map.step(RunDirection::kColumn), 3u);
  EXPECT_EQ(map.step(RunDirection::kDiagonal), 4u);
  EXPECT_EQ(map.step(RunDirection::kAntiDiagonal), 2u);
}

TEST(SkewedArray, ConflictFreeRunBoundMatchesGcdFormula) {
  const SkewedArrayMapping map(Array2D(16, 16), 6, 2);
  EXPECT_EQ(map.conflict_free_run_bound(RunDirection::kRow), 6u);       // gcd(1,6)
  EXPECT_EQ(map.conflict_free_run_bound(RunDirection::kColumn), 3u);    // gcd(2,6)
  EXPECT_EQ(map.conflict_free_run_bound(RunDirection::kDiagonal), 2u);  // gcd(3,6)
  EXPECT_EQ(map.conflict_free_run_bound(RunDirection::kAntiDiagonal), 6u);
}

TEST(SkewedArray, MeasuredRunsMatchTheBoundExactly) {
  // For every direction: runs up to the bound are conflict-free; a run one
  // longer conflicts (the bound is tight).
  const Array2D array(24, 24);
  for (const std::uint32_t M : {5u, 7u, 11u}) {
    for (const std::uint32_t a : {2u, 3u, 5u}) {
      const SkewedArrayMapping map(array, M, a);
      for (const auto d :
           {RunDirection::kRow, RunDirection::kColumn, RunDirection::kDiagonal,
            RunDirection::kAntiDiagonal}) {
        const std::uint64_t bound = map.conflict_free_run_bound(d);
        EXPECT_EQ(evaluate_runs(map, d, bound), 0u)
            << map.name() << " " << to_string(d);
        if (bound < 20) {
          EXPECT_GT(evaluate_runs(map, d, bound + 1), 0u)
              << map.name() << " " << to_string(d);
        }
      }
    }
  }
}

TEST(SkewedArray, PrimeModulusServesAllFourDirections) {
  // M = 7, a = 3: steps {1, 3, 4, 2} all coprime to 7, so rows, columns
  // and both diagonals of length up to 7 are simultaneously CF — the
  // Latin-square result of refs [4]/[17].
  const SkewedArrayMapping map(Array2D(32, 32), 7, 3);
  for (const auto d :
       {RunDirection::kRow, RunDirection::kColumn, RunDirection::kDiagonal,
        RunDirection::kAntiDiagonal}) {
    EXPECT_EQ(evaluate_runs(map, d, 7), 0u) << to_string(d);
  }
}

TEST(SkewedArray, SubarrayConflictFreeWithDigitSkew) {
  // a = q makes the colors of a p x q block the base-q digit pairs
  // a*dr + dc, all distinct while p*q <= M.
  const std::uint32_t M = 12;
  const SkewedArrayMapping map(Array2D(20, 20), M, 4);  // q = 4
  EXPECT_EQ(evaluate_subarrays(map, 3, 4), 0u);  // 3*4 = 12 = M
  EXPECT_EQ(evaluate_subarrays(map, 2, 4), 0u);
  EXPECT_GT(evaluate_subarrays(map, 4, 4), 0u);  // 16 > M: pigeonhole
}

TEST(RowMajorArray, PerfectOnRowsBrittleOnColumns) {
  // cols = 12, M = 6 divides it: every column collapses onto one module.
  const Array2D array(12, 12);
  const RowMajorArrayMapping map(array, 6);
  EXPECT_EQ(evaluate_runs(map, RunDirection::kRow, 6), 0u);
  EXPECT_EQ(evaluate_runs(map, RunDirection::kColumn, 6), 5u);
}

TEST(RowMajorArray, CoprimeColumnCountSavesColumns) {
  const Array2D array(12, 11);  // cols = 11 coprime to 6
  const RowMajorArrayMapping map(array, 6);
  EXPECT_EQ(evaluate_runs(map, RunDirection::kColumn, 6), 0u);
}

TEST(ArrayConflicts, CountsLikeTreeSide) {
  const RowMajorArrayMapping map(Array2D(4, 4), 4);
  const std::vector<Cell> cells{Cell{0, 0}, Cell{1, 0}, Cell{2, 0}};
  // Colors: 0, 4 mod 4 = 0, 8 mod 4 = 0: all on module 0.
  EXPECT_EQ(array_conflicts(map, cells), 2u);
  EXPECT_EQ(array_conflicts(map, {}), 0u);
}

TEST(ArrayMapping, ColorsWithinRange) {
  const Array2D array(9, 9);
  const SkewedArrayMapping skew(array, 5, 2);
  const RowMajorArrayMapping naive(array, 5);
  for (std::uint64_t r = 0; r < array.rows(); ++r) {
    for (std::uint64_t c = 0; c < array.cols(); ++c) {
      ASSERT_LT(skew.color_of(Cell{r, c}), 5u);
      ASSERT_LT(naive.color_of(Cell{r, c}), 5u);
    }
  }
}

}  // namespace
}  // namespace pmtree
