// Real-memory module arenas (DESIGN.md §17): physical layout invariants
// (64-byte slab alignment, module-major BFS placement, stride rounding),
// touch() arithmetic and its commutative-aggregation contract, the
// analytic checksum oracle, and the CycleEngine's observational memory
// hook (counters filled, responses untouched).
#include "pmtree/mem/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::mem {
namespace {

std::vector<Node> all_nodes(const CompleteBinaryTree& tree) {
  std::vector<Node> nodes;
  nodes.reserve(tree.size());
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    nodes.push_back(node_at(id));
  }
  return nodes;
}

// ---------------------------------------------------------------------------
// Physical layout.

TEST(MemoryBackend, SlabsAre64ByteAlignedAndSizedToTheirModules) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const MemoryBackend memory(mapping);

  std::uint64_t total = 0;
  for (Color m = 0; m < memory.modules(); ++m) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(memory.slab_base(m)) % 64, 0u)
        << "module " << m;
    total += memory.slab_nodes(m);
  }
  EXPECT_EQ(total, tree.size());
  EXPECT_EQ(memory.node_count(), tree.size());
  EXPECT_EQ(memory.resident_bytes(), tree.size() * memory.stride_bytes());
}

TEST(MemoryBackend, PlacementIsModuleMajorInBfsOrder) {
  const CompleteBinaryTree tree(8);
  const LabelTreeMapping mapping(tree, 11);
  const MemoryBackend memory(mapping);

  // Every node lives in the slab its placement color names, at the slot
  // equal to the count of lower-BFS-id nodes of the same color.
  std::vector<std::uint64_t> next_slot(memory.modules(), 0);
  const std::size_t lanes = memory.stride_bytes() / 8;
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    const Node n = node_at(id);
    const Color m = mapping.color_of(n);
    ASSERT_EQ(memory.module_of(n), m) << "id " << id;
    ASSERT_EQ(memory.slot_of(n), next_slot[m]) << "id " << id;
    ASSERT_EQ(memory.payload(n),
              memory.slab_base(m) + next_slot[m] * lanes)
        << "id " << id;
    next_slot[m] += 1;
  }
}

TEST(MemoryBackend, StrideRoundsPayloadUpToWholeLanes) {
  const CompleteBinaryTree tree(4);
  const ModuloMapping mapping(tree, 3);
  struct Case {
    std::uint32_t payload;
    std::uint32_t stride;
  };
  for (const Case c : {Case{1, 8}, Case{8, 8}, Case{12, 16}, Case{64, 64},
                       Case{65, 72}, Case{0, 8}}) {
    ArenaOptions opts;
    opts.payload_bytes = c.payload;
    const MemoryBackend memory(mapping, opts);
    EXPECT_EQ(memory.stride_bytes(), c.stride) << "payload " << c.payload;
  }
}

TEST(MemoryBackend, TwoPlacementsOfTheSameTreeLayOutDifferently) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 13));
  const LabelTreeMapping label(tree, 13);
  const MemoryBackend a(color);
  const MemoryBackend b(label);

  // The layout IS the mapping: some node must land in different modules.
  bool differs = false;
  for (std::uint64_t id = 0; id < tree.size() && !differs; ++id) {
    differs = a.module_of(node_at(id)) != b.module_of(node_at(id));
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// touch(): arithmetic, commutativity, and the analytic checksum oracle.

TEST(MemoryBackend, TouchCountsNodesAndBytesIncludingDuplicates) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 5);
  ArenaOptions opts;
  opts.payload_bytes = 24;
  const MemoryBackend memory(mapping, opts);

  const std::vector<Node> nodes = {v(0, 0), v(1, 2), v(1, 2), v(3, 5)};
  const TouchStats stats = memory.touch(nodes);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.bytes, 4u * memory.stride_bytes());
  // Duplicates are read once each: the pair's folds add twice.
  const TouchStats one = memory.touch(std::vector<Node>{v(1, 2)});
  const TouchStats rest =
      memory.touch(std::vector<Node>{v(0, 0), v(3, 5)});
  EXPECT_EQ(stats.checksum, one.checksum * 2 + rest.checksum);

  EXPECT_EQ(memory.touch(std::span<const Node>{}).nodes, 0u);
}

TEST(MemoryBackend, ChecksumMatchesTheAnalyticExpectation) {
  const CompleteBinaryTree tree(8);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 7));
  ArenaOptions opts;
  opts.payload_bytes = 40;
  opts.fill_seed = 0xC0FFEE;
  const MemoryBackend memory(mapping, opts);

  for (std::uint64_t id = 0; id < tree.size(); id += 17) {
    const Node n = node_at(id);
    EXPECT_EQ(memory.touch(std::vector<Node>{n}).checksum,
              memory.expected_node_checksum(n))
        << "id " << id;
  }
}

TEST(MemoryBackend, AggregationIsOrderAndPartitionInvariant) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const MemoryBackend memory(mapping);

  std::vector<Node> nodes = all_nodes(tree);
  const TouchStats whole = memory.touch(nodes);

  // Reversed order, then random batch partition: identical totals.
  std::vector<Node> reversed(nodes.rbegin(), nodes.rend());
  EXPECT_EQ(memory.touch(reversed), whole);

  Rng rng(0x9A9);
  TouchStats pieces;
  std::size_t at = 0;
  while (at < nodes.size()) {
    const std::size_t len =
        std::min(nodes.size() - at, 1 + rng.below(97));
    pieces += memory.touch(
        std::span<const Node>(nodes.data() + at, len));
    at += len;
  }
  EXPECT_EQ(pieces, whole);
}

TEST(MemoryBackend, LogicalDataIsPlacementIndependent) {
  // The fill is keyed by BFS id, not by physical slot: re-placing the
  // same tree under a different mapping must preserve every node's
  // payload, so touch totals agree byte for byte.
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 13));
  const LabelTreeMapping label(tree, 13);
  const MemoryBackend a(color);
  const MemoryBackend b(label);

  const std::vector<Node> nodes = all_nodes(tree);
  EXPECT_EQ(a.touch(nodes), b.touch(nodes));
}

TEST(MemoryBackend, StatsEchoLayoutAndTouchTotals) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 5);
  const MemoryBackend memory(mapping);
  const TouchStats touched = memory.touch(all_nodes(tree));
  const Json j = memory.stats(touched);
  EXPECT_EQ(j.find("placement")->as_string(), mapping.name());
  EXPECT_EQ(j.find("modules")->as_uint(), 5u);
  EXPECT_EQ(j.find("touched")->find("nodes")->as_uint(), tree.size());
  EXPECT_EQ(j.find("touched")->find("checksum")->as_string(),
            detail::hex64(touched.checksum));
}

// ---------------------------------------------------------------------------
// CycleEngine hook: observational counters, untouched results.

TEST(MemoryBackend, EngineFillsCountersWithoutPerturbingTheRun) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const MemoryBackend memory(mapping);

  Rng rng(0xE25);
  std::vector<Workload::Access> accesses;
  std::uint64_t total_nodes = 0;
  for (int b = 0; b < 40; ++b) {
    Workload::Access a;
    for (int k = 0; k < 8; ++k) {
      const std::uint32_t level =
          static_cast<std::uint32_t>(rng.below(tree.levels()));
      a.push_back(v(rng.below(pow2(level)), level));
    }
    total_nodes += a.size();
    accesses.push_back(std::move(a));
  }

  const engine::CycleEngine eng(mapping);
  engine::EngineOptions off;
  engine::EngineOptions on;
  on.memory = &memory;
  const engine::EngineResult want = eng.run(
      Workload(accesses), engine::ArrivalSchedule::all_at_once(), off);
  const engine::EngineResult got = eng.run(
      Workload(accesses), engine::ArrivalSchedule::all_at_once(), on);

  EXPECT_EQ(want.mem_nodes_touched, 0u);
  EXPECT_EQ(got.mem_nodes_touched, total_nodes);
  EXPECT_EQ(got.mem_bytes_touched, total_nodes * memory.stride_bytes());
  TouchStats expect;
  for (const Workload::Access& a : accesses) expect += memory.touch(a);
  EXPECT_EQ(got.mem_checksum, expect.checksum);

  // Everything the simulation decides is bit-identical with the backend
  // on: the touches are observation, not state.
  EXPECT_EQ(got.completion_cycle, want.completion_cycle);
  EXPECT_EQ(got.served, want.served);
  EXPECT_EQ(got.busy_cycles, want.busy_cycles);
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i].completion, want.records[i].completion) << i;
  }

  // JSON: the memory section appears exactly when counters are nonzero.
  const Json jwant = want.to_json();
  EXPECT_EQ(jwant.find("memory"), nullptr);
  const Json jgot = got.to_json();
  const Json* jm = jgot.find("memory");
  ASSERT_NE(jm, nullptr);
  EXPECT_EQ(jm->find("nodes")->as_uint(), total_nodes);
  EXPECT_EQ(jm->find("checksum")->as_string(),
            detail::hex64(expect.checksum));
}

}  // namespace
}  // namespace pmtree::mem
