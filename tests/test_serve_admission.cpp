// Admission-control tests, unit level and through the server: bounded
// queue with shed vs block overflow, FIFO promotion, deadline expiry
// while queued, dead-on-arrival intake, and the edge paths ISSUE lists —
// zero-request runs, empty-payload requests, graceful shutdown with
// requests in flight.
#include "pmtree/serve/admission.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree::serve {
namespace {

using Decision = AdmissionController::Decision;

Request make_request(std::uint32_t client, std::uint64_t seq,
                     std::uint64_t submit, std::vector<Node> nodes,
                     std::uint64_t deadline = 0) {
  Request r;
  r.client = client;
  r.seq = seq;
  r.submit_cycle = submit;
  r.deadline_cycles = deadline;
  r.nodes = std::move(nodes);
  return r;
}

TEST(AdmissionController, ShedsWhenFullUnderShedPolicy) {
  AdmissionController admission(
      AdmissionOptions{.queue_bound = 2, .overflow = OverflowPolicy::kShed});
  const std::vector<Request> requests{
      make_request(0, 0, 0, {v(0, 0)}),
      make_request(0, 1, 0, {v(0, 1)}),
      make_request(0, 2, 0, {v(1, 1)}),
  };
  EXPECT_EQ(admission.offer(0, requests[0], 0), Decision::kAdmitted);
  EXPECT_EQ(admission.offer(1, requests[1], 0), Decision::kAdmitted);
  EXPECT_EQ(admission.offer(2, requests[2], 0), Decision::kShedNow);
  EXPECT_EQ(admission.pending_count(), 2u);
  EXPECT_EQ(admission.blocked_count(), 0u);
}

TEST(AdmissionController, BlocksThenPromotesFifo) {
  AdmissionController admission(
      AdmissionOptions{.queue_bound = 1, .overflow = OverflowPolicy::kBlock});
  const std::vector<Request> requests{
      make_request(0, 0, 0, {v(0, 0)}),
      make_request(0, 1, 0, {v(0, 1)}),
      make_request(0, 2, 0, {v(1, 1)}),
  };
  EXPECT_EQ(admission.offer(0, requests[0], 0), Decision::kAdmitted);
  EXPECT_EQ(admission.offer(1, requests[1], 0), Decision::kBlocked);
  EXPECT_EQ(admission.offer(2, requests[2], 0), Decision::kBlocked);
  EXPECT_EQ(admission.blocked_count(), 2u);

  // Queue still full: nothing promotes.
  std::vector<std::size_t> promoted;
  admission.promote(1, promoted);
  EXPECT_TRUE(promoted.empty());

  // Drain the pending slot, then promotion is FIFO and restamps admission.
  admission.on_batched(admission.pending().front().nodes->size());
  admission.pending().pop_front();
  admission.promote(2, promoted);
  ASSERT_EQ(promoted, (std::vector<std::size_t>{1}));
  EXPECT_EQ(admission.pending().front().admitted_cycle, 2u);
  EXPECT_EQ(admission.blocked_count(), 1u);
}

TEST(AdmissionController, ExpireSweepsPendingAndBlocked) {
  AdmissionController admission(
      AdmissionOptions{.queue_bound = 1, .overflow = OverflowPolicy::kBlock});
  const std::vector<Request> requests{
      make_request(0, 0, 0, {v(0, 0)}, /*deadline=*/4),
      make_request(0, 1, 0, {v(0, 1)}, /*deadline=*/6),
      make_request(0, 2, 0, {v(1, 1)}),  // no deadline: immortal in queue
  };
  ASSERT_EQ(admission.offer(0, requests[0], 0), Decision::kAdmitted);
  ASSERT_EQ(admission.offer(1, requests[1], 0), Decision::kBlocked);
  ASSERT_EQ(admission.offer(2, requests[2], 0), Decision::kBlocked);

  std::vector<std::size_t> expired;
  admission.expire(3, expired);
  EXPECT_TRUE(expired.empty());

  // t = 4: the pending request's budget elapses (deadline boundary is
  // inclusive-expired: now >= submit + deadline).
  admission.expire(4, expired);
  EXPECT_EQ(expired, (std::vector<std::size_t>{0}));
  EXPECT_EQ(admission.pending_count(), 0u);
  EXPECT_EQ(admission.pending_node_count(), 0u);

  // t = 6: the blocked request expires without ever being admitted.
  expired.clear();
  admission.expire(6, expired);
  EXPECT_EQ(expired, (std::vector<std::size_t>{1}));
  EXPECT_EQ(admission.blocked_count(), 1u);
}

TEST(AdmissionController, DeadOnArrivalIsRejectedAtIntake) {
  AdmissionController admission(AdmissionOptions{});
  const Request late = make_request(0, 0, 0, {v(0, 0)}, /*deadline=*/3);
  EXPECT_EQ(admission.offer(0, late, 3), Decision::kDeadOnArrival);
  EXPECT_TRUE(admission.idle());
}

TEST(AdmissionController, ExpiredAtDoesNotWrapForNearMaxDeadlines) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  // Regression: submit + deadline overflows uint64 for generous budgets;
  // computed as a sum, submit=10 deadline=kMax-1 "expires" at cycle 8.
  EXPECT_FALSE(AdmissionController::expired_at(10, kMax - 1, 20));
  EXPECT_FALSE(AdmissionController::expired_at(10, kMax, kMax));
  EXPECT_FALSE(AdmissionController::expired_at(1, kMax, 0));

  // deadline 0 means "no deadline", never expires.
  EXPECT_FALSE(AdmissionController::expired_at(0, 0, kMax));

  // Ordinary budgets: boundary is inclusive-expired (elapsed >= budget).
  EXPECT_FALSE(AdmissionController::expired_at(5, 10, 14));
  EXPECT_TRUE(AdmissionController::expired_at(5, 10, 15));
  EXPECT_TRUE(AdmissionController::expired_at(5, 10, kMax));

  // A clock before the submit cycle has elapsed nothing (requests are
  // offered at ticks >= submit; the guard keeps the subtraction safe).
  EXPECT_FALSE(AdmissionController::expired_at(100, 5, 50));

  // Through intake: a near-max budget admits instead of dying on arrival.
  AdmissionController admission(AdmissionOptions{});
  const Request generous = make_request(0, 0, 0, {v(0, 0)}, kMax - 1);
  EXPECT_EQ(admission.offer(0, generous, 4096), Decision::kAdmitted);
}

// ---- Server-level edge paths -----------------------------------------

ServerOptions tight_options() {
  ServerOptions opts;
  opts.tick_cycles = 1;
  opts.batch.max_wait_cycles = 10;
  opts.batch.max_batch_nodes = 64;
  return opts;
}

TEST(ServerEdge, DeadlineExpiresWhileQueued) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 4);
  ServerOptions opts = tight_options();
  Server server(map, opts);

  // max_wait 10 keeps the queue un-batched until cycle 10; the deadline
  // of 5 fires first, while the request is still queued.
  server.submit(make_request(0, 0, 0, {v(0, 0)}, /*deadline=*/5));
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), 1u);
  EXPECT_EQ(report.responses[0].status, RequestStatus::kExpired);
  EXPECT_EQ(report.responses[0].completion_cycle, 5u);
  EXPECT_EQ(report.responses[0].latency(), 5u);
  EXPECT_TRUE(report.batches.empty());
  EXPECT_EQ(report.count(RequestStatus::kExpired), 1u);
}

TEST(ServerEdge, ShedUnderBackpressure) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 4);
  ServerOptions opts = tight_options();
  opts.admission.queue_bound = 1;
  opts.admission.overflow = OverflowPolicy::kShed;
  Server server(map, opts);

  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    server.submit(make_request(0, seq, 0, {v(seq, 3)}));
  }
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), 3u);
  // Canonical order admits seq 0 into the single slot; 1 and 2 shed
  // immediately with zero latency.
  EXPECT_EQ(report.responses[0].status, RequestStatus::kOk);
  EXPECT_EQ(report.responses[1].status, RequestStatus::kShed);
  EXPECT_EQ(report.responses[2].status, RequestStatus::kShed);
  EXPECT_EQ(report.responses[1].latency(), 0u);
  EXPECT_EQ(report.count(RequestStatus::kShed), 2u);
  const Json* shed = report.metrics.find("counters")->find("shed");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->as_uint(), 2u);
}

TEST(ServerEdge, BlockedCallersAreServedFifoNotShed) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 4);
  ServerOptions opts = tight_options();
  opts.admission.queue_bound = 1;
  opts.admission.overflow = OverflowPolicy::kBlock;
  opts.batch.max_wait_cycles = 0;  // flush each tick so slots free quickly
  Server server(map, opts);

  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    server.submit(make_request(0, seq, 0, {v(seq, 3)}));
  }
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), 3u);
  for (const Response& r : report.responses) {
    EXPECT_EQ(r.status, RequestStatus::kOk);
  }
  // FIFO: dispatch order follows submission order.
  EXPECT_LT(report.responses[0].dispatch_cycle,
            report.responses[1].dispatch_cycle);
  EXPECT_LT(report.responses[1].dispatch_cycle,
            report.responses[2].dispatch_cycle);
  EXPECT_EQ(report.count(RequestStatus::kShed), 0u);
}

TEST(ServerEdge, ZeroRequestRunIsWellFormed) {
  const CompleteBinaryTree tree(4);
  const ModuloMapping map(tree, 3);
  Server server(map);
  const ServeReport report = server.run();
  EXPECT_TRUE(report.responses.empty());
  EXPECT_TRUE(report.batches.empty());
  EXPECT_EQ(report.ticks, 0u);
  EXPECT_EQ(report.final_cycle, 0u);
  // The report still exports a complete, parseable JSON document.
  const auto parsed = Json::parse(report.to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("requests")->as_uint(), 0u);
}

TEST(ServerEdge, EmptyPayloadRequestCompletesAtDispatch) {
  const CompleteBinaryTree tree(4);
  const ModuloMapping map(tree, 3);
  ServerOptions opts = tight_options();
  opts.batch.max_wait_cycles = 0;
  Server server(map, opts);
  server.submit(make_request(0, 0, 0, {}));
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), 1u);
  EXPECT_EQ(report.responses[0].status, RequestStatus::kOk);
  EXPECT_EQ(report.responses[0].completion_cycle,
            report.responses[0].dispatch_cycle);
}

TEST(ServerEdge, GracefulShutdownResolvesEveryInFlightRequest) {
  // A pile of requests with mixed deadlines under a tight blocking queue:
  // run() must leave nothing pending — every submitted request reaches a
  // terminal status (the graceful-shutdown contract).
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  ServerOptions opts = tight_options();
  opts.admission.queue_bound = 2;
  opts.admission.overflow = OverflowPolicy::kBlock;
  opts.batch.max_batch_nodes = 4;
  opts.batch.max_wait_cycles = 6;
  Server server(map, opts);

  const std::size_t kRequests = 40;
  for (std::uint64_t seq = 0; seq < kRequests; ++seq) {
    const std::uint64_t deadline = seq % 3 == 0 ? 3 : 0;
    server.submit(make_request(static_cast<std::uint32_t>(seq % 4), seq / 4,
                               seq / 8, {v(seq % 16, 4), v(seq % 8, 3)},
                               deadline));
  }
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), kRequests);
  std::uint64_t terminal = 0;
  for (const Response& r : report.responses) {
    EXPECT_NE(r.status, RequestStatus::kPending);
    terminal += r.status != RequestStatus::kPending ? 1 : 0;
    EXPECT_GE(r.completion_cycle, r.submit_cycle);
  }
  EXPECT_EQ(terminal, kRequests);
  EXPECT_EQ(report.count(RequestStatus::kOk) +
                report.count(RequestStatus::kShed) +
                report.count(RequestStatus::kExpired),
            kRequests);
  // Blocking policy never sheds.
  EXPECT_EQ(report.count(RequestStatus::kShed), 0u);
}

TEST(AdmissionController, PoolExhaustionBlocksInsteadOfShedding) {
  // The shared-pool verdict overrides the tenant's own overflow policy:
  // a kShed controller with queue space still BLOCKS when the pool above
  // it is full — shed must stay attributable to the tenant's own quota.
  AdmissionController admission(
      AdmissionOptions{.queue_bound = 4, .overflow = OverflowPolicy::kShed});
  const Request request = make_request(0, 0, 0, {v(0, 0)});
  EXPECT_EQ(admission.offer(0, request, 0, /*pool_has_room=*/false),
            Decision::kBlocked);
  EXPECT_EQ(admission.pending_count(), 0u);
  EXPECT_EQ(admission.blocked_count(), 1u);

  // Once the pool frees, promotion admits the blocked caller FIFO.
  std::vector<std::size_t> promoted;
  admission.promote(3, promoted);
  EXPECT_EQ(promoted, (std::vector<std::size_t>{0}));
  EXPECT_EQ(admission.pending_count(), 1u);
  EXPECT_EQ(admission.pending().front().admitted_cycle, 3u);
}

TEST(AdmissionController, PromoteHonorsTheCallerLimit) {
  AdmissionController admission(
      AdmissionOptions{.queue_bound = 8, .overflow = OverflowPolicy::kBlock});
  const std::vector<Request> requests{
      make_request(0, 0, 0, {v(0, 0)}),
      make_request(0, 1, 0, {v(0, 1)}),
      make_request(0, 2, 0, {v(1, 1)}),
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(admission.offer(i, requests[i], 0, /*pool_has_room=*/false),
              Decision::kBlocked);
  }
  ASSERT_EQ(admission.blocked_count(), 3u);

  // Limit 2: only the first two blocked callers promote, in FIFO order.
  std::vector<std::size_t> promoted;
  admission.promote(1, promoted, /*limit=*/2);
  EXPECT_EQ(promoted, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(admission.blocked_count(), 1u);

  promoted.clear();
  admission.promote(2, promoted, /*limit=*/0);
  EXPECT_TRUE(promoted.empty());  // zero headroom promotes nothing

  promoted.clear();
  admission.promote(2, promoted);  // default limit: unlimited
  EXPECT_EQ(promoted, (std::vector<std::size_t>{2}));
  EXPECT_TRUE(admission.blocked_count() == 0u);
}

TEST(AdmissionController, PoolBlockedCallersStillExpire) {
  // A caller parked by pool exhaustion keeps its deadline countdown: the
  // expire sweep covers the blocked queue too.
  AdmissionController admission(
      AdmissionOptions{.queue_bound = 4, .overflow = OverflowPolicy::kShed});
  const Request request = make_request(0, 0, 0, {v(0, 0)}, /*deadline=*/5);
  ASSERT_EQ(admission.offer(0, request, 0, /*pool_has_room=*/false),
            Decision::kBlocked);
  std::vector<std::size_t> expired;
  admission.expire(4, expired);
  EXPECT_TRUE(expired.empty());
  admission.expire(5, expired);
  EXPECT_EQ(expired, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(admission.idle());
}

}  // namespace
}  // namespace pmtree::serve
