// Read-write serving differential (DESIGN.md §16): mixed read/write
// traffic against a DynamicTree + IncrementalColorer must produce
// bit-identical responses, mutation logs and final tree/color state at
// 1/2/8 workers, under the staged pipeline, and under the
// full-recolor-per-epoch strawman — and write-write conflicts must
// resolve to the canonically-first writer, deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

constexpr std::uint32_t kLevels = 8;
constexpr std::uint32_t kN = 5;
constexpr std::uint32_t kK = 2;

struct Config {
  ServerOptions options;  ///< dyn binding filled per run
  std::vector<Request> requests;
  bool label_scheme = false;
};

Config random_config(std::uint64_t seed) {
  Rng rng(seed);
  Config cfg;
  cfg.label_scheme = rng.chance(1, 3);
  cfg.options.tick_cycles = rng.between(1, 5);
  cfg.options.replicas = static_cast<std::uint32_t>(rng.between(1, 3));
  cfg.options.admission.queue_bound = rng.between(4, 32);
  cfg.options.batch.max_batch_nodes = rng.between(4, 48);
  cfg.options.batch.max_wait_cycles = rng.between(0, 10);

  const std::size_t count = rng.between(40, 160);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(4, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(4);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(4));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    const std::uint64_t dice = rng.below(100);
    // Write targets are biased to shallow levels so parents are often
    // live and a healthy share of mutations actually applies; the rest
    // exercise the rejection verdicts.
    if (dice < 25) {
      r.kind = RequestKind::kInsert;
      const auto level = static_cast<std::uint32_t>(rng.between(1, 5));
      r.target = Node{level, rng.below(pow2(level))};
      r.payload = static_cast<std::int64_t>(rng.below(1000));
      Node cur = r.target;
      while (true) {
        r.nodes.push_back(cur);
        if (cur.level == 0) break;
        cur = parent(cur);
      }
    } else if (dice < 40) {
      r.kind = RequestKind::kErase;
      const auto level = static_cast<std::uint32_t>(rng.between(1, 5));
      r.target = Node{level, rng.below(pow2(level))};
      r.nodes.push_back(r.target);
    } else {
      const std::size_t nodes = rng.between(1, 5);
      for (std::size_t t = 0; t < nodes; ++t) {
        const auto level = static_cast<std::uint32_t>(rng.below(kLevels));
        r.nodes.push_back(Node{level, rng.below(pow2(level))});
      }
    }
    cfg.requests.push_back(std::move(r));
  }
  return cfg;
}

struct RunResult {
  ServeReport report;
  std::vector<Node> live;        ///< final live set
  std::vector<Color> live_colors;
  std::uint64_t tree_version = 0;
  std::uint64_t nodes_colored = 0;
};

/// Fresh tree + colorer per run: every leg replays the same traffic from
/// the same root-only initial state.
RunResult run_config(const Config& cfg, unsigned workers,
                     unsigned pipeline_workers, bool recolor_from_scratch) {
  const CompleteBinaryTree envelope(kLevels);
  dyn::DynamicTree tree(kLevels);
  dyn::IncrementalColorer colorer =
      cfg.label_scheme ? dyn::IncrementalColorer::label_tree(envelope, 7)
                       : dyn::IncrementalColorer::color(envelope, kN, kK);
  ServerOptions opts = cfg.options;
  opts.workers = workers;
  opts.pipeline.workers = pipeline_workers;
  opts.dyn.tree = &tree;
  opts.dyn.colorer = &colorer;
  opts.dyn.recolor_from_scratch = recolor_from_scratch;
  Server server(colorer, opts);
  for (const Request& r : cfg.requests) server.submit(r);
  RunResult res;
  res.report = server.run();
  res.live = tree.live_nodes();
  res.live_colors.resize(res.live.size());
  colorer.color_of_batch(std::span<const Node>(res.live.data(),
                                               res.live.size()),
                         std::span<Color>(res.live_colors.data(),
                                          res.live_colors.size()));
  res.tree_version = tree.version();
  res.nodes_colored = colorer.nodes_colored();
  EXPECT_TRUE(tree.validate());
  return res;
}

void expect_same_responses(const ServeReport& got, const ServeReport& want) {
  ASSERT_EQ(got.responses.size(), want.responses.size());
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& a = got.responses[i];
    const Response& b = want.responses[i];
    ASSERT_EQ(a.client, b.client) << i;
    ASSERT_EQ(a.seq, b.seq) << i;
    ASSERT_EQ(a.status, b.status) << i;
    ASSERT_EQ(a.admitted_cycle, b.admitted_cycle) << i;
    ASSERT_EQ(a.dispatch_cycle, b.dispatch_cycle) << i;
    ASSERT_EQ(a.completion_cycle, b.completion_cycle) << i;
    ASSERT_EQ(a.batch, b.batch) << i;
  }
}

void expect_same_mutations(const std::vector<MutationRecord>& got,
                           const std::vector<MutationRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].batch, want[i].batch) << i;
    ASSERT_EQ(got[i].client, want[i].client) << i;
    ASSERT_EQ(got[i].seq, want[i].seq) << i;
    ASSERT_EQ(got[i].kind, want[i].kind) << i;
    ASSERT_EQ(got[i].target, want[i].target) << i;
    ASSERT_EQ(got[i].payload, want[i].payload) << i;
    ASSERT_EQ(got[i].status, want[i].status) << i;
    ASSERT_EQ(got[i].applied_cycle, want[i].applied_cycle) << i;
  }
}

void expect_same_final_state(const RunResult& got, const RunResult& want) {
  ASSERT_EQ(got.live, want.live);
  ASSERT_EQ(got.live_colors, want.live_colors);
  ASSERT_EQ(got.tree_version, want.tree_version);
}

TEST(DynServe, MixedTrafficIsWorkerCountInvariant) {
  std::uint64_t total_applied = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = random_config(seed * 7919);
    const RunResult oracle = run_config(cfg, 1, 0, false);

    ASSERT_EQ(oracle.report.count(RequestStatus::kOk) +
                  oracle.report.count(RequestStatus::kShed) +
                  oracle.report.count(RequestStatus::kExpired),
              cfg.requests.size());
    for (const MutationRecord& rec : oracle.report.mutations) {
      if (rec.status == dyn::DynStatus::kOk) total_applied += 1;
    }

    for (const unsigned workers : {2u, 8u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      const RunResult got = run_config(cfg, workers, 0, false);
      expect_same_responses(got.report, oracle.report);
      expect_same_mutations(got.report.mutations, oracle.report.mutations);
      expect_same_final_state(got, oracle);
      // The oracle path's full JSON (metrics included) is byte-identical.
      ASSERT_EQ(got.report.to_json().dump(), oracle.report.to_json().dump());
    }
  }
  // The workload actually wrote — otherwise the suite re-checks reads.
  EXPECT_GT(total_applied, 0u);
}

TEST(DynServe, StagedPipelineMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = random_config(seed * 104729);
    const RunResult oracle = run_config(cfg, 1, 0, false);
    for (const unsigned pipeline_workers : {1u, 2u, 4u}) {
      SCOPED_TRACE("pipeline=" + std::to_string(pipeline_workers));
      const RunResult got = run_config(cfg, 1, pipeline_workers, false);
      expect_same_responses(got.report, oracle.report);
      expect_same_mutations(got.report.mutations, oracle.report.mutations);
      expect_same_final_state(got, oracle);
    }
  }
}

TEST(DynServe, FullRecolorStrawmanIsBitIdenticalButCostlier) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = random_config(seed * 65537);
    const RunResult incremental = run_config(cfg, 2, 0, false);
    const RunResult strawman = run_config(cfg, 2, 0, true);
    // Colors are coordinate-pure: dropping and rebuilding the memo after
    // every writing batch changes the work, never the answers.
    expect_same_responses(strawman.report, incremental.report);
    expect_same_mutations(strawman.report.mutations,
                          incremental.report.mutations);
    expect_same_final_state(strawman, incremental);
    // (Work comparison lives in bench E24 — reset() zeroes the colorer's
    // counters, so end-of-run counts are not comparable across modes.)
  }
}

TEST(DynServe, FinalColorsMatchFromScratchMappings) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Config cfg = random_config(seed * 2654435761u);
    const RunResult res = run_config(cfg, 2, 0, false);
    const CompleteBinaryTree envelope(kLevels);
    std::unique_ptr<TreeMapping> rebuild;
    if (cfg.label_scheme) {
      rebuild = std::make_unique<LabelTreeMapping>(
          envelope, 7, LabelTreeMapping::Retrieval::kTable);
    } else {
      rebuild = std::make_unique<ColorMapping>(envelope, kN, kK);
    }
    for (std::size_t i = 0; i < res.live.size(); ++i) {
      ASSERT_EQ(res.live_colors[i], rebuild->color_of(res.live[i]))
          << "node (" << res.live[i].level << ", " << res.live[i].index << ")";
    }
  }
}

TEST(DynServe, ConflictingWritersResolveToCanonicalFirst) {
  // Two clients race an insert of the same coordinate in the same cycle;
  // a third erases it immediately after. Canonical order (submit, client,
  // seq) decides every verdict.
  const CompleteBinaryTree envelope(kLevels);
  dyn::DynamicTree tree(kLevels);
  dyn::IncrementalColorer colorer =
      dyn::IncrementalColorer::color(envelope, kN, kK);
  ServerOptions opts;
  opts.tick_cycles = 2;
  opts.batch.max_batch_nodes = 16;
  opts.dyn.tree = &tree;
  opts.dyn.colorer = &colorer;
  Server server(colorer, opts);

  const Node target{1, 0};
  for (std::uint32_t client = 0; client < 2; ++client) {
    Request r;
    r.client = client;
    r.seq = 0;
    r.submit_cycle = 0;
    r.kind = RequestKind::kInsert;
    r.target = target;
    r.payload = 100 + client;
    r.nodes = {Node{0, 0}, target};
    server.submit(std::move(r));
  }
  Request erase;
  erase.client = 2;
  erase.seq = 0;
  erase.submit_cycle = 10;
  erase.kind = RequestKind::kErase;
  erase.target = target;
  erase.nodes = {target};
  server.submit(std::move(erase));

  const ServeReport report = server.run();
  ASSERT_EQ(report.mutations.size(), 3u);
  // Client 0 is canonically first: its insert wins.
  EXPECT_EQ(report.mutations[0].client, 0u);
  EXPECT_EQ(report.mutations[0].status, dyn::DynStatus::kOk);
  // Client 1's identical (kind, target) in the same batch is deduped; in
  // a later batch it would be kOccupied — both verdicts are losses.
  EXPECT_TRUE(report.mutations[1].status == dyn::DynStatus::kDuplicate ||
              report.mutations[1].status == dyn::DynStatus::kOccupied);
  // The erase lands after both inserts and succeeds.
  EXPECT_EQ(report.mutations[2].kind, RequestKind::kErase);
  EXPECT_EQ(report.mutations[2].status, dyn::DynStatus::kOk);
  EXPECT_FALSE(tree.is_live(target));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(DynServe, WithoutBindingWritesBehaveAsReads) {
  // The same traffic against a plain static server: no barrier, no log,
  // and the kind/target fields are inert.
  const Config cfg = random_config(31337);
  const CompleteBinaryTree envelope(kLevels);
  const ColorMapping mapping(envelope, kN, kK);
  ServerOptions opts = cfg.options;
  Server server(mapping, opts);
  for (const Request& r : cfg.requests) server.submit(r);
  const ServeReport report = server.run();
  EXPECT_TRUE(report.mutations.empty());
  EXPECT_EQ(report.count(RequestStatus::kOk) +
                report.count(RequestStatus::kShed) +
                report.count(RequestStatus::kExpired),
            cfg.requests.size());
}

}  // namespace
}  // namespace pmtree::serve
