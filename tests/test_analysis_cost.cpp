#include "pmtree/analysis/cost.hpp"

#include <gtest/gtest.h>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

/// A deliberately terrible mapping: everything on module 0.
class ConstantMapping final : public TreeMapping {
 public:
  explicit ConstantMapping(CompleteBinaryTree tree) : TreeMapping(tree) {}
  [[nodiscard]] Color color_of(Node) const override { return 0; }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return 4; }
  [[nodiscard]] std::string name() const override { return "CONSTANT"; }
};

TEST(Conflicts, CountsMaxMultiplicityMinusOne) {
  const CompleteBinaryTree tree(4);
  const ConstantMapping map(tree);
  const std::vector<Node> nodes{v(0, 0), v(0, 1), v(1, 1)};
  EXPECT_EQ(conflicts(map, nodes), 2u);
  EXPECT_EQ(rounds(map, nodes), 3u);
}

TEST(Conflicts, EmptyAccessIsFree) {
  const CompleteBinaryTree tree(4);
  const ConstantMapping map(tree);
  EXPECT_EQ(conflicts(map, {}), 0u);
  EXPECT_EQ(rounds(map, {}), 0u);
}

TEST(Conflicts, ZeroForRainbowAccess) {
  const CompleteBinaryTree tree(4);
  const ModuloMapping map(tree, 16);
  const std::vector<Node> nodes{v(0, 3), v(1, 3), v(2, 3)};
  EXPECT_EQ(conflicts(map, nodes), 0u);
  EXPECT_EQ(rounds(map, nodes), 1u);  // all three proceed in one round
}

TEST(EvaluateFamilies, WorstCaseMappingHitsSizeMinusOne) {
  const CompleteBinaryTree tree(5);
  const ConstantMapping map(tree);
  EXPECT_EQ(evaluate_subtrees(map, 7).max_conflicts, 6u);
  EXPECT_EQ(evaluate_paths(map, 5).max_conflicts, 4u);
  EXPECT_EQ(evaluate_level_runs(map, 4).max_conflicts, 3u);
}

TEST(EvaluateFamilies, InstanceCountsMatchEnumerators) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 7);
  EXPECT_EQ(evaluate_subtrees(map, 3).instances, 31u);
  EXPECT_EQ(evaluate_paths(map, 4).instances, 56u);
}

TEST(EvaluateFamilies, WitnessReproducesMaxConflicts) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 7);
  const auto cost = evaluate_paths(map, 7);
  ASSERT_FALSE(cost.witness.empty());
  EXPECT_EQ(conflicts(map, cost.witness), cost.max_conflicts);
}

TEST(EvaluateFamilies, MeanNeverExceedsMax) {
  const CompleteBinaryTree tree(8);
  const RandomMapping map(tree, 15, 3);
  const auto cost = evaluate_subtrees(map, 15);
  EXPECT_LE(cost.mean_conflicts,
            static_cast<double>(cost.max_conflicts) + 1e-12);
}

TEST(SampleFamilies, SampledMaxNeverExceedsExhaustiveMax) {
  const CompleteBinaryTree tree(9);
  const RandomMapping map(tree, 15, 5);
  Rng rng(99);
  const auto exhaustive = evaluate_paths(map, 9);
  const auto sampled = sample_paths(map, 9, 500, rng);
  EXPECT_LE(sampled.max_conflicts, exhaustive.max_conflicts);
  EXPECT_EQ(sampled.instances, 500u);
}

TEST(SampleFamilies, CompositeSamplingProducesInstances) {
  const CompleteBinaryTree tree(12);
  const ModuloMapping map(tree, 31);
  Rng rng(7);
  const auto cost = sample_composites(map, 100, 4, 40, rng);
  EXPECT_EQ(cost.instances, 40u);
}

}  // namespace
}  // namespace pmtree
