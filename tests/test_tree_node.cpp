#include "pmtree/tree/node.hpp"

#include <gtest/gtest.h>

#include "pmtree/tree/tree.hpp"

namespace pmtree {
namespace {

TEST(Node, BfsIdMatchesPaperFormula) {
  // v(i, j) has BFS id 2^j - 1 + i (the paper colors it 2^j + i - 1).
  EXPECT_EQ(bfs_id(v(0, 0)), 0u);
  EXPECT_EQ(bfs_id(v(0, 1)), 1u);
  EXPECT_EQ(bfs_id(v(1, 1)), 2u);
  EXPECT_EQ(bfs_id(v(0, 2)), 3u);
  EXPECT_EQ(bfs_id(v(3, 2)), 6u);
}

TEST(Node, BfsIdRoundTrip) {
  for (std::uint64_t id = 0; id < 1u << 12; ++id) {
    EXPECT_EQ(bfs_id(node_at(id)), id);
  }
}

TEST(Node, AncestorMatchesPaperFormula) {
  // ANC(i, j, k) = v(floor(i / 2^k), j - k).
  const Node n = v(13, 5);
  EXPECT_EQ(ancestor(n, 0), n);
  EXPECT_EQ(ancestor(n, 1), v(6, 4));
  EXPECT_EQ(ancestor(n, 2), v(3, 3));
  EXPECT_EQ(ancestor(n, 5), v(0, 0));
}

TEST(Node, ParentChildRelations) {
  const Node n = v(5, 4);
  EXPECT_EQ(parent(left_child(n)), n);
  EXPECT_EQ(parent(right_child(n)), n);
  EXPECT_EQ(left_child(n), v(10, 5));
  EXPECT_EQ(right_child(n), v(11, 5));
}

TEST(Node, SiblingIsIndexXorOne) {
  EXPECT_EQ(sibling(v(4, 3)), v(5, 3));
  EXPECT_EQ(sibling(v(5, 3)), v(4, 3));
  EXPECT_EQ(sibling(sibling(v(7, 3))), v(7, 3));
}

TEST(Node, IsAncestor) {
  EXPECT_TRUE(is_ancestor(v(0, 0), v(5, 3)));
  EXPECT_TRUE(is_ancestor(v(1, 1), v(5, 3)));   // 5 >> 2 == 1
  EXPECT_FALSE(is_ancestor(v(0, 1), v(5, 3)));  // 5 >> 2 == 1 != 0
  EXPECT_FALSE(is_ancestor(v(5, 3), v(5, 3)));  // strict
  EXPECT_FALSE(is_ancestor(v(5, 3), v(1, 1)));  // wrong direction
}

TEST(Node, InSubtree) {
  const Node root = v(2, 2);
  EXPECT_TRUE(in_subtree(root, root, 1));
  EXPECT_TRUE(in_subtree(v(4, 3), root, 2));
  EXPECT_TRUE(in_subtree(v(5, 3), root, 2));
  EXPECT_FALSE(in_subtree(v(6, 3), root, 2));
  EXPECT_FALSE(in_subtree(v(4, 3), root, 1));  // below the 1-level subtree
  EXPECT_FALSE(in_subtree(v(1, 1), root, 3));  // above the root
}

TEST(Tree, ShapeQueries) {
  const CompleteBinaryTree t(4);
  EXPECT_EQ(t.levels(), 4u);
  EXPECT_EQ(t.height(), 3u);
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.num_leaves(), 8u);
  EXPECT_EQ(t.level_width(2), 4u);
  EXPECT_TRUE(t.contains(v(7, 3)));
  EXPECT_FALSE(t.contains(Node{4, 0}));
  EXPECT_FALSE(t.contains(Node{2, 4}));
  EXPECT_TRUE(t.is_leaf(v(0, 3)));
  EXPECT_FALSE(t.is_leaf(v(0, 2)));
  EXPECT_EQ(t.root(), v(0, 0));
  EXPECT_EQ(t.first_leaf(), v(0, 3));
}

TEST(Node, ToString) {
  EXPECT_EQ(to_string(v(3, 2)), "v(3, 2)");
}

}  // namespace
}  // namespace pmtree
