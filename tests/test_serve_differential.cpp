// Determinism property tests for the serve front-end (DESIGN.md §11):
// across randomized (mapping, workload, deadline, queue-bound, policy)
// configurations, the multi-threaded server must be bit-identical,
// request-for-request, to the single-threaded oracle — at 1, 2 and 8
// workers — and concurrent submission from many client threads must
// produce exactly the sequential-submission report.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

struct Config {
  std::unique_ptr<CompleteBinaryTree> tree;
  std::unique_ptr<TreeMapping> mapping;
  ServerOptions options;
  std::vector<Request> requests;
  // Owned here; run_with_workers wires it into the copied options so the
  // pointer survives Config moves (options.engine.faults must never dangle).
  std::unique_ptr<fault::FaultPlan> faults;
};

Config random_config(std::uint64_t seed) {
  Rng rng(seed);
  Config cfg;
  const std::uint32_t levels = static_cast<std::uint32_t>(rng.between(5, 9));
  cfg.tree = std::make_unique<CompleteBinaryTree>(levels);
  const std::uint32_t modules = static_cast<std::uint32_t>(rng.between(3, 17));
  if (rng.chance(1, 2)) {
    cfg.mapping = std::make_unique<ColorMapping>(
        make_optimal_color_mapping(*cfg.tree, modules));
  } else {
    cfg.mapping = std::make_unique<ModuloMapping>(*cfg.tree, modules);
  }

  cfg.options.tick_cycles = rng.between(1, 6);
  cfg.options.replicas = static_cast<std::uint32_t>(rng.between(1, 4));
  cfg.options.admission.queue_bound = rng.between(1, 32);
  cfg.options.admission.overflow =
      rng.chance(1, 2) ? OverflowPolicy::kShed : OverflowPolicy::kBlock;
  cfg.options.batch.max_batch_nodes = rng.between(2, 48);
  cfg.options.batch.max_wait_cycles = rng.between(0, 12);
  cfg.options.engine.sampling =
      engine::EngineOptions::DepthSampling::kStrided;
  cfg.options.engine.sample_stride = 16;

  const std::size_t count = rng.between(20, 120);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(4, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(5);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(4));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    r.deadline_cycles = rng.chance(1, 4) ? rng.between(1, 20) : 0;
    const std::size_t nodes = rng.below(6);  // 0..5, empty payloads included
    for (std::size_t k = 0; k < nodes; ++k) {
      const std::uint32_t level =
          static_cast<std::uint32_t>(rng.below(levels));
      r.nodes.push_back(v(rng.below(pow2(level)), level));
    }
    cfg.requests.push_back(std::move(r));
  }
  return cfg;
}

/// Degraded serving on top of a base config: a seeded fault plan for the
/// replica engines plus a retry policy tight enough that fault-inflated
/// residencies actually fire it.
Config faulted_config(std::uint64_t seed) {
  Config cfg = random_config(seed);
  Rng rng(seed ^ 0xFA017u);
  fault::FaultPlan::RandomOptions fopts;
  fopts.seed = rng();
  fopts.modules = cfg.mapping->num_modules();
  fopts.fail_fraction = 0.25;
  fopts.fail_window = 64;
  fopts.slowdown_count = 2;
  fopts.slowdown_window = 256;
  fopts.slowdown_max_length = 128;
  fopts.slowdown_max_period = 4;
  cfg.faults =
      std::make_unique<fault::FaultPlan>(fault::FaultPlan::random(fopts));
  cfg.options.retry.max_retries = static_cast<std::uint32_t>(rng.between(1, 4));
  cfg.options.retry.attempt_timeout_cycles = rng.between(2, 12);
  cfg.options.retry.backoff_base_cycles = rng.between(1, 8);
  cfg.options.retry.backoff_cap_cycles = 64;
  return cfg;
}

ServeReport run_with_workers(const Config& cfg, unsigned workers) {
  ServerOptions opts = cfg.options;
  opts.workers = workers;
  if (cfg.faults != nullptr) opts.engine.faults = cfg.faults.get();
  Server server(*cfg.mapping, opts);
  for (const Request& r : cfg.requests) server.submit(r);
  return server.run();
}

void expect_same_report(const ServeReport& got, const ServeReport& want) {
  ASSERT_EQ(got.responses.size(), want.responses.size());
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& a = got.responses[i];
    const Response& b = want.responses[i];
    ASSERT_EQ(a.client, b.client) << i;
    ASSERT_EQ(a.seq, b.seq) << i;
    ASSERT_EQ(a.status, b.status) << i;
    ASSERT_EQ(a.submit_cycle, b.submit_cycle) << i;
    ASSERT_EQ(a.admitted_cycle, b.admitted_cycle) << i;
    ASSERT_EQ(a.dispatch_cycle, b.dispatch_cycle) << i;
    ASSERT_EQ(a.completion_cycle, b.completion_cycle) << i;
    ASSERT_EQ(a.batch, b.batch) << i;
    ASSERT_EQ(a.retries, b.retries) << i;
  }
  ASSERT_EQ(got.rounds, want.rounds);
  ASSERT_EQ(got.batches.size(), want.batches.size());
  for (std::size_t b = 0; b < got.batches.size(); ++b) {
    ASSERT_EQ(got.batches[b].members, want.batches[b].members) << b;
    ASSERT_EQ(got.batches[b].nodes, want.batches[b].nodes) << b;
    ASSERT_EQ(got.batches[b].formed_cycle, want.batches[b].formed_cycle) << b;
  }
  ASSERT_EQ(got.ticks, want.ticks);
  ASSERT_EQ(got.final_cycle, want.final_cycle);
  // The whole report — metrics, per-replica trajectories, response rows —
  // serializes identically.
  ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
}

TEST(ServeDifferential, WorkerCountNeverChangesResults) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = random_config(seed * 7919);
    const ServeReport oracle = run_with_workers(cfg, 1);

    // Terminal-status accounting holds on the oracle itself.
    ASSERT_EQ(oracle.count(RequestStatus::kOk) +
                  oracle.count(RequestStatus::kShed) +
                  oracle.count(RequestStatus::kExpired),
              cfg.requests.size());

    for (const unsigned workers : {2u, 8u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      expect_same_report(run_with_workers(cfg, workers), oracle);
    }
  }
}

TEST(ServeDifferential, FaultedRetryingRunsAreWorkerCountInvariant) {
  // Degraded mode is held to the same bar as healthy mode: a seeded fault
  // plan plus an aggressive retry policy must still be bit-identical,
  // request-for-request and round-for-round, at 1/2/8 workers.
  std::uint64_t total_retries = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = faulted_config(seed * 15485863);
    const ServeReport oracle = run_with_workers(cfg, 1);

    // Graceful shutdown survives faults: every request terminal.
    ASSERT_EQ(oracle.count(RequestStatus::kOk) +
                  oracle.count(RequestStatus::kShed) +
                  oracle.count(RequestStatus::kExpired),
              cfg.requests.size());
    ASSERT_GE(oracle.rounds, 1u);
    for (const Response& r : oracle.responses) {
      ASSERT_LE(r.retries, cfg.options.retry.max_retries);
      if (r.status == RequestStatus::kOk) {
        ASSERT_GE(r.completion_cycle, r.dispatch_cycle);
      }
      total_retries += r.retries;
    }

    for (const unsigned workers : {2u, 8u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      expect_same_report(run_with_workers(cfg, workers), oracle);
    }
  }
  // The policy is tight enough that retries actually happened somewhere —
  // otherwise this test would be vacuously re-checking the healthy path.
  EXPECT_GT(total_retries, 0u);
}

TEST(ServeDifferential, EmptyFaultPlanMatchesNoPlanExactly) {
  for (std::uint64_t seed : {5u, 9u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Config cfg = random_config(seed * 2654435761u);
    const ServeReport bare = run_with_workers(cfg, 2);
    cfg.faults = std::make_unique<fault::FaultPlan>();  // empty plan
    expect_same_report(run_with_workers(cfg, 2), bare);
  }
}

TEST(ServeDifferential, RetriesRespectDeadlineAndAttemptBudgets) {
  // Retried requests are never served twice and never exceed the policy's
  // attempt budget; expiry (including a retry landing past its deadline)
  // only ever happens to requests that actually carried a deadline.
  const Config cfg = faulted_config(777);
  const ServeReport report = run_with_workers(cfg, 1);
  ASSERT_EQ(report.responses.size(), cfg.requests.size());
  for (const Response& r : report.responses) {
    ASSERT_LE(r.retries, cfg.options.retry.max_retries)
        << "client " << r.client << " seq " << r.seq;
    ASSERT_NE(r.status, RequestStatus::kPending);
    if (r.status == RequestStatus::kOk) {
      ASSERT_GE(r.completion_cycle, r.dispatch_cycle);
      ASSERT_GE(r.dispatch_cycle, r.submit_cycle);
    }
    if (r.status == RequestStatus::kExpired) {
      // Find the original request: expiry requires a deadline.
      bool found = false;
      for (const Request& q : cfg.requests) {
        if (q.client == r.client && q.seq == r.seq) {
          EXPECT_NE(q.deadline_cycles, 0u);
          // Expiry is stamped at the detecting tick: never before the
          // budget elapsed (ticks may detect it a few cycles late).
          EXPECT_GE(r.completion_cycle - r.submit_cycle, q.deadline_cycles);
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
    }
  }
}

TEST(ServeDifferential, ConcurrentSubmissionMatchesSequential) {
  for (std::uint64_t seed : {3u, 11u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = random_config(seed * 104729);
    const ServeReport sequential = run_with_workers(cfg, 1);

    ServerOptions opts = cfg.options;
    opts.workers = 8;
    Server server(*cfg.mapping, opts);
    // Four submitter threads interleave arbitrarily; the canonical order
    // makes the outcome a function of the submitted set alone.
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t i = t; i < cfg.requests.size(); i += 4) {
          server.submit(cfg.requests[i]);
        }
      });
    }
    for (auto& th : submitters) th.join();
    expect_same_report(server.run(), sequential);
  }
}

}  // namespace
}  // namespace pmtree::serve
