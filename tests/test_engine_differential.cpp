// Differential tests: the three cost models — per-access rounds
// (MemorySystem / cost.hpp), batch makespan (BatchScheduler) and the
// cycle trajectory (CycleEngine) — must agree on their shared invariants
// for randomized (mapping, workload) pairs across every template family:
//
//   * all-at-once arrivals: engine completion cycle == batch makespan,
//     per-module served totals == batch queue totals;
//   * serialized arrivals: each access's latency == rounds(), and the
//     completion cycle == MemorySystem::total_rounds();
//   * open-loop schedules are sandwiched between the two extremes.
#include "pmtree/engine/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/memory_system.hpp"
#include "pmtree/pms/scheduler.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineResult;

/// A random mapping drawn from the repertoire the benches compare.
std::unique_ptr<TreeMapping> random_mapping(const CompleteBinaryTree& tree,
                                            Rng& rng) {
  switch (rng.below(5)) {
    case 0: {
      const std::uint32_t M = 7 + static_cast<std::uint32_t>(rng.below(3)) * 8;
      return std::make_unique<ColorMapping>(
          make_optimal_color_mapping(tree, M));
    }
    case 1:
      return std::make_unique<ModuloMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    case 2:
      return std::make_unique<LevelShiftMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    case 3:
      return std::make_unique<RandomMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)), rng());
    default:
      return std::make_unique<LevelModMapping>(
          tree, 2 + static_cast<std::uint32_t>(rng.below(8)));
  }
}

/// A random workload of the requested template family.
Workload random_workload(const CompleteBinaryTree& tree, int family, Rng& rng) {
  const std::size_t count = 5 + rng.below(20);
  const std::uint64_t seed = rng();
  switch (family) {
    case 0: {  // S: valid subtree sizes 2^t - 1
      const std::uint64_t K = pow2(1 + static_cast<std::uint32_t>(rng.below(4))) - 1;
      return Workload::subtrees(tree, K, count, seed);
    }
    case 1: {  // P
      const std::uint64_t K = 1 + rng.below(tree.levels());
      return Workload::paths(tree, K, count, seed);
    }
    case 2: {  // L
      const std::uint64_t K = 1 + rng.below(16);
      return Workload::level_runs(tree, K, count, seed);
    }
    default: {  // composite C(D, c)
      const std::uint64_t c = 2 + rng.below(3);
      const std::uint64_t D = c * (3 + rng.below(10));
      return Workload::composites(tree, D, c, count, seed);
    }
  }
}

/// One randomized pair, all invariants.
void check_pair(const TreeMapping& mapping, const Workload& workload) {
  SCOPED_TRACE("mapping=" + mapping.name() +
               " accesses=" + std::to_string(workload.size()));
  const CycleEngine eng(mapping);

  // All-at-once == batch makespan, and the per-module service totals are
  // exactly the batch's queue totals.
  const EngineResult batch = eng.run(workload, ArrivalSchedule::all_at_once());
  const BatchResult closed_form = BatchScheduler(mapping).schedule(workload);
  ASSERT_EQ(batch.completion_cycle, closed_form.makespan);
  ASSERT_EQ(batch.requests, closed_form.requests);
  ASSERT_EQ(batch.served.size(), closed_form.queue.size());
  for (std::size_t m = 0; m < batch.served.size(); ++m) {
    ASSERT_EQ(batch.served[m], closed_form.queue[m]);
  }
  // All requests are queued at cycle 0, so the high-water mark of each
  // module is its total queue.
  for (std::size_t m = 0; m < batch.served.size(); ++m) {
    ASSERT_EQ(batch.queue_high_water[m], closed_form.queue[m]);
  }

  // Serialized == per-access rounds() == MemorySystem accounting.
  const EngineResult serial = eng.run(workload, ArrivalSchedule::serialized());
  MemorySystem pms(mapping);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const std::uint64_t expect = rounds(mapping, workload[i]);
    ASSERT_EQ(serial.records[i].latency(), expect) << "access " << i;
    const AccessResult res = pms.access(workload[i]);
    ASSERT_EQ(expect, res.rounds);
    total += res.rounds;
  }
  ASSERT_EQ(serial.completion_cycle, total);
  ASSERT_EQ(serial.completion_cycle, pms.total_rounds());

  // Overlap only helps: the batch drains no later than the serialized
  // engine, and any open-loop schedule lands in between.
  ASSERT_LE(batch.completion_cycle, serial.completion_cycle);
  const EngineResult paced = eng.run(workload, ArrivalSchedule::fixed_rate(2));
  ASSERT_GE(paced.completion_cycle, batch.completion_cycle);
  const EngineResult burst = eng.run(workload, ArrivalSchedule::bursty(4, 8));
  ASSERT_GE(burst.completion_cycle, batch.completion_cycle);
}

class EngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(EngineDifferential, AgreesWithClosedFormsOn100RandomPairs) {
  const int family = GetParam();
  Rng rng(0xE16D1FFu + static_cast<std::uint64_t>(family));
  for (int trial = 0; trial < 100; ++trial) {
    const CompleteBinaryTree tree(
        6 + static_cast<std::uint32_t>(rng.below(7)));
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, family, rng);
    check_pair(*mapping, workload);
  }
}

std::string family_name(const ::testing::TestParamInfo<int>& param_info) {
  switch (param_info.param) {
    case 0: return "S";
    case 1: return "P";
    case 2: return "L";
    default: return "Composite";
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EngineDifferential,
                         ::testing::Values(0, 1, 2, 3), family_name);

TEST(EngineDifferential, EmptyWorkload) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 5);
  const CycleEngine eng(map);
  const EngineResult r = eng.run(Workload{}, ArrivalSchedule::all_at_once());
  EXPECT_EQ(r.completion_cycle, 0u);
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_EQ(r.busy_cycles, 0u);
}

TEST(EngineDifferential, EmptyAccessesCompleteInstantly) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 5);
  const CycleEngine eng(map);
  const Workload workload(std::vector<Workload::Access>{
      {}, {node_at(0), node_at(5)}, {}});
  for (const auto& schedule :
       {ArrivalSchedule::all_at_once(), ArrivalSchedule::serialized(),
        ArrivalSchedule::fixed_rate(3)}) {
    const EngineResult r = eng.run(workload, schedule);
    ASSERT_EQ(r.records[0].latency(), 0u) << schedule.name();
    ASSERT_EQ(r.records[2].latency(), 0u) << schedule.name();
    ASSERT_EQ(r.records[1].latency(), rounds(map, workload[1]));
  }
}

TEST(EngineDifferential, FixedRateSlowerThanServiceIsConflictFreePerAccess) {
  // If arrivals are spaced further apart than any access's service time,
  // no access ever waits behind another: latency == rounds for every one.
  const CompleteBinaryTree tree(10);
  const ColorMapping map = make_optimal_color_mapping(tree, 15);
  const Workload workload = Workload::paths(tree, 8, 40, 11);
  std::uint64_t worst = 0;
  for (const auto& access : workload.accesses()) {
    worst = std::max(worst, rounds(map, access));
  }
  const CycleEngine eng(map);
  const EngineResult r =
      eng.run(workload, ArrivalSchedule::fixed_rate(worst));
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ASSERT_EQ(r.records[i].latency(), rounds(map, workload[i]));
  }
}

TEST(EngineDifferential, MetricsRegistryReceivesTrajectory) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  const Workload workload = Workload::mixed(tree, 7, 60, 3);
  engine::MetricsRegistry registry;
  const CycleEngine eng(map, &registry, "run1");
  const EngineResult r = eng.run(workload, ArrivalSchedule::all_at_once());
  ASSERT_NE(registry.find_counter("run1.requests"), nullptr);
  EXPECT_EQ(registry.find_counter("run1.requests")->value(), r.requests);
  EXPECT_EQ(registry.find_counter("run1.cycles")->value(), r.completion_cycle);
  ASSERT_NE(registry.find_histogram("run1.latency"), nullptr);
  EXPECT_EQ(registry.find_histogram("run1.latency")->count(), r.accesses);
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          registry.find_gauge("run1.queue_high_water")->high_water()),
      r.max_queue_depth());
}

}  // namespace
}  // namespace pmtree
