#include "pmtree/analysis/profile.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(LevelColorHistogram, SumsToLevelWidth) {
  const CompleteBinaryTree tree(9);
  const ColorMapping map(tree, 5, 2);
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    const auto histogram = level_color_histogram(map, j);
    const auto total = std::accumulate(histogram.begin(), histogram.end(),
                                       std::uint64_t{0});
    EXPECT_EQ(total, tree.level_width(j));
  }
}

TEST(LevelColorHistogram, ModuloSpreadsEvenlyOnWideLevels) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 8);
  const auto histogram = level_color_histogram(map, 9);  // 512 nodes
  for (const auto count : histogram) EXPECT_EQ(count, 64u);
}

TEST(Profiles, OverallMatchesFamilyEvaluation) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  EXPECT_EQ(subtree_profile(map, 7).overall,
            evaluate_subtrees(map, 7).max_conflicts);
  EXPECT_EQ(level_run_profile(map, 7).overall,
            evaluate_level_runs(map, 7).max_conflicts);
  EXPECT_EQ(path_profile(map, 7).overall,
            evaluate_paths(map, 7).max_conflicts);
}

TEST(Profiles, ColorIsConflictFreeAtEveryLevel) {
  const CompleteBinaryTree tree(11);
  const ColorMapping map(tree, 5, 2);
  const auto sp = subtree_profile(map, 3);
  const auto pp = path_profile(map, 5);
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    EXPECT_EQ(sp.worst_by_level[j], 0u) << "level " << j;
    EXPECT_EQ(pp.worst_by_level[j], 0u) << "level " << j;
  }
}

TEST(Profiles, LevelsWithoutInstancesAreZero) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 3);
  // Paths of 5 nodes cannot start above level 4.
  const auto pp = path_profile(map, 5);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(pp.worst_by_level[j], 0u);
  }
  // Subtrees of 7 nodes cannot root below level 5.
  const auto sp = subtree_profile(map, 7);
  for (std::uint32_t j = 6; j < tree.levels(); ++j) {
    EXPECT_EQ(sp.worst_by_level[j], 0u);
  }
}

TEST(ColorReport, CountsAndLevelSpans) {
  const CompleteBinaryTree tree(9);
  const BasicColorMapping map(tree, 9, 2);  // single block
  const auto report = color_report(map);
  ASSERT_EQ(report.size(), map.num_modules());
  std::uint64_t total = 0;
  for (const auto& usage : report) {
    EXPECT_TRUE(usage.used);
    EXPECT_LE(usage.first_level, usage.last_level);
    total += usage.nodes;
  }
  EXPECT_EQ(total, tree.size());
  // Module 0 holds only the root under BASIC-COLOR-style coloring of the
  // root block: its color is never inherited (the root has no sibling).
  EXPECT_EQ(report[0].nodes, 1u);
  EXPECT_EQ(report[0].first_level, 0u);
}

}  // namespace
}  // namespace pmtree
