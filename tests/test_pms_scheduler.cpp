#include "pmtree/pms/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/memory_system.hpp"

namespace pmtree {
namespace {

TEST(BatchScheduler, MakespanIsBusiestModuleTotal) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 3);
  const BatchScheduler sched(map);
  // Two accesses: ids {0,3} -> module 0 twice; {1} -> module 1 once.
  const std::vector<Workload::Access> batch{
      {node_at(0), node_at(3)}, {node_at(1)}};
  const auto result = sched.schedule(batch);
  EXPECT_EQ(result.accesses, 2u);
  EXPECT_EQ(result.requests, 3u);
  EXPECT_EQ(result.makespan, 2u);
  EXPECT_EQ(result.ideal, 1u);
  EXPECT_EQ(result.queue[0], 2u);
  EXPECT_EQ(result.queue[1], 1u);
  EXPECT_EQ(result.queue[2], 0u);
}

TEST(BatchScheduler, EmptyBatch) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 3);
  const auto result = BatchScheduler(map).schedule(
      std::span<const Workload::Access>{});
  EXPECT_EQ(result.makespan, 0u);
  EXPECT_DOUBLE_EQ(result.skew(), 1.0);
}

TEST(BatchScheduler, MakespanBoundedBySequentialRounds) {
  // Overlapping accesses can only help: the batch makespan never exceeds
  // the sum of per-access rounds MemorySystem charges.
  const CompleteBinaryTree tree(12);
  const ColorMapping map(tree, 6, 3);
  const auto workload = Workload::mixed(tree, 10, 100, 77);
  const auto batch = BatchScheduler(map).schedule(workload);

  MemorySystem sequential(map);
  for (const auto& access : workload.accesses()) sequential.access(access);
  EXPECT_LE(batch.makespan, sequential.total_rounds());
  EXPECT_GE(batch.makespan, batch.ideal);
}

TEST(BatchScheduler, QueueSumsToRequests) {
  const CompleteBinaryTree tree(12);
  const ModuloMapping map(tree, 15);
  const auto workload = Workload::subtrees(tree, 7, 50, 5);
  const auto batch = BatchScheduler(map).schedule(workload);
  const auto total = std::accumulate(batch.queue.begin(), batch.queue.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, batch.requests);
}

TEST(BatchScheduler, TotalMakespanInterpolatesBatchSizes) {
  // batch_size = 1 degenerates to sequential rounds; batch_size = all
  // is the single-batch makespan; sizes in between lie between the two.
  const CompleteBinaryTree tree(12);
  const ColorMapping map(tree, 6, 3);
  const auto workload = Workload::paths(tree, 6, 64, 123);
  const BatchScheduler sched(map);
  const std::uint64_t seq = sched.total_makespan(workload, 1);
  const std::uint64_t mid = sched.total_makespan(workload, 8);
  const std::uint64_t all = sched.total_makespan(workload, workload.size());
  EXPECT_GE(seq, mid);
  EXPECT_GE(mid, all);
  // CF paths of 6 nodes under 10 modules: one round each sequentially.
  EXPECT_EQ(seq, workload.size());
}

TEST(BatchScheduler, ConflictFreeBatchesStillQueueAcrossAccesses) {
  // Each path is individually conflict-free, but a batch of many paths
  // piles onto the root-path modules: the makespan reflects that.
  const CompleteBinaryTree tree(12);
  const ColorMapping map(tree, 6, 3);
  const auto workload = Workload::paths(tree, 6, 200, 9);
  const auto batch = BatchScheduler(map).schedule(workload);
  EXPECT_GT(batch.makespan, 1u);
  EXPECT_GE(batch.skew(), 1.0);
}

TEST(BatchScheduler, ZeroBatchSizeTreatedAsOne) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 7);
  const auto workload = Workload::paths(tree, 4, 10, 3);
  const BatchScheduler sched(map);
  EXPECT_EQ(sched.total_makespan(workload, 0), sched.total_makespan(workload, 1));
}

}  // namespace
}  // namespace pmtree
