#include "pmtree/binomial/binomial_tree.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pmtree {
namespace {

TEST(BinomialTree, ShapeAndRanks) {
  const BinomialTree tree(4);  // 16 nodes
  EXPECT_EQ(tree.size(), 16u);
  EXPECT_EQ(tree.rank(0), 4u);   // the root carries the full order
  EXPECT_EQ(tree.rank(1), 0u);
  EXPECT_EQ(tree.rank(2), 1u);
  EXPECT_EQ(tree.rank(8), 3u);
  EXPECT_EQ(tree.rank(12), 2u);  // 0b1100
}

TEST(BinomialTree, ParentClearsLowestBit) {
  EXPECT_EQ(BinomialTree::parent(1), 0u);
  EXPECT_EQ(BinomialTree::parent(6), 4u);   // 0b110 -> 0b100
  EXPECT_EQ(BinomialTree::parent(12), 8u);  // 0b1100 -> 0b1000
  EXPECT_EQ(BinomialTree::parent(7), 6u);
}

TEST(BinomialTree, DepthIsPopcount) {
  EXPECT_EQ(BinomialTree::depth(0), 0u);
  EXPECT_EQ(BinomialTree::depth(7), 3u);
  EXPECT_EQ(BinomialTree::depth(8), 1u);
}

TEST(BinomialTree, ParentStructureIsATree) {
  // Every non-root node reaches 0 in exactly depth(v) steps, and each
  // step reduces depth by one — the defining property of the labeling.
  const BinomialTree tree(6);
  for (std::uint64_t v = 1; v < tree.size(); ++v) {
    std::uint64_t cur = v;
    std::uint32_t steps = 0;
    while (cur != 0) {
      const std::uint64_t p = BinomialTree::parent(cur);
      EXPECT_EQ(BinomialTree::depth(p), BinomialTree::depth(cur) - 1);
      cur = p;
      ++steps;
    }
    EXPECT_EQ(steps, BinomialTree::depth(v));
  }
}

TEST(BinomialTree, SubtreeIsContiguousRangeAndClosedUnderParent) {
  const BinomialTree tree(6);
  for (std::uint64_t v = 0; v < tree.size(); ++v) {
    const std::uint32_t k = tree.rank(v);
    const auto nodes = tree.subtree_nodes(v, k);
    ASSERT_EQ(nodes.size(), std::uint64_t{1} << k);
    // Every non-root member's parent is also a member: it is a subtree.
    const std::set<std::uint64_t> members(nodes.begin(), nodes.end());
    for (const std::uint64_t w : nodes) {
      if (w == v) continue;
      EXPECT_TRUE(members.count(BinomialTree::parent(w)) != 0)
          << "v=" << v << " w=" << w;
    }
  }
}

TEST(BinomialTree, RootPathBottomUp) {
  const auto path = BinomialTree::root_path(13);  // 0b1101
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 13u);
  EXPECT_EQ(path[1], 12u);
  EXPECT_EQ(path[2], 8u);
  EXPECT_EQ(path[3], 0u);
}

TEST(BinomialTree, SubtreeCountMatchesStructure) {
  // B_n contains exactly 2^{n-k-1} rank-k nodes for k < n, plus the root.
  const BinomialTree tree(6);
  for (std::uint32_t k = 0; k < 6; ++k) {
    std::uint64_t count = 0;
    for_each_binomial_subtree(tree, k, [&](std::uint64_t) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, std::uint64_t{1} << (6 - k - 1)) << "k=" << k;
  }
  std::uint64_t full = 0;
  for_each_binomial_subtree(tree, 6, [&](std::uint64_t root) {
    EXPECT_EQ(root, 0u);
    ++full;
    return true;
  });
  EXPECT_EQ(full, 1u);
}

TEST(BinomialMappings, SubtreeMappingIsCfUpToItsOrder) {
  const BinomialTree tree(8);
  const BinomialSubtreeMapping map(tree, 4);  // 16 modules
  for (std::uint32_t k = 0; k <= 4; ++k) {
    EXPECT_EQ(evaluate_binomial_subtrees(map, k), 0u) << "k=" << k;
  }
  // Order-5 subtrees have 32 nodes on 16 modules: exactly 1 conflict
  // (consecutive labels wrap the residue ring exactly twice).
  EXPECT_EQ(evaluate_binomial_subtrees(map, 5), 1u);
}

TEST(BinomialMappings, SubtreeMappingModuleCountIsMinimal) {
  // An order-k instance has 2^k nodes: no mapping with fewer than 2^k
  // modules can be CF (pigeonhole), and BinomialSubtreeMapping uses
  // exactly 2^k.
  const BinomialTree tree(7);
  const BinomialSubtreeMapping map(tree, 3);
  EXPECT_EQ(map.num_modules(), 8u);
  EXPECT_EQ(evaluate_binomial_subtrees(map, 3), 0u);
}

TEST(BinomialMappings, PathMappingIsCfOnShortPaths) {
  const BinomialTree tree(8);
  const BinomialPathMapping map(tree, 5);
  for (std::uint64_t len = 1; len <= 5; ++len) {
    EXPECT_EQ(evaluate_binomial_paths(map, len), 0u) << "len=" << len;
  }
  EXPECT_EQ(evaluate_binomial_paths(map, 6), 1u);
}

TEST(BinomialMappings, SpecialistsFailTheOtherFamily) {
  const BinomialTree tree(8);
  const BinomialSubtreeMapping subtree_map(tree, 4);
  const BinomialPathMapping path_map(tree, 16);
  // Paths under the subtree specialist conflict (e.g. 0b11 and 0b10 differ
  // in the low bits but 0b100 -> 0b000 collide mod 16 ... exhaustively:)
  EXPECT_GT(evaluate_binomial_paths(subtree_map, 5), 0u);
  // Subtrees under the path specialist conflict: an order-k subtree holds
  // many labels of equal popcount.
  EXPECT_GT(evaluate_binomial_subtrees(path_map, 4), 0u);
}

TEST(BinomialMappings, ConflictCounting) {
  const BinomialTree tree(4);
  const BinomialPathMapping map(tree, 2);
  // Labels 0 (popcount 0) and 3 (popcount 2) collide mod 2.
  const std::vector<std::uint64_t> nodes{0, 3, 1};
  EXPECT_EQ(binomial_conflicts(map, nodes), 1u);
  EXPECT_EQ(binomial_conflicts(map, {}), 0u);
}

}  // namespace
}  // namespace pmtree
