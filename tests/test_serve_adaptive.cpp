// Adaptive mapping selection (DESIGN.md §17): the AdaptiveSelector's
// epoch accounting, convergence to the lower-conflict candidate on
// workloads where COLOR and LABEL-TREE rank differently (the paper's R10
// trade-off turned into a runtime measurement), deterministic replay, and
// the serve-layer contract — bit-identical responses at 1/2/8 workers and
// under the staged pipeline, byte-identical to the static server when the
// policy is disabled, and per-tenant scope in the Forest.
#include "pmtree/serve/adaptive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

// Bottom-level nodes that all share one color under `by` — the worst
// batch shape `by` can face, and (for mappings that disagree with it)
// typically well spread elsewhere.
std::vector<Node> monochrome_under(const TreeMapping& by) {
  const std::uint32_t bottom = by.tree().levels() - 1;
  const Color target = by.color_of(v(0, bottom));
  std::vector<Node> out;
  for (std::uint64_t i = 0; i < pow2(bottom); ++i) {
    if (by.color_of(v(i, bottom)) == target) out.push_back(v(i, bottom));
  }
  return out;
}

std::uint64_t peak(const TreeMapping& m, std::span<const Node> nodes) {
  std::vector<std::uint32_t> counts(m.num_modules(), 0);
  std::uint32_t mx = 0;
  for (const Node n : nodes) {
    mx = std::max(mx, ++counts[m.color_of(n)]);
  }
  return mx;
}

// Deterministic batch stream drawn from a hot node set.
std::vector<std::vector<Node>> batches_from(const std::vector<Node>& hot,
                                            std::size_t batches,
                                            std::uint64_t seed) {
  std::vector<std::vector<Node>> out(batches);
  Rng rng(seed);
  for (std::size_t b = 0; b < batches; ++b) {
    for (int k = 0; k < 6; ++k) {
      out[b].push_back(hot[rng.below(hot.size())]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// AdaptiveSelector.

TEST(AdaptiveSelector, ServesBaseUntilTheFirstEpochDecision) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  AdaptivePolicy policy;
  policy.epoch_batches = 4;
  policy.candidates = {&color, &label};

  AdaptiveSelector selector(label, policy);
  EXPECT_EQ(&selector.current(), static_cast<const TreeMapping*>(&label));
  EXPECT_EQ(selector.active_candidate(), nullptr);

  const auto stream = batches_from(monochrome_under(label), 3, 0x5E1);
  for (std::size_t b = 0; b < stream.size(); ++b) {
    selector.observe(stream[b], b);
    EXPECT_EQ(&selector.current(), static_cast<const TreeMapping*>(&label))
        << "decided before the epoch budget was reached";
  }
  EXPECT_EQ(selector.epochs_planned(), 0u);
  EXPECT_EQ(selector.batches_observed(), 3u);
}

TEST(AdaptiveSelector, ConvergesToWhicheverCandidateTheWorkloadFavors) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  AdaptivePolicy policy;
  policy.epoch_batches = 4;
  policy.candidates = {&color, &label};

  // Workload 1: monochrome under LABEL-TREE — COLOR must win. Workload 2:
  // monochrome under COLOR — LABEL-TREE must win. The same two candidates
  // rank differently across them (R10), and each test first PROVES the
  // rank difference on its own batches before trusting the selector.
  struct Case {
    const TreeMapping* base;
    const TreeMapping* loser;
    const TreeMapping* winner;
    std::uint64_t seed;
  };
  for (const Case c : {Case{&label, &label, &color, 0xA1},
                       Case{&color, &color, &label, 0xA2}}) {
    SCOPED_TRACE("base=" + c.base->name());
    const auto stream = batches_from(monochrome_under(*c.loser), 12, c.seed);
    for (const auto& batch : stream) {
      ASSERT_LT(peak(*c.winner, batch), peak(*c.loser, batch));
    }
    AdaptiveSelector selector(*c.base, policy);
    for (std::size_t b = 0; b < stream.size(); ++b) {
      selector.observe(stream[b], b);
    }
    EXPECT_EQ(selector.epochs_planned(), 3u);
    ASSERT_EQ(selector.active_candidate(), c.winner);
    EXPECT_EQ(&static_cast<const AdaptiveMapping&>(selector.current())
                   .chosen_mapping(),
              c.winner);
    EXPECT_EQ(selector.current().name(), c.winner->name() + "+adaptive");
  }
}

TEST(AdaptiveSelector, TiesKeepTheIncumbent) {
  const CompleteBinaryTree tree(8);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  AdaptivePolicy policy;
  policy.epoch_batches = 2;
  policy.candidates = {&color, &label};

  // Single-node batches score peak 1 under every mapping: a dead tie.
  AdaptiveSelector selector(label, policy);
  for (std::uint64_t b = 0; b < 8; ++b) {
    selector.observe(std::vector<Node>{v(b, 5)}, b);
  }
  EXPECT_EQ(selector.epochs_planned(), 4u);
  EXPECT_EQ(selector.active_candidate(), nullptr)
      << "a tie must not oust the incumbent";
  EXPECT_EQ(&selector.current(), static_cast<const TreeMapping*>(&label));
}

TEST(AdaptiveSelector, ReplaysDeterministically) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  AdaptivePolicy policy;
  policy.epoch_batches = 3;
  policy.candidates = {&color, &label};

  const auto stream = batches_from(monochrome_under(label), 14, 0x4EB1A7);
  AdaptiveSelector a(label, policy);
  AdaptiveSelector b(label, policy);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    a.observe(stream[i], i * 7);
    b.observe(stream[i], i * 7);
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t e = 0; e < a.events().size(); ++e) {
    ASSERT_EQ(a.events()[e].to_json().dump(), b.events()[e].to_json().dump())
        << "epoch " << e;
  }
  EXPECT_EQ(a.stats().dump(), b.stats().dump());
}

// ---------------------------------------------------------------------------
// Server end to end.

// 80% of requests hit the monochrome-under-`hot_by` set (so the server's
// base mapping is the loser when it equals `hot_by`), the rest scatter.
std::vector<Request> adaptive_requests(const TreeMapping& hot_by,
                                       std::size_t count,
                                       std::uint64_t seed) {
  const std::vector<Node> hot = monochrome_under(hot_by);
  const std::uint32_t levels = hot_by.tree().levels();
  Rng rng(seed);
  std::vector<Request> requests;
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(8, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(3);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(8));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    if (rng.below(10) < 8) {
      for (int k = 0; k < 3; ++k) {
        r.nodes.push_back(hot[rng.below(hot.size())]);
      }
    } else {
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t level =
            static_cast<std::uint32_t>(rng.below(levels));
        r.nodes.push_back(v(rng.below(pow2(level)), level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

ServerOptions adaptive_options(const std::vector<const TreeMapping*>& cands) {
  ServerOptions opts;
  opts.tick_cycles = 2;
  opts.replicas = 3;
  opts.workers = 1;
  opts.admission.queue_bound = 48;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 24;
  opts.batch.max_wait_cycles = 4;
  opts.retry.max_retries = 2;
  opts.retry.attempt_timeout_cycles = 48;
  opts.retry.backoff_base_cycles = 8;
  opts.retry.backoff_cap_cycles = 64;
  opts.adaptive.epoch_batches = 4;
  opts.adaptive.candidates = cands;
  return opts;
}

ServeReport run_once(const TreeMapping& mapping, const ServerOptions& opts,
                     const std::vector<Request>& requests) {
  Server server(mapping, opts);
  for (const Request& r : requests) server.submit(r);
  return server.run();
}

void expect_same_metrics_modulo_pipeline(const Json& got, const Json& want) {
  for (const auto& [key, value] : want.members()) {
    if (key == "pipeline") continue;
    const Json* other = got.find(key);
    ASSERT_NE(other, nullptr) << "missing metrics section " << key;
    ASSERT_EQ(other->dump(), value.dump()) << "metrics section " << key;
  }
}

TEST(ServeAdaptive, ServerBitIdenticalAcrossWorkerCountsAndSwitches) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  const auto requests = adaptive_requests(label, 240, 0xADA);
  const ServerOptions base = adaptive_options({&color, &label});

  const ServeReport want = run_once(label, base, requests);
  const Json* adaptive = want.metrics.find("adaptive");
  ASSERT_NE(adaptive, nullptr);
  EXPECT_GE(adaptive->find("epochs_planned")->as_uint(), 1u);
  // The hot set collides on LABEL-TREE, so the selector must have moved
  // off the base at least once.
  EXPECT_GE(adaptive->find("switches")->as_uint(), 1u);
  EXPECT_EQ(adaptive->find("active")->as_string(), color.name());

  for (const unsigned workers : {2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServerOptions opts = base;
    opts.workers = workers;
    const ServeReport got = run_once(label, opts, requests);
    ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
  }
}

TEST(ServeAdaptive, StagedPipelineMatchesOracle) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  const auto requests = adaptive_requests(label, 240, 0xB1BE);
  const ServerOptions base = adaptive_options({&color, &label});
  const ServeReport oracle = run_once(label, base, requests);

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("pipeline_workers=" + std::to_string(workers));
    ServerOptions opts = base;
    opts.pipeline.workers = workers;
    const ServeReport piped = run_once(label, opts, requests);
    ASSERT_EQ(piped.responses.size(), oracle.responses.size());
    for (std::size_t i = 0; i < piped.responses.size(); ++i) {
      ASSERT_EQ(piped.responses[i].status, oracle.responses[i].status) << i;
      ASSERT_EQ(piped.responses[i].completion_cycle,
                oracle.responses[i].completion_cycle)
          << i;
      ASSERT_EQ(piped.responses[i].batch, oracle.responses[i].batch) << i;
      ASSERT_EQ(piped.responses[i].retries, oracle.responses[i].retries) << i;
    }
    ASSERT_EQ(piped.batches.size(), oracle.batches.size());
    ASSERT_EQ(piped.final_cycle, oracle.final_cycle);
    expect_same_metrics_modulo_pipeline(piped.metrics, oracle.metrics);
    // The pipelined selector saw the same cut stream: same epoch audit.
    ASSERT_EQ(piped.metrics.find("adaptive")->dump(),
              oracle.metrics.find("adaptive")->dump());
  }
}

TEST(ServeAdaptive, DisabledPolicyIsByteIdenticalToStaticServer) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  const auto requests = adaptive_requests(label, 200, 0xD15);

  ServerOptions off = adaptive_options({&color, &label});
  off.adaptive = AdaptivePolicy{};  // epoch_batches 0: disabled
  ASSERT_FALSE(off.adaptive.enabled());
  ServerOptions static_opts = off;

  const ServeReport a = run_once(label, off, requests);
  const ServeReport b = run_once(label, static_opts, requests);
  ASSERT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.metrics.find("adaptive"), nullptr);

  // An empty candidate list disables too, whatever the budget says.
  ServerOptions no_candidates = adaptive_options({});
  ASSERT_FALSE(no_candidates.adaptive.enabled());
  const ServeReport c = run_once(label, no_candidates, requests);
  ASSERT_EQ(c.to_json().dump(), b.to_json().dump());
}

TEST(ServeAdaptive, SingleCandidateListNeverPerturbsResponses) {
  // candidates == {base}: the selector observes and plans epochs but can
  // never switch, so every response matches the static server's.
  const CompleteBinaryTree tree(9);
  const LabelTreeMapping label(tree, 7);
  const auto requests = adaptive_requests(label, 200, 0x51C1);

  ServerOptions adaptive = adaptive_options({&label});
  ServerOptions static_opts = adaptive;
  static_opts.adaptive = AdaptivePolicy{};

  const ServeReport got = run_once(label, adaptive, requests);
  const ServeReport want = run_once(label, static_opts, requests);
  ASSERT_EQ(got.responses.size(), want.responses.size());
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    ASSERT_EQ(got.responses[i].status, want.responses[i].status) << i;
    ASSERT_EQ(got.responses[i].completion_cycle,
              want.responses[i].completion_cycle)
        << i;
    ASSERT_EQ(got.responses[i].batch, want.responses[i].batch) << i;
  }
  const Json* adaptive_section = got.metrics.find("adaptive");
  ASSERT_NE(adaptive_section, nullptr);
  EXPECT_EQ(adaptive_section->find("switches")->as_uint(), 0u);
}

// ---------------------------------------------------------------------------
// Forest: per-tenant scope.

TEST(ServeAdaptive, ForestAdaptsPerTenantWithWorkerInvariance) {
  const CompleteBinaryTree hot_tree(9);
  const ColorMapping hot_color(make_optimal_color_mapping(hot_tree, 7));
  const LabelTreeMapping hot_label(hot_tree, 7);
  const CompleteBinaryTree cold_tree(7);
  const ModuloMapping cold_mapping(cold_tree, 7);

  const auto hot_requests = adaptive_requests(hot_label, 180, 0xF0A);
  const auto cold_requests = adaptive_requests(cold_mapping, 60, 0xF0B);

  auto run_forest = [&](unsigned workers, unsigned pipeline_workers) {
    ForestOptions fopts;
    fopts.tick_cycles = 2;
    fopts.replicas = 4;
    fopts.workers = workers;
    fopts.drr_quantum_nodes = 24;
    fopts.pipeline.workers = pipeline_workers;
    Forest forest(fopts);

    TenantOptions hot;
    hot.rate = 3.0;
    hot.admission.queue_bound = 32;
    hot.batch.max_batch_nodes = 24;
    hot.batch.max_wait_cycles = 4;
    hot.adaptive.epoch_batches = 4;
    hot.adaptive.candidates = {&hot_color, &hot_label};
    forest.add_tenant(hot_label, std::move(hot));

    TenantOptions cold;  // adaptive disabled: the default policy
    cold.admission.queue_bound = 16;
    cold.batch.max_batch_nodes = 16;
    forest.add_tenant(cold_mapping, std::move(cold));

    for (const Request& r : hot_requests) forest.submit(0, r);
    for (const Request& r : cold_requests) forest.submit(1, r);
    return forest.run();
  };

  const ForestReport want = run_forest(1, 0);
  const Json* adaptive = want.tenants[0].metrics.find("adaptive");
  ASSERT_NE(adaptive, nullptr) << "hot tenant's selector never exported";
  EXPECT_GE(adaptive->find("epochs_planned")->as_uint(), 1u);
  EXPECT_EQ(want.tenants[1].metrics.find("adaptive"), nullptr)
      << "adaptation leaked across the tenant boundary";

  for (const unsigned workers : {2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const ForestReport got = run_forest(workers, 0);
    ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
  }
  for (const unsigned pipeline_workers : {1u, 2u}) {
    SCOPED_TRACE("pipeline_workers=" + std::to_string(pipeline_workers));
    const ForestReport got = run_forest(1, pipeline_workers);
    ASSERT_EQ(got.tenants.size(), want.tenants.size());
    for (std::size_t i = 0; i < got.tenants.size(); ++i) {
      const TenantReport& gt = got.tenants[i];
      const TenantReport& wt = want.tenants[i];
      ASSERT_EQ(gt.responses.size(), wt.responses.size());
      for (std::size_t k = 0; k < gt.responses.size(); ++k) {
        ASSERT_EQ(gt.responses[k].status, wt.responses[k].status);
        ASSERT_EQ(gt.responses[k].completion_cycle,
                  wt.responses[k].completion_cycle);
        ASSERT_EQ(gt.responses[k].batch, wt.responses[k].batch);
      }
      expect_same_metrics_modulo_pipeline(gt.metrics, wt.metrics);
    }
  }
}

}  // namespace
}  // namespace pmtree::serve
