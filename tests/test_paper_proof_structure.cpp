// Invariants internal to the paper's proofs, tested directly. These are
// stronger than the headline theorems: if one of them broke while the
// theorem still held by accident, the implementation would have drifted
// from the paper's construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(ProofStructure, Theorem4PathHalvesAreRainbow) {
  // Theorem 4's proof splits P(M) into two segments of <= M/2 and argues
  // each is conflict-free because M/2 < N = 2^{m-1}+m-1. Check the
  // stronger per-segment claim: every ascending path of ceil(M/2) nodes
  // is rainbow under the M-optimal COLOR.
  const std::uint32_t M = 15;  // m = 4, N = 11
  const CompleteBinaryTree tree(17);
  const EagerColorMapping map(make_optimal_color_mapping(tree, M));
  EXPECT_EQ(evaluate_paths(map, (M + 1) / 2).max_conflicts, 0u);
  // In fact every path up to N is rainbow (Theorem 3).
  EXPECT_EQ(evaluate_paths(map, 11).max_conflicts, 0u);
}

TEST(ProofStructure, Lemma3SegmentDecomposition) {
  // Lemma 3 splits P(D) into ceil(D/M) segments of M, each costing <= 1
  // (Theorem 4). Verify the per-segment bound directly on every length-M
  // sub-path of sampled long paths.
  const std::uint32_t M = 7;  // N = 6
  const CompleteBinaryTree tree(18);
  const EagerColorMapping map(make_optimal_color_mapping(tree, M));
  EXPECT_LE(evaluate_paths(map, M).max_conflicts, 1u);
}

TEST(ProofStructure, Lemma1TopBottomPartition) {
  // Lemma 1's induction: for each anchor, the leaves of its size-K
  // subtree (the bottom part T_b) use colors disjoint from the TP's upper
  // part T_u. Check on a single block: for every anchor with a full
  // subtree, leaf colors do not intersect the root-path + internal
  // subtree colors.
  const std::uint32_t N = 6, k = 3;
  const std::uint64_t K = tree_size(k);
  const CompleteBinaryTree tree(N);
  const BasicColorMapping map(tree, N, k);
  for (std::uint32_t j = 0; j + k <= tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      const Node anchor = v(i, j);
      std::set<Color> upper;
      // Root path through the anchor plus the internal (non-leaf) nodes
      // of the anchor's subtree.
      Node cur = anchor;
      while (true) {
        upper.insert(map.color_of(cur));
        if (cur.level == 0) break;
        cur = parent(cur);
      }
      const SubtreeInstance sub{anchor, K};
      for (const Node& n : sub.nodes()) {
        if (n.level < anchor.level + k - 1) upper.insert(map.color_of(n));
      }
      // Leaves of the subtree must avoid all of those colors.
      for (std::uint64_t off = 0; off < pow2(k - 1); ++off) {
        const Node leaf = v((anchor.index << (k - 1)) + off, j + k - 1);
        EXPECT_EQ(upper.count(map.color_of(leaf)), 0u)
            << "anchor " << to_string(anchor) << " leaf " << to_string(leaf);
      }
    }
  }
}

TEST(ProofStructure, Theorem3GammaSplit) {
  // Theorem 3's proof: a path crossing from parent block B1 into child
  // block B2 uses, inside B2's bottom part, only the *first* |P3| Gamma
  // colors, while its B1-part above the overlap carries the *last* |P1|
  // Gamma colors — so Gamma[t] never appears above block-relative level
  // k + t in the child block. Verify: the color Gamma(ib, jb)[t] (taken
  // from the parent path) colors no node of block (ib, jb) at relative
  // level < k + t.
  const std::uint32_t N = 5, k = 2, H = 11;
  const std::uint32_t stride = N - k;
  const CompleteBinaryTree tree(H);
  const ColorMapping map(tree, N, k);
  const auto colors = map.materialize();

  for (std::uint32_t jb = 1; jb * stride + k <= tree.levels(); ++jb) {
    const std::uint32_t root_level = jb * stride;
    for (std::uint64_t ib = 0; ib < std::min<std::uint64_t>(pow2(root_level), 16);
         ++ib) {
      // Gamma list: parent-block root down to this block root's parent.
      for (std::uint32_t t = 0; t < stride; ++t) {
        const Node gnode{(jb - 1) * stride + t, ib >> (stride - t)};
        const Color gamma_t = colors[bfs_id(gnode)];
        // Scan the block's rows above relative level k + t.
        for (std::uint32_t r = k; r < k + t && root_level + r < tree.levels();
             ++r) {
          for (std::uint64_t off = 0; off < pow2(r); ++off) {
            const Node n{root_level + r, (ib << r) + off};
            ASSERT_NE(colors[bfs_id(n)], gamma_t)
                << "Gamma[" << t << "] of block (" << ib << "," << jb
                << ") appeared at relative level " << r;
          }
        }
      }
    }
  }
}

TEST(ProofStructure, MicroLabelCfOnSublTrees) {
  // Section 6.1: MICRO-LABEL is conflict-free on S(2^l - 1) within each
  // block. Check every size-(2^l - 1) subtree wholly inside one block.
  for (const std::uint32_t M : {31u, 63u, 127u}) {
    const CompleteBinaryTree tree(12);
    const LabelTreeMapping map(tree, M);
    const std::uint32_t m = map.m();
    const std::uint32_t l = map.l();
    std::uint64_t checked = 0;
    for_each_subtree(tree, tree_size(l), [&](const SubtreeInstance& s) {
      // Inside one block iff the subtree's levels stay within one
      // generation's [jb*m, jb*m + m) band.
      const std::uint32_t jb = s.root.level / m;
      if (s.root.level + l > (jb + 1) * m) return true;
      ++checked;
      std::vector<Color> cs;
      for (const Node& n : s.nodes()) cs.push_back(map.color_of(n));
      std::sort(cs.begin(), cs.end());
      EXPECT_EQ(std::adjacent_find(cs.begin(), cs.end()), cs.end())
          << "M=" << M << " subtree at " << to_string(s.root);
      return true;
    });
    EXPECT_GT(checked, 0u);
  }
}

TEST(ProofStructure, Lemma2UniqueRepeatIsTheGammaColor) {
  // Lemma 2's proof case analysis: for *sibling* node-blocks (h even —
  // their (k-1)-st ancestors are siblings, so both blocks' inherited
  // colors come from ONE size-K subtree, which Theorem 1 makes rainbow),
  // the only repeated color across the pair is the level's Gamma color,
  // carried by both last nodes. Cousin pairs (h odd) may share more
  // colors, but at positions >= K apart — which is why L(K) still costs
  // at most 1 (the theorem-level tests check that bound directly).
  const std::uint32_t N = 6, k = 3;
  const std::uint64_t K = tree_size(k);
  const CompleteBinaryTree tree(N);
  const BasicColorMapping map(tree, N, k);
  const std::uint64_t bsize = pow2(k - 1);
  for (std::uint32_t j = k; j < tree.levels(); ++j) {
    const Color gamma = static_cast<Color>(K + (j - k));
    for (std::uint64_t h = 0; h + 1 < tree.level_width(j) / bsize; h += 2) {
      std::set<Color> first_block, overlap;
      for (std::uint64_t t = 0; t < bsize; ++t) {
        first_block.insert(map.color_of(v(h * bsize + t, j)));
      }
      for (std::uint64_t t = 0; t < bsize; ++t) {
        const Color c = map.color_of(v((h + 1) * bsize + t, j));
        if (first_block.count(c) != 0) overlap.insert(c);
      }
      ASSERT_EQ(overlap.size(), 1u) << "level " << j << " blocks " << h;
      EXPECT_EQ(*overlap.begin(), gamma);
    }
  }
}

TEST(ProofStructure, LevelWindowsNeverTripleAnyColor) {
  // The statement Lemma 2 actually needs: within ANY window of K
  // consecutive same-level nodes, no color appears three times (cost <= 1
  // means max multiplicity <= 2; several colors may each repeat once —
  // e.g. a cousin-block repeat plus the Gamma pair in one window).
  const std::uint32_t N = 6, k = 3;
  const std::uint64_t K = tree_size(k);
  const CompleteBinaryTree tree(N);
  const BasicColorMapping map(tree, N, k);
  for (std::uint32_t j = k; j < tree.levels(); ++j) {
    if (tree.level_width(j) < K) continue;
    for (std::uint64_t i = 0; i + K <= tree.level_width(j); ++i) {
      std::vector<std::uint32_t> histogram(map.num_modules(), 0);
      for (std::uint64_t t = 0; t < K; ++t) {
        ASSERT_LE(++histogram[map.color_of(v(i + t, j))], 2u)
            << "level " << j << " window at " << i;
      }
    }
  }
}

}  // namespace
}  // namespace pmtree
