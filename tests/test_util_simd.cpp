// SIMD ≡ scalar differential property tests for the serve pipeline's two
// vectorized kernels (util/simd.hpp). Every assertion compares the
// dispatched kernel against the scalar twin via force_scalar_for_testing,
// so the suite is meaningful on any host: with AVX2 it proves the vector
// bodies bit-identical, without it (or under -DPMTREE_DISABLE_SIMD) it
// degenerates to scalar-vs-scalar and still pins the kernel contracts.
#include "pmtree/util/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pmtree/util/rng.hpp"

namespace pmtree::simd {
namespace {

/// RAII guard: the force-scalar override must never leak across tests.
class ScalarGuard {
 public:
  ScalarGuard() { force_scalar_for_testing(true); }
  ~ScalarGuard() { force_scalar_for_testing(false); }
};

std::vector<std::uint32_t> random_indices(Rng& rng, std::size_t n,
                                          std::uint32_t bound) {
  std::vector<std::uint32_t> idx(n);
  for (std::uint32_t& i : idx) {
    i = static_cast<std::uint32_t>(rng.below(bound));
  }
  return idx;
}

TEST(SimdDispatch, ReportsAKnownKernel) {
  const std::string kernel = active_kernel();
  EXPECT_TRUE(kernel == "avx2" || kernel == "scalar") << kernel;
  EXPECT_EQ(available(), kernel == "avx2");
  {
    const ScalarGuard guard;
    EXPECT_STREQ(active_kernel(), "scalar");
    EXPECT_FALSE(available());
  }
  EXPECT_EQ(std::string(active_kernel()), kernel);
}

TEST(SimdGather, MatchesScalarOnRandomizedTables) {
  Rng rng(0x5EED00);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t table_size =
        1 + static_cast<std::uint32_t>(rng.below(5000));
    std::vector<std::uint32_t> table(table_size);
    for (std::uint32_t& v : table) {
      v = static_cast<std::uint32_t>(rng());
    }
    // Cover the remainder loop: sizes straddling the 8-lane width.
    const std::size_t n = rng.below(100);
    const std::vector<std::uint32_t> idx =
        random_indices(rng, n, table_size);

    std::vector<std::uint32_t> dispatched(n, 0xDEADBEEF);
    gather_u32(table.data(), idx.data(), n, dispatched.data());

    std::vector<std::uint32_t> scalar(n, 0xFEEDFACE);
    {
      const ScalarGuard guard;
      gather_u32(table.data(), idx.data(), n, scalar.data());
    }
    ASSERT_EQ(dispatched, scalar) << "trial " << trial << " n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dispatched[i], table[idx[i]]);
    }
  }
}

TEST(SimdGather, ExactLaneMultiplesAndEmpty) {
  std::vector<std::uint32_t> table(64);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<std::uint32_t>(i * i + 7);
  }
  for (const std::size_t n : {std::size_t{0}, std::size_t{8},
                              std::size_t{16}, std::size_t{64}}) {
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<std::uint32_t>((i * 13) % table.size());
    }
    std::vector<std::uint32_t> out(n + 1, 0xAB);  // +1 canary slot
    gather_u32(table.data(), idx.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], table[idx[i]]);
    EXPECT_EQ(out[n], 0xABu) << "gather wrote past n";
  }
}

void expect_histogram_matches(const std::vector<std::uint32_t>& colors,
                              std::uint32_t modules) {
  std::vector<std::uint32_t> dispatched(modules, 1);
  conflict_histogram(colors.data(), colors.size(), dispatched.data(),
                     modules);
  std::vector<std::uint32_t> scalar(modules, 2);
  {
    const ScalarGuard guard;
    conflict_histogram(colors.data(), colors.size(), scalar.data(), modules);
  }
  ASSERT_EQ(dispatched, scalar) << "modules=" << modules
                                << " n=" << colors.size();
  // Ground truth, independently recomputed.
  std::vector<std::uint32_t> truth(modules, 0);
  for (const std::uint32_t c : colors) truth[c] += 1;
  ASSERT_EQ(dispatched, truth);
}

TEST(SimdHistogram, MatchesScalarAcrossModuleWidths) {
  Rng rng(0xC01075);
  // Hit every AVX2 bank configuration (<=16, <=32, <=64) plus the wide
  // fallback (> 64 modules) and awkward off-by-one widths.
  for (const std::uint32_t modules :
       {1u, 2u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u, 200u}) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{1000}}) {
      std::vector<std::uint32_t> colors(n);
      for (std::uint32_t& c : colors) {
        c = static_cast<std::uint32_t>(rng.below(modules));
      }
      expect_histogram_matches(colors, modules);
    }
  }
}

TEST(SimdHistogram, SkewedAndUniformExtremes) {
  // All-one-module input: the u16 one-hot accumulator must not wrap
  // inside a chunk, and chunk folding must sum across chunk boundaries.
  for (const std::size_t n : {std::size_t{59999}, std::size_t{60000},
                              std::size_t{60001}, std::size_t{130000}}) {
    const std::vector<std::uint32_t> colors(n, 3);
    expect_histogram_matches(colors, 16);
  }
  // Round-robin colors: every module equal.
  std::vector<std::uint32_t> rr(4096);
  for (std::size_t i = 0; i < rr.size(); ++i) {
    rr[i] = static_cast<std::uint32_t>(i % 64);
  }
  expect_histogram_matches(rr, 64);
}

TEST(SimdHistogram, OverwritesStaleCounts) {
  // counts is overwritten, never accumulated: poison it first.
  const std::vector<std::uint32_t> colors{0, 0, 2};
  std::vector<std::uint32_t> counts(4, 0xFFFFFFFF);
  conflict_histogram(colors.data(), colors.size(), counts.data(), 4);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{2, 0, 1, 0}));
}

}  // namespace
}  // namespace pmtree::simd
