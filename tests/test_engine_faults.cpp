// Fault-injection tests (DESIGN.md §12): the FaultPlan/FaultTimeline
// vocabulary, and the differential contract that makes degraded serving
// trustworthy — an empty plan is bit-identical to the fault-free run on
// both engines, the event core under any plan is bit-identical to the
// reference loop under the same plan, and the sharded runner's merged
// degraded trajectory never depends on its thread count.
#include "pmtree/fault/plan.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/reference.hpp"
#include "pmtree/engine/sharded.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/combinators.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineOptions;
using engine::EngineResult;
using engine::Histogram;
using engine::ReferenceEngine;
using engine::ShardedEngineRunner;
using engine::ShardedOptions;
using fault::FaultPlan;
using fault::FaultTimeline;

using DepthSampling = EngineOptions::DepthSampling;

// ---------------------------------------------------------------------------
// FaultTimeline semantics.

TEST(FaultTimeline, CompilesFailStopsAndRedirectsRoundRobin) {
  // Dead = {1, 3, 4} of 6 modules, live = {0, 2, 5}: the j-th dead module
  // (ascending) folds onto the j-th live module mod 3.
  FaultPlan plan;
  plan.fail_stop(3, 10).fail_stop(1, 4).fail_stop(4, 7);
  const FaultTimeline tl(plan, 6);

  EXPECT_EQ(tl.fail_cycle(1), 4u);
  EXPECT_EQ(tl.fail_cycle(3), 10u);
  EXPECT_EQ(tl.fail_cycle(4), 7u);
  EXPECT_EQ(tl.fail_cycle(0), FaultTimeline::kNever);

  EXPECT_EQ(tl.dead_modules(), (std::vector<std::uint32_t>{1, 3, 4}));
  EXPECT_EQ(tl.live_modules(), (std::vector<std::uint32_t>{0, 2, 5}));
  EXPECT_EQ(tl.redirect(1), 0u);
  EXPECT_EQ(tl.redirect(3), 2u);
  EXPECT_EQ(tl.redirect(4), 5u);
  EXPECT_EQ(tl.redirect(0), 0u);  // live modules map to themselves

  EXPECT_FALSE(tl.dead_at(1, 3));
  EXPECT_TRUE(tl.dead_at(1, 4));
  EXPECT_FALSE(tl.serves_at(1, 4));
  EXPECT_TRUE(tl.serves_at(0, 4));

  // Fail events come out in (cycle, module) order — the drain order.
  ASSERT_EQ(tl.fail_events().size(), 3u);
  EXPECT_EQ(tl.fail_events()[0].module, 1u);
  EXPECT_EQ(tl.fail_events()[1].module, 4u);
  EXPECT_EQ(tl.fail_events()[2].module, 3u);
}

TEST(FaultTimeline, DuplicateFailStopsKeepEarliestCycle) {
  FaultPlan plan;
  plan.fail_stop(2, 20).fail_stop(2, 5).fail_stop(2, 11);
  const FaultTimeline tl(plan, 4);
  EXPECT_EQ(tl.fail_cycle(2), 5u);
  EXPECT_EQ(tl.dead_modules().size(), 1u);
  EXPECT_EQ(tl.fail_events().size(), 1u);
}

TEST(FaultTimeline, SlowdownGatesServiceOnPeriodBoundaries) {
  FaultPlan plan;
  plan.slow_down(0, 10, 22, 4);
  const FaultTimeline tl(plan, 2);
  ASSERT_TRUE(tl.any_faults());
  for (std::uint64_t t = 0; t < 30; ++t) {
    const bool in_window = t >= 10 && t < 22;
    const bool expect = !in_window || (t - 10) % 4 == 0;
    EXPECT_EQ(tl.serves_at(0, t), expect) << "t=" << t;
    EXPECT_TRUE(tl.serves_at(1, t)) << "t=" << t;  // untouched module
  }
}

TEST(FaultTimeline, IgnoresOutOfRangeAndDegenerateEntries) {
  FaultPlan plan;
  plan.fail_stop(9, 1);         // module beyond the universe
  plan.slow_down(0, 5, 5, 3);   // empty interval
  plan.slow_down(0, 5, 9, 1);   // period 1 is a no-op
  plan.slow_down(7, 5, 9, 3);   // module beyond the universe
  EXPECT_FALSE(plan.empty());   // the *plan* records them...
  const FaultTimeline tl(plan, 4);
  EXPECT_FALSE(tl.any_faults());  // ...the *timeline* applies none
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_EQ(tl.fail_cycle(m), FaultTimeline::kNever);
    EXPECT_TRUE(tl.serves_at(m, 7));
  }
}

TEST(FaultTimeline, SparesOneSurvivorWhenEveryModuleFails) {
  FaultPlan plan;
  plan.fail_stop(0, 8).fail_stop(1, 12).fail_stop(2, 12);
  const FaultTimeline tl(plan, 3);
  // Latest fail cycle wins, ties to the highest id: module 2 survives.
  EXPECT_EQ(tl.live_modules(), (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(tl.fail_cycle(2), FaultTimeline::kNever);
  EXPECT_EQ(tl.redirect(0), 2u);
  EXPECT_EQ(tl.redirect(1), 2u);
}

TEST(FaultPlan, RandomIsDeterministicAndCapsFailures) {
  FaultPlan::RandomOptions opts;
  opts.seed = 42;
  opts.modules = 10;
  opts.fail_fraction = 0.3;
  opts.slowdown_count = 4;
  const FaultPlan a = FaultPlan::random(opts);
  const FaultPlan b = FaultPlan::random(opts);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.fail_stops().size(), 3u);
  EXPECT_EQ(a.slowdowns().size(), 4u);

  // fail_fraction = 1 still leaves a survivor by construction.
  opts.fail_fraction = 1.0;
  const FaultPlan all = FaultPlan::random(opts);
  EXPECT_EQ(all.fail_stops().size(), 9u);
}

// ---------------------------------------------------------------------------
// DegradedMapping mirrors the timeline's routing rule.

TEST(DegradedMapping, MatchesFaultTimelineRedirectTable) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping base(tree, 7);
  const std::vector<Color> dead{2, 5};
  const DegradedMapping degraded(base, dead);

  FaultPlan plan;
  for (const Color d : dead) plan.fail_stop(d, 0);
  const FaultTimeline tl(plan, base.num_modules());

  EXPECT_EQ(degraded.num_modules(), base.num_modules());
  EXPECT_EQ(degraded.live_modules(), 5u);
  EXPECT_EQ(degraded.name(), base.name() + "+degraded");
  for (Color c = 0; c < base.num_modules(); ++c) {
    EXPECT_EQ(degraded.redirect_table()[c], tl.redirect(c)) << "color " << c;
  }

  // Scalar and batch kernels agree, and dead colors never appear.
  std::vector<Node> nodes;
  for (std::uint64_t i = 0; i < tree.level_width(6); ++i) {
    nodes.push_back(Node{6, i});
  }
  std::vector<Color> colors(nodes.size());
  degraded.color_of_batch(nodes, colors);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(colors[i], degraded.color_of(nodes[i]));
    EXPECT_EQ(colors[i], tl.redirect(base.color_of(nodes[i])));
    EXPECT_NE(colors[i], 2u);
    EXPECT_NE(colors[i], 5u);
  }
}

TEST(DegradedMapping, SteadyStateEngineRoutingAgrees) {
  // A plan whose modules are dead from cycle 0 routes every request where
  // DegradedMapping would have colored it: served[] distributions match.
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping = make_optimal_color_mapping(tree, 8);
  FaultPlan plan;
  plan.fail_stop(1, 0).fail_stop(6, 0);
  const DegradedMapping degraded(mapping, {1, 6});

  const Workload workload = Workload::paths(tree, 9, 40, 17);
  const CycleEngine healthy_on_degraded(degraded);
  const EngineResult want =
      healthy_on_degraded.run(workload, ArrivalSchedule::all_at_once());

  EngineOptions opts;
  opts.faults = &plan;
  const CycleEngine faulted(mapping);
  const EngineResult got =
      faulted.run(workload, ArrivalSchedule::all_at_once(), opts);

  EXPECT_EQ(got.served, want.served);
  EXPECT_EQ(got.completion_cycle, want.completion_cycle);
  // Dead from cycle 0: exactly the requests the base mapping colors to a
  // dead module are redirected at admission.
  std::uint64_t expect_rerouted = 0;
  for (const auto& access : workload.accesses()) {
    for (const Node n : access) {
      const Color c = mapping.color_of(n);
      if (c == 1 || c == 6) expect_rerouted += 1;
    }
  }
  EXPECT_EQ(got.rerouted_requests, expect_rerouted);
  EXPECT_GT(expect_rerouted, 0u);
  EXPECT_EQ(got.served[1], 0u);
  EXPECT_EQ(got.served[6], 0u);
}

// ---------------------------------------------------------------------------
// Differential: engines under faults.

std::unique_ptr<TreeMapping> random_mapping(const CompleteBinaryTree& tree,
                                            Rng& rng) {
  switch (rng.below(3)) {
    case 0: {
      const std::uint32_t M = 7 + static_cast<std::uint32_t>(rng.below(3)) * 8;
      return std::make_unique<ColorMapping>(
          make_optimal_color_mapping(tree, M));
    }
    case 1:
      return std::make_unique<ModuloMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    default:
      return std::make_unique<RandomMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)), rng());
  }
}

Workload random_workload(const CompleteBinaryTree& tree, Rng& rng) {
  const std::size_t count = 5 + rng.below(20);
  const std::uint64_t seed = rng();
  switch (rng.below(3)) {
    case 0:
      return Workload::paths(tree, 1 + rng.below(tree.levels()), count, seed);
    case 1:
      return Workload::level_runs(tree, 1 + rng.below(16), count, seed);
    default:
      return Workload::mixed(tree, 1 + rng.below(12), count, seed);
  }
}

ArrivalSchedule random_schedule(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return ArrivalSchedule::all_at_once();
    case 1: return ArrivalSchedule::serialized();
    case 2: return ArrivalSchedule::fixed_rate(rng.below(5));
    default:
      return ArrivalSchedule::bursty(1 + rng.below(8), 1 + rng.below(16));
  }
}

FaultPlan random_plan(std::uint32_t modules, Rng& rng) {
  FaultPlan::RandomOptions opts;
  opts.seed = rng();
  opts.modules = modules;
  opts.fail_fraction = 0.1 + 0.3 * static_cast<double>(rng.below(3));
  opts.fail_window = 1 + rng.below(128);
  opts.slowdown_count = static_cast<std::uint32_t>(rng.below(4));
  opts.slowdown_window = 1 + rng.below(128);
  opts.slowdown_max_length = 1 + rng.below(64);
  opts.slowdown_max_period = 2 + rng.below(3);
  return FaultPlan::random(opts);
}

void expect_same_histogram(const Histogram& got, const Histogram& want) {
  ASSERT_EQ(got.count(), want.count());
  ASSERT_EQ(got.sum(), want.sum());
  ASSERT_EQ(got.min(), want.min());
  ASSERT_EQ(got.max(), want.max());
  const auto gb = got.buckets();
  const auto wb = want.buckets();
  ASSERT_EQ(gb.size(), wb.size());
  for (std::size_t i = 0; i < gb.size(); ++i) {
    ASSERT_EQ(gb[i].upper, wb[i].upper) << "bucket " << i;
    ASSERT_EQ(gb[i].count, wb[i].count) << "bucket " << i;
  }
}

void expect_same_trajectory(const EngineResult& got, const EngineResult& want,
                            bool compare_depths) {
  ASSERT_EQ(got.accesses, want.accesses);
  ASSERT_EQ(got.requests, want.requests);
  ASSERT_EQ(got.completion_cycle, want.completion_cycle);
  ASSERT_EQ(got.busy_cycles, want.busy_cycles);
  ASSERT_EQ(got.rerouted_requests, want.rerouted_requests);
  ASSERT_EQ(got.stalled_cycles, want.stalled_cycles);
  ASSERT_EQ(got.served, want.served);
  ASSERT_EQ(got.queue_high_water, want.queue_high_water);
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    ASSERT_EQ(got.records[i].arrival, want.records[i].arrival)
        << "access " << i;
    ASSERT_EQ(got.records[i].completion, want.records[i].completion)
        << "access " << i;
  }
  expect_same_histogram(got.latency, want.latency);
  if (compare_depths) expect_same_histogram(got.queue_depth, want.queue_depth);
}

TEST(FaultDifferential, EmptyPlanIsBitIdenticalToFaultFree) {
  Rng rng(0xFA017u);
  const FaultPlan empty;
  for (int trial = 0; trial < 20; ++trial) {
    const CompleteBinaryTree tree(6 + static_cast<std::uint32_t>(rng.below(5)));
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, rng);
    const ArrivalSchedule schedule = random_schedule(rng);
    SCOPED_TRACE("trial=" + std::to_string(trial) + " mapping=" +
                 mapping->name() + " schedule=" + schedule.name());

    const CycleEngine eng(*mapping);
    const EngineResult want = eng.run(workload, schedule);
    EngineOptions opts;
    opts.faults = &empty;
    expect_same_trajectory(eng.run(workload, schedule, opts), want,
                           /*compare_depths=*/true);

    const ReferenceEngine oracle(*mapping);
    expect_same_trajectory(oracle.run(workload, schedule, empty),
                           oracle.run(workload, schedule),
                           /*compare_depths=*/true);
  }
}

TEST(FaultDifferential, EventCoreMatchesReferenceUnderFaults) {
  Rng rng(0xFA1D1FFu);
  for (int trial = 0; trial < 40; ++trial) {
    const CompleteBinaryTree tree(6 + static_cast<std::uint32_t>(rng.below(5)));
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, rng);
    const ArrivalSchedule schedule = random_schedule(rng);
    const FaultPlan plan = random_plan(mapping->num_modules(), rng);
    SCOPED_TRACE("trial=" + std::to_string(trial) + " mapping=" +
                 mapping->name() + " schedule=" + schedule.name() +
                 " plan=" + plan.to_json().dump());

    const ReferenceEngine oracle(*mapping);
    const EngineResult want = oracle.run(workload, schedule, plan);
    const CycleEngine eng(*mapping);

    EngineOptions full;
    full.faults = &plan;
    expect_same_trajectory(eng.run(workload, schedule, full), want,
                           /*compare_depths=*/true);

    // Reduced sampling changes the observation cost, never the trajectory.
    EngineOptions off = full;
    off.sampling = DepthSampling::kOff;
    const EngineResult fast = eng.run(workload, schedule, off);
    expect_same_trajectory(fast, want, /*compare_depths=*/false);
    ASSERT_TRUE(fast.queue_depth.empty());

    EngineOptions strided = full;
    strided.sampling = DepthSampling::kStrided;
    strided.sample_stride = 1 + rng.below(7);
    const EngineResult sampled = eng.run(workload, schedule, strided);
    expect_same_trajectory(sampled, want, /*compare_depths=*/false);
    const std::uint64_t expect_samples =
        (sampled.busy_cycles + strided.sample_stride - 1) /
        strided.sample_stride * mapping->num_modules();
    ASSERT_EQ(sampled.queue_depth.count(), expect_samples);
  }
}

TEST(FaultDifferential, EveryRequestStillCompletesUnderFaults) {
  // Degraded, not dead: total served == total requests, dead modules stop
  // serving at their fail cycle, and slowdowns surface as stalled cycles.
  const CompleteBinaryTree tree(10);
  const ModuloMapping mapping(tree, 8);
  const Workload workload = Workload::mixed(tree, 10, 120, 23);
  FaultPlan plan;
  plan.fail_stop(3, 0).fail_stop(5, 16);
  plan.slow_down(0, 0, 400, 3);

  EngineOptions opts;
  opts.faults = &plan;
  const CycleEngine eng(mapping);
  const EngineResult res =
      eng.run(workload, ArrivalSchedule::all_at_once(), opts);

  std::uint64_t served = 0;
  for (const std::uint64_t s : res.served) served += s;
  EXPECT_EQ(served, res.requests);
  EXPECT_EQ(res.served[3], 0u);           // dead from cycle 0
  EXPECT_GT(res.rerouted_requests, 0u);
  EXPECT_GT(res.stalled_cycles, 0u);
  for (const auto& rec : res.records) {
    EXPECT_GE(rec.completion, rec.arrival);
  }
  // The degraded run can only be slower than the healthy one.
  const EngineResult healthy = eng.run(workload, ArrivalSchedule::all_at_once());
  EXPECT_GE(res.completion_cycle, healthy.completion_cycle);
}

TEST(FaultDifferential, ShardedRunIsThreadCountInvariantUnderFaults) {
  Rng rng(0x5AADEDu);
  for (int trial = 0; trial < 6; ++trial) {
    const CompleteBinaryTree tree(8);
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, rng);
    const FaultPlan plan = random_plan(mapping->num_modules(), rng);
    SCOPED_TRACE("trial=" + std::to_string(trial));

    const ShardedEngineRunner runner(*mapping);
    ShardedOptions opts;
    opts.shards = 1 + rng.below(4);
    opts.engine.faults = &plan;
    opts.threads = 1;
    const auto oracle =
        runner.run(workload, ArrivalSchedule::fixed_rate(2), opts);
    for (const unsigned threads : {2u, 8u}) {
      opts.threads = threads;
      const auto got =
          runner.run(workload, ArrivalSchedule::fixed_rate(2), opts);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      expect_same_trajectory(got.merged, oracle.merged,
                             /*compare_depths=*/true);
      ASSERT_EQ(got.merged.to_json().dump(), oracle.merged.to_json().dump());
    }
  }
}

TEST(DegradedMapping, AgreesWithPlanKillingAllButOneModule) {
  // Extreme degradation: every module but one dead from cycle 0. The
  // engine under the plan must land every request where DegradedMapping
  // routes it — all on the lone survivor — and still complete everything.
  const CompleteBinaryTree tree(8);
  const ModuloMapping mapping(tree, 6);
  FaultPlan plan;
  std::vector<Color> dead;
  for (Color m = 0; m < 6; ++m) {
    if (m == 4) continue;  // survivor
    plan.fail_stop(m, 0);
    dead.push_back(m);
  }
  const DegradedMapping degraded(mapping, dead);
  const Workload workload = Workload::mixed(tree, 8, 60, 41);

  EngineOptions opts;
  opts.faults = &plan;
  const CycleEngine faulted(mapping);
  const EngineResult got =
      faulted.run(workload, ArrivalSchedule::all_at_once(), opts);
  const CycleEngine oracle(degraded);
  const EngineResult want =
      oracle.run(workload, ArrivalSchedule::all_at_once());

  EXPECT_EQ(got.served, want.served);
  EXPECT_EQ(got.completion_cycle, want.completion_cycle);
  std::uint64_t served = 0;
  for (Color m = 0; m < 6; ++m) {
    if (m != 4) {
      EXPECT_EQ(got.served[m], 0u) << "module " << m;
    }
    served += got.served[m];
  }
  EXPECT_EQ(served, got.requests);
  EXPECT_EQ(got.served[4], got.requests);
}

TEST(FaultDifferential, MidRunMassFailureDrainsQueuedRequestsToSurvivor) {
  // All-but-one modules fail WHILE requests sit queued on them: the
  // queued work must drain FIFO onto the survivor — nothing is lost, the
  // run completes, and no dead module serves past its fail cycle.
  const CompleteBinaryTree tree(9);
  const ModuloMapping mapping(tree, 5);
  const Workload workload = Workload::mixed(tree, 9, 100, 59);
  const std::uint64_t fail_cycle = 6;
  FaultPlan plan;
  for (Color m = 1; m < 5; ++m) plan.fail_stop(m, fail_cycle);

  EngineOptions opts;
  opts.faults = &plan;
  const CycleEngine eng(mapping);
  const EngineResult res =
      eng.run(workload, ArrivalSchedule::all_at_once(), opts);

  std::uint64_t served = 0;
  for (const std::uint64_t s : res.served) served += s;
  EXPECT_EQ(served, res.requests);
  // Dead modules served at most fail_cycle cycles' worth of requests.
  for (Color m = 1; m < 5; ++m) {
    EXPECT_LE(res.served[m], fail_cycle) << "module " << m;
  }
  EXPECT_GT(res.rerouted_requests, 0u);
  EXPECT_GT(res.served[0], 0u);
  for (const auto& rec : res.records) {
    EXPECT_GE(rec.completion, rec.arrival);
  }
  // The survivor ends up with everything the dead modules never served.
  EXPECT_EQ(res.served[0], res.requests - (res.served[1] + res.served[2] +
                                           res.served[3] + res.served[4]));
}

// ---------------------------------------------------------------------------
// Dyn-tree mutation batches under fault injection (ISSUE 9 satellite):
// insert/erase requests racing a fail-stop epoch must drain cleanly —
// every request terminal, every mutation applied exactly once even when
// retries re-dispatch its request, and the whole run bit-identical at
// any worker count (faulted configs take the oracle serve path).

struct DynFaultRun {
  serve::ServeReport report;
  std::vector<Node> live;
  std::uint64_t tree_version = 0;
};

DynFaultRun run_dyn_faulted(const std::vector<serve::Request>& requests,
                            const FaultPlan* plan, unsigned workers) {
  const CompleteBinaryTree envelope(8);
  dyn::DynamicTree tree(8);
  dyn::IncrementalColorer colorer =
      dyn::IncrementalColorer::color(envelope, 5, 2);
  serve::ServerOptions opts;
  opts.tick_cycles = 2;
  opts.workers = workers;
  opts.batch.max_batch_nodes = 12;
  opts.engine.faults = plan;
  opts.retry.max_retries = 2;
  opts.retry.attempt_timeout_cycles = 6;
  opts.retry.backoff_base_cycles = 2;
  opts.retry.backoff_cap_cycles = 32;
  opts.dyn.tree = &tree;
  opts.dyn.colorer = &colorer;
  serve::Server server(colorer, opts);
  for (const serve::Request& r : requests) server.submit(r);
  DynFaultRun run;
  run.report = server.run();
  run.live = tree.live_nodes();
  run.tree_version = tree.version();
  EXPECT_TRUE(tree.validate());
  return run;
}

TEST(DynFaults, MutationBatchesDrainCleanlyAcrossFailStopEpoch) {
  Rng rng(0xFA17D711);
  std::vector<serve::Request> requests;
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(3, 0);
  for (int i = 0; i < 90; ++i) {
    clock += rng.below(3);
    serve::Request r;
    r.client = static_cast<std::uint32_t>(rng.below(3));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    const std::uint64_t dice = rng.below(10);
    const auto level = static_cast<std::uint32_t>(rng.between(1, 4));
    const Node target{level, rng.below(pow2(level))};
    if (dice < 4) {
      r.kind = serve::RequestKind::kInsert;
      r.target = target;
      r.payload = static_cast<std::int64_t>(i);
    } else if (dice < 6) {
      r.kind = serve::RequestKind::kErase;
      r.target = target;
    }
    Node cur = target;
    while (true) {
      r.nodes.push_back(cur);
      if (cur.level == 0) break;
      cur = parent(cur);
    }
    requests.push_back(std::move(r));
  }
  // Fail-stop epoch mid-run: half the modules die while writes are in
  // flight; the tight retry policy turns the inflated residencies into
  // re-dispatches that race the barrier's applied-once flags.
  FaultPlan plan;
  plan.fail_stop(1, 8);
  plan.fail_stop(3, 8);
  plan.fail_stop(5, 16);

  const DynFaultRun oracle = run_dyn_faulted(requests, &plan, 1);

  // Clean drain: every request terminal.
  ASSERT_EQ(oracle.report.count(serve::RequestStatus::kOk) +
                oracle.report.count(serve::RequestStatus::kShed) +
                oracle.report.count(serve::RequestStatus::kExpired),
            requests.size());
  // Apply-once: at most one mutation record per (client, seq), even for
  // retried requests, and at least one write both applied and retried
  // somewhere in the run (the race this test exists for).
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  std::uint64_t applied = 0;
  for (const serve::MutationRecord& rec : oracle.report.mutations) {
    EXPECT_TRUE(seen.emplace(rec.client, rec.seq).second)
        << "double-applied (" << rec.client << ", " << rec.seq << ")";
    if (rec.status == dyn::DynStatus::kOk) applied += 1;
  }
  EXPECT_GT(applied, 0u);
  std::uint64_t retried = 0;
  for (const serve::Response& resp : oracle.report.responses) {
    retried += resp.retries;
  }
  EXPECT_GT(retried, 0u);

  // Worker-count invariance holds under faults + writes too.
  for (const unsigned workers : {2u, 8u}) {
    const DynFaultRun got = run_dyn_faulted(requests, &plan, workers);
    ASSERT_EQ(got.report.to_json().dump(), oracle.report.to_json().dump());
    ASSERT_EQ(got.live, oracle.live);
    ASSERT_EQ(got.tree_version, oracle.tree_version);
  }
}

TEST(DynFaults, EmptyPlanMatchesUnfaultedDynRun) {
  Rng rng(0xFA17D712);
  std::vector<serve::Request> requests;
  std::uint64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    serve::Request r;
    r.client = 0;
    r.seq = seq++;
    r.submit_cycle = static_cast<std::uint64_t>(i);
    const auto level = static_cast<std::uint32_t>(rng.between(1, 3));
    r.kind = rng.chance(1, 2) ? serve::RequestKind::kInsert
                              : serve::RequestKind::kErase;
    r.target = Node{level, rng.below(pow2(level))};
    r.nodes.push_back(r.target);
    requests.push_back(std::move(r));
  }
  const FaultPlan empty;
  const DynFaultRun faulted = run_dyn_faulted(requests, &empty, 2);
  const DynFaultRun bare = run_dyn_faulted(requests, nullptr, 2);
  ASSERT_EQ(faulted.report.to_json().dump(), bare.report.to_json().dump());
  ASSERT_EQ(faulted.live, bare.live);
}

}  // namespace
}  // namespace pmtree
