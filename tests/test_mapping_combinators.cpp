#include "pmtree/mapping/combinators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"

namespace pmtree {
namespace {

TEST(PermutedMapping, IdentityPermutationIsNoop) {
  const CompleteBinaryTree tree(8);
  const ColorMapping base(tree, 5, 2);
  std::vector<Color> identity(base.num_modules());
  std::iota(identity.begin(), identity.end(), 0u);
  const PermutedMapping same(base, std::move(identity));
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(same.color_of(node_at(id)), base.color_of(node_at(id)));
  }
}

TEST(PermutedMapping, ConflictsAreInvariantUnderPermutation) {
  // The core property the analysis layer must respect: conflicts measure
  // structure, so any relabeling of modules leaves every family cost
  // unchanged.
  const CompleteBinaryTree tree(10);
  const ColorMapping base(tree, 5, 2);
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const PermutedMapping shuffled = PermutedMapping::shuffled(base, rng);
    EXPECT_EQ(evaluate_subtrees(shuffled, 3).max_conflicts,
              evaluate_subtrees(base, 3).max_conflicts);
    EXPECT_EQ(evaluate_paths(shuffled, 5).max_conflicts,
              evaluate_paths(base, 5).max_conflicts);
    EXPECT_EQ(evaluate_level_runs(shuffled, 3).max_conflicts,
              evaluate_level_runs(base, 3).max_conflicts);
  }
}

TEST(PermutedMapping, LoadHistogramIsPermuted) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping base(tree, 7);
  Rng rng(32);
  const PermutedMapping shuffled = PermutedMapping::shuffled(base, rng);
  auto base_loads = load_balance(base).per_module;
  auto perm_loads = load_balance(shuffled).per_module;
  std::sort(base_loads.begin(), base_loads.end());
  std::sort(perm_loads.begin(), perm_loads.end());
  EXPECT_EQ(base_loads, perm_loads);
}

TEST(PermutedMapping, ShuffledIsDeterministicPerSeed) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping base(tree, 13);
  Rng a(5), b(5);
  const PermutedMapping pa = PermutedMapping::shuffled(base, a);
  const PermutedMapping pb = PermutedMapping::shuffled(base, b);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(pa.color_of(node_at(id)), pb.color_of(node_at(id)));
  }
}

TEST(PermutedMapping, NameAndModules) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping base(tree, 9);
  Rng rng(1);
  const PermutedMapping p = PermutedMapping::shuffled(base, rng);
  EXPECT_EQ(p.num_modules(), 9u);
  EXPECT_EQ(p.name(), "MODULO(M=9)+perm");
}

}  // namespace
}  // namespace pmtree
