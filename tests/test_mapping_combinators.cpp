#include "pmtree/mapping/combinators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"

namespace pmtree {
namespace {

TEST(PermutedMapping, IdentityPermutationIsNoop) {
  const CompleteBinaryTree tree(8);
  const ColorMapping base(tree, 5, 2);
  std::vector<Color> identity(base.num_modules());
  std::iota(identity.begin(), identity.end(), 0u);
  const PermutedMapping same(base, std::move(identity));
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(same.color_of(node_at(id)), base.color_of(node_at(id)));
  }
}

TEST(PermutedMapping, ConflictsAreInvariantUnderPermutation) {
  // The core property the analysis layer must respect: conflicts measure
  // structure, so any relabeling of modules leaves every family cost
  // unchanged.
  const CompleteBinaryTree tree(10);
  const ColorMapping base(tree, 5, 2);
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const PermutedMapping shuffled = PermutedMapping::shuffled(base, rng);
    EXPECT_EQ(evaluate_subtrees(shuffled, 3).max_conflicts,
              evaluate_subtrees(base, 3).max_conflicts);
    EXPECT_EQ(evaluate_paths(shuffled, 5).max_conflicts,
              evaluate_paths(base, 5).max_conflicts);
    EXPECT_EQ(evaluate_level_runs(shuffled, 3).max_conflicts,
              evaluate_level_runs(base, 3).max_conflicts);
  }
}

TEST(PermutedMapping, LoadHistogramIsPermuted) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping base(tree, 7);
  Rng rng(32);
  const PermutedMapping shuffled = PermutedMapping::shuffled(base, rng);
  auto base_loads = load_balance(base).per_module;
  auto perm_loads = load_balance(shuffled).per_module;
  std::sort(base_loads.begin(), base_loads.end());
  std::sort(perm_loads.begin(), perm_loads.end());
  EXPECT_EQ(base_loads, perm_loads);
}

TEST(PermutedMapping, ShuffledIsDeterministicPerSeed) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping base(tree, 13);
  Rng a(5), b(5);
  const PermutedMapping pa = PermutedMapping::shuffled(base, a);
  const PermutedMapping pb = PermutedMapping::shuffled(base, b);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(pa.color_of(node_at(id)), pb.color_of(node_at(id)));
  }
}

TEST(PermutedMapping, NameAndModules) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping base(tree, 9);
  Rng rng(1);
  const PermutedMapping p = PermutedMapping::shuffled(base, rng);
  EXPECT_EQ(p.num_modules(), 9u);
  EXPECT_EQ(p.name(), "MODULO(M=9)+perm");
}

TEST(DegradedMapping, EmptyDeadSetIsNoop) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping base(tree, 9);
  const DegradedMapping same(base, {});
  EXPECT_EQ(same.live_modules(), 9u);
  EXPECT_EQ(same.num_modules(), 9u);
  EXPECT_EQ(same.name(), "MODULO(M=9)+degraded");
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(same.color_of(node_at(id)), base.color_of(node_at(id)));
  }
}

TEST(DegradedMapping, FoldsDeadColorsRoundRobinOntoSurvivors) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping base(tree, 6);
  // Dead {0, 2, 4} -> live {1, 3, 5}: j-th dead folds to live[j % 3].
  const DegradedMapping degraded(base, {4, 0, 2});
  EXPECT_EQ(degraded.live_modules(), 3u);
  EXPECT_EQ(degraded.redirect_table(),
            (std::vector<Color>{1, 1, 3, 3, 5, 5}));
  std::vector<std::uint64_t> loads(6, 0);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    loads[degraded.color_of(node_at(id))] += 1;
  }
  EXPECT_EQ(loads[0] + loads[2] + loads[4], 0u);
  // Every node still lands somewhere: survivors absorb the whole tree.
  EXPECT_EQ(loads[1] + loads[3] + loads[5], tree.size());
}

TEST(DegradedMapping, BatchKernelMatchesScalar) {
  const CompleteBinaryTree tree(9);
  const ColorMapping base(tree, 5, 2);
  const DegradedMapping degraded(base, {1, 2});
  std::vector<Node> nodes;
  for (std::uint64_t id = 0; id < tree.size(); id += 3) {
    nodes.push_back(node_at(id));
  }
  std::vector<Color> colors(nodes.size());
  degraded.color_of_batch(nodes, colors);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(colors[i], degraded.color_of(nodes[i])) << "node " << i;
  }
}

// Composition audit (DESIGN.md §16): a combinator snapshots its base's
// tree shape at construction. A dynamic base (pmtree::dyn's
// IncrementalColorer) that grows afterwards is detectable via
// base_shape_changed() — the wrappers' debug builds also assert on every
// color path, but the query is what release-mode callers (the migration
// planner) must check before reusing an epoch-old wrapper.
TEST(CombinatorAudit, DynamicBaseGrowthIsDetected) {
  const CompleteBinaryTree envelope(8);
  dyn::IncrementalColorer colorer = dyn::IncrementalColorer::color(envelope, 5, 2);
  colorer.touch(Node{2, 3});  // quiesce at 3 levels

  std::vector<Color> identity(colorer.num_modules());
  std::iota(identity.begin(), identity.end(), 0u);
  const PermutedMapping permuted(colorer, std::move(identity));
  const DegradedMapping degraded(colorer, {1});
  const MigratedMapping migrated(colorer, 1,
                                 std::vector<Color>{0, 1});
  EXPECT_FALSE(permuted.base_shape_changed());
  EXPECT_FALSE(degraded.base_shape_changed());
  EXPECT_FALSE(migrated.base_shape_changed());
  // Colors flow while the base is quiesced.
  EXPECT_EQ(permuted.color_of(Node{2, 3}), colorer.color_of(Node{2, 3}));

  // The base grows underneath the wrappers: every audit flag flips.
  colorer.touch(Node{6, 11});
  EXPECT_TRUE(permuted.base_shape_changed());
  EXPECT_TRUE(degraded.base_shape_changed());
  EXPECT_TRUE(migrated.base_shape_changed());

  // Shrinking back (strawman reset) to the snapshot shape re-quiesces.
  colorer.reset();
  colorer.touch(Node{2, 3});
  EXPECT_FALSE(permuted.base_shape_changed());

  // A wrapper over a *static* base can never trip the audit.
  const ColorMapping fixed(envelope, 5, 2);
  const DegradedMapping stable(fixed, {0});
  EXPECT_FALSE(stable.base_shape_changed());
}

TEST(DegradedMapping, ConflictsOnlyDegradeRelativeToHealthy) {
  // Folding colors can only merge previously distinct modules inside a
  // template instance: per-instance conflicts are monotonically >= the
  // healthy mapping's, never better. (The fault layer's whole claim is
  // "degrades quantifiably", so pin the direction.)
  const CompleteBinaryTree tree(10);
  const ColorMapping base(tree, 5, 2);
  const DegradedMapping degraded(base, {0, 3});
  EXPECT_GE(evaluate_paths(degraded, 5).max_conflicts,
            evaluate_paths(base, 5).max_conflicts);
  EXPECT_GE(evaluate_level_runs(degraded, 4).max_conflicts,
            evaluate_level_runs(base, 4).max_conflicts);
  EXPECT_GE(evaluate_subtrees(degraded, 3).max_conflicts,
            evaluate_subtrees(base, 3).max_conflicts);
}

}  // namespace
}  // namespace pmtree
