// Real-memory backend through the serve layer (DESIGN.md §17): the
// headline differential — responses are bit-identical with the backend on
// or off, at 1/2/8 workers and under the staged pipeline — plus the
// TouchStats aggregation contract (oracle control-plane touches equal the
// pipeline's worker-side touches equal a recount over the report's own
// batches), faulted runs, and per-tenant scope in the Forest.
#include "pmtree/mem/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

std::vector<Request> request_stream(std::uint32_t levels, std::size_t count,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t bottom = levels - 1;
  std::vector<Request> requests;
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(8, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(3);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(8));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    if (rng.below(10) < 8) {
      const std::uint64_t span = pow2(bottom) / 8;
      const std::uint64_t start = rng.below(span);
      for (std::uint64_t k = 0; k < 3; ++k) {
        r.nodes.push_back(v((start + k) % span, bottom));
      }
    } else {
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t level =
            static_cast<std::uint32_t>(rng.below(levels));
        r.nodes.push_back(v(rng.below(pow2(level)), level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

ServerOptions serve_options() {
  ServerOptions opts;
  opts.tick_cycles = 2;
  opts.replicas = 3;
  opts.workers = 1;
  opts.admission.queue_bound = 48;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 24;
  opts.batch.max_wait_cycles = 4;
  opts.retry.max_retries = 2;
  opts.retry.attempt_timeout_cycles = 48;
  opts.retry.backoff_base_cycles = 8;
  opts.retry.backoff_cap_cycles = 64;
  return opts;
}

ServeReport run_once(const TreeMapping& mapping, const ServerOptions& opts,
                     const std::vector<Request>& requests) {
  Server server(mapping, opts);
  for (const Request& r : requests) server.submit(r);
  return server.run();
}

void expect_same_responses(const ServeReport& got, const ServeReport& want) {
  ASSERT_EQ(got.responses.size(), want.responses.size());
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& x = got.responses[i];
    const Response& y = want.responses[i];
    ASSERT_EQ(x.client, y.client) << i;
    ASSERT_EQ(x.seq, y.seq) << i;
    ASSERT_EQ(x.status, y.status) << i;
    ASSERT_EQ(x.dispatch_cycle, y.dispatch_cycle) << i;
    ASSERT_EQ(x.completion_cycle, y.completion_cycle) << i;
    ASSERT_EQ(x.batch, y.batch) << i;
    ASSERT_EQ(x.retries, y.retries) << i;
  }
}

// Everything but the "memory" section (present exactly when the backend
// is on) and the "pipeline" section (wall-clock) must agree.
void expect_same_metrics_modulo_memory(const Json& got, const Json& want) {
  for (const auto& [key, value] : want.members()) {
    if (key == "pipeline" || key == "memory") continue;
    const Json* other = got.find(key);
    ASSERT_NE(other, nullptr) << "missing metrics section " << key;
    ASSERT_EQ(other->dump(), value.dump()) << "metrics section " << key;
  }
}

mem::TouchStats recount_over_batches(const mem::MemoryBackend& memory,
                                     const std::vector<FormedBatch>& batches) {
  mem::TouchStats total;
  for (const FormedBatch& b : batches) total += memory.touch(b.nodes);
  return total;
}

// ---------------------------------------------------------------------------
// Server.

TEST(ServeMem, BackendOnOrOffIsBitIdenticalAcrossWorkerCounts) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const mem::MemoryBackend memory(mapping);
  const auto requests = request_stream(tree.levels(), 240, 0x3E25);

  ServerOptions off = serve_options();
  const ServeReport want = run_once(mapping, off, requests);
  EXPECT_EQ(want.memory.nodes, 0u);
  EXPECT_EQ(want.metrics.find("memory"), nullptr);

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServerOptions on = serve_options();
    on.workers = workers;
    on.memory = &memory;
    const ServeReport got = run_once(mapping, on, requests);
    expect_same_responses(got, want);
    expect_same_metrics_modulo_memory(got.metrics, want.metrics);
    ASSERT_EQ(got.batches.size(), want.batches.size());
    ASSERT_EQ(got.final_cycle, want.final_cycle);

    // The touched totals equal a recount over the report's own batches.
    EXPECT_GT(got.memory.nodes, 0u);
    EXPECT_EQ(got.memory, recount_over_batches(memory, got.batches));
    const Json* jm = got.metrics.find("memory");
    ASSERT_NE(jm, nullptr);
    EXPECT_EQ(jm->find("touched")->find("nodes")->as_uint(),
              got.memory.nodes);
  }
}

TEST(ServeMem, PipelineTouchesOnWorkersYetMatchesTheOracleTotals) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const mem::MemoryBackend memory(mapping);
  const auto requests = request_stream(tree.levels(), 240, 0x9125);

  ServerOptions oracle_opts = serve_options();
  oracle_opts.memory = &memory;
  const ServeReport oracle = run_once(mapping, oracle_opts, requests);

  ServerOptions off = serve_options();
  const ServeReport plain = run_once(mapping, off, requests);

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("pipeline_workers=" + std::to_string(workers));
    ServerOptions piped_opts = serve_options();
    piped_opts.memory = &memory;
    piped_opts.pipeline.workers = workers;
    const ServeReport piped = run_once(mapping, piped_opts, requests);
    // Identical to the accounting oracle AND to the no-backend run: the
    // backend is observation, wherever the touches execute.
    expect_same_responses(piped, oracle);
    expect_same_responses(piped, plain);
    ASSERT_EQ(piped.memory, oracle.memory)
        << "worker-side touches must aggregate to the control-plane total";
    expect_same_metrics_modulo_memory(piped.metrics, plain.metrics);
    ASSERT_EQ(piped.metrics.find("memory")->dump(),
              oracle.metrics.find("memory")->dump());
  }
}

TEST(ServeMem, FaultedRunsKeepTheBackendObservational) {
  const CompleteBinaryTree tree(8);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 11));
  const mem::MemoryBackend memory(mapping);
  const auto requests = request_stream(tree.levels(), 160, 0xFA25);

  fault::FaultPlan::RandomOptions fopts;
  fopts.seed = 0xFA25;
  fopts.modules = mapping.num_modules();
  fopts.fail_fraction = 0.2;
  fopts.fail_window = 64;
  fopts.slowdown_count = 2;
  fopts.slowdown_window = 128;
  fopts.slowdown_max_length = 64;
  fopts.slowdown_max_period = 4;
  const fault::FaultPlan plan = fault::FaultPlan::random(fopts);

  ServerOptions off = serve_options();
  off.engine.faults = &plan;
  ServerOptions on = off;
  on.memory = &memory;

  const ServeReport want = run_once(mapping, off, requests);
  const ServeReport got = run_once(mapping, on, requests);
  expect_same_responses(got, want);
  EXPECT_EQ(got.memory, recount_over_batches(memory, got.batches));
}

TEST(ServeMem, AdaptiveSelectionIsUnperturbedByTheBackend) {
  // The differential anchor with the tentpole's two halves combined: the
  // selector's decisions are simulated quantities, so wiring real memory
  // underneath cannot change an epoch choice or a response.
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  const mem::MemoryBackend memory(label);
  const auto requests = request_stream(tree.levels(), 240, 0xADA5);

  ServerOptions off = serve_options();
  off.adaptive.epoch_batches = 4;
  off.adaptive.candidates = {&color, &label};
  ServerOptions on = off;
  on.memory = &memory;

  const ServeReport want = run_once(label, off, requests);
  ASSERT_NE(want.metrics.find("adaptive"), nullptr);

  for (const unsigned pipeline_workers : {0u, 2u}) {
    SCOPED_TRACE("pipeline_workers=" + std::to_string(pipeline_workers));
    ServerOptions opts = on;
    opts.pipeline.workers = pipeline_workers;
    const ServeReport got = run_once(label, opts, requests);
    expect_same_responses(got, want);
    ASSERT_EQ(got.metrics.find("adaptive")->dump(),
              want.metrics.find("adaptive")->dump());
  }
}

// ---------------------------------------------------------------------------
// Forest: per-tenant backends.

TEST(ServeMem, ForestScopesBackendsPerTenant) {
  const CompleteBinaryTree a_tree(9);
  const ColorMapping a_mapping(make_optimal_color_mapping(a_tree, 13));
  const CompleteBinaryTree b_tree(7);
  const ModuloMapping b_mapping(b_tree, 7);
  const mem::MemoryBackend a_memory(a_mapping);

  const auto a_requests = request_stream(a_tree.levels(), 180, 0xE2A);
  const auto b_requests = request_stream(b_tree.levels(), 60, 0xE2B);

  auto run_forest = [&](bool with_memory, unsigned workers,
                        unsigned pipeline_workers) {
    ForestOptions fopts;
    fopts.tick_cycles = 2;
    fopts.replicas = 4;
    fopts.workers = workers;
    fopts.drr_quantum_nodes = 24;
    fopts.pipeline.workers = pipeline_workers;
    Forest forest(fopts);

    TenantOptions ta;
    ta.rate = 3.0;
    ta.admission.queue_bound = 32;
    ta.batch.max_batch_nodes = 24;
    ta.batch.max_wait_cycles = 4;
    if (with_memory) ta.memory = &a_memory;
    forest.add_tenant(a_mapping, std::move(ta));

    TenantOptions tb;  // no backend
    tb.admission.queue_bound = 16;
    tb.batch.max_batch_nodes = 16;
    forest.add_tenant(b_mapping, std::move(tb));

    for (const Request& r : a_requests) forest.submit(0, r);
    for (const Request& r : b_requests) forest.submit(1, r);
    return forest.run();
  };

  const ForestReport want = run_forest(false, 1, 0);
  const ForestReport with = run_forest(true, 1, 0);

  // Tenant 0 has totals that recount over its batches; tenant 1 stays
  // all-zero and exports no memory section.
  EXPECT_GT(with.tenants[0].memory.nodes, 0u);
  EXPECT_EQ(with.tenants[0].memory,
            recount_over_batches(a_memory, with.tenants[0].batches));
  ASSERT_NE(with.tenants[0].metrics.find("memory"), nullptr);
  EXPECT_EQ(with.tenants[1].memory.nodes, 0u);
  EXPECT_EQ(with.tenants[1].metrics.find("memory"), nullptr)
      << "the backend leaked across the tenant boundary";

  // Responses identical tenant for tenant with the backend on or off, at
  // any worker count, and under the staged pipeline.
  struct Dims {
    unsigned workers;
    unsigned pipeline_workers;
  };
  for (const Dims d : {Dims{1, 0}, Dims{2, 0}, Dims{8, 0}, Dims{1, 1},
                       Dims{1, 2}}) {
    SCOPED_TRACE("workers=" + std::to_string(d.workers) + " pipeline=" +
                 std::to_string(d.pipeline_workers));
    const ForestReport got = run_forest(true, d.workers, d.pipeline_workers);
    ASSERT_EQ(got.tenants.size(), want.tenants.size());
    for (std::size_t i = 0; i < got.tenants.size(); ++i) {
      ASSERT_EQ(got.tenants[i].responses.size(),
                want.tenants[i].responses.size());
      for (std::size_t k = 0; k < got.tenants[i].responses.size(); ++k) {
        const Response& x = got.tenants[i].responses[k];
        const Response& y = want.tenants[i].responses[k];
        ASSERT_EQ(x.status, y.status) << i << ":" << k;
        ASSERT_EQ(x.completion_cycle, y.completion_cycle) << i << ":" << k;
        ASSERT_EQ(x.batch, y.batch) << i << ":" << k;
        ASSERT_EQ(x.retries, y.retries) << i << ":" << k;
      }
    }
    EXPECT_EQ(got.tenants[0].memory, with.tenants[0].memory)
        << "per-tenant totals must be invariant to execution shape";
  }
}

}  // namespace
}  // namespace pmtree::serve
