// IncrementalColorer differential: after every randomized mutation batch,
// the lazily extended coloring must be bit-identical to a from-scratch
// rebuild of the same mapping over the same envelope (DESIGN.md §16).
// Both schemes are coordinate-pure, so the independent reference —
// ColorMapping::materialize() / a fresh LabelTreeMapping — never changes
// and any drift in the incremental machinery is caught immediately.
//
// 64 seeded configurations (32 COLOR x (N, k), 32 LABEL-TREE x M), each
// driven through 25 mutation batches — the "60+ seeded configs"
// acceptance bar of ISSUE 9.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::dyn {
namespace {

constexpr std::uint32_t kEnvelopeLevels = 9;

/// One batch of random structural mutations; returns the touched set
/// (every coordinate a serve batch would hand the colorer).
std::vector<Node> mutate_batch(DynamicTree& tree, Rng& rng) {
  std::vector<Node> touched;
  const std::uint64_t ops = rng.between(5, 20);
  for (std::uint64_t op = 0; op < ops; ++op) {
    const std::uint64_t kind = rng.below(5);
    if (kind <= 1) {  // append a leaf under a random live node
      const std::vector<Node> live = tree.live_nodes();
      const Node parent = live[rng.below(live.size())];
      const auto alloc = tree.append_leaf(parent);
      if (alloc.status == DynStatus::kOk) touched.push_back(alloc.node);
    } else if (kind == 2) {  // remove a random live leaf
      const std::vector<Node> live = tree.live_nodes();
      const Node victim = live[rng.below(live.size())];
      if (tree.remove_leaf(victim) == DynStatus::kOk) {
        touched.push_back(victim);
      }
    } else if (kind == 3) {  // split: grow a small subtree
      const std::vector<Node> live = tree.live_nodes();
      const Node root = live[rng.below(live.size())];
      const auto levels = static_cast<std::uint32_t>(rng.between(2, 3));
      if (tree.grow_subtree(root, levels).status == DynStatus::kOk) {
        for (std::uint32_t d = 0; d < levels; ++d) {
          for (std::uint64_t i = 0; i < pow2(d); ++i) {
            touched.push_back(Node{root.level + d, (root.index << d) + i});
          }
        }
      }
    } else {  // merge: prune a random subtree
      const std::vector<Node> live = tree.live_nodes();
      const Node root = live[rng.below(live.size())];
      tree.prune_subtree(root);
      touched.push_back(root);
    }
  }
  return touched;
}

/// Drives `colorer` through 25 mutation batches and asserts bit-identity
/// against `reference` (the from-scratch rebuild) after every batch, over
/// the whole live set and the touched coordinates, via both the scalar
/// and the batch read paths.
void run_differential(IncrementalColorer colorer, const TreeMapping& reference,
                      std::uint64_t seed) {
  ASSERT_EQ(colorer.num_modules(), reference.num_modules());
  Rng rng(seed);
  DynamicTree tree(kEnvelopeLevels);
  for (int batch = 0; batch < 25; ++batch) {
    std::vector<Node> touched = mutate_batch(tree, rng);
    // The serve barrier touches the batch's node set (reads + applied
    // writes); erased coordinates stay touched — colors are pure
    // coordinate functions, so reading them must stay exact too.
    colorer.touch(std::span<const Node>(touched.data(), touched.size()));

    // The strawman epoch baseline occasionally drops everything; colors
    // must be unchanged after the rebuild-from-scratch re-touch.
    if (batch % 10 == 9) {
      colorer.reset();
      const std::vector<Node> live = tree.live_nodes();
      colorer.touch(std::span<const Node>(live.data(), live.size()));
      colorer.touch(std::span<const Node>(touched.data(), touched.size()));
    }

    std::vector<Node> check = tree.live_nodes();
    check.insert(check.end(), touched.begin(), touched.end());
    std::vector<Color> got(check.size());
    colorer.color_of_batch(std::span<const Node>(check.data(), check.size()),
                           std::span<Color>(got.data(), got.size()));
    for (std::size_t i = 0; i < check.size(); ++i) {
      ASSERT_EQ(got[i], reference.color_of(check[i]))
          << "seed " << seed << " batch " << batch << " node ("
          << check[i].level << ", " << check[i].index << ")";
      ASSERT_EQ(colorer.color_of(check[i]), got[i]);
    }

    // Cold reads (never-touched coordinates) are total and exact too.
    for (int probe = 0; probe < 16; ++probe) {
      const auto level =
          static_cast<std::uint32_t>(rng.below(kEnvelopeLevels));
      const Node n{level, rng.below(pow2(level))};
      ASSERT_EQ(colorer.color_of(n), reference.color_of(n));
    }
  }
  EXPECT_GT(colorer.nodes_colored(), 0u);
  EXPECT_GE(colorer.touches(), colorer.nodes_colored());
}

struct ColorConfig {
  std::uint32_t N, k;
};

class DynIncrementalColor : public ::testing::TestWithParam<ColorConfig> {};

TEST_P(DynIncrementalColor, MatchesFromScratchRebuildEveryBatch) {
  const CompleteBinaryTree envelope(kEnvelopeLevels);
  const auto [N, k] = GetParam();
  const ColorMapping reference(envelope, N, k);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    run_differential(IncrementalColorer::color(envelope, N, k), reference,
                     0xC0105000 + seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, DynIncrementalColor,
                         ::testing::Values(ColorConfig{4, 2}, ColorConfig{5, 3},
                                           ColorConfig{6, 2},
                                           ColorConfig{7, 4}),
                         [](const auto& param) {
                           return "N" + std::to_string(param.param.N) + "k" +
                                  std::to_string(param.param.k);
                         });

class DynIncrementalLabel : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DynIncrementalLabel, MatchesFromScratchRebuildEveryBatch) {
  const CompleteBinaryTree envelope(kEnvelopeLevels);
  const std::uint32_t M = GetParam();
  const LabelTreeMapping reference(envelope, M,
                                   LabelTreeMapping::Retrieval::kTable);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    run_differential(IncrementalColorer::label_tree(envelope, M), reference,
                     0x1ABE1000 + seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, DynIncrementalLabel,
                         ::testing::Values(3u, 5u, 8u, 13u),
                         [](const auto& param) {
                           return "M" + std::to_string(param.param);
                         });

TEST(DynIncremental, TreeGrowsWithTouchedDepth) {
  const CompleteBinaryTree envelope(kEnvelopeLevels);
  IncrementalColorer colorer = IncrementalColorer::color(envelope, 5, 2);
  EXPECT_EQ(colorer.tree().levels(), 1u);
  colorer.touch(Node{4, 7});
  EXPECT_EQ(colorer.tree().levels(), 5u);
  colorer.touch(Node{2, 1});
  EXPECT_EQ(colorer.tree().levels(), 5u);  // never shrinks on touch
  colorer.reset();
  EXPECT_EQ(colorer.tree().levels(), 1u);
}

TEST(DynIncremental, MemoizationIsAmortizedConstant) {
  const CompleteBinaryTree envelope(kEnvelopeLevels);
  IncrementalColorer colorer = IncrementalColorer::color(envelope, 5, 2);
  // Touch every node of the envelope, deepest level first — the worst
  // case for chain length. Each node is colored exactly once, so the
  // total colored count is bounded by the envelope size even though
  // every touch could chase an O(level) chain.
  for (std::uint32_t j = envelope.levels(); j-- > 0;) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      colorer.touch(Node{j, i});
    }
  }
  EXPECT_EQ(colorer.nodes_colored(), envelope.size());
  // Re-touching everything colors nothing new.
  for (std::uint32_t j = 0; j < envelope.levels(); ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      colorer.touch(Node{j, i});
    }
  }
  EXPECT_EQ(colorer.nodes_colored(), envelope.size());
}

}  // namespace
}  // namespace pmtree::dyn
