// Coverage for the smaller public-API surfaces not exercised elsewhere:
// bulk color retrieval, the TP family evaluator, RNG edges, node
// arithmetic at extreme depths, and the umbrella header itself (this file
// includes only pmtree/pmtree.hpp).
#include <gtest/gtest.h>

#include "pmtree/pmtree.hpp"

namespace pmtree {
namespace {

TEST(ApiCoverage, ColorsOfBulkMatchesScalar) {
  const CompleteBinaryTree tree(8);
  const ColorMapping map(tree, 5, 2);
  const std::vector<Node> nodes{v(0, 0), v(3, 3), v(100, 7)};
  const auto colors = map.colors_of(nodes);
  ASSERT_EQ(colors.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(colors[i], map.color_of(nodes[i]));
  }
}

TEST(ApiCoverage, EvaluateTpDistinguishesMappings) {
  const CompleteBinaryTree tree(6);
  const BasicColorMapping good(tree, 6, 2);
  EXPECT_EQ(evaluate_tp(good, 3).max_conflicts, 0u);
  const ModuloMapping bad(tree, 5);
  const auto cost = evaluate_tp(bad, 3);
  EXPECT_GT(cost.max_conflicts, 0u);
  EXPECT_GT(cost.instances, 0u);
}

TEST(ApiCoverage, RngBetweenDegenerateRange) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.between(42, 42), 42u);
}

TEST(ApiCoverage, NodeArithmeticAtDepth59) {
  const Node deep = v((std::uint64_t{1} << 59) - 1, 59);  // rightmost node
  EXPECT_EQ(ancestor(deep, 59), v(0, 0));
  EXPECT_EQ(node_at(bfs_id(deep)), deep);
  EXPECT_EQ(parent(deep), v((std::uint64_t{1} << 58) - 1, 58));
  const CompleteBinaryTree tree(60);
  EXPECT_TRUE(tree.contains(deep));
  EXPECT_TRUE(tree.is_leaf(deep));  // level 59 is the last of 60 levels
}

TEST(ApiCoverage, FamilyCostWitnessForConflictFreeMappingIsAnyInstance) {
  const CompleteBinaryTree tree(6);
  const BasicColorMapping map(tree, 6, 2);
  const auto cost = evaluate_subtrees(map, 3);
  EXPECT_EQ(cost.max_conflicts, 0u);
  // Even at zero conflicts a witness instance is reported (first seen).
  EXPECT_EQ(cost.witness.size(), 3u);
  EXPECT_EQ(cost.mean_conflicts, 0.0);
}

TEST(ApiCoverage, VerdictBoolConversion) {
  Verdict ok;
  ok.ok = true;
  EXPECT_TRUE(static_cast<bool>(ok));
  Verdict bad;
  EXPECT_FALSE(static_cast<bool>(bad));
}

TEST(ApiCoverage, MakeOptimalRoundsDownToPowerOfTwoMinusOne) {
  const CompleteBinaryTree tree(12);
  // M = 20 -> largest 2^m - 1 <= 20 is 15 (m = 4): N = 11, K = 7.
  const ColorMapping map = make_optimal_color_mapping(tree, 20);
  EXPECT_EQ(map.num_modules(), 15u);
  EXPECT_EQ(map.N(), 11u);
  EXPECT_EQ(map.K(), 7u);
}

TEST(ApiCoverage, CfMappingForModulesSpendsTheWholeBudget) {
  const CompleteBinaryTree tree(14);
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    for (const std::uint32_t M : {8u, 12u, 20u}) {
      const ColorMapping map = make_cf_mapping_for_modules(tree, M, k);
      EXPECT_EQ(map.num_modules(), M);
      EXPECT_EQ(map.k(), k);
      // CF on the promised families (sampled; exhaustive proofs live in
      // the theorem suites).
      Rng rng(M * 31 + k);
      // N may exceed the tree height; the CF guarantee then covers every
      // path the tree actually has.
      const std::uint64_t path_len = std::min<std::uint64_t>(map.N(), tree.levels());
      for (int t = 0; t < 50; ++t) {
        const auto p = sample_path(tree, path_len, rng);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(conflicts(map, p->nodes()), 0u) << "M=" << M << " k=" << k;
        const auto s = sample_subtree(tree, map.K(), rng);
        ASSERT_TRUE(s.has_value());
        EXPECT_EQ(conflicts(map, s->nodes()), 0u) << "M=" << M << " k=" << k;
      }
    }
  }
}

TEST(ApiCoverage, SimulatorMoreThreadsThanAccesses) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  const auto workload = Workload::paths(tree, 4, 3, 1);
  const auto report = ParallelAccessSimulator(16).run(map, workload);
  EXPECT_EQ(report.accesses, 3u);
}

TEST(ApiCoverage, MappingNamesAreStable) {
  const CompleteBinaryTree tree(8);
  EXPECT_EQ(ColorMapping(tree, 5, 2).name(), "COLOR(N=5,K=3)");
  EXPECT_EQ(BasicColorMapping(CompleteBinaryTree(5), 5, 2).name(),
            "BASIC-COLOR(N=5,K=3)");
  EXPECT_EQ(LabelTreeMapping(tree, 15).name(), "LABEL-TREE(M=15)");
  EXPECT_EQ(EagerColorMapping(ColorMapping(tree, 5, 2)).name(),
            "COLOR(N=5,K=3)+table");
  EXPECT_EQ(LevelModMapping(tree, 9).name(), "LEVEL-MOD(M=9)");
}

}  // namespace
}  // namespace pmtree
