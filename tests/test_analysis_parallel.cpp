// Determinism tests for the parallel cost evaluators: every evaluate_* /
// sample_* result — max, mean, instance count, and the exact witness node
// set — must be bit-identical at 1, 2 and 8 threads, and the indexed
// accessors driving the parallel scan must reproduce the for_each_*
// enumeration order exactly.
#include <gtest/gtest.h>

#include <vector>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

void expect_same(const FamilyCost& a, const FamilyCost& b,
                 const std::string& label) {
  EXPECT_EQ(a.max_conflicts, b.max_conflicts) << label;
  EXPECT_EQ(a.mean_conflicts, b.mean_conflicts) << label;  // exact, not near
  EXPECT_EQ(a.instances, b.instances) << label;
  EXPECT_EQ(a.witness, b.witness) << label;
}

/// Evaluates one family at 1/2/8 threads (forcing the parallel path with
/// cutoff 0) and requires bit-identical FamilyCosts; returns the 1-thread
/// result for further checks.
template <typename Eval>
FamilyCost expect_thread_invariant(const Eval& eval, const std::string& label) {
  const FamilyCost base = eval(EvalOptions{1, 0});
  for (const unsigned threads : {2u, 8u}) {
    expect_same(base, eval(EvalOptions{threads, 0}),
                label + " @" + std::to_string(threads) + "t");
  }
  // Default options (auto threads, default cutoff) must agree too.
  expect_same(base, eval(EvalOptions{}), label + " @default");
  return base;
}

TEST(AnalysisParallel, EvaluateFamiliesBitIdenticalAcrossThreadCounts) {
  const CompleteBinaryTree tree(11);
  const ColorMapping color(tree, 6, 3);
  const LabelTreeMapping label(tree, 15);
  const RandomMapping random(tree, 13, 7);
  const std::uint64_t K = 7;

  for (const TreeMapping* m :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&random)}) {
    const std::string who = m->name();
    expect_thread_invariant(
        [&](const EvalOptions& o) { return evaluate_subtrees(*m, K, o); },
        who + " subtrees");
    expect_thread_invariant(
        [&](const EvalOptions& o) { return evaluate_level_runs(*m, K, o); },
        who + " level_runs");
    expect_thread_invariant(
        [&](const EvalOptions& o) { return evaluate_paths(*m, K, o); },
        who + " paths");
    expect_thread_invariant(
        [&](const EvalOptions& o) { return evaluate_tp(*m, K, o); },
        who + " tp");
  }
}

TEST(AnalysisParallel, SampledFamiliesBitIdenticalAcrossThreadCounts) {
  const CompleteBinaryTree tree(16);
  const ColorMapping mapping(tree, 6, 3);
  const std::uint64_t K = 7;
  const std::uint64_t samples = 5000;

  // Each evaluation re-seeds its own Rng, so the draw sequence is the
  // same for every thread count by construction; the reduction must be.
  expect_thread_invariant(
      [&](const EvalOptions& o) {
        Rng rng(101);
        return sample_subtrees(mapping, K, samples, rng, o);
      },
      "sample_subtrees");
  expect_thread_invariant(
      [&](const EvalOptions& o) {
        Rng rng(102);
        return sample_level_runs(mapping, K, samples, rng, o);
      },
      "sample_level_runs");
  expect_thread_invariant(
      [&](const EvalOptions& o) {
        Rng rng(103);
        return sample_paths(mapping, K, samples, rng, o);
      },
      "sample_paths");
  expect_thread_invariant(
      [&](const EvalOptions& o) {
        Rng rng(104);
        return sample_composites(mapping, 24, 3, 1000, rng, o);
      },
      "sample_composites");
}

TEST(AnalysisParallel, WitnessIsFirstInstanceAttainingMax) {
  // Sequential ground truth via the enumerator, then cross-check that the
  // parallel scan picks the same (lowest-index) witness.
  const CompleteBinaryTree tree(10);
  const ModuloMapping mapping(tree, 13);
  const std::uint64_t K = 7;

  FamilyCost expected;
  bool have = false;
  for_each_subtree(tree, K, [&](const SubtreeInstance& s) {
    const auto nodes = s.nodes();
    const std::uint64_t cost = conflicts(mapping, nodes);
    expected.instances += 1;
    if (!have || cost > expected.max_conflicts) {
      expected.witness = nodes;
      have = true;
    }
    expected.max_conflicts = std::max(expected.max_conflicts, cost);
    return true;
  });

  for (const unsigned threads : {1u, 2u, 8u}) {
    const FamilyCost got =
        evaluate_subtrees(mapping, K, EvalOptions{threads, 0});
    EXPECT_EQ(got.max_conflicts, expected.max_conflicts);
    EXPECT_EQ(got.instances, expected.instances);
    EXPECT_EQ(got.witness, expected.witness) << threads << " threads";
  }
}

TEST(AnalysisParallel, IndexedAccessorsMatchEnumerationOrder) {
  const CompleteBinaryTree tree(9);
  for (const std::uint64_t K : {1ull, 3ull, 7ull}) {
    std::uint64_t i = 0;
    for_each_subtree(tree, K, [&](const SubtreeInstance& s) {
      EXPECT_EQ(subtree_at(tree, K, i).nodes(), s.nodes()) << "subtree " << i;
      i += 1;
      return true;
    });
    EXPECT_EQ(i, count_subtrees(tree, K));

    i = 0;
    for_each_level_run(tree, K, [&](const LevelRunInstance& l) {
      EXPECT_EQ(level_run_at(tree, K, i).nodes(), l.nodes()) << "run " << i;
      i += 1;
      return true;
    });
    EXPECT_EQ(i, count_level_runs(tree, K));

    i = 0;
    for_each_path(tree, K, [&](const PathInstance& p) {
      EXPECT_EQ(path_at(tree, K, i).nodes(), p.nodes()) << "path " << i;
      i += 1;
      return true;
    });
    EXPECT_EQ(i, count_paths(tree, K));
  }

  // TP: the indexed form spans all j = 1..levels in one index space.
  std::uint64_t i = 0;
  for (std::uint32_t j = 1; j <= tree.levels(); ++j) {
    for_each_tp(tree, 7, j, [&](const CompositeInstance& tp) {
      EXPECT_EQ(tp_at(tree, 7, i).nodes(), tp.nodes()) << "tp " << i;
      i += 1;
      return true;
    });
  }
  EXPECT_EQ(i, count_tp(tree));
}

TEST(AnalysisParallel, ConflictsBatchMatchesScalarConflicts) {
  const CompleteBinaryTree tree(12);
  const ColorMapping mapping(tree, 6, 3);
  Rng rng(7);

  // CSR-pack 200 random accesses of mixed sizes (including empty).
  std::vector<Node> nodes;
  std::vector<std::uint64_t> offsets{0};
  for (int a = 0; a < 200; ++a) {
    const std::uint64_t len = rng.below(20);  // 0..19 nodes
    for (std::uint64_t r = 0; r < len; ++r) {
      const auto level = static_cast<std::uint32_t>(rng.below(tree.levels()));
      nodes.push_back(Node{level, rng.below(pow2(level))});
    }
    offsets.push_back(nodes.size());
  }

  std::vector<std::uint64_t> batch(offsets.size() - 1);
  conflicts_batch(mapping, nodes, offsets, batch);
  for (std::size_t a = 0; a + 1 < offsets.size(); ++a) {
    const std::span<const Node> slice(nodes.data() + offsets[a],
                                      offsets[a + 1] - offsets[a]);
    EXPECT_EQ(batch[a], conflicts(mapping, slice)) << "access " << a;
    EXPECT_EQ(slice.empty() ? 0 : batch[a] + 1, rounds(mapping, slice));
  }
}

TEST(AnalysisParallel, EmptyFamiliesAndTinyTreesStayWellFormed) {
  const CompleteBinaryTree tree(3);
  const ModuloMapping mapping(tree, 5);
  // K larger than the tree: zero instances at every thread count.
  for (const unsigned threads : {1u, 2u, 8u}) {
    const FamilyCost fc =
        evaluate_subtrees(mapping, 15, EvalOptions{threads, 0});
    EXPECT_EQ(fc.instances, 0u);
    EXPECT_EQ(fc.max_conflicts, 0u);
    EXPECT_EQ(fc.mean_conflicts, 0.0);
    EXPECT_TRUE(fc.witness.empty());
  }
}

}  // namespace
}  // namespace pmtree
