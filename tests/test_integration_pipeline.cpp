// End-to-end integration: workload generation -> mapping -> memory system
// / simulator / scheduler / trace must all tell one consistent story, and
// the applications must compose with every mapping.
#include <gtest/gtest.h>

#include "pmtree/pmtree.hpp"

namespace pmtree {
namespace {

TEST(Integration, AllAccountingLayersAgree) {
  const CompleteBinaryTree tree(13);
  const ColorMapping map(tree, 6, 3);
  const auto workload = Workload::mixed(tree, 9, 300, 4242);

  // Sequential accounting.
  MemorySystem pms(map);
  for (const auto& access : workload.accesses()) pms.access(access);

  // Threaded simulator.
  const auto sim = ParallelAccessSimulator(3).run(map, workload);
  EXPECT_EQ(sim.total_rounds, pms.total_rounds());
  EXPECT_EQ(sim.traffic, pms.traffic());

  // Trace.
  const Trace trace = run_traced(map, workload);
  EXPECT_EQ(trace.round_stats().sum(), pms.total_rounds());
  EXPECT_EQ(trace.traffic(), pms.traffic());

  // Scheduler: batch-of-one equals the sequential rounds.
  const BatchScheduler sched(map);
  EXPECT_EQ(sched.total_makespan(workload, 1), pms.total_rounds());
}

TEST(Integration, HeapDictionaryAndIndexComposeWithEveryMapping) {
  const std::uint32_t levels = 9;
  const CompleteBinaryTree tree(levels);
  const ColorMapping color(tree, levels, 3);
  const LabelTreeMapping label(tree, color.num_modules());
  const ModuloMapping naive(tree, color.num_modules());

  ParallelHeap heap(levels);
  Rng rng(7);
  std::vector<std::vector<Node>> accesses;
  for (int i = 0; i < 100; ++i) {
    accesses.push_back(
        heap.insert(static_cast<ParallelHeap::Key>(rng.below(1000))));
  }
  ASSERT_TRUE(heap.is_valid_heap());

  for (const TreeMapping* map :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&naive)}) {
    MemorySystem pms(*map);
    for (const auto& access : accesses) pms.access(access);
    EXPECT_EQ(pms.round_stats().count(), accesses.size()) << map->name();
    EXPECT_GE(pms.total_rounds(), accesses.size()) << map->name();
  }

  // COLOR specifically: every heap path is one round.
  MemorySystem cf(color);
  for (const auto& access : accesses) {
    EXPECT_EQ(cf.access(access).rounds, 1u);
  }
}

TEST(Integration, RangeIndexThroughTraceAndLatency) {
  std::vector<RangeIndex::Key> keys;
  for (int i = 0; i < 700; ++i) keys.push_back(2 * i + 1);
  const RangeIndex index(keys);
  const auto map = make_optimal_color_mapping(index.tree(), 15);

  std::vector<std::vector<Node>> accesses;
  for (int q = 0; q < 50; ++q) {
    const auto result = index.query(10 * q, 10 * q + 200);
    if (!result.accessed.empty()) accesses.push_back(result.accessed);
  }
  ASSERT_FALSE(accesses.empty());
  const Workload workload{std::move(accesses)};
  const Trace trace = run_traced(map, workload);
  const auto est = LatencyModel{}.estimate(trace);
  EXPECT_GT(est.total_ns, 0u);
  EXPECT_GE(est.overhead_factor(), 1.0);
  // Theorem 6 guarantees a bounded overhead: 4D/M + c rounds on D-node
  // queries, far below the D-round serialization a conflict-blind layout
  // can hit.
  EXPECT_LT(est.overhead_factor(), 60.0);
}

TEST(Integration, VerdictsComposeAcrossMappings) {
  const CompleteBinaryTree tree(10);
  const ColorMapping color(tree, 5, 2);
  Rng rng(11);
  const PermutedMapping shuffled = PermutedMapping::shuffled(color, rng);
  // Permutation preserves all the theorem verdicts.
  EXPECT_TRUE(verify_cf_elementary(shuffled, 3, 5).ok);
  EXPECT_TRUE(verify_optimality_witness(shuffled, 5, 2).ok);
}

}  // namespace
}  // namespace pmtree
