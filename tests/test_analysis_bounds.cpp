#include "pmtree/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmtree {
namespace {

TEST(Bounds, CfModulesMatchesPaperExamples) {
  // N + K - k with K = 2^k - 1.
  EXPECT_EQ(bounds::cf_modules(4, 2), 5u);   // 4 + 3 - 2
  EXPECT_EQ(bounds::cf_modules(6, 3), 10u);  // 6 + 7 - 3
  EXPECT_EQ(bounds::cf_modules(3, 1), 3u);   // 3 + 1 - 1
}

TEST(Bounds, CfModulesFullMatchesTwoMMinusLogM) {
  // 2M - ceil(log2 M): the Section 4 corollary.
  EXPECT_EQ(bounds::cf_modules_full(7), 11u);    // 14 - 3
  EXPECT_EQ(bounds::cf_modules_full(15), 26u);   // 30 - 4
  EXPECT_EQ(bounds::cf_modules_full(31), 57u);   // 62 - 5
}

TEST(Bounds, CfModulesFullConsistentWithSection4Instantiation) {
  // Using N = 2^{m-1} + m - 1 and k = m - 1, cf_modules(N, k) must equal
  // M = 2^m - 1, i.e. cf access to S(M), P(M) via 2M - log M modules seen
  // from the other side.
  for (std::uint32_t m = 2; m <= 10; ++m) {
    const std::uint32_t N = static_cast<std::uint32_t>(pow2(m - 1)) + m - 1;
    EXPECT_EQ(bounds::cf_modules(N, m - 1), tree_size(m)) << "m=" << m;
  }
}

TEST(Bounds, TrivialLowerBound) {
  EXPECT_EQ(bounds::trivial_lower(7, 7), 0u);
  EXPECT_EQ(bounds::trivial_lower(8, 7), 1u);
  EXPECT_EQ(bounds::trivial_lower(70, 7), 9u);
}

TEST(Bounds, ColorOversizedBounds) {
  EXPECT_EQ(bounds::color_path_bound(7, 7), 1u);      // 2*1 - 1
  EXPECT_EQ(bounds::color_path_bound(70, 7), 19u);    // 2*10 - 1
  EXPECT_EQ(bounds::color_level_bound(70, 7), 40u);   // 4*10
  EXPECT_EQ(bounds::color_subtree_bound(63, 7), 35u); // 4*9 - 1
  EXPECT_EQ(bounds::color_composite_bound(70, 7, 3), 43u);
}

TEST(Bounds, LabelTreeScales) {
  EXPECT_NEAR(bounds::label_tree_m_scale(64), std::sqrt(64.0 / 6.0), 1e-9);
  EXPECT_NEAR(bounds::label_tree_d_scale(100, 64), 100.0 / std::sqrt(64.0 * 6.0),
              1e-9);
  // Monotone in M for fixed D (more modules, fewer conflicts).
  EXPECT_GT(bounds::label_tree_d_scale(1000, 15),
            bounds::label_tree_d_scale(1000, 255));
}

}  // namespace
}  // namespace pmtree
