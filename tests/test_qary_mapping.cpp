#include "pmtree/qary/qary_mapping.hpp"

#include <gtest/gtest.h>

namespace pmtree {
namespace {

struct QaryParams {
  std::uint32_t q;
  std::uint32_t levels;
};

class QaryMappings : public ::testing::TestWithParam<QaryParams> {};

TEST_P(QaryMappings, LevelModIsConflictFreeOnPaths) {
  const auto [q, levels] = GetParam();
  const QaryTree tree(q, levels);
  for (std::uint32_t M = 2; M <= levels; ++M) {
    const QaryLevelModMapping map(tree, M);
    EXPECT_EQ(evaluate_qary_paths(map, M), 0u) << "q=" << q << " M=" << M;
  }
}

TEST_P(QaryMappings, LevelModConflictsBeyondM) {
  const auto [q, levels] = GetParam();
  if (levels < 4) GTEST_SKIP();
  const QaryTree tree(q, levels);
  const QaryLevelModMapping map(tree, 3);
  EXPECT_EQ(evaluate_qary_paths(map, 4), 1u);
}

TEST_P(QaryMappings, BrickMappingIsCfOnAlignedSubtrees) {
  const auto [q, levels] = GetParam();
  const std::uint32_t t = 2;
  const QaryTree tree(q, levels);
  const QarySubtreeMapping map(tree, t);
  EXPECT_EQ(map.num_modules(), tree.subtree_size(t));
  EXPECT_EQ(evaluate_qary_aligned_subtrees(map, t, t), 0u);
  // Sub-brick aligned subtrees are rainbow too.
  EXPECT_EQ(evaluate_qary_aligned_subtrees(map, 1, t), 0u);
}

TEST_P(QaryMappings, BrickMappingConflictsOnUnalignedSubtrees) {
  // A subtree rooted at the last brick level has its q children at the
  // next brick's roots — all colored 0: unaligned access conflicts, which
  // is exactly why the refs' specialized constructions exist.
  const auto [q, levels] = GetParam();
  if (levels < 3) GTEST_SKIP();
  const QaryTree tree(q, levels);
  const QarySubtreeMapping map(tree, 2);
  EXPECT_GE(evaluate_qary_subtrees(map, 2), q - 1);
}

TEST_P(QaryMappings, ColorsWithinRange) {
  const auto [q, levels] = GetParam();
  const QaryTree tree(q, levels);
  const QarySubtreeMapping brick(tree, 2);
  const QaryModuloMapping mod(tree, 7);
  const QaryRandomMapping rnd(tree, 7, 3);
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      const QaryNode n{j, i};
      ASSERT_LT(brick.color_of(n), brick.num_modules());
      ASSERT_LT(mod.color_of(n), 7u);
      ASSERT_LT(rnd.color_of(n), 7u);
    }
  }
}

TEST_P(QaryMappings, ModuloIsPerfectOnLevelRuns) {
  const auto [q, levels] = GetParam();
  const QaryTree tree(q, levels);
  const QaryModuloMapping map(tree, 5);
  EXPECT_EQ(evaluate_qary_level_runs(map, 5), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QaryMappings,
                         ::testing::Values(QaryParams{2, 6}, QaryParams{3, 5},
                                           QaryParams{4, 4}, QaryParams{5, 4}),
                         [](const auto& param_info) {
                           return "q" + std::to_string(param_info.param.q) +
                                  "_L" + std::to_string(param_info.param.levels);
                         });

TEST(QaryConflicts, CountsMultiplicity) {
  const QaryTree tree(3, 3);
  const QaryLevelModMapping map(tree, 2);
  // Nodes at levels 0 and 2 share color 0.
  const std::vector<QaryNode> nodes{QaryNode{0, 0}, QaryNode{2, 4},
                                    QaryNode{1, 1}};
  EXPECT_EQ(qary_conflicts(map, nodes), 1u);
  EXPECT_EQ(qary_conflicts(map, {}), 0u);
}

TEST(QaryBrick, ColorIsBfsPositionInsideBrick) {
  const QaryTree tree(3, 4);
  const QarySubtreeMapping map(tree, 2);
  // Level 0 (brick root): color 0. Level 1: children at positions 1..3.
  EXPECT_EQ(map.color_of(QaryNode{0, 0}), 0u);
  EXPECT_EQ(map.color_of(QaryNode{1, 0}), 1u);
  EXPECT_EQ(map.color_of(QaryNode{1, 2}), 3u);
  // Level 2 starts new bricks: roots color 0 again.
  EXPECT_EQ(map.color_of(QaryNode{2, 0}), 0u);
  EXPECT_EQ(map.color_of(QaryNode{2, 5}), 0u);
  // Level 3: child c of brick root r has color 1 + c.
  EXPECT_EQ(map.color_of(QaryNode{3, 4}), 2u);  // child 1 of root index 1
}

}  // namespace
}  // namespace pmtree
