// Randomized property sweeps for COLOR: for random (H, N, k)
// configurations drawn from a seeded stream, the structural properties
// must hold on sampled instances. These complement the exhaustive sweeps
// with breadth across the parameter space.
#include <gtest/gtest.h>

#include <set>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/templates/sampler.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

struct RandomConfig {
  std::uint32_t H, N, k;
};

RandomConfig draw_config(Rng& rng) {
  const auto k = static_cast<std::uint32_t>(rng.between(1, 5));
  const auto N = static_cast<std::uint32_t>(rng.between(k + 1, k + 8));
  const auto H = static_cast<std::uint32_t>(rng.between(N, 26));
  return {H, N, k};
}

class ColorRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColorRandomized, SampledSubtreesAndPathsAreConflictFree) {
  Rng rng(GetParam());
  for (int cfg_trial = 0; cfg_trial < 8; ++cfg_trial) {
    const RandomConfig cfg = draw_config(rng);
    const CompleteBinaryTree tree(cfg.H);
    const ColorMapping map(tree, cfg.N, cfg.k);
    for (int t = 0; t < 50; ++t) {
      const auto s = sample_subtree(tree, tree_size(cfg.k), rng);
      ASSERT_TRUE(s.has_value());
      ASSERT_EQ(conflicts(map, s->nodes()), 0u)
          << "H=" << cfg.H << " N=" << cfg.N << " k=" << cfg.k << " subtree at "
          << to_string(s->root);
      const auto p = sample_path(tree, cfg.N, rng);
      ASSERT_TRUE(p.has_value());
      ASSERT_EQ(conflicts(map, p->nodes()), 0u)
          << "H=" << cfg.H << " N=" << cfg.N << " k=" << cfg.k << " path at "
          << to_string(p->start);
    }
  }
}

TEST_P(ColorRandomized, RetrievalModesAgreeOnRandomNodes) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int cfg_trial = 0; cfg_trial < 6; ++cfg_trial) {
    const RandomConfig cfg = draw_config(rng);
    const CompleteBinaryTree tree(cfg.H);
    const ColorMapping lazy(tree, cfg.N, cfg.k);
    const ColorMapping fast(tree, cfg.N, cfg.k, internal::GammaVariant::kCorrect,
                            ColorMapping::Retrieval::kBlockTable);
    for (int t = 0; t < 300; ++t) {
      const Node n = node_at(rng.below(tree.size()));
      ASSERT_EQ(lazy.color_of(n), fast.color_of(n))
          << "H=" << cfg.H << " N=" << cfg.N << " k=" << cfg.k << " "
          << to_string(n);
    }
  }
}

TEST_P(ColorRandomized, SubPathsOfCfPathsAreRainbow) {
  // Any sub-path of a conflict-free path family instance is itself
  // rainbow — monotonicity the library's users rely on when accessing
  // partial paths (e.g. a heap sift that stops early).
  Rng rng(GetParam() ^ 0x55aa);
  const RandomConfig cfg = draw_config(rng);
  const CompleteBinaryTree tree(cfg.H);
  const ColorMapping map(tree, cfg.N, cfg.k);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t len = rng.between(1, cfg.N);
    const auto p = sample_path(tree, len, rng);
    ASSERT_TRUE(p.has_value());
    ASSERT_EQ(conflicts(map, p->nodes()), 0u) << to_string(p->start);
  }
}

TEST_P(ColorRandomized, EveryModuleIsEventuallyUsed) {
  Rng rng(GetParam() ^ 0x1234);
  const RandomConfig cfg = draw_config(rng);
  const CompleteBinaryTree tree(cfg.H);
  const ColorMapping map(tree, cfg.N, cfg.k);
  std::set<Color> seen;
  // The top block alone uses every color (Sigma plus the whole Gamma).
  for (std::uint32_t j = 0; j < std::min(cfg.N, tree.levels()); ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      seen.insert(map.color_of(v(i, j)));
    }
  }
  EXPECT_EQ(seen.size(), map.num_modules());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorRandomized,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace pmtree
