// Bench harness helpers (bench/bench_common.hpp): the median estimator
// (odd N = middle element, even N = mean of the two middles — the
// upper-middle-only form was biased high), median_wall_seconds's
// invocation contract (warmup + max(trials, 1) timed runs, setup before
// every body), and print_experiment's PMTREE_BENCH_CSV path join
// (trailing-slash directories must not produce "dir//file.csv"-style
// surprises, and an unwritable directory must warn, not silently drop
// the CSV).
#include "../bench/bench_common.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace pmtree::bench {
namespace {

TEST(MedianOf, OddCountTakesTheMiddleElement) {
  EXPECT_DOUBLE_EQ(median_of({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({9.0, 1.0, 5.0, 7.0, 3.0}), 5.0);
}

TEST(MedianOf, EvenCountAveragesTheTwoMiddles) {
  EXPECT_DOUBLE_EQ(median_of({1.0, 2.0}), 1.5);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  // The regression this fixes: the upper middle alone would say 3.0.
  EXPECT_DOUBLE_EQ(median_of({1.0, 1.0, 3.0, 100.0}), 2.0);
}

TEST(MedianWallSeconds, RunsWarmupPlusTrialsWithSetupBeforeEveryBody) {
  int setups = 0;
  int bodies = 0;
  const double got = median_wall_seconds(
      /*warmup=*/2, /*trials=*/5, [&] { ++setups; },
      [&] {
        EXPECT_EQ(setups, bodies + 1) << "setup must precede every body";
        ++bodies;
      });
  EXPECT_EQ(bodies, 7);  // 2 warmup + 5 timed
  EXPECT_EQ(setups, 7);
  EXPECT_GE(got, 0.0);
}

TEST(MedianWallSeconds, ZeroTrialsBehavesAsOne) {
  int bodies = 0;
  const double got = median_wall_seconds(0, 0, [&] { ++bodies; });
  EXPECT_EQ(bodies, 1);
  EXPECT_GE(got, 0.0);
}

class BenchCsvEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prior = std::getenv("PMTREE_BENCH_CSV");
    if (prior != nullptr) prior_ = prior;
    dir_ = ::testing::TempDir() + "pmtree_bench_csv_test";
    std::remove((dir_ + "/E99_test.csv").c_str());
    (void)::mkdir(dir_.c_str(), 0755);
  }
  void TearDown() override {
    if (prior_.empty()) {
      ::unsetenv("PMTREE_BENCH_CSV");
    } else {
      ::setenv("PMTREE_BENCH_CSV", prior_.c_str(), 1);
    }
  }
  std::string dir_;
  std::string prior_;
};

TEST_F(BenchCsvEnv, TrailingSlashDirectoryProducesTheSameCsvPath) {
  TableWriter table({"k", "v"});
  table.row(1, 2);

  ::setenv("PMTREE_BENCH_CSV", (dir_ + "/").c_str(), 1);
  print_experiment("E99 test", "csv path join", table);
  std::ifstream with_slash(dir_ + "/E99_test.csv");
  EXPECT_TRUE(with_slash.good()) << "trailing '/' broke the path join";

  std::remove((dir_ + "/E99_test.csv").c_str());
  ::setenv("PMTREE_BENCH_CSV", dir_.c_str(), 1);
  print_experiment("E99 test", "csv path join", table);
  std::ifstream without_slash(dir_ + "/E99_test.csv");
  EXPECT_TRUE(without_slash.good());
}

TEST_F(BenchCsvEnv, MissingDirectoryWarnsOnStderrInsteadOfSilence) {
  TableWriter table({"k", "v"});
  table.row(1, 2);
  ::setenv("PMTREE_BENCH_CSV", (dir_ + "/does_not_exist").c_str(), 1);
  ::testing::internal::CaptureStderr();
  print_experiment("E99 test", "csv warn", table);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("cannot write"), std::string::npos)
      << "a failed CSV export must be reported, got: " << err;
}

}  // namespace
}  // namespace pmtree::bench
