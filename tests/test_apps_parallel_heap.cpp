#include "pmtree/apps/parallel_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

TEST(ParallelHeap, InsertExtractSortsAnySequence) {
  ParallelHeap heap(8);
  Rng rng(21);
  std::vector<ParallelHeap::Key> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(static_cast<ParallelHeap::Key>(rng.below(1000)));
    heap.insert(keys.back());
    ASSERT_TRUE(heap.is_valid_heap());
  }
  std::sort(keys.begin(), keys.end());
  for (const auto expected : keys) {
    ParallelHeap::Key out = 0;
    heap.extract_min(&out);
    EXPECT_EQ(out, expected);
    ASSERT_TRUE(heap.is_valid_heap());
  }
  EXPECT_EQ(heap.size(), 0u);
}

TEST(ParallelHeap, MinPeeksWithoutRemoval) {
  ParallelHeap heap(4);
  EXPECT_FALSE(heap.min().has_value());
  heap.insert(5);
  heap.insert(3);
  heap.insert(9);
  EXPECT_EQ(heap.min(), 3);
  EXPECT_EQ(heap.size(), 3u);
}

TEST(ParallelHeap, DecreaseKeyRestoresOrder) {
  ParallelHeap heap(5);
  for (ParallelHeap::Key k = 10; k < 20; ++k) heap.insert(k);
  // Slot 9 holds key 19 (inserted in increasing order, no sifting).
  heap.decrease_key(9, 1);
  EXPECT_TRUE(heap.is_valid_heap());
  EXPECT_EQ(heap.min(), 1);
}

TEST(ParallelHeap, AccessesAreAscendingRootPaths) {
  ParallelHeap heap(6);
  for (int i = 0; i < 40; ++i) {
    const auto path = heap.insert(100 - i);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), v(0, 0));
    for (std::size_t t = 1; t < path.size(); ++t) {
      EXPECT_EQ(path[t], parent(path[t - 1]));
    }
  }
}

TEST(ParallelHeap, ExtractMinReportsLastSlotPath) {
  ParallelHeap heap(6);
  for (int i = 0; i < 10; ++i) heap.insert(i);
  ParallelHeap::Key out = 0;
  const auto path = heap.extract_min(&out);
  EXPECT_EQ(out, 0);
  // Before extraction size was 10; the vacated slot is BFS position 9.
  EXPECT_EQ(path.front(), node_at(9));
  EXPECT_EQ(path.back(), v(0, 0));
}

TEST(ParallelHeap, OperationsAreConflictFreeUnderColor) {
  // The paper's headline application: heap path accesses are single-round
  // under a CF mapping of matching path length.
  const std::uint32_t levels = 9;
  ParallelHeap heap(levels);
  const ColorMapping map(heap.tree(), levels, 3);  // CF on P(levels)
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const auto path = heap.insert(static_cast<ParallelHeap::Key>(rng.below(1u << 20)));
    EXPECT_EQ(conflicts(map, path), 0u);
  }
  for (int i = 0; i < 100; ++i) {
    ParallelHeap::Key out;
    const auto path = heap.extract_min(&out);
    EXPECT_EQ(conflicts(map, path), 0u);
  }
}

TEST(ParallelHeap, FromKeysHeapifiesInLinearTime) {
  Rng rng(33);
  std::vector<ParallelHeap::Key> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(static_cast<ParallelHeap::Key>(rng.below(10000)));
  }
  ParallelHeap heap = ParallelHeap::from_keys(10, keys);
  EXPECT_EQ(heap.size(), keys.size());
  EXPECT_TRUE(heap.is_valid_heap());

  std::sort(keys.begin(), keys.end());
  for (const auto expected : keys) {
    ParallelHeap::Key out;
    heap.extract_min(&out);
    ASSERT_EQ(out, expected);
  }
}

TEST(ParallelHeap, FromKeysEmptyAndSingleton) {
  ParallelHeap empty = ParallelHeap::from_keys(4, {});
  EXPECT_EQ(empty.size(), 0u);
  ParallelHeap one = ParallelHeap::from_keys(4, {9});
  EXPECT_EQ(one.min(), 9);
}

TEST(ParallelHeap, CapacityMatchesTreeSize) {
  ParallelHeap heap(5);
  EXPECT_EQ(heap.capacity(), 31u);
  EXPECT_EQ(heap.tree().levels(), 5u);
}

}  // namespace
}  // namespace pmtree
