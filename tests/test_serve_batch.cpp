// BatchFormer unit tests: the coalescing kernel (sort, dedup, maximal
// per-level runs) and the cut policy (node threshold, wait budget,
// oversized requests).
#include "pmtree/serve/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "pmtree/serve/admission.hpp"
#include "pmtree/serve/request.hpp"

namespace pmtree::serve {
namespace {

Request make_request(std::uint64_t seq, std::uint64_t submit,
                     std::vector<Node> nodes) {
  Request r;
  r.client = 0;
  r.seq = seq;
  r.submit_cycle = submit;
  r.nodes = std::move(nodes);
  return r;
}

TEST(BatchCoalesce, SortsDedupsAndFindsMaximalRuns) {
  std::vector<Node> nodes{v(5, 3), v(2, 3), v(3, 3), v(2, 3), v(0, 0),
                          v(6, 3)};
  const CompositeInstance c = BatchFormer::coalesce(nodes);

  // Deduped and in (level, index) order.
  const std::vector<Node> want{v(0, 0), v(2, 3), v(3, 3), v(5, 3), v(6, 3)};
  EXPECT_EQ(nodes, want);

  // Maximal runs: {root}, {v(2..3, 3)}, {v(5..6, 3)} — a C(5, 3).
  ASSERT_EQ(c.component_count(), 3u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_TRUE(c.is_disjoint());
  const auto* run0 = c.parts()[0].get_if<LevelRunInstance>();
  const auto* run1 = c.parts()[1].get_if<LevelRunInstance>();
  const auto* run2 = c.parts()[2].get_if<LevelRunInstance>();
  ASSERT_NE(run0, nullptr);
  ASSERT_NE(run1, nullptr);
  ASSERT_NE(run2, nullptr);
  EXPECT_EQ(run0->first, v(0, 0));
  EXPECT_EQ(run0->size, 1u);
  EXPECT_EQ(run1->first, v(2, 3));
  EXPECT_EQ(run1->size, 2u);
  EXPECT_EQ(run2->first, v(5, 3));
  EXPECT_EQ(run2->size, 2u);
  // The composite's flattened node order matches the deduped input.
  EXPECT_EQ(c.nodes(), want);
}

TEST(BatchCoalesce, RunsNeverSpanLevels) {
  // v(3, 2) is the last node of level 2; v(0, 3) is BFS-adjacent but on
  // the next level — they must form two runs, not one.
  std::vector<Node> nodes{v(3, 2), v(0, 3)};
  const CompositeInstance c = BatchFormer::coalesce(nodes);
  ASSERT_EQ(c.component_count(), 2u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(BatchCoalesce, EmptyInputYieldsEmptyComposite) {
  std::vector<Node> nodes;
  const CompositeInstance c = BatchFormer::coalesce(nodes);
  EXPECT_EQ(c.component_count(), 0u);
  EXPECT_EQ(c.size(), 0u);
}

TEST(BatchFormer, HoldsUntilWaitBudgetElapses) {
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 1000,
                                 .max_wait_cycles = 5});
  const std::vector<Request> requests{
      make_request(0, 0, {v(0, 0)}),
      make_request(1, 2, {v(0, 1), v(1, 1)}),
  };
  ASSERT_EQ(admission.offer(0, requests[0], 0),
            AdmissionController::Decision::kAdmitted);
  ASSERT_EQ(admission.offer(1, requests[1], 2),
            AdmissionController::Decision::kAdmitted);

  // Oldest waited 4 < 5: nothing cuts.
  EXPECT_TRUE(former.form(4, admission).empty());
  EXPECT_EQ(admission.pending_count(), 2u);

  // At 5, the wait budget elapses and both ride one batch.
  const auto batches = former.form(5, admission);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].formed_cycle, 5u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(batches[0].requested_nodes, 3u);
  EXPECT_EQ(batches[0].nodes.size(), 3u);
  EXPECT_EQ(batches[0].coalesced_nodes(), 0u);
  EXPECT_TRUE(admission.idle());
  EXPECT_EQ(admission.pending_node_count(), 0u);
}

TEST(BatchFormer, CutsOnNodeThresholdAndRespectsCap) {
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 4, .max_wait_cycles = 100});
  const std::vector<Request> requests{
      make_request(0, 0, {v(0, 2), v(1, 2)}),
      make_request(1, 0, {v(2, 2), v(3, 2)}),
      make_request(2, 0, {v(0, 3), v(1, 3)}),
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
  }

  // 6 pending nodes >= 4: one batch cuts, capped at 4 nodes (two
  // requests); the 2-node remainder is below both triggers and waits.
  const auto batches = former.form(0, admission);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(batches[0].nodes.size(), 4u);
  EXPECT_EQ(admission.pending_count(), 1u);
  EXPECT_EQ(admission.pending_node_count(), 2u);

  // The straggler cuts once its wait budget elapses.
  const auto later = former.form(100, admission);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].id, 1u);
  EXPECT_EQ(later[0].members, (std::vector<std::size_t>{2}));
}

TEST(BatchFormer, OversizedRequestDispatchesAlone) {
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 2, .max_wait_cycles = 0});
  std::vector<Node> big;
  for (std::uint64_t i = 0; i < 7; ++i) big.push_back(v(i, 3));
  const std::vector<Request> requests{
      make_request(0, 0, std::move(big)),
      make_request(1, 0, {v(0, 1)}),
  };
  ASSERT_EQ(admission.offer(0, requests[0], 0),
            AdmissionController::Decision::kAdmitted);
  ASSERT_EQ(admission.offer(1, requests[1], 0),
            AdmissionController::Decision::kAdmitted);

  // max_wait 0 flushes everything this tick: the oversized request is its
  // own batch (never split, never starved); the small one follows.
  const auto batches = former.form(0, admission);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0}));
  EXPECT_EQ(batches[0].nodes.size(), 7u);
  ASSERT_EQ(batches[0].decomposition.component_count(), 1u);  // one L(7) run
  EXPECT_EQ(batches[1].members, (std::vector<std::size_t>{1}));
}

TEST(BatchFormer, WaitBudgetCountsFromAdmissionNotSubmission) {
  // Regression: a caller promoted out of the blocked queue long after its
  // submit cycle has only just become batchable. Measuring the wait from
  // submit_cycle would see the whole blocked time as already-elapsed
  // budget and cut an undersized batch on the promotion tick.
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 1000,
                                 .max_wait_cycles = 5});
  const Request old = make_request(0, /*submit=*/0, {v(0, 0)});
  // Offered (think: promoted) at tick 50 — 50 cycles after submission.
  ASSERT_EQ(admission.offer(0, old, 50),
            AdmissionController::Decision::kAdmitted);
  ASSERT_EQ(admission.pending().front().admitted_cycle, 50u);

  // Submit-based waiting would cut here (54 - 0 >= 5). Admission-based
  // waiting holds: only 4 of the 5-cycle window have elapsed.
  EXPECT_TRUE(former.form(54, admission).empty());
  EXPECT_EQ(admission.pending_count(), 1u);

  const auto batches = former.form(55, admission);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(admission.idle());
}

TEST(BatchFormer, ExactlyFullRequestIsNotOversized) {
  // A request of exactly max_batch_nodes nodes fills one batch to the
  // brim; the next request starts a fresh batch rather than overflowing.
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 3, .max_wait_cycles = 0});
  const std::vector<Request> requests{
      make_request(0, 0, {v(0, 3), v(1, 3), v(2, 3)}),
      make_request(1, 0, {v(0, 1)}),
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
  }
  const auto batches = former.form(0, admission);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0}));
  EXPECT_EQ(batches[0].nodes.size(), 3u);
  EXPECT_EQ(batches[1].members, (std::vector<std::size_t>{1}));
  EXPECT_EQ(admission.pending_node_count(), 0u);
}

TEST(BatchFormer, OversizedRequestBehindSmallOnesWaitsItsTurn) {
  // FIFO is never reordered around an oversized request: the small
  // requests ahead of it share a capped batch, then the oversized one
  // dispatches alone, members strictly in admission order.
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 4, .max_wait_cycles = 0});
  std::vector<Node> big;
  for (std::uint64_t i = 0; i < 9; ++i) big.push_back(v(i, 4));
  const std::vector<Request> requests{
      make_request(0, 0, {v(0, 1)}),
      make_request(1, 0, {v(1, 1)}),
      make_request(2, 0, std::move(big)),
      make_request(3, 0, {v(0, 2)}),
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
  }
  const auto batches = former.form(0, admission);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(batches[1].members, (std::vector<std::size_t>{2}));
  EXPECT_EQ(batches[1].nodes.size(), 9u);
  EXPECT_EQ(batches[2].members, (std::vector<std::size_t>{3}));
  EXPECT_EQ(admission.pending_node_count(), 0u);
}

TEST(BatchFormer, DuplicateLookupsCoalesce) {
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 64, .max_wait_cycles = 0});
  // Three clients hitting the same hot path.
  const std::vector<Node> path{v(0, 0), v(1, 1), v(2, 2)};
  const std::vector<Request> requests{
      make_request(0, 0, path),
      make_request(1, 0, path),
      make_request(2, 0, path),
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
  }
  const auto batches = former.form(0, admission);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].requested_nodes, 9u);
  EXPECT_EQ(batches[0].nodes.size(), 3u);  // the union is one path
  EXPECT_EQ(batches[0].coalesced_nodes(), 6u);
}

TEST(BatchFormer, NextBatchCostMatchesWhatFormOneTakes) {
  // The DRR peek and the actual cut run the same fill walk: across a
  // mixed queue (small, oversized, empty payloads), every peeked cost
  // equals the next batch's pre-dedup node count exactly.
  AdmissionController admission(AdmissionOptions{});
  BatchFormer former(BatchPolicy{.max_batch_nodes = 4, .max_wait_cycles = 0});
  const std::vector<Request> requests{
      make_request(0, 0, {v(0, 2), v(1, 2)}),
      make_request(1, 0, {}),  // empty payload joins the same batch
      make_request(2, 0, {v(0, 3), v(1, 3), v(2, 3), v(3, 3), v(4, 3)}),
      make_request(3, 0, {v(0, 1)}),
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
  }
  std::vector<FormedBatch> batches;
  while (former.due(0, admission)) {
    const std::uint64_t cost = former.next_batch_cost(admission);
    FormedBatch batch = former.form_one(0, admission);
    EXPECT_EQ(batch.requested_nodes, cost) << "batch " << batch.id;
    batches.push_back(std::move(batch));
  }
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(batches[1].members, (std::vector<std::size_t>{2}));  // oversized
  EXPECT_EQ(batches[2].members, (std::vector<std::size_t>{3}));
  EXPECT_EQ(admission.pending_count(), 0u);
}

TEST(BatchFormer, FormIsEquivalentToDueGatedFormOneLoop) {
  // Two identical queues, one drained by form(), one by the metered
  // while(due) form_one() loop the forest's DRR uses: batch-for-batch
  // identical output (ids, members, nodes, stamps).
  const std::vector<Request> requests{
      make_request(0, 0, {v(0, 2), v(1, 2)}),
      make_request(1, 1, {v(2, 2)}),
      make_request(2, 3, {v(0, 4), v(1, 4), v(2, 4)}),
      make_request(3, 3, {v(5, 3)}),
  };
  const BatchPolicy policy{.max_batch_nodes = 3, .max_wait_cycles = 2};
  AdmissionController bulk_admission(AdmissionOptions{});
  AdmissionController metered_admission(AdmissionOptions{});
  BatchFormer bulk(policy);
  BatchFormer metered(policy);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(bulk_admission.offer(i, requests[i], requests[i].submit_cycle),
              AdmissionController::Decision::kAdmitted);
    ASSERT_EQ(
        metered_admission.offer(i, requests[i], requests[i].submit_cycle),
        AdmissionController::Decision::kAdmitted);
  }
  for (std::uint64_t now = 3; now <= 6; ++now) {
    const std::vector<FormedBatch> want = bulk.form(now, bulk_admission);
    std::vector<FormedBatch> got;
    while (metered.due(now, metered_admission)) {
      got.push_back(metered.form_one(now, metered_admission));
    }
    ASSERT_EQ(got.size(), want.size()) << "now=" << now;
    for (std::size_t b = 0; b < got.size(); ++b) {
      EXPECT_EQ(got[b].id, want[b].id);
      EXPECT_EQ(got[b].members, want[b].members);
      EXPECT_EQ(got[b].nodes, want[b].nodes);
      EXPECT_EQ(got[b].formed_cycle, want[b].formed_cycle);
      EXPECT_EQ(got[b].requested_nodes, want[b].requested_nodes);
    }
  }
  EXPECT_EQ(bulk_admission.pending_count(), metered_admission.pending_count());
}

TEST(BatchFormer, FormOneIsFormOneRawPlusCoalesce) {
  // The staged pipeline cuts with form_one_raw() on the control plane and
  // coalesces on a worker; the oracle cuts with form_one(). Same queue,
  // both drains: identical ids, membership, stamps, cost accounting and
  // (after coalescing the raw node set) identical node unions and
  // decompositions.
  const std::vector<Request> requests{
      make_request(0, 0, {v(2, 3), v(3, 3), v(2, 3)}),  // duplicate inside
      make_request(1, 0, {v(5, 3), v(4, 3)}),           // out of order
      make_request(2, 0, {}),
      make_request(3, 0, {v(0, 1), v(0, 0)}),
  };
  AdmissionController oracle_admission(AdmissionOptions{});
  AdmissionController raw_admission(AdmissionOptions{});
  const BatchPolicy policy{.max_batch_nodes = 5, .max_wait_cycles = 0};
  BatchFormer oracle(policy);
  BatchFormer raw(policy);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(oracle_admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
    ASSERT_EQ(raw_admission.offer(i, requests[i], 0),
              AdmissionController::Decision::kAdmitted);
  }
  while (oracle.due(0, oracle_admission)) {
    ASSERT_TRUE(raw.due(0, raw_admission));
    const FormedBatch want = oracle.form_one(0, oracle_admission);
    FormedBatch got = raw.form_one_raw(0, raw_admission);
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.formed_cycle, want.formed_cycle);
    EXPECT_EQ(got.members, want.members);
    EXPECT_EQ(got.requested_nodes, want.requested_nodes);
    // Raw leaves the fill-order node list (duplicates included) and an
    // empty decomposition; coalescing finishes the job.
    EXPECT_EQ(got.nodes.size(), got.requested_nodes);
    EXPECT_EQ(got.decomposition.component_count(), 0u);
    got.decomposition = BatchFormer::coalesce(got.nodes);
    EXPECT_EQ(got.nodes, want.nodes);
    EXPECT_EQ(got.decomposition.nodes(), want.decomposition.nodes());
    EXPECT_EQ(got.decomposition.component_count(),
              want.decomposition.component_count());
    EXPECT_EQ(raw_admission.pending_count(), oracle_admission.pending_count());
    EXPECT_EQ(raw_admission.pending_node_count(),
              oracle_admission.pending_node_count());
  }
  EXPECT_FALSE(raw.due(0, raw_admission));
}

/// Independent reference for coalesce(): Node-struct sort, dedup, maximal
/// same-level consecutive runs.
void expect_coalesce_matches_reference(std::vector<Node> nodes) {
  std::vector<Node> want = nodes;
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  std::vector<std::pair<Node, std::uint64_t>> runs;
  std::size_t i = 0;
  while (i < want.size()) {
    std::size_t j = i + 1;
    while (j < want.size() && want[j].level == want[i].level &&
           want[j].index == want[i].index + (j - i)) {
      ++j;
    }
    runs.emplace_back(want[i], j - i);
    i = j;
  }

  const CompositeInstance c = BatchFormer::coalesce(nodes);
  ASSERT_EQ(nodes, want);
  ASSERT_EQ(c.component_count(), runs.size());
  for (std::size_t k = 0; k < runs.size(); ++k) {
    const auto* run = c.parts()[k].get_if<LevelRunInstance>();
    ASSERT_NE(run, nullptr) << k;
    EXPECT_EQ(run->first, runs[k].first) << k;
    EXPECT_EQ(run->size, runs[k].second) << k;
  }
}

/// Raw Node constructor: coalesce() is a pure function of (level, index)
/// pairs, so the borderline inputs below deliberately sidestep v()'s
/// index-fits-the-level assertion (deep q-ary / array-backed trees mint
/// coordinates complete binary trees cannot).
Node raw_node(std::uint64_t index, std::uint32_t level) {
  return Node{level, index};
}

TEST(BatchCoalesce, PackedFastPathAndFallbackAgreeWithReference) {
  // Packable inputs (level < 2^16, index < 2^48) take the sorted-u64
  // fast path; any node beyond either bound falls back to the Node-struct
  // sort. Both must implement the same function — pinned here against an
  // independent reference, including the exact packability borders.
  const std::uint64_t kMaxPackedIndex = (std::uint64_t{1} << 48) - 1;
  const std::uint32_t kMaxPackedLevel = (std::uint32_t{1} << 16) - 1;

  // Packed path, borderline values included: runs at the top of the
  // packable index range must not carry into the level bits.
  expect_coalesce_matches_reference(
      {raw_node(kMaxPackedIndex, kMaxPackedLevel),
       raw_node(kMaxPackedIndex - 1, 7), raw_node(kMaxPackedIndex, 7),
       raw_node(0, kMaxPackedLevel), raw_node(1, 2), raw_node(2, 2),
       raw_node(1, 2)});

  // Fallback: a level past the packable range...
  expect_coalesce_matches_reference(
      {raw_node(3, kMaxPackedLevel + 1), raw_node(2, kMaxPackedLevel + 1),
       raw_node(5, 3), raw_node(4, 3), raw_node(4, 3)});
  // ...and an index past it.
  expect_coalesce_matches_reference(
      {raw_node(kMaxPackedIndex + 1, 60), raw_node(kMaxPackedIndex + 2, 60),
       raw_node(kMaxPackedIndex + 1, 60), raw_node(0, 0)});

  // One unpackable node poisons the whole batch onto the fallback; the
  // packable majority must still coalesce identically.
  expect_coalesce_matches_reference(
      {raw_node(8, 5), raw_node(9, 5), raw_node(10, 5),
       raw_node(kMaxPackedIndex + 7, 50), raw_node(8, 5)});
}

TEST(BatchCoalesce, RandomizedPackedInputsMatchReference) {
  // Dense random draws force long runs, duplicate collapses and
  // cross-level adjacency through the packed path.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Node> nodes;
    const std::size_t count = next(40);
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint32_t level = static_cast<std::uint32_t>(next(4));
      nodes.push_back(raw_node(next(12), level));
    }
    expect_coalesce_matches_reference(std::move(nodes));
  }
}

TEST(BatchFormer, NextBatchCostIsZeroOnlyForEmptyOrAllEmptyQueues) {
  AdmissionController admission(AdmissionOptions{});
  const BatchFormer former(
      BatchPolicy{.max_batch_nodes = 8, .max_wait_cycles = 0});
  EXPECT_EQ(former.next_batch_cost(admission), 0u);
  EXPECT_FALSE(former.due(0, admission));

  // A queue holding only empty payloads is due (wait budget 0) at zero
  // cost — the forest's DRR must always afford it, so it cannot wedge.
  const Request empty = make_request(0, 0, {});
  ASSERT_EQ(admission.offer(0, empty, 0),
            AdmissionController::Decision::kAdmitted);
  EXPECT_TRUE(former.due(0, admission));
  EXPECT_EQ(former.next_batch_cost(admission), 0u);
}

}  // namespace
}  // namespace pmtree::serve
