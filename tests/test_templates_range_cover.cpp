#include "pmtree/templates/range_cover.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

/// Leaves covered by a subtree instance, as an inclusive leaf-index range.
std::pair<std::uint64_t, std::uint64_t> leaf_span(const CompleteBinaryTree& tree,
                                                  const SubtreeInstance& s) {
  const std::uint32_t down = tree.levels() - 1 - s.root.level;
  return {s.root.index << down, ((s.root.index + 1) << down) - 1};
}

TEST(SubtreeCover, CoversExactlyTheRange) {
  const CompleteBinaryTree tree(6);  // 32 leaves
  for (std::uint64_t lo = 0; lo < tree.num_leaves(); lo += 3) {
    for (std::uint64_t hi = lo; hi < tree.num_leaves(); hi += 5) {
      const auto cover = subtree_cover(tree, lo, hi);
      std::set<std::uint64_t> covered;
      for (const auto& s : cover) {
        EXPECT_TRUE(s.fits(tree));
        const auto [a, b] = leaf_span(tree, s);
        for (std::uint64_t leaf = a; leaf <= b; ++leaf) {
          EXPECT_TRUE(covered.insert(leaf).second) << "overlap at leaf " << leaf;
        }
      }
      EXPECT_EQ(covered.size(), hi - lo + 1);
      EXPECT_EQ(*covered.begin(), lo);
      EXPECT_EQ(*covered.rbegin(), hi);
    }
  }
}

TEST(SubtreeCover, SizeIsLogarithmic) {
  const CompleteBinaryTree tree(12);
  for (std::uint64_t lo : {0ull, 1ull, 700ull, 1025ull}) {
    for (std::uint64_t hi : {lo, lo + 1, lo + 333, tree.num_leaves() - 1}) {
      if (hi < lo || hi >= tree.num_leaves()) continue;
      const auto cover = subtree_cover(tree, lo, hi);
      EXPECT_LE(cover.size(), 2u * (tree.levels() - 1));
    }
  }
}

TEST(SubtreeCover, FullRangeIsOneTree) {
  const CompleteBinaryTree tree(5);
  const auto cover = subtree_cover(tree, 0, tree.num_leaves() - 1);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].root, tree.root());
  EXPECT_EQ(cover[0].size, tree.size());
}

TEST(SubtreeCover, SingleLeaf) {
  const CompleteBinaryTree tree(5);
  const auto cover = subtree_cover(tree, 5, 5);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].root, v(5, 4));
  EXPECT_EQ(cover[0].size, 1u);
}

TEST(SubtreeCover, OrderedLeftToRight) {
  const CompleteBinaryTree tree(8);
  const auto cover = subtree_cover(tree, 3, 97);
  for (std::size_t i = 1; i < cover.size(); ++i) {
    EXPECT_LT(leaf_span(tree, cover[i - 1]).second, leaf_span(tree, cover[i]).first);
  }
}

TEST(RangeQueryTemplate, ComponentsAreDisjointAndFit) {
  const CompleteBinaryTree tree(8);
  for (std::uint64_t lo = 0; lo < tree.num_leaves(); lo += 17) {
    for (std::uint64_t hi = lo; hi < tree.num_leaves(); hi += 23) {
      const auto composite = range_query_template(tree, lo, hi);
      EXPECT_TRUE(composite.fits(tree)) << lo << ".." << hi;
      EXPECT_TRUE(composite.is_disjoint()) << lo << ".." << hi;
    }
  }
}

TEST(RangeQueryTemplate, PathComponentsBoundedByHeight) {
  // Paper §1.1: "a path of cardinality no larger than the height".
  const CompleteBinaryTree tree(10);
  const auto composite = range_query_template(tree, 100, 407);
  std::uint64_t path_components = 0;
  for (const auto& part : composite.parts()) {
    if (part.kind() == TemplateKind::kPath) {
      path_components += 1;
      EXPECT_LE(part.size(), tree.levels());
    }
  }
  EXPECT_LE(path_components, 2u);
  EXPECT_GE(path_components, 1u);
}

TEST(RangeQueryTemplate, IncludesAncestorsOfBoundarySubtrees) {
  const CompleteBinaryTree tree(6);
  const auto composite = range_query_template(tree, 7, 20);
  // The root is always on the left search path.
  bool saw_root = false;
  for (const Node& n : composite.nodes()) {
    if (n == tree.root()) saw_root = true;
  }
  EXPECT_TRUE(saw_root);
}

}  // namespace
}  // namespace pmtree
