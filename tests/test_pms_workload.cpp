#include "pmtree/pms/workload.hpp"

#include <gtest/gtest.h>

#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(Workload, SubtreesHaveRequestedShape) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::subtrees(tree, 7, 100, 1);
  ASSERT_EQ(wl.size(), 100u);
  for (const auto& access : wl.accesses()) {
    EXPECT_EQ(access.size(), 7u);
  }
}

TEST(Workload, PathsAscend) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::paths(tree, 6, 50, 2);
  ASSERT_EQ(wl.size(), 50u);
  for (const auto& access : wl.accesses()) {
    ASSERT_EQ(access.size(), 6u);
    for (std::size_t i = 1; i < access.size(); ++i) {
      EXPECT_EQ(access[i], parent(access[i - 1]));
    }
  }
}

TEST(Workload, LevelRunsStayInOneLevel) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::level_runs(tree, 9, 50, 3);
  for (const auto& access : wl.accesses()) {
    ASSERT_EQ(access.size(), 9u);
    for (const Node& n : access) EXPECT_EQ(n.level, access.front().level);
  }
}

TEST(Workload, MixedProducesAllKinds) {
  const CompleteBinaryTree tree(12);
  const auto wl = Workload::mixed(tree, 7, 300, 4);
  EXPECT_GT(wl.size(), 250u);
  bool saw_level_spread = false;  // subtree or path: multiple levels
  bool saw_single_level = false;
  for (const auto& access : wl.accesses()) {
    bool single = true;
    for (const Node& n : access) single &= n.level == access.front().level;
    (single ? saw_single_level : saw_level_spread) = true;
  }
  EXPECT_TRUE(saw_level_spread);
  EXPECT_TRUE(saw_single_level);
}

TEST(Workload, CompositesHonorSpec) {
  const CompleteBinaryTree tree(12);
  const auto wl = Workload::composites(tree, 60, 4, 30, 5);
  EXPECT_GT(wl.size(), 0u);
  for (const auto& access : wl.accesses()) {
    EXPECT_EQ(access.size(), 60u);
  }
}

TEST(Workload, RangeQueriesAreNonEmptyAndBounded) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::range_queries(tree, 100, 50, 6);
  ASSERT_EQ(wl.size(), 50u);
  for (const auto& access : wl.accesses()) {
    EXPECT_GT(access.size(), 0u);
    // The cover's subtrees hold < 2*width nodes in total (each subtree has
    // more leaves than internal nodes); plus two boundary search paths.
    EXPECT_LE(access.size(), 2u * 100u + 4u * tree.levels());
  }
}

TEST(Workload, DeterministicUnderSeed) {
  const CompleteBinaryTree tree(10);
  const auto a = Workload::mixed(tree, 7, 50, 42);
  const auto b = Workload::mixed(tree, 7, 50, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace pmtree
