#include "pmtree/pms/workload.hpp"

#include <gtest/gtest.h>

#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(Workload, SubtreesHaveRequestedShape) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::subtrees(tree, 7, 100, 1);
  ASSERT_EQ(wl.size(), 100u);
  for (const auto& access : wl.accesses()) {
    EXPECT_EQ(access.size(), 7u);
  }
}

TEST(Workload, PathsAscend) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::paths(tree, 6, 50, 2);
  ASSERT_EQ(wl.size(), 50u);
  for (const auto& access : wl.accesses()) {
    ASSERT_EQ(access.size(), 6u);
    for (std::size_t i = 1; i < access.size(); ++i) {
      EXPECT_EQ(access[i], parent(access[i - 1]));
    }
  }
}

TEST(Workload, LevelRunsStayInOneLevel) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::level_runs(tree, 9, 50, 3);
  for (const auto& access : wl.accesses()) {
    ASSERT_EQ(access.size(), 9u);
    for (const Node& n : access) EXPECT_EQ(n.level, access.front().level);
  }
}

TEST(Workload, MixedProducesAllKinds) {
  const CompleteBinaryTree tree(12);
  const auto wl = Workload::mixed(tree, 7, 300, 4);
  EXPECT_GT(wl.size(), 250u);
  bool saw_level_spread = false;  // subtree or path: multiple levels
  bool saw_single_level = false;
  for (const auto& access : wl.accesses()) {
    bool single = true;
    for (const Node& n : access) single &= n.level == access.front().level;
    (single ? saw_single_level : saw_level_spread) = true;
  }
  EXPECT_TRUE(saw_level_spread);
  EXPECT_TRUE(saw_single_level);
}

TEST(Workload, CompositesHonorSpec) {
  const CompleteBinaryTree tree(12);
  const auto wl = Workload::composites(tree, 60, 4, 30, 5);
  EXPECT_GT(wl.size(), 0u);
  for (const auto& access : wl.accesses()) {
    EXPECT_EQ(access.size(), 60u);
  }
}

TEST(Workload, RangeQueriesAreNonEmptyAndBounded) {
  const CompleteBinaryTree tree(10);
  const auto wl = Workload::range_queries(tree, 100, 50, 6);
  ASSERT_EQ(wl.size(), 50u);
  for (const auto& access : wl.accesses()) {
    EXPECT_GT(access.size(), 0u);
    // The cover's subtrees hold < 2*width nodes in total (each subtree has
    // more leaves than internal nodes); plus two boundary search paths.
    EXPECT_LE(access.size(), 2u * 100u + 4u * tree.levels());
  }
}

TEST(Workload, CountZeroYieldsEmptyWorkloads) {
  const CompleteBinaryTree tree(8);
  EXPECT_EQ(Workload::subtrees(tree, 7, 0, 1).size(), 0u);
  EXPECT_EQ(Workload::paths(tree, 4, 0, 1).size(), 0u);
  EXPECT_EQ(Workload::level_runs(tree, 4, 0, 1).size(), 0u);
  EXPECT_EQ(Workload::mixed(tree, 7, 0, 1).size(), 0u);
  EXPECT_EQ(Workload::composites(tree, 12, 3, 0, 1).size(), 0u);
  EXPECT_EQ(Workload::range_queries(tree, 8, 0, 1).size(), 0u);
}

TEST(Workload, OversizedTemplatesYieldEmptyNotUB) {
  // K larger than the tree (or not a valid subtree size at all) must give
  // a well-formed empty workload, never an assert/out-of-range sample.
  const CompleteBinaryTree tree(4);  // 15 nodes, 8 leaves
  EXPECT_EQ(Workload::subtrees(tree, 31, 10, 1).size(), 0u);   // K > size
  EXPECT_EQ(Workload::subtrees(tree, 10, 10, 1).size(), 0u);   // not 2^t-1
  EXPECT_EQ(Workload::subtrees(tree, 0, 10, 1).size(), 0u);
  EXPECT_EQ(Workload::paths(tree, 5, 10, 1).size(), 0u);       // K > levels
  EXPECT_EQ(Workload::paths(tree, 0, 10, 1).size(), 0u);
  EXPECT_EQ(Workload::level_runs(tree, 9, 10, 1).size(), 0u);  // K > leaves
  EXPECT_EQ(Workload::level_runs(tree, 0, 10, 1).size(), 0u);
  EXPECT_EQ(Workload::mixed(tree, 0, 10, 1).size(), 0u);
  // D > size/2 exceeds the composite sampler's rejection budget.
  EXPECT_EQ(Workload::composites(tree, 100, 3, 10, 1).size(), 0u);
  EXPECT_EQ(Workload::composites(tree, 3, 0, 10, 1).size(), 0u);  // c == 0
  EXPECT_EQ(Workload::range_queries(tree, 0, 10, 1).size(), 0u);
}

TEST(Workload, MixedOversizedKDegradesGracefully) {
  // K beyond every template family still produces valid accesses: each
  // component is rounded down to what fits (subtree -> largest 2^t - 1,
  // path -> levels, level run -> empty for K > leaves).
  const CompleteBinaryTree tree(4);
  const auto wl = Workload::mixed(tree, 1000, 60, 9);
  for (const auto& access : wl.accesses()) {
    ASSERT_FALSE(access.empty());
    for (const Node& n : access) EXPECT_TRUE(tree.contains(n));
  }
}

TEST(Workload, SingleNodeTree) {
  const CompleteBinaryTree tree(1);
  const auto subtree = Workload::subtrees(tree, 1, 10, 1);
  ASSERT_EQ(subtree.size(), 10u);
  for (const auto& access : subtree.accesses()) {
    ASSERT_EQ(access.size(), 1u);
    EXPECT_EQ(access.front(), tree.root());
  }
  const auto path = Workload::paths(tree, 1, 5, 1);
  ASSERT_EQ(path.size(), 5u);
  const auto runs = Workload::level_runs(tree, 1, 5, 1);
  ASSERT_EQ(runs.size(), 5u);
  const auto ranges = Workload::range_queries(tree, 4, 5, 1);
  ASSERT_EQ(ranges.size(), 5u);
  for (const auto& access : ranges.accesses()) {
    for (const Node& n : access) EXPECT_TRUE(tree.contains(n));
  }
  EXPECT_EQ(Workload::paths(tree, 2, 5, 1).size(), 0u);  // no 2-node path
}

TEST(Workload, DeterministicUnderSeed) {
  const CompleteBinaryTree tree(10);
  const auto a = Workload::mixed(tree, 7, 50, 42);
  const auto b = Workload::mixed(tree, 7, 50, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace pmtree
