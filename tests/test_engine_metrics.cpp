// Property tests for the observability layer: histogram quantiles must
// bracket the true sample quantiles of known distributions within the
// documented (1 + 2^-sub_bits) relative error, and JSON snapshots of a
// MetricsRegistry must round-trip losslessly.
#include "pmtree/engine/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "pmtree/engine/histogram.hpp"
#include "pmtree/engine/json.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using engine::Histogram;
using engine::Json;
using engine::MetricsRegistry;

/// Exact sample quantile: the ceil(q*n)-th smallest value.
std::uint64_t true_quantile(std::vector<std::uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::max<std::size_t>(rank, 1) - 1];
}

void check_brackets(const Histogram& h, const std::vector<std::uint64_t>& values) {
  const double rel = 1.0 + 1.0 / static_cast<double>(1u << h.sub_bits());
  for (const double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    const std::uint64_t truth = true_quantile(values, q);
    const std::uint64_t reported = h.value_at_quantile(q);
    EXPECT_GE(reported, truth) << "q=" << q;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(truth) * rel + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, QuantilesBracketUniformDistribution) {
  Rng rng(404);
  std::vector<std::uint64_t> values;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.below(100000);
    values.push_back(v);
    h.record(v);
  }
  ASSERT_EQ(h.count(), values.size());
  check_brackets(h, values);
}

TEST(Histogram, QuantilesBracketHeavyTailedDistribution) {
  // Latency-shaped data: mostly small with a power-law tail.
  Rng rng(808);
  std::vector<std::uint64_t> values;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t shift = static_cast<std::uint32_t>(rng.below(20));
    const std::uint64_t v = rng.below((std::uint64_t{1} << shift) + 1);
    values.push_back(v);
    h.record(v);
  }
  check_brackets(h, values);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2^(sub_bits+1) get unit buckets: quantiles are exact.
  Histogram h;  // sub_bits = 5 -> exact below 64
  std::vector<std::uint64_t> values;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(64);
    values.push_back(v);
    h.record(v);
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(h.value_at_quantile(q), true_quantile(values, q)) << "q=" << q;
  }
  EXPECT_EQ(h.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(h.max(), *std::max_element(values.begin(), values.end()));
}

TEST(Histogram, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
  h.record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 777u);
  // One sample: every quantile reports (a bucket edge clamped to) it.
  EXPECT_EQ(h.value_at_quantile(0.0), 777u);
  EXPECT_EQ(h.value_at_quantile(1.0), 777u);
}

TEST(Histogram, QuantileEndpointsPinToExactMinAndMax) {
  // Interior quantiles report bucket upper edges (bounded relative
  // error); the endpoints are exact: q=0 is the recorded minimum and q=1
  // the recorded maximum, not their buckets' edges.
  Histogram h;
  for (const std::uint64_t v : {1000003u, 1500000u, 1999999u}) h.record(v);
  EXPECT_EQ(h.value_at_quantile(0.0), 1000003u);
  EXPECT_EQ(h.value_at_quantile(1.0), 1999999u);
  EXPECT_EQ(h.value_at_quantile(-0.5), 1000003u);  // clamped below
  EXPECT_EQ(h.value_at_quantile(1.5), 1999999u);   // clamped above
  // Interior quantiles still bracket from above.
  EXPECT_GE(h.value_at_quantile(0.5), 1500000u);
}

TEST(Histogram, SumSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  // Two near-max samples: a wrapping sum would land near zero and poison
  // every derived mean; the histogram saturates at uint64 max instead.
  Histogram h;
  h.record(kMax - 1);
  h.record(kMax - 1);
  EXPECT_EQ(h.sum(), kMax);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), kMax - 1);

  // record(value, count) saturates in the multiply as well.
  Histogram weighted;
  weighted.record(kMax / 2, 5);
  EXPECT_EQ(weighted.sum(), kMax);

  // Merging saturated histograms stays saturated.
  h.merge(weighted);
  EXPECT_EQ(h.sum(), kMax);
  EXPECT_EQ(h.count(), 7u);
}

TEST(Histogram, EmptyHistogramSurvivesRegistryJsonRoundTrip) {
  // Regression: an empty histogram's min() is the UINT64_MAX sentinel. A
  // naive restore would take the snapshot's "min": 0 literally, turning
  // the restored histogram's min() into 0 — distinguishable from a real
  // recording. The restore path must keep count==0 histograms pristine.
  MetricsRegistry registry;
  registry.histogram("empty.latency");
  registry.counter("runs").add(1);

  const auto text = registry.to_json().dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto back = MetricsRegistry::from_json(*parsed);
  ASSERT_TRUE(back.has_value());

  const Histogram* h = back->find_histogram("empty.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->empty());
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), ~std::uint64_t{0});  // sentinel preserved
  EXPECT_EQ(h->max(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  // A value recorded after the round-trip sets min exactly as on a fresh
  // histogram — the sentinel wasn't clobbered to 0.
  Histogram fresh = *h;
  fresh.record(41);
  EXPECT_EQ(fresh.min(), 41u);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Rng rng(5);
  Histogram a, b, combined;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.below(10000);
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.value_at_quantile(q), combined.value_at_quantile(q));
  }
}

TEST(Histogram, RestoreFromBucketsPreservesQuantiles) {
  Rng rng(99);
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.record(rng.below(1u << 20));
  const Histogram back =
      Histogram::restore(h.sub_bits(), h.buckets(), h.min(), h.max(), h.sum());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());
  EXPECT_EQ(back.sum(), h.sum());
  for (const double q : {0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(back.value_at_quantile(q), h.value_at_quantile(q)) << "q=" << q;
  }
}

TEST(Json, ValueRoundTrips) {
  Json obj = Json::object();
  obj.set("name", Json("engine \"demo\"\nline2"));
  obj.set("count", Json(std::uint64_t{12345678901}));
  obj.set("ratio", Json(0.375));
  obj.set("ok", Json(true));
  obj.set("missing", Json());
  Json arr = Json::array();
  for (int i = 0; i < 5; ++i) arr.push_back(Json(i * 7));
  obj.set("values", std::move(arr));

  for (const int indent : {0, 2}) {
    const auto parsed = Json::parse(obj.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(*parsed, obj);
  }
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"unterminated",
        "[1] trailing"}) {
    EXPECT_FALSE(Json::parse(bad).has_value()) << bad;
  }
}

TEST(MetricsRegistry, SnapshotRoundTripsThroughJsonText) {
  MetricsRegistry reg;
  reg.counter("engine.requests").add(4096);
  reg.counter("engine.cycles").add(123);
  reg.gauge("engine.queue_high_water").set(17);
  reg.gauge("engine.queue_high_water").set(9);  // high water stays 17
  Rng rng(21);
  Histogram& lat = reg.histogram("engine.latency");
  for (int i = 0; i < 5000; ++i) lat.record(rng.below(4096));

  const std::string text = reg.to_json().dump(2);
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto back = MetricsRegistry::from_json(*parsed);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->find_counter("engine.requests")->value(), 4096u);
  EXPECT_EQ(back->find_counter("engine.cycles")->value(), 123u);
  EXPECT_EQ(back->find_gauge("engine.queue_high_water")->value(), 9);
  EXPECT_EQ(back->find_gauge("engine.queue_high_water")->high_water(), 17);
  const Histogram* h = back->find_histogram("engine.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), lat.count());
  EXPECT_EQ(h->min(), lat.min());
  EXPECT_EQ(h->max(), lat.max());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(h->value_at_quantile(q), lat.value_at_quantile(q));
  }
  // And the re-serialized snapshot is byte-identical: export order is
  // name-sorted, so the trip is a fixed point.
  EXPECT_EQ(back->to_json().dump(2), text);
}

TEST(MetricsRegistry, FromJsonRejectsWrongShape) {
  EXPECT_FALSE(MetricsRegistry::from_json(Json(1.0)).has_value());
  EXPECT_FALSE(MetricsRegistry::from_json(Json::object()).has_value());
  const auto parsed = Json::parse(
      R"({"counters":{},"gauges":{},"histograms":{"h":{"sub_bits":5}}})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(MetricsRegistry::from_json(*parsed).has_value());
}

TEST(MetricsRegistry, InstrumentsAreStableAndIdempotent) {
  MetricsRegistry reg;
  engine::Counter& c1 = reg.counter("x");
  c1.add(3);
  EXPECT_EQ(&reg.counter("x"), &c1);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

}  // namespace
}  // namespace pmtree
