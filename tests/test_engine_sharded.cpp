// ShardedEngineRunner contract tests: the partition is deterministic,
// every shard's trajectory is exactly the scalar engine's on its
// sub-workload, the merged fold follows the documented semantics, and —
// the PR-2 rule applied to the engine — results are bit-identical at
// every thread count (pinned at 1/2/8; TSan runs this file too, see
// tests/run_sanitizers.sh).
#include "pmtree/engine/sharded.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "pmtree/engine/engine.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineOptions;
using engine::EngineResult;
using engine::Histogram;
using engine::ShardedEngineRunner;
using engine::ShardedOptions;
using engine::ShardedResult;

void expect_same_histogram(const Histogram& got, const Histogram& want) {
  ASSERT_EQ(got.count(), want.count());
  ASSERT_EQ(got.sum(), want.sum());
  ASSERT_EQ(got.min(), want.min());
  ASSERT_EQ(got.max(), want.max());
  const auto gb = got.buckets();
  const auto wb = want.buckets();
  ASSERT_EQ(gb.size(), wb.size());
  for (std::size_t i = 0; i < gb.size(); ++i) {
    ASSERT_EQ(gb[i].upper, wb[i].upper) << "bucket " << i;
    ASSERT_EQ(gb[i].count, wb[i].count) << "bucket " << i;
  }
}

void expect_same_result(const EngineResult& got, const EngineResult& want) {
  ASSERT_EQ(got.accesses, want.accesses);
  ASSERT_EQ(got.requests, want.requests);
  ASSERT_EQ(got.completion_cycle, want.completion_cycle);
  ASSERT_EQ(got.busy_cycles, want.busy_cycles);
  ASSERT_EQ(got.served, want.served);
  ASSERT_EQ(got.queue_high_water, want.queue_high_water);
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    ASSERT_EQ(got.records[i].id, want.records[i].id) << "access " << i;
    ASSERT_EQ(got.records[i].requests, want.records[i].requests);
    ASSERT_EQ(got.records[i].arrival, want.records[i].arrival);
    ASSERT_EQ(got.records[i].completion, want.records[i].completion);
  }
  expect_same_histogram(got.latency, want.latency);
  expect_same_histogram(got.queue_depth, want.queue_depth);
}

TEST(ShardedEngine, PartitionIsRoundRobinAndDeterministic) {
  const CompleteBinaryTree tree(8);
  const Workload workload = Workload::mixed(tree, 7, 23, 42);
  const auto parts = ShardedEngineRunner::partition(workload, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (std::size_t j = 0; j < parts[s].size(); ++j) {
      ASSERT_EQ(parts[s][j], workload[j * 4 + s]) << "shard " << s;
    }
    total += parts[s].size();
  }
  ASSERT_EQ(total, workload.size());
  // shards == 0 behaves as 1.
  const auto one = ShardedEngineRunner::partition(workload, 0);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(one[0].size(), workload.size());
}

TEST(ShardedEngine, SingleShardReproducesScalarEngineExactly) {
  const CompleteBinaryTree tree(10);
  const ColorMapping map = make_optimal_color_mapping(tree, 15);
  const Workload workload = Workload::mixed(tree, 7, 80, 9);
  const CycleEngine scalar(map);
  const ShardedEngineRunner runner(map);
  for (const auto& schedule :
       {ArrivalSchedule::all_at_once(), ArrivalSchedule::serialized(),
        ArrivalSchedule::bursty(8, 4)}) {
    SCOPED_TRACE(schedule.name());
    ShardedOptions opts;
    opts.shards = 1;
    opts.threads = 2;
    const ShardedResult sharded = runner.run(workload, schedule, opts);
    const EngineResult want = scalar.run(workload, schedule);
    expect_same_result(sharded.merged, want);
    ASSERT_EQ(sharded.shards.size(), 1u);
    expect_same_result(sharded.shards[0], want);
  }
}

TEST(ShardedEngine, BitIdenticalAtEveryThreadCount) {
  // The headline contract: for each shard count, runs at 1/2/8 threads
  // produce byte-for-byte identical per-shard and merged results.
  const CompleteBinaryTree tree(11);
  const ColorMapping map = make_optimal_color_mapping(tree, 15);
  const Workload workload = Workload::mixed(tree, 15, 120, 77);
  const ShardedEngineRunner runner(map);
  const ArrivalSchedule schedule = ArrivalSchedule::bursty(16, 8);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedOptions base;
    base.shards = shards;
    base.threads = 1;
    const ShardedResult want = runner.run(workload, schedule, base);
    for (const unsigned threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ShardedOptions opts = base;
      opts.threads = threads;
      const ShardedResult got = runner.run(workload, schedule, opts);
      expect_same_result(got.merged, want.merged);
      ASSERT_EQ(got.shards.size(), want.shards.size());
      for (std::size_t s = 0; s < got.shards.size(); ++s) {
        SCOPED_TRACE("shard=" + std::to_string(s));
        expect_same_result(got.shards[s], want.shards[s]);
      }
    }
  }
}

TEST(ShardedEngine, EachShardEqualsScalarEngineOnItsPartition) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 9);
  const Workload workload = Workload::mixed(tree, 7, 50, 3);
  const std::size_t shards = 4;
  const ShardedEngineRunner runner(map);
  ShardedOptions opts;
  opts.shards = shards;
  opts.threads = 8;
  const ArrivalSchedule schedule = ArrivalSchedule::fixed_rate(2);
  const ShardedResult got = runner.run(workload, schedule, opts);

  const auto parts = ShardedEngineRunner::partition(workload, shards);
  const CycleEngine scalar(map);
  for (std::size_t s = 0; s < shards; ++s) {
    SCOPED_TRACE("shard=" + std::to_string(s));
    expect_same_result(got.shards[s], scalar.run(parts[s], schedule));
  }
  // Merged records re-interleave to workload order with global ids.
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ASSERT_EQ(got.merged.records[i].id, i);
    ASSERT_EQ(got.merged.records[i].completion,
              got.shards[i % shards].records[i / shards].completion);
  }
}

TEST(ShardedEngine, MergedAggregatesFollowTheContract) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 9);
  const Workload workload = Workload::mixed(tree, 7, 64, 21);
  ShardedOptions opts;
  opts.shards = 5;
  opts.engine.sampling = EngineOptions::DepthSampling::kOff;
  const ShardedResult got = ShardedEngineRunner(map).run(
      workload, ArrivalSchedule::all_at_once(), opts);

  std::uint64_t accesses = 0, requests = 0, busy = 0, completion = 0;
  std::vector<std::uint64_t> served(map.num_modules(), 0);
  std::vector<std::uint64_t> high_water(map.num_modules(), 0);
  for (const EngineResult& shard : got.shards) {
    accesses += shard.accesses;
    requests += shard.requests;
    busy += shard.busy_cycles;
    completion = std::max(completion, shard.completion_cycle);
    for (std::size_t m = 0; m < served.size(); ++m) {
      served[m] += shard.served[m];
      high_water[m] = std::max(high_water[m], shard.queue_high_water[m]);
    }
  }
  EXPECT_EQ(got.merged.accesses, workload.size());
  EXPECT_EQ(got.merged.accesses, accesses);
  EXPECT_EQ(got.merged.requests, requests);
  EXPECT_EQ(got.merged.busy_cycles, busy);
  EXPECT_EQ(got.merged.completion_cycle, completion);
  EXPECT_EQ(got.merged.served, served);
  EXPECT_EQ(got.merged.queue_high_water, high_water);
  EXPECT_EQ(std::accumulate(served.begin(), served.end(), std::uint64_t{0}),
            requests);
  EXPECT_EQ(got.merged.latency.count(), accesses);
  EXPECT_TRUE(got.merged.queue_depth.empty());  // per-shard sampling off
}

TEST(ShardedEngine, DegenerateWorkloads) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  const ShardedEngineRunner runner(map);
  // More shards than accesses: trailing shards are empty runs.
  const Workload small = Workload::paths(tree, 4, 3, 1);
  ShardedOptions opts;
  opts.shards = 8;
  const ShardedResult got =
      runner.run(small, ArrivalSchedule::all_at_once(), opts);
  EXPECT_EQ(got.merged.accesses, 3u);
  EXPECT_EQ(got.shards[3].accesses, 0u);
  EXPECT_EQ(got.merged.records.size(), 3u);
  // Empty workload.
  const ShardedResult empty =
      runner.run(Workload{}, ArrivalSchedule::serialized(), opts);
  EXPECT_EQ(empty.merged.accesses, 0u);
  EXPECT_EQ(empty.merged.completion_cycle, 0u);
}

TEST(ShardedEngine, MetricsRegistryReceivesMergedTrajectory) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  const Workload workload = Workload::mixed(tree, 7, 60, 3);
  engine::MetricsRegistry registry;
  const ShardedEngineRunner runner(map, &registry, "fleet");
  ShardedOptions opts;
  opts.shards = 4;
  const ShardedResult got =
      runner.run(workload, ArrivalSchedule::all_at_once(), opts);
  ASSERT_NE(registry.find_counter("fleet.shards"), nullptr);
  EXPECT_EQ(registry.find_counter("fleet.shards")->value(), 4u);
  EXPECT_EQ(registry.find_counter("fleet.requests")->value(),
            got.merged.requests);
  EXPECT_EQ(registry.find_counter("fleet.cycles")->value(),
            got.merged.completion_cycle);
  ASSERT_NE(registry.find_histogram("fleet.latency"), nullptr);
  EXPECT_EQ(registry.find_histogram("fleet.latency")->count(),
            got.merged.accesses);
  EXPECT_EQ(static_cast<std::uint64_t>(
                registry.find_gauge("fleet.queue_high_water")->high_water()),
            got.merged.max_queue_depth());
}

}  // namespace
}  // namespace pmtree
