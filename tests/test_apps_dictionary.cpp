#include "pmtree/apps/dictionary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

std::vector<Dictionary::Key> distinct_sorted_keys(std::uint32_t levels,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::set<Dictionary::Key> keys;
  while (keys.size() < tree_size(levels)) {
    keys.insert(static_cast<Dictionary::Key>(rng.below(1u << 20)));
  }
  return {keys.begin(), keys.end()};
}

TEST(Dictionary, InorderRankClosedForm) {
  // Verify against an explicit recursive in-order traversal.
  const std::uint32_t levels = 5;
  std::vector<std::uint64_t> rank_of(tree_size(levels));
  std::uint64_t next = 0;
  auto walk = [&](auto&& self, Node n) -> void {
    if (n.level + 1 < levels) self(self, left_child(n));
    rank_of[bfs_id(n)] = next++;
    if (n.level + 1 < levels) self(self, right_child(n));
  };
  walk(walk, v(0, 0));
  for (std::uint64_t id = 0; id < tree_size(levels); ++id) {
    EXPECT_EQ(Dictionary::inorder_rank(node_at(id), levels), rank_of[id])
        << to_string(node_at(id));
  }
}

TEST(Dictionary, LayoutIsABinarySearchTree) {
  const auto keys = distinct_sorted_keys(6, 1);
  const Dictionary dict(keys);
  // Every node's key separates its left and right subtrees.
  for (std::uint64_t id = 0; id < dict.size(); ++id) {
    const Node n = node_at(id);
    if (dict.tree().is_leaf(n)) continue;
    const auto key = dict.key_at(n);
    EXPECT_LT(dict.key_at(left_child(n)), key);
    EXPECT_GT(dict.key_at(right_child(n)), key);
  }
}

TEST(Dictionary, SearchFindsEveryKey) {
  const auto keys = distinct_sorted_keys(7, 2);
  const Dictionary dict(keys);
  for (const auto key : keys) {
    const auto result = dict.search(key);
    EXPECT_TRUE(result.found) << key;
    EXPECT_EQ(dict.key_at(result.node), key);
  }
}

TEST(Dictionary, SearchMissesAbsentKeys) {
  const auto keys = distinct_sorted_keys(6, 3);
  const Dictionary dict(keys);
  Rng rng(4);
  int missed = 0;
  for (int q = 0; q < 200; ++q) {
    const auto probe = static_cast<Dictionary::Key>(rng.below(1u << 20));
    const bool present = std::binary_search(keys.begin(), keys.end(), probe);
    const auto result = dict.search(probe);
    EXPECT_EQ(result.found, present) << probe;
    missed += present ? 0 : 1;
  }
  EXPECT_GT(missed, 0);  // the probe space is much larger than the key set
}

TEST(Dictionary, SearchAccessesAFullRootToLeafPath) {
  const auto keys = distinct_sorted_keys(6, 5);
  const Dictionary dict(keys);
  const auto result = dict.search(keys[17]);
  ASSERT_EQ(result.accessed.size(), dict.tree().levels());
  EXPECT_EQ(result.accessed.front(), v(0, 0));
  for (std::size_t t = 1; t < result.accessed.size(); ++t) {
    EXPECT_EQ(parent(result.accessed[t]), result.accessed[t - 1]);
  }
  EXPECT_TRUE(dict.tree().is_leaf(result.accessed.back()));
}

TEST(Dictionary, SuccessorMatchesSortedOrder) {
  const auto keys = distinct_sorted_keys(6, 6);
  const Dictionary dict(keys);
  Rng rng(7);
  for (int q = 0; q < 300; ++q) {
    const auto probe = static_cast<Dictionary::Key>(rng.below(1u << 20));
    const auto it = std::lower_bound(keys.begin(), keys.end(), probe);
    const auto got = dict.successor(probe);
    if (it == keys.end()) {
      EXPECT_FALSE(got.has_value()) << probe;
    } else {
      ASSERT_TRUE(got.has_value()) << probe;
      EXPECT_EQ(*got, *it) << probe;
    }
  }
}

TEST(Dictionary, LookupsAreOneRoundUnderColor) {
  // The Section 1.1 claim realized: with a CF mapping of the path length,
  // a speculative parallel lookup costs a single memory round.
  const auto keys = distinct_sorted_keys(9, 8);
  const Dictionary dict(keys);
  const ColorMapping map(dict.tree(), dict.tree().levels(), 3);
  Rng rng(9);
  for (int q = 0; q < 200; ++q) {
    const auto probe = static_cast<Dictionary::Key>(rng.below(1u << 20));
    const auto result = dict.search(probe);
    EXPECT_EQ(conflicts(map, result.accessed), 0u);
  }
}

TEST(Dictionary, SingleNode) {
  const Dictionary dict({42});
  EXPECT_TRUE(dict.search(42).found);
  EXPECT_FALSE(dict.search(41).found);
  EXPECT_EQ(dict.successor(10), 42);
  EXPECT_FALSE(dict.successor(43).has_value());
}

}  // namespace
}  // namespace pmtree
