#include "pmtree/util/bits.hpp"

#include <gtest/gtest.h>

namespace pmtree {
namespace {

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), std::uint64_t{1} << 63);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(~std::uint64_t{0}), 63u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, FloorAndCeilLog2AgreeOnPowersOfTwo) {
  for (std::uint32_t e = 0; e < 63; ++e) {
    EXPECT_EQ(floor_log2(pow2(e)), e);
    EXPECT_EQ(ceil_log2(pow2(e)), e);
  }
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, IsTreeSize) {
  EXPECT_FALSE(is_tree_size(0));
  EXPECT_TRUE(is_tree_size(1));
  EXPECT_FALSE(is_tree_size(2));
  EXPECT_TRUE(is_tree_size(3));
  EXPECT_TRUE(is_tree_size(7));
  EXPECT_FALSE(is_tree_size(8));
  EXPECT_TRUE(is_tree_size((1ull << 20) - 1));
}

TEST(Bits, TreeLevelsAndSizeRoundTrip) {
  for (std::uint32_t levels = 1; levels <= 40; ++levels) {
    EXPECT_EQ(tree_levels(tree_size(levels)), levels);
  }
  EXPECT_EQ(tree_size(1), 1u);
  EXPECT_EQ(tree_size(3), 7u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

}  // namespace
}  // namespace pmtree
