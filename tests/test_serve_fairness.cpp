// Fairness invariants of the multi-tenant forest (DESIGN.md §13): the
// apportionment / capacity-planning / deficit-round-robin primitives in
// serve/fair.hpp, and the two isolation properties the forest promises —
// a saturating tenant's batch share converges to its DRR weight, and a
// tenant shedding on its own quota never causes another tenant to shed.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/serve/fair.hpp"
#include "pmtree/serve/forest.hpp"

namespace pmtree::serve {
namespace {

// ---- apportion -------------------------------------------------------

TEST(Apportion, SumsToTotalAndFollowsWeights) {
  const std::vector<std::uint32_t> shares = apportion(10, {1.0, 2.0, 2.0});
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), 0u), 10u);
  EXPECT_EQ(shares[0], 2u);
  EXPECT_EQ(shares[1], 4u);
  EXPECT_EQ(shares[2], 4u);
}

TEST(Apportion, LeftoverUnitsGoToLargestRemaindersLowIndexFirst) {
  // 7 * (1/3) = 2.33 each: everyone floors to 2, one leftover unit goes
  // to the lowest index among the tied remainders.
  const std::vector<std::uint32_t> shares = apportion(7, {1.0, 1.0, 1.0});
  EXPECT_EQ(shares, (std::vector<std::uint32_t>{3, 2, 2}));
}

TEST(Apportion, ZeroAndNonFiniteWeightsGetNothing) {
  const std::vector<std::uint32_t> shares =
      apportion(6, {0.0, 3.0, -2.0, 3.0});
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[2], 0u);
  EXPECT_EQ(shares[1], 3u);
  EXPECT_EQ(shares[3], 3u);
}

TEST(Apportion, AllZeroWeightsSplitUniformly) {
  const std::vector<std::uint32_t> shares = apportion(9, {0.0, 0.0, 0.0});
  EXPECT_EQ(shares, (std::vector<std::uint32_t>{3, 3, 3}));
}

TEST(Apportion, EmptyAndZeroTotalAreEmptyOrZero) {
  EXPECT_TRUE(apportion(5, {}).empty());
  EXPECT_EQ(apportion(0, {1.0, 2.0}),
            (std::vector<std::uint32_t>{0, 0}));
}

// ---- plan_capacity ---------------------------------------------------

TEST(CapacityPlan, EveryTenantGetsALaneEvenWhenOversubscribed) {
  // 2 replicas, 5 tenants: the pool grows to one lane each and records
  // the requested size instead of silently starving someone.
  const CapacityPlan plan = plan_capacity({1, 1, 1, 1, 1}, 2);
  ASSERT_EQ(plan.lanes.size(), 5u);
  for (const std::uint32_t lanes : plan.lanes) EXPECT_EQ(lanes, 1u);
  EXPECT_EQ(plan.total_lanes, 5u);
  EXPECT_EQ(plan.requested_replicas, 2u);
}

TEST(CapacityPlan, LaneRangesAreContiguousDisjointAndRateProportional) {
  const CapacityPlan plan = plan_capacity({1.0, 3.0}, 10);
  ASSERT_EQ(plan.lanes.size(), 2u);
  // 2 guaranteed lanes + 8 surplus split 1:3 -> 2:6 -> totals 3 and 7.
  EXPECT_EQ(plan.lanes[0], 3u);
  EXPECT_EQ(plan.lanes[1], 7u);
  EXPECT_EQ(plan.first_lane[0], 0u);
  EXPECT_EQ(plan.first_lane[1], 3u);
  EXPECT_EQ(plan.total_lanes, 10u);
  const Json j = plan.to_json();
  EXPECT_EQ(j.find("total_lanes")->as_uint(), 10u);
  ASSERT_NE(j.find("tenants"), nullptr);
  EXPECT_EQ(j.find("tenants")->items().size(), 2u);
}

// ---- DeficitRoundRobin ----------------------------------------------

TEST(DeficitRoundRobin, QuantaScaleWithWeightAndZeroBehavesAsOne) {
  DeficitRoundRobin drr({1, 3, 0}, 8);
  EXPECT_EQ(drr.quantum(0), 8u);
  EXPECT_EQ(drr.quantum(1), 24u);
  EXPECT_EQ(drr.quantum(2), 8u);
  EXPECT_EQ(drr.tenants(), 3u);
}

TEST(DeficitRoundRobin, AccruesSpendsAndForfeitsCredit) {
  DeficitRoundRobin drr({2}, 10);
  EXPECT_FALSE(drr.affords(0, 1));
  drr.begin_turn(0);
  EXPECT_EQ(drr.deficit(0), 20u);
  EXPECT_TRUE(drr.affords(0, 20));
  EXPECT_FALSE(drr.affords(0, 21));
  drr.spend(0, 15);
  EXPECT_EQ(drr.deficit(0), 5u);
  drr.begin_turn(0);
  EXPECT_EQ(drr.deficit(0), 25u);  // unspent credit carries while backlogged
  drr.reset(0);
  EXPECT_EQ(drr.deficit(0), 0u);  // ...and is forfeited when the queue empties
}

// ---- forest-level fairness properties --------------------------------

/// Two-tenant saturating scenario: both flood identical single-node
/// streams at cycle 0 and stay backlogged for a long contended interval.
ForestReport saturate(std::uint64_t weight_a, std::uint64_t weight_b,
                      std::size_t per_tenant, const CompleteBinaryTree& tree,
                      const ModuloMapping& mapping) {
  ForestOptions fopts;
  fopts.tick_cycles = 2;
  fopts.replicas = 2;
  fopts.drr_quantum_nodes = 8;
  Forest forest(fopts);
  for (const std::uint64_t w : {weight_a, weight_b}) {
    TenantOptions topts;
    topts.weight = w;
    topts.admission.queue_bound = 64;
    topts.admission.overflow = OverflowPolicy::kBlock;
    topts.batch.max_batch_nodes = 16;
    topts.batch.max_wait_cycles = 4096;  // size-driven cuts in the bulk
    forest.add_tenant(mapping, topts);
  }
  for (std::uint32_t tenant = 0; tenant < 2; ++tenant) {
    for (std::size_t i = 0; i < per_tenant; ++i) {
      Request r;
      r.client = 0;
      r.seq = i;
      r.submit_cycle = 0;
      r.nodes.push_back(v(i % pow2(tree.levels() - 1),
                          tree.levels() - 1));
      forest.submit(tenant, r);
    }
  }
  return forest.run();
}

/// Nodes tenant `i` dispatched in batches formed at or before `cutoff`.
std::uint64_t served_until(const ForestReport& report, std::size_t i,
                           std::uint64_t cutoff) {
  std::uint64_t nodes = 0;
  for (const FormedBatch& b : report.tenants[i].batches) {
    if (b.formed_cycle <= cutoff) nodes += b.requested_nodes;
  }
  return nodes;
}

TEST(ForestFairness, DrrBoundsBatchShareDeviationFromWeight) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping mapping(tree, 8);
  const ForestReport report = saturate(1, 3, 400, tree, mapping);

  // Both tenants are backlogged until their last batch: measure service
  // over the jointly-contended prefix. DRR promises each tenant's served
  // nodes track quantum*weight per tick within one batch + one quantum.
  const std::uint64_t cutoff =
      std::min(report.tenants[0].batches.back().formed_cycle,
               report.tenants[1].batches.back().formed_cycle);
  const double a = static_cast<double>(served_until(report, 0, cutoff));
  const double b = static_cast<double>(served_until(report, 1, cutoff));
  ASSERT_GT(a, 0.0);
  ASSERT_GT(b, 0.0);
  // Ideal ratio 3.0; slack covers the per-tenant one-batch-plus-one-
  // quantum deviation at both ends of the interval.
  EXPECT_GT(b / a, 2.0) << "b=" << b << " a=" << a;
  EXPECT_LT(b / a, 4.0) << "b=" << b << " a=" << a;
}

TEST(ForestFairness, EqualWeightsSplitServiceEvenly) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping mapping(tree, 8);
  const ForestReport report = saturate(2, 2, 300, tree, mapping);
  const std::uint64_t cutoff =
      std::min(report.tenants[0].batches.back().formed_cycle,
               report.tenants[1].batches.back().formed_cycle);
  const double a = static_cast<double>(served_until(report, 0, cutoff));
  const double b = static_cast<double>(served_until(report, 1, cutoff));
  ASSERT_GT(a, 0.0);
  EXPECT_GT(b / a, 0.75);
  EXPECT_LT(b / a, 1.33);
}

TEST(ForestFairness, QuotaShedTenantNeverCausesAnotherTenantShed) {
  // Tenant 0 floods a tiny kShed quota; tenant 1 runs a modest load well
  // under its own bound. The isolation invariant: every shed verdict is
  // attributable to the shedding tenant's own quota — tenant 1 must not
  // shed a single request, with the shared pool enabled and contended.
  const CompleteBinaryTree tree(7);
  const ModuloMapping mapping(tree, 5);
  ForestOptions fopts;
  fopts.tick_cycles = 2;
  fopts.global_queue_bound = 12;
  Forest forest(fopts);

  TenantOptions noisy;
  noisy.admission.queue_bound = 2;
  noisy.admission.overflow = OverflowPolicy::kShed;
  noisy.batch.max_batch_nodes = 4;
  noisy.batch.max_wait_cycles = 8;
  forest.add_tenant(mapping, noisy);

  TenantOptions steady;
  steady.admission.queue_bound = 32;
  steady.admission.overflow = OverflowPolicy::kShed;
  steady.batch.max_batch_nodes = 8;
  steady.batch.max_wait_cycles = 8;
  forest.add_tenant(mapping, steady);

  for (std::size_t i = 0; i < 200; ++i) {  // burst: all at cycle 0
    Request r;
    r.client = 0;
    r.seq = i;
    r.submit_cycle = 0;
    r.nodes.push_back(v(i % pow2(6), 6));
    forest.submit(0, r);
  }
  for (std::size_t i = 0; i < 40; ++i) {  // steady trickle
    Request r;
    r.client = 0;
    r.seq = i;
    r.submit_cycle = i * 2;
    r.nodes.push_back(v(i % pow2(6), 6));
    forest.submit(1, r);
  }

  const ForestReport report = forest.run();
  EXPECT_GT(report.tenants[0].count(RequestStatus::kShed), 0u)
      << "noisy tenant was expected to shed on its own quota";
  EXPECT_EQ(report.tenants[1].count(RequestStatus::kShed), 0u);
  EXPECT_EQ(report.tenants[1].count(RequestStatus::kOk), 40u);
}

TEST(ForestFairness, GlobalPoolExhaustionBlocksRatherThanSheds) {
  // A kShed tenant whose own queue bound is generous never sheds just
  // because the shared pool is full — pool exhaustion blocks, and the
  // blocked callers drain once capacity frees.
  const CompleteBinaryTree tree(7);
  const ModuloMapping mapping(tree, 5);
  ForestOptions fopts;
  fopts.tick_cycles = 2;
  fopts.global_queue_bound = 4;  // far below the offered burst
  Forest forest(fopts);

  TenantOptions topts;
  topts.admission.queue_bound = 512;  // own quota never trips
  topts.admission.overflow = OverflowPolicy::kShed;
  topts.batch.max_batch_nodes = 8;
  topts.batch.max_wait_cycles = 4;
  forest.add_tenant(mapping, topts);
  forest.add_tenant(mapping, topts);

  for (std::uint32_t tenant = 0; tenant < 2; ++tenant) {
    for (std::size_t i = 0; i < 100; ++i) {
      Request r;
      r.client = 0;
      r.seq = i;
      r.submit_cycle = 0;
      r.nodes.push_back(v(i % pow2(6), 6));
      forest.submit(tenant, r);
    }
  }
  const ForestReport report = forest.run();
  EXPECT_EQ(report.count(RequestStatus::kShed), 0u);
  EXPECT_EQ(report.count(RequestStatus::kOk), 200u);
}

TEST(ForestFairness, ReservedShareStaysAvailableUnderGlobalPressure) {
  // Tenant 1's reserved slice of the shared pool means a flooding tenant
  // 0 can borrow the pool but never starve tenant 1 out of service:
  // every tenant-1 request completes.
  const CompleteBinaryTree tree(7);
  const ModuloMapping mapping(tree, 5);
  ForestOptions fopts;
  fopts.tick_cycles = 2;
  fopts.global_queue_bound = 8;
  Forest forest(fopts);

  TenantOptions hog;
  hog.weight = 1;
  hog.admission.queue_bound = 256;
  hog.admission.overflow = OverflowPolicy::kBlock;
  hog.batch.max_batch_nodes = 8;
  hog.batch.max_wait_cycles = 8;
  forest.add_tenant(mapping, hog);

  TenantOptions light;
  light.weight = 1;
  light.admission.queue_bound = 16;
  light.admission.overflow = OverflowPolicy::kBlock;
  light.batch.max_batch_nodes = 4;
  light.batch.max_wait_cycles = 4;
  forest.add_tenant(mapping, light);

  for (std::size_t i = 0; i < 300; ++i) {
    Request r;
    r.client = 0;
    r.seq = i;
    r.submit_cycle = 0;
    r.nodes.push_back(v(i % pow2(6), 6));
    forest.submit(0, r);
  }
  for (std::size_t i = 0; i < 25; ++i) {
    Request r;
    r.client = 0;
    r.seq = i;
    r.submit_cycle = 10 + i * 4;
    r.nodes.push_back(v(i % pow2(6), 6));
    forest.submit(1, r);
  }
  const ForestReport report = forest.run();
  EXPECT_EQ(report.tenants[1].count(RequestStatus::kOk), 25u);
  EXPECT_EQ(report.tenants[0].count(RequestStatus::kOk), 300u);
}

TEST(ForestFairness, RollupReportsReservedSharesAndBatchShares) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  ForestOptions fopts;
  fopts.global_queue_bound = 10;
  Forest forest(fopts);
  TenantOptions a;
  a.weight = 1;
  TenantOptions b;
  b.weight = 4;
  forest.add_tenant(mapping, a);
  forest.add_tenant(mapping, b);
  for (std::uint32_t tenant = 0; tenant < 2; ++tenant) {
    Request r;
    r.client = 0;
    r.seq = 0;
    r.submit_cycle = 0;
    r.nodes.push_back(v(0, 0));
    forest.submit(tenant, r);
  }
  const ForestReport report = forest.run();
  const Json* tenants = report.metrics.find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->items().size(), 2u);
  // Weighted reserve: 10 slots split 1:4 = 2 and 8.
  EXPECT_EQ(tenants->items()[0].find("reserved")->as_uint(), 2u);
  EXPECT_EQ(tenants->items()[1].find("reserved")->as_uint(), 8u);
  double share_sum = 0.0;
  for (const Json& row : tenants->items()) {
    share_sum += row.find("batch_share")->as_number();
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace pmtree::serve
