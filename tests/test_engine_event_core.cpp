// Differential property tests for the event-driven CycleEngine core.
//
// The rebuilt hot loop (flat arena queues, active-module worklist, bulk
// cycle skipping — DESIGN.md §8) must reproduce the frozen PR-1 loop
// (ReferenceEngine) bit for bit: completion cycles, latencies, served
// counts, high-water marks, busy cycles, and — under full sampling — the
// queue-depth histogram, on randomized (mapping, workload, schedule)
// triples across every template family. EngineOptions may only change
// what is *observed* (depth samples), never the trajectory; strided
// sampling must be a deterministic function of (workload, schedule,
// stride), independent of how the engine chose to step.
#include "pmtree/engine/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "pmtree/engine/reference.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineOptions;
using engine::EngineResult;
using engine::Histogram;
using engine::ReferenceEngine;

using DepthSampling = EngineOptions::DepthSampling;

/// A random mapping drawn from the repertoire the benches compare.
std::unique_ptr<TreeMapping> random_mapping(const CompleteBinaryTree& tree,
                                            Rng& rng) {
  switch (rng.below(5)) {
    case 0: {
      const std::uint32_t M = 7 + static_cast<std::uint32_t>(rng.below(3)) * 8;
      return std::make_unique<ColorMapping>(
          make_optimal_color_mapping(tree, M));
    }
    case 1:
      return std::make_unique<ModuloMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    case 2:
      return std::make_unique<LevelShiftMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)));
    case 3:
      return std::make_unique<RandomMapping>(
          tree, 3 + static_cast<std::uint32_t>(rng.below(14)), rng());
    default:
      return std::make_unique<LevelModMapping>(
          tree, 2 + static_cast<std::uint32_t>(rng.below(8)));
  }
}

/// A random workload of the requested template family.
Workload random_workload(const CompleteBinaryTree& tree, int family, Rng& rng) {
  const std::size_t count = 5 + rng.below(20);
  const std::uint64_t seed = rng();
  switch (family) {
    case 0: {  // S: valid subtree sizes 2^t - 1
      const std::uint64_t K =
          pow2(1 + static_cast<std::uint32_t>(rng.below(4))) - 1;
      return Workload::subtrees(tree, K, count, seed);
    }
    case 1: {  // P
      const std::uint64_t K = 1 + rng.below(tree.levels());
      return Workload::paths(tree, K, count, seed);
    }
    case 2: {  // L
      const std::uint64_t K = 1 + rng.below(16);
      return Workload::level_runs(tree, K, count, seed);
    }
    default: {  // composite C(D, c)
      const std::uint64_t c = 2 + rng.below(3);
      const std::uint64_t D = c * (3 + rng.below(10));
      return Workload::composites(tree, D, c, count, seed);
    }
  }
}

/// A random schedule spanning both loop disciplines and bursty gaps (long
/// gaps exercise the idle skip, deep bursts the busy-span skip).
ArrivalSchedule random_schedule(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return ArrivalSchedule::all_at_once();
    case 1: return ArrivalSchedule::serialized();
    case 2: return ArrivalSchedule::fixed_rate(rng.below(5));
    default:
      return ArrivalSchedule::bursty(1 + rng.below(8), 1 + rng.below(16));
  }
}

void expect_same_histogram(const Histogram& got, const Histogram& want) {
  ASSERT_EQ(got.count(), want.count());
  ASSERT_EQ(got.sum(), want.sum());
  ASSERT_EQ(got.min(), want.min());
  ASSERT_EQ(got.max(), want.max());
  const auto gb = got.buckets();
  const auto wb = want.buckets();
  ASSERT_EQ(gb.size(), wb.size());
  for (std::size_t i = 0; i < gb.size(); ++i) {
    ASSERT_EQ(gb[i].upper, wb[i].upper) << "bucket " << i;
    ASSERT_EQ(gb[i].count, wb[i].count) << "bucket " << i;
  }
}

/// Full bit-identity of two trajectories; `compare_depths` is off when
/// `got` ran under reduced sampling (its depth histogram is then checked
/// separately).
void expect_same_trajectory(const EngineResult& got, const EngineResult& want,
                            bool compare_depths) {
  ASSERT_EQ(got.accesses, want.accesses);
  ASSERT_EQ(got.requests, want.requests);
  ASSERT_EQ(got.completion_cycle, want.completion_cycle);
  ASSERT_EQ(got.busy_cycles, want.busy_cycles);
  ASSERT_EQ(got.served, want.served);
  ASSERT_EQ(got.queue_high_water, want.queue_high_water);
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    ASSERT_EQ(got.records[i].id, want.records[i].id) << "access " << i;
    ASSERT_EQ(got.records[i].requests, want.records[i].requests)
        << "access " << i;
    ASSERT_EQ(got.records[i].arrival, want.records[i].arrival)
        << "access " << i;
    ASSERT_EQ(got.records[i].completion, want.records[i].completion)
        << "access " << i;
  }
  expect_same_histogram(got.latency, want.latency);
  if (compare_depths) expect_same_histogram(got.queue_depth, want.queue_depth);
}

/// One randomized triple, every sampling mode against the reference.
void check_triple(const TreeMapping& mapping, const Workload& workload,
                  const ArrivalSchedule& schedule, Rng& rng) {
  SCOPED_TRACE("mapping=" + mapping.name() + " schedule=" + schedule.name() +
               " accesses=" + std::to_string(workload.size()));
  const ReferenceEngine oracle(mapping);
  const EngineResult want = oracle.run(workload, schedule);
  const CycleEngine eng(mapping);

  // Full sampling: the default overload, bit-identical including the
  // queue-depth histogram (idle modules' zeros included).
  const EngineResult full = eng.run(workload, schedule);
  expect_same_trajectory(full, want, /*compare_depths=*/true);
  const std::uint64_t modules = mapping.num_modules();
  ASSERT_EQ(full.queue_depth.count(), full.busy_cycles * modules);

  // Sampling off: same trajectory via the bulk cycle-skip path, no depth
  // samples at all.
  EngineOptions off;
  off.sampling = DepthSampling::kOff;
  const EngineResult fast = eng.run(workload, schedule, off);
  expect_same_trajectory(fast, want, /*compare_depths=*/false);
  ASSERT_TRUE(fast.queue_depth.empty());

  // Strided sampling: same trajectory, and the sample count is exactly
  // one per module per stride-th busy cycle — proving skipped spans
  // reconstructed their samples instead of dropping them.
  EngineOptions strided;
  strided.sampling = DepthSampling::kStrided;
  strided.sample_stride = 1 + rng.below(7);
  const EngineResult sampled = eng.run(workload, schedule, strided);
  expect_same_trajectory(sampled, want, /*compare_depths=*/false);
  const std::uint64_t expect_samples =
      (sampled.busy_cycles + strided.sample_stride - 1) /
      strided.sample_stride * modules;
  ASSERT_EQ(sampled.queue_depth.count(), expect_samples)
      << "stride " << strided.sample_stride;

  // Stride 1 samples every busy cycle: the histogram must equal the full
  // sampling mode's exactly.
  EngineOptions stride1;
  stride1.sampling = DepthSampling::kStrided;
  stride1.sample_stride = 1;
  const EngineResult dense = eng.run(workload, schedule, stride1);
  expect_same_trajectory(dense, want, /*compare_depths=*/true);
}

class EventCoreDifferential : public ::testing::TestWithParam<int> {};

TEST_P(EventCoreDifferential, MatchesReferenceOn60RandomTriples) {
  const int family = GetParam();
  Rng rng(0xE18C04Eu + static_cast<std::uint64_t>(family));
  for (int trial = 0; trial < 60; ++trial) {
    const CompleteBinaryTree tree(6 + static_cast<std::uint32_t>(rng.below(7)));
    const auto mapping = random_mapping(tree, rng);
    const Workload workload = random_workload(tree, family, rng);
    check_triple(*mapping, workload, random_schedule(rng), rng);
  }
}

std::string family_name(const ::testing::TestParamInfo<int>& param_info) {
  switch (param_info.param) {
    case 0: return "S";
    case 1: return "P";
    case 2: return "L";
    default: return "Composite";
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EventCoreDifferential,
                         ::testing::Values(0, 1, 2, 3), family_name);

TEST(EventCore, EmptyAndTrailingEmptyAccessesMatchReference) {
  // Empty accesses complete on arrival; in the closed loop the reference
  // observes one trailing all-idle cycle after admitting trailing empties
  // — the event core reproduces that accounting exactly.
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 5);
  const Workload workload(std::vector<Workload::Access>{
      {}, {node_at(0), node_at(5), node_at(5)}, {}, {node_at(3)}, {}, {}});
  const ReferenceEngine oracle(map);
  const CycleEngine eng(map);
  Rng rng(7);
  for (const auto& schedule :
       {ArrivalSchedule::all_at_once(), ArrivalSchedule::serialized(),
        ArrivalSchedule::fixed_rate(3), ArrivalSchedule::bursty(2, 5)}) {
    SCOPED_TRACE(schedule.name());
    const EngineResult want = oracle.run(workload, schedule);
    expect_same_trajectory(eng.run(workload, schedule), want, true);
    EngineOptions off;
    off.sampling = DepthSampling::kOff;
    expect_same_trajectory(eng.run(workload, schedule, off), want, false);
  }
}

TEST(EventCore, AllEmptyClosedLoopWorkload) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 5);
  const Workload workload(std::vector<Workload::Access>{{}, {}, {}});
  const ReferenceEngine oracle(map);
  const CycleEngine eng(map);
  const EngineResult want = oracle.run(workload, ArrivalSchedule::serialized());
  expect_same_trajectory(eng.run(workload, ArrivalSchedule::serialized()), want,
                         true);
}

TEST(EventCore, DeepBacklogExercisesLongSkipSpans) {
  // A single all-at-once burst piles thousands of requests onto few
  // modules: with sampling off, the whole drain is a handful of bulk
  // spans, and the trajectory still matches the cycle-stepped reference.
  const CompleteBinaryTree tree(12);
  const ModuloMapping map(tree, 3);
  const Workload workload = Workload::paths(tree, 12, 300, 99);
  const ReferenceEngine oracle(map);
  const CycleEngine eng(map);
  for (const auto& schedule :
       {ArrivalSchedule::all_at_once(), ArrivalSchedule::bursty(100, 4)}) {
    SCOPED_TRACE(schedule.name());
    const EngineResult want = oracle.run(workload, schedule);
    EngineOptions off;
    off.sampling = DepthSampling::kOff;
    expect_same_trajectory(eng.run(workload, schedule, off), want, false);
    EngineOptions strided;
    strided.sampling = DepthSampling::kStrided;
    strided.sample_stride = 64;
    expect_same_trajectory(eng.run(workload, schedule, strided), want, false);
  }
}

TEST(EventCore, StrideZeroIsClampedToOne) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 7);
  const Workload workload = Workload::mixed(tree, 7, 40, 5);
  const CycleEngine eng(map);
  EngineOptions opts;
  opts.sampling = DepthSampling::kStrided;
  opts.sample_stride = 0;  // documented: clamped to 1
  const EngineResult got =
      eng.run(workload, ArrivalSchedule::all_at_once(), opts);
  const EngineResult full = eng.run(workload, ArrivalSchedule::all_at_once());
  expect_same_trajectory(got, full, /*compare_depths=*/true);
}

}  // namespace
}  // namespace pmtree
