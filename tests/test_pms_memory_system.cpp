#include "pmtree/pms/memory_system.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/templates/instance.hpp"

namespace pmtree {
namespace {

TEST(MemorySystem, RoundsEqualBusiestModuleOccupancy) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 3);
  MemorySystem pms(map);
  // BFS ids 0,3,6 all hit module 0; 1 hits module 1.
  const std::vector<Node> nodes{node_at(0), node_at(3), node_at(6), node_at(1)};
  const auto result = pms.access(nodes);
  EXPECT_EQ(result.requests, 4u);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_EQ(result.conflicts, 2u);
}

TEST(MemorySystem, ConflictFreeAccessIsOneRound) {
  const CompleteBinaryTree tree(9);
  const ColorMapping map(tree, 5, 2);
  MemorySystem pms(map);
  const PathInstance path{v(100, 8), 5};
  const auto nodes = path.nodes();
  const auto result = pms.access(nodes);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(MemorySystem, TrafficAccumulatesAcrossAccesses) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 4);
  MemorySystem pms(map);
  pms.access(std::vector<Node>{node_at(0), node_at(1)});
  pms.access(std::vector<Node>{node_at(4), node_at(5)});
  const std::uint64_t total = std::accumulate(pms.traffic().begin(),
                                              pms.traffic().end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(pms.traffic()[0], 2u);  // ids 0 and 4
  EXPECT_EQ(pms.traffic()[1], 2u);  // ids 1 and 5
}

TEST(MemorySystem, RoundStatsAndIdealRounds) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 4);
  MemorySystem pms(map);
  pms.access(std::vector<Node>{node_at(0), node_at(4), node_at(8)});  // 3 rounds
  pms.access(std::vector<Node>{node_at(1), node_at(2)});              // 1 round
  EXPECT_EQ(pms.total_rounds(), 4u);
  EXPECT_EQ(pms.round_stats().count(), 2u);
  EXPECT_EQ(pms.round_stats().max(), 3u);
  // ceil(3/4) + ceil(2/4) = 2.
  EXPECT_EQ(pms.ideal_rounds(), 2u);
}

TEST(MemorySystem, ResetClearsState) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 4);
  MemorySystem pms(map);
  pms.access(std::vector<Node>{node_at(0), node_at(4)});
  pms.reset();
  EXPECT_EQ(pms.total_rounds(), 0u);
  EXPECT_EQ(pms.ideal_rounds(), 0u);
  for (const auto t : pms.traffic()) EXPECT_EQ(t, 0u);
}

TEST(MemorySystem, EmptyAccess) {
  const CompleteBinaryTree tree(5);
  const ModuloMapping map(tree, 4);
  MemorySystem pms(map);
  const auto result = pms.access({});
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.conflicts, 0u);
}

}  // namespace
}  // namespace pmtree
