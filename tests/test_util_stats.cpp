#include "pmtree/util/stats.hpp"

#include <gtest/gtest.h>

namespace pmtree {
namespace {

TEST(Accumulator, EmptyDefaults) {
  const Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.sum(), 0u);
  EXPECT_EQ(acc.max(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(Accumulator, TracksMinMaxSumMean) {
  Accumulator acc;
  acc.add(5);
  acc.add(1);
  acc.add(9);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_EQ(acc.sum(), 15u);
  EXPECT_EQ(acc.min(), 1u);
  EXPECT_EQ(acc.max(), 9u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
}

TEST(Accumulator, MergeEquivalentToSequential) {
  Accumulator a, b, all;
  for (std::uint64_t x : {3u, 8u, 2u}) { a.add(x); all.add(x); }
  for (std::uint64_t x : {11u, 1u}) { b.add(x); all.add(x); }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a;
  a.add(4);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 4u);
  EXPECT_EQ(a.max(), 4u);
}

TEST(Accumulator, Variance) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(2);
  acc.add(4);
  acc.add(6);
  // mean 4, squared deviations {4, 0, 4} -> population variance 8/3.
  EXPECT_NEAR(acc.variance(), 8.0 / 3.0, 1e-12);
}

TEST(Accumulator, VarianceSurvivesMerge) {
  Accumulator a, b, all;
  for (std::uint64_t x : {1u, 5u, 9u}) { a.add(x); all.add(x); }
  for (std::uint64_t x : {2u, 2u}) { b.add(x); all.add(x); }
  a.merge(b);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

}  // namespace
}  // namespace pmtree
