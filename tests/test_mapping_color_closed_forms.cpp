// Closed-form consequences of COLOR's construction, tested explicitly:
// the k = 1 degenerate case collapses to level-mod, Sigma/Gamma color
// partitions land where the construction says, and the hand-worked
// multi-block example from DESIGN.md checks out node by node.
#include <gtest/gtest.h>

#include <set>

#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(ColorClosedForms, K1MultiBlockIsLevelModulo) {
  // k = 1: every block is one node and Gamma(i, jb) is the path segment
  // directly above, so the whole mapping collapses to color = level mod N
  // (N modules). Verified for several heights and N.
  for (const std::uint32_t N : {3u, 4u, 6u}) {
    for (const std::uint32_t H : {7u, 10u, 13u}) {
      const CompleteBinaryTree tree(H);
      const ColorMapping map(tree, N, 1);
      ASSERT_EQ(map.num_modules(), N);
      for (std::uint32_t j = 0; j < tree.levels(); ++j) {
        for (std::uint64_t i = 0; i < tree.level_width(j); i += 5) {
          ASSERT_EQ(map.color_of(v(i, j)), j % N)
              << "N=" << N << " H=" << H << " " << to_string(v(i, j));
        }
      }
    }
  }
}

TEST(ColorClosedForms, SigmaColorsOnlyInTopK) {
  // Colors 0..K-1 (Sigma) are assigned in the top k levels of the root
  // block; below, they reappear only through inheritance — and color 0
  // (the root) never reappears inside the root block (the root has no
  // sibling to copy from).
  const std::uint32_t N = 6, k = 3;
  const CompleteBinaryTree tree(6);  // single block
  const BasicColorMapping map(tree, N, k);
  std::uint64_t root_color_uses = 0;
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    if (map.color_of(node_at(id)) == 0) ++root_color_uses;
  }
  EXPECT_EQ(root_color_uses, 1u);
}

TEST(ColorClosedForms, GammaColorsFirstAppearAtTheirLevel) {
  // Gamma[t] = K + t is introduced at block level k + t: no node above
  // that level carries it.
  const std::uint32_t N = 7, k = 2;
  const std::uint64_t K = tree_size(k);
  const CompleteBinaryTree tree(7);  // single block
  const BasicColorMapping map(tree, N, k);
  for (std::uint32_t t = 0; t < N - k; ++t) {
    const Color gamma_color = static_cast<Color>(K + t);
    std::uint32_t first_level = tree.levels();
    for (std::uint32_t j = 0; j < tree.levels(); ++j) {
      for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
        if (map.color_of(v(i, j)) == gamma_color) {
          first_level = std::min(first_level, j);
        }
      }
    }
    EXPECT_EQ(first_level, k + t) << "Gamma[" << t << "]";
  }
}

TEST(ColorClosedForms, LastInBlockNodesShareTheLevelGammaColor) {
  // Within the root block, every block's last node at level j carries the
  // same color Gamma[j - k] (this is what makes Lemma 2's L-cost exactly
  // 1: the level's repeats are all that one color).
  const std::uint32_t N = 6, k = 3;
  const std::uint64_t K = tree_size(k);
  const CompleteBinaryTree tree(6);
  const BasicColorMapping map(tree, N, k);
  const std::uint64_t block = pow2(k - 1);
  for (std::uint32_t j = k; j < tree.levels(); ++j) {
    for (std::uint64_t h = 0; h < tree.level_width(j) / block; ++h) {
      EXPECT_EQ(map.color_of(v(h * block + block - 1, j)),
                K + (j - k))
          << "block " << h << " level " << j;
    }
  }
}

TEST(ColorClosedForms, HandWorkedMultiBlockExample) {
  // N = 3, k = 1 on 5 levels (DESIGN.md walkthrough): blocks of 3 levels
  // overlapping by 1; colors must cycle 0,1,2,0,1 down the levels.
  const CompleteBinaryTree tree(5);
  const ColorMapping map(tree, 3, 1);
  const Color expected[] = {0, 1, 2, 0, 1};
  for (std::uint32_t j = 0; j < 5; ++j) {
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      ASSERT_EQ(map.color_of(v(i, j)), expected[j]) << to_string(v(i, j));
    }
  }
}

TEST(ColorClosedForms, FirstBlockNodeCopiesSiblingSubtreeRoot) {
  // BOTTOM's b_0 rule: the first node of block(h, j) takes the color of
  // the sibling of the block's (k-1)-st ancestor.
  const std::uint32_t N = 7, k = 3;
  const CompleteBinaryTree tree(7);
  const BasicColorMapping map(tree, N, k);
  const std::uint64_t block = pow2(k - 1);
  for (std::uint32_t j = k; j < tree.levels(); ++j) {
    for (std::uint64_t h = 0; h < tree.level_width(j) / block; ++h) {
      const Node b0 = v(h * block, j);
      const Node anc = ancestor(b0, k - 1);
      ASSERT_EQ(map.color_of(b0), map.color_of(sibling(anc)))
          << "block " << h << " level " << j;
    }
  }
}

TEST(ColorClosedForms, ModulesUsedMatchesAnnouncement) {
  for (const auto& [H, N, k] :
       {std::tuple{9u, 4u, 2u}, std::tuple{12u, 6u, 3u}, std::tuple{13u, 7u, 4u}}) {
    const ColorMapping map(CompleteBinaryTree(H), N, k);
    std::set<Color> used;
    const CompleteBinaryTree tree(H);
    for (std::uint32_t j = 0; j < tree.levels(); ++j) {
      for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
        used.insert(map.color_of(v(i, j)));
      }
    }
    EXPECT_EQ(used.size(), map.num_modules()) << "H=" << H;
  }
}

}  // namespace
}  // namespace pmtree
