// Metrics isolation regressions for the forest (DESIGN.md §13): each
// tenant's ServeMetrics section lives under its own "forest.t<i>" prefix
// and never aliases another tenant's (or the forest aggregate's)
// instruments, and the forest-level JSON rollup survives a round trip
// through util::Json unchanged.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/serve/forest.hpp"

namespace pmtree::serve {
namespace {

/// Small asymmetric two-tenant forest: tenant 0 submits `a` requests,
/// tenant 1 submits `b` — distinct counts make aliasing observable.
void fill_forest(Forest& forest, const TreeMapping& mapping, std::size_t a,
                 std::size_t b) {
  forest.add_tenant(mapping);
  forest.add_tenant(mapping);
  const std::size_t counts[] = {a, b};
  for (std::uint32_t tenant = 0; tenant < 2; ++tenant) {
    for (std::size_t i = 0; i < counts[tenant]; ++i) {
      Request r;
      r.client = 0;
      r.seq = i;
      r.submit_cycle = i;
      r.nodes.push_back(v(i % 8, 3));
      forest.submit(tenant, r);
    }
  }
}

TEST(ForestMetrics, PerTenantCounterSectionsNeverAlias) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  Forest forest;
  fill_forest(forest, mapping, 7, 13);
  const ForestReport report = forest.run();
  ASSERT_EQ(report.total_requests(), 20u);

  const auto counter = [&](const std::string& name) {
    const engine::Counter* c = forest.registry().find_counter(name);
    return c == nullptr ? ~std::uint64_t{0} : c->value();
  };
  EXPECT_EQ(counter("forest.t0.submitted"), 7u);
  EXPECT_EQ(counter("forest.t1.submitted"), 13u);
  EXPECT_EQ(counter("forest.submitted"), 20u);
  // Completion stays per-tenant too.
  EXPECT_EQ(counter("forest.t0.completed"),
            report.tenants[0].count(RequestStatus::kOk));
  EXPECT_EQ(counter("forest.t1.completed"),
            report.tenants[1].count(RequestStatus::kOk));
}

TEST(ForestMetrics, TenantSummariesDescribeOnlyTheirOwnTraffic) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  Forest forest;
  fill_forest(forest, mapping, 5, 11);
  const ForestReport report = forest.run();

  const Json* c0 = report.tenants[0].metrics.find("counters");
  const Json* c1 = report.tenants[1].metrics.find("counters");
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c0->find("submitted")->as_uint(), 5u);
  EXPECT_EQ(c1->find("submitted")->as_uint(), 11u);
  // Latency histograms are disjoint: counts match each tenant's own kOk.
  EXPECT_EQ(report.tenants[0].metrics.find("latency")->find("count")->as_uint(),
            report.tenants[0].count(RequestStatus::kOk));
  EXPECT_EQ(report.tenants[1].metrics.find("latency")->find("count")->as_uint(),
            report.tenants[1].count(RequestStatus::kOk));
}

TEST(ForestMetrics, ForestAggregateEqualsTenantSums) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  Forest forest;
  fill_forest(forest, mapping, 9, 4);
  (void)forest.run();
  const auto counter = [&](const std::string& name) {
    const engine::Counter* c = forest.registry().find_counter(name);
    return c == nullptr ? std::uint64_t{0} : c->value();
  };
  for (const char* name :
       {"submitted", "admitted", "completed", "batches", "requested_nodes"}) {
    const std::string n(name);
    EXPECT_EQ(counter("forest." + n),
              counter("forest.t0." + n) + counter("forest.t1." + n))
        << n;
  }
}

TEST(ForestMetrics, RollupRoundTripsThroughJson) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  ForestOptions fopts;
  fopts.global_queue_bound = 6;
  Forest forest(fopts);
  fill_forest(forest, mapping, 6, 10);
  const ForestReport report = forest.run();

  const std::string dumped = report.metrics.dump();
  const auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), dumped);
}

TEST(ForestMetrics, FullReportRoundTripsThroughJson) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  Forest forest;
  fill_forest(forest, mapping, 6, 3);
  const ForestReport report = forest.run();

  const std::string dumped = report.to_json().dump(2);
  const auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(2), dumped);
  EXPECT_EQ(parsed->find("tenant_count")->as_uint(), 2u);
  EXPECT_EQ(parsed->find("requests")->as_uint(), 9u);
}

TEST(ForestMetrics, RollupCarriesPlanAndPerTenantRows) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  ForestOptions fopts;
  fopts.replicas = 6;
  Forest forest(fopts);
  fill_forest(forest, mapping, 2, 2);
  const ForestReport report = forest.run();

  const Json* plan = report.metrics.find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->find("requested_replicas")->as_uint(), 6u);
  const Json* tenants = report.metrics.find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->items().size(), 2u);
  for (const Json& row : tenants->items()) {
    EXPECT_NE(row.find("weight"), nullptr);
    EXPECT_NE(row.find("lanes"), nullptr);
    EXPECT_NE(row.find("batch_share"), nullptr);
    EXPECT_NE(row.find("metrics"), nullptr);
  }
  ASSERT_NE(report.metrics.find("forest"), nullptr);
  EXPECT_NE(report.metrics.find("forest")->find("counters"), nullptr);
}

TEST(ForestMetrics, LaneEngineCountersFoldUnderTheirTenantPrefix) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  ForestOptions fopts;
  fopts.replicas = 4;
  Forest forest(fopts);
  fill_forest(forest, mapping, 8, 8);
  (void)forest.run();

  // Every planned lane reports its engine trajectory under its tenant.
  const CapacityPlan& plan = forest.plan();
  std::uint64_t total_lane_requests = 0;
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t l = 0; l < plan.lanes[i]; ++l) {
      const std::string prefix =
          "forest.t" + std::to_string(i) + ".lane" + std::to_string(l);
      const engine::Counter* c =
          forest.registry().find_counter(prefix + ".requests");
      ASSERT_NE(c, nullptr) << prefix;
      total_lane_requests += c->value();
    }
    // No lane beyond the plan leaked instruments.
    const std::string beyond = "forest.t" + std::to_string(i) + ".lane" +
                               std::to_string(plan.lanes[i]) + ".requests";
    EXPECT_EQ(forest.registry().find_counter(beyond), nullptr);
  }
  EXPECT_GT(total_lane_requests, 0u);
}

TEST(ForestMetrics, RegistryAccumulatesAcrossRuns) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping mapping(tree, 4);
  Forest forest(ForestOptions{});
  forest.add_tenant(mapping);
  forest.add_tenant(mapping);
  for (int round = 0; round < 2; ++round) {
    Request r;
    r.client = 0;
    r.seq = static_cast<std::uint64_t>(round);
    r.submit_cycle = 0;
    r.nodes.push_back(v(0, 0));
    forest.submit(0, r);
    (void)forest.run();
  }
  EXPECT_EQ(forest.registry().find_counter("forest.t0.submitted")->value(), 2u);
  EXPECT_EQ(forest.registry().find_counter("forest.submitted")->value(), 2u);
  EXPECT_EQ(forest.registry().find_counter("forest.t1.submitted")->value(), 0u);
}

}  // namespace
}  // namespace pmtree::serve
