// LABEL-TREE: structural invariants of the reconstruction (group windows,
// micro-table consistency), agreement of O(1)-table and O(log M)-recursive
// retrieval, the Theorem 7 conflict scale and load balance, and the
// Lemma 7 scaling behaviour on oversized templates.
#include "pmtree/mapping/label_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

class LabelTreeParams : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LabelTreeParams, ParametersMatchPaperFormulas) {
  const std::uint32_t M = GetParam();
  const LabelTreeMapping map(CompleteBinaryTree(12), M);
  EXPECT_EQ(map.m(), ceil_log2(M));
  EXPECT_GE(map.l(), 1u);
  EXPECT_LT(map.l(), map.m());
  EXPECT_EQ(map.ell(), pow2(map.l()) + pow2(map.m() - map.l()) - 1);
  EXPECT_GE(map.group_count(), 1u);
  EXPECT_LE(map.group_count() * map.ell(), M);
}

TEST_P(LabelTreeParams, TableAndRecursiveRetrievalAgree) {
  const std::uint32_t M = GetParam();
  const CompleteBinaryTree tree(13);
  const LabelTreeMapping with_table(tree, M, LabelTreeMapping::Retrieval::kTable);
  const LabelTreeMapping recursive(tree, M,
                                   LabelTreeMapping::Retrieval::kRecursive);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(with_table.color_of(node_at(id)), recursive.color_of(node_at(id)))
        << "M=" << M << " node " << to_string(node_at(id));
  }
}

TEST_P(LabelTreeParams, ColorsWithinModuleRange) {
  const std::uint32_t M = GetParam();
  const CompleteBinaryTree tree(12);
  const LabelTreeMapping map(tree, M);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_LT(map.color_of(node_at(id)), M);
  }
}

TEST_P(LabelTreeParams, PathsWithinOneBlockAreConflictFree) {
  // MICRO-LABEL is claimed l-CF on P(m) within each block subtree; since
  // blocks are disjoint, every ascending path of m nodes that stays inside
  // one block must be rainbow.
  const std::uint32_t M = GetParam();
  const CompleteBinaryTree tree(12);
  const LabelTreeMapping map(tree, M);
  const std::uint32_t m = map.m();
  if (m < 2 || m > tree.levels()) GTEST_SKIP();
  std::vector<Color> colors;
  for (std::uint32_t jb = 0; (jb + 1) * m <= tree.levels(); ++jb) {
    const std::uint32_t deepest = jb * m + m - 1;
    for (std::uint64_t i = 0; i < tree.level_width(deepest); ++i) {
      colors.clear();
      Node cur = v(i, deepest);
      for (std::uint32_t step = 0; step < m; ++step) {
        colors.push_back(map.color_of(cur));
        if (cur.level == 0) break;
        cur = parent(cur);
      }
      std::sort(colors.begin(), colors.end());
      ASSERT_EQ(std::adjacent_find(colors.begin(), colors.end()), colors.end())
          << "conflicting block path below v(" << i << ", " << deepest
          << ") with M=" << M;
    }
  }
}

TEST_P(LabelTreeParams, LoadBalanceIsNearlyPerfect) {
  // Theorem 7: memory load ratio 1 + o(1).
  const std::uint32_t M = GetParam();
  const CompleteBinaryTree tree(15);
  const LabelTreeMapping map(tree, M);
  const auto report = load_balance(map);
  EXPECT_EQ(report.used_modules, M);
  EXPECT_LE(report.ratio(), 1.6) << "max=" << report.max_load
                                 << " min=" << report.min_load;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LabelTreeParams,
                         ::testing::Values(3u, 7u, 15u, 31u, 63u, 127u, 100u),
                         [](const auto& param_info) {
                           return "M" + std::to_string(param_info.param);
                         });

TEST(LabelTree, ConflictScaleOnSizeMTemplates) {
  // Theorem 7: O(sqrt(M / log M)) conflicts on elementary templates of
  // size M. Use a generous constant of 4 on the scale as the envelope.
  for (const std::uint32_t M : {15u, 31u, 63u}) {
    const CompleteBinaryTree tree(14);
    const LabelTreeMapping map(tree, M);
    const double envelope = 4.0 * bounds::label_tree_m_scale(M) + 2.0;
    ASSERT_TRUE(is_tree_size(M));
    const auto s = evaluate_subtrees(map, M);
    const auto p = evaluate_paths(map, M);
    const auto l = evaluate_level_runs(map, M);
    EXPECT_LE(static_cast<double>(s.max_conflicts), envelope) << "M=" << M;
    EXPECT_LE(static_cast<double>(p.max_conflicts), envelope) << "M=" << M;
    EXPECT_LE(static_cast<double>(l.max_conflicts), envelope) << "M=" << M;
  }
}

TEST(LabelTree, ScalingOnOversizedLevelRuns) {
  // Lemma 7(1): Cost(L(D)) = O(D / sqrt(M log M)); check the measured
  // cost grows at most linearly in D with the predicted slope envelope.
  const std::uint32_t M = 63;
  const CompleteBinaryTree tree(14);
  const LabelTreeMapping map(tree, M);
  for (const std::uint64_t D : {64u, 128u, 256u, 512u}) {
    const auto cost = evaluate_level_runs(map, D);
    const double envelope = 6.0 * bounds::label_tree_d_scale(D, M) + 4.0;
    EXPECT_LE(static_cast<double>(cost.max_conflicts), envelope) << "D=" << D;
  }
}

TEST(LabelTree, DegenerateSmallMStillLegal) {
  const CompleteBinaryTree tree(8);
  const LabelTreeMapping map(tree, 3);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_LT(map.color_of(node_at(id)), 3u);
  }
}

}  // namespace
}  // namespace pmtree
