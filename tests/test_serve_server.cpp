// End-to-end server tests: the dictionary and range-index clients driving
// a Server, batching/coalescing observable in the metrics, replica
// round-robin, JSON report shape, and deterministic re-runs.
#include "pmtree/serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pmtree/apps/dictionary.hpp"
#include "pmtree/apps/range_index.hpp"
#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/clients.hpp"

namespace pmtree::serve {
namespace {

using fault::FaultPlan;

std::vector<std::int64_t> sequential_keys(std::uint32_t levels) {
  std::vector<std::int64_t> keys(pow2(levels) - 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::int64_t>(10 * i);
  }
  return keys;
}

TEST(ServerClients, DictionarySearchesRoundTrip) {
  const std::uint32_t kLevels = 6;
  const Dictionary dict(sequential_keys(kLevels));
  const ColorMapping map = make_optimal_color_mapping(dict.tree(), 11);
  ServerOptions opts;
  opts.tick_cycles = 2;
  opts.batch.max_batch_nodes = 24;
  opts.batch.max_wait_cycles = 8;
  Server server(map, opts);

  DictionaryClient client(dict, /*client_id=*/7);
  const std::vector<Dictionary::Key> keys{0, 10, 15, 300, 620, -5};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    client.submit_search(server, keys[i], /*submit_cycle=*/2 * i);
  }
  const ServeReport report = server.run();
  const auto outcomes = client.join(report);
  ASSERT_EQ(outcomes.size(), keys.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE("key=" + std::to_string(keys[i]));
    EXPECT_EQ(outcomes[i].response.status, RequestStatus::kOk);
    // The joined answer agrees with a direct (unserved) search.
    const Dictionary::SearchResult direct = dict.search(keys[i]);
    EXPECT_EQ(outcomes[i].result.found, direct.found);
    if (direct.found) {
      EXPECT_EQ(outcomes[i].result.node, direct.node);
    }
    // Timing is causally ordered on the simulated clock.
    const Response& r = outcomes[i].response;
    EXPECT_GE(r.dispatch_cycle, r.submit_cycle);
    EXPECT_GT(r.completion_cycle, r.dispatch_cycle);  // a path is >= 1 node
  }
  // Present keys found, absent keys not.
  EXPECT_TRUE(outcomes[0].result.found);
  EXPECT_TRUE(outcomes[1].result.found);
  EXPECT_FALSE(outcomes[2].result.found);  // 15 is between stored keys
  EXPECT_FALSE(outcomes[5].result.found);  // -5 below the range
}

TEST(ServerClients, RangeQueriesRoundTrip) {
  const RangeIndex index(sequential_keys(5));
  const ModuloMapping map(index.tree(), 7);
  ServerOptions opts;
  opts.batch.max_wait_cycles = 4;
  Server server(map, opts);

  RangeIndexClient client(index, /*client_id=*/1);
  const std::vector<std::pair<std::int64_t, std::int64_t>> ranges{
      {0, 50}, {95, 145}, {200, 190}, {290, 400}};
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    client.submit_query(server, ranges[i].first, ranges[i].second,
                        /*submit_cycle=*/i);
  }
  const ServeReport report = server.run();
  const auto outcomes = client.join(report);
  ASSERT_EQ(outcomes.size(), ranges.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE("range " + std::to_string(ranges[i].first) + ".." +
                 std::to_string(ranges[i].second));
    EXPECT_EQ(outcomes[i].response.status, RequestStatus::kOk);
    const RangeIndex::QueryResult direct =
        index.query(ranges[i].first, ranges[i].second);
    EXPECT_EQ(outcomes[i].result.keys, direct.keys);
  }
  EXPECT_TRUE(outcomes[2].result.keys.empty());  // inverted range
}

TEST(ServerClients, HotKeyLookupsCoalesceAcrossClients) {
  const Dictionary dict(sequential_keys(6));
  const ColorMapping map = make_optimal_color_mapping(dict.tree(), 11);
  ServerOptions opts;
  opts.tick_cycles = 1;
  opts.batch.max_batch_nodes = 256;
  opts.batch.max_wait_cycles = 0;  // flush the co-arriving burst as one batch
  Server server(map, opts);

  // Eight clients, same hot key, same cycle: the eight identical paths
  // must collapse into one physical path in one batch.
  std::vector<DictionaryClient> clients;
  for (std::uint32_t c = 0; c < 8; ++c) clients.emplace_back(dict, c);
  for (auto& client : clients) client.submit_search(server, 100, 0);

  const ServeReport report = server.run();
  ASSERT_EQ(report.batches.size(), 1u);
  EXPECT_EQ(report.batches[0].members.size(), 8u);
  EXPECT_EQ(report.batches[0].requested_nodes, 8u * dict.tree().levels());
  EXPECT_EQ(report.batches[0].nodes.size(), dict.tree().levels());
  EXPECT_EQ(report.batches[0].coalesced_nodes(), 7u * dict.tree().levels());
  // All eight observe the same completion cycle (they share the batch).
  for (std::size_t i = 1; i < report.responses.size(); ++i) {
    EXPECT_EQ(report.responses[i].completion_cycle,
              report.responses[0].completion_cycle);
  }
  const Json* coalesced =
      report.metrics.find("batches")->find("coalesced_nodes");
  ASSERT_NE(coalesced, nullptr);
  EXPECT_EQ(coalesced->as_uint(), 7u * dict.tree().levels());
}

TEST(Server, ReplicasTakeBatchesRoundRobin) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  ServerOptions opts;
  opts.tick_cycles = 1;
  opts.replicas = 2;
  opts.batch.max_batch_nodes = 2;
  opts.batch.max_wait_cycles = 0;
  Server server(map, opts);

  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    Request r;
    r.client = 0;
    r.seq = seq;
    r.submit_cycle = seq;
    r.nodes = {v(seq, 4), v(seq + 1, 4)};
    server.submit(std::move(r));
  }
  const ServeReport report = server.run();
  ASSERT_EQ(report.batches.size(), 6u);
  ASSERT_EQ(report.replicas.size(), 2u);
  // Batch b ran on replica b % 2: each replica saw 3 accesses.
  EXPECT_EQ(report.replicas[0].accesses, 3u);
  EXPECT_EQ(report.replicas[1].accesses, 3u);
  EXPECT_EQ(report.replicas[0].requests + report.replicas[1].requests, 12u);
}

TEST(Server, ReportJsonIsCompleteAndParseable) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 4);
  ServerOptions opts;
  opts.batch.max_wait_cycles = 2;
  Server server(map, opts);
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    Request r;
    r.client = static_cast<std::uint32_t>(seq % 2);
    r.seq = seq / 2;
    r.submit_cycle = seq;
    r.nodes = {v(seq, 3)};
    server.submit(std::move(r));
  }
  const ServeReport report = server.run();
  const auto parsed = Json::parse(report.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("requests")->as_uint(), 5u);
  EXPECT_EQ(parsed->find("ok")->as_uint(), 5u);
  EXPECT_EQ(parsed->find("responses")->items().size(), 5u);
  const Json* latency = parsed->find("metrics")->find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_uint(), 5u);
  for (const char* q : {"p50", "p95", "p99", "p999"}) {
    ASSERT_NE(latency->find(q), nullptr) << q;
  }
  // SLO percentiles are monotone.
  EXPECT_LE(latency->find("p50")->as_number(),
            latency->find("p99")->as_number());
  EXPECT_LE(latency->find("p99")->as_number(),
            latency->find("p999")->as_number());
}

TEST(Server, IdenticalSubmissionsReproduceIdenticalReports) {
  const CompleteBinaryTree tree(8);
  const ColorMapping map = make_optimal_color_mapping(tree, 9);
  const auto run_once = [&] {
    ServerOptions opts;
    opts.tick_cycles = 3;
    opts.replicas = 2;
    opts.admission.queue_bound = 4;
    opts.batch.max_batch_nodes = 8;
    opts.batch.max_wait_cycles = 5;
    Server server(map, opts);
    for (std::uint64_t seq = 0; seq < 30; ++seq) {
      Request r;
      r.client = static_cast<std::uint32_t>(seq % 3);
      r.seq = seq / 3;
      r.submit_cycle = seq / 2;
      r.deadline_cycles = seq % 5 == 0 ? 4 : 0;
      r.nodes = {v(seq % 32, 5), v((seq * 7) % 16, 4)};
      server.submit(std::move(r));
    }
    return server.run();
  };
  const ServeReport a = run_once();
  const ServeReport b = run_once();
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(ServerRetry, RetryBudgetExhaustedExactlyAtDeadlineCycleExpires) {
  // Edge case at the retry/deadline boundary: the single allowed retry
  // resends at dispatch + timeout + backoff(1), and the deadline is set
  // to exactly that cycle — the resend is dead on arrival, the request
  // expires at precisely its deadline with its attempt budget spent.
  const CompleteBinaryTree tree(4);
  const ModuloMapping mapping(tree, 2);
  // Payload: two nodes on module 0; a slowdown only lets module 0 serve
  // every 64th cycle, so the attempt's residency far exceeds the timeout.
  Request request;
  request.client = 0;
  request.seq = 0;
  request.submit_cycle = 0;
  request.nodes = {v(0, 0), v(1, 1)};  // ids 0 and 2: both color 0 mod 2

  FaultPlan plan;
  plan.slow_down(0, 0, 10000, 64);
  ServerOptions opts;
  opts.tick_cycles = 1;
  opts.batch.max_wait_cycles = 0;
  opts.engine.faults = &plan;

  // Sanity: without retries the attempt completes, but far too slowly.
  {
    Server server(mapping, opts);
    server.submit(request);
    const ServeReport baseline = server.run();
    ASSERT_EQ(baseline.count(RequestStatus::kOk), 1u);
    ASSERT_GT(baseline.responses[0].completion_cycle -
                  baseline.responses[0].dispatch_cycle,
              5u);
  }

  opts.retry.max_retries = 1;
  opts.retry.attempt_timeout_cycles = 5;
  opts.retry.backoff_base_cycles = 3;
  const std::uint64_t resend = 0 + 5 + opts.retry.backoff(1);  // cycle 8
  request.deadline_cycles = resend;  // budget elapses exactly at resend

  Server server(mapping, opts);
  server.submit(request);
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), 1u);
  const Response& r = report.responses[0];
  EXPECT_EQ(r.status, RequestStatus::kExpired);
  EXPECT_EQ(r.retries, opts.retry.max_retries);
  EXPECT_EQ(r.completion_cycle, resend);  // expired at the deadline, exactly
  EXPECT_EQ(r.latency(), request.deadline_cycles);
  EXPECT_EQ(report.rounds, 2u);
}

TEST(ServerRetry, OneCycleMoreDeadlineLetsTheFinalRetryLand) {
  // The companion boundary: with one extra cycle of budget the resend is
  // admitted, dispatches, and completes — the attempt budget is spent but
  // the request finishes kOk (dispatched work is immune to the deadline).
  const CompleteBinaryTree tree(4);
  const ModuloMapping mapping(tree, 2);
  Request request;
  request.client = 0;
  request.seq = 0;
  request.submit_cycle = 0;
  request.nodes = {v(0, 0), v(1, 1)};

  FaultPlan plan;
  plan.slow_down(0, 0, 10000, 64);
  ServerOptions opts;
  opts.tick_cycles = 1;
  opts.batch.max_wait_cycles = 0;
  opts.engine.faults = &plan;
  opts.retry.max_retries = 1;
  opts.retry.attempt_timeout_cycles = 5;
  opts.retry.backoff_base_cycles = 3;
  request.deadline_cycles = 0 + 5 + opts.retry.backoff(1) + 1;

  Server server(mapping, opts);
  server.submit(request);
  const ServeReport report = server.run();
  ASSERT_EQ(report.responses.size(), 1u);
  const Response& r = report.responses[0];
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_EQ(r.retries, opts.retry.max_retries);
  EXPECT_GT(r.completion_cycle, request.deadline_cycles);
  EXPECT_EQ(report.rounds, 2u);
}

}  // namespace
}  // namespace pmtree::serve
