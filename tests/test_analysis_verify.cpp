#include "pmtree/analysis/verify.hpp"

#include <gtest/gtest.h>

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(Verify, CfElementaryAcceptsColor) {
  const ColorMapping map(CompleteBinaryTree(9), 5, 2);
  const auto verdict = verify_cf_elementary(map, 3, 5);
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.measured, 0u);
  EXPECT_TRUE(static_cast<bool>(verdict));
}

TEST(Verify, CfElementaryRejectsModuloWithWitness) {
  const ModuloMapping map(CompleteBinaryTree(9), bounds::cf_modules(5, 2));
  const auto verdict = verify_cf_elementary(map, 3, 5);
  EXPECT_FALSE(verdict.ok);
  EXPECT_GT(verdict.measured, 0u);
  EXPECT_NE(verdict.detail.find("witness"), std::string::npos);
}

TEST(Verify, TpRainbowAcceptsColorRejectsModulo) {
  const CompleteBinaryTree tree(8);
  const ColorMapping good(tree, 5, 2);
  EXPECT_TRUE(verify_tp_rainbow(good, 3, 5).ok);
  // Modulo has as many colors as the largest TP instance (6 = cf_modules),
  // so only structure — not pigeonhole — can save it; it conflicts anyway.
  const ModuloMapping bad(tree, 6);
  EXPECT_FALSE(verify_tp_rainbow(bad, 3, 5).ok);
}

TEST(Verify, OptimalityWitnessChecksSizeAndRainbow) {
  const ColorMapping map(CompleteBinaryTree(10), 6, 2);
  const auto verdict = verify_optimality_witness(map, 6, 2);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.bound, bounds::cf_modules(6, 2));
}

TEST(Verify, OptimalityWitnessReportsTreeTooSmall) {
  // anchor level N - k = 8 needs k more levels: 10 > 6 levels available.
  const ColorMapping map(CompleteBinaryTree(6), 6, 2);
  const auto verdict = verify_optimality_witness(map, 10, 2);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.detail.find("too small"), std::string::npos);
}

TEST(Verify, FullParallelismAcceptsOptimalColor) {
  const auto map = make_optimal_color_mapping(CompleteBinaryTree(9), 7);
  const auto verdict = verify_full_parallelism(map);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_LE(verdict.measured, 1u);
}

TEST(Verify, FullParallelismRejectsConstantlyBadMapping) {
  const ModuloMapping map(CompleteBinaryTree(9), 7);
  const auto verdict = verify_full_parallelism(map);
  EXPECT_FALSE(verdict.ok);
}

TEST(Verify, LevelCostBoundsRespectLemma2) {
  const ColorMapping map(CompleteBinaryTree(9), 5, 2);
  EXPECT_TRUE(verify_level_cost(map, 3, 1).ok);
  // Impossible bound of 0 must fail somewhere (Lemma 2 is tight).
  const auto verdict = verify_level_cost(map, 3, 0);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.measured, 1u);
}

}  // namespace
}  // namespace pmtree
