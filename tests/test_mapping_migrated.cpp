#include "pmtree/mapping/combinators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

// The brute-force oracle of the MigratedMapping contract: node n keeps its
// base color above the granularity level and is rotated by its subtree's
// table entry (mod M) at or below it.
Color oracle_color(const TreeMapping& base, std::uint32_t level,
                   const std::vector<Color>& rot, Node n) {
  const Color c = base.color_of(n);
  if (n.level < level) return c;
  const std::uint32_t sid = static_cast<std::uint32_t>(
      n.index >> (n.level - level));
  return (c + rot[sid]) % base.num_modules();
}

std::vector<Color> random_rotation(Rng& rng, std::uint32_t level,
                                   std::uint32_t modules) {
  std::vector<Color> rot(std::size_t{1} << level);
  for (Color& r : rot) r = static_cast<Color>(rng.below(modules));
  return rot;
}

TEST(MigratedMapping, MatchesBruteForceOracleAcrossRandomConfigs) {
  // 60 seeded configurations sweeping tree depth, module count, base
  // mapping family, granularity level and rotation table; every node of
  // every tree is checked against the closed-form oracle.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::uint32_t levels =
        static_cast<std::uint32_t>(rng.between(6, 12));
    const CompleteBinaryTree tree(levels);
    const std::uint32_t modules =
        static_cast<std::uint32_t>(rng.between(3, 31));
    std::unique_ptr<TreeMapping> base;
    if (rng.chance(1, 2)) {
      base = std::make_unique<ColorMapping>(
          make_optimal_color_mapping(tree, modules));
    } else {
      base = std::make_unique<ModuloMapping>(tree, modules);
    }
    const std::uint32_t subtree_level =
        static_cast<std::uint32_t>(rng.below(std::min(levels, 7u)));
    // make_optimal_color_mapping derives its own module count (<= the
    // requested M) from the paper's closed form — rotations must stay
    // below the mapping's ACTUAL color space.
    const std::vector<Color> rot =
        random_rotation(rng, subtree_level, base->num_modules());

    const MigratedMapping migrated(*base, subtree_level,
                                   std::vector<Color>(rot));
    ASSERT_EQ(migrated.num_modules(), base->num_modules());
    ASSERT_EQ(migrated.subtree_level(), subtree_level);
    ASSERT_EQ(migrated.rotation_table(), rot);
    for (std::uint64_t id = 0; id < tree.size(); ++id) {
      const Node n = node_at(id);
      ASSERT_EQ(migrated.color_of(n),
                oracle_color(*base, subtree_level, rot, n))
          << "node id=" << id;
    }
  }
}

TEST(MigratedMapping, BatchKernelMatchesScalar) {
  // The devirtualized batch path (base kernel + one rotation pass) must
  // agree with color_of on shuffled, duplicate-carrying node vectors.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 6700417);
    const CompleteBinaryTree tree(10);
    const std::uint32_t modules =
        static_cast<std::uint32_t>(rng.between(3, 17));
    const ColorMapping base(make_optimal_color_mapping(tree, modules));
    const std::uint32_t subtree_level =
        static_cast<std::uint32_t>(rng.below(6));
    const MigratedMapping migrated(
        base, subtree_level,
        random_rotation(rng, subtree_level, base.num_modules()));

    std::vector<Node> nodes;
    for (int i = 0; i < 500; ++i) {
      nodes.push_back(node_at(rng.below(tree.size())));
    }
    std::vector<Color> batch(nodes.size());
    migrated.color_of_batch(nodes, batch);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      ASSERT_EQ(batch[i], migrated.color_of(nodes[i])) << "i=" << i;
    }
  }
}

TEST(MigratedMapping, ZeroRotationIsIdentity) {
  const CompleteBinaryTree tree(9);
  const ColorMapping base(tree, 5, 2);
  const MigratedMapping same(base, 4,
                             std::vector<Color>(std::size_t{1} << 4, 0));
  EXPECT_TRUE(same.is_identity());
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(same.color_of(node_at(id)), base.color_of(node_at(id)));
  }

  std::vector<Color> rot(std::size_t{1} << 4, 0);
  rot[7] = 1;
  const MigratedMapping moved(base, 4, std::move(rot));
  EXPECT_FALSE(moved.is_identity());
}

TEST(MigratedMapping, RotationPermutesLoadWithinASubtree) {
  // Within one migrated subtree the rotation is a cyclic relabeling of
  // colors, so the per-module load multiset over that subtree's nodes is
  // invariant — the planner moves heat, it never creates or destroys it.
  const CompleteBinaryTree tree(11);
  const ColorMapping base(make_optimal_color_mapping(tree, 13));
  const std::uint32_t modules = base.num_modules();
  const std::uint32_t subtree_level = 3;
  Rng rng(0x517EC7);
  const MigratedMapping migrated(
      base, subtree_level, random_rotation(rng, subtree_level, modules));

  for (std::uint32_t sid = 0; sid < (1u << subtree_level); ++sid) {
    std::vector<std::uint64_t> base_load(modules, 0);
    std::vector<std::uint64_t> migrated_load(modules, 0);
    for (std::uint64_t id = 0; id < tree.size(); ++id) {
      const Node n = node_at(id);
      if (n.level < subtree_level ||
          (n.index >> (n.level - subtree_level)) != sid) {
        continue;
      }
      base_load[base.color_of(n)] += 1;
      migrated_load[migrated.color_of(n)] += 1;
    }
    std::sort(base_load.begin(), base_load.end());
    std::sort(migrated_load.begin(), migrated_load.end());
    ASSERT_EQ(migrated_load, base_load) << "subtree " << sid;
  }
}

TEST(MigratedMapping, ComposesUnderDegradedMapping) {
  // Fault handling stacks OUTSIDE migration: DegradedMapping(Migrated)
  // must equal redirect[migrated color] node for node, scalar and batch.
  const CompleteBinaryTree tree(10);
  const ColorMapping base(make_optimal_color_mapping(tree, 11));
  Rng rng(0xDE6D);
  const MigratedMapping migrated(
      base, 4, random_rotation(rng, 4, base.num_modules()));
  ASSERT_GE(base.num_modules(), 4u);
  const DegradedMapping degraded(migrated, {1, 3});
  const std::vector<Color>& redirect = degraded.redirect_table();

  std::vector<Node> nodes;
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    nodes.push_back(node_at(id));
    ASSERT_EQ(degraded.color_of(node_at(id)),
              redirect[migrated.color_of(node_at(id))])
        << "node id=" << id;
  }
  std::vector<Color> batch(nodes.size());
  degraded.color_of_batch(nodes, batch);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(batch[i], redirect[migrated.color_of(nodes[i])]) << i;
    ASSERT_NE(batch[i], 1u);
    ASSERT_NE(batch[i], 3u);
  }
}

TEST(MigratedMapping, LevelZeroRotatesEveryNodeUniformly) {
  // L = 0: one subtree (the whole tree), one rotation — the mapping
  // becomes a global color shift, i.e. a PermutedMapping with a cyclic
  // permutation.
  const CompleteBinaryTree tree(8);
  const std::uint32_t modules = 7;
  const ModuloMapping base(tree, modules);
  const MigratedMapping shifted(base, 0, {3});
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(shifted.color_of(node_at(id)),
              (base.color_of(node_at(id)) + 3) % modules);
  }
}

TEST(MigratedMapping, ReportsNameAndHistogramShape) {
  const CompleteBinaryTree tree(8);
  const ColorMapping base(tree, 5, 2);
  const MigratedMapping migrated(base, 2, {0, 1, 2, 3});
  EXPECT_EQ(migrated.name(), base.name() + "+migrated");
  EXPECT_EQ(migrated.num_modules(), base.num_modules());
  // TreeMapping holds the tree by value: compare shape, not address.
  EXPECT_EQ(migrated.tree().size(), base.tree().size());

  // Global module-load histogram: total node count is conserved.
  std::map<Color, std::uint64_t> hist;
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    hist[migrated.color_of(node_at(id))] += 1;
  }
  std::uint64_t total = 0;
  for (const auto& [c, count] : hist) {
    ASSERT_LT(c, migrated.num_modules());
    total += count;
  }
  EXPECT_EQ(total, tree.size());
}

}  // namespace
}  // namespace pmtree
