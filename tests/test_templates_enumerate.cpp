#include "pmtree/templates/enumerate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(Enumerate, SubtreeCountMatchesClosedForm) {
  for (std::uint32_t levels = 1; levels <= 8; ++levels) {
    const CompleteBinaryTree tree(levels);
    for (std::uint32_t k = 1; k <= levels; ++k) {
      std::uint64_t seen = 0;
      for_each_subtree(tree, tree_size(k), [&](const SubtreeInstance& s) {
        EXPECT_TRUE(s.fits(tree));
        ++seen;
        return true;
      });
      EXPECT_EQ(seen, count_subtrees(tree, tree_size(k)))
          << "levels=" << levels << " k=" << k;
    }
  }
}

TEST(Enumerate, LevelRunCountMatchesClosedForm) {
  for (std::uint32_t levels = 1; levels <= 8; ++levels) {
    const CompleteBinaryTree tree(levels);
    for (std::uint64_t K = 1; K <= tree.num_leaves(); K += 3) {
      std::uint64_t seen = 0;
      for_each_level_run(tree, K, [&](const LevelRunInstance& l) {
        EXPECT_TRUE(l.fits(tree));
        ++seen;
        return true;
      });
      EXPECT_EQ(seen, count_level_runs(tree, K)) << "levels=" << levels
                                                 << " K=" << K;
    }
  }
}

TEST(Enumerate, PathCountMatchesClosedForm) {
  for (std::uint32_t levels = 1; levels <= 8; ++levels) {
    const CompleteBinaryTree tree(levels);
    for (std::uint64_t K = 1; K <= levels; ++K) {
      std::uint64_t seen = 0;
      for_each_path(tree, K, [&](const PathInstance& p) {
        EXPECT_TRUE(p.fits(tree));
        ++seen;
        return true;
      });
      EXPECT_EQ(seen, count_paths(tree, K)) << "levels=" << levels << " K=" << K;
    }
  }
}

TEST(Enumerate, InstancesAreDistinct) {
  const CompleteBinaryTree tree(6);
  std::set<std::pair<std::uint64_t, std::uint32_t>> roots;
  for_each_subtree(tree, 7, [&](const SubtreeInstance& s) {
    EXPECT_TRUE(roots.emplace(s.root.index, s.root.level).second);
    return true;
  });
}

TEST(Enumerate, EarlyStopHonored) {
  const CompleteBinaryTree tree(8);
  std::uint64_t seen = 0;
  for_each_path(tree, 3, [&](const PathInstance&) {
    return ++seen < 5;
  });
  EXPECT_EQ(seen, 5u);
}

TEST(Enumerate, TpInstancesHaveExpectedShape) {
  // TP_K(i, j-1): size-K subtree at the anchor (truncated at the boundary)
  // plus the (j-1)-node path from the anchor's parent to the root.
  const CompleteBinaryTree tree(6);
  const std::uint64_t K = 7;  // k = 3
  for (std::uint32_t j = 1; j <= tree.levels(); ++j) {
    std::uint64_t seen = 0;
    for_each_tp(tree, K, j, [&](const CompositeInstance& tp) {
      ++seen;
      EXPECT_TRUE(tp.fits(tree));
      EXPECT_TRUE(tp.is_disjoint());
      const std::uint32_t anchor_level = j - 1;
      const std::uint32_t sub_levels =
          std::min<std::uint32_t>(3, tree.levels() - anchor_level);
      EXPECT_EQ(tp.size(), tree_size(sub_levels) + anchor_level);
      return true;
    });
    EXPECT_EQ(seen, pow2(j - 1));
  }
}

TEST(Enumerate, TryAccessorsMatchUncheckedOnEveryValidIndex) {
  const CompleteBinaryTree tree(5);
  const std::uint64_t K = 7;
  for (std::uint64_t idx = 0; idx < count_subtrees(tree, K); ++idx) {
    const auto got = try_subtree_at(tree, K, idx);
    ASSERT_TRUE(got) << "idx " << idx;
    EXPECT_EQ(got->root, subtree_at(tree, K, idx).root);
    EXPECT_EQ(got->size, K);
  }
  for (std::uint64_t idx = 0; idx < count_level_runs(tree, 3); ++idx) {
    const auto got = try_level_run_at(tree, 3, idx);
    ASSERT_TRUE(got) << "idx " << idx;
    EXPECT_EQ(got->first, level_run_at(tree, 3, idx).first);
    EXPECT_EQ(got->size, 3u);
  }
  for (std::uint64_t idx = 0; idx < count_paths(tree, 4); ++idx) {
    const auto got = try_path_at(tree, 4, idx);
    ASSERT_TRUE(got) << "idx " << idx;
    EXPECT_EQ(got->start, path_at(tree, 4, idx).start);
    EXPECT_EQ(got->size, 4u);
  }
  for (std::uint64_t idx = 0; idx < count_tp(tree); ++idx) {
    const auto got = try_tp_at(tree, K, idx);
    ASSERT_TRUE(got) << "idx " << idx;
    EXPECT_EQ(got->nodes(), tp_at(tree, K, idx).nodes());
  }
}

TEST(Enumerate, TryAccessorsRejectMalformedArguments) {
  const CompleteBinaryTree tree(5);
  // Malformed K: 6 is not a tree size; runs and paths need K >= 1; a
  // path cannot be longer than the tree is deep.
  EXPECT_FALSE(try_subtree_at(tree, 6, 0));
  EXPECT_FALSE(try_tp_at(tree, 6, 0));
  EXPECT_FALSE(try_level_run_at(tree, 0, 0));
  EXPECT_FALSE(try_path_at(tree, 0, 0));
  EXPECT_FALSE(try_path_at(tree, tree.levels() + 1, 0));
  // idx one past the family is the first invalid index.
  EXPECT_FALSE(try_subtree_at(tree, 7, count_subtrees(tree, 7)));
  EXPECT_FALSE(try_level_run_at(tree, 3, count_level_runs(tree, 3)));
  EXPECT_FALSE(try_path_at(tree, 4, count_paths(tree, 4)));
  EXPECT_FALSE(try_tp_at(tree, 7, count_tp(tree)));
  // A subtree family taller than the tree is empty, not an error class
  // of its own: every index is out of range.
  EXPECT_EQ(count_subtrees(tree, tree_size(6)), 0u);
  EXPECT_FALSE(try_subtree_at(tree, tree_size(6), 0));
  // A run longer than the widest level similarly yields no instances.
  EXPECT_FALSE(try_level_run_at(tree, pow2(tree.levels() - 1) + 1, 0));
}

TEST(Enumerate, CountsOnKnownSmallTree) {
  const CompleteBinaryTree tree(4);  // 15 nodes
  EXPECT_EQ(count_subtrees(tree, 7), 3u);    // roots in levels 0..1: 1+2
  EXPECT_EQ(count_paths(tree, 4), 8u);       // one per leaf
  EXPECT_EQ(count_paths(tree, 1), 15u);      // one per node
  EXPECT_EQ(count_level_runs(tree, 4), 6u);  // level 2: 1, level 3: 5
}

}  // namespace
}  // namespace pmtree
