#include "pmtree/templates/instance.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pmtree {
namespace {

TEST(SubtreeInstance, NodesAreBfsOrdered) {
  const SubtreeInstance s{v(1, 1), 7};
  const auto nodes = s.nodes();
  ASSERT_EQ(nodes.size(), 7u);
  EXPECT_EQ(nodes[0], v(1, 1));
  EXPECT_EQ(nodes[1], v(2, 2));
  EXPECT_EQ(nodes[2], v(3, 2));
  EXPECT_EQ(nodes[3], v(4, 3));
  EXPECT_EQ(nodes[6], v(7, 3));
  EXPECT_EQ(s.levels(), 3u);
}

TEST(SubtreeInstance, Fits) {
  const CompleteBinaryTree tree(4);
  EXPECT_TRUE((SubtreeInstance{v(0, 1), 7}.fits(tree)));
  EXPECT_FALSE((SubtreeInstance{v(0, 2), 7}.fits(tree)));  // would need level 4
  EXPECT_TRUE((SubtreeInstance{v(7, 3), 1}.fits(tree)));
}

TEST(LevelRunInstance, NodesLeftToRight) {
  const LevelRunInstance l{v(2, 3), 4};
  const auto nodes = l.nodes();
  ASSERT_EQ(nodes.size(), 4u);
  for (std::uint64_t t = 0; t < 4; ++t) EXPECT_EQ(nodes[t], v(2 + t, 3));
}

TEST(LevelRunInstance, Fits) {
  const CompleteBinaryTree tree(4);
  EXPECT_TRUE((LevelRunInstance{v(0, 3), 8}.fits(tree)));
  EXPECT_FALSE((LevelRunInstance{v(1, 3), 8}.fits(tree)));  // runs off the level
}

TEST(PathInstance, NodesBottomUp) {
  const PathInstance p{v(5, 3), 3};
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], v(5, 3));
  EXPECT_EQ(nodes[1], v(2, 2));
  EXPECT_EQ(nodes[2], v(1, 1));
}

TEST(PathInstance, Fits) {
  const CompleteBinaryTree tree(4);
  EXPECT_TRUE((PathInstance{v(5, 3), 4}.fits(tree)));   // reaches the root
  EXPECT_FALSE((PathInstance{v(5, 3), 5}.fits(tree)));  // overshoots the root
}

TEST(ElementaryInstance, KindDispatch) {
  const ElementaryInstance s = SubtreeInstance{v(0, 0), 3};
  const ElementaryInstance l = LevelRunInstance{v(0, 2), 2};
  const ElementaryInstance p = PathInstance{v(0, 2), 2};
  EXPECT_EQ(s.kind(), TemplateKind::kSubtree);
  EXPECT_EQ(l.kind(), TemplateKind::kLevelRun);
  EXPECT_EQ(p.kind(), TemplateKind::kPath);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NE(s.get_if<SubtreeInstance>(), nullptr);
  EXPECT_EQ(s.get_if<PathInstance>(), nullptr);
}

TEST(CompositeInstance, SizeComponentsAndNodes) {
  CompositeInstance c;
  c.add(SubtreeInstance{v(0, 1), 3});
  c.add(LevelRunInstance{v(4, 3), 2});
  EXPECT_EQ(c.component_count(), 2u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.nodes().size(), 5u);
  EXPECT_TRUE(c.is_disjoint());
}

TEST(CompositeInstance, DetectsOverlap) {
  CompositeInstance c;
  c.add(SubtreeInstance{v(0, 1), 3});
  c.add(PathInstance{v(0, 2), 2});  // v(0,2) and v(0,1) are in the subtree
  EXPECT_FALSE(c.is_disjoint());
}

TEST(CompositeInstance, FitsChecksAllParts) {
  const CompleteBinaryTree tree(4);
  CompositeInstance good;
  good.add(SubtreeInstance{v(0, 2), 3});
  good.add(LevelRunInstance{v(4, 3), 3});
  EXPECT_TRUE(good.fits(tree));
  CompositeInstance bad = good;
  bad.add(PathInstance{v(0, 3), 5});
  EXPECT_FALSE(bad.fits(tree));
}

TEST(TryAppendNodes, MatchesUncheckedOnValidInstances) {
  const CompleteBinaryTree tree(4);
  const SubtreeInstance s{v(1, 1), 7};
  const LevelRunInstance l{v(2, 3), 4};
  const PathInstance p{v(5, 3), 3};
  std::vector<Node> out{v(0, 0)};  // pre-existing content must survive
  ASSERT_TRUE(s.try_append_nodes(tree, out));
  ASSERT_TRUE(l.try_append_nodes(tree, out));
  ASSERT_TRUE(p.try_append_nodes(tree, out));
  std::vector<Node> want{v(0, 0)};
  s.append_nodes(want);
  l.append_nodes(want);
  p.append_nodes(want);
  EXPECT_EQ(out, want);
}

TEST(TryAppendNodes, RejectsMalformedInstancesWithoutWriting) {
  const CompleteBinaryTree tree(4);
  std::vector<Node> out{v(0, 0)};
  // Subtree: non-tree size, and a subtree hanging below the last level.
  EXPECT_FALSE((SubtreeInstance{v(0, 0), 6}.try_append_nodes(tree, out)));
  EXPECT_FALSE((SubtreeInstance{v(0, 2), 7}.try_append_nodes(tree, out)));
  // Level run: zero size, and a run off the right edge of its level.
  EXPECT_FALSE((LevelRunInstance{v(0, 2), 0}.try_append_nodes(tree, out)));
  EXPECT_FALSE((LevelRunInstance{v(3, 2), 2}.try_append_nodes(tree, out)));
  // Path: zero size, and a path climbing past the root.
  EXPECT_FALSE((PathInstance{v(1, 2), 0}.try_append_nodes(tree, out)));
  EXPECT_FALSE((PathInstance{v(1, 2), 4}.try_append_nodes(tree, out)));
  // Elementary wrapper forwards the verdict.
  EXPECT_FALSE(ElementaryInstance(SubtreeInstance{v(0, 2), 7})
                   .try_append_nodes(tree, out));
  ASSERT_EQ(out.size(), 1u);  // nothing was appended by any rejection
  EXPECT_EQ(out[0], v(0, 0));
}

TEST(TryAppendNodes, CompositeIsAllOrNothing) {
  const CompleteBinaryTree tree(4);
  CompositeInstance good;
  good.add(SubtreeInstance{v(0, 1), 3});
  good.add(LevelRunInstance{v(4, 3), 3});
  std::vector<Node> out;
  ASSERT_TRUE(good.try_append_nodes(tree, out));
  EXPECT_EQ(out, good.nodes());

  // One bad component poisons the whole composite: the first (valid)
  // component's nodes must not leak into `out`.
  CompositeInstance bad = good;
  bad.add(PathInstance{v(0, 3), 5});
  std::vector<Node> scratch{v(0, 0)};
  EXPECT_FALSE(bad.try_append_nodes(tree, scratch));
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch[0], v(0, 0));
}

TEST(TemplateKind, Names) {
  EXPECT_STREQ(to_string(TemplateKind::kSubtree), "S");
  EXPECT_STREQ(to_string(TemplateKind::kLevelRun), "L");
  EXPECT_STREQ(to_string(TemplateKind::kPath), "P");
}

}  // namespace
}  // namespace pmtree
