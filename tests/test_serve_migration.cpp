// Skew-adaptive migration tests (DESIGN.md §15): the HeatTracker's integer
// decay semantics, the MigrationPlanner's determinism and peak-reduction
// contract, and — the headline rule — that epoch remapping is a pure
// control-plane decision: migrated serving is bit-identical at 1/2/8
// workers and under the staged pipeline, a disabled policy leaves the
// server byte-identical to the static-mapping build, and faulted
// configurations keep the static mapping outright.
#include "pmtree/serve/migration.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pmtree/engine/sharded.hpp"
#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

// ---------------------------------------------------------------------------
// HeatTracker.

TEST(HeatTracker, RoutesHeatBySubtreeBelowTheLevelAndFixedAbove) {
  HeatTracker heat(2, 5);
  ASSERT_EQ(heat.subtree_count(), 4u);
  ASSERT_EQ(heat.modules(), 5u);

  // Two nodes in subtree 2 (level >= 2), one node above the level.
  const std::vector<Node> nodes = {v(2, 2), v(5, 3), v(1, 1)};
  const std::vector<Color> colors = {3, 3, 4};
  heat.observe(nodes, colors);

  EXPECT_EQ(heat.cell(2, 3), 2u);  // v(2,2) sid 2; v(5,3) sid 5>>1 = 2
  EXPECT_EQ(heat.subtree_heat(2), 2u);
  EXPECT_EQ(heat.subtree_heat(0), 0u);
  EXPECT_EQ(heat.fixed_heat(4), 1u);
  EXPECT_EQ(heat.fixed_heat(3), 0u);
  EXPECT_EQ(heat.total(), 3u);
}

TEST(HeatTracker, DecayIsExactIntegerHalvingWithConsistentSums) {
  HeatTracker heat(1, 3);
  std::vector<Node> nodes;
  std::vector<Color> colors;
  // 7 hits on (subtree 0, color 1), 3 on (subtree 1, color 2), 5 fixed
  // on module 0.
  for (int i = 0; i < 7; ++i) { nodes.push_back(v(0, 1)); colors.push_back(1); }
  for (int i = 0; i < 3; ++i) { nodes.push_back(v(1, 1)); colors.push_back(2); }
  for (int i = 0; i < 5; ++i) { nodes.push_back(v(0, 0)); colors.push_back(0); }
  heat.observe(nodes, colors);
  ASSERT_EQ(heat.total(), 15u);

  heat.decay(1);  // h -= h >> 1: 7 -> 4, 3 -> 2, 5 -> 3
  EXPECT_EQ(heat.cell(0, 1), 4u);
  EXPECT_EQ(heat.cell(1, 2), 2u);
  EXPECT_EQ(heat.fixed_heat(0), 3u);
  EXPECT_EQ(heat.subtree_heat(0), 4u);
  EXPECT_EQ(heat.subtree_heat(1), 2u);
  EXPECT_EQ(heat.total(), 9u);

  // Shift >= 64 is a no-op (h >> 64 would be UB if computed naively).
  heat.decay(64);
  EXPECT_EQ(heat.cell(0, 1), 4u);
  EXPECT_EQ(heat.total(), 9u);

  // Shift 0 clears the ledger entirely.
  heat.decay(0);
  EXPECT_EQ(heat.cell(0, 1), 0u);
  EXPECT_EQ(heat.subtree_heat(0), 0u);
  EXPECT_EQ(heat.fixed_heat(0), 0u);
  EXPECT_EQ(heat.total(), 0u);
}

// ---------------------------------------------------------------------------
// MigrationPlanner.

// A deterministic skewed batch stream: every batch hits bottom-level
// nodes of subtrees 0 and 1 that all share one base color — the worst
// case a static mapping can face at this granularity.
std::vector<std::vector<Node>> skewed_batches(const TreeMapping& base,
                                              std::uint32_t subtree_level,
                                              std::size_t batches) {
  const std::uint32_t bottom = base.tree().levels() - 1;
  const Color target = base.color_of(v(0, bottom));
  std::vector<Node> hot;
  for (std::uint64_t i = 0; i < pow2(bottom); ++i) {
    const Node n = v(i, bottom);
    if ((i >> (bottom - subtree_level)) > 1) break;  // subtrees 0 and 1
    if (base.color_of(n) == target) hot.push_back(n);
  }
  std::vector<std::vector<Node>> out(batches);
  Rng rng(0x5EED);
  for (std::size_t b = 0; b < batches; ++b) {
    for (int k = 0; k < 6; ++k) {
      out[b].push_back(hot[rng.below(hot.size())]);
    }
  }
  return out;
}

TEST(MigrationPlanner, StaysOnBaseUntilFirstEpochThenReplaysDeterministically) {
  const CompleteBinaryTree tree(9);
  const ColorMapping base(make_optimal_color_mapping(tree, 13));
  MigrationPolicy policy;
  policy.epoch_batches = 4;
  policy.top_k = 2;
  policy.subtree_level = 3;
  const auto batches = skewed_batches(base, policy.subtree_level, 12);

  MigrationPlanner a(base, policy);
  EXPECT_EQ(&a.current(), static_cast<const TreeMapping*>(&base));
  for (std::size_t b = 0; b < 3; ++b) {
    a.observe(batches[b], b);
    EXPECT_EQ(&a.current(), static_cast<const TreeMapping*>(&base))
        << "planned before the batch budget was reached";
  }
  a.observe(batches[3], 3);
  EXPECT_EQ(a.epochs_planned(), 1u);
  EXPECT_NE(&a.current(), static_cast<const TreeMapping*>(&base));
  for (std::size_t b = 4; b < batches.size(); ++b) a.observe(batches[b], b);
  EXPECT_EQ(a.batches_observed(), batches.size());
  EXPECT_EQ(a.epochs_planned(), batches.size() / policy.epoch_batches);

  // Replay: a second planner fed the identical stream reproduces every
  // event and the final rotation table bit for bit.
  MigrationPlanner b(base, policy);
  for (std::size_t i = 0; i < batches.size(); ++i) b.observe(batches[i], i);
  ASSERT_EQ(b.events().size(), a.events().size());
  for (std::size_t e = 0; e < a.events().size(); ++e) {
    ASSERT_EQ(b.events()[e].to_json().dump(), a.events()[e].to_json().dump())
        << "epoch " << e;
  }
  ASSERT_EQ(b.stats().dump(), a.stats().dump());
  const auto& ma = static_cast<const MigratedMapping&>(a.current());
  const auto& mb = static_cast<const MigratedMapping&>(b.current());
  ASSERT_EQ(mb.rotation_table(), ma.rotation_table());
}

TEST(MigrationPlanner, PlansReducePredictedPeakOnCollidingSubtrees) {
  const CompleteBinaryTree tree(9);
  const ColorMapping base(make_optimal_color_mapping(tree, 13));
  MigrationPolicy policy;
  policy.epoch_batches = 4;
  policy.top_k = 4;
  policy.subtree_level = 3;
  MigrationPlanner planner(base, policy);
  const auto batches = skewed_batches(base, policy.subtree_level, 4);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    planner.observe(batches[b], b * 10);
  }
  ASSERT_EQ(planner.events().size(), 1u);
  const MigrationEvent& e = planner.events()[0];
  EXPECT_EQ(e.epoch, 1u);
  EXPECT_EQ(e.cycle, 30u);
  EXPECT_EQ(e.batches, 4u);
  EXPECT_FALSE(e.moves.empty());
  // Both hot subtrees collide on one base color; rotating either apart
  // must strictly lower the predicted peak.
  EXPECT_LT(e.peak_after, e.peak_before);
  const auto& mapping = static_cast<const MigratedMapping&>(planner.current());
  EXPECT_FALSE(mapping.is_identity());
}

// ---------------------------------------------------------------------------
// Server end to end.

// A hot-spot request stream: 80% of requests read bottom-level leaves of
// two subtrees (Zipf-ish bias), the rest scatter across the tree.
std::vector<Request> skewed_requests(std::uint32_t levels, std::size_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t bottom = levels - 1;
  std::vector<Request> requests;
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(8, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(3);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(8));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    if (rng.below(10) < 8) {
      // Hot: 3 leaves from the first 1/8th of the bottom level.
      const std::uint64_t span = pow2(bottom) / 8;
      const std::uint64_t start = rng.below(span);
      for (std::uint64_t k = 0; k < 3; ++k) {
        r.nodes.push_back(v((start + k) % span, bottom));
      }
    } else {
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t level =
            static_cast<std::uint32_t>(rng.below(levels));
        r.nodes.push_back(v(rng.below(pow2(level)), level));
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

ServerOptions migrated_options() {
  ServerOptions opts;
  opts.tick_cycles = 2;
  opts.replicas = 3;
  opts.workers = 1;
  opts.admission.queue_bound = 48;
  opts.admission.overflow = OverflowPolicy::kShed;
  opts.batch.max_batch_nodes = 24;
  opts.batch.max_wait_cycles = 4;
  opts.retry.max_retries = 2;
  opts.retry.attempt_timeout_cycles = 48;
  opts.retry.backoff_base_cycles = 8;
  opts.retry.backoff_cap_cycles = 64;
  opts.migration.epoch_batches = 4;
  opts.migration.top_k = 4;
  opts.migration.subtree_level = 3;
  return opts;
}

ServeReport run_once(const TreeMapping& mapping, const ServerOptions& opts,
                     const std::vector<Request>& requests) {
  Server server(mapping, opts);
  for (const Request& r : requests) server.submit(r);
  return server.run();
}

void expect_same_metrics_modulo_pipeline(const Json& got, const Json& want) {
  for (const auto& [key, value] : want.members()) {
    if (key == "pipeline") continue;
    const Json* other = got.find(key);
    ASSERT_NE(other, nullptr) << "missing metrics section " << key;
    ASSERT_EQ(other->dump(), value.dump()) << "metrics section " << key;
  }
}

TEST(ServeMigration, ServerBitIdenticalAcrossWorkerCounts) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const auto requests = skewed_requests(tree.levels(), 240, 0x4EA7);
  const ServerOptions base = migrated_options();

  const ServeReport want = run_once(mapping, base, requests);
  // The planner actually ran: epochs were planned and exported.
  const Json* migration = want.metrics.find("migration");
  ASSERT_NE(migration, nullptr);
  EXPECT_GE(migration->find("epochs_planned")->as_uint(), 1u);
  EXPECT_GE(migration->find("mappings_minted")->as_uint(), 1u);

  for (const unsigned workers : {2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServerOptions opts = base;
    opts.workers = workers;
    const ServeReport got = run_once(mapping, opts, requests);
    ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
  }
}

TEST(ServeMigration, StagedPipelineMatchesOracleUnderMigration) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const auto requests = skewed_requests(tree.levels(), 240, 0x91BE);
  const ServerOptions base = migrated_options();
  const ServeReport oracle = run_once(mapping, base, requests);

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("pipeline_workers=" + std::to_string(workers));
    ServerOptions opts = base;
    opts.pipeline.workers = workers;
    const ServeReport piped = run_once(mapping, opts, requests);
    ASSERT_EQ(piped.responses.size(), oracle.responses.size());
    for (std::size_t i = 0; i < piped.responses.size(); ++i) {
      ASSERT_EQ(piped.responses[i].status, oracle.responses[i].status) << i;
      ASSERT_EQ(piped.responses[i].completion_cycle,
                oracle.responses[i].completion_cycle)
          << i;
      ASSERT_EQ(piped.responses[i].batch, oracle.responses[i].batch) << i;
      ASSERT_EQ(piped.responses[i].retries, oracle.responses[i].retries) << i;
    }
    ASSERT_EQ(piped.batches.size(), oracle.batches.size());
    ASSERT_EQ(piped.rounds, oracle.rounds);
    ASSERT_EQ(piped.final_cycle, oracle.final_cycle);
    expect_same_metrics_modulo_pipeline(piped.metrics, oracle.metrics);
    // The pipelined planner saw the same batch stream: same epoch audit.
    ASSERT_EQ(piped.metrics.find("migration")->dump(),
              oracle.metrics.find("migration")->dump());
  }
}

TEST(ServeMigration, DisabledPolicyIsByteIdenticalToStaticServer) {
  const CompleteBinaryTree tree(9);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 13));
  const auto requests = skewed_requests(tree.levels(), 200, 0xD15AB);

  ServerOptions off = migrated_options();
  off.migration = MigrationPolicy{};  // epoch_batches 0: disabled
  ASSERT_FALSE(off.migration.enabled());
  ServerOptions static_opts = off;

  const ServeReport a = run_once(mapping, off, requests);
  const ServeReport b = run_once(mapping, static_opts, requests);
  ASSERT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.metrics.find("migration"), nullptr);

  // top_k == 0 disables too, whatever the epoch budget says.
  ServerOptions zero_k = migrated_options();
  zero_k.migration.top_k = 0;
  const ServeReport c = run_once(mapping, zero_k, requests);
  ASSERT_EQ(c.to_json().dump(), b.to_json().dump());
}

TEST(ServeMigration, FaultedConfigurationKeepsTheStaticMapping) {
  const CompleteBinaryTree tree(8);
  const ColorMapping mapping(make_optimal_color_mapping(tree, 11));
  const auto requests = skewed_requests(tree.levels(), 160, 0xFA17);

  fault::FaultPlan::RandomOptions fopts;
  fopts.seed = 0xFA17;
  fopts.modules = mapping.num_modules();
  fopts.fail_fraction = 0.2;
  fopts.fail_window = 64;
  fopts.slowdown_count = 2;
  fopts.slowdown_window = 128;
  fopts.slowdown_max_length = 64;
  fopts.slowdown_max_period = 4;
  const fault::FaultPlan plan = fault::FaultPlan::random(fopts);

  ServerOptions with_policy = migrated_options();
  with_policy.engine.faults = &plan;
  ServerOptions without_policy = with_policy;
  without_policy.migration = MigrationPolicy{};

  const ServeReport got = run_once(mapping, with_policy, requests);
  const ServeReport want = run_once(mapping, without_policy, requests);
  ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
  EXPECT_EQ(got.metrics.find("migration"), nullptr)
      << "a faulted run must not pretend it migrated";
}

// ---------------------------------------------------------------------------
// Forest: per-tenant migration scope.

TEST(ServeMigration, ForestMigratesPerTenantWithWorkerInvariance) {
  const CompleteBinaryTree hot_tree(9);
  const ColorMapping hot_mapping(make_optimal_color_mapping(hot_tree, 13));
  const CompleteBinaryTree cold_tree(7);
  const ModuloMapping cold_mapping(cold_tree, 7);

  const auto hot_requests = skewed_requests(hot_tree.levels(), 180, 0xF0A);
  const auto cold_requests = skewed_requests(cold_tree.levels(), 60, 0xF0B);

  auto run_forest = [&](unsigned workers, unsigned pipeline_workers) {
    ForestOptions fopts;
    fopts.tick_cycles = 2;
    fopts.replicas = 4;
    fopts.workers = workers;
    fopts.drr_quantum_nodes = 24;
    fopts.pipeline.workers = pipeline_workers;
    Forest forest(fopts);

    TenantOptions hot;
    hot.rate = 3.0;
    hot.admission.queue_bound = 32;
    hot.batch.max_batch_nodes = 24;
    hot.batch.max_wait_cycles = 4;
    hot.migration.epoch_batches = 4;
    hot.migration.top_k = 4;
    hot.migration.subtree_level = 3;
    forest.add_tenant(hot_mapping, std::move(hot));

    TenantOptions cold;  // migration disabled: the default policy
    cold.admission.queue_bound = 16;
    cold.batch.max_batch_nodes = 16;
    forest.add_tenant(cold_mapping, std::move(cold));

    for (const Request& r : hot_requests) forest.submit(0, r);
    for (const Request& r : cold_requests) forest.submit(1, r);
    return forest.run();
  };

  const ForestReport want = run_forest(1, 0);
  const Json* migration = want.tenants[0].metrics.find("migration");
  ASSERT_NE(migration, nullptr) << "hot tenant's planner never exported";
  EXPECT_GE(migration->find("epochs_planned")->as_uint(), 1u);
  EXPECT_EQ(want.tenants[1].metrics.find("migration"), nullptr)
      << "migration leaked across the tenant boundary";

  for (const unsigned workers : {2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const ForestReport got = run_forest(workers, 0);
    ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
  }
  for (const unsigned pipeline_workers : {1u, 2u}) {
    SCOPED_TRACE("pipeline_workers=" + std::to_string(pipeline_workers));
    const ForestReport piped = run_forest(1, pipeline_workers);
    ASSERT_EQ(piped.tenants.size(), want.tenants.size());
    for (std::size_t i = 0; i < want.tenants.size(); ++i) {
      SCOPED_TRACE("tenant=" + std::to_string(i));
      const TenantReport& a = piped.tenants[i];
      const TenantReport& b = want.tenants[i];
      ASSERT_EQ(a.responses.size(), b.responses.size());
      for (std::size_t r = 0; r < a.responses.size(); ++r) {
        ASSERT_EQ(a.responses[r].status, b.responses[r].status) << r;
        ASSERT_EQ(a.responses[r].completion_cycle,
                  b.responses[r].completion_cycle)
            << r;
      }
      ASSERT_EQ(a.served_nodes, b.served_nodes);
      // Tenant metrics carry no wall-time: identical outright, the
      // migration audit included.
      ASSERT_EQ(a.metrics.dump(), b.metrics.dump());
    }
    ASSERT_EQ(piped.final_cycle, want.final_cycle);
  }
}

// ---------------------------------------------------------------------------
// MigratedMapping under the sharded engine: thread-count bit-identity
// survives the combinator (TSan runs this file; see run_sanitizers.sh).

TEST(ServeMigration, ShardedRunnerBitIdenticalOverMigratedMapping) {
  const CompleteBinaryTree tree(10);
  const ColorMapping base(make_optimal_color_mapping(tree, 15));
  Rng rng(0x5AAD);
  std::vector<Color> rot(std::size_t{1} << 4);
  for (Color& r : rot) r = static_cast<Color>(rng.below(base.num_modules()));
  const MigratedMapping mapping(base, 4, std::move(rot));

  const Workload workload = Workload::mixed(tree, 9, 90, 0x5AAD);
  const engine::ArrivalSchedule schedule = engine::ArrivalSchedule::bursty(8, 4);
  const engine::ShardedEngineRunner runner(mapping);
  engine::ShardedOptions opts;
  opts.shards = 4;
  opts.threads = 1;
  const engine::ShardedResult want = runner.run(workload, schedule, opts);
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    opts.threads = threads;
    const engine::ShardedResult got = runner.run(workload, schedule, opts);
    ASSERT_EQ(got.merged.to_json().dump(), want.merged.to_json().dump());
    ASSERT_EQ(got.shards.size(), want.shards.size());
    for (std::size_t s = 0; s < got.shards.size(); ++s) {
      ASSERT_EQ(got.shards[s].to_json().dump(), want.shards[s].to_json().dump())
          << "shard " << s;
    }
  }
}

}  // namespace
}  // namespace pmtree::serve
