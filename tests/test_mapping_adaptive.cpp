// AdaptiveMapping combinator (mapping/combinators.hpp): pure delegation
// to the chosen candidate, batch≡scalar equivalence, composition with the
// other combinators in both orders (Adaptive over Degraded/Migrated
// candidates, and Degraded/Migrated over an adaptive base), and the
// base_shape_changed() audit at parity with the PR 9 combinator suite.
#include "pmtree/mapping/combinators.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pmtree/dyn/incremental.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

std::vector<Node> sample_nodes(const CompleteBinaryTree& tree,
                               std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t level =
        static_cast<std::uint32_t>(rng.below(tree.levels()));
    nodes.push_back(v(rng.below(pow2(level)), level));
  }
  return nodes;
}

TEST(AdaptiveMapping, DelegatesToTheChosenCandidate) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);

  const AdaptiveMapping pick_color({&color, &label}, 0);
  const AdaptiveMapping pick_label({&color, &label}, 1);
  EXPECT_EQ(pick_color.num_modules(), 7u);
  EXPECT_EQ(pick_color.candidate_count(), 2u);
  EXPECT_EQ(pick_color.chosen(), 0u);
  EXPECT_EQ(&pick_label.chosen_mapping(),
            static_cast<const TreeMapping*>(&label));
  EXPECT_EQ(pick_color.name(), color.name() + "+adaptive");
  EXPECT_EQ(pick_label.name(), label.name() + "+adaptive");

  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    const Node n = node_at(id);
    ASSERT_EQ(pick_color.color_of(n), color.color_of(n)) << "id " << id;
    ASSERT_EQ(pick_label.color_of(n), label.color_of(n)) << "id " << id;
  }
}

TEST(AdaptiveMapping, BatchKernelMatchesScalar) {
  const CompleteBinaryTree tree(10);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  const DegradedMapping degraded(color, {2, 5});

  for (const std::size_t chosen : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}}) {
    const AdaptiveMapping adaptive({&color, &label, &degraded}, chosen);
    const std::vector<Node> nodes = sample_nodes(tree, 257, 0xAD + chosen);
    std::vector<Color> batch(nodes.size());
    adaptive.color_of_batch(nodes,
                            std::span<Color>(batch.data(), batch.size()));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      ASSERT_EQ(batch[i], adaptive.color_of(nodes[i]))
          << "chosen " << chosen << " i " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Composition in both orders.

TEST(AdaptiveMapping, ComposesOverDegradedCandidates) {
  // Adaptive ∘ Degraded: the candidate list holds degraded views, the
  // selector picks among them — colors match the direct composition.
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const DegradedMapping degraded_a(color, {1});
  const DegradedMapping degraded_b(color, {4, 6});

  const AdaptiveMapping adaptive({&degraded_a, &degraded_b}, 1);
  const std::vector<Node> nodes = sample_nodes(tree, 200, 0xDE6);
  for (const Node n : nodes) {
    ASSERT_EQ(adaptive.color_of(n), degraded_b.color_of(n));
  }
  // No dead module ever surfaces through the adaptive layer.
  for (const Node n : nodes) {
    const Color c = adaptive.color_of(n);
    ASSERT_NE(c, 4u);
    ASSERT_NE(c, 6u);
  }
}

TEST(AdaptiveMapping, ComposesUnderDegradedMapping) {
  // Degraded ∘ Adaptive: module failure after the selection layer — the
  // degraded wrapper folds the adaptive choice's colors.
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const LabelTreeMapping label(tree, 7);
  const AdaptiveMapping adaptive({&color, &label}, 1);
  const DegradedMapping degraded(adaptive, {0, 3});
  const DegradedMapping oracle(label, {0, 3});

  const std::vector<Node> nodes = sample_nodes(tree, 200, 0xDE7);
  std::vector<Color> batch(nodes.size());
  degraded.color_of_batch(nodes,
                          std::span<Color>(batch.data(), batch.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(batch[i], oracle.color_of(nodes[i])) << i;
    ASSERT_EQ(degraded.color_of(nodes[i]), oracle.color_of(nodes[i])) << i;
  }
}

TEST(AdaptiveMapping, ComposesWithMigratedInBothOrders) {
  const CompleteBinaryTree tree(9);
  const ColorMapping color(make_optimal_color_mapping(tree, 7));
  const MigratedMapping migrated(color, 2, std::vector<Color>{3, 0, 1, 0});

  // Adaptive ∘ Migrated: a minted epoch mapping as a candidate.
  const AdaptiveMapping over({&color, &migrated}, 1);
  // Migrated ∘ Adaptive: rotation applied on top of the selection.
  const AdaptiveMapping base({&color, &migrated}, 0);
  const MigratedMapping under(base, 2, std::vector<Color>{3, 0, 1, 0});

  const std::vector<Node> nodes = sample_nodes(tree, 300, 0x316);
  for (const Node n : nodes) {
    ASSERT_EQ(over.color_of(n), migrated.color_of(n));
    ASSERT_EQ(under.color_of(n), migrated.color_of(n));
  }
  std::vector<Color> a(nodes.size()), b(nodes.size());
  over.color_of_batch(nodes, std::span<Color>(a.data(), a.size()));
  under.color_of_batch(nodes, std::span<Color>(b.data(), b.size()));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// base_shape_changed(): parity with the PR 9 combinator audit.

TEST(AdaptiveMapping, DynamicBaseGrowthIsDetectedThroughAnyCandidate) {
  const CompleteBinaryTree envelope(8);
  dyn::IncrementalColorer colorer =
      dyn::IncrementalColorer::color(envelope, 5, 2);
  colorer.touch(Node{2, 3});  // quiesce at 3 levels

  const ColorMapping frozen(colorer.tree(), 5, 2);
  const AdaptiveMapping adaptive({&frozen, &colorer}, 0);
  EXPECT_FALSE(adaptive.base_shape_changed());
  EXPECT_EQ(adaptive.color_of(Node{2, 3}), frozen.color_of(Node{2, 3}));

  // A NON-chosen candidate growing still trips the audit: the selector
  // may re-choose it at the next epoch, so all candidates must be valid.
  colorer.touch(Node{6, 11});
  EXPECT_TRUE(adaptive.base_shape_changed());

  // Shrinking back to the snapshot shape re-quiesces.
  colorer.reset();
  colorer.touch(Node{2, 3});
  EXPECT_FALSE(adaptive.base_shape_changed());

  // All-static candidate lists can never trip the audit.
  const CompleteBinaryTree tree(7);
  const ColorMapping a(tree, 5, 2);
  const LabelTreeMapping b(tree, 5);
  const AdaptiveMapping stable({&a, &b}, 1);
  EXPECT_FALSE(stable.base_shape_changed());
}

}  // namespace
}  // namespace pmtree
