// COLOR on trees taller than one block: Theorem 3 (conflict-freeness with
// the block family B(N)), Theorem 4/5 (cost <= 1 at full parallelism),
// Lemmas 3-5 (oversized templates) and Theorem 6 (composites), verified
// exhaustively on moderate trees.
#include "pmtree/mapping/color.hpp"

#include <gtest/gtest.h>

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/verify.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

struct ColorParams {
  std::uint32_t levels;  ///< tree levels H
  std::uint32_t N;
  std::uint32_t k;
};

std::string param_name(const ::testing::TestParamInfo<ColorParams>& param_info) {
  return "H" + std::to_string(param_info.param.levels) + "_N" +
         std::to_string(param_info.param.N) + "_k" + std::to_string(param_info.param.k);
}

class ColorTheorem3 : public ::testing::TestWithParam<ColorParams> {};

TEST_P(ColorTheorem3, ConflictFreeOnSubtreesAndPaths) {
  const auto [levels, N, k] = GetParam();
  const ColorMapping map(CompleteBinaryTree(levels), N, k);
  const auto verdict = verify_cf_elementary(map, tree_size(k), N);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST_P(ColorTheorem3, LazyRetrievalMatchesEagerTable) {
  const auto [levels, N, k] = GetParam();
  const CompleteBinaryTree tree(levels);
  const ColorMapping map(tree, N, k);
  const auto table = map.materialize();
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(map.color_of(node_at(id)), table[id])
        << "node " << to_string(node_at(id));
  }
}

TEST_P(ColorTheorem3, BlockTableRetrievalMatchesLazy) {
  // PRE-BASIC-COLOR's O(H/(N-k)) retrieval must agree with the O(H) chase.
  const auto [levels, N, k] = GetParam();
  const CompleteBinaryTree tree(levels);
  const ColorMapping lazy(tree, N, k);
  const ColorMapping fast(tree, N, k, internal::GammaVariant::kCorrect,
                          ColorMapping::Retrieval::kBlockTable);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(lazy.color_of(node_at(id)), fast.color_of(node_at(id)))
        << "node " << to_string(node_at(id));
  }
}

TEST_P(ColorTheorem3, AllColorsWithinModuleCount) {
  const auto [levels, N, k] = GetParam();
  const CompleteBinaryTree tree(levels);
  const ColorMapping map(tree, N, k);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_LT(map.color_of(node_at(id)), map.num_modules());
  }
}

TEST_P(ColorTheorem3, LevelTemplateCostAtMostTwo) {
  // Lemma 2 bounds L(K) by 1 conflict inside one height-N block; on taller
  // trees a run can straddle a block-generation boundary where the Gamma
  // lists change, costing at most one extra conflict (measured: exactly 2
  // occurs, e.g. H=14, N=6, k=3).
  const auto [levels, N, k] = GetParam();
  const ColorMapping map(CompleteBinaryTree(levels), N, k);
  const auto cost = evaluate_level_runs(map, tree_size(k));
  EXPECT_LE(cost.max_conflicts, 2u);
}

TEST_P(ColorTheorem3, OptimalityWitnessHolds) {
  // Theorem 2: the TP(K, N-k) instances have exactly N + K - k nodes and
  // are rainbow under COLOR — the lower-bound witness.
  const auto [levels, N, k] = GetParam();
  if (N <= k) GTEST_SKIP() << "witness needs N > k";
  const ColorMapping map(CompleteBinaryTree(levels), N, k);
  const auto verdict = verify_optimality_witness(map, N, k);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

// The paper sizes trees as H = h(N-k) + N; the implementation must also be
// correct for every other height (dummy levels merely truncated), so the
// sweep includes non-aligned heights.
INSTANTIATE_TEST_SUITE_P(
    Sweep, ColorTheorem3,
    ::testing::Values(
        // k = 1
        ColorParams{7, 3, 1}, ColorParams{8, 3, 1}, ColorParams{11, 4, 1},
        // k = 2
        ColorParams{8, 4, 2}, ColorParams{9, 4, 2}, ColorParams{10, 4, 2},
        ColorParams{11, 5, 2}, ColorParams{12, 5, 2},
        // k = 3
        ColorParams{9, 5, 3}, ColorParams{11, 5, 3}, ColorParams{12, 6, 3},
        ColorParams{13, 6, 3},
        // k = 4, including N < 2k (blocks overlap by more than half)
        ColorParams{11, 6, 4}, ColorParams{13, 7, 4}, ColorParams{12, 9, 4},
        // taller tree, several block generations
        ColorParams{14, 5, 2}, ColorParams{15, 6, 3}),
    param_name);

// --- Theorems 4 & 5: full parallelism, cost <= 1. -----------------------

class ColorTheorem4 : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ColorTheorem4, CostAtMostOneOnSizeMTemplates) {
  const std::uint32_t m = GetParam();
  const std::uint32_t M = static_cast<std::uint32_t>(tree_size(m));
  // Tree must host S(M) (m levels) and P(M) (M levels).
  const std::uint32_t levels = M + 2;
  const ColorMapping map = make_optimal_color_mapping(CompleteBinaryTree(levels), M);
  EXPECT_EQ(map.num_modules(), M);
  const auto verdict = verify_full_parallelism(map);
  EXPECT_TRUE(verdict.ok) << "M=" << M << " measured=" << verdict.measured
                          << " " << verdict.detail;
}

TEST_P(ColorTheorem4, NotConflictFreeAtFullParallelism) {
  // Section 4: no mapping is M-CF on {S(M), P(M)} — COLOR's cost is
  // exactly 1, not 0, so the <=1 bound is tight.
  const std::uint32_t m = GetParam();
  const std::uint32_t M = static_cast<std::uint32_t>(tree_size(m));
  const std::uint32_t levels = M + 2;
  const ColorMapping map = make_optimal_color_mapping(CompleteBinaryTree(levels), M);
  const auto s = evaluate_subtrees(map, M);
  const auto p = evaluate_paths(map, M);
  EXPECT_EQ(std::max(s.max_conflicts, p.max_conflicts), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColorTheorem4, ::testing::Values(2u, 3u, 4u),
                         [](const auto& param_info) {
                           return "m" + std::to_string(param_info.param);
                         });

// --- Lemmas 3-5 and Theorem 6: oversized and composite templates. -------

TEST(ColorOversized, PathBoundLemma3) {
  const std::uint32_t m = 3;  // M = 7, N = 6, K = 3
  const std::uint32_t M = static_cast<std::uint32_t>(tree_size(m));
  const CompleteBinaryTree tree(16);
  const ColorMapping map = make_optimal_color_mapping(tree, M);
  for (std::uint64_t D = M; D <= 16; D += 3) {
    const auto cost = evaluate_paths(map, D);
    EXPECT_LE(cost.max_conflicts, bounds::color_path_bound(D, M))
        << "D=" << D;
  }
}

TEST(ColorOversized, LevelBoundLemma4) {
  const std::uint32_t M = 7;
  const CompleteBinaryTree tree(12);
  const ColorMapping map = make_optimal_color_mapping(tree, M);
  for (std::uint64_t D = M; D <= 64; D = 2 * D + 1) {
    const auto cost = evaluate_level_runs(map, D);
    EXPECT_LE(cost.max_conflicts, bounds::color_level_bound(D, M))
        << "D=" << D;
  }
}

TEST(ColorOversized, SubtreeBoundLemma5) {
  const std::uint32_t M = 7;
  const CompleteBinaryTree tree(12);
  const ColorMapping map = make_optimal_color_mapping(tree, M);
  for (std::uint32_t d = 3; d <= 8; ++d) {
    const std::uint64_t D = tree_size(d);
    const auto cost = evaluate_subtrees(map, D);
    EXPECT_LE(cost.max_conflicts, bounds::color_subtree_bound(D, M))
        << "D=" << D;
  }
}

TEST(ColorComposite, Theorem6BoundOnSampledComposites) {
  const std::uint32_t M = 7;
  const CompleteBinaryTree tree(14);
  const ColorMapping map = make_optimal_color_mapping(tree, M);
  Rng rng(2024);
  for (const std::uint64_t c : {1u, 2u, 4u, 8u}) {
    for (const std::uint64_t D : {16u, 64u, 256u}) {
      if (D < c) continue;
      const auto cost = sample_composites(map, D, c, 50, rng);
      EXPECT_GT(cost.instances, 0u) << "sampler starved at D=" << D << " c=" << c;
      EXPECT_LE(cost.max_conflicts, bounds::color_composite_bound(D, M, c))
          << "D=" << D << " c=" << c;
    }
  }
}

TEST(ColorEager, EagerWrapperMatchesBase) {
  const CompleteBinaryTree tree(10);
  const ColorMapping base(tree, 5, 2);
  const EagerColorMapping eager(base);
  EXPECT_EQ(eager.num_modules(), base.num_modules());
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(eager.color_of(node_at(id)), base.color_of(node_at(id)));
  }
}

}  // namespace
}  // namespace pmtree
