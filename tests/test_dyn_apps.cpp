// Dynamic app clients (DESIGN.md §16): dictionary inserts and heap
// push/pop planned speculatively, applied at the serve barrier, and
// reconciled from the deterministic mutation log. The heap's pop stream
// must match a sequential std::priority_queue reference; the dictionary
// must converge across clients and report conflict losses honestly.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "pmtree/dyn/apps.hpp"
#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::dyn {
namespace {

constexpr std::uint32_t kLevels = 10;

struct Harness {
  CompleteBinaryTree envelope{kLevels};
  DynamicTree tree{kLevels};
  IncrementalColorer colorer = IncrementalColorer::color(envelope, 6, 2);
  serve::Server server;

  Harness() : server(colorer, options()) {}

  serve::ServerOptions options() {
    serve::ServerOptions opts;
    opts.tick_cycles = 2;
    opts.batch.max_batch_nodes = 24;
    opts.dyn.tree = &tree;
    opts.dyn.colorer = &colorer;
    return opts;
  }
};

TEST(DynamicDictionary, InsertThenSearchRoundTrips) {
  Harness h;
  DynamicDictionary dict(h.tree, 0, 500);
  Rng rng(0xD1C70001);
  std::vector<DynamicDictionary::Key> keys;
  std::uint64_t cycle = 0;
  for (int i = 0; i < 40; ++i) {
    const auto key = static_cast<DynamicDictionary::Key>(rng.below(10000));
    keys.push_back(key);
    dict.submit_insert(h.server, key, cycle);
    cycle += 2;
  }
  const serve::ServeReport report = h.server.run();
  const auto outcomes = dict.reconcile(report);
  ASSERT_EQ(outcomes.size(), keys.size());
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.response.status, serve::RequestStatus::kOk);
    // Duplicate keys in the stream legitimately report applied = false;
    // every key must still be found afterwards.
    EXPECT_TRUE(out.found) << "key " << out.key;
  }
  for (const auto key : keys) EXPECT_TRUE(dict.contains(key));
  EXPECT_FALSE(dict.contains(-1));
  EXPECT_TRUE(h.tree.validate());
  EXPECT_EQ(h.tree.size(), dict.size());

  // A second run of pure searches re-finds everything.
  cycle = 0;
  for (const auto key : keys) {
    dict.submit_search(h.server, key, cycle);
    cycle += 1;
  }
  dict.submit_search(h.server, -42, cycle);
  const auto outcomes2 = dict.reconcile(h.server.run());
  ASSERT_EQ(outcomes2.size(), keys.size() + 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(outcomes2[i].found) << "key " << outcomes2[i].key;
  }
  EXPECT_FALSE(outcomes2.back().found);
}

TEST(DynamicDictionary, RacingClientsConvergeAndLosersAreReported) {
  Harness h;
  DynamicDictionary alice(h.tree, 0, 500);
  DynamicDictionary bob(h.tree, 1, 500);
  // Both plan the same key from the same initial state: identical attach
  // coordinate, so exactly one insert applies and the other is deduped /
  // rejected at the barrier.
  alice.submit_insert(h.server, 777, 0);
  bob.submit_insert(h.server, 777, 0);
  const serve::ServeReport report = h.server.run();
  const auto a = alice.reconcile(report);
  const auto b = bob.reconcile(report);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(a[0].applied);   // canonically-first writer wins
  EXPECT_FALSE(b[0].applied);  // loser sees the honest verdict
  // Both clients converge on the same final state via log harvest.
  EXPECT_TRUE(a[0].found);
  EXPECT_TRUE(b[0].found);
  EXPECT_TRUE(alice.contains(777));
  EXPECT_TRUE(bob.contains(777));
  EXPECT_EQ(h.tree.size(), 2u);
}

TEST(DynamicHeap, PopsMatchPriorityQueueReference) {
  Harness h;
  DynamicHeap heap(h.tree, 0, 100);
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<>>
      ref;
  ref.push(100);
  Rng rng(0xEAB00001);
  std::uint64_t cycle = 0;
  std::vector<bool> is_pop;
  std::uint64_t ref_size = 1;
  for (int i = 0; i < 120; ++i) {
    // Keep the reference in lockstep with the speculative plan: pops on a
    // size-1 heap are planned but rejected at the barrier.
    const bool pop = rng.chance(2, 5) && ref_size > 1;
    if (pop) {
      heap.submit_pop(h.server, cycle);
      is_pop.push_back(true);
      ref_size -= 1;
    } else {
      const auto key = static_cast<std::int64_t>(rng.below(100000));
      heap.submit_push(h.server, key, cycle);
      is_pop.push_back(false);
      ref_size += 1;
    }
    cycle += 2;
  }
  const serve::ServeReport report = h.server.run();
  const auto outcomes = heap.reconcile(report);
  ASSERT_EQ(outcomes.size(), is_pop.size());

  // Replay the reference sequentially in seq order (single client: the
  // canonical barrier order IS the seq order) and compare every pop.
  for (const auto& out : outcomes) {
    ASSERT_EQ(out.response.status, serve::RequestStatus::kOk);
    ASSERT_TRUE(out.applied) << "seq " << out.seq;
    if (out.is_push) {
      ref.push(out.key);
    } else {
      ASSERT_FALSE(ref.empty());
      EXPECT_EQ(out.key, ref.top()) << "seq " << out.seq;
      ref.pop();
    }
  }
  ASSERT_EQ(heap.size(), ref.size());
  EXPECT_EQ(heap.top(), ref.top());
  EXPECT_TRUE(h.tree.validate());
  // BFS-compactness: the live set is exactly the first size() BFS ids.
  const std::vector<Node> live = h.tree.live_nodes();
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], node_at(i));
  }
}

TEST(DynamicHeap, PopOfEmptyHeapIsRejectedDeterministically) {
  Harness h;
  DynamicHeap heap(h.tree, 0, 50);
  heap.submit_pop(h.server, 0);  // speculative size 1: targets the root
  const auto outcomes = heap.reconcile(h.server.run());
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].response.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(outcomes[0].applied);
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.top(), 50);
  EXPECT_EQ(h.tree.size(), 1u);
}

TEST(DynamicHeap, MultiRunSessionsKeepState) {
  Harness h;
  DynamicHeap heap(h.tree, 0, 10);
  heap.submit_push(h.server, 5, 0);
  heap.submit_push(h.server, 20, 2);
  (void)heap.reconcile(h.server.run());
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.top(), 5);

  heap.submit_pop(h.server, 0);
  const auto outcomes = heap.reconcile(h.server.run());
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].applied);
  EXPECT_EQ(outcomes[0].key, 5);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.top(), 10);
}

}  // namespace
}  // namespace pmtree::dyn
