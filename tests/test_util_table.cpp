#include "pmtree/util/table.hpp"

#include <gtest/gtest.h>

namespace pmtree {
namespace {

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter table({"name", "value"});
  table.row("alpha", 1);
  table.row("b", 22222);
  const std::string out = table.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
  EXPECT_NE(out.find("|-------|-------|"), std::string::npos);
}

TEST(TableWriter, FormatsMixedCellTypes) {
  TableWriter table({"a", "b", "c", "d"});
  table.row(std::string("s"), 3.14159, true, 7u);
  const std::string out = table.str();
  EXPECT_NE(out.find("3.142"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("| s "), std::string::npos);
}

TEST(TableWriter, CountsRows) {
  TableWriter table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.row(1);
  table.row(2);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableWriter, EmptyTableStillPrintsHeader) {
  TableWriter table({"only"});
  const std::string out = table.str();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TableWriter, CsvOutput) {
  TableWriter table({"a", "b"});
  table.row("plain", 7);
  table.row("with,comma", "with\"quote");
  const std::string out = table.csv();
  EXPECT_EQ(out,
            "a,b\n"
            "plain,7\n"
            "\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TableWriter, CsvQuotesNewlines) {
  TableWriter table({"x"});
  table.row(std::string("line1\nline2"));
  EXPECT_NE(table.csv().find("\"line1\nline2\""), std::string::npos);
}

}  // namespace
}  // namespace pmtree
