#include "pmtree/apps/range_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

std::vector<RangeIndex::Key> make_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeIndex::Key> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<RangeIndex::Key>(rng.below(10000)));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(RangeIndex, PadsToPowerOfTwoLeaves) {
  const RangeIndex index(make_keys(100, 1));
  EXPECT_EQ(index.tree().num_leaves(), 128u);
  EXPECT_EQ(index.key_count(), 100u);
}

TEST(RangeIndex, SingleKey) {
  const RangeIndex index({42});
  EXPECT_EQ(index.tree().levels(), 1u);
  const auto result = index.query(0, 100);
  ASSERT_EQ(result.keys.size(), 1u);
  EXPECT_EQ(result.keys[0], 42);
}

TEST(RangeIndex, QueryReturnsExactlyTheKeysInRange) {
  const auto keys = make_keys(300, 2);
  const RangeIndex index(keys);
  Rng rng(3);
  for (int q = 0; q < 200; ++q) {
    const auto lo = static_cast<RangeIndex::Key>(rng.below(11000)) - 500;
    const auto hi = lo + static_cast<RangeIndex::Key>(rng.below(3000));
    const auto result = index.query(lo, hi);
    std::vector<RangeIndex::Key> expected;
    std::copy_if(keys.begin(), keys.end(), std::back_inserter(expected),
                 [&](RangeIndex::Key k) { return k >= lo && k <= hi; });
    EXPECT_EQ(result.keys, expected) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(RangeIndex, EmptyRangeYieldsEmptyResult) {
  const RangeIndex index({10, 20, 30});
  EXPECT_TRUE(index.query(11, 19).keys.empty());
  EXPECT_TRUE(index.query(31, 100).keys.empty());
  EXPECT_TRUE(index.query(25, 15).keys.empty());  // inverted
}

TEST(RangeIndex, RoutingValuesAreMaxOfLeftSubtree) {
  const RangeIndex index({1, 3, 5, 7});
  // Leaves: 1 3 5 7; root's left subtree holds {1, 3}.
  EXPECT_EQ(index.value_at(v(0, 0)), 3);
  EXPECT_EQ(index.value_at(v(0, 1)), 1);
  EXPECT_EQ(index.value_at(v(1, 1)), 5);
}

TEST(RangeIndex, DecompositionIsAValidCompositeTemplate) {
  const auto keys = make_keys(500, 4);
  const RangeIndex index(keys);
  const auto result = index.query(1000, 7000);
  ASSERT_FALSE(result.accessed.empty());
  EXPECT_TRUE(result.decomposition.fits(index.tree()));
  EXPECT_TRUE(result.decomposition.is_disjoint());
  EXPECT_EQ(result.decomposition.nodes().size(), result.accessed.size());
}

TEST(RangeIndex, QueryCostRespectsTheorem6UnderColor) {
  const auto keys = make_keys(1000, 5);
  const RangeIndex index(keys);
  const std::uint32_t M = 7;
  const auto map = make_optimal_color_mapping(index.tree(), M);
  Rng rng(6);
  for (int q = 0; q < 100; ++q) {
    const auto lo = static_cast<RangeIndex::Key>(rng.below(10000));
    const auto hi = lo + static_cast<RangeIndex::Key>(rng.below(4000));
    const auto result = index.query(lo, hi);
    if (result.accessed.empty()) continue;
    const std::uint64_t D = result.accessed.size();
    const std::uint64_t c = result.decomposition.component_count();
    EXPECT_LE(conflicts(map, result.accessed),
              bounds::color_composite_bound(D, M, c));
  }
}

}  // namespace
}  // namespace pmtree
