// DynamicTree: the bitmap/free-list node allocator under the envelope
// (DESIGN.md §16). Covers every DynStatus verdict, slot recycling, the
// subtree split/merge operations, and a randomized churn differential
// against a straightforward reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::dyn {
namespace {

TEST(DynamicTree, StartsRootOnly) {
  DynamicTree t(6);
  EXPECT_EQ(t.max_levels(), 6u);
  EXPECT_EQ(t.levels(), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.is_live(Node{0, 0}));
  EXPECT_TRUE(t.is_leaf(Node{0, 0}));
  EXPECT_FALSE(t.is_live(Node{1, 0}));
  EXPECT_TRUE(t.validate());
}

TEST(DynamicTree, InsertValidatesEveryInvariant) {
  DynamicTree t(3);
  // Out of envelope: level 3 of a 3-level envelope, and a bad index.
  EXPECT_EQ(t.insert_node(Node{3, 0}), DynStatus::kNotInEnvelope);
  EXPECT_EQ(t.insert_node(Node{1, 2}), DynStatus::kNotInEnvelope);
  // The root is already live.
  EXPECT_EQ(t.insert_node(Node{0, 0}), DynStatus::kOccupied);
  // Level-2 node under a dead parent.
  EXPECT_EQ(t.insert_node(Node{2, 0}), DynStatus::kParentMissing);
  // Legal insert, then its child becomes legal.
  EXPECT_EQ(t.insert_node(Node{1, 0}), DynStatus::kOk);
  EXPECT_EQ(t.insert_node(Node{1, 0}), DynStatus::kOccupied);
  EXPECT_EQ(t.insert_node(Node{2, 1}), DynStatus::kOk);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.levels(), 3u);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicTree, AppendLeafPicksLeftThenRight) {
  DynamicTree t(3);
  const Node root{0, 0};
  const auto a = t.append_leaf(root);
  ASSERT_EQ(a.status, DynStatus::kOk);
  EXPECT_EQ(a.node, (Node{1, 0}));
  const auto b = t.append_leaf(root);
  ASSERT_EQ(b.status, DynStatus::kOk);
  EXPECT_EQ(b.node, (Node{1, 1}));
  EXPECT_EQ(t.append_leaf(root).status, DynStatus::kOccupied);
  EXPECT_EQ(t.append_leaf(Node{2, 0}).status, DynStatus::kParentMissing);
  // Fill to the envelope floor: leaves there cannot grow further.
  ASSERT_EQ(t.append_leaf(a.node).status, DynStatus::kOk);
  EXPECT_EQ(t.append_leaf(Node{2, 0}).status, DynStatus::kHeightLimit);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicTree, RemoveLeafValidatesEveryInvariant) {
  DynamicTree t(3);
  ASSERT_EQ(t.insert_node(Node{1, 0}), DynStatus::kOk);
  ASSERT_EQ(t.insert_node(Node{2, 0}), DynStatus::kOk);
  EXPECT_EQ(t.remove_leaf(Node{1, 1}), DynStatus::kNotLive);
  EXPECT_EQ(t.remove_leaf(Node{0, 0}), DynStatus::kIsRoot);
  EXPECT_EQ(t.remove_leaf(Node{1, 0}), DynStatus::kHasChildren);
  EXPECT_EQ(t.remove_leaf(Node{2, 0}), DynStatus::kOk);
  EXPECT_EQ(t.remove_leaf(Node{1, 0}), DynStatus::kOk);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.levels(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicTree, SlotsRecycleLifo) {
  DynamicTree t(4);
  ASSERT_EQ(t.insert_node(Node{1, 0}), DynStatus::kOk);
  ASSERT_EQ(t.insert_node(Node{1, 1}), DynStatus::kOk);
  const std::uint64_t s_left = t.slot_of(Node{1, 0});
  const std::uint64_t s_right = t.slot_of(Node{1, 1});
  EXPECT_NE(s_left, s_right);
  const std::uint64_t watermark = t.slot_watermark();
  // Free right then left: LIFO recycling hands left's slot out first.
  ASSERT_EQ(t.remove_leaf(Node{1, 1}), DynStatus::kOk);
  ASSERT_EQ(t.remove_leaf(Node{1, 0}), DynStatus::kOk);
  ASSERT_EQ(t.insert_node(Node{1, 0}), DynStatus::kOk);
  EXPECT_EQ(t.slot_of(Node{1, 0}), s_left);
  ASSERT_EQ(t.insert_node(Node{1, 1}), DynStatus::kOk);
  EXPECT_EQ(t.slot_of(Node{1, 1}), s_right);
  // No fresh slot was minted for the recycled pair.
  EXPECT_EQ(t.slot_watermark(), watermark);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicTree, GrowSubtreeMaterializesCompleteLevels) {
  DynamicTree t(5);
  const auto g = t.grow_subtree(Node{0, 0}, 3);
  ASSERT_EQ(g.status, DynStatus::kOk);
  EXPECT_EQ(g.nodes, 6u);  // 7-node subtree minus the already-live root
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.levels(), 3u);
  // Growing again is a no-op (all nodes already live).
  const auto again = t.grow_subtree(Node{0, 0}, 3);
  ASSERT_EQ(again.status, DynStatus::kOk);
  EXPECT_EQ(again.nodes, 0u);
  // Deeper growth under a live interior node.
  const auto deep = t.grow_subtree(Node{2, 3}, 3);
  ASSERT_EQ(deep.status, DynStatus::kOk);
  EXPECT_EQ(deep.nodes, 6u);
  EXPECT_EQ(t.levels(), 5u);
  EXPECT_TRUE(t.validate());
  // Invariant violations.
  EXPECT_EQ(t.grow_subtree(Node{3, 0}, 2).status, DynStatus::kNotLive);
  EXPECT_EQ(t.grow_subtree(Node{2, 3}, 4).status, DynStatus::kHeightLimit);
}

TEST(DynamicTree, PruneSubtreeCollapsesToRoot) {
  DynamicTree t(5);
  ASSERT_EQ(t.grow_subtree(Node{0, 0}, 4).status, DynStatus::kOk);
  EXPECT_EQ(t.size(), 15u);
  const auto p = t.prune_subtree(Node{1, 1});
  ASSERT_EQ(p.status, DynStatus::kOk);
  EXPECT_EQ(p.nodes, 6u);  // its 2 children + 4 grandchildren
  EXPECT_TRUE(t.is_live(Node{1, 1}));
  EXPECT_TRUE(t.is_leaf(Node{1, 1}));
  EXPECT_EQ(t.size(), 9u);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.prune_subtree(Node{4, 0}).status, DynStatus::kNotLive);
  // Pruning the root empties everything but the root.
  const auto all = t.prune_subtree(Node{0, 0});
  ASSERT_EQ(all.status, DynStatus::kOk);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.levels(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicTree, VersionBumpsOnlyOnSuccess) {
  DynamicTree t(3);
  const std::uint64_t v0 = t.version();
  EXPECT_EQ(t.insert_node(Node{2, 0}), DynStatus::kParentMissing);
  EXPECT_EQ(t.version(), v0);
  ASSERT_EQ(t.insert_node(Node{1, 0}), DynStatus::kOk);
  EXPECT_GT(t.version(), v0);
}

TEST(DynamicTree, LiveNodesMatchesForEachLive) {
  DynamicTree t(4);
  ASSERT_EQ(t.grow_subtree(Node{0, 0}, 3).status, DynStatus::kOk);
  ASSERT_EQ(t.remove_leaf(Node{2, 2}), DynStatus::kOk);
  std::vector<Node> visited;
  t.for_each_live([&](Node n) { visited.push_back(n); });
  EXPECT_EQ(visited, t.live_nodes());
  EXPECT_EQ(visited.size(), t.size());
  // Level-by-level, left-to-right order.
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

// Randomized churn differential: the allocator against a plain set-based
// reference model enforcing the same invariants, with validate() run
// after every mutation.
TEST(DynamicTree, ChurnMatchesReferenceModel) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(0xD15C0000 + seed);
    DynamicTree t(7);
    std::set<Node> ref{Node{0, 0}};
    const auto ref_has = [&](Node n) { return ref.count(n) != 0; };
    for (int step = 0; step < 2000; ++step) {
      const std::uint32_t level =
          static_cast<std::uint32_t>(rng.below(t.max_levels()));
      const Node target{level, rng.below(pow2(level))};
      if (rng.chance(3, 5)) {
        const DynStatus got = t.insert_node(target);
        DynStatus want = DynStatus::kOk;
        if (ref_has(target)) {
          want = DynStatus::kOccupied;
        } else if (target.level > 0 && !ref_has(parent(target))) {
          want = DynStatus::kParentMissing;
        }
        EXPECT_EQ(got, want) << "seed " << seed << " step " << step;
        if (want == DynStatus::kOk) ref.insert(target);
      } else {
        const DynStatus got = t.remove_leaf(target);
        DynStatus want = DynStatus::kOk;
        const bool child_live =
            target.level + 1 < t.max_levels() &&
            (ref_has(left_child(target)) || ref_has(right_child(target)));
        if (!ref_has(target)) {
          want = DynStatus::kNotLive;
        } else if (target.level == 0) {
          want = DynStatus::kIsRoot;
        } else if (child_live) {
          want = DynStatus::kHasChildren;
        }
        EXPECT_EQ(got, want) << "seed " << seed << " step " << step;
        if (want == DynStatus::kOk) ref.erase(target);
      }
      ASSERT_EQ(t.size(), ref.size());
    }
    ASSERT_TRUE(t.validate());
    const std::vector<Node> live = t.live_nodes();
    EXPECT_TRUE(std::equal(live.begin(), live.end(), ref.begin(), ref.end()));
  }
}

}  // namespace
}  // namespace pmtree::dyn
